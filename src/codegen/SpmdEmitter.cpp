//===- codegen/SpmdEmitter.cpp - SPMD pseudo-code emission -------------------===//

#include "codegen/SpmdEmitter.h"

#include "ir/Printer.h"
#include "machine/ScheduleDerivation.h"

#include <set>
#include <sstream>

using namespace alp;

namespace {

class Emitter {
public:
  Emitter(const Program &P, const ProgramDecomposition &PD,
          int64_t BlockSize)
      : P(P), PD(PD), BlockSize(BlockSize) {}

  std::string run() {
    OS << "// SPMD code for '" << P.Name << "' on a " << PD.VirtualDims
       << "-d virtual processor grid (me = my processor id)\n";
    emitPlacements();
    OS << "spmd " << P.Name << "(me) {\n";
    Indent = 1;
    emitNodes(P.TopLevel);
    OS << "}\n";
    return OS.str();
  }

private:
  const Program &P;
  const ProgramDecomposition &PD;
  int64_t BlockSize;
  std::ostringstream OS;
  unsigned Indent = 0;
  /// Current layout per array while walking, to place reorganizations.
  std::map<unsigned, std::string> CurrentLayout;

  void indent() {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  }

  std::string layoutOf(unsigned ArrayId, unsigned NestId) const {
    auto It = PD.Data.find({ArrayId, NestId});
    if (It == PD.Data.end())
      return "unplaced";
    std::ostringstream L;
    if (PD.ReplicatedDims.count(ArrayId) &&
        PD.ReplicatedDims.at(ArrayId) > 0) {
      L << "replicated";
      return L.str();
    }
    ArrayPlacement Pl = derivePlacement(It->second, false);
    L << "block(dim " << Pl.Dim << "), D = " << It->second.D.str()
      << ", delta = " << It->second.Delta.str();
    return L.str();
  }

  void emitPlacements() {
    // Initial layout: the first nest that touches each array.
    std::set<unsigned> Done;
    for (unsigned NestId : P.nestsInOrder())
      for (unsigned A : P.nest(NestId).referencedArrays()) {
        if (!Done.insert(A).second)
          continue;
        std::string L = layoutOf(A, NestId);
        OS << "// place " << P.array(A).Name << ": " << L << "\n";
        CurrentLayout[A] = L;
      }
  }

  void emitNodes(const std::vector<ProgramNode> &Nodes) {
    for (const ProgramNode &N : Nodes) {
      switch (N.NodeKind) {
      case ProgramNode::Kind::Nest:
        emitNest(N.NestId);
        break;
      case ProgramNode::Kind::SequentialLoop:
        indent();
        OS << "for " << N.IndexName << " = 1 to " << N.TripCount.str()
           << " {\n";
        ++Indent;
        emitNodes(N.Children);
        --Indent;
        indent();
        OS << "}\n";
        break;
      case ProgramNode::Kind::Branch:
        indent();
        OS << "if (expr) {  // taken with p = " << N.TakenProbability
           << "\n";
        ++Indent;
        emitNodes(N.Children);
        --Indent;
        if (!N.ElseChildren.empty()) {
          indent();
          OS << "} else {\n";
          ++Indent;
          emitNodes(N.ElseChildren);
          --Indent;
        }
        indent();
        OS << "}\n";
        break;
      }
    }
  }

  void emitReorganizations(unsigned NestId) {
    for (unsigned A : P.nest(NestId).referencedArrays()) {
      std::string L = layoutOf(A, NestId);
      auto It = CurrentLayout.find(A);
      if (It != CurrentLayout.end() && It->second == L)
        continue;
      if (It != CurrentLayout.end()) {
        indent();
        OS << "reorganize(" << P.array(A).Name << ": " << It->second
           << " -> " << L << ");\n";
      }
      CurrentLayout[A] = L;
    }
  }

  void emitNest(unsigned NestId) {
    const LoopNest &Nest = P.nest(NestId);
    emitReorganizations(NestId);
    const CompDecomposition &CD = PD.compOf(NestId);
    NestSchedule S = deriveSchedule(Nest, CD, BlockSize);
    std::vector<std::string> Names = Nest.indexNames();

    indent();
    OS << "// nest " << NestId << ": C = " << CD.C.str()
       << ", gamma = " << CD.Gamma.str();
    switch (S.ExecMode) {
    case NestSchedule::Mode::Sequential:
      OS << "  [sequential]\n";
      break;
    case NestSchedule::Mode::Forall:
      OS << "  [forall over " << Names[S.DistLoop] << "]\n";
      break;
    case NestSchedule::Mode::Pipelined:
      OS << "  [pipelined: strips of " << Names[S.DistLoop]
         << ", blocks of " << Names[S.PipeLoop] << " x " << BlockSize
         << "]\n";
      break;
    case NestSchedule::Mode::Wavefront2D:
      OS << "  [2-d block wavefront over " << Names[S.DistLoop] << " x "
         << Names[S.PipeLoop] << "]\n";
      break;
    }

    if (S.ExecMode == NestSchedule::Mode::Sequential) {
      indent();
      OS << "if (me == 0) {\n";
      ++Indent;
      emitLoops(Nest, Names, ~0u, ~0u);
      --Indent;
      indent();
      OS << "}\n";
      indent();
      OS << "barrier();\n";
      return;
    }
    if (S.ExecMode == NestSchedule::Mode::Forall) {
      emitLoops(Nest, Names, S.DistLoop, ~0u);
      indent();
      OS << "barrier();\n";
      return;
    }
    // Pipelined: block loop outermost, receive/compute/send per block.
    indent();
    OS << "for " << Names[S.PipeLoop] << "_b = blocks("
       << printBound(Nest.Loops[S.PipeLoop].Lower, true, Names) << ", "
       << printBound(Nest.Loops[S.PipeLoop].Upper, false, Names) << ", "
       << BlockSize << ") {\n";
    ++Indent;
    indent();
    OS << "wait_for(me - 1, " << Names[S.PipeLoop] << "_b);\n";
    emitLoops(Nest, Names, S.DistLoop, S.PipeLoop);
    indent();
    OS << "signal(me + 1, " << Names[S.PipeLoop] << "_b);\n";
    --Indent;
    indent();
    OS << "}\n";
    indent();
    OS << "barrier();\n";
  }

  /// Emits the loops of \p Nest; the distributed loop iterates over
  /// "mine(...)" and the blocked loop over the current block.
  void emitLoops(const LoopNest &Nest, const std::vector<std::string> &Names,
                 unsigned DistLoop, unsigned PipeLoop) {
    for (unsigned L = 0; L != Nest.depth(); ++L) {
      indent();
      const Loop &Loop = Nest.Loops[L];
      std::string Lo = printBound(Loop.Lower, true, Names);
      std::string Hi = printBound(Loop.Upper, false, Names);
      if (L == DistLoop)
        OS << "for " << Names[L] << " = mine(me, " << Lo << ", " << Hi
           << ") {\n";
      else if (L == PipeLoop)
        OS << "for " << Names[L] << " = block(" << Names[L] << "_b) {\n";
      else
        OS << "for " << Names[L] << " = " << Lo << " to " << Hi << " {\n";
      ++Indent;
    }
    for (const Statement &St : Nest.Body) {
      indent();
      const ArrayAccess *W = St.firstWrite();
      if (W) {
        OS << P.array(W->ArrayId).Name << W->Map.str(Names) << " = f(";
        bool First = true;
        for (const ArrayAccess &A : St.Accesses) {
          if (&A == W)
            continue;
          if (!First)
            OS << ", ";
          OS << P.array(A.ArrayId).Name << A.Map.str(Names);
          First = false;
        }
        OS << ");\n";
      }
    }
    for (unsigned L = Nest.depth(); L != 0; --L) {
      --Indent;
      indent();
      OS << "}\n";
    }
  }
};

} // namespace

std::string alp::emitSpmd(const Program &P, const ProgramDecomposition &PD,
                          int64_t BlockSize, TraceContext Observe) {
  TraceSpan Span(Observe.Trace, "codegen.emit_spmd");
  std::string Code = Emitter(P, PD, BlockSize).run();
  if (Observe.Metrics) {
    uint64_t Lines = 0, Barriers = 0, Reorgs = 0;
    std::istringstream IS(Code);
    for (std::string Line; std::getline(IS, Line); ++Lines) {
      if (Line.find("barrier") != std::string::npos)
        ++Barriers;
      if (Line.find("reorganize") != std::string::npos)
        ++Reorgs;
    }
    Observe.count("codegen.spmd_lines", Lines);
    Observe.count("codegen.barriers", Barriers);
    Observe.count("codegen.reorganize_calls", Reorgs);
  }
  return Code;
}
