//===- codegen/SpmdEmitter.cpp - SPMD pseudo-code emission -------------------===//

#include "codegen/SpmdEmitter.h"

#include "codegen/CommPlan.h"
#include "ir/Printer.h"
#include "machine/ScheduleDerivation.h"
#include "support/FailPoint.h"

#include <optional>
#include <set>
#include <sstream>

using namespace alp;

namespace {

class Emitter {
public:
  Emitter(const Program &P, const ProgramDecomposition &PD,
          const CodegenOptions &Opts, const CommPlan *Plan)
      : P(P), PD(PD), Opts(Opts), Plan(Plan) {}

  std::string run() {
    OS << "// SPMD code for '" << P.Name << "' on a " << PD.VirtualDims
       << "-d virtual processor grid (me = my processor id)\n";
    emitPlacements();
    if (Plan)
      emitPrologueMessages();
    OS << "spmd " << P.Name << "(me) {\n";
    Indent = 1;
    emitNodes(P.TopLevel);
    OS << "}\n";
    return OS.str();
  }

private:
  const Program &P;
  const ProgramDecomposition &PD;
  const CodegenOptions &Opts;
  /// Non-null in message mode: the planned schedule being rendered.
  const CommPlan *Plan;
  std::ostringstream OS;
  unsigned Indent = 0;
  /// Current layout per array while walking, to place reorganizations.
  std::map<unsigned, std::string> CurrentLayout;

  void indent() {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  }

  std::string layoutOf(unsigned ArrayId, unsigned NestId) const {
    auto It = PD.Data.find({ArrayId, NestId});
    if (It == PD.Data.end())
      return "unplaced";
    std::ostringstream L;
    if (PD.ReplicatedDims.count(ArrayId) &&
        PD.ReplicatedDims.at(ArrayId) > 0) {
      L << "replicated";
      return L.str();
    }
    ArrayPlacement Pl = derivePlacement(It->second, false);
    L << "block(dim " << Pl.Dim << "), D = " << It->second.D.str()
      << ", delta = " << It->second.Delta.str();
    return L.str();
  }

  void emitPlacements() {
    // Initial layout: the first nest that touches each array.
    std::set<unsigned> Done;
    for (unsigned NestId : P.nestsInOrder())
      for (unsigned A : P.nest(NestId).referencedArrays()) {
        if (!Done.insert(A).second)
          continue;
        std::string L = layoutOf(A, NestId);
        OS << "// place " << P.array(A).Name << ": " << L << "\n";
        CurrentLayout[A] = L;
      }
  }

  /// Message mode: hoisted one-time broadcasts before the SPMD body.
  void emitPrologueMessages() {
    for (const PlannedMessage &M : Plan->Prologue) {
      OS << "bcast(" << P.array(M.ArrayId).Name << ": owner -> all, ~"
         << M.ElementsPerMessage << " elems);";
      if (M.FoldedOps > 1)
        OS << "  // hoisted out of " << M.FoldedOps << " uses";
      OS << "\n";
    }
  }

  void emitNodes(const std::vector<ProgramNode> &Nodes) {
    for (const ProgramNode &N : Nodes) {
      switch (N.NodeKind) {
      case ProgramNode::Kind::Nest:
        emitNest(N.NestId);
        break;
      case ProgramNode::Kind::SequentialLoop:
        indent();
        OS << "for " << N.IndexName << " = 1 to " << N.TripCount.str()
           << " {\n";
        ++Indent;
        emitNodes(N.Children);
        --Indent;
        indent();
        OS << "}\n";
        break;
      case ProgramNode::Kind::Branch:
        indent();
        OS << "if (expr) {  // taken with p = " << N.TakenProbability
           << "\n";
        ++Indent;
        emitNodes(N.Children);
        --Indent;
        if (!N.ElseChildren.empty()) {
          indent();
          OS << "} else {\n";
          ++Indent;
          emitNodes(N.ElseChildren);
          --Indent;
        }
        indent();
        OS << "}\n";
        break;
      }
    }
  }

  void emitReorganizations(unsigned NestId) {
    for (unsigned A : P.nest(NestId).referencedArrays()) {
      std::string L = layoutOf(A, NestId);
      auto It = CurrentLayout.find(A);
      if (It != CurrentLayout.end() && It->second == L)
        continue;
      if (It != CurrentLayout.end()) {
        indent();
        OS << "reorganize(" << P.array(A).Name << ": " << It->second
           << " -> " << L << ");\n";
      }
      CurrentLayout[A] = L;
    }
  }

  /// Message mode: the nest's planned operations (shifts as explicit
  /// boundary-layer send/recv pairs, unhoisted broadcasts, and
  /// redistributions), issued before the loops. Block-boundary trains
  /// render inside the pipelined block loop as recv/isend.
  void emitNestMessages(unsigned NestId) {
    for (const PlannedMessage &M : Plan->opsFor(NestId)) {
      const std::string &Name = P.array(M.ArrayId).Name;
      switch (M.Kind) {
      case PlannedMsgKind::Shift:
        indent();
        OS << "send(" << Name << ": boundary layer " << M.Offset.str()
           << ", to me + " << M.Offset.str() << ", ~"
           << M.ElementsPerMessage << " elems);";
        if (M.FoldedOps > 1)
          OS << "  // aggregates " << M.FoldedOps << " accesses";
        OS << "\n";
        indent();
        OS << "recv(" << Name << ": halo layer " << M.Offset.str()
           << ", from me - " << M.Offset.str() << ", ~"
           << M.ElementsPerMessage << " elems);\n";
        break;
      case PlannedMsgKind::Broadcast:
        indent();
        OS << "bcast(" << Name << ": owner -> all, ~"
           << M.ElementsPerMessage << " elems);\n";
        break;
      case PlannedMsgKind::Redistribute:
        indent();
        OS << "redistribute(" << Name << ": -> "
           << layoutOf(M.ArrayId, NestId) << ", ~" << M.ElementsPerMessage
           << " elems);\n";
        break;
      case PlannedMsgKind::BlockBoundary:
        break; // Rendered as recv/isend inside the block loop.
      }
    }
  }

  void emitNest(unsigned NestId) {
    const LoopNest &Nest = P.nest(NestId);
    if (Plan)
      emitNestMessages(NestId);
    else
      emitReorganizations(NestId);
    const CompDecomposition &CD = PD.compOf(NestId);
    NestSchedule S = deriveSchedule(Nest, CD, Opts.BlockSize);
    std::vector<std::string> Names = Nest.indexNames();

    indent();
    OS << "// nest " << NestId << ": C = " << CD.C.str()
       << ", gamma = " << CD.Gamma.str();
    switch (S.ExecMode) {
    case NestSchedule::Mode::Sequential:
      OS << "  [sequential]\n";
      break;
    case NestSchedule::Mode::Forall:
      OS << "  [forall over " << Names[S.DistLoop] << "]\n";
      break;
    case NestSchedule::Mode::Pipelined:
      OS << "  [pipelined: strips of " << Names[S.DistLoop]
         << ", blocks of " << Names[S.PipeLoop] << " x " << Opts.BlockSize
         << "]\n";
      break;
    case NestSchedule::Mode::Wavefront2D:
      OS << "  [2-d block wavefront over " << Names[S.DistLoop] << " x "
         << Names[S.PipeLoop] << "]\n";
      break;
    }

    if (S.ExecMode == NestSchedule::Mode::Sequential) {
      indent();
      OS << "if (me == 0) {\n";
      ++Indent;
      emitLoops(Nest, Names, ~0u, ~0u);
      --Indent;
      indent();
      OS << "}\n";
      indent();
      OS << "barrier();\n";
      return;
    }
    if (S.ExecMode == NestSchedule::Mode::Forall) {
      emitLoops(Nest, Names, S.DistLoop, ~0u);
      indent();
      OS << "barrier();\n";
      return;
    }
    // Pipelined: block loop outermost, receive/compute/send per block.
    indent();
    OS << "for " << Names[S.PipeLoop] << "_b = blocks("
       << printBound(Nest.Loops[S.PipeLoop].Lower, true, Names) << ", "
       << printBound(Nest.Loops[S.PipeLoop].Upper, false, Names) << ", "
       << Opts.BlockSize << ") {\n";
    ++Indent;
    indent();
    if (Plan)
      OS << "recv(me - 1, " << Names[S.PipeLoop] << "_b);\n";
    else
      OS << "wait_for(me - 1, " << Names[S.PipeLoop] << "_b);\n";
    emitLoops(Nest, Names, S.DistLoop, S.PipeLoop);
    indent();
    if (Plan) {
      if (Opts.OverlapPipelined)
        OS << "isend(me + 1, " << Names[S.PipeLoop]
           << "_b);  // overlapped with next block\n";
      else
        OS << "send(me + 1, " << Names[S.PipeLoop] << "_b);\n";
    } else {
      OS << "signal(me + 1, " << Names[S.PipeLoop] << "_b);\n";
    }
    --Indent;
    indent();
    OS << "}\n";
    indent();
    OS << "barrier();\n";
  }

  /// Emits the loops of \p Nest; the distributed loop iterates over
  /// "mine(...)" and the blocked loop over the current block.
  void emitLoops(const LoopNest &Nest, const std::vector<std::string> &Names,
                 unsigned DistLoop, unsigned PipeLoop) {
    for (unsigned L = 0; L != Nest.depth(); ++L) {
      indent();
      const Loop &Loop = Nest.Loops[L];
      std::string Lo = printBound(Loop.Lower, true, Names);
      std::string Hi = printBound(Loop.Upper, false, Names);
      if (L == DistLoop)
        OS << "for " << Names[L] << " = mine(me, " << Lo << ", " << Hi
           << ") {\n";
      else if (L == PipeLoop)
        OS << "for " << Names[L] << " = block(" << Names[L] << "_b) {\n";
      else
        OS << "for " << Names[L] << " = " << Lo << " to " << Hi << " {\n";
      ++Indent;
    }
    for (const Statement &St : Nest.Body) {
      indent();
      const ArrayAccess *W = St.firstWrite();
      if (W) {
        OS << P.array(W->ArrayId).Name << W->Map.str(Names) << " = f(";
        bool First = true;
        for (const ArrayAccess &A : St.Accesses) {
          if (&A == W)
            continue;
          if (!First)
            OS << ", ";
          OS << P.array(A.ArrayId).Name << A.Map.str(Names);
          First = false;
        }
        OS << ");\n";
      }
    }
    for (unsigned L = Nest.depth(); L != 0; --L) {
      --Indent;
      indent();
      OS << "}\n";
    }
  }
};

} // namespace

namespace {

/// Injection site at the head of SPMD emission; a fault surfaces as
/// AlpException for the tool-level stage guard (emitted code is all or
/// nothing — no degraded variant exists).
FailPoint FpSpmdEmit("codegen.spmd.emit");

} // namespace

std::string alp::emitSpmd(const Program &P, const ProgramDecomposition &PD,
                          const CodegenOptions &Opts) {
  TraceSpan Span(Opts.Observe.Trace, "codegen.emit_spmd");
  FpSpmdEmit.evaluateOrThrow();
  std::optional<CommPlan> Plan;
  if (Opts.EmitMessages)
    Plan = planCommunication(P, PD, Opts);
  std::string Code =
      Emitter(P, PD, Opts, Plan ? &*Plan : nullptr).run();
  if (Opts.Observe.Metrics) {
    uint64_t Lines = 0, Barriers = 0, Reorgs = 0, Msgs = 0;
    std::istringstream IS(Code);
    for (std::string Line; std::getline(IS, Line); ++Lines) {
      if (Line.find("barrier") != std::string::npos)
        ++Barriers;
      if (Line.find("reorganize") != std::string::npos ||
          Line.find("redistribute") != std::string::npos)
        ++Reorgs;
      for (const char *Op : {"send(", "recv(", "bcast(", "isend("})
        if (Line.find(Op) != std::string::npos) {
          ++Msgs;
          break;
        }
    }
    Opts.Observe.count("codegen.spmd_lines", Lines);
    Opts.Observe.count("codegen.barriers", Barriers);
    Opts.Observe.count("codegen.reorganize_calls", Reorgs);
    if (Opts.EmitMessages)
      Opts.Observe.count("codegen.message_ops", Msgs);
  }
  return Code;
}
