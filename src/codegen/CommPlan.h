//===- codegen/CommPlan.h - Communication planning --------------*- C++ -*-===//
///
/// \file
/// Lowers the per-access CommSummary classifications into an explicit
/// per-nest message schedule, the way an Amarasinghe-Lam backend would
/// organize communication before emitting code (the pass the paper's
/// Sec. 1 defers to [2]). Four schedule optimizations:
///
///   aggregation   Same-offset nearest-neighbor / pipelined shifts of one
///                 array in one nest share a boundary layer; they merge
///                 into one bulk message instead of one fine-grained
///                 message per access (per cache line, on a
///                 multicomputer).
///   hoisting      A replicated read-only array's broadcast does not
///                 depend on any loop index: it hoists out of every nest
///                 into a one-time program prologue broadcast.
///   elision       A recorded redistribution whose source and target
///                 layouts coincide (consecutive nests keep the array in
///                 the same layout) moves nothing and is dropped.
///   overlap       Pipelined block-boundary sends are issued as isend and
///                 overlap the next block's compute; only the pipeline
///                 fill pays the message latency.
///
/// Two backends consume the plan: the SPMD emitter renders it as explicit
/// bcast / send / recv / isend / redistribute operations
/// (CodegenOptions::EmitMessages), and the NumaSimulator's
/// message-passing mode costs the planned schedule instead of
/// fine-grained per-access messages (CommPlan::schedule() lowers to the
/// machine-level CommSchedule).
///
/// Plan statistics publish as "comm.*" counters through the TraceContext
/// registry; they are pure functions of (Program, ProgramDecomposition)
/// and therefore byte-identical across --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CODEGEN_COMMPLAN_H
#define ALP_CODEGEN_COMMPLAN_H

#include "codegen/CodegenOptions.h"
#include "codegen/CommAnalysis.h"
#include "machine/CommSchedule.h"

#include <map>
#include <string>
#include <vector>

namespace alp {

/// The kind of message operation the plan schedules.
enum class PlannedMsgKind { Shift, BlockBoundary, Broadcast, Redistribute };

const char *plannedMsgKindName(PlannedMsgKind K);

/// One planned bulk message (or message train, for block boundaries).
struct PlannedMessage {
  PlannedMsgKind Kind = PlannedMsgKind::Shift;
  /// Owning nest; ~0u for prologue (hoisted) operations.
  unsigned NestId = ~0u;
  unsigned ArrayId = 0;
  /// Shift / BlockBoundary: the processor-space offset mu of the
  /// exchange.
  SymVector Offset;
  /// Bulk messages per participating processor per nest execution
  /// (prologue operations: per program run).
  double MessagesPerExecution = 1.0;
  /// Array elements carried by each message.
  double ElementsPerMessage = 0.0;
  /// Fine-grained CommOps folded into this message (>= 1).
  unsigned FoldedOps = 1;
  /// True for broadcasts hoisted into the program prologue.
  bool Hoisted = false;
  /// True when the send overlaps the next block's compute.
  bool Overlapped = false;
  /// Redistribute only: true when planned from a cross-nest
  /// ReorganizationPoint (as opposed to an access-level layout mismatch).
  bool CrossNest = false;

  std::string str(const Program &P) const;
};

/// Deterministic plan statistics, published as "comm.*" counters.
struct CommPlanStats {
  /// Planned bulk messages per run, per participating processor.
  uint64_t Messages = 0;
  /// Elements moved per run, per participating processor.
  uint64_t Elements = 0;
  /// Fine-grained ops absorbed into an already-planned bulk message.
  uint64_t Aggregated = 0;
  /// Per-nest broadcast ops replaced by prologue broadcasts.
  uint64_t Hoisted = 0;
  /// Redundant redistributions dropped (layouts already agreed).
  uint64_t Eliminated = 0;
  /// Non-local classifications before planning (the naive message count
  /// floor: at least one message per op per execution).
  uint64_t FineGrainedOps = 0;
};

/// The planned message schedule for a whole program.
struct CommPlan {
  /// One-time operations before the first nest (hoisted broadcasts).
  std::vector<PlannedMessage> Prologue;
  /// Per-nest operations, issued before (shifts, redistributions) or
  /// inside (block boundaries) the nest's loops.
  std::map<unsigned, std::vector<PlannedMessage>> PerNest;
  CommPlanStats Stats;

  /// The operations planned for \p NestId (empty list when none).
  const std::vector<PlannedMessage> &opsFor(unsigned NestId) const;

  /// Total planned operations (prologue + all nests).
  unsigned size() const;

  std::string report(const Program &P) const;

  /// Publishes Stats as comm.messages / comm.elements / comm.aggregated /
  /// comm.hoisted / comm.eliminated counters (no-op without a registry).
  void publishTo(TraceContext Observe) const;

  /// Lowers to the machine-level schedule the NumaSimulator costs.
  CommSchedule schedule() const;
};

/// Plans the program's communication under \p PD. Runs the classifier
/// internally; Opts controls the block size, the four schedule
/// optimizations, and observability (a "codegen.plan_comm" span plus the
/// comm.* counters).
CommPlan planCommunication(const Program &P, const ProgramDecomposition &PD,
                           const CodegenOptions &Opts = {});

} // namespace alp

#endif // ALP_CODEGEN_COMMPLAN_H
