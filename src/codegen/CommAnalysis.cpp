//===- codegen/CommAnalysis.cpp - Communication classification ---------------===//

#include "codegen/CommAnalysis.h"

#include <cmath>
#include <sstream>

using namespace alp;

const char *alp::commKindName(CommKind K) {
  switch (K) {
  case CommKind::Local:
    return "local";
  case CommKind::NearestNeighbor:
    return "nearest-neighbor";
  case CommKind::Pipelined:
    return "pipelined";
  case CommKind::Broadcast:
    return "broadcast";
  case CommKind::Reorganization:
    return "reorganization";
  }
  return "?";
}

std::string CommOp::str(const Program &P) const {
  std::ostringstream OS;
  OS << "nest " << NestId << " " << (IsWrite ? "write" : "read ") << " "
     << P.array(ArrayId).Name << ": " << commKindName(Kind);
  if (Kind == CommKind::NearestNeighbor || Kind == CommKind::Pipelined)
    OS << " offset " << Offset.str();
  if (Kind != CommKind::Local)
    OS << ", ~" << ElementsPerExecution << " elems/exec";
  return OS.str();
}

double CommSummary::totalElements(CommKind K) const {
  double Total = 0.0;
  for (const CommOp &Op : Ops)
    if (Op.Kind == K)
      Total += Op.ElementsPerExecution;
  return Total;
}

unsigned CommSummary::count(CommKind K) const {
  unsigned N = 0;
  for (const CommOp &Op : Ops)
    N += Op.Kind == K;
  return N;
}

bool CommSummary::isCommunicationFree() const {
  for (const CommOp &Op : Ops)
    if (Op.Kind == CommKind::Reorganization)
      return false;
  return true;
}

std::string CommSummary::report(const Program &P) const {
  std::ostringstream OS;
  OS << "communication analysis:\n";
  for (const CommOp &Op : Ops)
    if (Op.Kind != CommKind::Local)
      OS << "  " << Op.str(P) << '\n';
  OS << "  totals: " << count(CommKind::Local) << " local, "
     << count(CommKind::NearestNeighbor) << " nearest-neighbor ("
     << totalElements(CommKind::NearestNeighbor) << " elems), "
     << count(CommKind::Pipelined) << " pipelined ("
     << totalElements(CommKind::Pipelined) << " elems), "
     << count(CommKind::Broadcast) << " broadcast ("
     << totalElements(CommKind::Broadcast) << " elems), "
     << count(CommKind::Reorganization) << " reorganization ("
     << totalElements(CommKind::Reorganization) << " elems)\n";
  return OS.str();
}

namespace {

/// Extent estimate (elements) of one array.
double arrayElements(const Program &P, unsigned ArrayId) {
  double Elems = 1.0;
  for (const SymAffine &Dim : P.array(ArrayId).DimSizes) {
    Rational V = Dim.evaluate(P.SymbolBindings);
    Elems *= std::max<double>(
        static_cast<double>(V.num()) / static_cast<double>(V.den()), 1.0);
  }
  return Elems;
}

/// The distributed loop of a nest under C (same convention as the
/// schedule derivation: first nonzero entry, row-major).
unsigned distributedLoop(const LoopNest &Nest, const Matrix &C) {
  for (unsigned R = 0; R != C.rows(); ++R)
    for (unsigned K = 0; K != C.cols(); ++K)
      if (!C.at(R, K).isZero())
        return K;
  return Nest.depth();
}

} // namespace

CommSummary alp::analyzeCommunication(const Program &P,
                                      const ProgramDecomposition &PD,
                                      const CodegenOptions &Opts) {
  TraceSpan Span(Opts.Observe.Trace, "codegen.comm_analysis");
  CommSummary Summary;
  for (unsigned NestId : P.nestsInOrder()) {
    const LoopNest &Nest = P.nest(NestId);
    auto CIt = PD.Comp.find(NestId);
    if (CIt == PD.Comp.end())
      continue;
    const CompDecomposition &CD = CIt->second;
    double Iters =
        std::max(Nest.estimatedIterations(P.SymbolBindings), 1.0);
    unsigned Dist = distributedLoop(Nest, CD.C);
    double DistExtent =
        Dist < Nest.depth()
            ? std::max(Nest.estimatedTrip(Dist, P.SymbolBindings), 1.0)
            : 1.0;

    for (unsigned SI = 0; SI != Nest.Body.size(); ++SI) {
      const Statement &S = Nest.Body[SI];
      for (unsigned AI = 0; AI != S.Accesses.size(); ++AI) {
        const ArrayAccess &A = S.Accesses[AI];
        CommOp Op;
        Op.NestId = NestId;
        Op.StmtIdx = SI;
        Op.AccessIdx = AI;
        Op.ArrayId = A.ArrayId;
        Op.IsWrite = A.IsWrite;
        Op.Frequency = std::max(Nest.ExecCount * Nest.Probability, 0.0);

        // Replicated read-only data: a broadcast keeps reads local.
        bool Replicated = PD.ReplicatedDims.count(A.ArrayId) &&
                          PD.ReplicatedDims.at(A.ArrayId) > 0;
        if (Replicated) {
          Op.Kind = CommKind::Broadcast;
          Op.ElementsPerExecution = arrayElements(P, A.ArrayId);
          Summary.Ops.push_back(std::move(Op));
          continue;
        }

        auto DIt = PD.Data.find({A.ArrayId, NestId});
        if (DIt == PD.Data.end())
          continue;
        const DataDecomposition &DD = DIt->second;

        // Orientation mismatch: the whole accessed section must move.
        if (DD.D.rows() != CD.C.rows() ||
            DD.D * A.Map.linear() != CD.C) {
          Op.Kind = CommKind::Reorganization;
          Op.ElementsPerExecution = arrayElements(P, A.ArrayId);
          Summary.Ops.push_back(std::move(Op));
          continue;
        }

        // Orientation matches: the miss, if any, is the constant
        // processor-space offset mu = (D k + delta) - gamma (Eqn. 2).
        SymVector Mu = (DD.D * A.Map.constant() + DD.Delta) - CD.Gamma;
        if (Mu.isZero()) {
          Op.Kind = CommKind::Local;
          Summary.Ops.push_back(std::move(Op));
          continue;
        }
        // A symbolic offset is not nearest-neighbor: general movement.
        bool Symbolic = false;
        double AbsSum = 0.0;
        for (unsigned I = 0; I != Mu.size(); ++I) {
          Symbolic |= !Mu[I].isConstant();
          if (Mu[I].isConstant()) {
            Rational C = Mu[I].constant().abs();
            AbsSum += static_cast<double>(C.num()) /
                      static_cast<double>(C.den());
          }
        }
        if (Symbolic) {
          Op.Kind = CommKind::Reorganization;
          Op.ElementsPerExecution = arrayElements(P, A.ArrayId);
          Summary.Ops.push_back(std::move(Op));
          continue;
        }
        Op.Kind =
            CD.isBlocked() ? CommKind::Pipelined : CommKind::NearestNeighbor;
        Op.Offset = Mu;
        // One boundary layer of thickness |mu| per distributed slice.
        Op.ElementsPerExecution = AbsSum * Iters / DistExtent;
        Summary.Ops.push_back(std::move(Op));
      }
    }
  }
  // Cross-nest reorganizations (dynamic decompositions): these live on
  // the communication-graph edges the greedy algorithm chose to cut, not
  // on any single access.
  for (const ReorganizationPoint &RP : PD.Reorganizations) {
    CommOp Op;
    Op.NestId = RP.ToNest;
    Op.ArrayId = RP.ArrayId;
    Op.Kind = CommKind::Reorganization;
    Op.ElementsPerExecution = arrayElements(P, RP.ArrayId);
    Op.Frequency = std::max(RP.Frequency, 0.0);
    Op.CrossNest = true;
    Summary.Ops.push_back(std::move(Op));
  }
  return Summary;
}
