//===- codegen/SpmdEmitter.h - SPMD pseudo-code emission --------*- C++ -*-===//
///
/// \file
/// Renders a decomposed program as annotated SPMD pseudo-code, the form a
/// distributed-address-space backend (Amarasinghe-Lam [2]) would consume:
/// per-processor loop bounds over the distributed dimension, explicit
/// barrier / pipeline-synchronization operations, data placement
/// directives, and reorganization (redistribution) calls where the
/// dynamic decomposition changes an array's layout.
///
/// The emitter is a presentation layer: all decisions come from the
/// ProgramDecomposition and the derived schedules.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CODEGEN_SPMDEMITTER_H
#define ALP_CODEGEN_SPMDEMITTER_H

#include "core/Decomposition.h"
#include "ir/Program.h"
#include "support/Trace.h"

#include <string>

namespace alp {

/// Emits the whole program as SPMD pseudo-code under \p PD using
/// \p BlockSize for pipelined nests. With \p Observe, the emission runs
/// under a "codegen.emit_spmd" span and publishes "codegen.*" counters
/// (emitted lines, barriers, reorganize calls).
std::string emitSpmd(const Program &P, const ProgramDecomposition &PD,
                     int64_t BlockSize = 4, TraceContext Observe = {});

} // namespace alp

#endif // ALP_CODEGEN_SPMDEMITTER_H
