//===- codegen/SpmdEmitter.h - SPMD pseudo-code emission --------*- C++ -*-===//
///
/// \file
/// Renders a decomposed program as annotated SPMD pseudo-code, the form a
/// distributed-address-space backend (Amarasinghe-Lam [2]) would consume:
/// per-processor loop bounds over the distributed dimension, explicit
/// barrier / pipeline-synchronization operations, data placement
/// directives, and reorganization (redistribution) calls where the
/// dynamic decomposition changes an array's layout.
///
/// Two emission modes, selected by CodegenOptions::EmitMessages:
///
///   placement mode (default)  placement directives + reorganize() calls
///                             + wait_for/signal pipelining — the
///                             shared-address-space presentation.
///   message mode              the planned communication schedule
///                             (codegen/CommPlan.h) rendered as explicit
///                             bcast / send / recv / isend /
///                             redistribute operations — what a
///                             multicomputer backend would execute.
///
/// The emitter is a presentation layer: all decisions come from the
/// ProgramDecomposition, the derived schedules, and the plan.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CODEGEN_SPMDEMITTER_H
#define ALP_CODEGEN_SPMDEMITTER_H

#include "codegen/CodegenOptions.h"
#include "core/Decomposition.h"
#include "ir/Program.h"

#include <string>

namespace alp {

/// Emits the whole program as SPMD pseudo-code under \p PD. \p Opts
/// selects the emission mode, the block size of pipelined nests, and
/// observability (a "codegen.emit_spmd" span plus "codegen.*" counters:
/// emitted lines, barriers, reorganize/redistribute calls, messages).
std::string emitSpmd(const Program &P, const ProgramDecomposition &PD,
                     const CodegenOptions &Opts = {});

} // namespace alp

#endif // ALP_CODEGEN_SPMDEMITTER_H
