//===- codegen/CommAnalysis.h - Communication classification ----*- C++ -*-===//
///
/// \file
/// For distributed-address-space machines the decomposition phase "must be
/// followed with a pass that maps the decomposition to explicit
/// communication code" (Sec. 1, citing Amarasinghe-Lam [2]). This pass
/// classifies, per nest and per access, exactly which communication the
/// decomposition implies:
///
///   Local               D_x F == C and the displacement matches: the
///                       element always lives on the executing processor.
///   NearestNeighbor     D_x F == C but the displacement misses by a
///                       constant vector mu: a shift of the block
///                       boundary (cheap; volume shrinks with blocking).
///   Pipelined           the access crosses blocked dimensions inside a
///                       doacross nest: block-boundary traffic plus the
///                       wait/signal protocol.
///   Broadcast           the array is replicated along >= 1 processor
///                       dimension: reads are local after a one-time
///                       broadcast of the owner's copy.
///   Reorganization      D_x F != C: the layout disagrees with the
///                       computation; the whole accessed section moves
///                       (e.g. a transpose). The dynamic decomposer
///                       only leaves these on component-crossing edges.
///
/// Each classified access carries an estimated per-execution volume in
/// array elements, which the message-passing report aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CODEGEN_COMMANALYSIS_H
#define ALP_CODEGEN_COMMANALYSIS_H

#include "codegen/CodegenOptions.h"
#include "core/Decomposition.h"
#include "ir/Program.h"

#include <string>
#include <vector>

namespace alp {

/// The kind of communication one access implies under a decomposition.
enum class CommKind {
  Local,
  NearestNeighbor,
  Pipelined,
  Broadcast,
  Reorganization
};

const char *commKindName(CommKind K);

/// Classification of one access in one nest.
struct CommOp {
  unsigned NestId = 0;
  unsigned StmtIdx = 0;
  unsigned AccessIdx = 0;
  unsigned ArrayId = 0;
  bool IsWrite = false;
  CommKind Kind = CommKind::Local;
  /// NearestNeighbor: the constant processor-space offset mu of the miss.
  SymVector Offset;
  /// Estimated elements moved per execution of the nest (0 for Local).
  double ElementsPerExecution = 0.0;
  /// Executions per program run: the nest's profile count, or the
  /// recorded frequency for cross-nest reorganizations.
  double Frequency = 1.0;
  /// True for reorganizations on communication-graph edges between nests
  /// (PD.Reorganizations) rather than on a single access.
  bool CrossNest = false;

  std::string str(const Program &P) const;
};

/// Aggregated per-nest summary.
struct CommSummary {
  std::vector<CommOp> Ops;

  /// Total elements moved per program run for a given kind.
  double totalElements(CommKind K) const;
  /// Number of ops of a kind.
  unsigned count(CommKind K) const;
  /// True when no access needs anything beyond nearest-neighbor shifts:
  /// the paper's notion of a (minor-communication) static decomposition.
  bool isCommunicationFree() const;

  std::string report(const Program &P) const;
};

/// Classifies every access of every nest under \p PD. \p Opts supplies
/// the block size (volume estimates of blocked nests) and observability.
CommSummary analyzeCommunication(const Program &P,
                                 const ProgramDecomposition &PD,
                                 const CodegenOptions &Opts = {});

} // namespace alp

#endif // ALP_CODEGEN_COMMANALYSIS_H
