//===- codegen/CodegenOptions.h - Shared backend options --------*- C++ -*-===//
///
/// \file
/// One option struct for the whole backend surface — the SPMD emitter,
/// the communication classifier, and the communication planner — in the
/// style of DriverOptions: callers configure a CodegenOptions once and
/// hand it to every pass instead of threading positional knobs.
///
/// Block-size discipline: MachineParams is the single source of truth.
/// Construct options with CodegenOptions::forMachine(M) so the emitter,
/// the classifier, the planner, and the schedule derivation all agree on
/// M.BlockSize; alp-lint flags divergent block sizes between a derived
/// schedule and its emission (decomp.block-size-divergence).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CODEGEN_CODEGENOPTIONS_H
#define ALP_CODEGEN_CODEGENOPTIONS_H

#include "core/CostModel.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>

namespace alp {

/// Test-only seeded miscompilations, in the spirit of the failpoint
/// registry (support/FailPoint.h): each mode corrupts the communication
/// schedule in one specific way so the schedule verifier
/// (analysis/LintSchedule.cpp) can prove its checkers actually fire.
/// Plan-level modes (DropTransfer, ShrinkAggregation) mutate the
/// CommPlan itself, so the corrupted schedule also reaches the emitter
/// and the simulator; model-level modes (ReorderRecv, ReorderBarrier,
/// DropRecv, AliasBuffer) alter only the verifier's expansion of the
/// plan, simulating emitter bugs without touching emitted code. None is
/// the production value; nothing changes unless a mode is armed.
enum class MiscompileMode {
  None,
  DropTransfer,      ///< Planner drops the first per-nest message.
  ShrinkAggregation, ///< Planner halves aggregated message volumes.
  ReorderRecv,       ///< Model hoists shift recvs before the sends.
  ReorderBarrier,    ///< Model emits nest barriers on processor 0 only.
  DropRecv,          ///< Model drops the recv half of every shift.
  AliasBuffer        ///< Model hoists pipelined recvs out of the block
                     ///< loop, removing the double-buffer fences.
};

/// Stable spelling of each mode (the --miscompile=<mode> argument).
inline const char *miscompileModeName(MiscompileMode M) {
  switch (M) {
  case MiscompileMode::None:
    return "none";
  case MiscompileMode::DropTransfer:
    return "drop-transfer";
  case MiscompileMode::ShrinkAggregation:
    return "shrink-aggregation";
  case MiscompileMode::ReorderRecv:
    return "reorder-recv";
  case MiscompileMode::ReorderBarrier:
    return "reorder-barrier";
  case MiscompileMode::DropRecv:
    return "drop-recv";
  case MiscompileMode::AliasBuffer:
    return "alias-buffer";
  }
  return "?";
}

/// Parses a --miscompile argument; false on an unknown spelling.
inline bool parseMiscompileMode(const std::string &S, MiscompileMode &Out) {
  for (MiscompileMode M :
       {MiscompileMode::None, MiscompileMode::DropTransfer,
        MiscompileMode::ShrinkAggregation, MiscompileMode::ReorderRecv,
        MiscompileMode::ReorderBarrier, MiscompileMode::DropRecv,
        MiscompileMode::AliasBuffer})
    if (S == miscompileModeName(M)) {
      Out = M;
      return true;
    }
  return false;
}

/// Options shared by emitSpmd, analyzeCommunication, and
/// planCommunication.
struct CodegenOptions {
  /// Pipeline block size (strip length of blocked doacross loops).
  int64_t BlockSize = 4;

  /// Planner: merge same-offset nearest-neighbor / pipelined shifts of
  /// one array in one nest into a single bulk message per boundary.
  bool AggregateShifts = true;
  /// Planner: hoist loop-invariant broadcasts of replicated read-only
  /// arrays out of every nest into one program prologue broadcast.
  bool HoistBroadcasts = true;
  /// Planner: drop a redistribution when consecutive nests keep an array
  /// in the same layout (the transfer would move nothing).
  bool ElideRedundantTransfers = true;
  /// Planner: overlap pipelined block-boundary sends with the next
  /// block's compute (isend; only the pipeline fill pays the latency).
  bool OverlapPipelined = true;

  /// Emitter: render the planned schedule as explicit message operations
  /// (bcast / send / recv / isend / redistribute) instead of the
  /// placement-directive pseudo-code.
  bool EmitMessages = false;

  /// Test-only seeded miscompilation (see MiscompileMode). Plan-level
  /// modes take effect here in the planner; model-level modes are read
  /// by the schedule verifier's expansion.
  MiscompileMode Miscompile = MiscompileMode::None;

  /// Observability sink (spans + counters), copied by value like
  /// DriverOptions::Observe.
  TraceContext Observe;

  /// The canonical constructor: options consistent with machine \p M
  /// (today that is the block size; machine presets may grow).
  static CodegenOptions forMachine(const MachineParams &M) {
    CodegenOptions Opts;
    Opts.BlockSize = M.BlockSize;
    return Opts;
  }
};

} // namespace alp

#endif // ALP_CODEGEN_CODEGENOPTIONS_H
