//===- codegen/CodegenOptions.h - Shared backend options --------*- C++ -*-===//
///
/// \file
/// One option struct for the whole backend surface — the SPMD emitter,
/// the communication classifier, and the communication planner — in the
/// style of DriverOptions: callers configure a CodegenOptions once and
/// hand it to every pass instead of threading positional knobs.
///
/// Block-size discipline: MachineParams is the single source of truth.
/// Construct options with CodegenOptions::forMachine(M) so the emitter,
/// the classifier, the planner, and the schedule derivation all agree on
/// M.BlockSize; alp-lint flags divergent block sizes between a derived
/// schedule and its emission (decomp.block-size-divergence).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CODEGEN_CODEGENOPTIONS_H
#define ALP_CODEGEN_CODEGENOPTIONS_H

#include "core/CostModel.h"
#include "support/Trace.h"

#include <cstdint>

namespace alp {

/// Options shared by emitSpmd, analyzeCommunication, and
/// planCommunication.
struct CodegenOptions {
  /// Pipeline block size (strip length of blocked doacross loops).
  int64_t BlockSize = 4;

  /// Planner: merge same-offset nearest-neighbor / pipelined shifts of
  /// one array in one nest into a single bulk message per boundary.
  bool AggregateShifts = true;
  /// Planner: hoist loop-invariant broadcasts of replicated read-only
  /// arrays out of every nest into one program prologue broadcast.
  bool HoistBroadcasts = true;
  /// Planner: drop a redistribution when consecutive nests keep an array
  /// in the same layout (the transfer would move nothing).
  bool ElideRedundantTransfers = true;
  /// Planner: overlap pipelined block-boundary sends with the next
  /// block's compute (isend; only the pipeline fill pays the latency).
  bool OverlapPipelined = true;

  /// Emitter: render the planned schedule as explicit message operations
  /// (bcast / send / recv / isend / redistribute) instead of the
  /// placement-directive pseudo-code.
  bool EmitMessages = false;

  /// Observability sink (spans + counters), copied by value like
  /// DriverOptions::Observe.
  TraceContext Observe;

  /// The canonical constructor: options consistent with machine \p M
  /// (today that is the block size; machine presets may grow).
  static CodegenOptions forMachine(const MachineParams &M) {
    CodegenOptions Opts;
    Opts.BlockSize = M.BlockSize;
    return Opts;
  }
};

} // namespace alp

#endif // ALP_CODEGEN_CODEGENOPTIONS_H
