//===- codegen/CommPlan.cpp - Communication planning -------------------------===//

#include "codegen/CommPlan.h"

#include "machine/ScheduleDerivation.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

using namespace alp;

const char *alp::plannedMsgKindName(PlannedMsgKind K) {
  switch (K) {
  case PlannedMsgKind::Shift:
    return "shift";
  case PlannedMsgKind::BlockBoundary:
    return "block-boundary";
  case PlannedMsgKind::Broadcast:
    return "broadcast";
  case PlannedMsgKind::Redistribute:
    return "redistribute";
  }
  return "?";
}

std::string PlannedMessage::str(const Program &P) const {
  std::ostringstream OS;
  if (NestId == ~0u)
    OS << "prologue";
  else
    OS << "nest " << NestId;
  OS << " " << P.array(ArrayId).Name << ": " << plannedMsgKindName(Kind);
  if (Kind == PlannedMsgKind::Shift || Kind == PlannedMsgKind::BlockBoundary)
    OS << " offset " << Offset.str();
  OS << ", " << MessagesPerExecution << " msg/exec x ~" << ElementsPerMessage
     << " elems";
  if (FoldedOps > 1)
    OS << " (folds " << FoldedOps << " ops)";
  if (Hoisted)
    OS << " [hoisted]";
  if (Overlapped)
    OS << " [overlapped]";
  return OS.str();
}

const std::vector<PlannedMessage> &CommPlan::opsFor(unsigned NestId) const {
  static const std::vector<PlannedMessage> Empty;
  auto It = PerNest.find(NestId);
  return It == PerNest.end() ? Empty : It->second;
}

unsigned CommPlan::size() const {
  unsigned N = static_cast<unsigned>(Prologue.size());
  for (const auto &[Id, Ops] : PerNest)
    N += static_cast<unsigned>(Ops.size());
  return N;
}

std::string CommPlan::report(const Program &P) const {
  std::ostringstream OS;
  OS << "communication plan:\n";
  for (const PlannedMessage &M : Prologue)
    OS << "  " << M.str(P) << '\n';
  for (const auto &[Id, Ops] : PerNest)
    for (const PlannedMessage &M : Ops)
      OS << "  " << M.str(P) << '\n';
  OS << "  totals: " << Stats.Messages << " messages, " << Stats.Elements
     << " elements (from " << Stats.FineGrainedOps << " fine-grained ops: "
     << Stats.Aggregated << " aggregated, " << Stats.Hoisted << " hoisted, "
     << Stats.Eliminated << " eliminated)\n";
  return OS.str();
}

void CommPlan::publishTo(TraceContext Observe) const {
  Observe.count("comm.messages", Stats.Messages);
  Observe.count("comm.elements", Stats.Elements);
  Observe.count("comm.aggregated", Stats.Aggregated);
  Observe.count("comm.hoisted", Stats.Hoisted);
  Observe.count("comm.eliminated", Stats.Eliminated);
  Observe.count("comm.fine_grained_ops", Stats.FineGrainedOps);
}

CommSchedule CommPlan::schedule() const {
  auto Lower = [](const PlannedMessage &M) {
    CommScheduleOp Op;
    switch (M.Kind) {
    case PlannedMsgKind::Shift:
      Op.OpKind = CommScheduleOp::Kind::Shift;
      break;
    case PlannedMsgKind::BlockBoundary:
      Op.OpKind = CommScheduleOp::Kind::BlockBoundary;
      break;
    case PlannedMsgKind::Broadcast:
      Op.OpKind = CommScheduleOp::Kind::Broadcast;
      break;
    case PlannedMsgKind::Redistribute:
      Op.OpKind = CommScheduleOp::Kind::Redistribute;
      break;
    }
    Op.ArrayId = M.ArrayId;
    Op.MessagesPerExecution = M.MessagesPerExecution;
    Op.ElementsPerMessage = M.ElementsPerMessage;
    Op.Overlapped = M.Overlapped;
    Op.CrossNest = M.CrossNest;
    return Op;
  };
  CommSchedule CS;
  for (const PlannedMessage &M : Prologue)
    CS.Prologue.push_back(Lower(M));
  for (const auto &[Id, Ops] : PerNest)
    for (const PlannedMessage &M : Ops)
      CS.PerNest[Id].push_back(Lower(M));
  return CS;
}

namespace {

double arrayElements(const Program &P, unsigned ArrayId) {
  double Elems = 1.0;
  for (const SymAffine &Dim : P.array(ArrayId).DimSizes) {
    Rational V = Dim.evaluate(P.SymbolBindings);
    Elems *= std::max<double>(
        static_cast<double>(V.num()) / static_cast<double>(V.den()), 1.0);
  }
  return Elems;
}

/// The layout signature the emitter uses to decide whether a transfer
/// moves anything: replication status, or (D, delta) at the nest.
std::string layoutKey(const Program &P, const ProgramDecomposition &PD,
                      unsigned ArrayId, unsigned NestId) {
  if (PD.ReplicatedDims.count(ArrayId) &&
      PD.ReplicatedDims.at(ArrayId) > 0)
    return "replicated";
  auto It = PD.Data.find({ArrayId, NestId});
  if (It == PD.Data.end())
    return "unplaced";
  return It->second.D.str() + " / " + It->second.Delta.str();
}

uint64_t roundCount(double V) {
  return V <= 0 ? 0 : static_cast<uint64_t>(std::llround(V));
}

} // namespace

namespace {

/// Injection site at the head of communication-plan lowering; a fault
/// surfaces as AlpException for the tool-level stage guard to convert to
/// a clean error (there is no sound partial plan to degrade to).
FailPoint FpCommPlanLower("codegen.commplan.lower");

} // namespace

CommPlan alp::planCommunication(const Program &P,
                                const ProgramDecomposition &PD,
                                const CodegenOptions &Opts) {
  TraceSpan Span(Opts.Observe.Trace, "codegen.plan_comm");
  FpCommPlanLower.evaluateOrThrow();
  CommPlan Plan;

  CodegenOptions AnalysisOpts = Opts;
  AnalysisOpts.Observe = {}; // One span/counter set per planner call.
  CommSummary CS = analyzeCommunication(P, PD, AnalysisOpts);

  // Grouping state, keyed deterministically (ids and offset strings).
  struct ShiftGroup {
    PlannedMessage Msg;
    double Frequency = 1.0;
  };
  // (NestId, ArrayId, Offset.str()) -> aggregated shift/boundary message.
  std::map<std::tuple<unsigned, unsigned, std::string>, ShiftGroup> Shifts;
  // Broadcast ops per array (hoisting) or per (nest, array).
  std::map<unsigned, unsigned> BroadcastFolds; // ArrayId -> folded ops.
  std::map<std::pair<unsigned, unsigned>, ShiftGroup> NestBroadcasts;
  // Access-level (intra-nest) reorganizations per (nest, array).
  std::map<std::pair<unsigned, unsigned>, ShiftGroup> Redists;
  unsigned Seq = 0; // Tie-break: first-seen order within a nest.
  std::map<std::tuple<unsigned, unsigned, std::string>, unsigned> ShiftSeq;

  for (const CommOp &Op : CS.Ops) {
    if (Op.Kind == CommKind::Local)
      continue;
    ++Plan.Stats.FineGrainedOps;
    switch (Op.Kind) {
    case CommKind::Local:
      break;
    case CommKind::NearestNeighbor:
    case CommKind::Pipelined: {
      // Shifts aggregate per offset (one boundary layer per direction);
      // pipelined boundaries aggregate per array regardless of offset:
      // each block-boundary message carries the block's whole frontier.
      std::string OffKey = Op.Kind == CommKind::Pipelined
                               ? std::string("pipe")
                               : Op.Offset.str();
      std::tuple<unsigned, unsigned, std::string> Key{
          Op.NestId, Op.ArrayId,
          Opts.AggregateShifts ? OffKey
                               : OffKey + "#" + std::to_string(Seq)};
      auto [It, Fresh] = Shifts.try_emplace(Key);
      ShiftGroup &G = It->second;
      if (Fresh) {
        ShiftSeq[Key] = Seq;
        G.Msg.Kind = Op.Kind == CommKind::Pipelined
                         ? PlannedMsgKind::BlockBoundary
                         : PlannedMsgKind::Shift;
        G.Msg.NestId = Op.NestId;
        G.Msg.ArrayId = Op.ArrayId;
        G.Msg.Offset = Op.Offset;
        G.Msg.FoldedOps = 0;
        G.Frequency = Op.Frequency;
      } else {
        ++Plan.Stats.Aggregated;
      }
      ++G.Msg.FoldedOps;
      // Ops in one group move the same boundary layer: the message
      // carries the union, estimated as the largest single-op volume.
      G.Msg.ElementsPerMessage =
          std::max(G.Msg.ElementsPerMessage, Op.ElementsPerExecution);
      break;
    }
    case CommKind::Broadcast: {
      if (Opts.HoistBroadcasts) {
        ++BroadcastFolds[Op.ArrayId];
        break;
      }
      auto [It, Fresh] =
          NestBroadcasts.try_emplace({Op.NestId, Op.ArrayId});
      ShiftGroup &G = It->second;
      if (Fresh) {
        G.Msg.Kind = PlannedMsgKind::Broadcast;
        G.Msg.NestId = Op.NestId;
        G.Msg.ArrayId = Op.ArrayId;
        G.Msg.FoldedOps = 0;
        G.Frequency = Op.Frequency;
      } else {
        ++Plan.Stats.Aggregated;
      }
      ++G.Msg.FoldedOps;
      G.Msg.ElementsPerMessage =
          std::max(G.Msg.ElementsPerMessage, Op.ElementsPerExecution);
      break;
    }
    case CommKind::Reorganization: {
      if (Op.CrossNest)
        break; // Handled against PD.Reorganizations below.
      auto [It, Fresh] = Redists.try_emplace({Op.NestId, Op.ArrayId});
      ShiftGroup &G = It->second;
      if (Fresh) {
        G.Msg.Kind = PlannedMsgKind::Redistribute;
        G.Msg.NestId = Op.NestId;
        G.Msg.ArrayId = Op.ArrayId;
        G.Msg.FoldedOps = 0;
        G.Frequency = Op.Frequency;
      } else {
        ++Plan.Stats.Aggregated;
      }
      ++G.Msg.FoldedOps;
      G.Msg.ElementsPerMessage =
          std::max(G.Msg.ElementsPerMessage, Op.ElementsPerExecution);
      break;
    }
    }
    ++Seq;
  }

  double Messages = 0.0, Elements = 0.0;
  auto Emit = [&](PlannedMessage M, double Frequency) {
    Messages += M.MessagesPerExecution * Frequency;
    Elements += M.MessagesPerExecution * M.ElementsPerMessage * Frequency;
    if (M.NestId == ~0u)
      Plan.Prologue.push_back(std::move(M));
    else
      Plan.PerNest[M.NestId].push_back(std::move(M));
  };

  // Hoisted broadcasts: one per array for the whole run, in array order.
  for (const auto &[ArrayId, Folds] : BroadcastFolds) {
    PlannedMessage M;
    M.Kind = PlannedMsgKind::Broadcast;
    M.NestId = ~0u;
    M.ArrayId = ArrayId;
    M.MessagesPerExecution = 1.0;
    M.ElementsPerMessage = arrayElements(P, ArrayId);
    M.FoldedOps = Folds;
    M.Hoisted = true;
    Plan.Stats.Hoisted += Folds;
    Emit(std::move(M), 1.0);
  }

  // Shifts and block boundaries, in first-seen (program) order per nest.
  {
    std::vector<std::pair<unsigned, const ShiftGroup *>> Ordered;
    for (const auto &[Key, G] : Shifts)
      Ordered.push_back({ShiftSeq.at(Key), &G});
    std::sort(Ordered.begin(), Ordered.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (const auto &[Pos, GP] : Ordered) {
      PlannedMessage M = GP->Msg;
      if (M.Kind == PlannedMsgKind::BlockBoundary) {
        // One message per block boundary instead of one per access: the
        // block count comes from the derived schedule's pipelined loop.
        const LoopNest &Nest = P.nest(M.NestId);
        NestSchedule S =
            deriveSchedule(Nest, PD.compOf(M.NestId), Opts.BlockSize);
        double Trip = std::max(
            Nest.estimatedTrip(S.PipeLoop, P.SymbolBindings), 1.0);
        double Blocks = std::max(
            std::ceil(Trip / std::max<double>(Opts.BlockSize, 1)), 1.0);
        M.MessagesPerExecution = Blocks;
        M.ElementsPerMessage = M.ElementsPerMessage / Blocks;
        M.Overlapped = Opts.OverlapPipelined;
      }
      Emit(std::move(M), GP->Frequency);
    }
  }

  // Per-nest broadcasts (hoisting disabled), in (nest, array) order.
  for (const auto &[Key, G] : NestBroadcasts) {
    PlannedMessage M = G.Msg;
    M.MessagesPerExecution = 1.0;
    M.ElementsPerMessage = arrayElements(P, M.ArrayId);
    Emit(std::move(M), G.Frequency);
  }

  // Access-level redistributions: the layout disagrees with the nest's
  // computation, so the accessed section moves every execution.
  for (const auto &[Key, G] : Redists)
    Emit(G.Msg, G.Frequency);

  // Cross-nest redistributions, with redundant-transfer elision: walk
  // the nests in program order tracking each array's layout; a recorded
  // reorganization whose target layout matches the current one moves
  // nothing and is dropped.
  {
    std::map<unsigned, std::string> CurrentKey;
    for (unsigned NestId : P.nestsInOrder())
      for (unsigned A : P.nest(NestId).referencedArrays())
        CurrentKey.try_emplace(A, layoutKey(P, PD, A, NestId));
    for (const ReorganizationPoint &RP : PD.Reorganizations) {
      std::string Key = layoutKey(P, PD, RP.ArrayId, RP.ToNest);
      auto It = CurrentKey.find(RP.ArrayId);
      bool Redundant = Opts.ElideRedundantTransfers &&
                       It != CurrentKey.end() && It->second == Key;
      CurrentKey[RP.ArrayId] = Key;
      if (Redundant) {
        ++Plan.Stats.Eliminated;
        continue;
      }
      PlannedMessage M;
      M.Kind = PlannedMsgKind::Redistribute;
      M.NestId = RP.ToNest;
      M.ArrayId = RP.ArrayId;
      M.MessagesPerExecution = 1.0;
      M.ElementsPerMessage = arrayElements(P, RP.ArrayId);
      M.CrossNest = true;
      Emit(std::move(M), std::max(RP.Frequency, 0.0));
    }
  }

  // Test-only seeded plan corruptions (CodegenOptions::Miscompile): the
  // schedule verifier must catch these, and because they mutate the plan
  // itself the corrupted schedule also reaches the emitter and the
  // simulator — authentic translation-validation targets. Stats are
  // recomputed below, so the corruption is self-consistent.
  if (Opts.Miscompile == MiscompileMode::DropTransfer) {
    for (auto &[Id, Ops] : Plan.PerNest)
      if (!Ops.empty()) {
        const PlannedMessage &M = Ops.front();
        Messages -= M.MessagesPerExecution;
        Elements -= M.MessagesPerExecution * M.ElementsPerMessage;
        Ops.erase(Ops.begin());
        break;
      }
  } else if (Opts.Miscompile == MiscompileMode::ShrinkAggregation) {
    for (auto &[Id, Ops] : Plan.PerNest)
      for (PlannedMessage &M : Ops)
        if (M.FoldedOps > 1) {
          Elements -= M.MessagesPerExecution * M.ElementsPerMessage / 2.0;
          M.ElementsPerMessage /= 2.0;
        }
  }

  Plan.Stats.Messages = roundCount(Messages);
  Plan.Stats.Elements = roundCount(Elements);
  Plan.publishTo(Opts.Observe);
  Opts.Observe.count("codegen.plans");
  return Plan;
}
