//===- machine/ScheduleDerivation.cpp - Decomposition -> schedule ------------===//

#include "machine/ScheduleDerivation.h"

using namespace alp;

NestSchedule alp::deriveSchedule(const LoopNest &Nest,
                                 const CompDecomposition &CD,
                                 int64_t BlockSize) {
  NestSchedule S;
  S.BlockSize = BlockSize;
  unsigned Depth = Nest.depth();
  if (CD.Kernel.isFull() || CD.C.isZero()) {
    S.ExecMode = NestSchedule::Mode::Sequential;
    return S;
  }
  // Distributed loop: the loop mapped to the first used processor
  // dimension (row-major scan of C). Placement uses the same convention
  // (first nonzero row of D), so computation follows its data.
  unsigned Dist = Depth;
  for (unsigned R = 0; R != CD.C.rows() && Dist == Depth; ++R)
    for (unsigned K = 0; K != Depth; ++K)
      if (!CD.C.at(R, K).isZero()) {
        Dist = K;
        break;
      }
  if (Dist == Depth) {
    S.ExecMode = NestSchedule::Mode::Sequential;
    return S;
  }
  S.DistLoop = Dist;
  // Pipelining is only needed when the distributed loop actually carries a
  // dependence (it is sequential); a parallel distributed loop runs as a
  // forall even if the decomposition is blocked for locality.
  if (!CD.isBlocked() || Nest.Loops[Dist].isParallel()) {
    S.ExecMode = NestSchedule::Mode::Forall;
    return S;
  }
  // Pipelined: block a localized-but-distributed loop other than the
  // distributed one (prefer the outermost such loop).
  S.ExecMode = NestSchedule::Mode::Pipelined;
  S.PipeLoop = Dist;
  for (unsigned K = 0; K != Depth; ++K) {
    if (K == Dist)
      continue;
    Vector E = Vector::unit(Depth, K);
    if (CD.Localized.contains(E) && !CD.Kernel.contains(E)) {
      S.PipeLoop = K;
      break;
    }
  }
  if (S.PipeLoop == Dist) {
    // No second blocked dimension: fall back to forall over the blocks.
    S.ExecMode = NestSchedule::Mode::Forall;
  }
  return S;
}

ArrayPlacement alp::derivePlacement(const DataDecomposition &DD,
                                    bool Replicated) {
  if (Replicated)
    return ArrayPlacement::replicated();
  for (unsigned R = 0; R != DD.D.rows(); ++R)
    for (unsigned C = 0; C != DD.D.cols(); ++C)
      if (!DD.D.at(R, C).isZero())
        return ArrayPlacement::blockedDim(C);
  return ArrayPlacement::blockedDim(0);
}

void alp::applyDecomposition(NumaSimulator &Sim, const Program &P,
                             const ProgramDecomposition &PD) {
  int64_t BlockSize = Sim.machine().BlockSize;
  for (const auto &[NestId, CD] : PD.Comp)
    Sim.setSchedule(NestId, deriveSchedule(P.nest(NestId), CD, BlockSize));
  for (const auto &[Key, DD] : PD.Data) {
    auto [ArrayId, NestId] = Key;
    bool Repl = PD.ReplicatedDims.count(ArrayId) &&
                PD.ReplicatedDims.at(ArrayId) > 0;
    Sim.setPlacement(ArrayId, NestId, derivePlacement(DD, Repl));
  }
}
