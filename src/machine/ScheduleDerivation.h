//===- machine/ScheduleDerivation.h - Decomposition -> schedule -*- C++ -*-===//
///
/// \file
/// Bridges the compiler's output to the simulator's input: a
/// ProgramDecomposition determines, per nest, whether it runs
/// sequentially, as a forall, or pipelined (blocked), which loop is
/// distributed across the processors, and where each array's pages live.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_MACHINE_SCHEDULEDERIVATION_H
#define ALP_MACHINE_SCHEDULEDERIVATION_H

#include "core/Decomposition.h"
#include "machine/NumaSimulator.h"

namespace alp {

/// Derives the execution schedule of one nest from its computation
/// decomposition: the distributed loop is the first loop with a nonzero
/// coefficient in C; a blocked decomposition additionally picks a
/// localized-but-distributed loop to pipeline over.
NestSchedule deriveSchedule(const LoopNest &Nest, const CompDecomposition &CD,
                            int64_t BlockSize);

/// Derives where an array's pages should live under a data decomposition:
/// blocked along the first dimension D distributes (or replicated if the
/// driver marked the array replicated).
ArrayPlacement derivePlacement(const DataDecomposition &DD, bool Replicated);

/// Configures \p Sim with schedules and per-nest placements for the whole
/// decomposition. The pipeline block size comes from the simulator's
/// machine description (Sim.machine().BlockSize), the single source of
/// truth shared with codegen.
void applyDecomposition(NumaSimulator &Sim, const Program &P,
                        const ProgramDecomposition &PD);

} // namespace alp

#endif // ALP_MACHINE_SCHEDULEDERIVATION_H
