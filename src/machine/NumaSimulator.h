//===- machine/NumaSimulator.h - DASH-like NUMA simulator -------*- C++ -*-===//
///
/// \file
/// A performance simulator for a DASH-style cache-coherent NUMA machine
/// (Lenoski et al. [26]): clusters of processors share a local memory;
/// an access costs 1 cycle in cache, ~29 cycles in local cluster memory,
/// and 100-130 cycles in a remote cluster. Array pages live on the cluster
/// chosen by the placement policy (decomposition-driven blocks or
/// first-touch-style linear fill).
///
/// This is the substitution for the paper's Stanford DASH hardware: the
/// experiments of Figure 7 depend only on these published latency ratios,
/// the page placement policy, and the synchronization structure, all of
/// which are modeled. Execution is simulated at inner-loop *segment*
/// granularity: contiguous innermost runs are costed analytically (lines
/// touched x home latency + cache hits), nests run either sequentially,
/// as forall (max over processors plus a barrier), or software-pipelined
/// over blocks with point-to-point synchronization (Sec. 5's doacross).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_MACHINE_NUMASIMULATOR_H
#define ALP_MACHINE_NUMASIMULATOR_H

#include "core/CostModel.h"
#include "core/Decomposition.h"
#include "ir/Program.h"
#include "machine/CommSchedule.h"
#include "support/Trace.h"

#include <map>
#include <string>
#include <vector>

namespace alp {

/// Where an array's pages live.
struct ArrayPlacement {
  enum class Kind {
    BlockedDim,   ///< Blocks along one array dimension across clusters.
    LinearFill,   ///< First-touch-like: pages fill clusters in address
                  ///< order, spilling to the next cluster when one fills.
    Replicated    ///< Every cluster holds a copy (read-only data).
  };
  Kind PKind = Kind::BlockedDim;
  unsigned Dim = 0; ///< For BlockedDim.

  static ArrayPlacement blockedDim(unsigned Dim) {
    return {Kind::BlockedDim, Dim};
  }
  static ArrayPlacement linearFill() { return {Kind::LinearFill, 0}; }
  static ArrayPlacement replicated() { return {Kind::Replicated, 0}; }

  bool operator==(const ArrayPlacement &RHS) const {
    return PKind == RHS.PKind && Dim == RHS.Dim;
  }
  bool operator!=(const ArrayPlacement &RHS) const { return !(*this == RHS); }
};

/// How one nest executes.
struct NestSchedule {
  enum class Mode { Sequential, Forall, Pipelined, Wavefront2D };

  Mode ExecMode = Mode::Sequential;
  /// Loop whose iterations are block-distributed across processors.
  unsigned DistLoop = 0;
  /// Pipelined: loop split into blocks with cross-processor
  /// synchronization at block boundaries. Wavefront2D: the second
  /// distributed loop (processors form a 2-d grid over DistLoop x
  /// PipeLoop and execute the blocks along anti-diagonal wavefronts,
  /// Figure 3(b) -- the layout with pipeline-fill idle processors).
  unsigned PipeLoop = 0;
  int64_t BlockSize = 4;
};

/// Aggregate counters from one simulation.
struct SimResult {
  double Cycles = 0.0;
  double ComputeCycles = 0.0;
  double MemoryCycles = 0.0;
  double ReorgCycles = 0.0;
  double SyncCycles = 0.0;
  double CacheAccesses = 0.0;
  double LocalLineFetches = 0.0;
  double RemoteLineFetches = 0.0;
  /// Messages sent in message-passing mode: one per remote line under
  /// fine-grained access, amortized for bulk transfers, or the planned
  /// schedule's bulk messages when a CommSchedule is installed. Zero on
  /// shared-address-space machines.
  double MessagesSent = 0.0;

  std::string str() const;

  /// Publishes this result into \p MR as "sim.*" gauges (cycle totals are
  /// model outputs, not cross-jobs-deterministic counters).
  void publishTo(MetricsRegistry &MR) const;
};

/// The simulator. Configure placements and schedules, then run.
class NumaSimulator {
public:
  NumaSimulator(const Program &P, const MachineParams &M);

  /// Sets the placement an array should have while executing nest
  /// \p NestId; the simulator reorganizes (with cost) when consecutive
  /// nests disagree. A missing entry means "whatever it currently is".
  void setPlacement(unsigned ArrayId, unsigned NestId,
                    ArrayPlacement Placement);
  /// Sets the placement for an array in every nest (static layout).
  void setStaticPlacement(unsigned ArrayId, ArrayPlacement Placement);
  /// Sets the initial layout (before the first nest runs) without
  /// scheduling a reorganization.
  void setInitialPlacement(unsigned ArrayId, ArrayPlacement Placement);

  void setSchedule(unsigned NestId, NestSchedule Schedule);

  /// Installs a planned communication schedule (CommPlan::schedule()).
  /// In message-passing mode the simulator then costs the planned bulk
  /// messages — remote lines move at the hardware rate and the software
  /// overhead is paid per planned message — instead of charging the
  /// per-message overhead on every fine-grained remote line.
  void setCommSchedule(CommSchedule Schedule);

  /// The machine this simulator was built for (single source of truth
  /// for the block size threaded through schedule derivation).
  const MachineParams &machine() const { return M; }

  /// Observability sink: a "sim.run" span per run() (Detail = processor
  /// count), "sim.runs" / "sim.reorganizations" counters, and the last
  /// run's SimResult as "sim.*" gauges.
  void setObserve(TraceContext Observe) { this->Observe = Observe; }

  /// Runs the whole program once with \p NumProcs active processors
  /// (capped at the machine's processor count).
  SimResult run(unsigned NumProcs);

  /// Sequential baseline: every nest on one processor with all data local
  /// (the "best sequential version" the paper's speedups are relative to).
  double sequentialCycles();

private:
  const Program &P;
  MachineParams M;
  TraceContext Observe;
  std::map<std::pair<unsigned, unsigned>, ArrayPlacement> PlacementAt;
  std::map<unsigned, ArrayPlacement> InitialPlacement;
  std::map<unsigned, NestSchedule> Schedules;
  CommSchedule CommSched;

  struct RunState {
    unsigned Procs = 1;
    bool AllLocal = false; ///< Sequential-baseline mode.
    /// True when a planned CommSchedule drives message-passing costs:
    /// remote lines move at the hardware rate (the plan's bulk messages
    /// carry the software overhead) and per-line message counting is off.
    bool PlannedComm = false;
    std::map<unsigned, ArrayPlacement> Current;
    std::map<std::string, Rational> Bindings;
    SimResult Res;
  };

  unsigned clusters() const;
  unsigned clusterOfProc(unsigned Proc) const;

  /// Cluster holding element \p Index of \p ArrayId under \p Placement.
  unsigned homeCluster(unsigned ArrayId, const ArrayPlacement &Placement,
                       const std::vector<int64_t> &Index,
                       const RunState &S) const;

  /// Cost of a contiguous innermost segment of \p Length accesses with
  /// the given array-space stride vector, starting at \p Start, issued by
  /// \p Proc. Updates line/cache counters.
  double segmentCost(unsigned Proc, unsigned ArrayId,
                     const std::vector<int64_t> &Start,
                     const std::vector<int64_t> &StridePerIter,
                     int64_t Length, RunState &S) const;

  /// Cost of executing the iteration sub-range of \p Nest assigned to
  /// \p Proc where loop \p Level ranges only over [RangeLo, RangeHi].
  /// Ranges for unmentioned loops come from the bounds.
  struct LoopRange {
    unsigned Level;
    int64_t Lo, Hi;
  };
  double chunkCost(unsigned Proc, const LoopNest &Nest,
                   const std::vector<LoopRange> &Ranges, RunState &S) const;

  void runNodes(const std::vector<ProgramNode> &Nodes, RunState &S);
  void runNest(unsigned NestId, RunState &S);
  void reorganizeIfNeeded(unsigned NestId, RunState &S);
  /// Planned-mode software cost of the nest's scheduled messages.
  void plannedNestComm(unsigned NestId, RunState &S) const;

  /// Integer bounds of loop \p Level of \p Nest given outer values.
  std::pair<int64_t, int64_t> loopBounds(const LoopNest &Nest,
                                         unsigned Level,
                                         const std::vector<int64_t> &Outer,
                                         const RunState &S) const;
};

} // namespace alp

#endif // ALP_MACHINE_NUMASIMULATOR_H
