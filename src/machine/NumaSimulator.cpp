//===- machine/NumaSimulator.cpp - DASH-like NUMA simulator ------------------===//

#include "machine/NumaSimulator.h"

#include "support/Diagnostics.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <functional>
#include <cmath>
#include <sstream>

using namespace alp;

std::string SimResult::str() const {
  std::ostringstream OS;
  OS << "cycles=" << Cycles << " compute=" << ComputeCycles
     << " memory=" << MemoryCycles << " reorg=" << ReorgCycles
     << " sync=" << SyncCycles << " cache=" << CacheAccesses
     << " localLines=" << LocalLineFetches
     << " remoteLines=" << RemoteLineFetches
     << " messages=" << MessagesSent;
  return OS.str();
}

void SimResult::publishTo(MetricsRegistry &MR) const {
  MR.setGauge("sim.cycles", Cycles);
  MR.setGauge("sim.compute_cycles", ComputeCycles);
  MR.setGauge("sim.memory_cycles", MemoryCycles);
  MR.setGauge("sim.reorg_cycles", ReorgCycles);
  MR.setGauge("sim.sync_cycles", SyncCycles);
  MR.setGauge("sim.cache_accesses", CacheAccesses);
  MR.setGauge("sim.local_line_fetches", LocalLineFetches);
  MR.setGauge("sim.remote_line_fetches", RemoteLineFetches);
  MR.setGauge("sim.messages", MessagesSent);
}

NumaSimulator::NumaSimulator(const Program &P, const MachineParams &M)
    : P(P), M(M) {}

void NumaSimulator::setPlacement(unsigned ArrayId, unsigned NestId,
                                 ArrayPlacement Placement) {
  PlacementAt[{ArrayId, NestId}] = Placement;
}

void NumaSimulator::setStaticPlacement(unsigned ArrayId,
                                       ArrayPlacement Placement) {
  InitialPlacement[ArrayId] = Placement;
  for (const LoopNest &Nest : P.Nests)
    PlacementAt[{ArrayId, Nest.Id}] = Placement;
}

void NumaSimulator::setInitialPlacement(unsigned ArrayId,
                                        ArrayPlacement Placement) {
  InitialPlacement[ArrayId] = Placement;
}

void NumaSimulator::setSchedule(unsigned NestId, NestSchedule Schedule) {
  Schedules[NestId] = Schedule;
}

void NumaSimulator::setCommSchedule(CommSchedule Schedule) {
  CommSched = std::move(Schedule);
}

unsigned NumaSimulator::clusters() const {
  return std::max(1u, (M.NumProcs + M.ProcsPerCluster - 1) /
                          M.ProcsPerCluster);
}

unsigned NumaSimulator::clusterOfProc(unsigned Proc) const {
  return Proc / std::max(1u, M.ProcsPerCluster);
}

//===----------------------------------------------------------------------===//
// Bounds and placement
//===----------------------------------------------------------------------===//

namespace {

int64_t ceilDiv(int64_t A, int64_t B) {
  return A >= 0 ? (A + B - 1) / B : -((-A) / B);
}

int64_t rationalFloor(const Rational &R) {
  int64_t Q = R.num() / R.den();
  if (R.num() % R.den() != 0 && R.num() < 0)
    --Q;
  return Q;
}

int64_t rationalCeil(const Rational &R) {
  int64_t Q = R.num() / R.den();
  if (R.num() % R.den() != 0 && R.num() > 0)
    ++Q;
  return Q;
}

} // namespace

std::pair<int64_t, int64_t>
NumaSimulator::loopBounds(const LoopNest &Nest, unsigned Level,
                          const std::vector<int64_t> &Outer,
                          const RunState &S) const {
  Vector Iter(Nest.depth());
  for (unsigned I = 0; I != Nest.depth() && I < Outer.size(); ++I)
    Iter[I] = Rational(Outer[I]);
  int64_t Lo = INT64_MIN, Hi = INT64_MAX;
  for (const BoundTerm &T : Nest.Loops[Level].Lower)
    Lo = std::max(Lo, rationalCeil(T.evaluate(Iter, S.Bindings)));
  for (const BoundTerm &T : Nest.Loops[Level].Upper)
    Hi = std::min(Hi, rationalFloor(T.evaluate(Iter, S.Bindings)));
  return {Lo, Hi};
}

unsigned NumaSimulator::homeCluster(unsigned ArrayId,
                                    const ArrayPlacement &Placement,
                                    const std::vector<int64_t> &Index,
                                    const RunState &S) const {
  unsigned ActiveClusters = std::max(
      1u, (S.Procs + M.ProcsPerCluster - 1) / M.ProcsPerCluster);
  const ArraySymbol &A = P.array(ArrayId);
  switch (Placement.PKind) {
  case ArrayPlacement::Kind::Replicated:
    return UINT32_MAX; // Sentinel: every cluster has a copy.
  case ArrayPlacement::Kind::BlockedDim: {
    unsigned Dim = std::min<unsigned>(Placement.Dim, A.rank() - 1);
    Rational Ext = A.DimSizes[Dim].evaluate(S.Bindings);
    int64_t Extent = std::max<int64_t>(rationalFloor(Ext), 1);
    int64_t Block = ceilDiv(Extent, ActiveClusters);
    int64_t I = std::clamp<int64_t>(Index[Dim], 0, Extent - 1);
    return static_cast<unsigned>(I / std::max<int64_t>(Block, 1));
  }
  case ArrayPlacement::Kind::LinearFill: {
    // Row-major linear offset -> page -> cluster in fill order.
    int64_t Offset = 0;
    for (unsigned D = 0; D != A.rank(); ++D) {
      Rational Ext = A.DimSizes[D].evaluate(S.Bindings);
      int64_t Extent = std::max<int64_t>(rationalFloor(Ext), 1);
      Offset = Offset * Extent + std::clamp<int64_t>(Index[D], 0, Extent - 1);
    }
    double TotalElems = 1.0;
    for (unsigned D = 0; D != A.rank(); ++D) {
      Rational Ext = A.DimSizes[D].evaluate(S.Bindings);
      TotalElems *= std::max<double>(
          static_cast<double>(Ext.num()) / static_cast<double>(Ext.den()),
          1.0);
    }
    // Pages fill the active clusters evenly in address order.
    double Share = TotalElems / ActiveClusters;
    unsigned C = static_cast<unsigned>(Offset / std::max(Share, 1.0));
    return std::min(C, ActiveClusters - 1);
  }
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Segment and chunk costing
//===----------------------------------------------------------------------===//

double NumaSimulator::segmentCost(unsigned Proc, unsigned ArrayId,
                                  const std::vector<int64_t> &Start,
                                  const std::vector<int64_t> &StridePerIter,
                                  int64_t Length, RunState &S) const {
  if (Length <= 0)
    return 0.0;
  const ArraySymbol &A = P.array(ArrayId);
  auto PlIt = S.Current.find(ArrayId);
  ArrayPlacement Placement = PlIt != S.Current.end()
                                 ? PlIt->second
                                 : ArrayPlacement::linearFill();

  // Row-major linear stride of one iteration step.
  int64_t LinStride = 0;
  {
    int64_t Mult = 1;
    for (unsigned D = A.rank(); D != 0; --D) {
      LinStride += StridePerIter[D - 1] * Mult;
      Rational Ext = A.DimSizes[D - 1].evaluate(S.Bindings);
      Mult *= std::max<int64_t>(rationalFloor(Ext), 1);
    }
  }
  int64_t ByteStride = std::abs(LinStride) * A.ElemBytes;
  int64_t ElemsPerLine =
      ByteStride == 0
          ? Length
          : std::max<int64_t>(1, M.CacheLineBytes / std::max<int64_t>(
                                                        ByteStride, 1));
  int64_t Lines = ByteStride == 0 ? 1 : ceilDiv(Length, ElemsPerLine);

  unsigned MyCluster = clusterOfProc(Proc);
  auto LatencyOf = [&](unsigned Home) {
    if (S.AllLocal || Home == UINT32_MAX || Home == MyCluster)
      return M.LocalCycles;
    // Under a planned schedule the data arrived in a pre-posted bulk
    // message: the line moves at the hardware rate, and the software
    // overhead is charged once per planned message in plannedComm().
    if (S.PlannedComm)
      return M.RemoteCycles;
    // Without a plan every remote line is a demand-driven fetch paying
    // the full per-message software overhead; amortizing it over bulk
    // transfers is exactly what the planned schedule buys.
    return M.remoteLineCost();
  };
  auto CountLine = [&](unsigned Home, double N) {
    if (S.AllLocal || Home == UINT32_MAX || Home == MyCluster) {
      S.Res.LocalLineFetches += N;
      return;
    }
    S.Res.RemoteLineFetches += N;
    // Unplanned message-passing: every remote line is a message. Planned
    // messages are counted when the schedule's ops are charged.
    if (M.MessagePassing && !S.PlannedComm)
      S.Res.MessagesSent += N;
  };

  std::vector<int64_t> EndIdx(Start);
  for (unsigned D = 0; D != A.rank(); ++D)
    EndIdx[D] += StridePerIter[D] * (Length - 1);
  unsigned HomeStart = homeCluster(ArrayId, Placement, Start, S);
  unsigned HomeEnd = homeCluster(ArrayId, Placement, EndIdx, S);

  double Cost = 0.0;
  if (HomeStart == HomeEnd) {
    // Homogeneous segment: closed form.
    double Lat = LatencyOf(HomeStart);
    Cost = Lines * Lat + (Length - Lines) * M.CacheCycles;
    S.Res.CacheAccesses += Length - Lines;
    CountLine(HomeStart, static_cast<double>(Lines));
    return Cost;
  }
  // Heterogeneous: walk line by line.
  std::vector<int64_t> Idx(Start);
  for (int64_t L = 0; L != Lines; ++L) {
    unsigned Home = homeCluster(ArrayId, Placement, Idx, S);
    Cost += LatencyOf(Home);
    CountLine(Home, 1.0);
    for (unsigned D = 0; D != A.rank(); ++D)
      Idx[D] += StridePerIter[D] * ElemsPerLine;
  }
  Cost += (Length - Lines) * M.CacheCycles;
  S.Res.CacheAccesses += Length - Lines;
  return Cost;
}

double NumaSimulator::chunkCost(unsigned Proc, const LoopNest &Nest,
                                const std::vector<LoopRange> &Ranges,
                                RunState &S) const {
  unsigned Depth = Nest.depth();
  std::vector<int64_t> Outer(Depth, 0);
  double Total = 0.0;

  auto RangeFor = [&](unsigned Level) -> std::pair<int64_t, int64_t> {
    auto B = loopBounds(Nest, Level, Outer, S);
    for (const LoopRange &R : Ranges)
      if (R.Level == Level) {
        B.first = std::max(B.first, R.Lo);
        B.second = std::min(B.second, R.Hi);
      }
    return B;
  };

  // Recursive enumeration of all loops but the innermost; the innermost is
  // costed as a segment per statement access.
  std::function<void(unsigned)> Rec = [&](unsigned Level) {
    if (Level + 1 == Depth) {
      auto [Lo, Hi] = RangeFor(Level);
      int64_t Len = Hi - Lo + 1;
      if (Len <= 0)
        return;
      Outer[Level] = Lo;
      Vector Iter(Depth);
      for (unsigned I = 0; I != Depth; ++I)
        Iter[I] = Rational(Outer[I]);
      for (const Statement &Stmt : Nest.Body) {
        Total += static_cast<double>(Stmt.WorkCycles) * Len;
        S.Res.ComputeCycles += static_cast<double>(Stmt.WorkCycles) * Len;
        for (const ArrayAccess &Acc : Stmt.Accesses) {
          // Start = f(iter at Lo); stride = F * e_inner.
          Vector StartQ = Acc.Map.evaluate(Iter, S.Bindings);
          std::vector<int64_t> Start(Acc.Map.arrayDim());
          std::vector<int64_t> Stride(Acc.Map.arrayDim());
          for (unsigned D = 0; D != Acc.Map.arrayDim(); ++D) {
            Start[D] = rationalFloor(StartQ[D]);
            Stride[D] =
                rationalFloor(Acc.Map.linear().at(D, Depth - 1));
          }
          double C = segmentCost(Proc, Acc.ArrayId, Start, Stride, Len, S);
          Total += C;
          S.Res.MemoryCycles += C;
        }
      }
      return;
    }
    auto [Lo, Hi] = RangeFor(Level);
    for (int64_t V = Lo; V <= Hi; ++V) {
      Outer[Level] = V;
      Rec(Level + 1);
    }
  };
  Rec(0);
  return Total;
}

//===----------------------------------------------------------------------===//
// Nest execution
//===----------------------------------------------------------------------===//

void NumaSimulator::reorganizeIfNeeded(unsigned NestId, RunState &S) {
  const LoopNest &Nest = P.nest(NestId);
  unsigned ActiveClusters =
      std::max(1u, (S.Procs + M.ProcsPerCluster - 1) / M.ProcsPerCluster);
  for (unsigned A : Nest.referencedArrays()) {
    auto Want = PlacementAt.find({A, NestId});
    if (Want == PlacementAt.end())
      continue;
    auto Cur = S.Current.find(A);
    if (Cur != S.Current.end() && Cur->second == Want->second)
      continue;
    if (Cur == S.Current.end() || ActiveClusters == 1) {
      // First touch (or a single cluster, where every layout coincides):
      // adopt without cost.
      S.Current[A] = Want->second;
      continue;
    }
    // Move the whole array: each active processor copies its share, one
    // remote read and one remote write per cache line.
    double Elems = 1.0;
    for (const SymAffine &Dim : P.array(A).DimSizes) {
      Rational V = Dim.evaluate(S.Bindings);
      Elems *= std::max<double>(
          static_cast<double>(V.num()) / static_cast<double>(V.den()), 1.0);
    }
    double Lines = Elems * P.array(A).ElemBytes / M.CacheLineBytes;
    double PerLine = S.PlannedComm ? M.RemoteCycles : M.bulkRemoteLineCost();
    double Cycles = std::max(
        Lines * 2.0 * PerLine / std::max(1u, S.Procs),
        Lines / std::max(M.RemoteLinesPerCycle, 1e-9));
    if (M.MessagePassing) {
      if (S.PlannedComm) {
        // The planned redistribute: one pre-arranged bulk exchange per
        // processor; the software overhead is paid once on the critical
        // path instead of per message.
        Cycles += M.MessageOverheadCycles;
        S.Res.MessagesSent += S.Procs;
      } else {
        S.Res.MessagesSent +=
            Lines * 2.0 / std::max(M.BulkLinesPerMessage, 1.0);
      }
    }
    S.Res.ReorgCycles += Cycles;
    S.Res.Cycles += Cycles;
    S.Current[A] = Want->second;
    Observe.count("sim.reorganizations");
  }
}

void NumaSimulator::plannedNestComm(unsigned NestId, RunState &S) const {
  auto It = CommSched.PerNest.find(NestId);
  if (It == CommSched.PerNest.end())
    return;
  double Cycles = 0.0;
  for (const CommScheduleOp &Op : It->second) {
    switch (Op.OpKind) {
    case CommScheduleOp::Kind::Shift:
      // One aggregated boundary exchange; every processor sends
      // concurrently, so the critical path pays the software overhead
      // once per planned message.
      Cycles += M.MessageOverheadCycles * Op.MessagesPerExecution;
      S.Res.MessagesSent += Op.MessagesPerExecution * S.Procs;
      break;
    case CommScheduleOp::Kind::BlockBoundary:
      // The per-block boundary train: overlapped isends hide everything
      // but the pipeline fill; otherwise each boundary pays the
      // overhead.
      Cycles += M.MessageOverheadCycles *
                (Op.Overlapped ? 1.0 : Op.MessagesPerExecution);
      S.Res.MessagesSent += Op.MessagesPerExecution * S.Procs;
      break;
    case CommScheduleOp::Kind::Broadcast: {
      double Hops = std::ceil(std::log2(std::max<double>(S.Procs, 2.0)));
      double Lines = Op.ElementsPerMessage * P.array(Op.ArrayId).ElemBytes /
                     std::max(1u, M.CacheLineBytes);
      Cycles += Op.MessagesPerExecution *
                (Hops * M.MessageOverheadCycles + Lines * M.RemoteCycles);
      S.Res.MessagesSent +=
          Op.MessagesPerExecution * std::max<double>(S.Procs - 1.0, 1.0);
      break;
    }
    case CommScheduleOp::Kind::Redistribute:
      // Cross-nest layout changes are charged by reorganizeIfNeeded's
      // placement walk; only access-level redistributes add their
      // per-execution exchange here.
      if (Op.CrossNest)
        break;
      Cycles += M.MessageOverheadCycles * Op.MessagesPerExecution;
      S.Res.MessagesSent += Op.MessagesPerExecution * S.Procs;
      break;
    }
  }
  S.Res.Cycles += Cycles;
  S.Res.MemoryCycles += Cycles;
}

void NumaSimulator::runNest(unsigned NestId, RunState &S) {
  const LoopNest &Nest = P.nest(NestId);
  reorganizeIfNeeded(NestId, S);
  if (S.PlannedComm)
    plannedNestComm(NestId, S);
  double RemoteBefore = S.Res.RemoteLineFetches;
  // Remote traffic of the whole nest is capped by the interconnect: the
  // nest cannot finish faster than the remote lines can move.
  auto BandwidthBound = [&](double ComputedTime) {
    double RemoteLines = S.Res.RemoteLineFetches - RemoteBefore;
    double MinTime = RemoteLines / std::max(M.RemoteLinesPerCycle, 1e-9);
    return std::max(ComputedTime, MinTime);
  };

  NestSchedule Sched;
  auto SIt = Schedules.find(NestId);
  if (SIt != Schedules.end())
    Sched = SIt->second;
  if (S.Procs == 1)
    Sched.ExecMode = NestSchedule::Mode::Sequential;

  switch (Sched.ExecMode) {
  case NestSchedule::Mode::Sequential: {
    double T = chunkCost(0, Nest, {}, S);
    S.Res.Cycles += BandwidthBound(T);
    return;
  }
  case NestSchedule::Mode::Forall: {
    unsigned Level = std::min<unsigned>(Sched.DistLoop, Nest.depth() - 1);
    auto [Lo, Hi] = loopBounds(Nest, Level, {}, S);
    int64_t Extent = std::max<int64_t>(Hi - Lo + 1, 1);
    int64_t Strip = ceilDiv(Extent, S.Procs);
    double MaxT = 0.0;
    for (unsigned Pr = 0; Pr != S.Procs; ++Pr) {
      int64_t SLo = Lo + Pr * Strip;
      int64_t SHi = std::min<int64_t>(SLo + Strip - 1, Hi);
      if (SLo > SHi)
        continue;
      double T = chunkCost(Pr, Nest, {{Level, SLo, SHi}}, S);
      MaxT = std::max(MaxT, T);
    }
    S.Res.Cycles += BandwidthBound(MaxT) + M.BarrierCycles;
    S.Res.SyncCycles += M.BarrierCycles;
    return;
  }
  case NestSchedule::Mode::Wavefront2D: {
    // Figure 3(b): a near-square processor grid owns one 2-d block each;
    // block (r, c) waits for (r-1, c) and (r, c-1). Only the blocks on
    // one anti-diagonal run concurrently, so processors idle during the
    // pipeline fill and drain.
    unsigned DLevel = std::min<unsigned>(Sched.DistLoop, Nest.depth() - 1);
    unsigned BLevel = std::min<unsigned>(Sched.PipeLoop, Nest.depth() - 1);
    unsigned PR = 1;
    while ((PR + 1) * (PR + 1) <= S.Procs)
      ++PR;
    unsigned PC = S.Procs / PR;
    auto [DLo, DHi] = loopBounds(Nest, DLevel, {}, S);
    auto [BLo, BHi] = loopBounds(Nest, BLevel, {}, S);
    int64_t RStrip = ceilDiv(std::max<int64_t>(DHi - DLo + 1, 1), PR);
    int64_t CStrip = ceilDiv(std::max<int64_t>(BHi - BLo + 1, 1), PC);
    std::vector<std::vector<double>> Finish(PR,
                                            std::vector<double>(PC, 0.0));
    double Total = 0.0, SyncTotal = 0.0;
    for (unsigned R = 0; R != PR; ++R)
      for (unsigned C = 0; C != PC; ++C) {
        int64_t RLo = DLo + R * RStrip;
        int64_t RHi2 = std::min<int64_t>(RLo + RStrip - 1, DHi);
        int64_t CLo = BLo + C * CStrip;
        int64_t CHi = std::min<int64_t>(CLo + CStrip - 1, BHi);
        double Cost = 0.0;
        if (RLo <= RHi2 && CLo <= CHi)
          Cost = chunkCost(R * PC + C, Nest,
                           {{DLevel, RLo, RHi2}, {BLevel, CLo, CHi}}, S);
        double Ready = 0.0;
        if (R > 0) {
          Ready = std::max(Ready, Finish[R - 1][C] + M.SyncCycles);
          SyncTotal += M.SyncCycles;
        }
        if (C > 0) {
          Ready = std::max(Ready, Finish[R][C - 1] + M.SyncCycles);
          SyncTotal += M.SyncCycles;
        }
        Finish[R][C] = Ready + Cost;
        Total = std::max(Total, Finish[R][C]);
      }
    S.Res.Cycles += BandwidthBound(Total) + M.BarrierCycles;
    S.Res.SyncCycles += SyncTotal + M.BarrierCycles;
    return;
  }
  case NestSchedule::Mode::Pipelined: {
    unsigned DLevel = std::min<unsigned>(Sched.DistLoop, Nest.depth() - 1);
    unsigned BLevel = std::min<unsigned>(Sched.PipeLoop, Nest.depth() - 1);
    auto [DLo, DHi] = loopBounds(Nest, DLevel, {}, S);
    auto [BLo, BHi] = loopBounds(Nest, BLevel, {}, S);
    int64_t DExtent = std::max<int64_t>(DHi - DLo + 1, 1);
    int64_t BExtent = std::max<int64_t>(BHi - BLo + 1, 1);
    int64_t Strip = ceilDiv(DExtent, S.Procs);
    int64_t BS = std::max<int64_t>(Sched.BlockSize, 1);
    int64_t NumBlocks = ceilDiv(BExtent, BS);
    // Wavefront DP over (proc, block).
    std::vector<double> PrevRow(NumBlocks, 0.0);
    double Finish = 0.0;
    double SyncTotal = 0.0;
    for (unsigned Pr = 0; Pr != S.Procs; ++Pr) {
      int64_t SLo = DLo + Pr * Strip;
      int64_t SHi = std::min<int64_t>(SLo + Strip - 1, DHi);
      std::vector<double> Row(NumBlocks, 0.0);
      double PrevInRow = 0.0;
      for (int64_t B = 0; B != NumBlocks; ++B) {
        double Ready = PrevInRow;
        if (Pr > 0)
          Ready = std::max(Ready, PrevRow[B] + M.SyncCycles);
        double Cost = 0.0;
        if (SLo <= SHi) {
          int64_t CLo = BLo + B * BS;
          int64_t CHi = std::min<int64_t>(CLo + BS - 1, BHi);
          Cost = chunkCost(Pr, Nest,
                           {{DLevel, SLo, SHi}, {BLevel, CLo, CHi}}, S);
          // Synchronization is not free for the processor either: the
          // wait/signal pair occupies it once per block.
          Cost += M.SyncCycles;
        }
        Row[B] = Ready + Cost;
        if (Pr > 0)
          SyncTotal += M.SyncCycles;
        PrevInRow = Row[B];
        Finish = std::max(Finish, Row[B]);
      }
      PrevRow = std::move(Row);
    }
    S.Res.Cycles += BandwidthBound(Finish) + M.BarrierCycles;
    S.Res.SyncCycles += SyncTotal + M.BarrierCycles;
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Structure-tree walk
//===----------------------------------------------------------------------===//

void NumaSimulator::runNodes(const std::vector<ProgramNode> &Nodes,
                             RunState &S) {
  for (const ProgramNode &N : Nodes) {
    switch (N.NodeKind) {
    case ProgramNode::Kind::Nest:
      runNest(N.NestId, S);
      break;
    case ProgramNode::Kind::SequentialLoop: {
      Rational TripQ = N.TripCount.evaluate(S.Bindings);
      int64_t Trip = std::max<int64_t>(rationalFloor(TripQ), 0);
      if (Trip == 0)
        break;
      // Simulate the first iteration (placements settle), then one steady
      // iteration, and extrapolate the remaining Trip - 2.
      Rational SavedBinding;
      bool HadBinding = S.Bindings.count(N.IndexName);
      if (HadBinding)
        SavedBinding = S.Bindings[N.IndexName];
      S.Bindings[N.IndexName] = SavedBinding; // Lower bound value.
      runNodes(N.Children, S);
      if (Trip > 1) {
        SimResult AfterFirst = S.Res;
        S.Bindings[N.IndexName] = SavedBinding + Rational(1);
        runNodes(N.Children, S);
        if (Trip > 2) {
          double K = static_cast<double>(Trip - 2);
          auto Extrapolate = [&](double SimResult::*F) {
            S.Res.*F += (S.Res.*F - AfterFirst.*F) * K;
          };
          Extrapolate(&SimResult::Cycles);
          Extrapolate(&SimResult::ComputeCycles);
          Extrapolate(&SimResult::MemoryCycles);
          Extrapolate(&SimResult::ReorgCycles);
          Extrapolate(&SimResult::SyncCycles);
          Extrapolate(&SimResult::CacheAccesses);
          Extrapolate(&SimResult::LocalLineFetches);
          Extrapolate(&SimResult::RemoteLineFetches);
          Extrapolate(&SimResult::MessagesSent);
        }
      }
      if (HadBinding)
        S.Bindings[N.IndexName] = SavedBinding;
      break;
    }
    case ProgramNode::Kind::Branch: {
      // Expected cost: weight each arm; keep the likelier arm's state.
      RunState ThenS = S;
      runNodes(N.Children, ThenS);
      RunState ElseS = S;
      runNodes(N.ElseChildren, ElseS);
      double P1 = N.TakenProbability;
      RunState &Keep = P1 >= 0.5 ? ThenS : ElseS;
      double Blend = P1 * ThenS.Res.Cycles + (1 - P1) * ElseS.Res.Cycles;
      Keep.Res.Cycles = Blend;
      S = std::move(Keep);
      break;
    }
    }
  }
}

namespace {

/// Injection site at the head of every simulation run; a fault surfaces
/// as AlpException for the tool-level stage guard.
FailPoint FpSimulateRun("machine.simulate.run");

} // namespace

SimResult NumaSimulator::run(unsigned NumProcs) {
  TraceSpan Span(Observe.Trace, "sim.run", NumProcs);
  FpSimulateRun.evaluateOrThrow();
  Observe.count("sim.runs");
  RunState S;
  S.Procs = std::max(1u, std::min(NumProcs, M.NumProcs));
  // One processor exchanges nothing: the planned schedule only applies
  // to actual multi-processor message-passing runs.
  S.PlannedComm = M.MessagePassing && !CommSched.empty() && S.Procs > 1;
  S.Bindings = P.SymbolBindings;
  S.Current.clear();
  for (const auto &[A, Pl] : InitialPlacement)
    S.Current[A] = Pl;
  if (S.PlannedComm) {
    // One-time prologue operations (hoisted broadcasts): a log-depth
    // forwarding tree, each stage one bulk message.
    for (const CommScheduleOp &Op : CommSched.Prologue) {
      double Hops = std::ceil(std::log2(std::max<double>(S.Procs, 2.0)));
      double Lines = Op.ElementsPerMessage * P.array(Op.ArrayId).ElemBytes /
                     std::max(1u, M.CacheLineBytes);
      double C = Op.MessagesPerExecution *
                 (Hops * M.MessageOverheadCycles + Lines * M.RemoteCycles);
      S.Res.Cycles += C;
      S.Res.MemoryCycles += C;
      S.Res.MessagesSent +=
          Op.MessagesPerExecution * std::max<double>(S.Procs - 1.0, 1.0);
    }
  }
  runNodes(P.TopLevel, S);
  if (Observe.Metrics)
    S.Res.publishTo(*Observe.Metrics);
  return S.Res;
}

double NumaSimulator::sequentialCycles() {
  RunState S;
  S.Procs = 1;
  S.AllLocal = true;
  S.Bindings = P.SymbolBindings;
  for (const auto &[A, Pl] : InitialPlacement)
    S.Current[A] = Pl;
  runNodes(P.TopLevel, S);
  return S.Res.Cycles;
}
