//===- machine/CommSchedule.h - Planned message schedule --------*- C++ -*-===//
///
/// \file
/// The machine-level view of a planned communication schedule: what the
/// NumaSimulator's message-passing mode costs instead of fine-grained
/// per-access messages. This is a plain data structure so the machine
/// layer needs no dependency on codegen; the codegen-side planner
/// (codegen/CommPlan.h) lowers its richer per-nest plan into one of
/// these via CommPlan::schedule().
///
/// Message counts are normalized per participating processor per nest
/// execution (prologue ops: per program run); the simulator multiplies
/// by the active processor count and the nest's execution frequency.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_MACHINE_COMMSCHEDULE_H
#define ALP_MACHINE_COMMSCHEDULE_H

#include <map>
#include <vector>

namespace alp {

/// One bulk message operation of the planned schedule.
struct CommScheduleOp {
  enum class Kind {
    Shift,         ///< Nearest-neighbor boundary-layer exchange.
    BlockBoundary, ///< Pipelined per-block boundary send.
    Broadcast,     ///< One-time broadcast of a replicated array.
    Redistribute   ///< Whole-section layout change.
  };
  Kind OpKind = Kind::Shift;
  unsigned ArrayId = 0;
  /// Bulk messages per participating processor per nest execution
  /// (Broadcast in the prologue: per program run).
  double MessagesPerExecution = 1.0;
  /// Array elements carried by each message.
  double ElementsPerMessage = 0.0;
  /// True when the send is overlapped with the next block's compute:
  /// only the pipeline fill pays the software overhead.
  bool Overlapped = false;
  /// Redistribute only: true for cross-nest layout changes, which the
  /// simulator charges through its own reorganization walk rather than
  /// as a per-nest message (avoids double-costing).
  bool CrossNest = false;
};

/// The whole program's planned schedule: one-time prologue operations
/// (hoisted broadcasts) plus per-nest operation lists.
struct CommSchedule {
  std::vector<CommScheduleOp> Prologue;
  std::map<unsigned, std::vector<CommScheduleOp>> PerNest;

  bool empty() const { return Prologue.empty() && PerNest.empty(); }
};

} // namespace alp

#endif // ALP_MACHINE_COMMSCHEDULE_H
