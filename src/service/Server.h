//===- service/Server.h - The alpd compilation service ----------*- C++ -*-===//
///
/// \file
/// The long-lived compilation daemon behind tools/alpd.cpp: a Unix-domain
/// stream socket server that answers compile requests with the exact
/// bytes the alpc CLI would produce, served from the process-wide
/// DecompositionCache when the canonical request key repeats.
///
/// Line protocol (all replies end the header line with '\n'; payloads
/// are length-prefixed and binary-safe):
///
///   PING                     -> PONG
///   STATS                    -> STATS <len>\n<counters JSON>
///   COMPILE <len>\n<payload> -> RESULT <exit> <hit|miss> <outlen>
///                               <errlen>\n<stdout bytes><stderr bytes>
///   BATCH <n>                -> n RESULT replies (request order), then
///     then n blocks, each        BATCHSTATS <len>\n<report JSON>
///     <len>\n<payload>
///   QUIT                     -> BYE (connection closes)
///   SHUTDOWN                 -> BYE (server drains and exits)
///   anything else            -> ERR <message> (connection closes)
///
/// A COMPILE payload is one flags line (the semantic alpc flags, e.g.
/// "--spmd --machine=touchstone --procs=64") followed by '\n' and the DSL
/// source text. Requests whose source parses are keyed canonically
/// (DecompositionCache.h) and answered from cache on repeats; parse
/// failures bypass the cache. Connections may issue any number of
/// commands.
///
/// BATCH payloads have the same shape as COMPILE payloads. The batch runs
/// through the same BatchSession API as `alpc --batch` (service/Batch.h):
/// items are pre-keyed, deduplicated, served from the shared cache where
/// possible, and compiled on the server's persistent batch pool with warm
/// per-worker arena reuse. A dedup or cache serve replies "hit". The
/// BATCHSTATS trailer is the batch session's accumulated aggregate report
/// (schema v2, kind "batch") covering every BATCH served so far.
///
/// Concurrency: one accept thread feeds a connection queue drained by the
/// existing support/ThreadPool (each worker owns a connection at a time);
/// every compile runs under a support/Supervisor for structured capture /
/// retry and publishes the usual driver.* counters next to the service.*
/// ones. Shutdown is cooperative and async-signal-safe (atomic flag +
/// listen-fd close), so SIGTERM cannot hang the daemon mid-storm.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SERVICE_SERVER_H
#define ALP_SERVICE_SERVER_H

#include "service/DecompositionCache.h"
#include "support/Metrics.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace alp {

class BatchSession;
struct CompileRequest;

/// Parses a service request's flags line (the semantic subset of alpc's
/// table — everything except the CLI-only --trace/--stats/--failpoints/
/// --help) into \p Req. On failure returns false with the reason in
/// \p Err. Exposed for the service tests.
bool parseServiceRequestFlags(const std::string &Line, CompileRequest &Req,
                              std::string &Err);

/// Daemon configuration.
struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket.
  std::string SocketPath;
  /// Worker threads draining connections; 0 = one per hardware thread.
  unsigned Threads = 0;
  /// Whole-cache entry bound (DecompositionCache).
  size_t MaxCacheEntries = 4096;
  /// When non-empty: load the cache image at start (fail-soft) and save
  /// it at shutdown, both via atomic file replacement.
  std::string CachePersistPath;
  /// Pipeline wall-clock deadline imposed on every request in
  /// milliseconds (0 = none); never loosens a tighter per-request value.
  uint64_t RequestDeadlineMs = 0;
  /// Supervisor attempts per compile (first run + retries).
  unsigned CompileAttempts = 1;
  /// Bump the cache generation every N compile requests, aging idle
  /// entries toward eviction.
  uint64_t GenerationEvery = 64;
};

/// The alpd server: start() binds and spawns the accept + worker threads,
/// wait() blocks until shutdown (SHUTDOWN command or requestShutdown()).
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts serving. InvalidInput on socket errors.
  Status start();

  /// Blocks until the server shuts down, then joins every thread and
  /// (when configured) persists the cache.
  void wait();

  /// Initiates shutdown: stops accepting, drains queued connections, lets
  /// in-flight requests finish. Async-signal-safe (atomic flag + close).
  void requestShutdown();

  MetricsRegistry &metrics() { return Metrics; }
  DecompositionCache &cache() { return Cache; }
  const ServerOptions &options() const { return Opts; }

private:
  void acceptLoop();
  void drainConnections();
  void handleConnection(int Fd);
  /// Runs one COMPILE payload; fills the reply header fields and bytes.
  void handleCompile(const std::string &Payload, int &Exit, bool &Hit,
                     std::string &OutBytes, std::string &ErrBytes);
  /// Runs \p Payloads through the shared batch session and writes the
  /// RESULT replies plus the BATCHSTATS trailer to \p Fd. False on a
  /// socket write failure (caller closes the connection).
  bool handleBatch(int Fd, const std::vector<std::string> &Payloads);

  ServerOptions Opts;
  MetricsRegistry Metrics;
  DecompositionCache Cache;
  std::unique_ptr<ThreadPool> Pool;
  /// Lazily created on the first BATCH verb; serialized by BatchMutex so
  /// its warm worker arenas persist across batches from any connection.
  std::unique_ptr<BatchSession> Batch;
  std::mutex BatchMutex;

  std::atomic<bool> Stop{false};
  std::atomic<int> ListenFd{-1};
  std::atomic<uint64_t> CompileCount{0};

  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<int> ConnQueue;
  bool Draining = false; ///< Set once the accept loop exits.

  std::thread AcceptThread;
  std::thread WorkerThread;
};

} // namespace alp

#endif // ALP_SERVICE_SERVER_H
