//===- service/Server.cpp - The alpd compilation service ---------------------===//

#include "service/Server.h"

#include "core/CompileSession.h"
#include "frontend/Lowering.h"
#include "service/Batch.h"
#include "support/CliFlags.h"
#include "support/Supervisor.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace alp;

//===----------------------------------------------------------------------===//
// Request flags
//===----------------------------------------------------------------------===//

bool alp::parseServiceRequestFlags(const std::string &Line,
                                   CompileRequest &Req, std::string &Err) {
  DriverOptions &Opts = Req.Driver;
  std::string LintPassesSpec;

  auto BoolFlag = [](bool &Target, bool Value) {
    return [&Target, Value](const std::string &) {
      Target = Value;
      return true;
    };
  };
  auto U64Flag = [](uint64_t &Target) {
    return [&Target](const std::string &V) { return parseU64(V, Target); };
  };

  // The semantic subset of alpc's flag table: same names, same value
  // grammar, minus the CLI-only I/O flags (--trace/--stats/--failpoints).
  const std::vector<FlagSpec> Table = {
      {"--no-local-phase", nullptr, "", BoolFlag(Opts.RunLocalPhase, false)},
      {"--no-blocking", nullptr, "", BoolFlag(Opts.EnableBlocking, false)},
      {"--no-replication", nullptr, "",
       BoolFlag(Opts.EnableReplication, false)},
      {"--no-projection", nullptr, "",
       BoolFlag(Opts.EnableIdleProjection, false)},
      {"--force-single", nullptr, "",
       [&](const std::string &) {
         Opts.Policy = JoinPolicy::ForceSingle;
         return true;
       }},
      {"--never-join", nullptr, "",
       [&](const std::string &) {
         Opts.Policy = JoinPolicy::NeverJoin;
         return true;
       }},
      {"--multi-level", nullptr, "", BoolFlag(Opts.MultiLevel, true)},
      {"--fuse", nullptr, "", BoolFlag(Req.DoFuse, true)},
      {"--spmd", nullptr, "", BoolFlag(Req.DoSpmd, true)},
      {"--emit", "spmd|comm-plan", "",
       [&](const std::string &V) {
         if (V != "spmd" && V != "comm-plan")
           return false;
         Req.EmitMode = V;
         return true;
       }},
      {"--machine", "dash|touchstone", "",
       [&](const std::string &V) {
         if (V != "dash" && V != "touchstone")
           return false;
         Req.MachineName = V;
         return true;
       }},
      {"--comm", nullptr, "", BoolFlag(Req.DoComm, true)},
      {"--print-ir", nullptr, "", BoolFlag(Req.DoIr, true)},
      {"--deps", nullptr, "", BoolFlag(Req.DoDeps, true)},
      {"--lint", nullptr, "", BoolFlag(Req.DoLint, true)},
      {"--lint-passes", "list", "",
       [&](const std::string &V) {
         LintPassesSpec = V;
         return true;
       }},
      {"--miscompile", "mode", "",
       [&](const std::string &V) {
         return parseMiscompileMode(V, Req.Miscompile);
       }},
      {"--verify", nullptr, "", BoolFlag(Req.DoVerify, true)},
      {"--Werror", nullptr, "", BoolFlag(Req.WError, true)},
      {"--diagnostics-format", "text|json|sarif", "",
       [&](const std::string &V) {
         if (V == "text")
           Req.Format = DiagFormat::Text;
         else if (V == "json")
           Req.Format = DiagFormat::Json;
         else if (V == "sarif")
           Req.Format = DiagFormat::Sarif;
         else
           return false;
         return true;
       }},
      {"--simulate", nullptr, "", BoolFlag(Req.DoSim, true)},
      {"--procs", "N", "",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Req.Procs = static_cast<unsigned>(U);
         return true;
       }},
      {"--block", "N", "",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Req.Block = static_cast<int64_t>(U);
         return true;
       }},
      {"--max-fm", "N", "", U64Flag(Opts.Budget.MaxFMConstraints)},
      {"--max-steps", "N", "", U64Flag(Opts.Budget.MaxEliminationSteps)},
      {"--max-iters", "N", "", U64Flag(Opts.Budget.MaxSolverIterations)},
      {"--deadline-ms", "N", "", U64Flag(Opts.DeadlineMs)},
      {"--jobs", "N", "",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.Jobs = static_cast<unsigned>(U);
         return true;
       }},
      {"--task-retries", "N", "",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.TaskAttempts = static_cast<unsigned>(U) + 1;
         return true;
       }},
      {"--task-deadline-ms", "N", "", U64Flag(Opts.TaskDeadlineMs)},
  };

  // Tokenize on spaces, then apply the table with alpc's value grammar
  // (--flag=value or --flag value), reporting errors as a string instead
  // of stderr.
  std::vector<std::string> Tokens;
  std::istringstream TS(Line);
  for (std::string T; TS >> T;)
    Tokens.push_back(T);

  for (size_t I = 0; I != Tokens.size(); ++I) {
    const std::string &A = Tokens[I];
    if (A.rfind("--", 0) != 0) {
      Err = "unexpected operand '" + A + "'";
      return false;
    }
    std::string Name = A, Value;
    bool HasValue = false;
    if (size_t Eq = A.find('='); Eq != std::string::npos) {
      Name = A.substr(0, Eq);
      Value = A.substr(Eq + 1);
      HasValue = true;
    }
    const FlagSpec *Spec = nullptr;
    for (const FlagSpec &F : Table)
      if (Name == F.Name) {
        Spec = &F;
        break;
      }
    if (!Spec) {
      Err = "unknown option '" + Name + "'";
      return false;
    }
    if (!Spec->Arg) {
      if (HasValue) {
        Err = "option '" + Name + "' takes no value";
        return false;
      }
    } else if (!HasValue) {
      if (I + 1 == Tokens.size()) {
        Err = "option '" + Name + "' requires a value";
        return false;
      }
      Value = Tokens[++I];
    }
    if (!Spec->Apply(Value)) {
      Err = "invalid value '" + Value + "' for option '" + Name + "'";
      return false;
    }
  }

  if (!LintPassesSpec.empty()) {
    Req.LintPassesExplicit = true;
    Req.SelRace = Req.SelModel = Req.SelDecomp = Req.SelSchedule = false;
    std::string Spec = LintPassesSpec;
    while (!Spec.empty()) {
      size_t Comma = Spec.find(',');
      std::string Id = Spec.substr(0, Comma);
      Spec = Comma == std::string::npos ? "" : Spec.substr(Comma + 1);
      if (Id == "race")
        Req.SelRace = true;
      else if (Id == "model")
        Req.SelModel = true;
      else if (Id == "decomp")
        Req.SelDecomp = true;
      else if (Id == "schedule")
        Req.SelSchedule = true;
      else {
        Err = "unknown lint pass '" + Id + "'";
        return false;
      }
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Socket I/O helpers
//===----------------------------------------------------------------------===//

namespace {

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool writeAll(int Fd, const std::string &S) {
  return writeAll(Fd, S.data(), S.size());
}

/// Reads one '\n'-terminated line (terminator consumed, not returned).
/// False on EOF/error/oversized line.
bool readLine(int Fd, std::string &Line, size_t MaxLen = 4096) {
  Line.clear();
  char C;
  for (;;) {
    ssize_t N = ::recv(Fd, &C, 1, 0);
    if (N == 0)
      return false;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (C == '\n')
      return true;
    Line.push_back(C);
    if (Line.size() > MaxLen)
      return false;
  }
}

bool readExact(int Fd, std::string &Out, size_t Len) {
  Out.resize(Len);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::recv(Fd, Out.data() + Got, Len - Got, 0);
    if (N == 0)
      return false;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Got += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.MaxCacheEntries) {
  Cache.setObserve(TraceContext{nullptr, &Metrics});
}

Server::~Server() {
  requestShutdown();
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (WorkerThread.joinable())
    WorkerThread.join();
}

Status Server::start() {
  if (Opts.SocketPath.empty())
    return Status::error(StatusCode::InvalidInput, "empty socket path");
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error(StatusCode::InvalidInput,
                         "socket path too long: " + Opts.SocketPath);
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error(StatusCode::InvalidInput,
                         std::string("socket: ") + std::strerror(errno));
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status S = Status::error(StatusCode::InvalidInput,
                             "bind '" + Opts.SocketPath +
                                 "': " + std::strerror(errno));
    ::close(Fd);
    return S;
  }
  if (::listen(Fd, 128) < 0) {
    Status S = Status::error(StatusCode::InvalidInput,
                             std::string("listen: ") + std::strerror(errno));
    ::close(Fd);
    return S;
  }
  ListenFd.store(Fd, std::memory_order_release);

  // Warm start: a stale, corrupt, or fault-injected cache image degrades
  // to an empty cache, never a dead daemon.
  if (!Opts.CachePersistPath.empty()) {
    if (Status S = Cache.loadFromFile(Opts.CachePersistPath); !S.isOk())
      Metrics.add("service.cache_load_failures");
    else
      Metrics.add("service.cache_loads");
  }

  Pool = std::make_unique<ThreadPool>(Opts.Threads);
  AcceptThread = std::thread([this] { acceptLoop(); });
  WorkerThread = std::thread([this] {
    Pool->parallelFor(Pool->threadCount(),
                      [this](size_t) { drainConnections(); });
  });
  return Status::ok();
}

void Server::requestShutdown() {
  Stop.store(true, std::memory_order_release);
  int Fd = ListenFd.exchange(-1, std::memory_order_acq_rel);
  if (Fd >= 0) {
    // shutdown() before close(): a close alone does not wake a thread
    // already blocked in accept() on this fd (the in-flight syscall pins
    // the open file), so the accept loop would never observe the stop.
    // Both calls are async-signal-safe, which the SIGTERM handler needs.
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
}

void Server::wait() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (WorkerThread.joinable())
    WorkerThread.join();
  if (!Opts.CachePersistPath.empty()) {
    if (Status S = Cache.saveToFile(Opts.CachePersistPath); !S.isOk())
      Metrics.add("service.cache_save_failures");
    else
      Metrics.add("service.cache_saves");
  }
}

void Server::acceptLoop() {
  for (;;) {
    int LFd = ListenFd.load(std::memory_order_acquire);
    if (LFd < 0)
      break;
    int C = ::accept(LFd, nullptr, nullptr);
    if (C < 0) {
      if (Stop.load(std::memory_order_acquire))
        break;
      if (errno == EINTR)
        continue;
      break;
    }
    if (Stop.load(std::memory_order_acquire)) {
      ::close(C);
      break;
    }
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      ConnQueue.push_back(C);
    }
    QueueCV.notify_one();
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Draining = true;
  }
  QueueCV.notify_all();
}

void Server::drainConnections() {
  for (;;) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [this] { return Draining || !ConnQueue.empty(); });
      if (ConnQueue.empty())
        return; // draining and nothing queued: exit
      Fd = ConnQueue.front();
      ConnQueue.pop_front();
    }
    handleConnection(Fd);
  }
}

void Server::handleConnection(int Fd) {
  std::string Line;
  while (readLine(Fd, Line)) {
    if (Line == "PING") {
      Metrics.add("service.pings");
      if (!writeAll(Fd, "PONG\n"))
        break;
      continue;
    }
    if (Line == "STATS") {
      std::string Json = Metrics.renderCountersJson();
      std::ostringstream Reply;
      Reply << "STATS " << Json.size() << "\n" << Json;
      if (!writeAll(Fd, Reply.str()))
        break;
      continue;
    }
    if (Line == "QUIT") {
      writeAll(Fd, "BYE\n");
      break;
    }
    if (Line == "SHUTDOWN") {
      Metrics.add("service.shutdowns");
      writeAll(Fd, "BYE\n");
      requestShutdown();
      break;
    }
    if (Line.rfind("COMPILE ", 0) == 0) {
      uint64_t Len = 0;
      if (!parseU64(Line.substr(8), Len) || Len > (64u << 20)) {
        Metrics.add("service.protocol_errors");
        writeAll(Fd, "ERR malformed COMPILE length\n");
        break;
      }
      std::string Payload;
      if (!readExact(Fd, Payload, Len)) {
        Metrics.add("service.protocol_errors");
        break;
      }
      int Exit = 0;
      bool Hit = false;
      std::string OutBytes, ErrBytes;
      handleCompile(Payload, Exit, Hit, OutBytes, ErrBytes);
      std::ostringstream Reply;
      Reply << "RESULT " << Exit << ' ' << (Hit ? "hit" : "miss") << ' '
            << OutBytes.size() << ' ' << ErrBytes.size() << '\n';
      if (!writeAll(Fd, Reply.str()) || !writeAll(Fd, OutBytes) ||
          !writeAll(Fd, ErrBytes))
        break;
      continue;
    }
    if (Line.rfind("BATCH ", 0) == 0) {
      uint64_t Count = 0;
      if (!parseU64(Line.substr(6), Count) || Count == 0 || Count > 4096) {
        Metrics.add("service.protocol_errors");
        writeAll(Fd, "ERR malformed BATCH count\n");
        break;
      }
      std::vector<std::string> Payloads(Count);
      bool ReadOk = true;
      for (uint64_t I = 0; I != Count && ReadOk; ++I) {
        std::string LenLine;
        uint64_t Len = 0;
        ReadOk = readLine(Fd, LenLine) && parseU64(LenLine, Len) &&
                 Len <= (64u << 20) && readExact(Fd, Payloads[I], Len);
      }
      if (!ReadOk) {
        Metrics.add("service.protocol_errors");
        writeAll(Fd, "ERR malformed BATCH payload\n");
        break;
      }
      if (!handleBatch(Fd, Payloads))
        break;
      continue;
    }
    Metrics.add("service.protocol_errors");
    writeAll(Fd, "ERR unknown command\n");
    break;
  }
  ::close(Fd);
}

bool Server::handleBatch(int Fd, const std::vector<std::string> &Payloads) {
  Metrics.add("service.batches");
  Metrics.add("service.requests", Payloads.size());

  // Flag-line errors answer per item without compiling, exactly like the
  // single-COMPILE path; well-formed items go to the batch session.
  const size_t N = Payloads.size();
  std::vector<BatchItemResult> Results(N);
  std::vector<bool> FlagError(N, false);
  std::vector<CompileRequest> Items;
  std::vector<size_t> ItemIndex; // Batch position -> payload position.
  for (size_t I = 0; I != N; ++I) {
    size_t Eol = Payloads[I].find('\n');
    std::string FlagsLine =
        Eol == std::string::npos ? Payloads[I] : Payloads[I].substr(0, Eol);
    CompileRequest Req;
    Req.FileName = "<batch:" + std::to_string(I) + ">";
    Req.Source =
        Eol == std::string::npos ? std::string() : Payloads[I].substr(Eol + 1);
    std::string FlagErr;
    if (!parseServiceRequestFlags(FlagsLine, Req, FlagErr)) {
      Metrics.add("service.request_flag_errors");
      FlagError[I] = true;
      Results[I].ExitCode = 2;
      Results[I].Error = "error: " + FlagErr + "\n";
      continue;
    }
    Items.push_back(std::move(Req));
    ItemIndex.push_back(I);
  }

  {
    std::lock_guard<std::mutex> Lock(BatchMutex);
    if (!Batch) {
      BatchOptions BOpts;
      BOpts.Jobs = Opts.Threads;
      BOpts.Cache = &Cache;
      BOpts.MaxAttempts = Opts.CompileAttempts;
      BOpts.RequestDeadlineMs = Opts.RequestDeadlineMs;
      Batch = std::make_unique<BatchSession>(BOpts);
    }
    // Age the cache at the same per-request cadence as single COMPILEs.
    for (size_t I = 0; I != Items.size(); ++I) {
      uint64_t Seq = CompileCount.fetch_add(1, std::memory_order_relaxed) + 1;
      if (Opts.GenerationEvery && Seq % Opts.GenerationEvery == 0)
        Cache.bumpGeneration();
    }
    std::vector<BatchItemResult> BatchResults = Batch->run(Items);
    for (size_t K = 0; K != BatchResults.size(); ++K)
      Results[ItemIndex[K]] = std::move(BatchResults[K]);
    Metrics.setGauge("service.cache_size", static_cast<double>(Cache.size()));
  }

  for (size_t I = 0; I != N; ++I) {
    bool Hit = Results[I].CacheHit || Results[I].DedupHit;
    std::ostringstream Reply;
    Reply << "RESULT " << Results[I].ExitCode << ' '
          << (Hit ? "hit" : "miss") << ' ' << Results[I].Output.size() << ' '
          << Results[I].Error.size() << '\n';
    if (!writeAll(Fd, Reply.str()) || !writeAll(Fd, Results[I].Output) ||
        !writeAll(Fd, Results[I].Error))
      return false;
  }
  std::string Report;
  {
    std::lock_guard<std::mutex> Lock(BatchMutex);
    Report = Batch->reportJson();
  }
  std::ostringstream Trailer;
  Trailer << "BATCHSTATS " << Report.size() << '\n' << Report;
  return writeAll(Fd, Trailer.str());
}

void Server::handleCompile(const std::string &Payload, int &Exit, bool &Hit,
                           std::string &OutBytes, std::string &ErrBytes) {
  Metrics.add("service.requests");
  uint64_t Seq = CompileCount.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Opts.GenerationEvery && Seq % Opts.GenerationEvery == 0)
    Cache.bumpGeneration();

  size_t Eol = Payload.find('\n');
  std::string FlagsLine =
      Eol == std::string::npos ? Payload : Payload.substr(0, Eol);
  std::string Source =
      Eol == std::string::npos ? std::string() : Payload.substr(Eol + 1);

  CompileRequest Req;
  Req.FileName = "<request>";
  Req.Source = Source;
  std::string FlagErr;
  if (!parseServiceRequestFlags(FlagsLine, Req, FlagErr)) {
    Metrics.add("service.request_flag_errors");
    Exit = 2;
    Hit = false;
    OutBytes.clear();
    ErrBytes = "error: " + FlagErr + "\n";
    return;
  }
  if (Opts.RequestDeadlineMs &&
      (Req.Driver.DeadlineMs == 0 ||
       Req.Driver.DeadlineMs > Opts.RequestDeadlineMs))
    Req.Driver.DeadlineMs = Opts.RequestDeadlineMs;

  // Canonical keying needs the parsed program; a parse failure bypasses
  // the cache (the session re-parses and renders the diagnostics). On a
  // miss the parse is handed to the session (CompileRequest::PreParsed)
  // so the source is never parsed twice.
  bool HaveKey = false;
  RequestKey Key;
  {
    auto Diags = std::make_shared<DiagnosticEngine>();
    std::optional<Program> KeyProg = compileDsl(Req.Source, *Diags);
    if (KeyProg) {
      Key = canonicalRequestKey(Req, *KeyProg);
      HaveKey = true;
      Req.PreParsed = std::make_shared<const Program>(std::move(*KeyProg));
      Req.PreParsedDiags = std::move(Diags);
    }
  }
  if (HaveKey) {
    DecompositionCache::Entry Cached;
    if (Cache.lookup(Key, Cached)) {
      Exit = Cached.ExitCode;
      Hit = true;
      OutBytes = std::move(Cached.Output);
      ErrBytes = std::move(Cached.Error);
      Metrics.setGauge("service.cache_size",
                       static_cast<double>(Cache.size()));
      return;
    }
  }
  Hit = false;

  // The compile runs under the Supervisor: structured exception capture,
  // optional retries, and the driver.tasks_* ledger counters — one
  // misbehaving request cannot unwind a worker thread.
  SupervisorOptions SOpts;
  SOpts.MaxAttempts = Opts.CompileAttempts;
  SOpts.Observe = TraceContext{nullptr, &Metrics};
  Supervisor Sup(nullptr, nullptr, SOpts);
  CaptureResult R;
  std::vector<SupervisedOutcome> Outcomes =
      Sup.run(1, [&](size_t, ResourceBudget *) -> Status {
        R = runSessionCaptured(Req);
        return Status::ok();
      });
  if (!Outcomes.empty() && Outcomes[0].degraded()) {
    Metrics.add("service.compile_failures");
    Exit = 3;
    OutBytes.clear();
    ErrBytes =
        "error: service: " + Outcomes[0].Result.str() + "\n";
    return;
  }
  Exit = R.ExitCode;
  OutBytes = R.Out;
  ErrBytes = R.Err;
  if (Exit == 4)
    Metrics.add("service.compile_degraded");

  if (HaveKey) {
    DecompositionCache::Entry E;
    E.ExitCode = Exit;
    E.Output = OutBytes;
    E.Error = ErrBytes;
    Cache.insert(Key, std::move(E));
    Metrics.setGauge("service.cache_size",
                     static_cast<double>(Cache.size()));
  }
}
