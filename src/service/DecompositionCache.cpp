//===- service/DecompositionCache.cpp - Process-wide compile cache -----------===//

#include "service/DecompositionCache.h"

#include "core/CompileSession.h"
#include "ir/Printer.h"
#include "support/AtomicFile.h"
#include "support/FailPoint.h"

#include <fstream>
#include <sstream>

using namespace alp;

namespace {

/// Cache-image ingestion: fired after the persisted image is read but
/// before it is trusted, so a corrupt-image recovery path can be forced.
FailPoint FpCacheLoad("service.cache.load");

constexpr const char *CacheMagic = "alp-decomposition-cache 1";

} // namespace

uint64_t alp::fnv1aHash(const std::string &Bytes) {
  uint64_t H = 14695981039346656037ULL;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

std::string alp::requestFingerprint(const CompileRequest &Req) {
  // Every field that can change the answer bytes, in a fixed order.
  // Driver.Jobs is deliberately absent (output is byte-identical for
  // every value — the determinism contract); the Partition/Orientation
  // seed templates are not reachable from a service request and are
  // likewise excluded.
  const DriverOptions &D = Req.Driver;
  std::ostringstream OS;
  OS << "machine=" << Req.MachineName << " procs=" << Req.Procs
     << " block=" << Req.Block << " spmd=" << Req.DoSpmd
     << " ir=" << Req.DoIr << " deps=" << Req.DoDeps << " sim=" << Req.DoSim
     << " comm=" << Req.DoComm << " fuse=" << Req.DoFuse
     << " verify=" << Req.DoVerify << " lint=" << Req.DoLint
     << " werror=" << Req.WError << " emit=" << Req.EmitMode
     << " miscompile=" << static_cast<int>(Req.Miscompile)
     << " format=" << static_cast<int>(Req.Format)
     << " lintsel=" << Req.LintPassesExplicit << Req.SelRace << Req.SelModel
     << Req.SelDecomp << Req.SelSchedule << " local=" << D.RunLocalPhase
     << " blocking=" << D.EnableBlocking
     << " policy=" << static_cast<int>(D.Policy)
     << " multilevel=" << D.MultiLevel << " repl=" << D.EnableReplication
     << " proj=" << D.EnableIdleProjection
     << " maxfm=" << D.Budget.MaxFMConstraints
     << " maxsteps=" << D.Budget.MaxEliminationSteps
     << " maxiters=" << D.Budget.MaxSolverIterations
     << " deadline=" << D.DeadlineMs << " attempts=" << D.TaskAttempts
     << " taskdeadline=" << D.TaskDeadlineMs;
  return OS.str();
}

RequestKey alp::canonicalRequestKey(const CompileRequest &Req,
                                    const Program &P) {
  RequestKey K;
  K.Repr = requestFingerprint(Req);
  K.Repr += '\n';
  K.Repr += printProgram(P);
  K.Hash = fnv1aHash(K.Repr);
  return K;
}

DecompositionCache::DecompositionCache(size_t MaxEntries)
    : MaxPerShard(std::max<size_t>(1, MaxEntries / NumShards)) {}

bool DecompositionCache::lookup(const RequestKey &K, Entry &Out) {
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  if (It == S.Map.end()) {
    Observe.count("service.cache_misses");
    return false;
  }
  It->second.Gen = generation(); // touch: hot entries stay young
  Out = It->second.E;
  Observe.count("service.cache_hits");
  return true;
}

void DecompositionCache::insert(const RequestKey &K, Entry E) {
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    It->second = Stored{std::move(E), generation()};
    return;
  }
  if (S.Map.size() >= MaxPerShard) {
    // Evict the oldest generation resident in this shard. When every
    // entry is current-generation the cache is simply hot; evict one
    // arbitrary entry to stay bounded.
    uint64_t Oldest = UINT64_MAX;
    for (const auto &KV : S.Map)
      Oldest = std::min(Oldest, KV.second.Gen);
    size_t Evicted = 0;
    for (auto I = S.Map.begin(); I != S.Map.end();) {
      if (I->second.Gen == Oldest && S.Map.size() > 1) {
        I = S.Map.erase(I);
        ++Evicted;
      } else {
        ++I;
      }
    }
    if (Evicted == 0 && !S.Map.empty()) {
      S.Map.erase(S.Map.begin());
      Evicted = 1;
    }
    Observe.count("service.cache_evictions", Evicted);
  }
  S.Map.emplace(K, Stored{std::move(E), generation()});
  Observe.count("service.cache_inserts");
}

size_t DecompositionCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Map.size();
  }
  return N;
}

void DecompositionCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
  }
}

std::string DecompositionCache::serialize() const {
  // Text header + length-prefixed records: lengths make the payload
  // binary-safe (outputs contain arbitrary bytes and newlines).
  std::ostringstream OS;
  OS << CacheMagic << "\n";
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &KV : S.Map) {
      OS << "entry " << KV.first.Hash << ' ' << KV.second.E.ExitCode << ' '
         << KV.first.Repr.size() << ' ' << KV.second.E.Output.size() << ' '
         << KV.second.E.Error.size() << '\n';
      OS << KV.first.Repr << KV.second.E.Output << KV.second.E.Error;
    }
  }
  return OS.str();
}

Status DecompositionCache::deserialize(const std::string &Text) {
  clear();
  auto Fail = [&](const std::string &Why) {
    clear();
    return Status::error(StatusCode::InvalidInput,
                         "cache image: " + Why);
  };
  size_t Pos = Text.find('\n');
  if (Pos == std::string::npos || Text.substr(0, Pos) != CacheMagic)
    return Fail("bad magic header");
  ++Pos;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      return Fail("truncated record header");
    std::istringstream Header(Text.substr(Pos, Eol - Pos));
    std::string Tag;
    uint64_t Hash = 0;
    int Exit = 0;
    size_t RepLen = 0, OutLen = 0, ErrLen = 0;
    if (!(Header >> Tag >> Hash >> Exit >> RepLen >> OutLen >> ErrLen) ||
        Tag != "entry")
      return Fail("malformed record header");
    Pos = Eol + 1;
    if (Text.size() - Pos < RepLen + OutLen + ErrLen)
      return Fail("truncated record payload");
    RequestKey K;
    K.Repr = Text.substr(Pos, RepLen);
    Pos += RepLen;
    K.Hash = fnv1aHash(K.Repr);
    if (K.Hash != Hash)
      return Fail("key hash mismatch (corrupt image)");
    Entry E;
    E.ExitCode = Exit;
    E.Output = Text.substr(Pos, OutLen);
    Pos += OutLen;
    E.Error = Text.substr(Pos, ErrLen);
    Pos += ErrLen;
    insert(K, std::move(E));
  }
  return Status::ok();
}

Status DecompositionCache::saveToFile(const std::string &Path) const {
  return writeFileAtomic(Path, serialize());
}

Status DecompositionCache::loadFromFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::error(StatusCode::InvalidInput,
                         "cannot open cache file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (Status S = FpCacheLoad.evaluate(); !S.isOk()) {
    clear();
    return S;
  }
  return deserialize(Buf.str());
}
