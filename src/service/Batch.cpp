//===- service/Batch.cpp - Batch compilation API --------------------------===//

#include "service/Batch.h"

#include "frontend/Lowering.h"
#include "service/DecompositionCache.h"
#include "support/Diagnostics.h"
#include "support/StatsReport.h"
#include "support/Supervisor.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <unordered_map>

using namespace alp;

namespace {

/// Mirrors ServerOptions::RequestDeadlineMs: never extends a deadline the
/// request already carries.
void clampDeadline(CompileRequest &Req, uint64_t MaxMs) {
  if (MaxMs &&
      (Req.Driver.DeadlineMs == 0 || Req.Driver.DeadlineMs > MaxMs))
    Req.Driver.DeadlineMs = MaxMs;
}

} // namespace

CaptureResult alp::runSessionCaptured(const CompileRequest &Req) {
  CaptureResult R;
  char *OutBuf = nullptr, *ErrBuf = nullptr;
  size_t OutLen = 0, ErrLen = 0;
  std::FILE *OutF = open_memstream(&OutBuf, &OutLen);
  std::FILE *ErrF = open_memstream(&ErrBuf, &ErrLen);
  if (!OutF || !ErrF) {
    if (OutF)
      std::fclose(OutF);
    if (ErrF)
      std::fclose(ErrF);
    std::free(OutBuf);
    std::free(ErrBuf);
    R.ExitCode = 3;
    R.Err = "error: service: cannot allocate capture streams\n";
    return R;
  }
  CompileResult CR = CompileSession::run(Req, OutF, ErrF);
  R.ExitCode = CR.ExitCode;
  R.LintErrors = CR.Lints.count(Diagnostic::Kind::Error);
  R.LintWarnings = CR.Lints.count(Diagnostic::Kind::Warning);
  if (CR.Decomposition)
    R.Degradations = static_cast<unsigned>(CR.Decomposition->Degradations.size());
  std::fclose(OutF);
  std::fclose(ErrF);
  R.Out.assign(OutBuf, OutLen);
  R.Err.assign(ErrBuf, ErrLen);
  std::free(OutBuf);
  std::free(ErrBuf);
  return R;
}

BatchSession::BatchSession(const BatchOptions &O)
    : Opts(O), Pool(Opts.Jobs ? Opts.Jobs : ThreadPool::hardwareConcurrency()) {}

std::vector<BatchItemResult>
BatchSession::run(const std::vector<CompileRequest> &Items) {
  const size_t N = Items.size();
  std::vector<BatchItemResult> Res(N);

  // Pass 1 — pre-key every item in parallel. Pure per item: parse the
  // source and form the canonical whole-program key. Parse failures keep
  // no key and compile individually (the session re-renders the
  // diagnostics deterministically).
  struct KeyInfo {
    bool HaveKey = false;
    RequestKey Key;
    /// The pre-key parse, kept so the compile pass skips re-parsing
    /// (CompileRequest::PreParsed).
    std::shared_ptr<const Program> Prog;
    std::shared_ptr<const DiagnosticEngine> Diags;
  };
  std::vector<KeyInfo> Keys(N);
  Pool.parallelFor(N, [&](size_t I) {
    CompileRequest Req = Items[I];
    clampDeadline(Req, Opts.RequestDeadlineMs);
    auto Diags = std::make_shared<DiagnosticEngine>();
    std::optional<Program> P = compileDsl(Req.Source, *Diags);
    if (P) {
      Keys[I].Key = canonicalRequestKey(Req, *P);
      Keys[I].HaveKey = true;
      Keys[I].Prog = std::make_shared<const Program>(std::move(*P));
      Keys[I].Diags = std::move(Diags);
    }
  });

  // Pass 2 — resolve serially in request order, so which item is the
  // compiling representative of a duplicate group, and what counts as a
  // cache hit, are pure functions of the request list and the cache's
  // prior contents (no lookup/insert race with concurrent compiles).
  enum class Serve { Compile, Cache, Dedup };
  std::vector<Serve> How(N, Serve::Compile);
  std::vector<size_t> RepIndex(N, 0); // Dedup: index of the representative.
  std::unordered_map<std::string, size_t> RepOf;
  std::vector<size_t> ToCompile;
  for (size_t I = 0; I != N; ++I) {
    if (!Keys[I].HaveKey) {
      ToCompile.push_back(I);
      continue;
    }
    auto It = RepOf.find(Keys[I].Key.Repr);
    if (It != RepOf.end()) {
      How[I] = Serve::Dedup;
      RepIndex[I] = It->second;
      continue;
    }
    if (Opts.Cache) {
      DecompositionCache::Entry Cached;
      if (Opts.Cache->lookup(Keys[I].Key, Cached)) {
        How[I] = Serve::Cache;
        Res[I].CacheHit = true;
        Res[I].ExitCode = Cached.ExitCode;
        Res[I].Output = std::move(Cached.Output);
        Res[I].Error = std::move(Cached.Error);
        continue;
      }
    }
    RepOf.emplace(Keys[I].Key.Repr, I);
    ToCompile.push_back(I);
  }

  // Pass 3 — compile the representatives under the Supervisor on the
  // persistent pool. Each request's own driver reuses the same pool
  // (nested sections degrade to serial on the warm worker) and publishes
  // its counters into the shared aggregate registry; both are
  // deterministic merges.
  std::vector<CaptureResult> Captured(ToCompile.size());
  SupervisorOptions SOpts;
  SOpts.MaxAttempts = Opts.MaxAttempts;
  SOpts.Observe = TraceContext{nullptr, &Agg};
  Supervisor Sup(&Pool, nullptr, SOpts);
  std::vector<SupervisedOutcome> Outcomes =
      Sup.run(ToCompile.size(), [&](size_t K, ResourceBudget *) -> Status {
        size_t I = ToCompile[K];
        CompileRequest Req = Items[I];
        clampDeadline(Req, Opts.RequestDeadlineMs);
        Req.PreParsed = Keys[I].Prog;
        Req.PreParsedDiags = Keys[I].Diags;
        Req.Driver.Pool = &Pool;
        Req.Driver.Observe = TraceContext{nullptr, &Agg};
        Captured[K] = runSessionCaptured(Req);
        return Status::ok();
      });

  // Pass 4 — merge serially in request order: land compiled results,
  // insert them into the shared cache, then copy dedup hits from their
  // representative, and tally.
  for (size_t K = 0; K != ToCompile.size(); ++K) {
    size_t I = ToCompile[K];
    if (K < Outcomes.size() && Outcomes[K].degraded()) {
      // Same shape as the service's supervised-compile failure path.
      Captured[K] = CaptureResult{};
      Captured[K].ExitCode = 3;
      Captured[K].Err = "error: service: " + Outcomes[K].Result.str() + "\n";
    }
    Res[I].ExitCode = Captured[K].ExitCode;
    Res[I].Output = Captured[K].Out;
    Res[I].Error = Captured[K].Err;
    if (Opts.Cache && Keys[I].HaveKey) {
      DecompositionCache::Entry E;
      E.ExitCode = Res[I].ExitCode;
      E.Output = Res[I].Output;
      E.Error = Res[I].Error;
      Opts.Cache->insert(Keys[I].Key, std::move(E));
    }
  }
  std::unordered_map<size_t, size_t> CapturedOf;
  for (size_t K = 0; K != ToCompile.size(); ++K)
    CapturedOf.emplace(ToCompile[K], K);

  uint64_t RunCacheHits = 0, RunDedupHits = 0;
  for (size_t I = 0; I != N; ++I) {
    ItemRow Row;
    Row.File = Items[I].FileName;
    switch (How[I]) {
    case Serve::Compile: {
      Row.Family = "compile";
      const CaptureResult &C = Captured[CapturedOf[I]];
      Row.LintErrors = C.LintErrors;
      Row.LintWarnings = C.LintWarnings;
      Row.Degradations = C.Degradations;
      ++Compiles;
      break;
    }
    case Serve::Cache:
      Row.Family = "cache";
      ++CacheHits;
      ++RunCacheHits;
      break;
    case Serve::Dedup: {
      Row.Family = "dedup";
      size_t Rep = RepIndex[I];
      Res[I].DedupHit = true;
      Res[I].ExitCode = Res[Rep].ExitCode;
      Res[I].Output = Res[Rep].Output;
      Res[I].Error = Res[Rep].Error;
      ++DedupHits;
      ++RunDedupHits;
      break;
    }
    }
    Row.ExitCode = Res[I].ExitCode;
    Rows.push_back(std::move(Row));
    ++Requests;
  }

  // The deterministic batch.* tallies (docs/OBSERVABILITY.md). Published
  // once per run from the serial merge, never from racing workers.
  Agg.add("batch.requests", N);
  uint64_t Ok = 0, Failed = 0, Degraded = 0;
  for (size_t I = 0; I != N; ++I) {
    if (Res[I].ExitCode == 0)
      ++Ok;
    else if (Res[I].ExitCode == 4)
      ++Degraded;
    else
      ++Failed;
  }
  Agg.add("batch.ok", Ok);
  Agg.add("batch.failures", Failed);
  Agg.add("batch.degraded", Degraded);
  Agg.add("batch.compiles", ToCompile.size());
  Agg.add("batch.cache_hits", RunCacheHits);
  Agg.add("batch.dedup_hits", RunDedupHits);
  return Res;
}

std::string BatchSession::reportJson() const {
  StatsReport R("batch");
  R.fieldUInt("requests", Requests);
  R.fieldUInt("compiles", Compiles);
  R.fieldUInt("cache_hits", CacheHits);
  R.fieldUInt("dedup_hits", DedupHits);
  R.fieldDouble("cache_hit_rate",
                Requests ? static_cast<double>(CacheHits + DedupHits) /
                               static_cast<double>(Requests)
                         : 0.0);
  std::string Items = "[";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const ItemRow &Row = Rows[I];
    Items += I ? ",\n    " : "\n    ";
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "\"exit\": %d, \"served\": \"%s\", \"lint_errors\": %u, "
                  "\"lint_warnings\": %u, \"degradations\": %u}",
                  Row.ExitCode, Row.Family.c_str(), Row.LintErrors,
                  Row.LintWarnings, Row.Degradations);
    Items += "{\"file\": \"" + StatsReport::escapeJson(Row.File) + "\", " + Buf;
  }
  Items += Rows.empty() ? "]" : "\n  ]";
  R.field("items", Items);
  R.setCounters(&Agg);
  // No gauges, no spans: the report stays byte-identical across --jobs.
  return R.render();
}
