//===- service/Batch.h - Batch compilation API ------------------*- C++ -*-===//
///
/// \file
/// The batch redesign of the single-shot CompileSession surface: a
/// BatchSession takes N CompileRequests and fans them out over one
/// persistent worker pool with shared DecompositionCache access and warm
/// per-worker arena reuse across requests — the follow-on parked by the
/// arena (PR 7) and service (PR 9) work. Both `alpc --batch <dir>` and
/// the alpd BATCH verb answer through this one code path.
///
/// Execution model, per run():
///
///   1. pre-key: every item is parsed and canonically keyed in parallel
///      (a pure function per item);
///   2. resolve, serially in request order: an item whose key is already
///      in the shared cache is a cache hit; an item whose key matches an
///      earlier un-cached item is a dedup hit of that representative;
///      everything else (including parse failures, which have no key)
///      compiles;
///   3. compile: the representatives run under the Supervisor on the
///      session's persistent pool. Each request's driver reuses that same
///      pool (DriverOptions::Pool), so nested analysis fan-outs degrade to
///      serial on a warm worker whose thread-local arena blocks persist
///      across requests — a warm batch is allocation-free in the linalg
///      steady state (ArenaTest.BatchSteadyStateAllocationFree);
///   4. merge, serially in request order: results land per item, compiled
///      entries are inserted into the shared cache, dedup hits copy their
///      representative's bytes, and the batch.* tallies are published.
///
/// Determinism: the set of compiled programs, every per-item byte, and
/// the aggregate report are pure functions of the requests and the
/// pre-existing cache contents — identical for every Jobs value. The
/// report (schema v2, kind "batch") therefore carries counters but no
/// gauges, spans, or wall times.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SERVICE_BATCH_H
#define ALP_SERVICE_BATCH_H

#include "core/CompileSession.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alp {

class DecompositionCache;

/// A CompileSession run with both CLI streams captured in memory plus the
/// result facts the batch report aggregates. Exported here so the server's
/// single-COMPILE path and the batch path capture identically.
struct CaptureResult {
  int ExitCode = 0;
  std::string Out, Err;
  unsigned LintErrors = 0;   ///< Lint/verify diagnostics of Kind::Error.
  unsigned LintWarnings = 0; ///< ... and Kind::Warning.
  unsigned Degradations = 0; ///< Decomposition degradation-ledger entries.
};

/// Runs the session for \p Req with stdout/stderr captured via
/// open_memstream; never throws past the session's own guarantees.
CaptureResult runSessionCaptured(const CompileRequest &Req);

/// One item's outcome, in request order.
struct BatchItemResult {
  int ExitCode = 0;
  bool CacheHit = false; ///< Served from the shared cache, no compile.
  bool DedupHit = false; ///< Served from an identical earlier batch item.
  std::string Output, Error;
};

struct BatchOptions {
  /// Persistent worker pool width; 0 = one per hardware thread. The same
  /// pool serves the request fan-out and every request's inner driver.
  unsigned Jobs = 1;
  /// Shared result cache; null runs cache-less (every unique key
  /// compiles; duplicates still dedup within the batch).
  DecompositionCache *Cache = nullptr;
  /// Supervisor attempts per compiled item (first run + retries).
  unsigned MaxAttempts = 1;
  /// Clamp applied to every item's DriverOptions::DeadlineMs (0 = none),
  /// mirroring ServerOptions::RequestDeadlineMs.
  uint64_t RequestDeadlineMs = 0;
};

class BatchSession {
public:
  explicit BatchSession(const BatchOptions &O);

  /// Compiles \p Items, returning one result per request in order.
  /// Callable repeatedly; the aggregate report accumulates across calls
  /// and the pool (with its warm arenas) persists for the session's
  /// lifetime.
  std::vector<BatchItemResult> run(const std::vector<CompileRequest> &Items);

  /// Aggregated pipeline counters from every compiled request plus the
  /// deterministic batch.* tallies (docs/OBSERVABILITY.md).
  const MetricsRegistry &metrics() const { return Agg; }

  /// The jobs-deterministic aggregate stats document (schema v2, kind
  /// "batch"): batch tallies, cache hit rate, a per-item array (file,
  /// exit, serve source, lint findings, degradations), and the aggregated
  /// counters section. No gauges, spans, or wall times by design.
  std::string reportJson() const;

  ThreadPool &pool() { return Pool; }

private:
  BatchOptions Opts;
  ThreadPool Pool;
  MetricsRegistry Agg;

  /// Per-item report rows, accumulated across run() calls.
  struct ItemRow {
    std::string File;
    std::string Family; ///< Serve source: "compile", "cache", "dedup".
    int ExitCode = 0;
    unsigned LintErrors = 0, LintWarnings = 0, Degradations = 0;
  };
  std::vector<ItemRow> Rows;
  uint64_t Requests = 0, CacheHits = 0, DedupHits = 0, Compiles = 0;
};

} // namespace alp

#endif // ALP_SERVICE_BATCH_H
