//===- service/DecompositionCache.h - Process-wide compile cache *- C++ -*-===//
///
/// \file
/// The compilation service's answer store: a process-wide, sharded,
/// generation-aged cache from a canonical whole-program key to the full
/// compile answer (exit code + the exact stdout/stderr bytes the
/// CompileSession produced). One alpd process serves many clients; repeat
/// requests — the common case for a compilation daemon — are answered
/// from here without running the decomposition pipeline at all.
///
/// Keying extends the linalg/SystemKey idiom up to whole programs: the
/// key serializes an options fingerprint (every semantic CompileRequest
/// field) plus the canonical IR text of the parsed program
/// (ir/Printer.h's printProgram), hashes the serialization with FNV-1a,
/// and keeps the serialization alongside the hash so lookups compare
/// exactly — a hash collision can never alias two different requests to
/// one answer. Printing the IR (rather than hashing the raw source)
/// means requests that differ only in whitespace or comments share an
/// entry.
///
/// Concurrency: the table is split into a fixed number of shards, each
/// behind its own mutex, so concurrent service workers rarely contend.
/// Aging: the cache keeps a generation counter; every hit or insert
/// stamps the entry with the current generation, bumpGeneration()
/// advances it (the server does so periodically), and a full shard
/// evicts its oldest-generation entries first — a transposition-table
/// style policy that keeps hot entries resident without per-hit LRU
/// list maintenance.
///
/// Persistence: save/load via support/AtomicFile.h so a daemon restart
/// starts warm. Loads validate a magic header, per-entry lengths, and
/// the recomputed key hash; any mismatch (or the "service.cache.load"
/// failpoint) is a Status error the caller degrades on — an unreadable
/// cache file must never take the service down, it just recomputes.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SERVICE_DECOMPOSITIONCACHE_H
#define ALP_SERVICE_DECOMPOSITIONCACHE_H

#include "support/Status.h"
#include "support/Trace.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace alp {

class Program;
struct CompileRequest;

/// A canonical whole-program request key: FNV-1a hash plus the exact
/// serialization it was computed from (equality compares the bytes).
struct RequestKey {
  uint64_t Hash = 0;
  std::string Repr;

  bool operator==(const RequestKey &RHS) const {
    return Hash == RHS.Hash && Repr == RHS.Repr;
  }
  bool operator!=(const RequestKey &RHS) const { return !(*this == RHS); }
};

/// Hasher for unordered containers keyed by RequestKey.
struct RequestKeyHash {
  size_t operator()(const RequestKey &K) const {
    return static_cast<size_t>(K.Hash);
  }
};

/// FNV-1a over arbitrary bytes (the shared hashing primitive of the
/// service keys; seeded with the standard offset basis).
uint64_t fnv1aHash(const std::string &Bytes);

/// Canonical fingerprint of every semantic field of \p Req (machine,
/// procs, block, stage selections, budget limits, policy...). Two
/// requests with equal fingerprints and equal canonical IR produce
/// byte-identical answers, so the pair is a sound cache key. The raw
/// Source and FileName are deliberately excluded (FileName only labels
/// diagnostics of programs that parse, and parse failures bypass the
/// cache).
std::string requestFingerprint(const CompileRequest &Req);

/// Builds the key for \p Req whose source parsed to \p P.
RequestKey canonicalRequestKey(const CompileRequest &Req, const Program &P);

/// The sharded, generation-aged answer cache.
class DecompositionCache {
public:
  /// One cached compile answer: the exit code and the exact bytes the
  /// session wrote to its two streams.
  struct Entry {
    int ExitCode = 0;
    std::string Output;
    std::string Error;
  };

  /// \p MaxEntries bounds the whole cache (split evenly across shards,
  /// floor one entry per shard).
  explicit DecompositionCache(size_t MaxEntries = 4096);

  /// Counter sink for service.cache_* metrics; may be empty.
  void setObserve(TraceContext O) { Observe = O; }

  /// Looks \p K up; on a hit copies the answer into \p Out, re-stamps
  /// the entry with the current generation, and counts
  /// service.cache_hits (misses count service.cache_misses).
  bool lookup(const RequestKey &K, Entry &Out);

  /// Inserts (or overwrites) the answer for \p K, stamped with the
  /// current generation; evicts oldest-generation entries when the
  /// shard is full. Counts service.cache_inserts / _evictions.
  void insert(const RequestKey &K, Entry E);

  /// Advances the age epoch: entries not touched since the previous
  /// epoch become eviction candidates before anything newer.
  void bumpGeneration() { Gen.fetch_add(1, std::memory_order_relaxed); }
  uint64_t generation() const { return Gen.load(std::memory_order_relaxed); }

  /// Total resident entries (sums the shards; approximate under
  /// concurrent mutation).
  size_t size() const;

  void clear();

  /// Serializes every resident entry (text header + length-prefixed
  /// binary-safe records).
  std::string serialize() const;

  /// Replaces the cache contents with a previously serialized image.
  /// Malformed text (bad magic, truncated record, hash mismatch) is an
  /// InvalidInput error and leaves the cache empty.
  Status deserialize(const std::string &Text);

  /// serialize() to \p Path via atomic temp-file + rename.
  Status saveToFile(const std::string &Path) const;

  /// Reads and deserializes \p Path. Fails soft: a missing or malformed
  /// file (or the "service.cache.load" failpoint) returns an error and
  /// leaves the cache empty — the service then recomputes on demand.
  Status loadFromFile(const std::string &Path);

private:
  struct Stored {
    Entry E;
    uint64_t Gen = 0;
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<RequestKey, Stored, RequestKeyHash> Map;
  };

  static constexpr size_t NumShards = 16;

  Shard &shardFor(const RequestKey &K) {
    return Shards[K.Hash % NumShards];
  }

  std::array<Shard, NumShards> Shards;
  size_t MaxPerShard;
  std::atomic<uint64_t> Gen{0};
  TraceContext Observe;
};

} // namespace alp

#endif // ALP_SERVICE_DECOMPOSITIONCACHE_H
