//===- transform/Tiling.h - Loop tiling (blocking) --------------*- C++ -*-===//
///
/// \file
/// Materializes tiling of a fully permutable loop band (Sec. 5): selected
/// loops of the band are split into a block-index loop (hoisted to the top
/// of the band) and an element loop that walks one block. A fully
/// permutable nest can always be legally tiled; callers are expected to
/// check permutability via the local phase's band annotation.
///
/// The element loops keep the original index values, so array accesses
/// only gain zero columns for the new block indices.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_TRANSFORM_TILING_H
#define ALP_TRANSFORM_TILING_H

#include "ir/Program.h"

namespace alp {

/// Tiles loops [First, First + Sizes.size()) of \p Nest; Sizes[k] == 0
/// leaves loop First+k untiled. Block-index loops are inserted at position
/// First in tiled-dimension order. Every tiled loop must have a single
/// lower bound referencing only loops at positions < First; violations
/// throw AlpException(Unsolvable) so callers can fall back to the untiled
/// nest.
///
/// Returns the tiled nest; \p Nest is left untouched. The returned nest's
/// Tiles vector maps each block-index loop to its element loop.
LoopNest tileLoops(const LoopNest &Nest, unsigned First,
                   const std::vector<int64_t> &Sizes);

} // namespace alp

#endif // ALP_TRANSFORM_TILING_H
