//===- transform/Tiling.cpp - Loop tiling (blocking) -------------------------===//

#include "transform/Tiling.h"

#include "support/Status.h"

using namespace alp;

LoopNest alp::tileLoops(const LoopNest &Nest, unsigned First,
                        const std::vector<int64_t> &Sizes) {
  unsigned L = Nest.depth();
  assert(First + Sizes.size() <= L && "tile range exceeds nest depth");

  // Tiled dimensions, in band order.
  std::vector<unsigned> Tiled;
  for (unsigned K = 0; K != Sizes.size(); ++K)
    if (Sizes[K] > 0)
      Tiled.push_back(First + K);
  unsigned NT = Tiled.size();
  if (NT == 0)
    return Nest;

  unsigned NewDepth = L + NT;
  // Old position -> new position for element loops.
  auto Remap = [&](unsigned P) { return P < First ? P : P + NT; };

  auto RemapVector = [&](const Vector &V) {
    Vector Out(NewDepth);
    for (unsigned P = 0; P != L; ++P)
      Out[Remap(P)] = V[P];
    return Out;
  };

  LoopNest Out;
  Out.Id = Nest.Id;
  Out.ExecCount = Nest.ExecCount;
  Out.Probability = Nest.Probability;
  Out.Loops.resize(NewDepth);

  // Copy untouched and element loops with remapped coefficient vectors.
  for (unsigned P = 0; P != L; ++P) {
    const Loop &Src = Nest.Loops[P];
    Loop &Dst = Out.Loops[Remap(P)];
    Dst.IndexName = Src.IndexName;
    Dst.Kind = Src.Kind;
    for (const BoundTerm &T : Src.Lower)
      Dst.Lower.push_back(BoundTerm(RemapVector(T.OuterCoeffs), T.Const));
    for (const BoundTerm &T : Src.Upper)
      Dst.Upper.push_back(BoundTerm(RemapVector(T.OuterCoeffs), T.Const));
  }

  // Create block loops and adjust their element loops.
  for (unsigned I = 0; I != NT; ++I) {
    unsigned P = Tiled[I];
    int64_t B = Sizes[P - First];
    const Loop &Src = Nest.Loops[P];
    if (Src.Lower.size() != 1)
      // User-reachable via max-style lower bounds; callers degrade to the
      // untiled nest.
      throw AlpException(StatusCode::Unsolvable,
                         "tiling requires a single lower bound per loop");
    // The tiled loop's bounds may only mention loops outside the band
    // prefix (they become outer loops of the block indices).
    for (const BoundTerm &T : Src.Lower)
      for (unsigned Q = First; Q != L; ++Q)
        if (!T.OuterCoeffs[Q].isZero())
          throw AlpException(StatusCode::Unsolvable,
                             "tiled loop bound depends on a band member");
    for (const BoundTerm &T : Src.Upper)
      for (unsigned Q = First; Q != L; ++Q)
        if (!T.OuterCoeffs[Q].isZero())
          throw AlpException(StatusCode::Unsolvable,
                             "tiled loop bound depends on a band member");

    const BoundTerm &Lb = Src.Lower.front();
    Loop &Blk = Out.Loops[First + I];
    Blk.IndexName = Src.IndexName + "_b";
    Blk.Kind = Src.Kind;
    // Block index t in [0, (ub - lb) / B] for every upper term.
    Blk.Lower.push_back(
        BoundTerm(Vector::zero(NewDepth), SymAffine(0)));
    for (const BoundTerm &Ub : Src.Upper) {
      Vector C = RemapVector(Ub.OuterCoeffs - Lb.OuterCoeffs)
                     .scaled(Rational(1, B));
      Blk.Upper.push_back(
          BoundTerm(C, (Ub.Const - Lb.Const).scaled(Rational(1, B))));
    }
    // Element loop: i in [B*t + lb, min(ub..., B*t + lb + B - 1)].
    Loop &Elem = Out.Loops[Remap(P)];
    Vector LbC = RemapVector(Lb.OuterCoeffs);
    LbC[First + I] = Rational(B);
    Elem.Lower.clear();
    Elem.Lower.push_back(BoundTerm(LbC, Lb.Const));
    Elem.Upper.push_back(BoundTerm(LbC, Lb.Const + SymAffine(B - 1)));
    Out.Tiles.push_back({First + I, Remap(P), B});
  }

  // Accesses: zero columns for the new block indices.
  for (const Statement &S : Nest.Body) {
    Statement NewS;
    NewS.WorkCycles = S.WorkCycles;
    NewS.Text = S.Text;
    for (const ArrayAccess &A : S.Accesses) {
      Matrix F(A.Map.arrayDim(), NewDepth);
      for (unsigned R = 0; R != A.Map.arrayDim(); ++R)
        for (unsigned P = 0; P != L; ++P)
          F.at(R, Remap(P)) = A.Map.linear().at(R, P);
      ArrayAccess NewA;
      NewA.ArrayId = A.ArrayId;
      NewA.IsWrite = A.IsWrite;
      NewA.Map = AffineAccessMap(std::move(F), A.Map.constant());
      NewS.Accesses.push_back(std::move(NewA));
    }
    Out.Body.push_back(std::move(NewS));
  }
  return Out;
}
