//===- transform/Unimodular.cpp - Wolf-Lam local phase -----------------------===//

#include "transform/Unimodular.h"

#include "linalg/FourierMotzkin.h"
#include "support/Diagnostics.h"
#include "support/Supervisor.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <optional>
#include <set>

using namespace alp;

//===----------------------------------------------------------------------===//
// Band construction
//===----------------------------------------------------------------------===//

namespace {

/// Mutable per-dependence component state during band construction. Exact
/// components are updated under skewing; direction components never
/// participate in skews.
struct DepState {
  std::vector<DepComponent> Comps; // In original loop order.
  bool Satisfied = false;
};

bool alwaysPositive(const DepComponent &C) {
  if (C.Distance)
    return *C.Distance > 0;
  return C.Direction == DepComponent::Dir::Lt;
}

bool alwaysZero(const DepComponent &C) {
  return C.Distance && *C.Distance == 0;
}

/// One placed loop: original level plus skew multipliers against
/// previously placed band members (by original level).
struct PlacedLoop {
  unsigned OrigLevel;
  std::map<unsigned, int64_t> SkewAgainst;
};

} // namespace

CanonicalForm
alp::computeCanonicalForm(const LoopNest &Nest,
                          const std::vector<Dependence> &Deps) {
  unsigned L = Nest.depth();
  std::vector<DepState> States;
  for (const Dependence &D : Deps) {
    if (D.isLoopIndependent(L))
      continue; // Loop-independent deps do not constrain loop order.
    States.push_back({D.Components, false});
  }

  std::vector<bool> Placed(L, false);
  std::vector<std::vector<PlacedLoop>> Bands;

  auto CompAt = [&](const DepState &S, unsigned P) -> const DepComponent & {
    return S.Comps[P];
  };

  while (true) {
    // Remaining original levels in order.
    std::vector<unsigned> Remaining;
    for (unsigned P = 0; P != L; ++P)
      if (!Placed[P])
        Remaining.push_back(P);
    if (Remaining.empty())
      break;

    std::vector<PlacedLoop> Band;
    // Active = unsatisfied dependences at band start.
    auto Active = [&]() {
      std::vector<unsigned> Idx;
      for (unsigned I = 0; I != States.size(); ++I)
        if (!States[I].Satisfied)
          Idx.push_back(I);
      return Idx;
    }();

    auto InBand = [&](unsigned P) {
      for (const PlacedLoop &M : Band)
        if (M.OrigLevel == P)
          return true;
      return false;
    };

    // Greedily grow the band.
    while (true) {
      int Chosen = -1;
      bool ChosenNeedsSkew = false;
      bool ChosenParallel = false;
      for (unsigned P : Remaining) {
        if (InBand(P))
          continue;
        bool Ok = true, NeedsSkew = false, Parallel = true;
        for (unsigned I : Active) {
          const DepComponent &C = CompAt(States[I], P);
          Parallel &= alwaysZero(C);
          if (!C.mayBeNegative())
            continue;
          // Negative component: repairable only if exact and some band
          // member has an exact positive component for this dependence.
          if (!C.isExact()) {
            Ok = false;
            break;
          }
          bool Repairable = false;
          for (const PlacedLoop &M : Band) {
            const DepComponent &MC = CompAt(States[I], M.OrigLevel);
            if (MC.isExact() && *MC.Distance > 0) {
              Repairable = true;
              break;
            }
          }
          if (!Repairable) {
            Ok = false;
            break;
          }
          NeedsSkew = true;
        }
        if (!Ok)
          continue;
        // Prefer parallel loops (they end up outermost in the band), then
        // skew-free loops, then original order.
        if (Chosen < 0 ||
            (Parallel && !ChosenParallel) ||
            (Parallel == ChosenParallel && !NeedsSkew && ChosenNeedsSkew)) {
          Chosen = static_cast<int>(P);
          ChosenNeedsSkew = NeedsSkew;
          ChosenParallel = Parallel;
        }
      }
      if (Chosen < 0)
        break;
      unsigned P = static_cast<unsigned>(Chosen);
      PlacedLoop PL{P, {}};
      if (ChosenNeedsSkew) {
        // Repair negative exact components by skewing against band members
        // in placement order; each skew only ever increases components of
        // dependences whose member component is nonnegative.
        for (const PlacedLoop &M : Band) {
          int64_t F = 0;
          for (unsigned I : Active) {
            DepComponent &C = States[I].Comps[P];
            const DepComponent &MC = CompAt(States[I], M.OrigLevel);
            if (C.isExact() && *C.Distance < 0 && MC.isExact() &&
                *MC.Distance > 0) {
              int64_t Need = (-*C.Distance + *MC.Distance - 1) / *MC.Distance;
              F = std::max(F, Need);
            }
          }
          if (F == 0)
            continue;
          PL.SkewAgainst[M.OrigLevel] = F;
          for (unsigned I = 0; I != States.size(); ++I) {
            DepComponent &C = States[I].Comps[P];
            const DepComponent &MC = CompAt(States[I], M.OrigLevel);
            if (C.isExact() && MC.isExact())
              C = DepComponent::exact(*C.Distance + F * *MC.Distance);
          }
        }
        for (unsigned I : Active)
          assert(!CompAt(States[I], P).mayBeNegative() &&
                 "skewing failed to repair a negative component");
      }
      Band.push_back(std::move(PL));
    }

    if (Band.empty()) {
      // Close with a degenerate band holding the outermost remaining
      // original loop. Legality: every unsatisfied dependence has zero
      // components before its (not yet placed) carrying level and a
      // positive component at it, so the outermost remaining original
      // level can never carry a negative component.
      unsigned P = Remaining.front();
      for (unsigned I : Active)
        if (CompAt(States[I], P).mayBeNegative())
          // Reachable with conservative (all-star) dependences: no loop
          // order can be proven legal. Recoverable — runLocalPhase leaves
          // the nest in source order.
          throw AlpException(StatusCode::Unsolvable,
                             "local phase: cannot legally order loop nest");
      Band.push_back({P, {}});
    }

    // Order band members: parallel loops (all components of active deps
    // always zero) first, preserving relative order otherwise.
    std::stable_sort(Band.begin(), Band.end(),
                     [&](const PlacedLoop &A, const PlacedLoop &B) {
                       auto IsPar = [&](const PlacedLoop &M) {
                         for (unsigned I : Active)
                           if (!alwaysZero(CompAt(States[I], M.OrigLevel)))
                             return false;
                         return true;
                       };
                       return IsPar(A) && !IsPar(B);
                     });

    // Mark dependences satisfied by this band and the loops placed.
    for (const PlacedLoop &M : Band)
      Placed[M.OrigLevel] = true;
    for (unsigned I : Active) {
      for (const PlacedLoop &M : Band)
        if (alwaysPositive(CompAt(States[I], M.OrigLevel))) {
          States[I].Satisfied = true;
          break;
        }
    }
    Bands.push_back(std::move(Band));
  }

  // Assemble T: row r of T is e_p (+ skew multiples of e_q).
  CanonicalForm CF;
  CF.T = IntMatrix(L, L);
  unsigned Row = 0;
  for (const auto &Band : Bands) {
    CF.BandSizes.push_back(Band.size());
    for (const PlacedLoop &M : Band) {
      CF.T.at(Row, M.OrigLevel) = 1;
      for (const auto &[Q, F] : M.SkewAgainst)
        CF.T.at(Row, Q) = F;
      ++Row;
    }
  }
  assert(CF.T.isUnimodular() && "canonical transform must be unimodular");

  // Parallel flags: a transformed loop is forall iff every dependence not
  // satisfied strictly before its band has an always-zero component on it.
  // Recompute by replaying satisfaction band by band.
  for (DepState &S : States)
    S.Satisfied = false;
  CF.ParallelLoops.assign(L, false);
  Row = 0;
  for (const auto &Band : Bands) {
    std::vector<unsigned> Active;
    for (unsigned I = 0; I != States.size(); ++I)
      if (!States[I].Satisfied)
        Active.push_back(I);
    for (const PlacedLoop &M : Band) {
      bool Par = true;
      for (unsigned I : Active)
        Par &= alwaysZero(CompAt(States[I], M.OrigLevel));
      CF.ParallelLoops[Row++] = Par;
    }
    for (unsigned I : Active)
      for (const PlacedLoop &M : Band)
        if (alwaysPositive(CompAt(States[I], M.OrigLevel))) {
          States[I].Satisfied = true;
          break;
        }
  }
  return CF;
}

//===----------------------------------------------------------------------===//
// IR rewrite
//===----------------------------------------------------------------------===//

namespace {

/// Collects symbols used by any bound of \p Nest.
std::vector<std::string> boundSymbols(const LoopNest &Nest) {
  std::set<std::string> Names;
  for (const Loop &L : Nest.Loops) {
    for (const BoundTerm &T : L.Lower)
      for (const auto &[Name, C] : T.Const.symbolCoeffs()) {
        (void)C;
        Names.insert(Name);
      }
    for (const BoundTerm &T : L.Upper)
      for (const auto &[Name, C] : T.Const.symbolCoeffs()) {
        (void)C;
        Names.insert(Name);
      }
  }
  return std::vector<std::string>(Names.begin(), Names.end());
}

} // namespace

void alp::applyUnimodular(LoopNest &Nest, const IntMatrix &T) {
  unsigned L = Nest.depth();
  assert(T.rows() == L && T.cols() == L && T.isUnimodular() &&
         "transform must be a unimodular LxL matrix");
  Matrix TQ = T.toRational();
  Matrix TInv = *TQ.inverse();

  // Rewrite accesses: F' = F * T^-1 (i = T^-1 i').
  for (Statement &S : Nest.Body)
    for (ArrayAccess &A : S.Accesses)
      A.Map = A.Map.composeWith(TInv);

  // Regenerate bounds: express the original bound constraints in terms of
  // i' and project per level, innermost outward.
  std::vector<std::string> Syms = boundSymbols(Nest);
  unsigned NS = Syms.size();
  auto SymIdx = [&](const std::string &Name) {
    for (unsigned I = 0; I != NS; ++I)
      if (Syms[I] == Name)
        return L + I;
    assert(false && "symbol not collected");
    return L;
  };

  ConstraintSystem CS(L + NS);
  for (unsigned K = 0; K != L; ++K) {
    const Loop &Loop = Nest.Loops[K];
    auto AddTerm = [&](const BoundTerm &BT, bool IsLower) {
      // IsLower:  i_K - coeffs . i - const >= 0; upper is negated.
      Vector Coef(L + NS);
      Rational Const(0);
      Rational Sign = IsLower ? Rational(1) : Rational(-1);
      // i_K in terms of i': row K of T^-1 applied... i = T^-1 i', so
      // original i_K = (T^-1 row K) . i'.
      for (unsigned J = 0; J != L; ++J)
        Coef[J] += Sign * TInv.at(K, J);
      for (unsigned O = 0; O != L; ++O) {
        if (BT.OuterCoeffs[O].isZero())
          continue;
        for (unsigned J = 0; J != L; ++J)
          Coef[J] -= Sign * BT.OuterCoeffs[O] * TInv.at(O, J);
      }
      Const -= Sign * BT.Const.constant();
      for (const auto &[Name, C] : BT.Const.symbolCoeffs())
        Coef[SymIdx(Name)] -= Sign * C;
      CS.addInequality(Coef, Const);
    };
    for (const BoundTerm &BT : Loop.Lower)
      AddTerm(BT, /*IsLower=*/true);
    for (const BoundTerm &BT : Loop.Upper)
      AddTerm(BT, /*IsLower=*/false);
  }

  // New loop metadata: names and kinds follow the dominant original level
  // of each transformed row (pure permutation rows keep their identity).
  std::vector<Loop> NewLoops(L);
  for (unsigned R = 0; R != L; ++R) {
    // Find the original level this row is "mostly" (unit rows exactly).
    int Orig = -1;
    unsigned NonZero = 0;
    for (unsigned C = 0; C != L; ++C)
      if (T.at(R, C) != 0) {
        ++NonZero;
        Orig = static_cast<int>(C);
      }
    if (NonZero == 1 && T.at(R, static_cast<unsigned>(Orig)) == 1) {
      NewLoops[R].IndexName = Nest.Loops[Orig].IndexName;
      NewLoops[R].Kind = Nest.Loops[Orig].Kind;
    } else {
      NewLoops[R].IndexName = Nest.Loops[R].IndexName + "_t";
      NewLoops[R].Kind = LoopKind::Sequential;
    }
  }

  // Project bounds innermost-out.
  ConstraintSystem Work = CS;
  for (unsigned RPlus = L; RPlus != 0; --RPlus) {
    unsigned R = RPlus - 1;
    // Read bounds of variable R from constraints whose inner-variable
    // coefficients are all zero (they are, after elimination).
    for (const LinearConstraint &C : Work.constraints()) {
      const Rational &A = C.Coeffs[R];
      if (A.isZero())
        continue;
      // a * i'_R + sum_{j<R} c_j i'_j + syms + c >= 0.
      Vector Outer(L);
      SymAffine Const(C.Const / A.abs());
      for (unsigned J = 0; J != R; ++J)
        Outer[J] = C.Coeffs[J] / A.abs();
      for (unsigned S = 0; S != NS; ++S)
        if (!C.Coeffs[L + S].isZero())
          Const += SymAffine::symbol(Syms[S], C.Coeffs[L + S] / A.abs());
      if (A > Rational(0)) {
        // i'_R >= -(rest): lower bound term.
        Vector Neg(L);
        for (unsigned J = 0; J != R; ++J)
          Neg[J] = -Outer[J];
        NewLoops[R].Lower.push_back(BoundTerm(Neg, -Const));
      } else {
        NewLoops[R].Upper.push_back(BoundTerm(Outer, Const));
      }
    }
    if (NewLoops[R].Lower.empty() || NewLoops[R].Upper.empty())
      reportFatalError("bound regeneration lost a loop bound");
    Work.eliminate(R);
  }

  Nest.Loops = std::move(NewLoops);
  Nest.PermutableBands.clear();
}

namespace {

/// Canonicalizes one nest with \p DA; appends the skip note to
/// \p LPWarnings on failure. The fail-soft body shared by the serial and
/// the parallel local phase.
void canonicalizeNest(Program &P, unsigned NI, const DependenceAnalysis &DA,
                      std::vector<std::string> &LPWarnings) {
  LoopNest &Nest = P.Nests[NI];
  try {
    std::vector<Dependence> Deps = DA.analyze(Nest);
    CanonicalForm CF = computeCanonicalForm(Nest, Deps);
    // Transform a copy so a mid-rewrite overflow cannot leave the nest
    // half-transformed.
    LoopNest Trial = Nest;
    if (!CF.T.toRational().isIdentity())
      applyUnimodular(Trial, CF.T);
    for (unsigned R = 0; R != Trial.depth(); ++R)
      Trial.Loops[R].Kind =
          CF.ParallelLoops[R] ? LoopKind::Parallel : LoopKind::Sequential;
    Trial.PermutableBands = CF.BandSizes;
    Nest = std::move(Trial);
  } catch (const AlpException &E) {
    // Source order, all sequential, one loop per band: legal by
    // construction and never tiled.
    for (Loop &L : Nest.Loops)
      L.Kind = LoopKind::Sequential;
    Nest.PermutableBands.assign(Nest.depth(), 1);
    LPWarnings.push_back("local phase left nest " + std::to_string(NI) +
                         " untransformed (" + E.status().str() + ")");
  }
}

} // namespace

void alp::runLocalPhase(Program &P, ResourceBudget *Budget,
                        std::vector<std::string> *Warnings,
                        const LocalPhaseOptions &Opts) {
  const TraceContext &Observe = Opts.Observe;
  Observe.count("local.nests", P.Nests.size());
  if (!Opts.Pool) {
    // Serial path: one analysis, one cumulative budget across all nests
    // (the historical semantics).
    DependenceOptions DOpts;
    DOpts.SharedCache = Opts.SharedCache;
    DOpts.Trace = Observe.Trace;
    DependenceAnalysis DA(P, Budget, DOpts);
    std::vector<std::string> LPWarnings;
    for (unsigned NI = 0; NI != P.Nests.size(); ++NI) {
      TraceSpan Span(Observe.Trace, "local.canonicalize",
                     static_cast<int64_t>(NI));
      canonicalizeNest(P, NI, DA, LPWarnings);
    }
    Observe.count("local.nests_untransformed", LPWarnings.size());
    if (Observe.Metrics)
      DA.tierStats().publishTo(*Observe.Metrics);
    if (Warnings) {
      for (std::string &W : LPWarnings)
        Warnings->push_back(std::move(W));
      for (const std::string &W : DA.warnings())
        Warnings->push_back(W);
    }
    return;
  }

  // Parallel path: nests fan out over the pool, each with a private
  // analysis (sharing the projection cache) and a private budget copy.
  // Warnings merge in nest order — transform notes first, then dependence
  // notes, matching the serial layout — so the output is byte-identical
  // for every job count. Nested pair-level parallelism inside the
  // analysis degrades to serial automatically (ThreadPool nesting rule).
  struct NestOutcome {
    std::vector<std::string> LPWarnings;
    std::vector<std::string> DAWarnings;
    DependenceTierStats Tiers;
  };
  std::vector<NestOutcome> Outcomes(P.Nests.size());
  SupervisorOptions SOpts;
  SOpts.MaxAttempts = Opts.TaskAttempts;
  SOpts.TaskDeadlineMs = Opts.TaskDeadlineMs;
  SOpts.Observe = Observe;
  Supervisor Sup(Opts.Pool, Budget, SOpts);
  std::vector<SupervisedOutcome> SupOutcomes =
      Sup.run(P.Nests.size(), [&](size_t NI, ResourceBudget *B) {
        Outcomes[NI] = NestOutcome(); // Fresh slate on retry.
        TraceSpan Span(Observe.Trace, "local.canonicalize",
                       static_cast<int64_t>(NI));
        DependenceOptions DOpts;
        DOpts.SharedCache = Opts.SharedCache;
        DOpts.Pool = Opts.Pool;
        DOpts.Trace = Observe.Trace;
        ResourceBudget *NestBudget =
            Budget || Opts.TaskDeadlineMs ? B : nullptr;
        DependenceAnalysis DA(P, NestBudget, DOpts);
        canonicalizeNest(P, NI, DA, Outcomes[NI].LPWarnings);
        Outcomes[NI].DAWarnings = DA.warnings();
        Outcomes[NI].Tiers = DA.tierStats();
        return Status::ok();
      });
  for (size_t NI = 0; NI != P.Nests.size(); ++NI) {
    const SupervisedOutcome &O = SupOutcomes[NI];
    if (O.degraded()) {
      // Every attempt threw past canonicalizeNest's own fallback (e.g.
      // an injected OOM inside the analysis): leave the nest in source
      // order, all sequential — identical to the in-task fallback.
      Outcomes[NI] = NestOutcome();
      LoopNest &Nest = P.Nests[NI];
      for (Loop &L : Nest.Loops)
        L.Kind = LoopKind::Sequential;
      Nest.PermutableBands.assign(Nest.depth(), 1);
      Outcomes[NI].LPWarnings.push_back(
          "local phase left nest " + std::to_string(NI) +
          " untransformed (" + O.Result.str() + ")");
    } else if (O.retried()) {
      Outcomes[NI].LPWarnings.push_back("local phase nest " +
                                        std::to_string(NI) + " " +
                                        Supervisor::describe(O, NI));
    }
  }
  size_t Untransformed = 0;
  for (const NestOutcome &O : Outcomes)
    Untransformed += O.LPWarnings.size();
  Observe.count("local.nests_untransformed", Untransformed);
  if (Observe.Metrics) {
    // Sum the per-nest snapshots into one publish. Addition commutes, so
    // totals are identical for every job count. (They can differ from the
    // Pool=nullptr path: there one analysis spans all nests, so its
    // logical cache ledger also spans nests; here each nest's ledger
    // starts fresh.)
    DependenceTierStats Sum;
    for (const NestOutcome &O : Outcomes) {
      Sum.Pairs += O.Tiers.Pairs;
      Sum.GcdIndependent += O.Tiers.GcdIndependent;
      Sum.BanerjeeIndependent += O.Tiers.BanerjeeIndependent;
      Sum.ExactTested += O.Tiers.ExactTested;
      Sum.LogicalCacheHits += O.Tiers.LogicalCacheHits;
      Sum.LogicalCacheMisses += O.Tiers.LogicalCacheMisses;
      Sum.EliminationSteps += O.Tiers.EliminationSteps;
    }
    Sum.publishTo(*Observe.Metrics);
  }
  if (Warnings) {
    for (NestOutcome &O : Outcomes)
      for (std::string &W : O.LPWarnings)
        Warnings->push_back(std::move(W));
    for (NestOutcome &O : Outcomes)
      for (std::string &W : O.DAWarnings)
        Warnings->push_back(std::move(W));
  }
}
