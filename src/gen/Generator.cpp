//===- gen/Generator.cpp - Seeded affine-DSL corpus generator -------------===//

#include "gen/Generator.h"

#include "support/Rng.h"

#include <cstdio>

using namespace alp;
using namespace alp::gen;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string num(uint64_t V) { return std::to_string(V); }

/// One statement cost annotation, 1..16 units.
std::string cost(Rng &R) {
  return " @cost(" + num(static_cast<uint64_t>(R.nextInRange(1, 16))) + ")";
}

/// A problem size drawn from the paper-scale set: big enough that the
/// cost model prefers real decompositions, small enough to simulate.
uint64_t pickN(Rng &R) {
  static const uint64_t Sizes[] = {63, 127, 255, 511};
  return Sizes[R.nextBelow(4)];
}

std::string header(const std::string &Name, const std::string &Comment) {
  std::string S;
  if (!Comment.empty())
    S += "// " + Comment + "\n";
  S += "program " + Name + ";\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Shape families
//===----------------------------------------------------------------------===//

/// Triangular nests: a trisolve-style row-parallel forward substitution
/// (forall rows, sequential columns, triangular inner bound) or an
/// LU-style rank-update with the pivot loop outermost. Exercises affine
/// non-rectangular bounds end to end.
std::string genTriangular(const std::string &Name, Rng &R) {
  uint64_t N = pickN(R);
  std::string S = header(Name, "generated: triangular family");
  S += "param N = " + num(N) + ";\n";
  S += "array L[N + 1, N + 1], X[N + 1, N + 1], B[N + 1, N + 1];\n";
  if (R.nextBelow(2) == 0) {
    // Trisolve with many right-hand sides.
    S += "forall r = 0 to N {\n";
    S += "  for i = 0 to N {\n";
    S += "    for j = 0 to i - 1 {\n";
    S += "      B[r, i] = B[r, i] - L[i, j] * X[r, j]" + cost(R) + ";\n";
    S += "    }\n";
    S += "    X[r, i] = B[r, i] / L[i, i]" + cost(R) + ";\n";
    S += "  }\n";
    S += "}\n";
  } else {
    // LU-style rank update: pivot loop sequential, trailing submatrix
    // update parallel in i, triangular in j.
    S += "for k = 0 to N {\n";
    S += "  forall i = 0 to N {\n";
    S += "    for j = 0 to i - 1 {\n";
    S += "      X[i, j] = f(X[i, j], L[i, k], L[k, j])" + cost(R) + ";\n";
    S += "    }\n";
    S += "  }\n";
    S += "}\n";
  }
  if (R.nextBelow(2) == 0) {
    // Optional consumer sweep over the solve's output.
    S += "forall i = 0 to N {\n";
    S += "  forall j = 0 to N {\n";
    S += "    B[i, j] = f(X[i, j])" + cost(R) + ";\n";
    S += "  }\n";
    S += "}\n";
  }
  return S;
}

/// Wavefront recurrences: D[i,j] depends on D[i-1,j] and D[i,j-1], with
/// an optional sequential time loop and an optional read-only operand.
/// The doacross shape the blocking machinery (Sec. 5) exists for.
std::string genWavefront(const std::string &Name, Rng &R) {
  uint64_t N = pickN(R);
  bool TimeLoop = R.nextBelow(2) == 0;
  bool ReadOnly = R.nextBelow(2) == 0;
  std::string S = header(Name, "generated: wavefront family");
  S += "param N = " + num(N);
  if (TimeLoop)
    S += ", T = " + num(static_cast<uint64_t>(R.nextInRange(2, 10)));
  S += ";\n";
  S += "array D[N + 2, N + 2]";
  if (ReadOnly)
    S += ", A[N + 2, N + 2]";
  S += ";\n";
  std::string Ind = "";
  if (TimeLoop) {
    S += "for t = 1 to T {\n";
    Ind = "  ";
  }
  S += Ind + "for i = 1 to N {\n";
  S += Ind + "  forall j = 1 to N {\n";
  S += Ind + "    D[i, j] = f(D[i - 1, j], D[i - 1, j - 1]" +
       std::string(ReadOnly ? ", A[i, j]" : "") + ")" + cost(R) + ";\n";
  S += Ind + "  }\n";
  S += Ind + "}\n";
  if (TimeLoop)
    S += "}\n";
  return S;
}

/// Multi-array cycles: a ring of K arrays where each nest writes the next
/// array from a transposed (or shifted) read of the previous one, and the
/// last closes the cycle. The Eqn 4 stress shape: every decomposition
/// must reconcile conflicting preferred orientations around the ring.
std::string genCycle(const std::string &Name, Rng &R) {
  uint64_t N = pickN(R);
  unsigned K = static_cast<unsigned>(R.nextInRange(2, 5));
  std::string S = header(Name, "generated: multi-array cycle family");
  S += "param N = " + num(N) + ";\n";
  S += "array ";
  for (unsigned A = 0; A != K; ++A)
    S += std::string(A ? ", " : "") + "A" + num(A) + "[N + 1, N + 1]";
  S += ";\n";
  for (unsigned Link = 0; Link != K; ++Link) {
    std::string W = "A" + num((Link + 1) % K);
    std::string Rd = "A" + num(Link);
    bool Transpose = R.nextBelow(3) != 0; // Mostly transposes; some copies.
    S += "forall i = 0 to N {\n";
    S += "  forall j = 0 to N {\n";
    S += "    " + W + "[i, j] = f(" + Rd +
         (Transpose ? "[j, i]" : "[i, j]") + ")" + cost(R) + ";\n";
    S += "  }\n";
    S += "}\n";
  }
  return S;
}

/// Broadcast shapes: matmul-like contractions whose read-only operands
/// want replication (Sec. 7.2), optionally chained into a consumer.
std::string genBroadcast(const std::string &Name, Rng &R) {
  uint64_t N = pickN(R);
  bool Consumer = R.nextBelow(2) == 0;
  std::string S = header(Name, "generated: broadcast family");
  S += "param N = " + num(N) + ";\n";
  S += "array C[N + 1, N + 1], A[N + 1, N + 1], B[N + 1, N + 1]";
  if (Consumer)
    S += ", D[N + 1, N + 1]";
  S += ";\n";
  S += "forall i = 0 to N {\n";
  S += "  forall j = 0 to N {\n";
  S += "    for k = 0 to N {\n";
  S += "      C[i, j] += A[i, k] * B[k, j]" + cost(R) + ";\n";
  S += "    }\n";
  S += "  }\n";
  S += "}\n";
  if (Consumer) {
    S += "forall i = 0 to N {\n";
    S += "  forall j = 0 to N {\n";
    S += "    D[i, j] = f(C[i, j], A[i, j])" + cost(R) + ";\n";
    S += "  }\n";
    S += "}\n";
  }
  return S;
}

/// Imperfect nests: a sequential time loop enclosing two or three nests
/// of differing depth (two-buffer stencil sweep, copy-back, optional 1-D
/// edge pass) — the multi-nest fusion / decomposition-consistency shape.
std::string genImperfect(const std::string &Name, Rng &R) {
  uint64_t N = pickN(R);
  uint64_t T = static_cast<uint64_t>(R.nextInRange(2, 10));
  bool EdgePass = R.nextBelow(2) == 0;
  std::string S = header(Name, "generated: imperfect nest family");
  S += "param N = " + num(N) + ", T = " + num(T) + ";\n";
  S += "array A[N + 2, N + 2], B[N + 2, N + 2]";
  if (EdgePass)
    S += ", E[N + 2]";
  S += ";\n";
  S += "for t = 1 to T {\n";
  S += "  forall i = 1 to N {\n";
  S += "    forall j = 1 to N {\n";
  S += "      B[i, j] = f(A[i - 1, j], A[i + 1, j], A[i, j - 1], "
       "A[i, j + 1])" +
       cost(R) + ";\n";
  S += "    }\n";
  S += "  }\n";
  S += "  forall i = 1 to N {\n";
  S += "    forall j = 1 to N {\n";
  S += "      A[i, j] = B[i, j]" + cost(R) + ";\n";
  S += "    }\n";
  S += "  }\n";
  if (EdgePass) {
    S += "  forall i = 1 to N {\n";
    S += "    E[i] = f(A[i, 1])" + cost(R) + ";\n";
    S += "  }\n";
  }
  S += "}\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Adversarial templates (promoted from testdata/fuzz)
//===----------------------------------------------------------------------===//

/// Dense coupled subscripts in a deep nest: every pair of indices appears
/// in some access, so exact dependence systems blow up under Fourier-
/// Motzkin elimination. Stresses the FM budget / tier degradation path.
std::string advFmBlowup(const std::string &Name, uint64_t N, Rng &R) {
  std::string S =
      header(Name, "adversarial: dense coupled subscripts — stresses the "
                   "Fourier-Motzkin budget degradation path");
  S += "param N = " + num(N) + ";\n";
  S += "array A[N + 1, N + 1, N + 1], B[N + 1, N + 1, N + 1];\n";
  S += "for i = 0 to N {\n";
  S += "  for j = 0 to N {\n";
  S += "    for k = 0 to N {\n";
  S += "      for l = 0 to N {\n";
  S += "        A[i + j, j + k, k + l] = f(A[j + k, k + l, i + j], "
       "B[i + l, j + k, i + k])" +
       cost(R) + ";\n";
  S += "        B[i + k, j + l, i + j] = g(A[k + l, i + j, j + k], "
       "B[j + l, i + k, k + l])" +
       cost(R) + ";\n";
  S += "      }\n";
  S += "    }\n";
  S += "  }\n";
  S += "}\n";
  return S;
}

/// Subscript coefficients near 2^40: products formed while normalizing
/// dependence systems exceed 64 bits. Stresses checked rational
/// arithmetic (RationalOverflow) and sound stage degradation.
std::string advBigCoeff(const std::string &Name, uint64_t Base, Rng &R) {
  std::string C = num(Base);
  std::string C1 = num(Base + 1);
  std::string Cm1 = num(Base - 1);
  std::string S =
      header(Name, "adversarial: ~2^40 subscript coefficients — stresses "
                   "RationalOverflow-checked arithmetic degradation");
  S += "param N = 1023;\n";
  S += "array A[" + C1 + ", " + C1 + "], B[" + C1 + "];\n";
  S += "forall i = 0 to N {\n";
  S += "  for j = 0 to N {\n";
  S += "    A[" + C + " * i + " + Cm1 + ", " + C + " * j] = f(A[" + C +
       " * i, " + C + " * j + " + Cm1 + "], B[" + C + " * i + " + C +
       " * j])" + cost(R) + ";\n";
  S += "    B[" + C + " * j + " + Cm1 + "] += A[" + C + " * j, " + C +
       " * i]" + cost(R) + ";\n";
  S += "  }\n";
  S += "}\n";
  return S;
}

/// Rank-deficient and constant subscripts plus a zero-trip nest.
/// Stresses pseudo-inverse / kernel tolerance of degenerate access
/// matrices and zero-iteration bounds handling.
std::string advDegenerate(const std::string &Name, uint64_t M, Rng &R) {
  std::string S =
      header(Name, "adversarial: rank-deficient subscripts and a zero-trip "
                   "nest — stresses pseudo-inverse/kernel degeneracy "
                   "handling");
  S += "param N = 0, M = " + num(M) + ";\n";
  S += "array A[M + 2, M + 2], B[M + 2];\n";
  S += "forall i = 0 to M {\n";
  S += "  for j = 0 to M {\n";
  S += "    A[i - i, j] = f(A[j, j], B[2 * i - i - i + 1])" + cost(R) + ";\n";
  S += "    B[j - j + 1] += A[1, 1]" + cost(R) + ";\n";
  S += "  }\n";
  S += "}\n";
  S += "for i = 1 to N {\n";
  S += "  B[i] = g(B[i - 1])" + cost(R) + ";\n";
  S += "}\n";
  return S;
}

/// Read-only arrays feeding both a contraction and a wavefront: the
/// replication re-solve must exclude them from its interference graph
/// even when its budget starves. Stresses the replication-degradation /
/// orientation interaction (fuzz regression, IR generator seed 74).
std::string advReadonlyReplication(const std::string &Name, uint64_t N,
                                   Rng &R) {
  std::string S =
      header(Name, "adversarial: read-only operands under a starved "
                   "replication re-solve — stresses replication "
                   "degradation feeding orientation");
  S += "param N = " + num(N) + ";\n";
  S += "array A[N + 1, N + 1], B[N + 1, N + 1], C[N + 1, N + 1], "
       "D[N + 1, N + 1];\n";
  S += "forall i = 0 to N {\n";
  S += "  forall j = 0 to N {\n";
  S += "    for k = 0 to N {\n";
  S += "      C[i, j] += A[i, k] * B[k, j]" + cost(R) + ";\n";
  S += "    }\n";
  S += "  }\n";
  S += "}\n";
  S += "forall i = 1 to N {\n";
  S += "  for j = 1 to N {\n";
  S += "    D[i, j] = f(D[i - 1, j], D[i, j - 1], A[i, j])" + cost(R) +
       ";\n";
  S += "  }\n";
  S += "}\n";
  return S;
}

/// Halo reads pulling two arrays in opposite processor-space directions
/// inside one nest: the planner must interleave shifts in both
/// directions deadlock-free. Stresses the schedule verifier's wait-cycle
/// and send/recv matching checks.
std::string advBidirectionalExchange(const std::string &Name, uint64_t N,
                                     uint64_t T, Rng &R) {
  std::string S =
      header(Name, "adversarial: opposite-direction halo pulls in one nest "
                   "— stresses schedule-verifier deadlock and matching "
                   "checks");
  S += "param N = " + num(N) + ", T = " + num(T) + ";\n";
  S += "array A[N + 2], E[N + 2], B[N + 2];\n";
  S += "for t = 1 to T {\n";
  S += "  forall i = 1 to N {\n";
  S += "    B[i] = f(A[i - 1], A[i + 1], E[i + 1], E[i - 1])" + cost(R) +
       ";\n";
  S += "  }\n";
  S += "  forall i = 1 to N {\n";
  S += "    A[i] = f(B[i])" + cost(R) + ";\n";
  S += "    E[i] = f(B[i])" + cost(R) + ";\n";
  S += "  }\n";
  S += "}\n";
  return S;
}

/// Randomized adversarial shape: one of the named templates with
/// template-appropriate parameters drawn from \p R.
std::string genAdversarial(const std::string &Name, Rng &R) {
  switch (R.nextBelow(5)) {
  case 0:
    return advFmBlowup(Name, static_cast<uint64_t>(R.nextInRange(15, 63)), R);
  case 1:
    return advBigCoeff(
        Name, (1ull << 40) + static_cast<uint64_t>(R.nextInRange(0, 1024)),
        R);
  case 2:
    return advDegenerate(Name, static_cast<uint64_t>(R.nextInRange(7, 63)),
                         R);
  case 3:
    return advReadonlyReplication(Name, pickN(R), R);
  default:
    return advBidirectionalExchange(
        Name, pickN(R), static_cast<uint64_t>(R.nextInRange(2, 10)), R);
  }
}

/// splitmix-style mix of corpus seed and program index; every program's
/// Rng derives from this, making each index independent of all others.
uint64_t mixSeedIndex(uint64_t Seed, uint64_t Index) {
  uint64_t Z = Seed ^ (0x9e3779b97f4a7c15ull * (Index + 1));
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

const std::vector<std::string> &gen::familyNames() {
  static const std::vector<std::string> Names = {
      "triangular", "wavefront", "cycle", "broadcast", "imperfect",
      "adversarial"};
  return Names;
}

const std::vector<std::string> &gen::adversarialTemplateNames() {
  static const std::vector<std::string> Names = {
      "fm-blowup", "big-coeff", "degenerate", "readonly-replication",
      "bidirectional-exchange"};
  return Names;
}

GeneratedProgram gen::generateProgram(uint64_t Seed, uint64_t Index,
                                      const std::string &Family) {
  const std::vector<std::string> &Families = familyNames();
  std::string F = Family;
  if (F.empty())
    F = Families[Index % Families.size()];

  GeneratedProgram P;
  P.Family = F;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "gen_%05llu_",
                static_cast<unsigned long long>(Index));
  P.Name = Buf + F;
  P.FileName = P.Name + ".alp";

  Rng R(mixSeedIndex(Seed, Index));
  if (F == "triangular")
    P.Source = genTriangular(P.Name, R);
  else if (F == "wavefront")
    P.Source = genWavefront(P.Name, R);
  else if (F == "cycle")
    P.Source = genCycle(P.Name, R);
  else if (F == "broadcast")
    P.Source = genBroadcast(P.Name, R);
  else if (F == "imperfect")
    P.Source = genImperfect(P.Name, R);
  else if (F == "adversarial")
    P.Source = genAdversarial(P.Name, R);
  return P;
}

std::string gen::renderAdversarialTemplate(const std::string &Name) {
  // Canonical instantiations: fixed parameters, fixed cost Rng, so the
  // checked-in testdata/gen files are reproducible bytes.
  Rng R(0xa11ce);
  if (Name == "fm-blowup")
    return advFmBlowup("adv_fm_blowup", 63, R);
  if (Name == "big-coeff")
    return advBigCoeff("adv_big_coeff", 1ull << 40, R);
  if (Name == "degenerate")
    return advDegenerate("adv_degenerate", 31, R);
  if (Name == "readonly-replication")
    return advReadonlyReplication("adv_readonly_replication", 255, R);
  if (Name == "bidirectional-exchange")
    return advBidirectionalExchange("adv_bidirectional_exchange", 255, 10, R);
  return "";
}

std::string gen::corpusManifestJson(
    uint64_t Seed, uint64_t Count, const std::string &Family,
    const std::vector<GeneratedProgram> &Programs) {
  std::string Out = "{\n";
  Out += "  \"alp_corpus\": {\"schema_version\": 1},\n";
  Out += "  \"seed\": " + std::to_string(Seed) + ",\n";
  Out += "  \"count\": " + std::to_string(Count) + ",\n";
  Out += "  \"family\": \"" + (Family.empty() ? "all" : Family) + "\",\n";
  Out += "  \"programs\": [";
  for (size_t I = 0; I != Programs.size(); ++I) {
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"file\": \"" + Programs[I].FileName + "\", \"family\": \"" +
           Programs[I].Family + "\"}";
  }
  Out += Programs.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}
