//===- gen/Generator.h - Seeded affine-DSL corpus generator -----*- C++ -*-===//
///
/// \file
/// The parameterized, seeded corpus generator behind tools/alp_gen: emits
/// affine-DSL programs spanning the paper's shape space so the compiler's
/// perf and robustness claims are exercised on hundreds of scenarios, not
/// a dozen hand-written examples (ROADMAP item 5).
///
/// Shape families (docs/CORPUS.md):
///   - triangular:  LU/Cholesky-style nests with affine triangular bounds
///   - wavefront:   diagonal recurrences, optionally under a time loop
///   - cycle:       multi-array chains of transposed copies (Eqn 4 stress)
///   - broadcast:   matmul-like read-only operand replication
///   - imperfect:   time loops enclosing several nests of differing depth
///   - adversarial: named templates promoted from the fuzz corpus, each
///                  stressing one checker / degradation path
///
/// Seeding contract: program #Index of a corpus is a pure function of
/// (Seed, Index) — each program derives its own Rng, so the corpus is
/// byte-identical however the indices are ordered or parallelized
/// (`alp_gen --jobs N` races file writes, never bytes). Same Seed and
/// Count => byte-identical corpus, forever; changing either reshuffles
/// everything by design.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_GEN_GENERATOR_H
#define ALP_GEN_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace alp {
namespace gen {

/// One generated program: a DSL identifier, the file name it lands under
/// in the corpus directory, and the full source text.
struct GeneratedProgram {
  std::string Name;     ///< Program identifier ("gen_00042_wavefront").
  std::string FileName; ///< Corpus-relative file name (Name + ".alp").
  std::string Family;   ///< Shape family name.
  std::string Source;   ///< Complete DSL source, trailing newline included.
};

/// The shape-family names, in round-robin order ("triangular",
/// "wavefront", "cycle", "broadcast", "imperfect", "adversarial").
const std::vector<std::string> &familyNames();

/// Generates corpus program \p Index for \p Seed. \p Family selects one
/// family for the whole corpus; empty round-robins `Index % families`.
/// Pure function of its arguments (see the seeding contract above);
/// throws nothing, an unknown family name returns an empty Source.
GeneratedProgram generateProgram(uint64_t Seed, uint64_t Index,
                                 const std::string &Family = "");

/// Names of the adversarial templates promoted from the fuzz corpus
/// ("fm-blowup", "big-coeff", "degenerate", "readonly-replication",
/// "bidirectional-exchange").
const std::vector<std::string> &adversarialTemplateNames();

/// The canonical (fixed-parameter) instantiation of one adversarial
/// template — the exact bytes checked in under testdata/gen/ and pinned
/// by GeneratorTest. Unknown name returns the empty string. The leading
/// comment names the checker / degradation path the shape stresses.
std::string renderAdversarialTemplate(const std::string &Name);

/// The corpus manifest JSON: seed, count, family, and the file list in
/// index order. Deterministic for a given (Seed, Count, Family).
std::string corpusManifestJson(uint64_t Seed, uint64_t Count,
                               const std::string &Family,
                               const std::vector<GeneratedProgram> &Programs);

} // namespace gen
} // namespace alp

#endif // ALP_GEN_GENERATOR_H
