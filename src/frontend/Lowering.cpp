//===- frontend/Lowering.cpp - AST to affine IR ------------------------------===//

#include "frontend/Lowering.h"

#include "frontend/Parser.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <set>

using namespace alp;
using namespace alp::ast;

namespace {

//===----------------------------------------------------------------------===//
// AST deep copy (needed by loop distribution)
//===----------------------------------------------------------------------===//

BlockItemAST cloneItem(const BlockItemAST &Item);

std::vector<BlockItemAST> cloneItems(const std::vector<BlockItemAST> &Items) {
  std::vector<BlockItemAST> Out;
  Out.reserve(Items.size());
  for (const BlockItemAST &I : Items)
    Out.push_back(cloneItem(I));
  return Out;
}

BlockItemAST cloneItem(const BlockItemAST &Item) {
  BlockItemAST Out;
  if (Item.Stmt)
    Out.Stmt = std::make_unique<StmtAST>(*Item.Stmt);
  if (Item.Loop) {
    Out.Loop = std::make_unique<LoopAST>();
    Out.Loop->IsForall = Item.Loop->IsForall;
    Out.Loop->Index = Item.Loop->Index;
    Out.Loop->Lower = Item.Loop->Lower;
    Out.Loop->Upper = Item.Loop->Upper;
    Out.Loop->Step = Item.Loop->Step;
    Out.Loop->Loc = Item.Loop->Loc;
    Out.Loop->Body = cloneItems(Item.Loop->Body);
  }
  if (Item.Branch) {
    Out.Branch = std::make_unique<BranchAST>();
    Out.Branch->TakenProbability = Item.Branch->TakenProbability;
    Out.Branch->Loc = Item.Branch->Loc;
    Out.Branch->Then = cloneItems(Item.Branch->Then);
    Out.Branch->Else = cloneItems(Item.Branch->Else);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Loop distribution pre-pass
//===----------------------------------------------------------------------===//

/// Rewrites \p Items so that no loop body mixes statements with loops or
/// branches: each maximal statement run in a mixed body is moved into its
/// own copy of the enclosing loop. Recurses bottom-up.
std::vector<BlockItemAST> distribute(std::vector<BlockItemAST> Items) {
  // Recurse first.
  for (BlockItemAST &I : Items) {
    if (I.Loop)
      I.Loop->Body = distribute(std::move(I.Loop->Body));
    if (I.Branch) {
      I.Branch->Then = distribute(std::move(I.Branch->Then));
      I.Branch->Else = distribute(std::move(I.Branch->Else));
    }
  }
  std::vector<BlockItemAST> Out;
  for (BlockItemAST &I : Items) {
    if (!I.Loop) {
      Out.push_back(std::move(I));
      continue;
    }
    LoopAST &L = *I.Loop;
    bool HasStmt = false, HasCompound = false;
    unsigned CompoundCount = 0;
    for (const BlockItemAST &C : L.Body) {
      HasStmt |= C.Stmt != nullptr;
      HasCompound |= C.Stmt == nullptr;
      CompoundCount += C.Stmt == nullptr;
    }
    // A forall over several nests distributes freely (a parallel loop has
    // no carried dependences by assertion, so splitting it is legal);
    // this keeps the user's parallelism visible instead of demoting the
    // loop to a sequential structure level.
    bool SplitAll = L.IsForall && (CompoundCount > 1 || HasStmt);
    if (!SplitAll && (!HasStmt || !HasCompound)) {
      Out.push_back(std::move(I));
      continue;
    }
    // Mixed body: emit one loop copy per maximal group.
    std::vector<BlockItemAST> Group;
    bool GroupIsStmts = false;
    auto Flush = [&]() {
      if (Group.empty())
        return;
      BlockItemAST Copy;
      Copy.Loop = std::make_unique<LoopAST>();
      Copy.Loop->IsForall = L.IsForall;
      Copy.Loop->Index = L.Index;
      Copy.Loop->Lower = L.Lower;
      Copy.Loop->Upper = L.Upper;
      Copy.Loop->Step = L.Step;
      Copy.Loop->Loc = L.Loc;
      Copy.Loop->Body = std::move(Group);
      Group.clear();
      Out.push_back(std::move(Copy));
    };
    for (BlockItemAST &C : L.Body) {
      bool IsStmt = C.Stmt != nullptr;
      if (!Group.empty() && (IsStmt != GroupIsStmts ||
                             (SplitAll && !IsStmt)))
        Flush();
      GroupIsStmts = IsStmt;
      Group.push_back(std::move(C));
    }
    Flush();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Structure classification
//===----------------------------------------------------------------------===//

/// True if \p L roots a perfect nest: its body is either all statements or
/// exactly one loop that itself roots a perfect nest.
bool isNestLoop(const LoopAST &L) {
  bool AllStmts = true;
  for (const BlockItemAST &C : L.Body)
    AllStmts &= C.Stmt != nullptr;
  if (AllStmts && !L.Body.empty())
    return true;
  if (L.Body.size() == 1 && L.Body.front().Loop)
    return isNestLoop(*L.Body.front().Loop);
  return false;
}

//===----------------------------------------------------------------------===//
// Lowering proper
//===----------------------------------------------------------------------===//

class Lowering {
public:
  Lowering(const ProgramAST &Ast, DiagnosticEngine &Diags)
      : Ast(Ast), Diags(Diags) {}

  std::optional<Program> run();

private:
  const ProgramAST &Ast;
  DiagnosticEngine &Diags;
  Program P;

  /// Indices of enclosing structure loops, usable as symbols.
  std::set<std::string> StructSymbols;

  std::vector<ProgramNode> lowerItems(const std::vector<BlockItemAST> &Items);
  unsigned lowerNest(const LoopAST &Root);

  /// Converts an AffineForm into (coefficients over \p ChainNames, symbolic
  /// rest). Unknown index names that are structure symbols fold into the
  /// rest. Returns false on reference to an index not in scope.
  bool splitForm(const AffineForm &Form,
                 const std::vector<std::string> &ChainNames, Vector &Coeffs,
                 SymAffine &Rest, SourceLoc Loc);
};

bool Lowering::splitForm(const AffineForm &Form,
                         const std::vector<std::string> &ChainNames,
                         Vector &Coeffs, SymAffine &Rest, SourceLoc Loc) {
  Coeffs = Vector::zero(ChainNames.size());
  Rest = Form.Rest;
  for (const auto &[Name, C] : Form.IndexCoeffs) {
    auto It = std::find(ChainNames.begin(), ChainNames.end(), Name);
    if (It != ChainNames.end()) {
      Coeffs[It - ChainNames.begin()] = C;
      continue;
    }
    if (StructSymbols.count(Name)) {
      Rest += SymAffine::symbol(Name, C);
      continue;
    }
    Diags.error(Loc, "index '" + Name + "' is not in scope here");
    return false;
  }
  return true;
}

unsigned Lowering::lowerNest(const LoopAST &Root) {
  unsigned Id = P.Nests.size();
  P.Nests.emplace_back();
  LoopNest &Nest = P.Nests.back();
  Nest.Id = Id;

  // Collect the loop chain and apply strided-loop normalization through a
  // substitution environment mapping source index names to affine forms
  // over the normalized indices.
  std::vector<const LoopAST *> Chain;
  for (const LoopAST *L = &Root;;) {
    Chain.push_back(L);
    if (L->Body.size() == 1 && L->Body.front().Loop) {
      L = L->Body.front().Loop.get();
      continue;
    }
    break;
  }
  unsigned Depth = Chain.size();
  std::vector<std::string> Names;
  for (const LoopAST *L : Chain)
    Names.push_back(L->Index);

  // Substitutions for strided loops: i -> step * i + lo (the normalized
  // index keeps the source name).
  std::map<std::string, AffineForm> Subst;
  auto Substitute = [&](AffineForm F) {
    for (const auto &[Name, Repl] : Subst)
      F = F.substituted(Name, Repl);
    return F;
  };

  for (unsigned D = 0; D != Depth; ++D) {
    const LoopAST &L = *Chain[D];
    Loop Out;
    Out.IndexName = L.Index;
    Out.Kind = L.IsForall ? LoopKind::Parallel : LoopKind::Sequential;
    Out.Loc = L.Loc;
    std::vector<AffineForm> Lows, Highs;
    for (const AffineForm &T : L.Lower)
      Lows.push_back(Substitute(T));
    for (const AffineForm &T : L.Upper)
      Highs.push_back(Substitute(T));
    if (L.Step != 1) {
      if (Lows.size() != 1 || Highs.size() != 1) {
        Diags.error(L.Loc,
                    "strided loops must have single-term bounds");
        return Id;
      }
      AffineForm Lo = Lows.front(), Hi = Highs.front();
      if (L.Step < 0) {
        // for i = hi down to lo by -s  ==  reversed; normalize by swapping.
        std::swap(Lo, Hi);
      }
      int64_t S = L.Step < 0 ? -L.Step : L.Step;
      // i = S * i' + lo with i' in [0, (hi - lo) / S].
      AffineForm Repl =
          AffineForm::index(L.Index, Rational(S)) + Lo;
      Highs.front() = (Hi - Lo).scaled(Rational(1, S));
      Lows.front() = AffineForm(SymAffine(0));
      Subst[L.Index] = Repl; // Applies to deeper bounds and subscripts.
    }
    auto EmitTerms = [&](const std::vector<AffineForm> &Terms,
                         std::vector<BoundTerm> &Dst) {
      for (const AffineForm &T : Terms) {
        Vector C;
        SymAffine Rest;
        if (!splitForm(T, Names, C, Rest, L.Loc))
          return false;
        // A loop bound may only mention strictly-outer chain indices.
        for (unsigned J = D; J != Depth; ++J)
          if (!C[J].isZero()) {
            Diags.error(L.Loc, "bound of loop '" + L.Index +
                                   "' depends on itself or an inner index");
            return false;
          }
        Dst.push_back(BoundTerm(C, Rest));
      }
      return true;
    };
    if (!EmitTerms(Lows, Out.Lower) || !EmitTerms(Highs, Out.Upper))
      return Id;
    Nest.Loops.push_back(std::move(Out));
  }

  // Lower the statement run at the innermost level.
  for (const BlockItemAST &C : Chain.back()->Body) {
    assert(C.Stmt && "nest chain must end in statements");
    const StmtAST &S = *C.Stmt;
    Statement Out;
    Out.Loc = S.Loc;
    auto LowerRef = [&](const ArrayRefAST &R, bool IsWrite,
                        bool &Ok) -> ArrayAccess {
      ArrayAccess A;
      A.IsWrite = IsWrite;
      A.Loc = R.Loc;
      Ok = true;
      // Array name resolution.
      bool Found = false;
      for (unsigned I = 0; I != P.Arrays.size(); ++I)
        if (P.Arrays[I].Name == R.Name) {
          A.ArrayId = I;
          Found = true;
          break;
        }
      if (!Found) {
        Diags.error(R.Loc, "unknown array '" + R.Name + "'");
        Ok = false;
        return A;
      }
      if (R.Subscripts.size() != P.Arrays[A.ArrayId].rank()) {
        Diags.error(R.Loc, "array '" + R.Name + "' has rank " +
                               std::to_string(P.Arrays[A.ArrayId].rank()) +
                               " but is subscripted with " +
                               std::to_string(R.Subscripts.size()) +
                               " expressions");
        Ok = false;
        return A;
      }
      Matrix F(R.Subscripts.size(), Depth);
      SymVector K(R.Subscripts.size());
      for (unsigned Dim = 0; Dim != R.Subscripts.size(); ++Dim) {
        Vector Coeffs;
        SymAffine Rest;
        if (!splitForm(Substitute(R.Subscripts[Dim]), Names, Coeffs, Rest,
                       R.Loc)) {
          Ok = false;
          return A;
        }
        for (unsigned J = 0; J != Depth; ++J) {
          if (!Coeffs[J].isInteger()) {
            Diags.error(R.Loc, "non-integer subscript coefficient");
            Ok = false;
            return A;
          }
          F.at(Dim, J) = Coeffs[J];
        }
        K[Dim] = Rest;
      }
      A.Map = AffineAccessMap(std::move(F), std::move(K));
      return A;
    };
    bool Ok = true;
    ArrayAccess W = LowerRef(S.Lhs, /*IsWrite=*/true, Ok);
    if (!Ok)
      continue;
    Out.Accesses.push_back(W);
    if (S.IsPlusAssign) {
      ArrayAccess RAcc = W;
      RAcc.IsWrite = false;
      Out.Accesses.push_back(std::move(RAcc));
    }
    for (const ArrayRefAST &R : S.Reads) {
      ArrayAccess A = LowerRef(R, /*IsWrite=*/false, Ok);
      if (!Ok)
        break;
      Out.Accesses.push_back(std::move(A));
    }
    if (!Ok)
      continue;
    Out.WorkCycles =
        S.Cost ? S.Cost : 1 + static_cast<unsigned>(Out.Accesses.size());
    // Reconstruct display text from the refs ("W[..] = f(R[..], ...)").
    Nest.Body.push_back(std::move(Out));
  }
  return Id;
}

std::vector<ProgramNode>
Lowering::lowerItems(const std::vector<BlockItemAST> &Items) {
  std::vector<ProgramNode> Out;
  for (const BlockItemAST &I : Items) {
    if (I.Stmt) {
      Diags.error(I.Stmt->Loc,
                  "statement is not enclosed in any loop; wrap it in a "
                  "(possibly trivial) loop nest");
      continue;
    }
    if (I.Branch) {
      std::vector<ProgramNode> Then = lowerItems(I.Branch->Then);
      std::vector<ProgramNode> Else = lowerItems(I.Branch->Else);
      Out.push_back(ProgramNode::branch(I.Branch->TakenProbability,
                                        std::move(Then), std::move(Else)));
      continue;
    }
    const LoopAST &L = *I.Loop;
    if (isNestLoop(L)) {
      Out.push_back(ProgramNode::nest(lowerNest(L)));
      continue;
    }
    if (L.Body.empty()) {
      Diags.error(L.Loc, "empty loop body");
      continue;
    }
    // Structure level: the loop's index becomes a symbolic constant for
    // everything inside (Sec. 6.4: "references to loop indices outside the
    // current nesting level are treated as symbolic constants").
    if (L.IsForall)
      Diags.warning(L.Loc,
                    "forall over multiple nests is treated as a sequential "
                    "structure level");
    // Trip count (upper - lower)/|step| + 1 must be index-free apart from
    // enclosing structure symbols; min/max bounds use their first term as
    // the estimate.
    AffineForm TripForm =
        (L.Upper.front() - L.Lower.front())
            .scaled(Rational(1, std::abs(L.Step))) +
        AffineForm(SymAffine(1));
    SymAffine Trip = TripForm.Rest;
    for (const auto &[Name, C] : TripForm.IndexCoeffs) {
      if (!StructSymbols.count(Name)) {
        Diags.error(L.Loc, "structure loop bound depends on index '" + Name +
                               "' of an enclosing nest loop");
        continue;
      }
      Trip += SymAffine::symbol(Name, C);
    }
    bool Inserted = StructSymbols.insert(L.Index).second;
    // Give estimators a binding: pin the structure symbol at its lower
    // bound (the simulator rebinds it every iteration).
    AffineForm Lo = L.Lower.front();
    Rational LoVal(0);
    if (Lo.IndexCoeffs.empty()) {
      // Evaluate with existing bindings if possible; default 0 otherwise.
      bool AllBound = true;
      for (const auto &[Sym, C] : Lo.Rest.symbolCoeffs())
        AllBound &= P.SymbolBindings.count(Sym) != 0;
      if (AllBound)
        LoVal = Lo.Rest.evaluate(P.SymbolBindings);
    }
    P.SymbolBindings.emplace(L.Index, LoVal);
    std::vector<ProgramNode> Body = lowerItems(L.Body);
    if (Inserted)
      StructSymbols.erase(L.Index);
    Out.push_back(
        ProgramNode::sequentialLoop(L.Index, Trip, std::move(Body)));
  }
  return Out;
}

std::optional<Program> Lowering::run() {
  P.Name = Ast.Name;
  for (const auto &[Name, Value] : Ast.Params)
    P.SymbolBindings[Name] = Rational(Value);
  for (const ProgramAST::ArrayDecl &D : Ast.Arrays) {
    ArraySymbol A;
    A.Name = D.Name;
    A.DimSizes = D.DimSizes;
    A.Loc = D.Loc;
    P.Arrays.push_back(std::move(A));
  }
  // Pre-passes on a mutable AST copy: distribution.
  std::vector<BlockItemAST> Body = distribute(cloneItems(Ast.Body));
  P.TopLevel = lowerItems(Body);
  if (Diags.hasErrors())
    return std::nullopt;
  P.verify();
  P.recomputeProfiles();
  return std::move(P);
}

} // namespace

std::optional<Program> alp::lowerToProgram(const ProgramAST &Ast,
                                           DiagnosticEngine &Diags) {
  return Lowering(Ast, Diags).run();
}

std::optional<Program> alp::compileDsl(const std::string &Source,
                                       DiagnosticEngine &Diags) {
  auto Ast = parseDsl(Source, Diags);
  if (!Ast)
    return std::nullopt;
  return lowerToProgram(*Ast, Diags);
}
