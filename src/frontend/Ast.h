//===- frontend/Ast.h - DSL abstract syntax ---------------------*- C++ -*-===//
///
/// \file
/// The parsed form of a DSL program, prior to lowering into the affine IR.
/// Affine positions (array subscripts, loop bounds) are parsed directly
/// into AffineForm: rational coefficients on enclosing loop indices plus a
/// symbolic-affine remainder over the declared parameters.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_FRONTEND_AST_H
#define ALP_FRONTEND_AST_H

#include "linalg/SymAffine.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace alp {
namespace ast {

/// An affine expression over named loop indices and symbolic parameters.
struct AffineForm {
  std::map<std::string, Rational> IndexCoeffs; // Nonzero only.
  SymAffine Rest;

  AffineForm() = default;
  AffineForm(SymAffine Rest) : Rest(std::move(Rest)) {} // NOLINT: implicit.

  static AffineForm index(const std::string &Name,
                          Rational Coeff = Rational(1));

  AffineForm operator+(const AffineForm &RHS) const;
  AffineForm operator-(const AffineForm &RHS) const;
  AffineForm operator-() const;
  AffineForm scaled(const Rational &S) const;

  /// Substitutes index \p Name by \p Replacement (used when normalizing
  /// strided loops: i = step * i' + lower).
  AffineForm substituted(const std::string &Name,
                         const AffineForm &Replacement) const;

  bool dependsOnIndices() const { return !IndexCoeffs.empty(); }
};

/// A reference "Name[sub1, sub2, ...]".
struct ArrayRefAST {
  std::string Name;
  std::vector<AffineForm> Subscripts;
  SourceLoc Loc;
};

struct LoopAST;
struct BranchAST;

/// One assignment statement.
struct StmtAST {
  ArrayRefAST Lhs;
  bool IsPlusAssign = false; // += also reads the LHS location.
  std::vector<ArrayRefAST> Reads;
  std::string Text;       // Source spelling, for display.
  unsigned Cost = 0;      // From @cost(n); 0 means "derive from refs".
  SourceLoc Loc;
};

/// One item of a block: exactly one of the pointers is set.
struct BlockItemAST {
  std::unique_ptr<LoopAST> Loop;
  std::unique_ptr<BranchAST> Branch;
  std::unique_ptr<StmtAST> Stmt;
};

struct LoopAST {
  bool IsForall = false;
  std::string Index;
  /// Effective lower bound: max of the terms; upper: min of the terms
  /// (DSL syntax: `max(e1, e2, ...)` / `min(e1, e2, ...)`).
  std::vector<AffineForm> Lower;
  std::vector<AffineForm> Upper;
  int64_t Step = 1;
  std::vector<BlockItemAST> Body;
  SourceLoc Loc;
};

struct BranchAST {
  double TakenProbability = 0.5;
  std::vector<BlockItemAST> Then;
  std::vector<BlockItemAST> Else;
  SourceLoc Loc;
};

struct ProgramAST {
  std::string Name;
  std::vector<std::pair<std::string, int64_t>> Params;
  struct ArrayDecl {
    std::string Name;
    std::vector<SymAffine> DimSizes;
    SourceLoc Loc;
  };
  std::vector<ArrayDecl> Arrays;
  std::vector<BlockItemAST> Body;
};

} // namespace ast
} // namespace alp

#endif // ALP_FRONTEND_AST_H
