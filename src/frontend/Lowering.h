//===- frontend/Lowering.h - AST to affine IR ------------------*- C++ -*-===//
///
/// \file
/// Lowers a parsed ProgramAST into the decomposition-ready Program IR,
/// performing the paper's front-end pre-passes (Sec. 2.1):
///
///  * loop normalization — strided loops `for i = lo to hi by s` are
///    rewritten to unit stride with `i = s*i' + lo` substituted into every
///    subscript and bound;
///  * loop distribution — a statement run that shares a loop body with
///    inner loops is split into its own copy of the enclosing loop so that
///    every statement ends up in a perfect nest (legality is assumed, as in
///    the paper's prepass);
///  * structure classification — a sequential loop whose body holds several
///    nests or a branch becomes a structure level (Sec. 6.4); its index is
///    treated as a symbolic constant inside the enclosed nests.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_FRONTEND_LOWERING_H
#define ALP_FRONTEND_LOWERING_H

#include "frontend/Ast.h"
#include "ir/Program.h"

#include <optional>

namespace alp {

/// Lowers \p Ast; returns nullopt and fills \p Diags on semantic errors.
std::optional<Program> lowerToProgram(const ast::ProgramAST &Ast,
                                      DiagnosticEngine &Diags);

/// Convenience: parse + lower DSL text in one step.
std::optional<Program> compileDsl(const std::string &Source,
                                  DiagnosticEngine &Diags);

} // namespace alp

#endif // ALP_FRONTEND_LOWERING_H
