//===- frontend/Lexer.cpp - DSL tokenizer -----------------------------------===//

#include "frontend/Lexer.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <map>

using namespace alp;

int64_t Token::integerValue() const {
  assert(Kind == TokenKind::Integer && "not an integer token");
  return std::strtoll(Spelling.c_str(), nullptr, 10);
}

double Token::floatValue() const {
  assert((Kind == TokenKind::Float || Kind == TokenKind::Integer) &&
         "not a numeric token");
  return std::strtod(Spelling.c_str(), nullptr);
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  Token T;
  T.Loc = here();
  if (atEnd()) {
    T.Kind = TokenKind::Eof;
    return T;
  }
  char C = advance();
  switch (C) {
  case '{':
    T.Kind = TokenKind::LBrace;
    return T;
  case '}':
    T.Kind = TokenKind::RBrace;
    return T;
  case '[':
    T.Kind = TokenKind::LBracket;
    return T;
  case ']':
    T.Kind = TokenKind::RBracket;
    return T;
  case '(':
    T.Kind = TokenKind::LParen;
    return T;
  case ')':
    T.Kind = TokenKind::RParen;
    return T;
  case ',':
    T.Kind = TokenKind::Comma;
    return T;
  case ';':
    T.Kind = TokenKind::Semicolon;
    return T;
  case '@':
    T.Kind = TokenKind::At;
    return T;
  case '=':
    T.Kind = TokenKind::Assign;
    return T;
  case '+':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::PlusAssign;
    } else {
      T.Kind = TokenKind::Plus;
    }
    return T;
  case '-':
    T.Kind = TokenKind::Minus;
    return T;
  case '*':
    T.Kind = TokenKind::Star;
    return T;
  case '/':
    T.Kind = TokenKind::Slash;
    return T;
  default:
    break;
  }
  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Num(1, C);
    bool SawDot = false;
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                        (peek() == '.' && !SawDot))) {
      if (peek() == '.')
        SawDot = true;
      Num.push_back(advance());
    }
    T.Kind = SawDot ? TokenKind::Float : TokenKind::Integer;
    T.Spelling = Num;
    return T;
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Id(1, C);
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Id.push_back(advance());
    static const std::map<std::string, TokenKind> Keywords = {
        {"program", TokenKind::KwProgram}, {"param", TokenKind::KwParam},
        {"array", TokenKind::KwArray},     {"for", TokenKind::KwFor},
        {"forall", TokenKind::KwForall},   {"to", TokenKind::KwTo},
        {"by", TokenKind::KwBy},           {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},       {"prob", TokenKind::KwProb},
        {"cost", TokenKind::KwCost}};
    auto It = Keywords.find(Id);
    T.Kind = It == Keywords.end() ? TokenKind::Identifier : It->second;
    T.Spelling = Id;
    return T;
  }
  Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
  return lexToken();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    bool Done = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}
