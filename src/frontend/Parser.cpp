//===- frontend/Parser.cpp - DSL recursive-descent parser -------------------===//

#include "frontend/Parser.h"

#include <algorithm>
#include <sstream>

using namespace alp;
using namespace alp::ast;

//===----------------------------------------------------------------------===//
// AffineForm
//===----------------------------------------------------------------------===//

AffineForm AffineForm::index(const std::string &Name, Rational Coeff) {
  AffineForm F;
  if (!Coeff.isZero())
    F.IndexCoeffs[Name] = Coeff;
  return F;
}

AffineForm AffineForm::operator+(const AffineForm &RHS) const {
  AffineForm F = *this;
  F.Rest += RHS.Rest;
  for (const auto &[Name, C] : RHS.IndexCoeffs) {
    Rational &Slot = F.IndexCoeffs[Name];
    Slot += C;
    if (Slot.isZero())
      F.IndexCoeffs.erase(Name);
  }
  return F;
}

AffineForm AffineForm::operator-(const AffineForm &RHS) const {
  return *this + (-RHS);
}

AffineForm AffineForm::operator-() const {
  AffineForm F;
  F.Rest = -Rest;
  for (const auto &[Name, C] : IndexCoeffs)
    F.IndexCoeffs[Name] = -C;
  return F;
}

AffineForm AffineForm::scaled(const Rational &S) const {
  AffineForm F;
  F.Rest = Rest.scaled(S);
  if (S.isZero())
    return F;
  for (const auto &[Name, C] : IndexCoeffs)
    F.IndexCoeffs[Name] = C * S;
  return F;
}

AffineForm AffineForm::substituted(const std::string &Name,
                                   const AffineForm &Replacement) const {
  auto It = IndexCoeffs.find(Name);
  if (It == IndexCoeffs.end())
    return *this;
  Rational C = It->second;
  AffineForm F = *this;
  F.IndexCoeffs.erase(Name);
  return F + Replacement.scaled(C);
}

//===----------------------------------------------------------------------===//
// Parser plumbing
//===----------------------------------------------------------------------===//

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must be Eof-terminated");
}

const Token &Parser::peek(unsigned Ahead) const {
  unsigned I = std::min<unsigned>(Pos + Ahead, Tokens.size() - 1);
  return Tokens[I];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (!T.is(TokenKind::Eof))
    ++Pos;
  return T;
}

bool Parser::match(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const std::string &What) {
  if (match(K))
    return true;
  error("expected " + What);
  return false;
}

void Parser::error(const std::string &Message) {
  Diags.error(peek().Loc, Message);
}

void Parser::synchronizeToSemicolon() {
  while (!check(TokenKind::Eof) && !match(TokenKind::Semicolon))
    advance();
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::optional<ProgramAST> Parser::parseProgram() {
  ProgramAST P;
  if (expect(TokenKind::KwProgram, "'program'")) {
    if (check(TokenKind::Identifier))
      P.Name = advance().Spelling;
    else
      error("expected program name");
    expect(TokenKind::Semicolon, "';' after program name");
  }
  while (check(TokenKind::KwParam) || check(TokenKind::KwArray)) {
    if (check(TokenKind::KwParam))
      parseParam(P);
    else
      parseArray(P);
  }
  P.Body = parseBlockItems(/*TopLevel=*/true);
  if (Diags.hasErrors())
    return std::nullopt;
  return P;
}

void Parser::parseParam(ProgramAST &P) {
  advance(); // 'param'.
  do {
    if (!check(TokenKind::Identifier)) {
      error("expected parameter name");
      synchronizeToSemicolon();
      return;
    }
    std::string Name = advance().Spelling;
    if (!ParamNames.insert(Name).second)
      error("redefinition of parameter '" + Name + "'");
    int64_t Value = 0;
    if (expect(TokenKind::Assign, "'=' in param declaration")) {
      bool Neg = match(TokenKind::Minus);
      if (check(TokenKind::Integer))
        Value = advance().integerValue() * (Neg ? -1 : 1);
      else
        error("expected integer default value");
    }
    P.Params.push_back({Name, Value});
  } while (match(TokenKind::Comma));
  expect(TokenKind::Semicolon, "';' after param declaration");
}

void Parser::parseArray(ProgramAST &P) {
  advance(); // 'array'.
  // One or more comma-separated declarators: Name[d1, d2, ...].
  do {
    if (!check(TokenKind::Identifier)) {
      error("expected array name");
      synchronizeToSemicolon();
      return;
    }
    ProgramAST::ArrayDecl D;
    D.Loc = peek().Loc;
    D.Name = advance().Spelling;
    if (!ArrayNames.insert(D.Name).second)
      error("redefinition of array '" + D.Name + "'");
    if (expect(TokenKind::LBracket, "'[' in array declaration")) {
      do {
        auto Dim = parseAffineExpr();
        if (!Dim)
          break;
        if (Dim->dependsOnIndices()) {
          error("array extent must not mention loop indices");
          break;
        }
        D.DimSizes.push_back(Dim->Rest);
      } while (match(TokenKind::Comma));
      expect(TokenKind::RBracket, "']' after array extents");
    }
    P.Arrays.push_back(std::move(D));
  } while (match(TokenKind::Comma));
  expect(TokenKind::Semicolon, "';' after array declaration");
}

//===----------------------------------------------------------------------===//
// Statements and blocks
//===----------------------------------------------------------------------===//

std::vector<BlockItemAST> Parser::parseBlock() {
  std::vector<BlockItemAST> Items;
  if (!expect(TokenKind::LBrace, "'{'"))
    return Items;
  Items = parseBlockItems(/*TopLevel=*/false);
  expect(TokenKind::RBrace, "'}'");
  return Items;
}

std::vector<BlockItemAST> Parser::parseBlockItems(bool TopLevel) {
  std::vector<BlockItemAST> Items;
  while (!check(TokenKind::Eof) && !check(TokenKind::RBrace)) {
    auto Item = parseBlockItem();
    if (Item) {
      Items.push_back(std::move(*Item));
      continue;
    }
    if (!TopLevel)
      break;
    advance(); // Skip the offending token and try again at top level.
  }
  return Items;
}

std::optional<BlockItemAST> Parser::parseBlockItem() {
  BlockItemAST Item;
  if (check(TokenKind::KwFor) || check(TokenKind::KwForall)) {
    Item.Loop = parseLoop();
    if (!Item.Loop)
      return std::nullopt;
    return Item;
  }
  if (check(TokenKind::KwIf)) {
    Item.Branch = parseBranch();
    if (!Item.Branch)
      return std::nullopt;
    return Item;
  }
  if (check(TokenKind::Identifier)) {
    Item.Stmt = parseStmt();
    if (!Item.Stmt)
      return std::nullopt;
    return Item;
  }
  error("expected a loop, branch, or assignment");
  return std::nullopt;
}

std::unique_ptr<LoopAST> Parser::parseLoop() {
  auto L = std::make_unique<LoopAST>();
  L->Loc = peek().Loc;
  L->IsForall = advance().is(TokenKind::KwForall);
  if (!check(TokenKind::Identifier)) {
    error("expected loop index name");
    return nullptr;
  }
  L->Index = advance().Spelling;
  if (ParamNames.count(L->Index) || ArrayNames.count(L->Index) ||
      std::find(LoopStack.begin(), LoopStack.end(), L->Index) !=
          LoopStack.end())
    error("loop index '" + L->Index + "' shadows an existing name");
  if (!expect(TokenKind::Assign, "'=' in loop header"))
    return nullptr;
  auto Lo = parseBoundExpr(/*IsLower=*/true);
  if (!Lo || !expect(TokenKind::KwTo, "'to' in loop header"))
    return nullptr;
  auto Hi = parseBoundExpr(/*IsLower=*/false);
  if (!Hi)
    return nullptr;
  L->Lower = std::move(*Lo);
  L->Upper = std::move(*Hi);
  if (match(TokenKind::KwBy)) {
    bool Neg = match(TokenKind::Minus);
    if (!check(TokenKind::Integer)) {
      error("expected integer step after 'by'");
      return nullptr;
    }
    L->Step = advance().integerValue() * (Neg ? -1 : 1);
    if (L->Step == 0) {
      error("loop step must be nonzero");
      return nullptr;
    }
  }
  LoopStack.push_back(L->Index);
  L->Body = parseBlock();
  LoopStack.pop_back();
  return L;
}

std::unique_ptr<BranchAST> Parser::parseBranch() {
  auto B = std::make_unique<BranchAST>();
  B->Loc = peek().Loc;
  advance(); // 'if'.
  if (!expect(TokenKind::KwProb, "'prob' (branch conditions carry only a "
                                 "profile probability)") ||
      !expect(TokenKind::LParen, "'(' after 'prob'"))
    return nullptr;
  if (check(TokenKind::Float) || check(TokenKind::Integer)) {
    B->TakenProbability = advance().floatValue();
    if (B->TakenProbability < 0.0 || B->TakenProbability > 1.0)
      error("branch probability must lie in [0, 1]");
  } else {
    error("expected probability literal");
  }
  expect(TokenKind::RParen, "')' after probability");
  B->Then = parseBlock();
  if (match(TokenKind::KwElse))
    B->Else = parseBlock();
  return B;
}

std::optional<std::vector<AffineForm>> Parser::parseBoundExpr(bool IsLower) {
  // A bound is either one affine expression or max(...) (lower) /
  // min(...) (upper) of several.
  if (check(TokenKind::Identifier) &&
      (peek().Spelling == "min" || peek().Spelling == "max") &&
      peek(1).is(TokenKind::LParen)) {
    bool IsMax = peek().Spelling == "max";
    if (IsMax != IsLower) {
      error(IsMax ? "max() is only meaningful as a lower bound"
                  : "min() is only meaningful as an upper bound");
      return std::nullopt;
    }
    advance(); // min/max.
    advance(); // '('.
    std::vector<AffineForm> Terms;
    do {
      auto T = parseAffineExpr();
      if (!T)
        return std::nullopt;
      Terms.push_back(std::move(*T));
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "')' after bound list"))
      return std::nullopt;
    return Terms;
  }
  auto T = parseAffineExpr();
  if (!T)
    return std::nullopt;
  return std::vector<AffineForm>{std::move(*T)};
}

std::optional<ArrayRefAST> Parser::parseArrayRef() {
  ArrayRefAST R;
  R.Loc = peek().Loc;
  R.Name = advance().Spelling;
  if (!expect(TokenKind::LBracket, "'[' in array reference"))
    return std::nullopt;
  do {
    auto Sub = parseAffineExpr();
    if (!Sub)
      return std::nullopt;
    R.Subscripts.push_back(std::move(*Sub));
  } while (match(TokenKind::Comma));
  if (!expect(TokenKind::RBracket, "']' after subscripts"))
    return std::nullopt;
  return R;
}

std::unique_ptr<StmtAST> Parser::parseStmt() {
  auto S = std::make_unique<StmtAST>();
  S->Loc = peek().Loc;
  if (!ArrayNames.count(peek().Spelling)) {
    error("unknown array '" + peek().Spelling + "'");
    synchronizeToSemicolon();
    return nullptr;
  }
  auto Lhs = parseArrayRef();
  if (!Lhs) {
    synchronizeToSemicolon();
    return nullptr;
  }
  S->Lhs = std::move(*Lhs);
  if (match(TokenKind::PlusAssign))
    S->IsPlusAssign = true;
  else if (!expect(TokenKind::Assign, "'=' or '+=' in assignment")) {
    synchronizeToSemicolon();
    return nullptr;
  }
  parseRhs(*S);
  if (match(TokenKind::At)) {
    if (expect(TokenKind::KwCost, "'cost' after '@'") &&
        expect(TokenKind::LParen, "'(' after 'cost'")) {
      if (check(TokenKind::Integer))
        S->Cost = static_cast<unsigned>(advance().integerValue());
      else
        error("expected integer cost");
      expect(TokenKind::RParen, "')' after cost");
    }
  }
  expect(TokenKind::Semicolon, "';' after assignment");
  return S;
}

void Parser::parseRhs(StmtAST &S) {
  // Free-form expression scan: array references are parsed precisely; any
  // other identifier (function name, scalar) and operators are kept as
  // display text only. Parentheses must balance.
  std::ostringstream Text;
  int Depth = 0;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::Semicolon) || check(TokenKind::At)) {
      if (Depth == 0)
        break;
      error("unbalanced parentheses in expression");
      break;
    }
    const Token &T = peek();
    if (T.is(TokenKind::Identifier) && ArrayNames.count(T.Spelling) &&
        peek(1).is(TokenKind::LBracket)) {
      auto R = parseArrayRef();
      if (!R)
        return;
      Text << R->Name << "[...]";
      S.Reads.push_back(std::move(*R));
      continue;
    }
    switch (T.Kind) {
    case TokenKind::LParen:
      ++Depth;
      Text << '(';
      break;
    case TokenKind::RParen:
      --Depth;
      Text << ')';
      break;
    case TokenKind::Plus:
      Text << " + ";
      break;
    case TokenKind::Minus:
      Text << " - ";
      break;
    case TokenKind::Star:
      Text << " * ";
      break;
    case TokenKind::Slash:
      Text << " / ";
      break;
    case TokenKind::Comma:
      Text << ", ";
      break;
    default:
      Text << T.Spelling;
      break;
    }
    advance();
  }
  S.Text = Text.str();
}

//===----------------------------------------------------------------------===//
// Affine expressions
//===----------------------------------------------------------------------===//

std::optional<AffineForm> Parser::parseAffineExpr() {
  auto Lhs = parseAffineTerm();
  if (!Lhs)
    return std::nullopt;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    bool IsPlus = advance().is(TokenKind::Plus);
    auto Rhs = parseAffineTerm();
    if (!Rhs)
      return std::nullopt;
    *Lhs = IsPlus ? *Lhs + *Rhs : *Lhs - *Rhs;
  }
  return Lhs;
}

std::optional<AffineForm> Parser::parseAffineTerm() {
  auto Lhs = parseAffineAtom();
  if (!Lhs)
    return std::nullopt;
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    bool IsMul = advance().is(TokenKind::Star);
    auto Rhs = parseAffineAtom();
    if (!Rhs)
      return std::nullopt;
    if (IsMul) {
      // One side must be a numeric constant for the product to stay affine.
      if (!Lhs->dependsOnIndices() && Lhs->Rest.isConstant())
        *Lhs = Rhs->scaled(Lhs->Rest.constant());
      else if (!Rhs->dependsOnIndices() && Rhs->Rest.isConstant())
        *Lhs = Lhs->scaled(Rhs->Rest.constant());
      else {
        error("non-affine product in subscript or bound");
        return std::nullopt;
      }
    } else {
      if (Rhs->dependsOnIndices() || !Rhs->Rest.isConstant() ||
          Rhs->Rest.constant().isZero()) {
        error("division must be by a nonzero numeric constant");
        return std::nullopt;
      }
      *Lhs = Lhs->scaled(Rhs->Rest.constant().reciprocal());
    }
  }
  return Lhs;
}

std::optional<AffineForm> Parser::parseAffineAtom() {
  if (match(TokenKind::Minus)) {
    auto A = parseAffineAtom();
    if (!A)
      return std::nullopt;
    return -*A;
  }
  if (match(TokenKind::LParen)) {
    auto A = parseAffineExpr();
    if (!A || !expect(TokenKind::RParen, "')'"))
      return std::nullopt;
    return A;
  }
  if (check(TokenKind::Integer))
    return AffineForm(SymAffine(advance().integerValue()));
  if (check(TokenKind::Identifier)) {
    std::string Name = peek().Spelling;
    if (std::find(LoopStack.begin(), LoopStack.end(), Name) !=
        LoopStack.end()) {
      advance();
      return AffineForm::index(Name);
    }
    if (ParamNames.count(Name)) {
      advance();
      return AffineForm(SymAffine::symbol(Name));
    }
    error("unknown name '" + Name + "' in affine expression");
    return std::nullopt;
  }
  error("expected affine expression");
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

std::optional<ProgramAST> alp::parseDsl(const std::string &Source,
                                        DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  return P.parseProgram();
}
