//===- frontend/Lexer.h - DSL tokenizer -------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the affine-loop DSL in which example programs are written:
///
/// \code
///   program fig1;
///   param N = 1024;
///   array X[N + 1, N + 1];
///   for i1 = 0 to N {
///     forall i2 = 0 to N {
///       Y[i1, N - i2] += X[i1, i2];
///     }
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ALP_FRONTEND_LEXER_H
#define ALP_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace alp {

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  Integer,
  Float,
  // Keywords.
  KwProgram,
  KwParam,
  KwArray,
  KwFor,
  KwForall,
  KwTo,
  KwBy,
  KwIf,
  KwElse,
  KwProb,
  KwCost,
  // Punctuation.
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Comma,
  Semicolon,
  Assign,     // =
  PlusAssign, // +=
  Plus,
  Minus,
  Star,
  Slash,
  At,
  Eof
};

/// One token with its source range and spelling.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Spelling;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
  int64_t integerValue() const;
  double floatValue() const;
};

/// Converts DSL text into a token stream. Lexical errors are reported to
/// the DiagnosticEngine and yield an Eof-terminated best-effort stream.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the whole input; the last token is always Eof.
  std::vector<Token> lexAll();

private:
  std::string Source;
  DiagnosticEngine &Diags;
  unsigned Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;

  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc here() const { return {Line, Column}; }
  void skipWhitespaceAndComments();
  Token lexToken();
};

} // namespace alp

#endif // ALP_FRONTEND_LEXER_H
