//===- frontend/Parser.h - DSL recursive-descent parser ---------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for the affine-loop DSL. Produces a ProgramAST;
/// all user errors go to the DiagnosticEngine (the parser never aborts on
/// malformed input). Affine positions are checked for affinity on the spot:
/// products of two loop indices, or division by non-constants, are
/// diagnosed.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_FRONTEND_PARSER_H
#define ALP_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"

#include <optional>
#include <set>

namespace alp {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole program. Returns nullopt if any error was diagnosed.
  std::optional<ast::ProgramAST> parseProgram();

private:
  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  unsigned Pos = 0;

  // Name environments for affine-expression resolution.
  std::set<std::string> ParamNames;
  std::set<std::string> ArrayNames;
  std::vector<std::string> LoopStack;

  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind K) const { return peek().is(K); }
  bool match(TokenKind K);
  bool expect(TokenKind K, const std::string &What);
  void error(const std::string &Message);
  void synchronizeToSemicolon();

  void parseParam(ast::ProgramAST &P);
  void parseArray(ast::ProgramAST &P);
  std::vector<ast::BlockItemAST> parseBlock();
  std::vector<ast::BlockItemAST> parseBlockItems(bool TopLevel);
  std::optional<ast::BlockItemAST> parseBlockItem();
  std::unique_ptr<ast::LoopAST> parseLoop();
  std::unique_ptr<ast::BranchAST> parseBranch();
  std::unique_ptr<ast::StmtAST> parseStmt();
  std::optional<ast::ArrayRefAST> parseArrayRef();
  /// Loop bound: affine expr, or max(...) for lower / min(...) for upper.
  std::optional<std::vector<ast::AffineForm>> parseBoundExpr(bool IsLower);

  /// expr := term (('+'|'-') term)*, affine over indices and params.
  std::optional<ast::AffineForm> parseAffineExpr();
  std::optional<ast::AffineForm> parseAffineTerm();
  std::optional<ast::AffineForm> parseAffineAtom();

  /// Parses the right-hand side of an assignment, collecting array refs and
  /// recording the raw text; stops before ';' or '@'.
  void parseRhs(ast::StmtAST &S);
};

/// Convenience: lex + parse + lower in one call. Returns nullopt and fills
/// \p Diags on any error.
std::optional<ast::ProgramAST> parseDsl(const std::string &Source,
                                        DiagnosticEngine &Diags);

} // namespace alp

#endif // ALP_FRONTEND_PARSER_H
