//===- linalg/SymAffine.h - Affine expressions in symbolic constants -*- C++ -*-===//
///
/// \file
/// Affine expressions over named symbolic constants (problem sizes such as
/// N). The paper's displacements are affine in these symbols: in Figure 1
/// the data displacement of Z is N + 1 and the computation displacement of
/// loop nest 2 is N + 1. SymAffine is that value type; SymVector is a
/// vector of them (a displacement vector delta or gamma).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_SYMAFFINE_H
#define ALP_LINALG_SYMAFFINE_H

#include "linalg/Matrix.h"

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace alp {

/// constant + sum(Coeff_s * symbol_s) with rational coefficients.
class SymAffine {
public:
  SymAffine() = default;
  SymAffine(Rational Constant) : Constant(Constant) {} // NOLINT: implicit.
  SymAffine(int64_t Constant) : Constant(Constant) {}  // NOLINT: implicit.

  /// The expression "Coeff * Symbol".
  static SymAffine symbol(const std::string &Symbol,
                          Rational Coeff = Rational(1));

  const Rational &constant() const { return Constant; }
  /// Coefficient of \p Symbol (zero if absent).
  Rational coeff(const std::string &Symbol) const;
  const std::map<std::string, Rational> &symbolCoeffs() const {
    return Coeffs;
  }

  bool isZero() const { return Constant.isZero() && Coeffs.empty(); }
  bool isConstant() const { return Coeffs.empty(); }

  SymAffine operator+(const SymAffine &RHS) const;
  SymAffine operator-(const SymAffine &RHS) const;
  SymAffine operator-() const;
  SymAffine scaled(const Rational &S) const;

  SymAffine &operator+=(const SymAffine &RHS) { return *this = *this + RHS; }
  SymAffine &operator-=(const SymAffine &RHS) { return *this = *this - RHS; }

  bool operator==(const SymAffine &RHS) const {
    return Constant == RHS.Constant && Coeffs == RHS.Coeffs;
  }
  bool operator!=(const SymAffine &RHS) const { return !(*this == RHS); }

  /// Numeric value with every symbol bound; symbols missing from
  /// \p Bindings are an error.
  Rational evaluate(const std::map<std::string, Rational> &Bindings) const;

  /// Renders as e.g. "N + 1", "2N - 3", "0".
  std::string str() const;

private:
  Rational Constant;
  std::map<std::string, Rational> Coeffs; // Nonzero coefficients only.

  void prune();
};

std::ostream &operator<<(std::ostream &OS, const SymAffine &A);

/// A vector of symbolic affine expressions — the displacement vectors
/// delta (data) and gamma (computation) of Definitions 2.1 and 2.2.
class SymVector {
public:
  SymVector() = default;
  explicit SymVector(unsigned Size) : Elems(Size) {}
  SymVector(std::initializer_list<SymAffine> Init) : Elems(Init) {}

  /// Lifts a numeric vector.
  static SymVector fromVector(const Vector &V);

  unsigned size() const { return Elems.size(); }
  SymAffine &operator[](unsigned I) { return Elems[I]; }
  const SymAffine &operator[](unsigned I) const { return Elems[I]; }

  bool isZero() const;

  SymVector operator+(const SymVector &RHS) const;
  SymVector operator-(const SymVector &RHS) const;
  SymVector operator-() const;

  bool operator==(const SymVector &RHS) const { return Elems == RHS.Elems; }
  bool operator!=(const SymVector &RHS) const { return !(*this == RHS); }

  std::string str() const;

private:
  std::vector<SymAffine> Elems;
};

std::ostream &operator<<(std::ostream &OS, const SymVector &V);

/// Matrix times symbolic vector: (M * V)_r = sum_c M[r][c] * V[c].
SymVector operator*(const Matrix &M, const SymVector &V);

} // namespace alp

#endif // ALP_LINALG_SYMAFFINE_H
