//===- linalg/FourierMotzkin.cpp - Linear inequality systems ---------------===//

#include "linalg/FourierMotzkin.h"

#include "support/Arena.h"
#include "support/CheckedInt.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <atomic>
#include <sstream>

using namespace alp;

namespace {

/// Injection site at the top of every Fourier-Motzkin elimination — the
/// solver step every dependence test and bound computation funnels into.
FailPoint FpFmEliminate("linalg.fm.eliminate");

std::atomic<bool> GFmIntegerFastPath{true};

/// Narrows a 128-bit intermediate exactly like Rational's arithmetic does,
/// so the integer elimination fast path overflows at the same points (and
/// with the same recoverable status) as the Rational path it mirrors.
int64_t narrowChecked(__int128 V) {
  if (V > INT64_MAX || V < INT64_MIN)
    throwOverflow("rational arithmetic");
  return static_cast<int64_t>(V);
}

/// True if every coefficient and constant in the system is an integer.
bool isIntegralSystem(const ConstraintSystem::Storage &Rows) {
  for (const LinearConstraint &C : Rows) {
    if (!C.Const.isInteger())
      return false;
    for (const Rational &E : C.Coeffs)
      if (!E.isInteger())
        return false;
  }
  return true;
}

/// FNV-1a over a row's exact value, for simplify's dedup (collisions are
/// resolved by exact comparison, so this only affects speed).
uint64_t hashRow(const LinearConstraint &C) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H = (H ^ V) * 1099511628211ull;
  };
  Mix(C.CKind == LinearConstraint::Kind::Equality ? 'E' : 'I');
  for (const Rational &E : C.Coeffs) {
    Mix(static_cast<uint64_t>(E.num()));
    Mix(static_cast<uint64_t>(E.den()));
  }
  Mix(static_cast<uint64_t>(C.Const.num()));
  Mix(static_cast<uint64_t>(C.Const.den()));
  return H;
}

bool rowsEqual(const LinearConstraint &A, const LinearConstraint &B) {
  return A.CKind == B.CKind && A.Const == B.Const && A.Coeffs == B.Coeffs;
}

} // namespace

bool alp::setFmIntegerFastPath(bool Enabled) {
  return GFmIntegerFastPath.exchange(Enabled);
}

Rational LinearConstraint::evaluate(const Vector &X) const {
  return Coeffs.dot(X) + Const;
}

bool LinearConstraint::isSatisfiedBy(const Vector &X) const {
  Rational V = evaluate(X);
  return CKind == Kind::Equality ? V.isZero() : V >= Rational(0);
}

std::string LinearConstraint::str() const {
  std::ostringstream OS;
  bool First = true;
  for (unsigned I = 0; I != Coeffs.size(); ++I) {
    if (Coeffs[I].isZero())
      continue;
    if (!First)
      OS << " + ";
    OS << Coeffs[I] << "*x" << I;
    First = false;
  }
  if (First)
    OS << '0';
  if (!Const.isZero())
    OS << " + " << Const;
  OS << (CKind == Kind::Equality ? " == 0" : " >= 0");
  return OS.str();
}

void ConstraintSystem::addInequality(const Vector &Coeffs,
                                     const Rational &Const) {
  assert(Coeffs.size() == NumVars && "constraint arity mismatch");
  Constraints.push_back(
      {Coeffs, Const, LinearConstraint::Kind::Inequality});
}

void ConstraintSystem::addEquality(const Vector &Coeffs,
                                   const Rational &Const) {
  assert(Coeffs.size() == NumVars && "constraint arity mismatch");
  Constraints.push_back({Coeffs, Const, LinearConstraint::Kind::Equality});
}

void ConstraintSystem::addLowerBound(unsigned Var, const Rational &Lo) {
  Vector C(NumVars);
  C[Var] = 1;
  addInequality(C, -Lo);
}

void ConstraintSystem::addUpperBound(unsigned Var, const Rational &Hi) {
  Vector C(NumVars);
  C[Var] = -1;
  addInequality(C, Hi);
}

void ConstraintSystem::simplify() {
  // Normalize each constraint in place to its canonical integer form (scale
  // by lcm(dens)/gcd(nums); equalities additionally get a positive leading
  // coefficient, inequalities keep their direction with a positive scale),
  // then deduplicate by exact value via a hash prefilter.
  Storage Out;
  SmallVec<uint64_t, 16> Hashes;
  for (LinearConstraint &C : Constraints) {
    // Drop trivially true rows (0 >= nonneg / 0 == 0); keep trivially false
    // rows so feasibility checks can see them (they never dedup).
    auto Lead = C.Coeffs.firstNonZero();
    if (!Lead) {
      bool Trivial = C.CKind == LinearConstraint::Kind::Equality
                         ? C.Const.isZero()
                         : C.Const >= Rational(0);
      if (Trivial)
        continue;
      Hashes.push_back(hashRow(C));
      Out.push_back(std::move(C));
      continue;
    }
    int64_t Lcm = 1;
    for (const Rational &E : C.Coeffs)
      if (!E.isInteger())
        Lcm = lcm64(Lcm, E.den());
    if (!C.Const.isInteger())
      Lcm = lcm64(Lcm, C.Const.den());
    int64_t Gcd = 0;
    if (Lcm == 1) {
      for (const Rational &E : C.Coeffs)
        Gcd = gcd64(Gcd, E.num());
      Gcd = gcd64(Gcd, C.Const.num());
    } else {
      Rational L(Lcm);
      for (const Rational &E : C.Coeffs)
        Gcd = gcd64(Gcd, (E * L).asInteger());
      Gcd = gcd64(Gcd, (C.Const * L).asInteger());
    }
    if (Lcm != 1 || Gcd != 1 ||
        (C.CKind == LinearConstraint::Kind::Equality &&
         C.Coeffs[*Lead].isNegative())) {
      Rational Scale = Rational(Lcm) / Rational(Gcd);
      if (C.CKind == LinearConstraint::Kind::Equality &&
          C.Coeffs[*Lead].isNegative())
        Scale = -Scale;
      C.Coeffs.scaleBy(Scale);
      C.Const *= Scale;
    }
    uint64_t H = hashRow(C);
    bool Dup = false;
    for (uint32_t I = 0; I != Out.size(); ++I)
      if (Hashes[I] == H && rowsEqual(Out[I], C)) {
        Dup = true;
        break;
      }
    if (!Dup) {
      Hashes.push_back(H);
      Out.push_back(std::move(C));
    }
  }
  Constraints = std::move(Out);
}

Status ConstraintSystem::eliminateImpl(unsigned Var, ResourceBudget *Budget) {
  assert(Var < NumVars && "variable out of range");
  if (Status S = FpFmEliminate.evaluate(Budget); !S)
    return S;
  if (Budget) {
    if (Status S = Budget->chargeEliminationSteps(Constraints.size()); !S)
      return S;
  }
  // If an equality mentions Var, substitute it into everything else.
  for (unsigned I = 0; I != Constraints.size(); ++I) {
    LinearConstraint &Eq = Constraints[I];
    if (Eq.CKind != LinearConstraint::Kind::Equality ||
        Eq.Coeffs[Var].isZero())
      continue;
    Rational A = Eq.Coeffs[Var];
    Storage Out;
    Out.reserve(Constraints.size() ? Constraints.size() - 1 : 0);
    for (unsigned J = 0; J != Constraints.size(); ++J) {
      if (J == I)
        continue;
      LinearConstraint C = std::move(Constraints[J]);
      Rational B = C.Coeffs[Var];
      if (!B.isZero()) {
        // C <- C - (B/A) * Eq zeroes the Var coefficient; legal for both
        // kinds since Eq is an equality.
        Rational NegF = -(B / A);
        C.Coeffs.addScaled(Eq.Coeffs, NegF);
        C.Const += Eq.Const * NegF;
      }
      Out.push_back(std::move(C));
    }
    Constraints = std::move(Out);
    simplify();
    return Status::ok();
  }

  // Classic Fourier-Motzkin: pair every lower bound with every upper bound.
  // When the whole system is integral (the overwhelmingly common case),
  // combine rows over overflow-checked int64 instead of Rational; the
  // checked narrowing mirrors the Rational path exactly, so overflow
  // degrades identically and the results are bit-for-bit the same.
  const bool AllInt = GFmIntegerFastPath.load(std::memory_order_relaxed) &&
                      isIntegralSystem(Constraints);
  SmallVec<uint32_t, 32> LowerIdx, UpperIdx;
  Storage Others;
  for (uint32_t I = 0; I != Constraints.size(); ++I) {
    const Rational &A = Constraints[I].Coeffs[Var];
    if (A.isZero())
      Others.push_back(std::move(Constraints[I]));
    else if (A > Rational(0))
      LowerIdx.push_back(I); // a*x + rest >= 0 with a>0: lower bound on x.
    else
      UpperIdx.push_back(I);
  }
  if (Budget) {
    uint64_t Pairs =
        static_cast<uint64_t>(LowerIdx.size()) * UpperIdx.size();
    if (Status S = Budget->chargeEliminationSteps(Pairs); !S)
      return S;
    if (Status S = Budget->checkConstraintCount(Others.size() + Pairs); !S)
      return S;
  }
  for (uint32_t LI : LowerIdx)
    for (uint32_t UI : UpperIdx) {
      const LinearConstraint &L = Constraints[LI];
      const LinearConstraint &U = Constraints[UI];
      // Combine with positive multipliers to cancel Var.
      Rational AL = L.Coeffs[Var];    // > 0
      Rational AU = (-U.Coeffs[Var]); // > 0
      LinearConstraint C;
      C.CKind = LinearConstraint::Kind::Inequality;
      if (AllInt) {
        const int64_t Al = AL.num(), Au = AU.num();
        C.Coeffs = Vector(NumVars);
        for (unsigned I = 0; I != NumVars; ++I) {
          int64_t P1 =
              narrowChecked(static_cast<__int128>(L.Coeffs[I].num()) * Au);
          int64_t P2 =
              narrowChecked(static_cast<__int128>(U.Coeffs[I].num()) * Al);
          C.Coeffs[I] =
              Rational(narrowChecked(static_cast<__int128>(P1) + P2));
        }
        int64_t Q1 = narrowChecked(static_cast<__int128>(L.Const.num()) * Au);
        int64_t Q2 = narrowChecked(static_cast<__int128>(U.Const.num()) * Al);
        C.Const = Rational(narrowChecked(static_cast<__int128>(Q1) + Q2));
      } else {
        C.Coeffs = L.Coeffs;
        C.Coeffs.scaleBy(AU);
        C.Coeffs.addScaled(U.Coeffs, AL);
        C.Const = L.Const * AU + U.Const * AL;
      }
      Others.push_back(std::move(C));
    }
  Constraints = std::move(Others);
  simplify();
  return Status::ok();
}

void ConstraintSystem::eliminate(unsigned Var) {
  Status S = eliminateImpl(Var, nullptr);
  // Unbudgeted elimination cannot run out of budget; the only non-ok
  // Status here is an injected fault, which propagates like the
  // arithmetic overflows this signature already throws.
  if (!S.isOk())
    throw AlpException(S);
}

Status ConstraintSystem::eliminate(unsigned Var, ResourceBudget *Budget) {
  try {
    return eliminateImpl(Var, Budget);
  } catch (const AlpException &E) {
    return E.status();
  }
}

bool ConstraintSystem::isRationallyFeasible() const {
  // The eliminated copy is scratch and the answer a bool: arena territory.
  ArenaScope Scope;
  ConstraintSystem Copy = *this;
  for (unsigned V = 0; V != NumVars; ++V)
    Copy.eliminate(V);
  // Only variable-free constraints remain; all must hold.
  for (const LinearConstraint &C : Copy.Constraints) {
    bool Holds = C.CKind == LinearConstraint::Kind::Equality
                     ? C.Const.isZero()
                     : C.Const >= Rational(0);
    if (!Holds)
      return false;
  }
  return true;
}

Expected<bool>
ConstraintSystem::isRationallyFeasible(ResourceBudget *Budget) const {
  try {
    ArenaScope Scope;
    ConstraintSystem Copy = *this;
    for (unsigned V = 0; V != NumVars; ++V)
      if (Status S = Copy.eliminateImpl(V, Budget); !S)
        return S;
    for (const LinearConstraint &C : Copy.Constraints) {
      bool Holds = C.CKind == LinearConstraint::Kind::Equality
                       ? C.Const.isZero()
                       : C.Const >= Rational(0);
      if (!Holds)
        return false;
    }
    return true;
  } catch (const AlpException &E) {
    return E.status();
  }
}

Status
ConstraintSystem::boundsOfImpl(unsigned Var, ResourceBudget *Budget,
                               std::optional<VariableBounds> &Result) const {
  // Projection scratch lives on the arena; only plain bounds escape.
  ArenaScope Scope;
  ConstraintSystem Copy = *this;
  for (unsigned V = 0; V != NumVars; ++V)
    if (V != Var)
      if (Status S = Copy.eliminateImpl(V, Budget); !S)
        return S;
  Result = Copy.readBoundsOf(Var);
  return Status::ok();
}

std::optional<VariableBounds>
ConstraintSystem::boundsOf(unsigned Var) const {
  std::optional<VariableBounds> Result;
  Status S = boundsOfImpl(Var, nullptr, Result);
  (void)S;
  assert(S.isOk() && "unbudgeted projection cannot run out of budget");
  return Result;
}

Expected<std::optional<VariableBounds>>
ConstraintSystem::boundsOf(unsigned Var, ResourceBudget *Budget) const {
  try {
    std::optional<VariableBounds> Result;
    if (Status S = boundsOfImpl(Var, Budget, Result); !S)
      return S;
    return Result;
  } catch (const AlpException &E) {
    return E.status();
  }
}

std::optional<VariableBounds>
ConstraintSystem::readBoundsOf(unsigned Var) const {
  VariableBounds B;
  for (const LinearConstraint &C : Constraints) {
    const Rational &A = C.Coeffs[Var];
    if (A.isZero()) {
      bool Holds = C.CKind == LinearConstraint::Kind::Equality
                       ? C.Const.isZero()
                       : C.Const >= Rational(0);
      if (!Holds)
        return std::nullopt;
      continue;
    }
    if (C.CKind == LinearConstraint::Kind::Equality) {
      Rational V0 = -C.Const / A;
      if ((B.Lower && *B.Lower > V0) || (B.Upper && *B.Upper < V0))
        return std::nullopt;
      B.Lower = B.Upper = V0;
      continue;
    }
    // a*x + c >= 0: x >= -c/a when a > 0, x <= -c/a when a < 0.
    Rational Bound = -C.Const / A;
    if (A > Rational(0)) {
      if (!B.Lower || *B.Lower < Bound)
        B.Lower = Bound;
    } else {
      if (!B.Upper || *B.Upper > Bound)
        B.Upper = Bound;
    }
  }
  if (B.Lower && B.Upper && *B.Lower > *B.Upper)
    return std::nullopt;
  return B;
}

bool ConstraintSystem::contains(const Vector &X) const {
  for (const LinearConstraint &C : Constraints)
    if (!C.isSatisfiedBy(X))
      return false;
  return true;
}

std::string ConstraintSystem::str() const {
  std::ostringstream OS;
  for (const LinearConstraint &C : Constraints)
    OS << C.str() << '\n';
  return OS.str();
}
