//===- linalg/FourierMotzkin.cpp - Linear inequality systems ---------------===//

#include "linalg/FourierMotzkin.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace alp;

namespace {

/// Injection site at the top of every Fourier-Motzkin elimination — the
/// solver step every dependence test and bound computation funnels into.
FailPoint FpFmEliminate("linalg.fm.eliminate");

} // namespace

Rational LinearConstraint::evaluate(const Vector &X) const {
  return Coeffs.dot(X) + Const;
}

bool LinearConstraint::isSatisfiedBy(const Vector &X) const {
  Rational V = evaluate(X);
  return CKind == Kind::Equality ? V.isZero() : V >= Rational(0);
}

std::string LinearConstraint::str() const {
  std::ostringstream OS;
  bool First = true;
  for (unsigned I = 0; I != Coeffs.size(); ++I) {
    if (Coeffs[I].isZero())
      continue;
    if (!First)
      OS << " + ";
    OS << Coeffs[I] << "*x" << I;
    First = false;
  }
  if (First)
    OS << '0';
  if (!Const.isZero())
    OS << " + " << Const;
  OS << (CKind == Kind::Equality ? " == 0" : " >= 0");
  return OS.str();
}

void ConstraintSystem::addInequality(const Vector &Coeffs,
                                     const Rational &Const) {
  assert(Coeffs.size() == NumVars && "constraint arity mismatch");
  Constraints.push_back(
      {Coeffs, Const, LinearConstraint::Kind::Inequality});
}

void ConstraintSystem::addEquality(const Vector &Coeffs,
                                   const Rational &Const) {
  assert(Coeffs.size() == NumVars && "constraint arity mismatch");
  Constraints.push_back({Coeffs, Const, LinearConstraint::Kind::Equality});
}

void ConstraintSystem::addLowerBound(unsigned Var, const Rational &Lo) {
  Vector C(NumVars);
  C[Var] = 1;
  addInequality(C, -Lo);
}

void ConstraintSystem::addUpperBound(unsigned Var, const Rational &Hi) {
  Vector C(NumVars);
  C[Var] = -1;
  addInequality(C, Hi);
}

void ConstraintSystem::simplify() {
  // Normalize each constraint so its first nonzero coefficient has absolute
  // value scaled canonically, then deduplicate.
  std::vector<LinearConstraint> Out;
  std::set<std::string> Seen;
  for (LinearConstraint &C : Constraints) {
    // Drop trivially true rows (0 >= nonneg / 0 == 0); keep trivially false
    // rows so feasibility checks can see them.
    if (C.Coeffs.isZero()) {
      bool Trivial = C.CKind == LinearConstraint::Kind::Equality
                         ? C.Const.isZero()
                         : C.Const >= Rational(0);
      if (Trivial)
        continue;
      Out.push_back(C);
      continue;
    }
    // Scale to a canonical integer form (preserving inequality direction).
    Vector Full(NumVars + 1);
    for (unsigned I = 0; I != NumVars; ++I)
      Full[I] = C.Coeffs[I];
    Full[NumVars] = C.Const;
    Vector Dir = Full.normalizedDirection();
    // normalizedDirection may flip the sign; that is only legal for
    // equalities. For inequalities recompute a positive scale.
    if (C.CKind == LinearConstraint::Kind::Inequality) {
      auto Lead = Full.firstNonZero();
      if (Lead && Full[*Lead].isNegative())
        Dir = -Dir;
    }
    LinearConstraint N;
    N.CKind = C.CKind;
    N.Coeffs = Vector(NumVars);
    for (unsigned I = 0; I != NumVars; ++I)
      N.Coeffs[I] = Dir[I];
    N.Const = Dir[NumVars];
    std::string Key = N.str();
    if (Seen.insert(Key).second)
      Out.push_back(N);
  }
  Constraints = std::move(Out);
}

Status ConstraintSystem::eliminateImpl(unsigned Var, ResourceBudget *Budget) {
  assert(Var < NumVars && "variable out of range");
  if (Status S = FpFmEliminate.evaluate(Budget); !S)
    return S;
  if (Budget) {
    if (Status S = Budget->chargeEliminationSteps(Constraints.size()); !S)
      return S;
  }
  // If an equality mentions Var, substitute it into everything else.
  for (unsigned I = 0; I != Constraints.size(); ++I) {
    LinearConstraint &Eq = Constraints[I];
    if (Eq.CKind != LinearConstraint::Kind::Equality ||
        Eq.Coeffs[Var].isZero())
      continue;
    Rational A = Eq.Coeffs[Var];
    std::vector<LinearConstraint> Out;
    for (unsigned J = 0; J != Constraints.size(); ++J) {
      if (J == I)
        continue;
      LinearConstraint C = Constraints[J];
      Rational B = C.Coeffs[Var];
      if (!B.isZero()) {
        // C <- C - (B/A) * Eq zeroes the Var coefficient; legal for both
        // kinds since Eq is an equality.
        Rational F = B / A;
        C.Coeffs = C.Coeffs - Eq.Coeffs.scaled(F);
        C.Const -= Eq.Const * F;
      }
      Out.push_back(C);
    }
    Constraints = std::move(Out);
    simplify();
    return Status::ok();
  }

  // Classic Fourier-Motzkin: pair every lower bound with every upper bound.
  std::vector<LinearConstraint> Lowers, Uppers, Others;
  for (const LinearConstraint &C : Constraints) {
    const Rational &A = C.Coeffs[Var];
    if (A.isZero())
      Others.push_back(C);
    else if (A > Rational(0))
      Lowers.push_back(C); // a*x + rest >= 0 with a>0: lower bound on x.
    else
      Uppers.push_back(C);
  }
  if (Budget) {
    uint64_t Pairs =
        static_cast<uint64_t>(Lowers.size()) * Uppers.size();
    if (Status S = Budget->chargeEliminationSteps(Pairs); !S)
      return S;
    if (Status S = Budget->checkConstraintCount(Others.size() + Pairs); !S)
      return S;
  }
  for (const LinearConstraint &L : Lowers)
    for (const LinearConstraint &U : Uppers) {
      // Combine with positive multipliers to cancel Var.
      Rational AL = L.Coeffs[Var];         // > 0
      Rational AU = (-U.Coeffs[Var]);      // > 0
      LinearConstraint C;
      C.CKind = LinearConstraint::Kind::Inequality;
      C.Coeffs = L.Coeffs.scaled(AU) + U.Coeffs.scaled(AL);
      C.Const = L.Const * AU + U.Const * AL;
      Others.push_back(C);
    }
  Constraints = std::move(Others);
  simplify();
  return Status::ok();
}

void ConstraintSystem::eliminate(unsigned Var) {
  Status S = eliminateImpl(Var, nullptr);
  // Unbudgeted elimination cannot run out of budget; the only non-ok
  // Status here is an injected fault, which propagates like the
  // arithmetic overflows this signature already throws.
  if (!S.isOk())
    throw AlpException(S);
}

Status ConstraintSystem::eliminate(unsigned Var, ResourceBudget *Budget) {
  try {
    return eliminateImpl(Var, Budget);
  } catch (const AlpException &E) {
    return E.status();
  }
}

bool ConstraintSystem::isRationallyFeasible() const {
  ConstraintSystem Copy = *this;
  for (unsigned V = 0; V != NumVars; ++V)
    Copy.eliminate(V);
  // Only variable-free constraints remain; all must hold.
  for (const LinearConstraint &C : Copy.Constraints) {
    bool Holds = C.CKind == LinearConstraint::Kind::Equality
                     ? C.Const.isZero()
                     : C.Const >= Rational(0);
    if (!Holds)
      return false;
  }
  return true;
}

Expected<bool>
ConstraintSystem::isRationallyFeasible(ResourceBudget *Budget) const {
  try {
    ConstraintSystem Copy = *this;
    for (unsigned V = 0; V != NumVars; ++V)
      if (Status S = Copy.eliminateImpl(V, Budget); !S)
        return S;
    for (const LinearConstraint &C : Copy.Constraints) {
      bool Holds = C.CKind == LinearConstraint::Kind::Equality
                       ? C.Const.isZero()
                       : C.Const >= Rational(0);
      if (!Holds)
        return false;
    }
    return true;
  } catch (const AlpException &E) {
    return E.status();
  }
}

Status
ConstraintSystem::boundsOfImpl(unsigned Var, ResourceBudget *Budget,
                               std::optional<VariableBounds> &Result) const {
  ConstraintSystem Copy = *this;
  for (unsigned V = 0; V != NumVars; ++V)
    if (V != Var)
      if (Status S = Copy.eliminateImpl(V, Budget); !S)
        return S;
  Result = Copy.readBoundsOf(Var);
  return Status::ok();
}

std::optional<VariableBounds>
ConstraintSystem::boundsOf(unsigned Var) const {
  std::optional<VariableBounds> Result;
  Status S = boundsOfImpl(Var, nullptr, Result);
  (void)S;
  assert(S.isOk() && "unbudgeted projection cannot run out of budget");
  return Result;
}

Expected<std::optional<VariableBounds>>
ConstraintSystem::boundsOf(unsigned Var, ResourceBudget *Budget) const {
  try {
    std::optional<VariableBounds> Result;
    if (Status S = boundsOfImpl(Var, Budget, Result); !S)
      return S;
    return Result;
  } catch (const AlpException &E) {
    return E.status();
  }
}

std::optional<VariableBounds>
ConstraintSystem::readBoundsOf(unsigned Var) const {
  VariableBounds B;
  for (const LinearConstraint &C : Constraints) {
    const Rational &A = C.Coeffs[Var];
    if (A.isZero()) {
      bool Holds = C.CKind == LinearConstraint::Kind::Equality
                       ? C.Const.isZero()
                       : C.Const >= Rational(0);
      if (!Holds)
        return std::nullopt;
      continue;
    }
    if (C.CKind == LinearConstraint::Kind::Equality) {
      Rational V0 = -C.Const / A;
      if ((B.Lower && *B.Lower > V0) || (B.Upper && *B.Upper < V0))
        return std::nullopt;
      B.Lower = B.Upper = V0;
      continue;
    }
    // a*x + c >= 0: x >= -c/a when a > 0, x <= -c/a when a < 0.
    Rational Bound = -C.Const / A;
    if (A > Rational(0)) {
      if (!B.Lower || *B.Lower < Bound)
        B.Lower = Bound;
    } else {
      if (!B.Upper || *B.Upper > Bound)
        B.Upper = Bound;
    }
  }
  if (B.Lower && B.Upper && *B.Lower > *B.Upper)
    return std::nullopt;
  return B;
}

bool ConstraintSystem::contains(const Vector &X) const {
  for (const LinearConstraint &C : Constraints)
    if (!C.isSatisfiedBy(X))
      return false;
  return true;
}

std::string ConstraintSystem::str() const {
  std::ostringstream OS;
  for (const LinearConstraint &C : Constraints)
    OS << C.str() << '\n';
  return OS.str();
}
