//===- linalg/FourierMotzkin.h - Linear inequality systems ------*- C++ -*-===//
///
/// \file
/// A system of linear constraints over Q^n (inequalities a.x + c >= 0 and
/// equalities a.x + c == 0) with Fourier-Motzkin variable elimination.
/// Dependence analysis builds the dependence polyhedron here and asks for
/// rational feasibility and per-variable bounds; loop transforms use bounds
/// projection when reasoning about tiled iteration spaces.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_FOURIERMOTZKIN_H
#define ALP_LINALG_FOURIERMOTZKIN_H

#include "linalg/Matrix.h"
#include "support/Budget.h"

#include <optional>
#include <string>
#include <vector>

namespace alp {

/// One linear constraint: Coeffs . x + Const (>= 0 | == 0).
struct LinearConstraint {
  enum class Kind { Inequality, Equality };

  Vector Coeffs;
  Rational Const;
  Kind CKind = Kind::Inequality;

  /// Evaluates Coeffs . x + Const.
  Rational evaluate(const Vector &X) const;
  bool isSatisfiedBy(const Vector &X) const;

  std::string str() const;
};

/// Inclusive rational bounds on one variable; either side may be absent.
struct VariableBounds {
  std::optional<Rational> Lower;
  std::optional<Rational> Upper;
};

/// Toggles the all-integer (Den == 1) elimination fast path; returns the
/// previous setting. On by default; property tests flip it to compare the
/// checked-int64 and Rational paths bit for bit. Thread-safe.
bool setFmIntegerFastPath(bool Enabled);

/// A conjunction of linear constraints over Q^NumVars. Constraint storage
/// is small-size-optimized like Vector/Matrix: up to 16 rows inline,
/// spilling to the active Arena (or the heap) beyond that.
class ConstraintSystem {
public:
  using Storage = SmallVec<LinearConstraint, 16, &detail::matrixAllocHook>;

  explicit ConstraintSystem(unsigned NumVars) : NumVars(NumVars) {}

  unsigned numVars() const { return NumVars; }
  unsigned size() const { return Constraints.size(); }
  const Storage &constraints() const { return Constraints; }

  /// Adds Coeffs . x + Const >= 0.
  void addInequality(const Vector &Coeffs, const Rational &Const);
  /// Adds Coeffs . x + Const == 0.
  void addEquality(const Vector &Coeffs, const Rational &Const);
  /// Adds Lo <= x_Var, i.e. x_Var - Lo >= 0.
  void addLowerBound(unsigned Var, const Rational &Lo);
  /// Adds x_Var <= Hi.
  void addUpperBound(unsigned Var, const Rational &Hi);

  /// Eliminates variable \p Var by Fourier-Motzkin, producing an equivalent
  /// projection onto the remaining variables (the variable keeps its index;
  /// its coefficient becomes zero in every constraint). Unbudgeted: throws
  /// AlpException on rational overflow.
  void eliminate(unsigned Var);

  /// Budgeted elimination: charges lower x upper pair combinations against
  /// \p Budget and fails with BudgetExceeded when a limit trips (the system
  /// is left in an unspecified but valid intermediate state) or
  /// RationalOverflow when 64-bit arithmetic blows up. Never throws.
  Status eliminate(unsigned Var, ResourceBudget *Budget);

  /// True if the system has a rational solution. Runs FM elimination on a
  /// copy; exact, exponential in the worst case but tiny here.
  bool isRationallyFeasible() const;

  /// Budgeted feasibility; a Status instead of an exception or a hang on
  /// adversarial systems. Never throws.
  Expected<bool> isRationallyFeasible(ResourceBudget *Budget) const;

  /// Tightest derivable bounds on \p Var: eliminates every other variable
  /// and reads the surviving single-variable constraints. Returns nullopt
  /// if the system is infeasible.
  std::optional<VariableBounds> boundsOf(unsigned Var) const;

  /// Budgeted bounds projection. Never throws.
  Expected<std::optional<VariableBounds>>
  boundsOf(unsigned Var, ResourceBudget *Budget) const;

  /// True if \p X satisfies every constraint.
  bool contains(const Vector &X) const;

  std::string str() const;

private:
  unsigned NumVars;
  Storage Constraints;

  /// Shared elimination body: may throw AlpException on overflow; returns
  /// BudgetExceeded when \p Budget (nullable) trips.
  Status eliminateImpl(unsigned Var, ResourceBudget *Budget);

  /// Shared bounds body (budget may be null; throws on overflow).
  Status boundsOfImpl(unsigned Var, ResourceBudget *Budget,
                      std::optional<VariableBounds> &Out) const;

  /// Reads bounds on \p Var off an already-projected system (only
  /// constraints whose sole surviving variable is Var contribute).
  std::optional<VariableBounds> readBoundsOf(unsigned Var) const;

  /// Substitutes equalities with a nonzero coefficient on Var and removes
  /// duplicates / trivially true rows; detects trivially false rows.
  void simplify();
};

} // namespace alp

#endif // ALP_LINALG_FOURIERMOTZKIN_H
