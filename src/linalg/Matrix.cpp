//===- linalg/Matrix.cpp - Dense rational vectors and matrices ------------===//

#include "linalg/Matrix.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace alp;

namespace {

/// Injection site for linalg container growth beyond inline storage
/// (called from SmallVec::grow via detail::matrixAllocHook), i.e. on the
/// arena/heap spill path only.
FailPoint FpMatrixAlloc("linalg.matrix.alloc");

} // namespace

void alp::detail::matrixAllocHook() { FpMatrixAlloc.evaluateOrThrow(); }

//===----------------------------------------------------------------------===//
// Vector
//===----------------------------------------------------------------------===//

Vector Vector::unit(unsigned Size, unsigned K) {
  assert(K < Size && "unit vector index out of range");
  Vector V(Size);
  V[K] = 1;
  return V;
}

bool Vector::isZero() const {
  for (const Rational &E : Elems)
    if (!E.isZero())
      return false;
  return true;
}

Vector Vector::operator+(const Vector &RHS) const {
  assert(size() == RHS.size() && "vector size mismatch");
  Vector R(size());
  for (unsigned I = 0, E = size(); I != E; ++I)
    R[I] = Elems[I] + RHS[I];
  return R;
}

Vector Vector::operator-(const Vector &RHS) const {
  assert(size() == RHS.size() && "vector size mismatch");
  Vector R(size());
  for (unsigned I = 0, E = size(); I != E; ++I)
    R[I] = Elems[I] - RHS[I];
  return R;
}

Vector Vector::operator-() const {
  Vector R(size());
  for (unsigned I = 0, E = size(); I != E; ++I)
    R[I] = -Elems[I];
  return R;
}

Vector Vector::scaled(const Rational &S) const {
  Vector R(size());
  for (unsigned I = 0, E = size(); I != E; ++I)
    R[I] = Elems[I] * S;
  return R;
}

void Vector::addScaled(const Vector &V, const Rational &S) {
  assert(size() == V.size() && "vector size mismatch");
  for (unsigned I = 0, E = size(); I != E; ++I)
    Elems[I] += V[I] * S;
}

void Vector::scaleBy(const Rational &S) {
  for (unsigned I = 0, E = size(); I != E; ++I)
    Elems[I] *= S;
}

Rational Vector::dot(const Vector &RHS) const {
  assert(size() == RHS.size() && "vector size mismatch");
  Rational Sum;
  for (unsigned I = 0, E = size(); I != E; ++I)
    Sum += Elems[I] * RHS[I];
  return Sum;
}

std::optional<unsigned> Vector::firstNonZero() const {
  for (unsigned I = 0, E = size(); I != E; ++I)
    if (!Elems[I].isZero())
      return I;
  return std::nullopt;
}

Vector Vector::normalizedDirection() const {
  auto Lead = firstNonZero();
  if (!Lead)
    return *this;
  int64_t Lcm = 1;
  for (const Rational &E : Elems)
    Lcm = lcm64(Lcm, E.den());
  int64_t Gcd = 0;
  for (const Rational &E : Elems)
    Gcd = gcd64(Gcd, (E * Rational(Lcm)).asInteger());
  Rational Scale = Rational(Lcm) / Rational(Gcd);
  if (Elems[*Lead].isNegative())
    Scale = -Scale;
  return scaled(Scale);
}

std::string Vector::str() const {
  std::ostringstream OS;
  OS << '(';
  for (unsigned I = 0, E = size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << Elems[I];
  }
  OS << ')';
  return OS.str();
}

std::ostream &alp::operator<<(std::ostream &OS, const Vector &V) {
  return OS << V.str();
}

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

Matrix::Matrix(std::initializer_list<std::initializer_list<Rational>> Init) {
  NumRows = Init.size();
  NumCols = NumRows ? Init.begin()->size() : 0;
  Elems.reserve(NumRows * NumCols);
  for (const auto &Row : Init) {
    assert(Row.size() == NumCols && "ragged matrix initializer");
    for (const Rational &E : Row)
      Elems.push_back(E);
  }
}

Matrix Matrix::identity(unsigned N) {
  Matrix M(N, N);
  for (unsigned I = 0; I != N; ++I)
    M.at(I, I) = 1;
  return M;
}

Matrix Matrix::fromRows(const std::vector<Vector> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows.front().size());
  for (unsigned R = 0; R != Rows.size(); ++R)
    M.setRow(R, Rows[R]);
  return M;
}

Vector Matrix::row(unsigned R) const {
  Vector V(NumCols);
  for (unsigned C = 0; C != NumCols; ++C)
    V[C] = at(R, C);
  return V;
}

Vector Matrix::col(unsigned C) const {
  Vector V(NumRows);
  for (unsigned R = 0; R != NumRows; ++R)
    V[R] = at(R, C);
  return V;
}

void Matrix::setRow(unsigned R, const Vector &V) {
  assert(V.size() == NumCols && "row size mismatch");
  for (unsigned C = 0; C != NumCols; ++C)
    at(R, C) = V[C];
}

bool Matrix::isZero() const {
  for (const Rational &E : Elems)
    if (!E.isZero())
      return false;
  return true;
}

bool Matrix::isIdentity() const {
  if (!isSquare())
    return false;
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned C = 0; C != NumCols; ++C)
      if (at(R, C) != (R == C ? Rational(1) : Rational(0)))
        return false;
  return true;
}

Matrix Matrix::operator+(const Matrix &RHS) const {
  assert(NumRows == RHS.NumRows && NumCols == RHS.NumCols &&
         "matrix shape mismatch");
  Matrix M(NumRows, NumCols);
  for (unsigned I = 0, E = Elems.size(); I != E; ++I)
    M.Elems[I] = Elems[I] + RHS.Elems[I];
  return M;
}

Matrix Matrix::operator-(const Matrix &RHS) const {
  assert(NumRows == RHS.NumRows && NumCols == RHS.NumCols &&
         "matrix shape mismatch");
  Matrix M(NumRows, NumCols);
  for (unsigned I = 0, E = Elems.size(); I != E; ++I)
    M.Elems[I] = Elems[I] - RHS.Elems[I];
  return M;
}

Matrix Matrix::operator*(const Matrix &RHS) const {
  assert(NumCols == RHS.NumRows && "matrix product shape mismatch");
  Matrix M(NumRows, RHS.NumCols);
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned K = 0; K != NumCols; ++K) {
      const Rational &A = at(R, K);
      if (A.isZero())
        continue;
      for (unsigned C = 0; C != RHS.NumCols; ++C)
        M.at(R, C) += A * RHS.at(K, C);
    }
  return M;
}

Vector Matrix::operator*(const Vector &V) const {
  assert(NumCols == V.size() && "matrix-vector shape mismatch");
  Vector R(NumRows);
  for (unsigned Row = 0; Row != NumRows; ++Row) {
    Rational Sum;
    for (unsigned C = 0; C != NumCols; ++C)
      Sum += at(Row, C) * V[C];
    R[Row] = Sum;
  }
  return R;
}

Matrix Matrix::scaled(const Rational &S) const {
  Matrix M(NumRows, NumCols);
  for (unsigned I = 0, E = Elems.size(); I != E; ++I)
    M.Elems[I] = Elems[I] * S;
  return M;
}

Matrix Matrix::transposed() const {
  Matrix M(NumCols, NumRows);
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned C = 0; C != NumCols; ++C)
      M.at(C, R) = at(R, C);
  return M;
}

void Matrix::appendRows(const Matrix &RHS) {
  if (RHS.NumRows == 0)
    return;
  if (NumRows == 0) {
    *this = RHS;
    return;
  }
  assert(NumCols == RHS.NumCols && "vstack column mismatch");
  Elems.reserve(Elems.size() + RHS.Elems.size());
  for (const Rational &E : RHS.Elems)
    Elems.push_back(E);
  NumRows += RHS.NumRows;
}

Matrix Matrix::vstack(const Matrix &RHS) const & {
  Matrix M = *this;
  M.appendRows(RHS);
  return M;
}

Matrix Matrix::vstack(const Matrix &RHS) && {
  appendRows(RHS);
  return std::move(*this);
}

void Matrix::rowAddScaled(unsigned Dst, unsigned Src, const Rational &S) {
  assert(Dst < NumRows && Src < NumRows && "row index out of range");
  for (unsigned K = 0; K != NumCols; ++K)
    at(Dst, K) += S * at(Src, K);
}

void Matrix::scaleRow(unsigned R, const Rational &S) {
  assert(R < NumRows && "row index out of range");
  for (unsigned K = 0; K != NumCols; ++K)
    at(R, K) *= S;
}

Matrix Matrix::hstack(const Matrix &RHS) const {
  if (NumCols == 0)
    return RHS;
  if (RHS.NumCols == 0)
    return *this;
  assert(NumRows == RHS.NumRows && "hstack row mismatch");
  Matrix M(NumRows, NumCols + RHS.NumCols);
  for (unsigned R = 0; R != NumRows; ++R) {
    for (unsigned C = 0; C != NumCols; ++C)
      M.at(R, C) = at(R, C);
    for (unsigned C = 0; C != RHS.NumCols; ++C)
      M.at(R, NumCols + C) = RHS.at(R, C);
  }
  return M;
}

Matrix Matrix::rref(std::vector<unsigned> *PivotCols) const {
  Matrix M = *this;
  if (PivotCols)
    PivotCols->clear();
  unsigned PivotRow = 0;
  for (unsigned C = 0; C != NumCols && PivotRow != NumRows; ++C) {
    // Find a pivot in column C at or below PivotRow.
    unsigned Found = NumRows;
    for (unsigned R = PivotRow; R != NumRows; ++R)
      if (!M.at(R, C).isZero()) {
        Found = R;
        break;
      }
    if (Found == NumRows)
      continue;
    // Swap into place and scale the pivot to 1.
    if (Found != PivotRow)
      for (unsigned K = 0; K != NumCols; ++K)
        std::swap(M.at(Found, K), M.at(PivotRow, K));
    M.scaleRow(PivotRow, M.at(PivotRow, C).reciprocal());
    // Eliminate the column everywhere else.
    for (unsigned R = 0; R != NumRows; ++R) {
      if (R == PivotRow)
        continue;
      Rational Factor = M.at(R, C);
      if (Factor.isZero())
        continue;
      M.rowAddScaled(R, PivotRow, -Factor);
    }
    if (PivotCols)
      PivotCols->push_back(C);
    ++PivotRow;
  }
  return M;
}

unsigned Matrix::rank() const {
  // The reduced copy is pure scratch: found it on the arena.
  ArenaScope Scope;
  std::vector<unsigned> Pivots;
  rref(&Pivots);
  return Pivots.size();
}

Rational Matrix::determinant() const {
  assert(isSquare() && "determinant of non-square matrix");
  ArenaScope Scope; // Scratch copy only; the result is a scalar.
  Matrix M = *this;
  Rational Det(1);
  for (unsigned C = 0; C != NumCols; ++C) {
    unsigned Found = NumRows;
    for (unsigned R = C; R != NumRows; ++R)
      if (!M.at(R, C).isZero()) {
        Found = R;
        break;
      }
    if (Found == NumRows)
      return Rational(0);
    if (Found != C) {
      for (unsigned K = 0; K != NumCols; ++K)
        std::swap(M.at(Found, K), M.at(C, K));
      Det = -Det;
    }
    Det *= M.at(C, C);
    Rational Inv = M.at(C, C).reciprocal();
    for (unsigned R = C + 1; R != NumRows; ++R) {
      Rational Factor = M.at(R, C) * Inv;
      if (Factor.isZero())
        continue;
      for (unsigned K = C; K != NumCols; ++K)
        M.at(R, K) -= Factor * M.at(C, K);
    }
  }
  return Det;
}

std::optional<Matrix> Matrix::inverse() const {
  if (!isSquare())
    return std::nullopt;
  std::vector<unsigned> Pivots;
  Matrix Aug = hstack(identity(NumRows)).rref(&Pivots);
  if (Pivots.size() != NumRows || (NumRows && Pivots.back() >= NumCols))
    return std::nullopt;
  Matrix Inv(NumRows, NumCols);
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned C = 0; C != NumCols; ++C)
      Inv.at(R, C) = Aug.at(R, NumCols + C);
  return Inv;
}

std::vector<Vector> Matrix::nullspaceBasis() const {
  std::vector<unsigned> Pivots;
  Matrix R = rref(&Pivots);
  std::vector<bool> IsPivot(NumCols, false);
  for (unsigned P : Pivots)
    IsPivot[P] = true;
  std::vector<Vector> Basis;
  Basis.reserve(NumCols - Pivots.size());
  for (unsigned Free = 0; Free != NumCols; ++Free) {
    if (IsPivot[Free])
      continue;
    Vector V(NumCols);
    V[Free] = 1;
    for (unsigned I = 0; I != Pivots.size(); ++I)
      V[Pivots[I]] = -R.at(I, Free);
    Basis.push_back(V.normalizedDirection());
  }
  return Basis;
}

std::vector<Vector> Matrix::rowSpaceBasis() const {
  std::vector<unsigned> Pivots;
  Matrix R = rref(&Pivots);
  std::vector<Vector> Basis;
  Basis.reserve(Pivots.size());
  for (unsigned I = 0; I != Pivots.size(); ++I)
    Basis.push_back(R.row(I));
  return Basis;
}

std::vector<Vector> Matrix::columnSpaceBasis() const {
  return transposed().rowSpaceBasis();
}

std::optional<Vector> Matrix::solve(const Vector &B) const {
  assert(B.size() == NumRows && "rhs size mismatch");
  Matrix Rhs(NumRows, 1);
  for (unsigned R = 0; R != NumRows; ++R)
    Rhs.at(R, 0) = B[R];
  std::vector<unsigned> Pivots;
  Matrix Aug = hstack(Rhs).rref(&Pivots);
  // Inconsistent iff some pivot lands in the RHS column.
  if (!Pivots.empty() && Pivots.back() == NumCols)
    return std::nullopt;
  Vector X(NumCols);
  for (unsigned I = 0; I != Pivots.size(); ++I)
    X[Pivots[I]] = Aug.at(I, NumCols);
  return X;
}

Matrix Matrix::rightPseudoInverse() const {
  // Let B hold a maximal independent set of A's columns (the pivot columns
  // of the RREF) and X the matching selection of domain unit vectors, so
  // A * X == B. Then G = X (B^T B)^{-1} B^T satisfies A G A == A, because
  // A G = B (B^T B)^{-1} B^T is the orthogonal projector onto range(A)
  // and that projector fixes every column of A. When A has full row rank
  // the projector is the identity and G is a true right inverse.
  std::vector<unsigned> Pivots;
  rref(&Pivots);
  unsigned K = Pivots.size();
  if (K == 0)
    return Matrix(NumCols, NumRows); // Zero map: G = 0 works.
  Matrix B(NumRows, K), X(NumCols, K);
  for (unsigned J = 0; J != K; ++J) {
    for (unsigned R = 0; R != NumRows; ++R)
      B.at(R, J) = at(R, Pivots[J]);
    X.at(Pivots[J], J) = 1;
  }
  Matrix Bt = B.transposed();
  auto Gram = (Bt * B).inverse();
  assert(Gram && "Gram matrix of independent columns must be invertible");
  return X * *Gram * Bt;
}

Matrix Matrix::integerScaled() const {
  if (isZero())
    return *this;
  int64_t Lcm = 1;
  for (const Rational &E : Elems)
    Lcm = lcm64(Lcm, E.den());
  int64_t Gcd = 0;
  for (const Rational &E : Elems)
    Gcd = gcd64(Gcd, (E * Rational(Lcm)).asInteger());
  return scaled(Rational(Lcm) / Rational(Gcd));
}

bool Matrix::isIntegral() const {
  for (const Rational &E : Elems)
    if (!E.isInteger())
      return false;
  return true;
}

std::string Matrix::str() const {
  std::ostringstream OS;
  OS << '[';
  for (unsigned R = 0; R != NumRows; ++R) {
    if (R)
      OS << "; ";
    for (unsigned C = 0; C != NumCols; ++C) {
      if (C)
        OS << ' ';
      OS << at(R, C);
    }
  }
  OS << ']';
  return OS.str();
}

std::ostream &alp::operator<<(std::ostream &OS, const Matrix &M) {
  return OS << M.str();
}
