//===- linalg/SymAffine.cpp - Affine expressions in symbolic constants ----===//

#include "linalg/SymAffine.h"

#include "support/Diagnostics.h"

#include <cassert>
#include <ostream>
#include <sstream>

using namespace alp;

SymAffine SymAffine::symbol(const std::string &Symbol, Rational Coeff) {
  SymAffine A;
  if (!Coeff.isZero())
    A.Coeffs[Symbol] = Coeff;
  return A;
}

Rational SymAffine::coeff(const std::string &Symbol) const {
  auto It = Coeffs.find(Symbol);
  return It == Coeffs.end() ? Rational(0) : It->second;
}

void SymAffine::prune() {
  for (auto It = Coeffs.begin(); It != Coeffs.end();) {
    if (It->second.isZero())
      It = Coeffs.erase(It);
    else
      ++It;
  }
}

SymAffine SymAffine::operator+(const SymAffine &RHS) const {
  SymAffine R = *this;
  R.Constant += RHS.Constant;
  for (const auto &[Sym, C] : RHS.Coeffs)
    R.Coeffs[Sym] += C;
  R.prune();
  return R;
}

SymAffine SymAffine::operator-(const SymAffine &RHS) const {
  return *this + (-RHS);
}

SymAffine SymAffine::operator-() const {
  SymAffine R;
  R.Constant = -Constant;
  for (const auto &[Sym, C] : Coeffs)
    R.Coeffs[Sym] = -C;
  return R;
}

SymAffine SymAffine::scaled(const Rational &S) const {
  SymAffine R;
  R.Constant = Constant * S;
  if (S.isZero())
    return R;
  for (const auto &[Sym, C] : Coeffs)
    R.Coeffs[Sym] = C * S;
  return R;
}

Rational
SymAffine::evaluate(const std::map<std::string, Rational> &Bindings) const {
  Rational V = Constant;
  for (const auto &[Sym, C] : Coeffs) {
    auto It = Bindings.find(Sym);
    if (It == Bindings.end())
      reportFatalError("unbound symbolic constant '" + Sym + "'");
    V += C * It->second;
  }
  return V;
}

std::string SymAffine::str() const {
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Sym, C] : Coeffs) {
    if (First) {
      if (C == Rational(1))
        OS << Sym;
      else if (C == Rational(-1))
        OS << '-' << Sym;
      else
        OS << C << '*' << Sym;
      First = false;
      continue;
    }
    if (C.isNegative())
      OS << " - "
         << (C == Rational(-1) ? std::string() : (-C).str() + "*") << Sym;
    else
      OS << " + "
         << (C == Rational(1) ? std::string() : C.str() + "*") << Sym;
  }
  if (First) {
    OS << Constant;
  } else if (!Constant.isZero()) {
    if (Constant.isNegative())
      OS << " - " << (-Constant);
    else
      OS << " + " << Constant;
  }
  return OS.str();
}

std::ostream &alp::operator<<(std::ostream &OS, const SymAffine &A) {
  return OS << A.str();
}

SymVector SymVector::fromVector(const Vector &V) {
  SymVector R(V.size());
  for (unsigned I = 0; I != V.size(); ++I)
    R[I] = SymAffine(V[I]);
  return R;
}

bool SymVector::isZero() const {
  for (const SymAffine &E : Elems)
    if (!E.isZero())
      return false;
  return true;
}

SymVector SymVector::operator+(const SymVector &RHS) const {
  assert(size() == RHS.size() && "symbolic vector size mismatch");
  SymVector R(size());
  for (unsigned I = 0; I != size(); ++I)
    R[I] = Elems[I] + RHS[I];
  return R;
}

SymVector SymVector::operator-(const SymVector &RHS) const {
  assert(size() == RHS.size() && "symbolic vector size mismatch");
  SymVector R(size());
  for (unsigned I = 0; I != size(); ++I)
    R[I] = Elems[I] - RHS[I];
  return R;
}

SymVector SymVector::operator-() const {
  SymVector R(size());
  for (unsigned I = 0; I != size(); ++I)
    R[I] = -Elems[I];
  return R;
}

std::string SymVector::str() const {
  std::ostringstream OS;
  OS << '(';
  for (unsigned I = 0; I != size(); ++I) {
    if (I)
      OS << ", ";
    OS << Elems[I];
  }
  OS << ')';
  return OS.str();
}

std::ostream &alp::operator<<(std::ostream &OS, const SymVector &V) {
  return OS << V.str();
}

SymVector alp::operator*(const Matrix &M, const SymVector &V) {
  assert(M.cols() == V.size() && "matrix-symvector shape mismatch");
  SymVector R(M.rows());
  for (unsigned Row = 0; Row != M.rows(); ++Row) {
    SymAffine Sum;
    for (unsigned C = 0; C != M.cols(); ++C)
      Sum += V[C].scaled(M.at(Row, C));
    R[Row] = Sum;
  }
  return R;
}
