//===- linalg/IntegerOps.cpp - Integer lattice operations ------------------===//

#include "linalg/IntegerOps.h"

#include "support/CheckedInt.h"

#include <algorithm>
#include <sstream>

using namespace alp;

ExtGcd alp::extendedGcd(int64_t A, int64_t B) {
  // Iterative extended Euclid maintaining Bezout coefficients.
  int64_t OldR = A, R = B;
  int64_t OldS = 1, S = 0;
  int64_t OldT = 0, T = 1;
  while (R != 0) {
    if (OldR == INT64_MIN && R == -1)
      throwOverflow("extended gcd quotient");
    int64_t Q = OldR / R;
    int64_t Tmp = checkedSub64(OldR, checkedMul64(Q, R, "extended gcd"),
                               "extended gcd");
    OldR = R;
    R = Tmp;
    Tmp = checkedSub64(OldS, checkedMul64(Q, S, "extended gcd"),
                       "extended gcd");
    OldS = S;
    S = Tmp;
    Tmp = checkedSub64(OldT, checkedMul64(Q, T, "extended gcd"),
                       "extended gcd");
    OldT = T;
    T = Tmp;
  }
  if (OldR < 0) {
    OldR = checkedNeg64(OldR, "extended gcd");
    OldS = checkedNeg64(OldS, "extended gcd");
    OldT = checkedNeg64(OldT, "extended gcd");
  }
  return {OldR, OldS, OldT};
}

IntMatrix::IntMatrix(
    std::initializer_list<std::initializer_list<int64_t>> Init) {
  NumRows = Init.size();
  NumCols = NumRows ? Init.begin()->size() : 0;
  Elems.reserve(NumRows * NumCols);
  for (const auto &Row : Init) {
    assert(Row.size() == NumCols && "ragged matrix initializer");
    for (int64_t E : Row)
      Elems.push_back(E);
  }
}

IntMatrix IntMatrix::identity(unsigned N) {
  IntMatrix M(N, N);
  for (unsigned I = 0; I != N; ++I)
    M.at(I, I) = 1;
  return M;
}

IntMatrix IntMatrix::fromRational(const Matrix &M) {
  assert(M.isIntegral() && "matrix has non-integer entries");
  IntMatrix R(M.rows(), M.cols());
  for (unsigned I = 0; I != M.rows(); ++I)
    for (unsigned J = 0; J != M.cols(); ++J)
      R.at(I, J) = M.at(I, J).asInteger();
  return R;
}

IntMatrix IntMatrix::operator*(const IntMatrix &RHS) const {
  assert(NumCols == RHS.NumRows && "matrix product shape mismatch");
  IntMatrix M(NumRows, RHS.NumCols);
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned K = 0; K != NumCols; ++K) {
      int64_t A = at(R, K);
      if (A == 0)
        continue;
      for (unsigned C = 0; C != RHS.NumCols; ++C) {
        __int128 V = static_cast<__int128>(M.at(R, C)) +
                     static_cast<__int128>(A) * RHS.at(K, C);
        if (V > INT64_MAX || V < INT64_MIN)
          throwOverflow("integer matrix product");
        M.at(R, C) = static_cast<int64_t>(V);
      }
    }
  return M;
}

std::vector<int64_t>
IntMatrix::operator*(const std::vector<int64_t> &V) const {
  assert(V.size() == NumCols && "matrix-vector shape mismatch");
  std::vector<int64_t> R(NumRows, 0);
  for (unsigned Row = 0; Row != NumRows; ++Row)
    for (unsigned C = 0; C != NumCols; ++C)
      R[Row] = checkedAdd64(
          R[Row], checkedMul64(at(Row, C), V[C], "matrix-vector product"),
          "matrix-vector product");
  return R;
}

Matrix IntMatrix::toRational() const {
  Matrix M(NumRows, NumCols);
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned C = 0; C != NumCols; ++C)
      M.at(R, C) = Rational(at(R, C));
  return M;
}

int64_t IntMatrix::absDeterminant() const {
  Rational Det = toRational().determinant();
  return Det.abs().isInteger() ? Det.abs().asInteger() : 0;
}

bool IntMatrix::isUnimodular() const {
  if (NumRows != NumCols)
    return false;
  Rational Det = toRational().determinant();
  return Det == Rational(1) || Det == Rational(-1);
}

std::string IntMatrix::str() const {
  std::ostringstream OS;
  OS << '[';
  for (unsigned R = 0; R != NumRows; ++R) {
    if (R)
      OS << "; ";
    for (unsigned C = 0; C != NumCols; ++C) {
      if (C)
        OS << ' ';
      OS << at(R, C);
    }
  }
  OS << ']';
  return OS.str();
}

HermiteResult alp::hermiteNormalForm(const IntMatrix &A) {
  HermiteResult Res;
  Res.H = A;
  Res.U = IntMatrix::identity(A.cols());
  IntMatrix &H = Res.H;
  IntMatrix &U = Res.U;
  unsigned M = A.rows(), N = A.cols();

  auto combineCols = [&](IntMatrix &X, unsigned C1, unsigned C2, int64_t A11,
                         int64_t A12, int64_t A21, int64_t A22) {
    // (col C1, col C2) <- (A11*C1 + A12*C2, A21*C1 + A22*C2).
    for (unsigned R = 0; R != X.rows(); ++R) {
      int64_t V1 = X.at(R, C1), V2 = X.at(R, C2);
      X.at(R, C1) = checkedAdd64(checkedMul64(A11, V1, "HNF column op"),
                                 checkedMul64(A12, V2, "HNF column op"),
                                 "HNF column op");
      X.at(R, C2) = checkedAdd64(checkedMul64(A21, V1, "HNF column op"),
                                 checkedMul64(A22, V2, "HNF column op"),
                                 "HNF column op");
    }
  };

  unsigned PivotCol = 0;
  for (unsigned Row = 0; Row != M && PivotCol != N; ++Row) {
    // Zero out entries right of PivotCol in this row using gcd combinations.
    bool RowHasPivot = false;
    for (unsigned C = PivotCol; C != N; ++C) {
      if (H.at(Row, C) == 0)
        continue;
      if (!RowHasPivot) {
        // Move this column into the pivot position.
        if (C != PivotCol) {
          combineCols(H, PivotCol, C, 0, 1, 1, 0);
          combineCols(U, PivotCol, C, 0, 1, 1, 0);
        }
        RowHasPivot = true;
        continue;
      }
      // Combine columns PivotCol and C so that H(Row, C) becomes 0 and
      // H(Row, PivotCol) becomes gcd.
      int64_t P = H.at(Row, PivotCol), Q = H.at(Row, C);
      ExtGcd E = extendedGcd(P, Q);
      int64_t PP = P / E.G, QQ = Q / E.G;
      // New pivot column = X*old_pivot + Y*C ; new C = -QQ*old_pivot + PP*C.
      // The 2x2 transform [[X, Y],[-QQ, PP]] has determinant X*PP + Y*QQ = 1,
      // the row entries become (gcd, 0).
      combineCols(H, PivotCol, C, E.X, E.Y, -QQ, PP);
      combineCols(U, PivotCol, C, E.X, E.Y, -QQ, PP);
    }
    if (!RowHasPivot)
      continue;
    // Make the pivot positive.
    if (H.at(Row, PivotCol) < 0) {
      for (unsigned R = 0; R != M; ++R)
        H.at(R, PivotCol) = checkedNeg64(H.at(R, PivotCol), "HNF pivot sign");
      for (unsigned R = 0; R != N; ++R)
        U.at(R, PivotCol) = checkedNeg64(U.at(R, PivotCol), "HNF pivot sign");
    }
    // Reduce earlier columns modulo the pivot (canonical HNF condition).
    int64_t P = H.at(Row, PivotCol);
    for (unsigned C = 0; C != PivotCol; ++C) {
      int64_t Q = H.at(Row, C);
      // Floor division so remainders land in [0, P).
      int64_t K = Q >= 0 ? Q / P : -((-Q + P - 1) / P);
      if (K == 0)
        continue;
      for (unsigned R = 0; R != M; ++R)
        H.at(R, C) = checkedSub64(
            H.at(R, C), checkedMul64(K, H.at(R, PivotCol), "HNF reduce"),
            "HNF reduce");
      for (unsigned R = 0; R != N; ++R)
        U.at(R, C) = checkedSub64(
            U.at(R, C), checkedMul64(K, U.at(R, PivotCol), "HNF reduce"),
            "HNF reduce");
    }
    Res.Pivots.push_back({Row, PivotCol});
    ++PivotCol;
  }
  return Res;
}

std::optional<std::vector<int64_t>>
alp::solveIntegerSystem(const IntMatrix &A, const std::vector<int64_t> &B) {
  assert(B.size() == A.rows() && "rhs size mismatch");
  HermiteResult HR = hermiteNormalForm(A);
  unsigned N = A.cols();
  std::vector<int64_t> Y(N, 0);
  unsigned PivotIdx = 0;
  for (unsigned Row = 0; Row != A.rows(); ++Row) {
    // Residual of this row given already-fixed Y entries.
    int64_t Resid = B[Row];
    for (unsigned C = 0; C != N; ++C)
      Resid = checkedSub64(
          Resid, checkedMul64(HR.H.at(Row, C), Y[C], "integer solve"),
          "integer solve");
    bool IsPivotRow = PivotIdx < HR.Pivots.size() &&
                      HR.Pivots[PivotIdx].first == Row;
    if (!IsPivotRow) {
      if (Resid != 0)
        return std::nullopt; // Rationally inconsistent row.
      continue;
    }
    unsigned PC = HR.Pivots[PivotIdx].second;
    int64_t P = HR.H.at(Row, PC);
    if (Resid % P != 0)
      return std::nullopt; // No integer solution (GCD obstruction).
    Y[PC] = Resid / P;
    ++PivotIdx;
  }
  return HR.U * Y;
}

IntMatrix alp::integerNullspaceBasis(const IntMatrix &A) {
  HermiteResult HR = hermiteNormalForm(A);
  // Columns of U corresponding to zero columns of H span the nullspace
  // lattice.
  std::vector<unsigned> ZeroCols;
  for (unsigned C = 0; C != A.cols(); ++C) {
    bool AllZero = true;
    for (unsigned R = 0; R != A.rows(); ++R)
      if (HR.H.at(R, C) != 0) {
        AllZero = false;
        break;
      }
    if (AllZero)
      ZeroCols.push_back(C);
  }
  IntMatrix Basis(ZeroCols.size(), A.cols());
  for (unsigned I = 0; I != ZeroCols.size(); ++I)
    for (unsigned R = 0; R != A.cols(); ++R)
      Basis.at(I, R) = HR.U.at(R, ZeroCols[I]);
  return Basis;
}

std::optional<IntMatrix> alp::unimodularExtension(const IntMatrix &Rows) {
  unsigned K = Rows.rows(), N = Rows.cols();
  assert(K <= N && "more rows than ambient dimension");
  if (Rows.toRational().rank() != K)
    return std::nullopt;
  // Column HNF of Rows gives Rows * U = H with U unimodular. The desired
  // extension's last N-K rows can be taken as the rows of inverse(U)
  // corresponding to H's non-pivot columns; the resulting square matrix
  // [Rows ; those rows] has |det| equal to the pivot product of H, which we
  // normalize away by instead returning a matrix spanning the same top
  // subspace: [H-pivot-normalized rows]. For the library's uses (completing
  // distributed dimensions) spanning the same subspace suffices, so we
  // return [Rows' ; Comp] where Rows' spans the same Q-subspace with
  // unit pivots.
  HermiteResult HR = hermiteNormalForm(Rows);
  Matrix UInv = *HR.U.toRational().inverse();
  std::vector<bool> IsPivotCol(N, false);
  for (auto &P : HR.Pivots)
    IsPivotCol[P.second] = true;
  // Rows of UInv indexed by pivot columns span the row space of Rows over Q
  // with the complementary rows completing a unimodular matrix, because
  // UInv itself is unimodular.
  IntMatrix Result(N, N);
  unsigned Out = 0;
  IntMatrix UInvInt = IntMatrix::fromRational(UInv);
  for (unsigned R = 0; R != N; ++R)
    if (IsPivotCol[R]) {
      for (unsigned C = 0; C != N; ++C)
        Result.at(Out, C) = UInvInt.at(R, C);
      ++Out;
    }
  for (unsigned R = 0; R != N; ++R)
    if (!IsPivotCol[R]) {
      for (unsigned C = 0; C != N; ++C)
        Result.at(Out, C) = UInvInt.at(R, C);
      ++Out;
    }
  assert(Result.isUnimodular() && "extension is not unimodular");
  return Result;
}
