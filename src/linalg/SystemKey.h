//===- linalg/SystemKey.h - Canonical constraint-system keys ----*- C++ -*-===//
///
/// \file
/// Canonicalization and hashing for ConstraintSystem, the substrate of the
/// dependence-analysis memoization layer. Two systems that differ only in
/// row order or row scaling describe the same polyhedron; stencil codes
/// produce thousands of such structurally identical systems (one per
/// same-shape access pair per carrying level). The canonical key
///
///   * scales every constraint to its normalized integer direction
///     (LCM of denominators / GCD of numerators, canonical sign:
///     equalities get a positive leading coefficient, inequalities keep
///     their direction),
///   * sorts the rows lexicographically,
///   * serializes kind + coefficients + constant, and
///   * hashes the serialization with FNV-1a over the Rational entries.
///
/// The full serialization is kept alongside the hash so cache lookups
/// compare exactly — a hash collision can never alias two different
/// systems to one cache entry.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_SYSTEMKEY_H
#define ALP_LINALG_SYSTEMKEY_H

#include "linalg/FourierMotzkin.h"

#include <cstdint>
#include <string>

namespace alp {

/// A canonical, order- and scale-independent key for a ConstraintSystem.
struct CanonicalSystemKey {
  uint64_t Hash = 0;
  /// Exact canonical serialization; equality compares this, not the hash.
  std::string Repr;

  bool operator==(const CanonicalSystemKey &RHS) const {
    return Hash == RHS.Hash && Repr == RHS.Repr;
  }
  bool operator!=(const CanonicalSystemKey &RHS) const {
    return !(*this == RHS);
  }
};

/// Hasher for unordered containers keyed by CanonicalSystemKey.
struct CanonicalSystemKeyHash {
  size_t operator()(const CanonicalSystemKey &K) const {
    return static_cast<size_t>(K.Hash);
  }
};

/// Builds the canonical key of \p CS. Throws AlpException on rational
/// overflow while normalizing (callers treat that like any other exact-
/// arithmetic overflow: skip memoization and fall through).
CanonicalSystemKey canonicalSystemKey(const ConstraintSystem &CS);

} // namespace alp

#endif // ALP_LINALG_SYSTEMKEY_H
