//===- linalg/VectorSpace.h - Subspaces of Q^n ------------------*- C++ -*-===//
///
/// \file
/// Subspaces of Q^n with the lattice operations the decomposition framework
/// needs. Partitions in the paper are exactly such subspaces: a data
/// partition is ker D (a subspace of the array space) and a computation
/// partition is ker C (a subspace of the iteration space). The iterative
/// partition algorithm of Sec. 4.3 manipulates them with sums, images and
/// preimages under array index maps F.
///
/// A VectorSpace stores a canonical basis (the RREF of any spanning set), so
/// equality is structural and `dim` grows strictly whenever a sum adds a new
/// direction — the monotonicity used in the termination proof of Lemma 4.2.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_VECTORSPACE_H
#define ALP_LINALG_VECTORSPACE_H

#include "linalg/Matrix.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace alp {

/// A linear subspace of Q^AmbientDim, stored as a canonical (RREF) basis.
class VectorSpace {
public:
  /// The trivial subspace {0} of Q^0. Mostly useful as a placeholder.
  VectorSpace() = default;

  /// The trivial subspace {0} of Q^Ambient.
  explicit VectorSpace(unsigned Ambient) : AmbientDim(Ambient) {}

  /// The span of \p Vectors inside Q^Ambient. Every vector must have size
  /// \p Ambient; zero vectors are ignored.
  static VectorSpace span(unsigned Ambient, const std::vector<Vector> &Vectors);

  /// All of Q^Ambient.
  static VectorSpace full(unsigned Ambient);

  /// The right nullspace ker M = { x : M x = 0 }, a subspace of Q^cols(M).
  static VectorSpace kernelOf(const Matrix &M);

  /// The range (column space) of M, a subspace of Q^rows(M).
  static VectorSpace rangeOf(const Matrix &M);

  unsigned ambientDim() const { return AmbientDim; }
  unsigned dim() const { return Basis.size(); }
  bool isTrivial() const { return Basis.empty(); }
  bool isFull() const { return dim() == AmbientDim; }

  /// Canonical basis vectors (rows of the RREF of any spanning set).
  const std::vector<Vector> &basis() const { return Basis; }

  /// Membership test.
  bool contains(const Vector &V) const;

  /// Subspace containment: every basis vector of \p Other lies in *this.
  bool containsSpace(const VectorSpace &Other) const;

  bool operator==(const VectorSpace &RHS) const {
    return AmbientDim == RHS.AmbientDim && Basis == RHS.Basis;
  }
  bool operator!=(const VectorSpace &RHS) const { return !(*this == RHS); }

  /// Sum of subspaces (the join; span of the union of bases).
  VectorSpace operator+(const VectorSpace &RHS) const;

  /// Adds \p V to the span; returns true if the dimension grew.
  bool insert(const Vector &V);

  /// Merges \p Other into *this; returns true if the dimension grew.
  bool unionWith(const VectorSpace &Other);

  /// Intersection of subspaces (the meet).
  VectorSpace intersect(const VectorSpace &RHS) const;

  /// The image { F t : t in *this }, a subspace of Q^rows(F).
  /// Requires cols(F) == ambientDim().
  VectorSpace imageUnder(const Matrix &F) const;

  /// The preimage { t : F t in *this }, a subspace of Q^cols(F); always
  /// contains ker F. Requires rows(F) == ambientDim().
  VectorSpace preimageUnder(const Matrix &F) const;

  /// The orthogonal complement within Q^AmbientDim.
  VectorSpace orthogonalComplement() const;

  /// A matrix whose rows form the canonical basis (dim x ambientDim). For
  /// the trivial space this is a 0 x ambientDim matrix.
  Matrix basisMatrix() const;

  /// A matrix M with ker M == *this and full row rank (rows = ambient - dim).
  /// This realizes the paper's step "choose a decomposition matrix D whose
  /// nullspace is the partition ker D".
  Matrix matrixWithThisKernel() const;

  /// Renders as "span{(1, 0), (0, 1)}" or "{0}".
  std::string str() const;

private:
  unsigned AmbientDim = 0;
  std::vector<Vector> Basis; // Rows of an RREF; canonical.

  void canonicalize(std::vector<Vector> Vectors);
};

std::ostream &operator<<(std::ostream &OS, const VectorSpace &VS);

} // namespace alp

#endif // ALP_LINALG_VECTORSPACE_H
