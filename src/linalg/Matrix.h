//===- linalg/Matrix.h - Dense rational vectors and matrices ----*- C++ -*-===//
///
/// \file
/// Dense vectors and matrices over Rational, sized for the decomposition
/// framework: array and iteration spaces have dimension <= ~8, so the
/// implementation favours clarity and exactness over asymptotic speed.
/// Storage is small-size-optimized (support/SmallVec.h): a Vector holds up
/// to 16 elements and a Matrix up to 64 elements inline, which covers
/// virtually all real programs; growth beyond that spills to the current
/// Arena when an ArenaScope is active, else to the heap (counted by
/// containerHeapSpills and fault-injectable at "linalg.matrix.alloc").
///
/// Conventions match the paper: a data decomposition matrix D is n x m
/// (processor dims x array dims), a computation decomposition matrix C is
/// n x l (processor dims x loop depth), an array index function matrix F is
/// m x l, and the fundamental relation is D * F == C (Eqn. 3).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_MATRIX_H
#define ALP_LINALG_MATRIX_H

#include "linalg/Rational.h"
#include "support/SmallVec.h"

#include <cassert>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace alp {

namespace detail {
/// Fault-injection probe for the "linalg.matrix.alloc" site (see
/// support/FailPoint.h), fired whenever a linalg container grows beyond
/// its inline storage; disarmed cost is one relaxed atomic load.
void matrixAllocHook();
} // namespace detail

/// A dense column vector over Q.
class Vector {
public:
  /// Inline capacity; spaces in the framework have dimension <= ~8, and the
  /// widest hot-path vector (a dependence system row over [i_src|i_dst|
  /// syms|d]) stays within 16 for depth-4 nests.
  static constexpr unsigned InlineElems = 16;
  using Storage = SmallVec<Rational, InlineElems, &detail::matrixAllocHook>;

  Vector() = default;
  explicit Vector(unsigned Size) : Elems(Size) {}
  Vector(std::initializer_list<Rational> Init) : Elems(Init) {}

  static Vector zero(unsigned Size) { return Vector(Size); }
  /// The elementary basis vector e_k (0-based) in \p Size dimensions.
  static Vector unit(unsigned Size, unsigned K);

  unsigned size() const { return Elems.size(); }
  bool empty() const { return Elems.empty(); }

  Rational &operator[](unsigned I) {
    assert(I < Elems.size() && "vector index out of range");
    return Elems[I];
  }
  const Rational &operator[](unsigned I) const {
    assert(I < Elems.size() && "vector index out of range");
    return Elems[I];
  }

  bool isZero() const;

  Vector operator+(const Vector &RHS) const;
  Vector operator-(const Vector &RHS) const;
  Vector operator-() const;
  Vector scaled(const Rational &S) const;

  /// Fused in-place kernels for the FM/rref hot paths: no temporaries.
  /// this += V * S, elementwise.
  void addScaled(const Vector &V, const Rational &S);
  /// this *= S, elementwise.
  void scaleBy(const Rational &S);

  Rational dot(const Vector &RHS) const;

  /// The first nonzero position, or nullopt for the zero vector.
  std::optional<unsigned> firstNonZero() const;

  /// Scales by the LCM of denominators and divides by the GCD of numerators,
  /// making the leading nonzero entry positive: a canonical integer direction
  /// for the same line. Zero vectors are returned unchanged.
  Vector normalizedDirection() const;

  bool operator==(const Vector &RHS) const { return Elems == RHS.Elems; }
  bool operator!=(const Vector &RHS) const { return !(*this == RHS); }

  std::string str() const;

  const Rational *begin() const { return Elems.begin(); }
  const Rational *end() const { return Elems.end(); }

private:
  Storage Elems;
};

std::ostream &operator<<(std::ostream &OS, const Vector &V);

/// A dense Rows x Cols matrix over Q.
class Matrix {
public:
  /// Inline capacity in elements (an 8x8 system, or the augmented matrices
  /// the example pipelines invert, fit without touching the allocator).
  static constexpr unsigned InlineElems = 64;
  using Storage = SmallVec<Rational, InlineElems, &detail::matrixAllocHook>;

  Matrix() = default;
  Matrix(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols), Elems(Rows * Cols) {}
  /// Row-major initializer: Matrix({{1,0},{0,1}}).
  Matrix(std::initializer_list<std::initializer_list<Rational>> Init);

  static Matrix identity(unsigned N);
  static Matrix zero(unsigned Rows, unsigned Cols) {
    return Matrix(Rows, Cols);
  }
  /// Builds a matrix whose rows are the given vectors (all the same size).
  static Matrix fromRows(const std::vector<Vector> &Rows);

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  Rational &at(unsigned R, unsigned C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Elems[R * NumCols + C];
  }
  const Rational &at(unsigned R, unsigned C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Elems[R * NumCols + C];
  }

  Vector row(unsigned R) const;
  Vector col(unsigned C) const;
  void setRow(unsigned R, const Vector &V);

  bool isZero() const;
  bool isSquare() const { return NumRows == NumCols; }
  bool isIdentity() const;

  Matrix operator+(const Matrix &RHS) const;
  Matrix operator-(const Matrix &RHS) const;
  Matrix operator*(const Matrix &RHS) const;
  Vector operator*(const Vector &V) const;
  Matrix scaled(const Rational &S) const;
  Matrix transposed() const;

  /// Fused in-place row kernels (used by rref/determinant).
  /// row Dst += row Src * S.
  void rowAddScaled(unsigned Dst, unsigned Src, const Rational &S);
  /// row R *= S.
  void scaleRow(unsigned R, const Rational &S);

  bool operator==(const Matrix &RHS) const {
    return NumRows == RHS.NumRows && NumCols == RHS.NumCols &&
           Elems == RHS.Elems;
  }
  bool operator!=(const Matrix &RHS) const { return !(*this == RHS); }

  /// Appends the rows of \p RHS below this matrix in place (column counts
  /// must match unless this matrix is empty).
  void appendRows(const Matrix &RHS);

  /// Appends the rows of \p RHS below this matrix (column counts must match).
  Matrix vstack(const Matrix &RHS) const &;
  /// Move-aware vstack: reuses this matrix's storage.
  Matrix vstack(const Matrix &RHS) &&;
  /// Appends the columns of \p RHS to the right (row counts must match).
  Matrix hstack(const Matrix &RHS) const;

  /// Reduced row echelon form. On return \p PivotCols (if nonnull) holds the
  /// pivot column of each nonzero row in order.
  Matrix rref(std::vector<unsigned> *PivotCols = nullptr) const;

  unsigned rank() const;

  /// Determinant; asserts the matrix is square.
  Rational determinant() const;

  /// Exact inverse, or nullopt if singular (or non-square).
  std::optional<Matrix> inverse() const;

  /// A basis (as rows) of the right nullspace { x : A x = 0 }.
  std::vector<Vector> nullspaceBasis() const;

  /// A basis (as rows) of the row space.
  std::vector<Vector> rowSpaceBasis() const;

  /// A basis of the column space (the range of the linear map).
  std::vector<Vector> columnSpaceBasis() const;

  /// Solves A x = b exactly; returns nullopt if inconsistent. When the
  /// system is underdetermined an arbitrary particular solution is returned
  /// (free variables set to zero).
  std::optional<Vector> solve(const Vector &B) const;

  /// A right pseudo-inverse G with A * G * A == A, defined whenever A has
  /// full row rank on its range; more generally returns a G such that
  /// A * G acts as the identity on range(A). Used for the paper's
  /// "pseudo-inverse function" when access matrices are not invertible.
  Matrix rightPseudoInverse() const;

  /// Multiplies every entry by the LCM of all denominators and divides by
  /// the GCD of all numerators, yielding the canonical integer matrix with
  /// the same row space ("the matrices can be multiplied by the least common
  /// multiple to eliminate the fractions", Sec. 4.4). The zero matrix is
  /// returned unchanged.
  Matrix integerScaled() const;

  /// True if every entry is an integer.
  bool isIntegral() const;

  std::string str() const;

private:
  unsigned NumRows = 0;
  unsigned NumCols = 0;
  Storage Elems;
};

std::ostream &operator<<(std::ostream &OS, const Matrix &M);

} // namespace alp

#endif // ALP_LINALG_MATRIX_H
