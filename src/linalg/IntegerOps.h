//===- linalg/IntegerOps.h - Integer lattice operations ---------*- C++ -*-===//
///
/// \file
/// Exact integer-linear-algebra utilities: extended gcd, column-style
/// Hermite normal form, integer solutions of A x = b, and unimodular basis
/// extension. Dependence analysis uses these to decide whether two affine
/// references can touch the same array element at integer iteration points,
/// and to extract exact dependence distance vectors for uniform accesses.
///
/// All arithmetic is overflow-checked: a computation that leaves 64 bits
/// throws AlpException(RationalOverflow) rather than aborting or wrapping,
/// and pipeline boundaries convert that into a conservative degraded
/// answer (docs/ROBUSTNESS.md).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_INTEGEROPS_H
#define ALP_LINALG_INTEGEROPS_H

#include "linalg/Matrix.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace alp {

/// Result of the extended Euclidean algorithm: G = gcd(A, B) = X*A + Y*B
/// with G >= 0.
struct ExtGcd {
  int64_t G;
  int64_t X;
  int64_t Y;
};

ExtGcd extendedGcd(int64_t A, int64_t B);

/// An integer matrix (dense, row-major).
class IntMatrix {
public:
  IntMatrix() = default;
  IntMatrix(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols), Elems(Rows * Cols, 0) {}
  IntMatrix(std::initializer_list<std::initializer_list<int64_t>> Init);

  static IntMatrix identity(unsigned N);

  /// Conversion from a rational matrix; asserts every entry is integral.
  static IntMatrix fromRational(const Matrix &M);

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  int64_t &at(unsigned R, unsigned C) {
    assert(R < NumRows && C < NumCols && "index out of range");
    return Elems[R * NumCols + C];
  }
  int64_t at(unsigned R, unsigned C) const {
    assert(R < NumRows && C < NumCols && "index out of range");
    return Elems[R * NumCols + C];
  }

  IntMatrix operator*(const IntMatrix &RHS) const;
  std::vector<int64_t> operator*(const std::vector<int64_t> &V) const;

  bool operator==(const IntMatrix &RHS) const {
    return NumRows == RHS.NumRows && NumCols == RHS.NumCols &&
           Elems == RHS.Elems;
  }

  /// Lossless conversion to a rational matrix.
  Matrix toRational() const;

  /// |det|; asserts square.
  int64_t absDeterminant() const;

  /// True if square with determinant +-1.
  bool isUnimodular() const;

  std::string str() const;

private:
  unsigned NumRows = 0;
  unsigned NumCols = 0;
  std::vector<int64_t> Elems;
};

/// Column-style Hermite normal form: returns H and unimodular U such that
/// A * U == H, where H is in column echelon form (each row's leading
/// nonzero, if any, is strictly to the right of the previous row's).
struct HermiteResult {
  IntMatrix H;
  IntMatrix U;
  /// For each pivot row, the pivot column in H (ascending).
  std::vector<std::pair<unsigned, unsigned>> Pivots;
};

HermiteResult hermiteNormalForm(const IntMatrix &A);

/// Solves A x = b over the integers. Returns a particular solution, or
/// nullopt if none exists (either rationally inconsistent or no integer
/// point on the solution flat).
std::optional<std::vector<int64_t>>
solveIntegerSystem(const IntMatrix &A, const std::vector<int64_t> &B);

/// A basis (as rows of the result) of the integer nullspace lattice
/// { x in Z^n : A x = 0 }.
IntMatrix integerNullspaceBasis(const IntMatrix &A);

/// Extends the rows of \p Rows (a k x n integer matrix of rank k) to an
/// n x n unimodular matrix whose first k rows span the same subspace as
/// \p Rows over Q. Returns nullopt if the rows are rank deficient.
std::optional<IntMatrix> unimodularExtension(const IntMatrix &Rows);

} // namespace alp

#endif // ALP_LINALG_INTEGEROPS_H
