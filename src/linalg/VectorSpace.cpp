//===- linalg/VectorSpace.cpp - Subspaces of Q^n ---------------------------===//

#include "linalg/VectorSpace.h"

#include <cassert>
#include <ostream>
#include <sstream>

using namespace alp;

namespace {

/// Column of the leading (pivot) entry of an RREF row; size() for a zero
/// row. Basis rows are RREF, so the pivot entry is 1 and the pivot columns
/// strictly increase down the basis.
unsigned pivotOf(const Vector &V) {
  for (unsigned I = 0; I != V.size(); ++I)
    if (!V[I].isZero())
      return I;
  return V.size();
}

/// Reduces \p V in place against the RREF rows of \p Basis (one
/// elimination step per row). Afterwards V is zero iff it was in the
/// span. This is the forward-substitution shortcut the canonical basis
/// buys: no stacked matrix, no fresh rref.
void reduceAgainst(const std::vector<Vector> &Basis, Vector &V) {
  for (const Vector &B : Basis) {
    unsigned P = pivotOf(B);
    if (P < V.size() && !V[P].isZero())
      V.addScaled(B, -V[P]);
  }
}

} // namespace

void VectorSpace::canonicalize(std::vector<Vector> Vectors) {
  // Incremental RREF maintenance via insert(); by the uniqueness of the
  // RREF of a row space this produces exactly the basis a from-scratch
  // elimination of the stacked vectors would.
  Basis.clear();
  for (const Vector &V : Vectors) {
    assert(V.size() == AmbientDim && "vector ambient dimension mismatch");
    insert(V);
  }
}

VectorSpace VectorSpace::span(unsigned Ambient,
                              const std::vector<Vector> &Vectors) {
  VectorSpace VS(Ambient);
  std::vector<Vector> NonZero;
  NonZero.reserve(Vectors.size());
  for (const Vector &V : Vectors) {
    assert(V.size() == Ambient && "vector ambient dimension mismatch");
    if (!V.isZero())
      NonZero.push_back(V);
  }
  VS.canonicalize(std::move(NonZero));
  return VS;
}

VectorSpace VectorSpace::full(unsigned Ambient) {
  VectorSpace VS(Ambient);
  VS.Basis.reserve(Ambient);
  for (unsigned I = 0; I != Ambient; ++I)
    VS.Basis.push_back(Vector::unit(Ambient, I));
  return VS;
}

VectorSpace VectorSpace::kernelOf(const Matrix &M) {
  VectorSpace VS(M.cols());
  VS.canonicalize(M.nullspaceBasis());
  return VS;
}

VectorSpace VectorSpace::rangeOf(const Matrix &M) {
  VectorSpace VS(M.rows());
  VS.canonicalize(M.columnSpaceBasis());
  return VS;
}

bool VectorSpace::contains(const Vector &V) const {
  assert(V.size() == AmbientDim && "ambient dimension mismatch");
  if (V.isZero())
    return true;
  if (Basis.empty())
    return false;
  if (isFull())
    return true;
  // Ambient dims are loop depths, so the residual almost always fits the
  // Vector's inline storage — no scratch arena needed.
  Vector R = V;
  reduceAgainst(Basis, R);
  return R.isZero();
}

bool VectorSpace::containsSpace(const VectorSpace &Other) const {
  assert(AmbientDim == Other.AmbientDim && "ambient dimension mismatch");
  if (Other.Basis.empty())
    return true;
  if (Other.dim() > dim())
    return false;
  for (const Vector &V : Other.Basis)
    if (!contains(V))
      return false;
  return true;
}

VectorSpace VectorSpace::operator+(const VectorSpace &RHS) const {
  assert(AmbientDim == RHS.AmbientDim && "ambient dimension mismatch");
  VectorSpace VS = *this;
  VS.unionWith(RHS);
  return VS;
}

bool VectorSpace::insert(const Vector &V) {
  assert(V.size() == AmbientDim && "ambient dimension mismatch");
  if (V.isZero() || isFull())
    return false;
  // Reduce V against the canonical basis; a zero residual means V was
  // already in the span. Otherwise splice the residual in as a new RREF
  // row: normalize its pivot to 1, clear that column from the other rows,
  // and keep the rows sorted by pivot column. The RREF of a row space is
  // unique, so this is exactly the basis a from-scratch elimination of
  // basis + V would produce.
  Vector R = V;
  reduceAgainst(Basis, R);
  unsigned P = pivotOf(R);
  if (P == R.size())
    return false;
  R.scaleBy(R[P].reciprocal());
  for (Vector &B : Basis)
    if (!B[P].isZero())
      B.addScaled(R, -B[P]);
  auto Pos = Basis.begin();
  while (Pos != Basis.end() && pivotOf(*Pos) < P)
    ++Pos;
  Basis.insert(Pos, std::move(R));
  return true;
}

bool VectorSpace::unionWith(const VectorSpace &Other) {
  assert(AmbientDim == Other.AmbientDim && "ambient dimension mismatch");
  bool Grew = false;
  for (const Vector &V : Other.Basis)
    Grew = insert(V) || Grew;
  return Grew;
}

VectorSpace VectorSpace::intersect(const VectorSpace &RHS) const {
  assert(AmbientDim == RHS.AmbientDim && "ambient dimension mismatch");
  // x in (U cap W) iff x is orthogonal to both complements:
  // U cap W = (U^perp + W^perp)^perp.
  return (orthogonalComplement() + RHS.orthogonalComplement())
      .orthogonalComplement();
}

VectorSpace VectorSpace::imageUnder(const Matrix &F) const {
  assert(F.cols() == AmbientDim && "map domain mismatch");
  VectorSpace VS(F.rows());
  for (const Vector &V : Basis)
    VS.insert(F * V);
  return VS;
}

VectorSpace VectorSpace::preimageUnder(const Matrix &F) const {
  assert(F.rows() == AmbientDim && "map codomain mismatch");
  // t in preimage iff F t is in *this iff P (F t) = 0 where the rows of P
  // span the orthogonal complement of *this.
  Matrix P = orthogonalComplement().basisMatrix();
  if (P.rows() == 0)
    return full(F.cols()); // *this is everything; any t qualifies.
  return kernelOf(P * F);
}

VectorSpace VectorSpace::orthogonalComplement() const {
  if (Basis.empty())
    return full(AmbientDim);
  return kernelOf(basisMatrix());
}

Matrix VectorSpace::basisMatrix() const {
  if (Basis.empty())
    return Matrix(0, AmbientDim);
  return Matrix::fromRows(Basis);
}

Matrix VectorSpace::matrixWithThisKernel() const {
  // The rows of a basis of the orthogonal complement vanish exactly on
  // *this, and there are ambient - dim of them.
  return orthogonalComplement().basisMatrix();
}

std::string VectorSpace::str() const {
  if (Basis.empty())
    return "{0}";
  std::ostringstream OS;
  OS << "span{";
  for (unsigned I = 0; I != Basis.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Basis[I].normalizedDirection();
  }
  OS << '}';
  return OS.str();
}

std::ostream &alp::operator<<(std::ostream &OS, const VectorSpace &VS) {
  return OS << VS.str();
}
