//===- linalg/VectorSpace.cpp - Subspaces of Q^n ---------------------------===//

#include "linalg/VectorSpace.h"

#include <cassert>
#include <ostream>
#include <sstream>

using namespace alp;

void VectorSpace::canonicalize(std::vector<Vector> Vectors) {
  Basis.clear();
  if (Vectors.empty())
    return;
  Matrix M = Matrix::fromRows(Vectors);
  assert(M.cols() == AmbientDim && "vector ambient dimension mismatch");
  Basis = M.rowSpaceBasis();
}

VectorSpace VectorSpace::span(unsigned Ambient,
                              const std::vector<Vector> &Vectors) {
  VectorSpace VS(Ambient);
  std::vector<Vector> NonZero;
  NonZero.reserve(Vectors.size());
  for (const Vector &V : Vectors) {
    assert(V.size() == Ambient && "vector ambient dimension mismatch");
    if (!V.isZero())
      NonZero.push_back(V);
  }
  VS.canonicalize(std::move(NonZero));
  return VS;
}

VectorSpace VectorSpace::full(unsigned Ambient) {
  VectorSpace VS(Ambient);
  VS.Basis.reserve(Ambient);
  for (unsigned I = 0; I != Ambient; ++I)
    VS.Basis.push_back(Vector::unit(Ambient, I));
  return VS;
}

VectorSpace VectorSpace::kernelOf(const Matrix &M) {
  VectorSpace VS(M.cols());
  VS.canonicalize(M.nullspaceBasis());
  return VS;
}

VectorSpace VectorSpace::rangeOf(const Matrix &M) {
  VectorSpace VS(M.rows());
  VS.canonicalize(M.columnSpaceBasis());
  return VS;
}

bool VectorSpace::contains(const Vector &V) const {
  assert(V.size() == AmbientDim && "ambient dimension mismatch");
  if (V.isZero())
    return true;
  if (Basis.empty())
    return false;
  // V is in the span iff appending it does not raise the rank. Build the
  // stacked matrix directly instead of copying the basis into a temporary
  // row vector first.
  Matrix M(Basis.size() + 1, AmbientDim);
  for (unsigned R = 0; R != Basis.size(); ++R)
    M.setRow(R, Basis[R]);
  M.setRow(Basis.size(), V);
  return M.rank() == Basis.size();
}

bool VectorSpace::containsSpace(const VectorSpace &Other) const {
  assert(AmbientDim == Other.AmbientDim && "ambient dimension mismatch");
  if (Other.Basis.empty())
    return true;
  if (Other.dim() > dim())
    return false;
  // Other is contained iff stacking its basis under ours does not raise
  // the rank — one elimination instead of one per basis vector.
  Matrix M(Basis.size() + Other.Basis.size(), AmbientDim);
  for (unsigned R = 0; R != Basis.size(); ++R)
    M.setRow(R, Basis[R]);
  for (unsigned R = 0; R != Other.Basis.size(); ++R)
    M.setRow(Basis.size() + R, Other.Basis[R]);
  return M.rank() == Basis.size();
}

VectorSpace VectorSpace::operator+(const VectorSpace &RHS) const {
  assert(AmbientDim == RHS.AmbientDim && "ambient dimension mismatch");
  std::vector<Vector> All;
  All.reserve(Basis.size() + RHS.Basis.size());
  All.insert(All.end(), Basis.begin(), Basis.end());
  All.insert(All.end(), RHS.Basis.begin(), RHS.Basis.end());
  VectorSpace VS(AmbientDim);
  VS.canonicalize(std::move(All));
  return VS;
}

bool VectorSpace::insert(const Vector &V) {
  if (contains(V))
    return false;
  std::vector<Vector> All;
  All.reserve(Basis.size() + 1);
  All.insert(All.end(), Basis.begin(), Basis.end());
  All.push_back(V);
  canonicalize(std::move(All));
  return true;
}

bool VectorSpace::unionWith(const VectorSpace &Other) {
  if (containsSpace(Other))
    return false;
  *this = *this + Other;
  return true;
}

VectorSpace VectorSpace::intersect(const VectorSpace &RHS) const {
  assert(AmbientDim == RHS.AmbientDim && "ambient dimension mismatch");
  // x in (U cap W) iff x is orthogonal to both complements:
  // U cap W = (U^perp + W^perp)^perp.
  return (orthogonalComplement() + RHS.orthogonalComplement())
      .orthogonalComplement();
}

VectorSpace VectorSpace::imageUnder(const Matrix &F) const {
  assert(F.cols() == AmbientDim && "map domain mismatch");
  std::vector<Vector> Images;
  Images.reserve(Basis.size());
  for (const Vector &V : Basis)
    Images.push_back(F * V);
  return span(F.rows(), Images);
}

VectorSpace VectorSpace::preimageUnder(const Matrix &F) const {
  assert(F.rows() == AmbientDim && "map codomain mismatch");
  // t in preimage iff F t is in *this iff P (F t) = 0 where the rows of P
  // span the orthogonal complement of *this.
  Matrix P = orthogonalComplement().basisMatrix();
  if (P.rows() == 0)
    return full(F.cols()); // *this is everything; any t qualifies.
  return kernelOf(P * F);
}

VectorSpace VectorSpace::orthogonalComplement() const {
  if (Basis.empty())
    return full(AmbientDim);
  return kernelOf(basisMatrix());
}

Matrix VectorSpace::basisMatrix() const {
  if (Basis.empty())
    return Matrix(0, AmbientDim);
  return Matrix::fromRows(Basis);
}

Matrix VectorSpace::matrixWithThisKernel() const {
  // The rows of a basis of the orthogonal complement vanish exactly on
  // *this, and there are ambient - dim of them.
  return orthogonalComplement().basisMatrix();
}

std::string VectorSpace::str() const {
  if (Basis.empty())
    return "{0}";
  std::ostringstream OS;
  OS << "span{";
  for (unsigned I = 0; I != Basis.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Basis[I].normalizedDirection();
  }
  OS << '}';
  return OS.str();
}

std::ostream &alp::operator<<(std::ostream &OS, const VectorSpace &VS) {
  return OS << VS.str();
}
