//===- linalg/SystemKey.cpp - Canonical constraint-system keys -------------===//

#include "linalg/SystemKey.h"

#include <algorithm>
#include <cstring>
#include <vector>

using namespace alp;

namespace {

/// FNV-1a-style mix, eight bytes per step (the tail is zero-padded;
/// a rare padding collision is harmless because key equality compares
/// the full representation). Keys never leave the process, so the exact
/// hash value is free to change; only determinism matters.
inline void fnv1a(uint64_t &H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  while (Len >= 8) {
    uint64_t W;
    std::memcpy(&W, P, 8);
    H ^= W;
    H *= 1099511628211ull;
    P += 8;
    Len -= 8;
  }
  if (Len) {
    uint64_t W = 0;
    std::memcpy(&W, P, Len);
    H ^= W;
    H *= 1099511628211ull;
  }
}

/// Writes an integer at \p Out in host byte order. The key only ever
/// meets keys built in the same process, so the encoding just has to be
/// deterministic and injective, not portable.
inline void put64(char *Out, int64_t V) { std::memcpy(Out, &V, 8); }

} // namespace

CanonicalSystemKey alp::canonicalSystemKey(const ConstraintSystem &CS) {
  const unsigned NumVars = CS.numVars();
  // Fixed-width rows — kind byte plus (num, den) per entry — laid out
  // back-to-back in one scratch buffer: no per-row string allocation, and
  // row order can be canonicalized by sorting row indices with memcmp.
  const size_t RowW = 1 + 16 * (NumVars + 1);
  const size_t NumRows = CS.size();
  std::string Scratch(NumRows * RowW, '\0');
  size_t R = 0;
  for (const LinearConstraint &C : CS.constraints()) {
    char *Row = &Scratch[R++ * RowW];
    Row[0] = C.CKind == LinearConstraint::Kind::Equality ? 'E' : 'I';
    const bool Equality = C.CKind == LinearConstraint::Kind::Equality;
    // Integer fast path — the overwhelmingly common case for dependence
    // systems. Scaling to the canonical direction is then just dividing
    // by the gcd of the entries (and, for the sign-symmetric equalities,
    // making the leading entry positive): no Vector temporaries, no
    // rational reduction.
    auto EntryNum = [&](unsigned I) {
      return I == NumVars ? C.Const.num() : C.Coeffs[I].num();
    };
    bool AllInt = C.Const.isInteger();
    for (unsigned I = 0; AllInt && I != NumVars; ++I)
      AllInt = C.Coeffs[I].isInteger();
    int64_t G = 0;
    int64_t LeadSign = 0;
    for (unsigned I = 0; AllInt && I != NumVars + 1; ++I) {
      int64_t V = EntryNum(I);
      if (V == INT64_MIN) { // |V| and -V overflow; take the slow path.
        AllInt = false;
        break;
      }
      if (V != 0 && LeadSign == 0)
        LeadSign = V > 0 ? 1 : -1;
      if (V != 0 && G != 1) // gcd(G, 0) == G and gcd(1, V) == 1: skip.
        G = gcd64(G, V);
    }
    if (AllInt) {
      int64_t Flip = (Equality && LeadSign < 0) ? -1 : 1;
      for (unsigned I = 0; I != NumVars + 1; ++I) {
        int64_t V = EntryNum(I);
        put64(Row + 1 + 16 * I, G > 1 ? Flip * (V / G) : Flip * V);
        put64(Row + 9 + 16 * I, 1);
      }
      continue;
    }
    // Scale [coeffs | const] to the canonical integer direction.
    Vector Full(NumVars + 1);
    for (unsigned I = 0; I != NumVars; ++I)
      Full[I] = C.Coeffs[I];
    Full[NumVars] = C.Const;
    Vector Dir = Full.normalizedDirection();
    // normalizedDirection makes the leading entry positive, which may flip
    // an inequality's direction; restore it (only equalities are
    // sign-symmetric).
    if (C.CKind == LinearConstraint::Kind::Inequality) {
      auto Lead = Full.firstNonZero();
      if (Lead && Full[*Lead].isNegative())
        Dir = -Dir;
    }
    for (unsigned I = 0; I != NumVars + 1; ++I) {
      put64(Row + 1 + 16 * I, Dir[I].num());
      put64(Row + 9 + 16 * I, Dir[I].den());
    }
  }

  unsigned Idx[64];
  std::vector<unsigned> IdxHeap;
  unsigned *Order = Idx;
  if (NumRows > 64) {
    IdxHeap.resize(NumRows);
    Order = IdxHeap.data();
  }
  for (unsigned I = 0; I != NumRows; ++I)
    Order[I] = I;
  const char *Base = Scratch.data();
  std::sort(Order, Order + NumRows, [&](unsigned A, unsigned B) {
    return std::memcmp(Base + A * RowW, Base + B * RowW, RowW) < 0;
  });

  CanonicalSystemKey Key;
  Key.Repr.resize(8 + NumRows * RowW);
  put64(&Key.Repr[0], NumVars);
  for (unsigned I = 0; I != NumRows; ++I)
    std::memcpy(&Key.Repr[8 + I * RowW], Base + Order[I] * RowW, RowW);
  Key.Hash = 1469598103934665603ull;
  fnv1a(Key.Hash, Key.Repr.data(), Key.Repr.size());
  return Key;
}
