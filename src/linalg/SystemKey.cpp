//===- linalg/SystemKey.cpp - Canonical constraint-system keys -------------===//

#include "linalg/SystemKey.h"

#include <algorithm>

using namespace alp;

namespace {

/// FNV-1a over a byte range.
inline void fnv1a(uint64_t &H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
}

/// Appends an integer in a fixed-width binary encoding (fast to hash and
/// to compare, no textual formatting on the hot path).
inline void appendI64(std::string &Out, int64_t V) {
  uint64_t U = static_cast<uint64_t>(V);
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((U >> (8 * I)) & 0xff));
}

} // namespace

CanonicalSystemKey alp::canonicalSystemKey(const ConstraintSystem &CS) {
  const unsigned NumVars = CS.numVars();
  std::vector<std::string> Rows;
  Rows.reserve(CS.size());
  for (const LinearConstraint &C : CS.constraints()) {
    // Scale [coeffs | const] to the canonical integer direction.
    Vector Full(NumVars + 1);
    for (unsigned I = 0; I != NumVars; ++I)
      Full[I] = C.Coeffs[I];
    Full[NumVars] = C.Const;
    Vector Dir = Full.normalizedDirection();
    // normalizedDirection makes the leading entry positive, which may flip
    // an inequality's direction; restore it (only equalities are
    // sign-symmetric).
    if (C.CKind == LinearConstraint::Kind::Inequality) {
      auto Lead = Full.firstNonZero();
      if (Lead && Full[*Lead].isNegative())
        Dir = -Dir;
    }
    std::string Row;
    Row.reserve(1 + 8 * (NumVars + 1));
    Row.push_back(C.CKind == LinearConstraint::Kind::Equality ? 'E' : 'I');
    for (unsigned I = 0; I != NumVars + 1; ++I) {
      // After normalization entries are integers except for the all-zero
      // row (returned unchanged); encode num and den to stay exact either
      // way.
      appendI64(Row, Dir[I].num());
      if (Dir[I].den() != 1)
        appendI64(Row, -Dir[I].den()); // Tagged: dens are never negative.
    }
    Rows.push_back(std::move(Row));
  }
  std::sort(Rows.begin(), Rows.end());

  CanonicalSystemKey Key;
  Key.Repr.reserve(8 + Rows.size() * (2 + 8 * (NumVars + 1)));
  appendI64(Key.Repr, NumVars);
  for (const std::string &Row : Rows) {
    Key.Repr += Row;
    Key.Repr.push_back('\n');
  }
  Key.Hash = 1469598103934665603ull;
  fnv1a(Key.Hash, Key.Repr.data(), Key.Repr.size());
  return Key;
}
