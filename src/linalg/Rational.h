//===- linalg/Rational.h - Exact rational numbers ---------------*- C++ -*-===//
///
/// \file
/// Exact rational arithmetic over checked 64-bit integers. All decomposition
/// mathematics in the library (kernels, spans, orientations) is performed
/// over Q so that results such as ker D = span{(1,-1)} are exact.
///
/// Intermediate products are computed in 128-bit arithmetic; a result whose
/// reduced numerator or denominator does not fit in 64 bits triggers
/// reportFatalError. The matrices arising from affine loop nests are tiny
/// (dimension <= ~8) with small entries, so overflow indicates a bug.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_RATIONAL_H
#define ALP_LINALG_RATIONAL_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace alp {

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
class Rational {
public:
  /// Zero.
  Rational() : Num(0), Den(1) {}

  /// The integer \p N.
  Rational(int64_t N) : Num(N), Den(1) {} // NOLINT: implicit by design.

  /// The fraction \p N / \p D. \p D must be nonzero.
  Rational(int64_t N, int64_t D);

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isOne() const { return Num == 1 && Den == 1; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }

  /// Integer value; asserts isInteger().
  int64_t asInteger() const;

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// Division; \p RHS must be nonzero.
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  /// Multiplicative inverse; *this must be nonzero.
  Rational reciprocal() const;

  /// Absolute value.
  Rational abs() const { return Num < 0 ? -*this : *this; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator<=(const Rational &RHS) const { return !(RHS < *this); }
  bool operator>=(const Rational &RHS) const { return !(*this < RHS); }

  /// Renders as "n" for integers, "n/d" otherwise.
  std::string str() const;

private:
  int64_t Num;
  int64_t Den;
};

std::ostream &operator<<(std::ostream &OS, const Rational &R);

/// Greatest common divisor of |A| and |B|; gcd(0,0) == 0.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple of |A| and |B|; checked for overflow.
int64_t lcm64(int64_t A, int64_t B);

} // namespace alp

#endif // ALP_LINALG_RATIONAL_H
