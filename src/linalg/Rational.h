//===- linalg/Rational.h - Exact rational numbers ---------------*- C++ -*-===//
///
/// \file
/// Exact rational arithmetic over checked 64-bit integers. All decomposition
/// mathematics in the library (kernels, spans, orientations) is performed
/// over Q so that results such as ker D = span{(1,-1)} are exact.
///
/// Intermediate products are computed in 128-bit arithmetic; a result whose
/// reduced numerator or denominator does not fit in 64 bits throws
/// AlpException(RationalOverflow), which pipeline boundaries catch and
/// convert into a degraded-but-sound answer (docs/ROBUSTNESS.md). The
/// checked* entry points return Expected instead of throwing for callers
/// that want to branch on overflow locally.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_LINALG_RATIONAL_H
#define ALP_LINALG_RATIONAL_H

#include "support/Status.h"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace alp {

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
class Rational {
public:
  /// Zero.
  Rational() : Num(0), Den(1) {}

  /// The integer \p N.
  Rational(int64_t N) : Num(N), Den(1) {} // NOLINT: implicit by design.

  /// The fraction \p N / \p D. \p D must be nonzero.
  Rational(int64_t N, int64_t D);

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isOne() const { return Num == 1 && Den == 1; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }

  /// Integer value; asserts isInteger().
  int64_t asInteger() const;

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// Division; \p RHS must be nonzero.
  Rational operator/(const Rational &RHS) const;

  /// Compound assignment computed in place with the same 128-bit
  /// intermediates (and the same exact results) as the binary operators —
  /// no temporary Rational is materialized. Self-aliasing is safe.
  Rational &operator+=(const Rational &RHS);
  Rational &operator-=(const Rational &RHS) { return *this += -RHS; }
  Rational &operator*=(const Rational &RHS);
  Rational &operator/=(const Rational &RHS) {
    return *this *= RHS.reciprocal();
  }

  /// Multiplicative inverse; *this must be nonzero.
  Rational reciprocal() const;

  /// Absolute value.
  Rational abs() const { return Num < 0 ? -*this : *this; }

  /// Overflow-checked arithmetic: the same exact results as the operators,
  /// but a RationalOverflow Status instead of a thrown AlpException.
  static Expected<Rational> checkedAdd(const Rational &A, const Rational &B);
  static Expected<Rational> checkedSub(const Rational &A, const Rational &B);
  static Expected<Rational> checkedMul(const Rational &A, const Rational &B);
  /// \p B must be nonzero.
  static Expected<Rational> checkedDiv(const Rational &A, const Rational &B);

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator<=(const Rational &RHS) const { return !(RHS < *this); }
  bool operator>=(const Rational &RHS) const { return !(*this < RHS); }

  /// Renders as "n" for integers, "n/d" otherwise.
  std::string str() const;

private:
  int64_t Num;
  int64_t Den;
};

std::ostream &operator<<(std::ostream &OS, const Rational &R);

/// Greatest common divisor of |A| and |B|; gcd(0,0) == 0. Defined for the
/// full int64_t range (including INT64_MIN) except gcd(INT64_MIN, 0) and
/// gcd(0, INT64_MIN), whose magnitude does not fit; those throw
/// AlpException(RationalOverflow).
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple of |A| and |B|; throws
/// AlpException(RationalOverflow) when the result leaves 64 bits.
int64_t lcm64(int64_t A, int64_t B);

/// lcm64 returning a Status instead of throwing.
Expected<int64_t> checkedLcm64(int64_t A, int64_t B);

} // namespace alp

#endif // ALP_LINALG_RATIONAL_H
