//===- linalg/Rational.cpp - Exact rational numbers -----------------------===//

#include "linalg/Rational.h"

#include "support/CheckedInt.h"
#include "support/FailPoint.h"

#include <cassert>
#include <cstdlib>
#include <ostream>
#include <sstream>

using namespace alp;

namespace {

/// Injection site in the arithmetic hot path (every addition and every
/// reducing construction), so any pipeline that does real math hits it.
/// Disarmed cost: one relaxed atomic load.
FailPoint FpRational("linalg.rational");

} // namespace

int64_t alp::gcd64(int64_t A, int64_t B) {
  // Work on unsigned magnitudes so |INT64_MIN| is representable.
  uint64_t UA = A < 0 ? 0 - static_cast<uint64_t>(A) : A;
  uint64_t UB = B < 0 ? 0 - static_cast<uint64_t>(B) : B;
  while (UB != 0) {
    uint64_t T = UA % UB;
    UA = UB;
    UB = T;
  }
  if (UA > static_cast<uint64_t>(INT64_MAX))
    throwOverflow("gcd64");
  return static_cast<int64_t>(UA);
}

namespace {

/// Narrows a 128-bit value to 64 bits; recoverable overflow otherwise.
int64_t narrow(__int128 V) {
  if (V > INT64_MAX || V < INT64_MIN)
    throwOverflow("rational arithmetic");
  return static_cast<int64_t>(V);
}

} // namespace

int64_t alp::lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd64(A, B);
  int64_t L = checkedMul64(A / G, B, "lcm64");
  return L < 0 ? checkedNeg64(L, "lcm64") : L;
}

Expected<int64_t> alp::checkedLcm64(int64_t A, int64_t B) {
  try {
    return lcm64(A, B);
  } catch (const AlpException &E) {
    return E.status();
  }
}

Rational::Rational(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  FpRational.evaluateOrThrow();
  if (D == 1) { // Integer fast path: already reduced and sign-normalized.
    Num = N;
    Den = 1;
    return;
  }
  if (D < 0) {
    N = checkedNeg64(N, "rational numerator");
    D = checkedNeg64(D, "rational denominator");
  }
  int64_t G = gcd64(N, D);
  if (G > 1) {
    N /= G;
    D /= G;
  }
  Num = N;
  Den = D;
}

int64_t Rational::asInteger() const {
  assert(isInteger() && "rational is not an integer");
  return Num;
}

Rational Rational::operator-() const {
  Rational R;
  R.Num = checkedNeg64(Num, "rational negation");
  R.Den = Den;
  return R;
}

Rational Rational::operator+(const Rational &RHS) const {
  FpRational.evaluateOrThrow();
  Rational R;
  // Integer fast path: no multiplies, no reduction.
  if (Den == 1 && RHS.Den == 1) {
    R.Num = narrow(static_cast<__int128>(Num) + RHS.Num);
    return R;
  }
  // a/b + c/d = (a*d + c*b) / (b*d), reduced.
  __int128 N = static_cast<__int128>(Num) * RHS.Den +
               static_cast<__int128>(RHS.Num) * Den;
  __int128 D = static_cast<__int128>(Den) * RHS.Den;
  // Mixed fast path: with one denominator 1 the sum a*d + c over d is
  // already in lowest terms (gcd(c, d) == 1 carries over) unless it
  // cancelled to zero — skip the 128-bit gcd loop.
  if (Den == 1 || RHS.Den == 1) {
    if (N == 0)
      return R;
    R.Num = narrow(N);
    R.Den = narrow(D);
    return R;
  }
  // Reduce in 128 bits before narrowing to avoid spurious overflow.
  __int128 A = N < 0 ? -N : N, B = D;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  if (A > 1) {
    N /= A;
    D /= A;
  }
  // The loop divided out the full gcd (and canonicalized zero to 0/1), so
  // the pair needs no further reduction.
  R.Num = narrow(N);
  R.Den = narrow(D);
  return R;
}

Rational Rational::operator-(const Rational &RHS) const {
  return *this + (-RHS);
}

Rational &Rational::operator+=(const Rational &RHS) {
  FpRational.evaluateOrThrow();
  // Integer fast path: no multiplies, no reduction.
  if (Den == 1 && RHS.Den == 1) {
    Num = narrow(static_cast<__int128>(Num) + RHS.Num);
    return *this;
  }
  __int128 N = static_cast<__int128>(Num) * RHS.Den +
               static_cast<__int128>(RHS.Num) * Den;
  __int128 D = static_cast<__int128>(Den) * RHS.Den;
  if (Den == 1 || RHS.Den == 1) {
    if (N == 0) {
      Num = 0;
      Den = 1;
      return *this;
    }
    int64_t NN = narrow(N), ND = narrow(D);
    Num = NN;
    Den = ND;
    return *this;
  }
  __int128 A = N < 0 ? -N : N, B = D;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  if (A > 1) {
    N /= A;
    D /= A;
  }
  // Narrow both halves before committing so an overflow leaves *this
  // untouched (budgeted callers keep using the system after catching).
  int64_t NN = narrow(N), ND = narrow(D);
  Num = NN;
  Den = ND;
  return *this;
}

Rational Rational::operator*(const Rational &RHS) const {
  Rational R;
  // Integer fast path: nothing to cross-reduce.
  if (Den == 1 && RHS.Den == 1) {
    R.Num = narrow(static_cast<__int128>(Num) * RHS.Num);
    return R;
  }
  // Cross-reduce first to keep intermediates small; a gcd against a
  // denominator of 1 is always 1, so skip it.
  int64_t G1 = RHS.Den == 1 ? 1 : gcd64(Num, RHS.Den);
  int64_t G2 = Den == 1 ? 1 : gcd64(RHS.Num, Den);
  __int128 N = static_cast<__int128>(Num / G1) * (RHS.Num / G2);
  __int128 D = static_cast<__int128>(Den / G2) * (RHS.Den / G1);
  // Cross-reduction leaves the product in lowest terms; only a zero
  // numerator still needs its denominator canonicalized to 1.
  if (N == 0)
    return R;
  R.Num = narrow(N);
  R.Den = narrow(D);
  return R;
}

Rational Rational::operator/(const Rational &RHS) const {
  return *this * RHS.reciprocal();
}

Rational &Rational::operator*=(const Rational &RHS) {
  if (Den == 1 && RHS.Den == 1) {
    Num = narrow(static_cast<__int128>(Num) * RHS.Num);
    return *this;
  }
  int64_t G1 = RHS.Den == 1 ? 1 : gcd64(Num, RHS.Den);
  int64_t G2 = Den == 1 ? 1 : gcd64(RHS.Num, Den);
  __int128 N = static_cast<__int128>(Num / G1) * (RHS.Num / G2);
  __int128 D = static_cast<__int128>(Den / G2) * (RHS.Den / G1);
  if (N == 0) {
    Num = 0;
    Den = 1;
    return *this;
  }
  int64_t NN = narrow(N), ND = narrow(D);
  Num = NN;
  Den = ND;
  return *this;
}

namespace {

template <typename Op>
Expected<Rational> checkedOp(Op &&F) {
  try {
    return F();
  } catch (const AlpException &E) {
    return E.status();
  }
}

} // namespace

Expected<Rational> Rational::checkedAdd(const Rational &A, const Rational &B) {
  return checkedOp([&] { return A + B; });
}

Expected<Rational> Rational::checkedSub(const Rational &A, const Rational &B) {
  return checkedOp([&] { return A - B; });
}

Expected<Rational> Rational::checkedMul(const Rational &A, const Rational &B) {
  return checkedOp([&] { return A * B; });
}

Expected<Rational> Rational::checkedDiv(const Rational &A, const Rational &B) {
  return checkedOp([&] { return A / B; });
}

Rational Rational::reciprocal() const {
  assert(!isZero() && "reciprocal of zero");
  return Rational(Den, Num);
}

bool Rational::operator<(const Rational &RHS) const {
  if (Den == 1 && RHS.Den == 1)
    return Num < RHS.Num;
  // Compare a/b < c/d as a*d < c*b (denominators are positive).
  __int128 L = static_cast<__int128>(Num) * RHS.Den;
  __int128 R = static_cast<__int128>(RHS.Num) * Den;
  return L < R;
}

std::string Rational::str() const {
  std::ostringstream OS;
  OS << Num;
  if (Den != 1)
    OS << '/' << Den;
  return OS.str();
}

std::ostream &alp::operator<<(std::ostream &OS, const Rational &R) {
  return OS << R.str();
}
