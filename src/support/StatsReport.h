//===- support/StatsReport.h - Versioned stats document writer --*- C++ -*-===//
///
/// \file
/// The one writer for the versioned stats JSON document (schema v2) that
/// alpc --stats, the alpd service, alpc --batch, and the perf_* bench
/// harnesses all emit. Before v2 each harness hand-rolled its own header
/// and ad-hoc aggregate shape; v2 unifies them:
///
/// \code{.json}
/// {
///   "alp_stats": {"schema_version": 2, "kind": "compile"},
///   "<field>": <value>, ...             // producer-specific, insertion order
///   "counters": { "dep.pairs": 6, ... },
///   "gauges":   { "sim.cycles": 1234, ... },
///   "spans":    [ {"name": "driver.decompose", "count": 1, "total_ms": 0.85} ]
/// }
/// \endcode
///
/// v1 compatibility: v2 is v1 plus a "kind" discriminator in the header
/// and optional producer fields between the header and the counters
/// section. The counters / gauges / spans sections are byte-identical to
/// v1's layout and always present (empty "{}" / "[]" when the producer
/// has no source for them). Consumers that ignored unknown names — the
/// v1 policy — parse v2 unchanged apart from the version number.
///
/// Determinism: counters are jobs-deterministic (sums commute); gauges
/// and span times are scheduling/wall-clock facts. A producer that
/// promises a jobs-deterministic document (the batch report) simply does
/// not attach a gauge source or a tracer, leaving those sections empty.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_STATSREPORT_H
#define ALP_SUPPORT_STATSREPORT_H

#include <string>
#include <utility>
#include <vector>

namespace alp {

class MetricsRegistry;
class Tracer;

class StatsReport {
public:
  /// \p Kind discriminates the producer ("compile", "batch", "service",
  /// "bench_dependence", ...). Must be a plain identifier-like string; it
  /// is embedded in the header unescaped.
  explicit StatsReport(std::string Kind) : Kind(std::move(Kind)) {}

  /// Adds a producer-specific top-level field rendered between the header
  /// and the counters section, in insertion order. \p RawJson is a
  /// pre-rendered JSON value (number, string with quotes, object, ...).
  void field(const std::string &Name, std::string RawJson);
  void fieldUInt(const std::string &Name, unsigned long long V);
  void fieldDouble(const std::string &Name, double V);
  void fieldBool(const std::string &Name, bool V);
  /// Quotes and escapes \p V as a JSON string.
  void fieldString(const std::string &Name, const std::string &V);

  /// Sources for the three schema sections. Null (the default) renders
  /// the section empty.
  void setCounters(const MetricsRegistry *M) { Counters = M; }
  void setGauges(const MetricsRegistry *M) { Gauges = M; }
  void setSpans(const Tracer *T) { Spans = T; }

  /// Renders the whole document, trailing newline included.
  std::string render() const;

  /// The document header for printf-style writers (the bench harnesses)
  /// that stream bespoke sections after it:
  /// `{\n  "alp_stats": {"schema_version": 2, "kind": "<kind>"},\n`.
  static std::string headerOpen(const std::string &Kind);

  /// Escapes \p S for embedding inside a JSON string literal.
  static std::string escapeJson(const std::string &S);

private:
  std::string Kind;
  std::vector<std::pair<std::string, std::string>> Fields;
  const MetricsRegistry *Counters = nullptr;
  const MetricsRegistry *Gauges = nullptr;
  const Tracer *Spans = nullptr;
};

} // namespace alp

#endif // ALP_SUPPORT_STATSREPORT_H
