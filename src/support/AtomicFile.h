//===- support/AtomicFile.h - Crash-safe artifact writes --------*- C++ -*-===//
///
/// \file
/// Crash-safe file writes for every artifact the toolchain emits (--trace,
/// --stats, bench JSON, chaos reports): the content is written to a
/// sibling temp file (`<path>.tmp.<pid>`) which is fsync'd and then
/// renamed over the destination. rename(2) on POSIX is atomic within a
/// filesystem, so a reader — or a process killed mid-write — observes
/// either the complete old artifact or the complete new one, never a
/// truncated hybrid. tests/kill_mid_write.sh validates exactly that by
/// killing writers at random points.
///
/// The path "-" is NOT handled here; callers that support stdout keep
/// streaming to it directly (a pipe has no rename).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_ATOMICFILE_H
#define ALP_SUPPORT_ATOMICFILE_H

#include "support/Status.h"

#include <string>

namespace alp {

/// Atomically replaces \p Path with \p Content (temp file + fsync +
/// rename). On error (open, write, or rename failure) returns an
/// InvalidInput Status naming the path and leaves any previous file at
/// \p Path untouched; the temp file is cleaned up best-effort. Never
/// throws — an "io.write" fault injection also comes back as a Status.
Status writeFileAtomic(const std::string &Path, const std::string &Content);

} // namespace alp

#endif // ALP_SUPPORT_ATOMICFILE_H
