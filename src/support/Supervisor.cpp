//===- support/Supervisor.cpp - Supervised parallel task driver -----------===//

#include "support/Supervisor.h"

#include "support/FailPoint.h"

#include <cmath>

using namespace alp;

namespace {

/// Supervisor-level fault injection: fires once per supervised task
/// attempt, before the task body runs. Exercises the retry / degradation
/// machinery itself rather than any one stage.
FailPoint FpDriverTask("driver.task");

bool looksLikeDeadline(const Status &S) {
  if (S.code() != StatusCode::BudgetExceeded)
    return false;
  const std::string &C = S.context();
  return C.find("deadline") != std::string::npos ||
         C.find("cancelled") != std::string::npos;
}

} // namespace

Supervisor::Supervisor(ThreadPool *Pool, const ResourceBudget *BudgetTemplate,
                       SupervisorOptions Opts)
    : Pool(Pool), BudgetTemplate(BudgetTemplate), Opts(std::move(Opts)) {
  if (this->Opts.MaxAttempts == 0)
    this->Opts.MaxAttempts = 1;
  if (!(this->Opts.RetryBudgetFactor > 0.0) ||
      this->Opts.RetryBudgetFactor > 1.0)
    this->Opts.RetryBudgetFactor = 0.5;
}

SupervisedOutcome Supervisor::runOne(size_t I, const Task &T) const {
  SupervisedOutcome O;
  const ResourceBudget Base =
      BudgetTemplate ? ResourceBudget(*BudgetTemplate) : ResourceBudget();
  for (unsigned Attempt = 0; Attempt < Opts.MaxAttempts; ++Attempt) {
    // The first attempt runs on a plain copy of the template — consumed
    // counters included, exactly like the pre-supervisor per-task copies.
    // Retries run on fresh counters with every finite limit shrunk, so a
    // retry is strictly cheaper than the attempt that failed.
    ResourceBudget B =
        Attempt == 0
            ? Base
            : Base.degradedCopy(
                  std::pow(Opts.RetryBudgetFactor, static_cast<double>(Attempt)));
    if (Opts.TaskDeadlineMs) {
      auto Limit = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(Opts.TaskDeadlineMs);
      // Tighten, never extend, an already-armed pipeline deadline.
      if (!B.Deadline || Limit < *B.Deadline)
        B.Deadline = Limit;
    }
    B.CancelFlag = &Cancel;
    ++O.Attempts;
    Status S;
    try {
      FpDriverTask.evaluateOrThrow(&B);
      S = T(I, &B);
    } catch (...) {
      S = statusFromCurrentException();
    }
    if (S.isOk()) {
      O.Result = Status::ok();
      O.DeadlineHit = false;
      return O;
    }
    O.Result = S;
    O.DeadlineHit = looksLikeDeadline(S);
    // A cancelled supervisor must not burn retries racing the flag.
    if (cancelRequested())
      break;
  }
  return O;
}

std::vector<SupervisedOutcome> Supervisor::run(size_t N, const Task &T) {
  std::vector<SupervisedOutcome> Outcomes(N);
  auto Body = [&](size_t I) { Outcomes[I] = runOne(I, T); };
  // runOne never lets an exception escape, so every per-index Status from
  // the pool is Ok; the interesting results live in Outcomes.
  if (Pool) {
    Pool->parallelForStatus(N, Body);
  } else {
    for (size_t I = 0; I != N; ++I)
      Body(I);
  }

  uint64_t Retried = 0, Degraded = 0, DeadlineHits = 0;
  for (const SupervisedOutcome &O : Outcomes) {
    Retried += O.retried() ? 1 : 0;
    Degraded += O.degraded() ? 1 : 0;
    DeadlineHits += O.DeadlineHit ? 1 : 0;
  }
  // Counters are index-order aggregates, so they are byte-identical for
  // every --jobs value (see the determinism caveat in the header).
  Opts.Observe.count("driver.tasks_supervised", N);
  Opts.Observe.count("driver.tasks_retried", Retried);
  Opts.Observe.count("driver.tasks_degraded", Degraded);
  Opts.Observe.count("driver.deadline_hits", DeadlineHits);
  return Outcomes;
}

std::string Supervisor::describe(const SupervisedOutcome &O, size_t Index) {
  if (O.ok() && !O.retried())
    return "";
  std::string What = O.ok() ? "recovered" : "degraded";
  std::string Line = "task " + std::to_string(Index) + " " + What + " after " +
                     std::to_string(O.Attempts) + " attempt" +
                     (O.Attempts == 1 ? "" : "s");
  if (!O.ok())
    Line += ": " + O.Result.str();
  return Line;
}
