//===- support/Diagnostics.h - Error reporting helpers ----------*- C++ -*-===//
//
// Part of the alp project: a reproduction of Anderson & Lam, "Global
// Optimizations for Parallelism and Locality on Scalable Parallel Machines"
// (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight diagnostics: fatal errors for broken invariants and a
/// diagnostic sink used by the front end to accumulate user-visible errors
/// with source locations.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_DIAGNOSTICS_H
#define ALP_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace alp {

/// Prints \p Message to stderr and aborts. Used for violated invariants that
/// indicate a bug in the library itself, never for malformed user input.
[[noreturn]] void reportFatalError(const std::string &Message);

/// A source position within DSL text, 1-based.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// A secondary location attached to a diagnostic: "the other access is
/// here", "declared here".
struct DiagNote {
  SourceLoc Loc;
  std::string Message;
};

/// One user-visible diagnostic message. Front-end diagnostics fill only
/// the kind/location/message triple; analysis (lint) diagnostics also
/// carry a stable pass id, a chain of secondary-location notes, and an
/// optional fix-it suggestion, all of which the structured emitters
/// (text / JSON / SARIF, analysis/Lint.h) render.
struct Diagnostic {
  enum class Kind { Error, Warning, Note, Remark };

  Kind DiagKind = Kind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Stable identifier of the producing analysis, e.g.
  /// "race.forall-carried". Empty for front-end diagnostics.
  std::string PassId;

  /// Secondary locations, rendered as note lines after the diagnostic.
  std::vector<DiagNote> Notes;

  /// Optional replacement suggestion ("remove the declaration of 'A'").
  std::string FixIt;

  /// Renders the main line only ("3:4: error: ... [pass.id]"); the pass id
  /// suffix appears only when PassId is set, so front-end output is
  /// unchanged. Notes and fix-its are rendered by strWithNotes().
  std::string str() const;

  /// Renders the main line plus one line per note and fix-it.
  std::string strWithNotes() const;
};

const char *diagnosticKindName(Diagnostic::Kind K);

/// Accumulates diagnostics produced while processing one input program.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, const std::string &Message) {
    push(Diagnostic::Kind::Error, Loc, Message);
    ++NumErrors;
  }
  void warning(SourceLoc Loc, const std::string &Message) {
    push(Diagnostic::Kind::Warning, Loc, Message);
  }
  void note(SourceLoc Loc, const std::string &Message) {
    push(Diagnostic::Kind::Note, Loc, Message);
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every accumulated diagnostic, one per line.
  std::string str() const;

private:
  void push(Diagnostic::Kind K, SourceLoc Loc, const std::string &Message) {
    Diagnostic D;
    D.DiagKind = K;
    D.Loc = Loc;
    D.Message = Message;
    Diags.push_back(std::move(D));
  }

  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace alp

#endif // ALP_SUPPORT_DIAGNOSTICS_H
