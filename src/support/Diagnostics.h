//===- support/Diagnostics.h - Error reporting helpers ----------*- C++ -*-===//
//
// Part of the alp project: a reproduction of Anderson & Lam, "Global
// Optimizations for Parallelism and Locality on Scalable Parallel Machines"
// (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight diagnostics: fatal errors for broken invariants and a
/// diagnostic sink used by the front end to accumulate user-visible errors
/// with source locations.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_DIAGNOSTICS_H
#define ALP_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace alp {

/// Prints \p Message to stderr and aborts. Used for violated invariants that
/// indicate a bug in the library itself, never for malformed user input.
[[noreturn]] void reportFatalError(const std::string &Message);

/// A source position within DSL text, 1-based.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// One user-visible diagnostic message.
struct Diagnostic {
  enum class Kind { Error, Warning, Note };

  Kind DiagKind = Kind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics produced while processing one input program.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({Diagnostic::Kind::Error, Loc, Message});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({Diagnostic::Kind::Warning, Loc, Message});
  }
  void note(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({Diagnostic::Kind::Note, Loc, Message});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every accumulated diagnostic, one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace alp

#endif // ALP_SUPPORT_DIAGNOSTICS_H
