//===- support/Metrics.h - Unified metrics registry -------------*- C++ -*-===//
///
/// \file
/// The single sink for every counter and gauge the pipeline reports. The
/// bespoke stat structs that grew per subsystem (DependenceTierStats,
/// DependenceCacheStats, SimResult, ResourceBudget's consumed fields)
/// remain as thin snapshot views, but all *reporting* flows through a
/// MetricsRegistry: each struct publishes into it under a documented name
/// taxonomy (docs/OBSERVABILITY.md), and the stats emitters render only
/// the registry.
///
/// Two kinds of metric:
///
///  * counters — monotonic uint64 totals. Every published counter is
///    *deterministic*: adds commute and the instrumented code charges the
///    same totals for every --jobs value (per-task budget copies, the
///    merge-order cache ledger), so counter snapshots are byte-identical
///    across job counts.
///  * gauges — point-in-time doubles (wall times, cache occupancy, the
///    cache's raw lifetime hit/miss totals). Gauges may legitimately vary
///    run to run or with thread scheduling and are therefore kept out of
///    determinism comparisons.
///
/// Thread-safety: all operations take an internal mutex; workers of the
/// parallel analysis driver may publish concurrently. Registries are
/// plumbed by pointer through TraceContext (support/Trace.h); a null
/// registry disables collection at near-zero cost.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_METRICS_H
#define ALP_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace alp {

/// Named monotonic counters and point-in-time gauges.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Adds \p Delta to the counter \p Name (creating it at zero).
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Sets the gauge \p Name to \p Value (last write wins).
  void setGauge(const std::string &Name, double Value);

  /// Current value of a counter (0 when never touched).
  uint64_t counter(const std::string &Name) const;

  /// Current value of a gauge (0.0 when never touched).
  double gauge(const std::string &Name) const;

  /// Sorted snapshots (std::map iteration order is the name order, so a
  /// rendered snapshot is deterministic).
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, double> gauges() const;

  /// The counters section as a canonical JSON object — the byte-identical-
  /// across-jobs payload the determinism tests compare.
  std::string renderCountersJson() const;

  /// Drops every counter and gauge.
  void clear();

private:
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
};

} // namespace alp

#endif // ALP_SUPPORT_METRICS_H
