//===- support/AtomicFile.cpp - Crash-safe artifact writes ----------------===//

#include "support/AtomicFile.h"

#include "support/FailPoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

using namespace alp;

namespace {

/// Fired after the temp file is written but before the rename: the
/// classic crash window an atomic write must make invisible.
FailPoint FpIoWrite("io.write");

Status ioError(const std::string &Op, const std::string &Path) {
  return Status::error(StatusCode::InvalidInput,
                       Op + " '" + Path + "': " + std::strerror(errno));
}

} // namespace

Status alp::writeFileAtomic(const std::string &Path,
                            const std::string &Content) {
#if defined(_WIN32)
  const std::string Tmp = Path + ".tmp";
#else
  const std::string Tmp = Path + ".tmp." + std::to_string(getpid());
#endif
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return ioError("cannot open", Tmp);
  bool Ok = Content.empty() ||
            std::fwrite(Content.data(), 1, Content.size(), F) == Content.size();
  Ok = std::fflush(F) == 0 && Ok;
#if !defined(_WIN32)
  // Flush to stable storage before the rename publishes the file, so a
  // crash cannot publish a name pointing at unwritten data.
  Ok = fsync(fileno(F)) == 0 && Ok;
#endif
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return ioError("cannot write", Tmp);
  }

  try {
    FpIoWrite.evaluateOrThrow();
  } catch (...) {
    std::remove(Tmp.c_str());
    return statusFromCurrentException();
  }

  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return ioError("cannot rename into", Path);
  }
  return Status::ok();
}
