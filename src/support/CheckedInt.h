//===- support/CheckedInt.h - Overflow-checked 64-bit helpers ---*- C++ -*-===//
///
/// \file
/// Overflow-checked int64_t arithmetic built on the __builtin_*_overflow
/// intrinsics. On overflow these throw AlpException(RationalOverflow); the
/// exact-arithmetic layers (Rational, IntMatrix, Hermite normal form) use
/// them so that a 64-bit blowup surfaces as a recoverable Status at the
/// pipeline boundary instead of silent UB or an abort.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_CHECKEDINT_H
#define ALP_SUPPORT_CHECKEDINT_H

#include "support/Status.h"

#include <cstdint>

namespace alp {

[[noreturn]] inline void throwOverflow(const char *Op) {
  throw AlpException(StatusCode::RationalOverflow,
                     std::string("64-bit overflow in ") + Op);
}

inline int64_t checkedAdd64(int64_t A, int64_t B, const char *Op = "add") {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    throwOverflow(Op);
  return R;
}

inline int64_t checkedSub64(int64_t A, int64_t B, const char *Op = "sub") {
  int64_t R;
  if (__builtin_sub_overflow(A, B, &R))
    throwOverflow(Op);
  return R;
}

inline int64_t checkedMul64(int64_t A, int64_t B, const char *Op = "mul") {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    throwOverflow(Op);
  return R;
}

inline int64_t checkedNeg64(int64_t A, const char *Op = "negate") {
  return checkedSub64(0, A, Op);
}

} // namespace alp

#endif // ALP_SUPPORT_CHECKEDINT_H
