//===- support/Budget.h - Resource budgets for exact solvers ----*- C++ -*-===//
///
/// \file
/// The paper's algorithms are exact and worst-case exponential
/// (Fourier-Motzkin doubles constraints per elimination in the worst case;
/// the partition fixpoint is bounded only by dimension growth). A
/// ResourceBudget bounds that work so the pipeline degrades to a
/// conservative answer instead of hanging: dependence tests answer
/// "dependence assumed", partition solves fall back to the trivial
/// (sequential / replicated) decomposition.
///
/// A budget is plumbed by pointer; nullptr everywhere means unlimited.
/// Limits of 0 also mean unlimited, so a default-constructed budget with
/// only one knob set constrains exactly that resource. Counters live in
/// the budget itself: one budget instance caps one pipeline run
/// cumulatively across all its solver invocations.
///
/// Thread-safety: the consumed counters are atomics, so one budget may be
/// charged from several workers without data races. The parallel analysis
/// driver nevertheless hands each task its own *copy* (per-worker step
/// counters) so that which task degrades first cannot depend on thread
/// scheduling; the wall-clock Deadline is an absolute time point and is
/// therefore shared by value across those copies. Arm the deadline
/// (setDeadlineIn) before fanning copies out, never concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_BUDGET_H
#define ALP_SUPPORT_BUDGET_H

#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

namespace alp {

/// Work limits plus consumed-so-far counters. Copyable; copying resets
/// nothing, so copy before a run if you want fresh counters.
struct ResourceBudget {
  /// Maximum live constraints in any one Fourier-Motzkin system (caps the
  /// per-elimination quadratic blowup). 0 = unlimited.
  uint64_t MaxFMConstraints = 0;
  /// Cumulative FM elimination steps (lower x upper pair combinations).
  /// 0 = unlimited.
  uint64_t MaxEliminationSteps = 0;
  /// Cumulative solver worklist iterations (partition fixpoint updates,
  /// orientation propagation). 0 = unlimited.
  uint64_t MaxSolverIterations = 0;
  /// Absolute wall-clock deadline. Unset = none.
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  /// Cooperative cancellation token (nullptr = none): the supervised
  /// parallel driver points task-budget copies at one flag so a task that
  /// is past its deadline, or a shutting-down supervisor, can stop every
  /// in-flight solver at its next budget charge. Checked wherever the
  /// deadline is.
  const std::atomic<bool> *CancelFlag = nullptr;

  /// Consumed counters (atomic: see the thread-safety note above).
  std::atomic<uint64_t> UsedEliminationSteps{0};
  std::atomic<uint64_t> UsedSolverIterations{0};

  ResourceBudget() = default;
  ResourceBudget(const ResourceBudget &O)
      : MaxFMConstraints(O.MaxFMConstraints),
        MaxEliminationSteps(O.MaxEliminationSteps),
        MaxSolverIterations(O.MaxSolverIterations), Deadline(O.Deadline),
        CancelFlag(O.CancelFlag),
        UsedEliminationSteps(
            O.UsedEliminationSteps.load(std::memory_order_relaxed)),
        UsedSolverIterations(
            O.UsedSolverIterations.load(std::memory_order_relaxed)) {}
  ResourceBudget &operator=(const ResourceBudget &O) {
    MaxFMConstraints = O.MaxFMConstraints;
    MaxEliminationSteps = O.MaxEliminationSteps;
    MaxSolverIterations = O.MaxSolverIterations;
    Deadline = O.Deadline;
    CancelFlag = O.CancelFlag;
    UsedEliminationSteps.store(
        O.UsedEliminationSteps.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    UsedSolverIterations.store(
        O.UsedSolverIterations.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// A budget sized for interactive use: generous enough that every
  /// realistic affine nest fits, small enough that adversarial systems
  /// give up in well under a second.
  static ResourceBudget defaults() {
    ResourceBudget B;
    B.MaxFMConstraints = 4096;
    B.MaxEliminationSteps = 1u << 22;
    B.MaxSolverIterations = 1u << 20;
    return B;
  }

  /// Arms the wall-clock deadline \p Limit from now.
  void setDeadlineIn(std::chrono::milliseconds Limit) {
    Deadline = std::chrono::steady_clock::now() + Limit;
  }

  /// Charges \p N elimination steps; BudgetExceeded once the total passes
  /// the limit (or the deadline has passed).
  Status chargeEliminationSteps(uint64_t N) {
    uint64_t Total =
        UsedEliminationSteps.fetch_add(N, std::memory_order_relaxed) + N;
    if (MaxEliminationSteps && Total > MaxEliminationSteps)
      return Status::error(StatusCode::BudgetExceeded,
                           "Fourier-Motzkin elimination step limit (" +
                               std::to_string(MaxEliminationSteps) +
                               ") exhausted");
    return checkDeadline();
  }

  /// Charges one solver worklist iteration.
  Status chargeSolverIteration() {
    uint64_t Total =
        UsedSolverIterations.fetch_add(1, std::memory_order_relaxed) + 1;
    if (MaxSolverIterations && Total > MaxSolverIterations)
      return Status::error(StatusCode::BudgetExceeded,
                           "solver iteration limit (" +
                               std::to_string(MaxSolverIterations) +
                               ") exhausted");
    return checkDeadline();
  }

  /// Checks a constraint-system size against MaxFMConstraints.
  Status checkConstraintCount(uint64_t Count) const {
    if (MaxFMConstraints && Count > MaxFMConstraints)
      return Status::error(StatusCode::BudgetExceeded,
                           "constraint count " + std::to_string(Count) +
                               " exceeds limit " +
                               std::to_string(MaxFMConstraints));
    return Status::ok();
  }

  /// BudgetExceeded once the wall-clock deadline has passed or the
  /// cancellation token was raised.
  Status checkDeadline() const {
    if (CancelFlag && CancelFlag->load(std::memory_order_relaxed))
      return Status::error(StatusCode::BudgetExceeded, "task cancelled");
    if (Deadline && std::chrono::steady_clock::now() > *Deadline)
      return Status::error(StatusCode::BudgetExceeded,
                           "wall-clock deadline exceeded");
    return Status::ok();
  }

  /// A copy with fresh consumed counters and every finite limit scaled by
  /// \p Factor (floored at 1): the supervised driver retries a failed
  /// task on such a degraded budget so a retry is strictly cheaper than
  /// the attempt that failed. Unlimited (0) knobs stay unlimited.
  ResourceBudget degradedCopy(double Factor) const {
    ResourceBudget B(*this);
    B.UsedEliminationSteps.store(0, std::memory_order_relaxed);
    B.UsedSolverIterations.store(0, std::memory_order_relaxed);
    auto Scale = [Factor](uint64_t Limit) -> uint64_t {
      if (!Limit)
        return 0;
      auto Scaled = static_cast<uint64_t>(static_cast<double>(Limit) * Factor);
      return Scaled ? Scaled : 1;
    };
    B.MaxFMConstraints = Scale(MaxFMConstraints);
    B.MaxEliminationSteps = Scale(MaxEliminationSteps);
    B.MaxSolverIterations = Scale(MaxSolverIterations);
    return B;
  }
};

} // namespace alp

#endif // ALP_SUPPORT_BUDGET_H
