//===- support/ThreadPool.h - Work-queue thread pool ------------*- C++ -*-===//
///
/// \file
/// A small work-queue thread pool for the parallel analysis driver — no
/// external dependencies, just std::thread. The driver fans independent
/// compile-time work (dependence pairs, per-nest partition solves) across
/// cores with parallelFor and merges results in deterministic index order,
/// so parallel output is byte-identical to serial output.
///
/// Determinism contract: parallelFor(N, Fn) invokes Fn exactly once for
/// every index in [0, N); Fn(i) must write only to per-index state (or to
/// internally synchronized shared state whose observable result is
/// order-independent, e.g. the DependenceCache). The pool never reorders
/// the *merge* — callers combine per-index results by index — so the number
/// of worker threads cannot change the answer, only the wall time.
///
/// A pool of concurrency C spawns C-1 workers; the calling thread
/// participates in its own parallelFor sections. Nested parallelFor calls
/// issued while another section is active on the same pool degrade to
/// serial execution in the caller (no deadlock, no oversubscription).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_THREADPOOL_H
#define ALP_SUPPORT_THREADPOOL_H

#include "support/Status.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alp {

/// A fixed-size work-queue thread pool.
class ThreadPool {
public:
  /// Creates a pool of concurrency \p Threads (calling thread included);
  /// 0 means hardwareConcurrency(). A pool of concurrency 1 spawns no
  /// worker threads: parallelFor then runs serially but with the exact
  /// same per-index task semantics, so results match any thread count.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Concurrency level (workers + the participating caller).
  unsigned threadCount() const { return Concurrency; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareConcurrency();

  /// Runs Fn(0..N-1), each index exactly once, fanned across the pool; the
  /// calling thread participates. Blocks until every index has completed.
  /// Exceptions thrown by Fn are captured per index and the lowest-index
  /// one is rethrown after the section completes (deterministic regardless
  /// of scheduling). Nested sections run serially in the caller.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// parallelFor that never throws: every exception Fn(i) leaks is
  /// captured at index i and converted to a structured Status
  /// (statusFromCurrentException — AlpException keeps its payload,
  /// bad_alloc and unknown exceptions get explicit contexts). Returns one
  /// Status per index, Ok where Fn completed; callers surface failures in
  /// their merged result instead of unwinding past it. The supervised
  /// driver (support/Supervisor.h) builds its retry loop on this.
  std::vector<Status> parallelForStatus(size_t N,
                                        const std::function<void(size_t)> &Fn);

private:
  struct Section;

  void workerLoop();
  void runSection(const std::shared_ptr<Section> &Sec);

  unsigned Concurrency = 1;
  std::vector<std::thread> Workers;
  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
  /// Guards against nested sections deadlocking on the shared queue.
  std::atomic<unsigned> ActiveSections{0};
};

/// parallelFor through a possibly-null pool: a null pool runs the same
/// tasks serially in index order, preserving identical results.
void parallelForN(ThreadPool *Pool, size_t N,
                  const std::function<void(size_t)> &Fn);

} // namespace alp

#endif // ALP_SUPPORT_THREADPOOL_H
