//===- support/CliFlags.cpp - Table-driven command-line parsing --------------===//

#include "support/CliFlags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace alp;

bool alp::parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End == S.c_str() || *End != '\0')
    return false;
  Out = V;
  return true;
}

void alp::printUsage(const CliParser &P) {
  std::fprintf(stderr, "usage: %s %s  (see %s --help)\n", P.Prog, P.Operands,
               P.Prog);
}

void alp::printHelp(const CliParser &P) {
  std::printf("usage: %s %s\n\n"
              "%s\n\n"
              "Value flags accept both --flag=value and --flag value.\n\n"
              "options:\n",
              P.Prog, P.Operands, P.Overview);
  size_t Width = 0;
  auto Rendered = [](const FlagSpec &F) {
    std::string S = F.Name;
    if (F.Arg)
      S += std::string("=<") + F.Arg + ">";
    return S;
  };
  for (const FlagSpec &F : P.Table)
    Width = std::max(Width, Rendered(F).size());
  for (const FlagSpec &F : P.Table)
    std::printf("  %-*s  %s\n", static_cast<int>(Width), Rendered(F).c_str(),
                F.Help);
}

CliAction alp::parseCommandLine(const CliParser &P, int argc, char **argv,
                                std::vector<std::string> &Positionals) {
  for (int I = 1; I != argc; ++I) {
    std::string A = argv[I];
    if (A == "--help" || A == "-h") {
      printHelp(P);
      return CliAction::ExitSuccess;
    }
    if (A.rfind("--", 0) != 0) {
      if (!A.empty() && A[0] == '-') {
        std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
        printUsage(P);
        return CliAction::ExitUsage;
      }
      Positionals.push_back(A);
      continue;
    }
    std::string Name = A, Value;
    bool HasValue = false;
    if (size_t Eq = A.find('='); Eq != std::string::npos) {
      Name = A.substr(0, Eq);
      Value = A.substr(Eq + 1);
      HasValue = true;
    }
    const FlagSpec *Spec = nullptr;
    for (const FlagSpec &F : P.Table)
      if (Name == F.Name) {
        Spec = &F;
        break;
      }
    if (!Spec) {
      std::fprintf(stderr, "unknown option '%s'\n", Name.c_str());
      printUsage(P);
      return CliAction::ExitUsage;
    }
    if (!Spec->Arg) {
      if (HasValue) {
        std::fprintf(stderr, "option '%s' takes no value\n", Name.c_str());
        printUsage(P);
        return CliAction::ExitUsage;
      }
    } else if (!HasValue) {
      if (I + 1 == argc) {
        std::fprintf(stderr, "option '%s' requires a value\n", Name.c_str());
        printUsage(P);
        return CliAction::ExitUsage;
      }
      Value = argv[++I];
    }
    if (!Spec->Apply(Value)) {
      std::fprintf(stderr, "invalid value '%s' for option '%s'\n",
                   Value.c_str(), Name.c_str());
      printUsage(P);
      return CliAction::ExitUsage;
    }
  }
  return CliAction::Proceed;
}
