//===- support/CliFlags.h - Table-driven command-line parsing ---*- C++ -*-===//
///
/// \file
/// The table-driven flag parser that grew inside tools/alpc.cpp, promoted
/// to a library so every executable (alpc, alp_fuzz, alp_chaos, alpd, the
/// bench harnesses) parses the same way: one FlagSpec table drives
/// parsing, --help generation, and unknown-flag errors. Every value-taking
/// flag accepts both "--flag=value" and "--flag value".
///
/// A tool declares its table and calls parseCommandLine:
///
///   CliParser P{argv[0], "<file.alp> [options]", "Compiles ...", Table};
///   std::vector<std::string> Positionals;
///   switch (parseCommandLine(P, argc, argv, Positionals)) {
///   case CliAction::Proceed:     break;
///   case CliAction::ExitSuccess: return 0;  // --help was printed
///   case CliAction::ExitUsage:   return 2;  // error already on stderr
///   }
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_CLIFLAGS_H
#define ALP_SUPPORT_CLIFLAGS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace alp {

/// One command-line flag: parsing, help text, and the action it performs.
/// Arg == nullptr marks a boolean flag ("--flag"); otherwise the flag
/// takes a value ("--flag=<Arg>" or "--flag <Arg>"). Apply returns false
/// when the value is malformed (usage error, exit 2).
struct FlagSpec {
  const char *Name; ///< Including the leading "--".
  const char *Arg;  ///< Placeholder for help ("N", "file"), or nullptr.
  const char *Help;
  std::function<bool(const std::string &)> Apply;
};

/// Strict base-10 unsigned parse; rejects signs, junk, and overflow.
bool parseU64(const std::string &S, uint64_t &Out);

/// A tool's command-line description: program name, operand synopsis for
/// the usage line, a prose overview for --help, and the flag table.
struct CliParser {
  const char *Prog;     ///< argv[0].
  const char *Operands; ///< e.g. "<file.alp> [options]".
  const char *Overview; ///< --help preamble prose (may be multi-line).
  const std::vector<FlagSpec> &Table;
};

/// The one-line usage hint, to stderr:
///   "usage: <prog> <operands>  (see <prog> --help)".
void printUsage(const CliParser &P);

/// Full --help text (usage, overview, one aligned row per flag), to
/// stdout.
void printHelp(const CliParser &P);

/// What the caller should do after parsing.
enum class CliAction {
  Proceed,     ///< Flags applied; positionals collected.
  ExitSuccess, ///< --help/-h was printed; exit 0.
  ExitUsage,   ///< Parse error; message + usage already on stderr; exit 2.
};

/// Walks argv, applying table flags in order. Arguments that do not start
/// with "--" and are not "-h" are appended to \p Positionals, except that
/// any other argument starting with '-' is an unknown-option error.
/// "--help"/"-h" prints help and returns ExitSuccess at the point it is
/// seen (earlier errors still win).
CliAction parseCommandLine(const CliParser &P, int argc, char **argv,
                           std::vector<std::string> &Positionals);

} // namespace alp

#endif // ALP_SUPPORT_CLIFLAGS_H
