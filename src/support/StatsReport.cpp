//===- support/StatsReport.cpp - Versioned stats document writer ----------===//

#include "support/StatsReport.h"

#include "support/Trace.h"

#include <cstdio>
#include <map>

using namespace alp;

void StatsReport::field(const std::string &Name, std::string RawJson) {
  Fields.emplace_back(Name, std::move(RawJson));
}

void StatsReport::fieldUInt(const std::string &Name, unsigned long long V) {
  field(Name, std::to_string(V));
}

void StatsReport::fieldDouble(const std::string &Name, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  field(Name, Buf);
}

void StatsReport::fieldBool(const std::string &Name, bool V) {
  field(Name, V ? "true" : "false");
}

void StatsReport::fieldString(const std::string &Name, const std::string &V) {
  field(Name, "\"" + escapeJson(V) + "\"");
}

std::string StatsReport::escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string StatsReport::headerOpen(const std::string &Kind) {
  return "{\n  \"alp_stats\": {\"schema_version\": " +
         std::to_string(StatsSchemaVersion) + ", \"kind\": \"" + Kind +
         "\"},\n";
}

std::string StatsReport::render() const {
  std::string Out = headerOpen(Kind);

  for (const auto &[Name, Raw] : Fields)
    Out += "  \"" + Name + "\": " + Raw + ",\n";

  // Counters: the deterministic section (byte-identical for every --jobs).
  static const MetricsRegistry EmptyRegistry;
  const MetricsRegistry &CR = Counters ? *Counters : EmptyRegistry;
  Out += "  \"counters\": " + CR.renderCountersJson() + ",\n";

  // Gauges: point-in-time values; may vary with scheduling and wall time.
  Out += "  \"gauges\": {";
  {
    const MetricsRegistry &GR = Gauges ? *Gauges : EmptyRegistry;
    bool First = true;
    for (const auto &[Name, Value] : GR.gauges()) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
      Out += First ? "\n" : ",\n";
      Out += "    \"" + Name + "\": " + Buf;
      First = false;
    }
    Out += First ? "}" : "\n  }";
  }
  Out += ",\n";

  // Span aggregates by name: count and total wall milliseconds.
  Out += "  \"spans\": [";
  if (Spans) {
    struct Agg {
      uint64_t Count = 0;
      uint64_t TotalNs = 0;
    };
    std::map<std::string, Agg> ByName;
    for (const Tracer::Event &E : Spans->events()) {
      Agg &A = ByName[E.Name];
      ++A.Count;
      A.TotalNs += E.DurNs;
    }
    bool First = true;
    for (const auto &[Name, A] : ByName) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf),
                    "{\"name\": \"%s\", \"count\": %llu, \"total_ms\": %.6f}",
                    Name.c_str(), static_cast<unsigned long long>(A.Count),
                    static_cast<double>(A.TotalNs) / 1e6);
      Out += First ? "\n    " : ",\n    ";
      Out += Buf;
      First = false;
    }
    if (!First)
      Out += "\n  ";
  }
  Out += "]\n}\n";
  return Out;
}

std::string alp::renderStatsJson(const MetricsRegistry *Metrics,
                                 const Tracer *Trace) {
  StatsReport R("compile");
  R.setCounters(Metrics);
  R.setGauges(Metrics);
  R.setSpans(Trace);
  return R.render();
}
