//===- support/FailPoint.cpp - Deterministic fault injection ---------------===//

#include "support/FailPoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>

using namespace alp;

std::atomic<uint64_t> FailPoint::AnyArmed{0};

namespace {

/// Registration happens from static initializers across translation
/// units, so the backing store must be constant-initialized and guarded.
struct RegistryState {
  std::mutex Mutex;
  std::vector<FailPoint *> Points;
  std::atomic<uint64_t> Triggered{0};
};

RegistryState &state() {
  static RegistryState S;
  return S;
}

} // namespace

const char *alp::failPointModeName(FailPointMode Mode) {
  switch (Mode) {
  case FailPointMode::Off:
    return nullptr;
  case FailPointMode::Throw:
    return "throw";
  case FailPointMode::Oom:
    return "oom";
  case FailPointMode::StatusError:
    return "status-error";
  case FailPointMode::BudgetExhaust:
    return "budget-exhaust";
  case FailPointMode::Delay:
    return "delay";
  }
  return nullptr;
}

const std::vector<FailPointMode> &alp::allFailPointModes() {
  static const std::vector<FailPointMode> Modes = {
      FailPointMode::Throw, FailPointMode::Oom, FailPointMode::StatusError,
      FailPointMode::BudgetExhaust, FailPointMode::Delay};
  return Modes;
}

//===----------------------------------------------------------------------===//
// FailPoint
//===----------------------------------------------------------------------===//

FailPoint::FailPoint(const char *Name) : Name(Name) {
  FailPointRegistry::instance().registerPoint(this);
}

void FailPoint::arm(FailPointMode M, int64_t Rem, uint32_t Ms) {
  bool WasArmed =
      Mode.load(std::memory_order_relaxed) != static_cast<int>(FailPointMode::Off);
  Remaining.store(Rem, std::memory_order_relaxed);
  DelayMs.store(Ms, std::memory_order_relaxed);
  Mode.store(static_cast<int>(M), std::memory_order_release);
  if (!WasArmed && M != FailPointMode::Off)
    AnyArmed.fetch_add(1, std::memory_order_release);
  else if (WasArmed && M == FailPointMode::Off)
    AnyArmed.fetch_sub(1, std::memory_order_release);
}

void FailPoint::disarm() { arm(FailPointMode::Off, -1, 20); }

Status FailPoint::evaluateSlow(ResourceBudget *Budget) {
  auto M = static_cast<FailPointMode>(Mode.load(std::memory_order_acquire));
  if (M == FailPointMode::Off)
    return Status::ok();
  // Consume one trigger; a bounded count that has run out disarms the
  // site for every later hit.
  int64_t Rem = Remaining.load(std::memory_order_relaxed);
  if (Rem >= 0) {
    if (Rem == 0)
      return Status::ok();
    if (Remaining.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
      Remaining.store(0, std::memory_order_relaxed);
      return Status::ok();
    }
  }
  FailPointRegistry::noteTriggered();
  std::string Where = std::string("failpoint '") + Name + "'";
  switch (M) {
  case FailPointMode::Off:
    return Status::ok();
  case FailPointMode::Throw:
    throw AlpException(StatusCode::FaultInjected, Where + " (throw)");
  case FailPointMode::Oom:
    throw std::bad_alloc();
  case FailPointMode::StatusError:
    return Status::error(StatusCode::FaultInjected, Where);
  case FailPointMode::BudgetExhaust: {
    if (Budget) {
      // Poison the consumed counters past every finite limit so each
      // later charge on this budget also reports exhaustion.
      if (Budget->MaxEliminationSteps)
        Budget->UsedEliminationSteps.store(Budget->MaxEliminationSteps + 1,
                                           std::memory_order_relaxed);
      if (Budget->MaxSolverIterations)
        Budget->UsedSolverIterations.store(Budget->MaxSolverIterations + 1,
                                           std::memory_order_relaxed);
    }
    return Status::error(StatusCode::BudgetExceeded,
                         Where + " exhausted the budget");
  }
  case FailPointMode::Delay:
    std::this_thread::sleep_for(
        std::chrono::milliseconds(DelayMs.load(std::memory_order_relaxed)));
    return Status::ok();
  }
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// FailPointRegistry
//===----------------------------------------------------------------------===//

FailPointRegistry &FailPointRegistry::instance() {
  static FailPointRegistry R;
  return R;
}

void FailPointRegistry::registerPoint(FailPoint *FP) {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Points.push_back(FP);
}

void FailPointRegistry::noteTriggered() {
  state().Triggered.fetch_add(1, std::memory_order_relaxed);
}

uint64_t FailPointRegistry::triggeredCount() const {
  return state().Triggered.load(std::memory_order_relaxed);
}

std::vector<std::string> FailPointRegistry::names() const {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::vector<std::string> Names;
  Names.reserve(S.Points.size());
  for (const FailPoint *FP : S.Points)
    Names.push_back(FP->name());
  std::sort(Names.begin(), Names.end());
  return Names;
}

FailPoint *FailPointRegistry::find(const std::string &Name) const {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (FailPoint *FP : S.Points)
    if (Name == FP->name())
      return FP;
  return nullptr;
}

void FailPointRegistry::reset() {
  RegistryState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (FailPoint *FP : S.Points)
    FP->disarm();
}

Status FailPointRegistry::configure(const std::string &Spec) {
  // site:mode[:count[:delay_ms]]
  std::vector<std::string> Fields;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Colon = Spec.find(':', Pos);
    if (Colon == std::string::npos) {
      Fields.push_back(Spec.substr(Pos));
      break;
    }
    Fields.push_back(Spec.substr(Pos, Colon - Pos));
    Pos = Colon + 1;
  }
  if (Fields.size() < 2 || Fields.size() > 4 || Fields[0].empty())
    return Status::error(StatusCode::InvalidInput,
                         "malformed failpoint spec '" + Spec +
                             "' (want site:mode[:count[:delay_ms]])");

  FailPoint *FP = find(Fields[0]);
  if (!FP) {
    std::string Known;
    for (const std::string &N : names())
      Known += (Known.empty() ? "" : ", ") + N;
    return Status::error(StatusCode::InvalidInput,
                         "unknown failpoint site '" + Fields[0] +
                             "' (known sites: " + Known + ")");
  }

  FailPointMode Mode = FailPointMode::Off;
  bool Found = false;
  for (FailPointMode M : allFailPointModes())
    if (Fields[1] == failPointModeName(M)) {
      Mode = M;
      Found = true;
      break;
    }
  if (!Found)
    return Status::error(StatusCode::InvalidInput,
                         "unknown failpoint mode '" + Fields[1] +
                             "' (want throw, oom, status-error, "
                             "budget-exhaust, or delay)");

  auto ParseU = [](const std::string &F, uint64_t &Out) {
    if (F.empty() || F.find_first_not_of("0123456789") != std::string::npos)
      return false;
    Out = std::strtoull(F.c_str(), nullptr, 10);
    return true;
  };
  int64_t Remaining = -1; // Unlimited.
  uint32_t DelayMs = 20;
  if (Fields.size() >= 3) {
    uint64_t Count = 0;
    if (!ParseU(Fields[2], Count))
      return Status::error(StatusCode::InvalidInput,
                           "malformed failpoint count '" + Fields[2] + "'");
    Remaining = Count == 0 ? -1 : static_cast<int64_t>(Count);
  }
  if (Fields.size() == 4) {
    uint64_t Ms = 0;
    if (!ParseU(Fields[3], Ms))
      return Status::error(StatusCode::InvalidInput,
                           "malformed failpoint delay '" + Fields[3] + "'");
    DelayMs = static_cast<uint32_t>(Ms);
  }

  FP->arm(Mode, Remaining, DelayMs);
  return Status::ok();
}

Status FailPointRegistry::configureList(const std::string &Specs) {
  size_t Pos = 0;
  while (Pos <= Specs.size()) {
    size_t Comma = Specs.find(',', Pos);
    std::string One = Comma == std::string::npos
                          ? Specs.substr(Pos)
                          : Specs.substr(Pos, Comma - Pos);
    if (One.empty())
      return Status::error(StatusCode::InvalidInput,
                           "empty failpoint spec in list '" + Specs + "'");
    Status S = configure(One);
    if (!S.isOk())
      return S;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Status::ok();
}

Status FailPointRegistry::configureFromEnv() {
  const char *Env = std::getenv("ALP_FAILPOINTS");
  if (!Env || !*Env)
    return Status::ok();
  return configureList(Env);
}
