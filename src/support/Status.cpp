//===- support/Status.cpp - Recoverable error propagation ------------------===//

#include "support/Status.h"

using namespace alp;

const char *alp::statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::RationalOverflow:
    return "rational-overflow";
  case StatusCode::BudgetExceeded:
    return "budget-exceeded";
  case StatusCode::Unsolvable:
    return "unsolvable";
  case StatusCode::InvalidInput:
    return "invalid-input";
  }
  return "unknown";
}

std::string Status::str() const {
  if (isOk())
    return "ok";
  std::string S = statusCodeName(Code);
  if (!Context.empty()) {
    S += ": ";
    S += Context;
  }
  return S;
}
