//===- support/Status.cpp - Recoverable error propagation ------------------===//

#include "support/Status.h"

using namespace alp;

const char *alp::statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::RationalOverflow:
    return "rational-overflow";
  case StatusCode::BudgetExceeded:
    return "budget-exceeded";
  case StatusCode::Unsolvable:
    return "unsolvable";
  case StatusCode::InvalidInput:
    return "invalid-input";
  case StatusCode::FaultInjected:
    return "fault-injected";
  }
  return "unknown";
}

Status alp::statusFromCurrentException() {
  try {
    throw;
  } catch (const AlpException &E) {
    return E.status();
  } catch (const std::bad_alloc &) {
    return Status::error(StatusCode::BudgetExceeded, "out of memory");
  } catch (const std::exception &E) {
    return Status::error(StatusCode::Unsolvable,
                         std::string("internal error: ") + E.what());
  } catch (...) {
    return Status::error(StatusCode::Unsolvable,
                         "internal error: unknown exception type");
  }
}

std::string Status::str() const {
  if (isOk())
    return "ok";
  std::string S = statusCodeName(Code);
  if (!Context.empty()) {
    S += ": ";
    S += Context;
  }
  return S;
}
