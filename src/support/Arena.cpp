//===- support/Arena.cpp - Monotonic per-task bump allocator --------------===//

#include "support/Arena.h"

#include <atomic>
#include <cstdlib>
#include <new>

using namespace alp;

namespace {

thread_local Arena *CurrentArena = nullptr;

std::atomic<uint64_t> GArenaBytes{0};
std::atomic<uint64_t> GHeapSpills{0};

} // namespace

void alp::detail::noteArenaBytes(size_t N) {
  GArenaBytes.fetch_add(N, std::memory_order_relaxed);
}

void alp::detail::noteContainerHeapSpill() {
  GHeapSpills.fetch_add(1, std::memory_order_relaxed);
}

uint64_t alp::arenaBytesAllocated() {
  return GArenaBytes.load(std::memory_order_relaxed);
}

uint64_t alp::containerHeapSpills() {
  return GHeapSpills.load(std::memory_order_relaxed);
}

Arena *Arena::current() { return CurrentArena; }

Arena *Arena::setCurrent(Arena *A) {
  Arena *Prev = CurrentArena;
  CurrentArena = A;
  return Prev;
}

Arena &Arena::threadLocal() {
  thread_local Arena A;
  return A;
}

Arena::~Arena() {
  Block *B = Head;
  while (B) {
    Block *Next = B->Next;
    std::free(B);
    B = Next;
  }
}

Arena::Block *Arena::newBlock(size_t MinPayload) {
  size_t Payload = MinPayload > DefaultBlockBytes ? MinPayload
                                                  : DefaultBlockBytes;
  void *Mem = std::malloc(sizeof(Block) + Payload);
  if (!Mem)
    throw std::bad_alloc();
  Block *B = static_cast<Block *>(Mem);
  B->Next = nullptr;
  B->Size = Payload;
  return B;
}

void *Arena::allocate(size_t Size, size_t Align) {
  detail::noteArenaBytes(Size);
  for (;;) {
    if (Cur) {
      // Align the absolute address: the payload base is only as aligned
      // as malloc + the block header make it.
      char *Payload = reinterpret_cast<char *>(Cur + 1);
      uintptr_t Base = reinterpret_cast<uintptr_t>(Payload);
      size_t Offset =
          ((Base + CurUsed + Align - 1) & ~uintptr_t(Align - 1)) - Base;
      if (Offset + Size <= Cur->Size) {
        CurUsed = Offset + Size;
        return Payload + Offset;
      }
      // Advance to the next warm block if one exists and fits; otherwise
      // grow the chain. (An oversized request may skip a too-small warm
      // block; it stays linked and is reused after the next rewind.)
      if (Cur->Next && Size + Align <= Cur->Next->Size) {
        Cur = Cur->Next;
        CurUsed = 0;
        continue;
      }
      Block *B = newBlock(Size + Align);
      B->Next = Cur->Next;
      Cur->Next = B;
      Cur = B;
      CurUsed = 0;
      continue;
    }
    // Empty arena: start at the head of the warm chain, or create it.
    if (!Head)
      Head = newBlock(Size + Align);
    Cur = Head;
    CurUsed = 0;
  }
}
