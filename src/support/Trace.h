//===- support/Trace.h - Hierarchical RAII span tracing ---------*- C++ -*-===//
///
/// \file
/// Where compile time goes: an RAII span tracer in the spirit of LLVM's
/// -ftime-trace TimeProfiler. A TraceSpan measures one pipeline stage (or
/// one per-nest / per-component task inside a stage) on the steady clock;
/// spans are thread-aware — a span opened on a ThreadPool worker records
/// that worker's thread ordinal, so `--jobs N` worker tasks render as
/// separate rows nested (in time) under their enclosing phase span when
/// the trace is loaded into chrome://tracing.
///
/// Cost model: tracing is opt-in by pointer. A null Tracer* makes
/// TraceSpan construction a pointer test and nothing else — no clock
/// read, no allocation, no lock — so instrumentation stays in release
/// builds at near-zero cost (the perf_dependence harness guards the
/// disabled path against regression). Span names are static strings (a
/// fixed taxonomy, documented in docs/OBSERVABILITY.md); the per-instance
/// identity (nest id, component id, processor count) travels in the
/// integer Detail argument, never in a formatted name.
///
/// Emitters: writeChromeTrace renders the Chrome trace-event JSON format
/// (ph:"X" complete events) consumed by chrome://tracing and Perfetto;
/// renderStatsJson renders the versioned machine-readable stats schema
/// unifying the span aggregates with a MetricsRegistry's counters and
/// gauges. Both are exposed on alpc as --trace=<file> and --stats=<file>.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_TRACE_H
#define ALP_SUPPORT_TRACE_H

#include "support/Metrics.h"

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace alp {

/// Version of the stats JSON schema emitted by StatsReport /
/// renderStatsJson. Policy (docs/OBSERVABILITY.md): adding new counters,
/// gauges, or span names is *not* a version bump — consumers must ignore
/// unknown names; renaming or removing a field, or changing a field's
/// meaning or units, bumps this number. v2 = v1 plus a "kind"
/// discriminator in the header and optional producer fields before the
/// counters section (support/StatsReport.h).
inline constexpr unsigned StatsSchemaVersion = 2;

/// Collects timed spans. Create one per pipeline run when tracing is
/// requested; plumb it by pointer (null = tracing disabled).
class Tracer {
public:
  /// One closed span. Times are nanoseconds on the steady clock relative
  /// to the tracer's construction.
  struct Event {
    const char *Name = "";
    uint64_t StartNs = 0;
    uint64_t DurNs = 0;
    uint32_t Tid = 0;    ///< Process-wide thread ordinal (0 = first user).
    int64_t Detail = -1; ///< Instance id (nest, component, ...); -1 none.
  };

  Tracer() : Epoch(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Nanoseconds since the tracer's epoch.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Snapshot of every closed span, sorted by (StartNs, longest-first) so
  /// parents precede their children.
  std::vector<Event> events() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur microseconds).
  void writeChromeTrace(std::ostream &OS) const;

  /// Small process-wide ordinal of the calling thread (assigned on first
  /// use; stable for the thread's lifetime).
  static uint32_t currentThreadOrdinal();

private:
  friend class TraceSpan;
  void record(const Event &E);

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mutex;
  std::vector<Event> Events;
};

/// RAII span: opens on construction, records into the tracer on
/// destruction (or finish()). With a null tracer the whole lifetime is a
/// pointer test — no clock read, no allocation.
class TraceSpan {
public:
  TraceSpan() = default;
  /// \p Name must be a string with static storage duration.
  TraceSpan(Tracer *T, const char *Name, int64_t Detail = -1) {
    if (T) {
      Tr = T;
      Nm = Name;
      Dt = Detail;
      StartNs = T->nowNs();
    }
  }
  TraceSpan(TraceSpan &&O) noexcept
      : Tr(O.Tr), Nm(O.Nm), Dt(O.Dt), StartNs(O.StartNs) {
    O.Tr = nullptr;
  }
  TraceSpan &operator=(TraceSpan &&O) noexcept {
    if (this != &O) {
      finish();
      Tr = O.Tr;
      Nm = O.Nm;
      Dt = O.Dt;
      StartNs = O.StartNs;
      O.Tr = nullptr;
    }
    return *this;
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() { finish(); }

  bool active() const { return Tr != nullptr; }

  /// Closes the span now (idempotent).
  void finish() {
    if (!Tr)
      return;
    Tracer::Event E;
    E.Name = Nm;
    E.StartNs = StartNs;
    E.DurNs = Tr->nowNs() - StartNs;
    E.Tid = Tracer::currentThreadOrdinal();
    E.Detail = Dt;
    Tr->record(E);
    Tr = nullptr;
  }

private:
  Tracer *Tr = nullptr;
  const char *Nm = nullptr;
  int64_t Dt = -1;
  uint64_t StartNs = 0;
};

/// The observability handle threaded through option structs: a tracer for
/// spans and a registry for counters/gauges, either or both null. Copied
/// by value (it is two pointers) from DriverOptions down into every
/// sub-stage's options, so library users get observability without
/// globals.
struct TraceContext {
  Tracer *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;

  bool any() const { return Trace || Metrics; }

  /// Counter add, no-op without a registry.
  void count(const char *Name, uint64_t Delta = 1) const {
    if (Metrics)
      Metrics->add(Name, Delta);
  }
  /// Gauge set, no-op without a registry.
  void gauge(const char *Name, double Value) const {
    if (Metrics)
      Metrics->setGauge(Name, Value);
  }
};

/// Renders the versioned stats JSON: schema header, the registry's
/// counters (deterministic across --jobs) and gauges, and per-name span
/// aggregates (count + total wall milliseconds) from the tracer. Either
/// pointer may be null; the corresponding sections render empty.
std::string renderStatsJson(const MetricsRegistry *Metrics,
                            const Tracer *Trace);

} // namespace alp

#endif // ALP_SUPPORT_TRACE_H
