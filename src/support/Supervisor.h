//===- support/Supervisor.h - Supervised parallel task driver ---*- C++ -*-===//
///
/// \file
/// The defense layer between the parallel analysis driver and its tasks.
/// ThreadPool::parallelFor guarantees every index runs and captures what
/// it throws; the Supervisor adds policy on top:
///
///  * per-task deadlines — each attempt runs on a budget copy whose
///    wall-clock deadline is the tighter of the pipeline deadline and
///    `TaskDeadlineMs`, so one pathological task cannot stall the run;
///  * cooperative cancellation — every task budget points at the
///    supervisor's cancel flag (ResourceBudget::CancelFlag); raising it
///    stops all in-flight solvers at their next budget charge;
///  * exception capture with structured Status propagation — a task that
///    throws (AlpException, bad_alloc, anything) yields an error Status,
///    never unwinds past the supervisor, and is never swallowed;
///  * bounded retry with a degraded budget — a failed task is retried up
///    to `MaxAttempts` times, each retry on a budget whose finite limits
///    shrink by `RetryBudgetFactor`, before it is marked degraded;
///  * a deterministic ledger — outcomes are merged in index order, so
///    the degradation report and the supervisor counters
///    (driver.tasks_retried / driver.tasks_degraded /
///    driver.deadline_hits) are byte-identical for every --jobs value.
///
/// Determinism caveat: deadlines and cancellation are wall-clock facts.
/// With `TaskDeadlineMs = 0` and no cancellation (the default), outcomes
/// are pure functions of the per-task budget limits and therefore
/// jobs-deterministic; an armed deadline trades that for boundedness,
/// exactly like DriverOptions::DeadlineMs always has.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_SUPERVISOR_H
#define ALP_SUPPORT_SUPERVISOR_H

#include "support/Budget.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <functional>
#include <string>
#include <vector>

namespace alp {

/// What happened to one supervised task after all attempts.
struct SupervisedOutcome {
  /// Ok if some attempt completed; otherwise the last attempt's failure.
  Status Result;
  /// Attempts actually made (>= 1).
  unsigned Attempts = 0;
  /// The last failure hit the per-task deadline or the cancel flag.
  bool DeadlineHit = false;

  bool ok() const { return Result.isOk(); }
  bool retried() const { return Attempts > 1; }
  /// Every attempt failed: the caller must substitute its stage's
  /// conservative fallback for this index.
  bool degraded() const { return !Result.isOk(); }
};

/// Supervision policy. Defaults supervise without changing behavior: one
/// retry, no per-task deadline, budget limits halved on retry.
struct SupervisorOptions {
  /// Total attempts per task (first run + retries); min 1.
  unsigned MaxAttempts = 2;
  /// Per-attempt wall-clock deadline in milliseconds; 0 = none. Never
  /// extends a deadline already armed on the budget template.
  uint64_t TaskDeadlineMs = 0;
  /// Finite budget limits are scaled by this per retry (attempt k runs
  /// on Factor^k of the template's limits).
  double RetryBudgetFactor = 0.5;
  /// Sink for the supervisor counters; may be empty.
  TraceContext Observe;
};

/// Runs homogeneous index tasks under the supervision policy above.
class Supervisor {
public:
  /// A task: index -> Status, on a supervisor-owned budget copy. The
  /// budget pointer is never null and carries the task deadline and the
  /// cancel flag; tasks should pass it to every solver they invoke.
  using Task = std::function<Status(size_t, ResourceBudget *)>;

  /// \p Pool may be null (tasks then run serially in index order, same
  /// semantics). \p BudgetTemplate may be null (tasks run on an unlimited
  /// budget that still carries deadline + cancellation).
  Supervisor(ThreadPool *Pool, const ResourceBudget *BudgetTemplate,
             SupervisorOptions Opts = {});

  /// Runs tasks 0..N-1, each attempted per the policy, and returns one
  /// outcome per index. Also publishes, into Observe:
  ///   driver.tasks_supervised  — N
  ///   driver.tasks_retried     — tasks with Attempts > 1
  ///   driver.tasks_degraded    — tasks whose every attempt failed
  ///   driver.deadline_hits     — tasks whose last failure was the
  ///                              deadline / cancellation
  std::vector<SupervisedOutcome> run(size_t N, const Task &T);

  /// Raises the cooperative cancel flag: every in-flight task budget
  /// reports BudgetExceeded ("task cancelled") at its next charge, and no
  /// further retries start.
  void requestCancel() { Cancel.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return Cancel.load(std::memory_order_relaxed);
  }

  /// One deterministic ledger line for a non-clean outcome ("" for a
  /// first-attempt success): "<what> after N attempt(s): <status>".
  static std::string describe(const SupervisedOutcome &O, size_t Index);

private:
  SupervisedOutcome runOne(size_t I, const Task &T) const;

  ThreadPool *Pool;
  const ResourceBudget *BudgetTemplate;
  SupervisorOptions Opts;
  std::atomic<bool> Cancel{false};
};

} // namespace alp

#endif // ALP_SUPPORT_SUPERVISOR_H
