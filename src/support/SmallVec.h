//===- support/SmallVec.h - Inline-storage vector ---------------*- C++ -*-===//
///
/// \file
/// A vector with inline storage for the first \p InlineCap elements,
/// spilling to the current Arena (support/Arena.h) when one is active and
/// to the global heap otherwise. The decomposition framework's vectors and
/// matrices have dimension <= ~8, so a modest inline buffer makes the
/// steady-state hot path allocation-free; spills are the exception and are
/// both counted (containerHeapSpills) and fault-injectable via the
/// \p GrowthHook template parameter.
///
/// Arena-backed storage is reclaimed wholesale when the founding ArenaScope
/// ends: a SmallVec must not outlive the innermost scope that was active
/// when it last grew. Inline-only containers (the common case) have no such
/// restriction.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_SMALLVEC_H
#define ALP_SUPPORT_SMALLVEC_H

#include "support/Arena.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace alp {

/// Inline-storage vector. \p GrowthHook (nullable) runs at the top of every
/// growth beyond the current capacity — before any state changes, so a
/// throwing hook (fault injection) leaves the container intact.
template <typename T, unsigned InlineCap, void (*GrowthHook)() = nullptr>
class SmallVec {
  static_assert(InlineCap > 0, "SmallVec needs inline capacity");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVec() = default;
  explicit SmallVec(uint32_t N) { resize(N); }
  SmallVec(uint32_t N, const T &V) { resize(N, V); }
  SmallVec(std::initializer_list<T> Init) {
    reserve(Init.size());
    for (const T &V : Init)
      ::new (static_cast<void *>(data() + Sz++)) T(V);
  }
  SmallVec(const SmallVec &O) {
    reserve(O.Sz);
    copyAppend(O.data(), O.Sz);
  }
  SmallVec(SmallVec &&O) noexcept { stealFrom(O); }
  ~SmallVec() {
    destroyAll();
    releaseStorage();
  }

  SmallVec &operator=(const SmallVec &O) {
    if (this == &O)
      return *this;
    destroyAll();
    Sz = 0;
    reserve(O.Sz);
    copyAppend(O.data(), O.Sz);
    return *this;
  }
  SmallVec &operator=(SmallVec &&O) noexcept {
    if (this == &O)
      return *this;
    destroyAll();
    releaseStorage();
    Cap = InlineCap;
    Loc = Location::Inline;
    Ptr = nullptr;
    stealFrom(O);
    return *this;
  }

  uint32_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  uint32_t capacity() const { return Cap; }

  T *data() {
    return Loc == Location::Inline ? reinterpret_cast<T *>(Buf) : Ptr;
  }
  const T *data() const {
    return Loc == Location::Inline ? reinterpret_cast<const T *>(Buf) : Ptr;
  }

  iterator begin() { return data(); }
  iterator end() { return data() + Sz; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + Sz; }

  T &operator[](uint32_t I) {
    assert(I < Sz && "SmallVec index out of range");
    return data()[I];
  }
  const T &operator[](uint32_t I) const {
    assert(I < Sz && "SmallVec index out of range");
    return data()[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Sz - 1]; }
  const T &back() const { return (*this)[Sz - 1]; }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      grow(NewCap);
  }

  void push_back(const T &V) {
    if (Sz == Cap) {
      // V may alias our own storage; materialize before relocating.
      T Tmp(V);
      grow(size_t(Sz) + 1);
      ::new (static_cast<void *>(data() + Sz)) T(std::move(Tmp));
    } else {
      ::new (static_cast<void *>(data() + Sz)) T(V);
    }
    ++Sz;
  }

  void push_back(T &&V) {
    if (Sz == Cap) {
      T Tmp(std::move(V));
      grow(size_t(Sz) + 1);
      ::new (static_cast<void *>(data() + Sz)) T(std::move(Tmp));
    } else {
      ::new (static_cast<void *>(data() + Sz)) T(std::move(V));
    }
    ++Sz;
  }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Sz == Cap)
      grow(size_t(Sz) + 1);
    T *P = ::new (static_cast<void *>(data() + Sz)) T(std::forward<Args>(A)...);
    ++Sz;
    return *P;
  }

  void pop_back() {
    assert(Sz && "pop_back on empty SmallVec");
    data()[--Sz].~T();
  }

  void resize(size_t N) {
    if (N < Sz) {
      shrinkTo(N);
      return;
    }
    reserve(N);
    while (Sz < N)
      ::new (static_cast<void *>(data() + Sz++)) T();
  }

  void resize(size_t N, const T &V) {
    if (N < Sz) {
      shrinkTo(N);
      return;
    }
    reserve(N);
    while (Sz < N)
      ::new (static_cast<void *>(data() + Sz++)) T(V);
  }

  void clear() {
    destroyAll();
    Sz = 0;
  }

  bool operator==(const SmallVec &O) const {
    if (Sz != O.Sz)
      return false;
    for (uint32_t I = 0; I != Sz; ++I)
      if (!(data()[I] == O.data()[I]))
        return false;
    return true;
  }
  bool operator!=(const SmallVec &O) const { return !(*this == O); }

private:
  enum class Location : uint8_t { Inline, Heap, ArenaMem };

  void copyAppend(const T *Src, uint32_t N) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (N)
        std::memcpy(data() + Sz, Src, size_t(N) * sizeof(T));
      Sz += N;
    } else {
      for (uint32_t I = 0; I != N; ++I)
        ::new (static_cast<void *>(data() + Sz++)) T(Src[I]);
    }
  }

  /// Takes over \p O's elements; assumes *this is empty with inline storage.
  void stealFrom(SmallVec &O) noexcept {
    if (O.Loc == Location::Inline) {
      if constexpr (std::is_trivially_copyable_v<T>) {
        if (O.Sz)
          std::memcpy(Buf, O.Buf, size_t(O.Sz) * sizeof(T));
        Sz = O.Sz;
      } else {
        for (uint32_t I = 0; I != O.Sz; ++I) {
          ::new (static_cast<void *>(data() + I)) T(std::move(O.data()[I]));
          O.data()[I].~T();
        }
        Sz = O.Sz;
      }
      O.Sz = 0;
      return;
    }
    Ptr = O.Ptr;
    Cap = O.Cap;
    Sz = O.Sz;
    Loc = O.Loc;
    O.Ptr = nullptr;
    O.Cap = InlineCap;
    O.Sz = 0;
    O.Loc = Location::Inline;
  }

  void destroyAll() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      T *P = data();
      for (uint32_t I = 0; I != Sz; ++I)
        P[I].~T();
    }
  }

  void releaseStorage() {
    if (Loc == Location::Heap)
      ::operator delete(Ptr);
    // Arena storage is reclaimed by the founding ArenaScope's rewind.
  }

  void grow(size_t MinCap) {
    size_t NewCap = size_t(Cap) * 2;
    if (NewCap < MinCap)
      NewCap = MinCap;
    assert(NewCap <= UINT32_MAX && "SmallVec capacity overflow");
    if constexpr (GrowthHook != nullptr)
      GrowthHook(); // May throw (fault injection): nothing mutated yet.
    T *NewPtr;
    Location NewLoc;
    if (Arena *A = Arena::current()) {
      NewPtr = static_cast<T *>(A->allocate(NewCap * sizeof(T), alignof(T)));
      NewLoc = Location::ArenaMem;
    } else {
      NewPtr = static_cast<T *>(::operator new(NewCap * sizeof(T)));
      detail::noteContainerHeapSpill();
      NewLoc = Location::Heap;
    }
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (Sz)
        std::memcpy(NewPtr, data(), size_t(Sz) * sizeof(T));
    } else {
      T *Old = data();
      for (uint32_t I = 0; I != Sz; ++I) {
        ::new (static_cast<void *>(NewPtr + I)) T(std::move(Old[I]));
        Old[I].~T();
      }
    }
    releaseStorage();
    Ptr = NewPtr;
    Cap = static_cast<uint32_t>(NewCap);
    Loc = NewLoc;
  }

  void shrinkTo(size_t N) {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      T *P = data();
      while (Sz > N)
        P[--Sz].~T();
    } else {
      Sz = static_cast<uint32_t>(N);
    }
  }

  uint32_t Sz = 0;
  uint32_t Cap = InlineCap;
  Location Loc = Location::Inline;
  T *Ptr = nullptr; // Heap or arena storage; unused while inline.
  alignas(T) unsigned char Buf[size_t(InlineCap) * sizeof(T)];
};

} // namespace alp

#endif // ALP_SUPPORT_SMALLVEC_H
