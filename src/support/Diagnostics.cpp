//===- support/Diagnostics.cpp - Error reporting helpers ------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace alp;

void alp::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "alp fatal error: %s\n", Message.c_str());
  std::abort();
}

std::string SourceLoc::str() const {
  std::ostringstream OS;
  OS << Line << ':' << Column;
  return OS.str();
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  switch (DiagKind) {
  case Kind::Error:
    OS << "error: ";
    break;
  case Kind::Warning:
    OS << "warning: ";
    break;
  case Kind::Note:
    OS << "note: ";
    break;
  }
  OS << Message;
  return OS.str();
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << '\n';
  return OS.str();
}
