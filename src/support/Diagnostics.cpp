//===- support/Diagnostics.cpp - Error reporting helpers ------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace alp;

void alp::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "alp fatal error: %s\n", Message.c_str());
  std::abort();
}

std::string SourceLoc::str() const {
  std::ostringstream OS;
  OS << Line << ':' << Column;
  return OS.str();
}

const char *alp::diagnosticKindName(Diagnostic::Kind K) {
  switch (K) {
  case Diagnostic::Kind::Error:
    return "error";
  case Diagnostic::Kind::Warning:
    return "warning";
  case Diagnostic::Kind::Note:
    return "note";
  case Diagnostic::Kind::Remark:
    return "remark";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  OS << diagnosticKindName(DiagKind) << ": " << Message;
  if (!PassId.empty())
    OS << " [" << PassId << ']';
  return OS.str();
}

std::string Diagnostic::strWithNotes() const {
  std::ostringstream OS;
  OS << str();
  for (const DiagNote &N : Notes) {
    OS << '\n';
    if (N.Loc.isValid())
      OS << N.Loc.str() << ": ";
    OS << "note: " << N.Message;
  }
  if (!FixIt.empty())
    OS << "\nfix-it: " << FixIt;
  return OS.str();
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << '\n';
  return OS.str();
}
