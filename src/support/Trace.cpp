//===- support/Trace.cpp - Hierarchical RAII span tracing --------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <ostream>

using namespace alp;

uint32_t Tracer::currentThreadOrdinal() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Ordinal = Next.fetch_add(1, std::memory_order_relaxed);
  return Ordinal;
}

void Tracer::record(const Event &E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back(E);
}

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> Snap;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Snap = Events;
  }
  std::stable_sort(Snap.begin(), Snap.end(),
                   [](const Event &A, const Event &B) {
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs;
                   });
  return Snap;
}

void Tracer::writeChromeTrace(std::ostream &OS) const {
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool First = true;
  char Buf[256];
  for (const Event &E : events()) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"alp\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  First ? "" : ",", E.Name,
                  static_cast<double>(E.StartNs) / 1000.0,
                  static_cast<double>(E.DurNs) / 1000.0, E.Tid);
    OS << Buf;
    if (E.Detail >= 0)
      OS << ", \"args\": {\"detail\": " << E.Detail << "}";
    OS << "}";
    First = false;
  }
  OS << "\n]}\n";
}

// renderStatsJson lives in StatsReport.cpp: it is now a thin wrapper over
// the schema-v2 StatsReport writer with kind "compile".
