//===- support/Trace.cpp - Hierarchical RAII span tracing --------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>

using namespace alp;

uint32_t Tracer::currentThreadOrdinal() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Ordinal = Next.fetch_add(1, std::memory_order_relaxed);
  return Ordinal;
}

void Tracer::record(const Event &E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back(E);
}

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> Snap;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Snap = Events;
  }
  std::stable_sort(Snap.begin(), Snap.end(),
                   [](const Event &A, const Event &B) {
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs;
                   });
  return Snap;
}

void Tracer::writeChromeTrace(std::ostream &OS) const {
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool First = true;
  char Buf[256];
  for (const Event &E : events()) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"alp\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  First ? "" : ",", E.Name,
                  static_cast<double>(E.StartNs) / 1000.0,
                  static_cast<double>(E.DurNs) / 1000.0, E.Tid);
    OS << Buf;
    if (E.Detail >= 0)
      OS << ", \"args\": {\"detail\": " << E.Detail << "}";
    OS << "}";
    First = false;
  }
  OS << "\n]}\n";
}

std::string alp::renderStatsJson(const MetricsRegistry *Metrics,
                                 const Tracer *Trace) {
  std::string Out = "{\n";
  Out += "  \"alp_stats\": {\"schema_version\": " +
         std::to_string(StatsSchemaVersion) + "},\n";

  // Counters: the deterministic section (byte-identical for every --jobs).
  static const MetricsRegistry EmptyRegistry;
  const MetricsRegistry &MR = Metrics ? *Metrics : EmptyRegistry;
  Out += "  \"counters\": " + MR.renderCountersJson() + ",\n";

  // Gauges: point-in-time values; may vary with scheduling and wall time.
  Out += "  \"gauges\": {";
  {
    bool First = true;
    for (const auto &[Name, Value] : MR.gauges()) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
      Out += First ? "\n" : ",\n";
      Out += "    \"" + Name + "\": " + Buf;
      First = false;
    }
    Out += First ? "}" : "\n  }";
  }
  Out += ",\n";

  // Span aggregates by name: count and total wall milliseconds.
  Out += "  \"spans\": [";
  if (Trace) {
    struct Agg {
      uint64_t Count = 0;
      uint64_t TotalNs = 0;
    };
    std::map<std::string, Agg> ByName;
    for (const Tracer::Event &E : Trace->events()) {
      Agg &A = ByName[E.Name];
      ++A.Count;
      A.TotalNs += E.DurNs;
    }
    bool First = true;
    for (const auto &[Name, A] : ByName) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf),
                    "{\"name\": \"%s\", \"count\": %llu, \"total_ms\": %.6f}",
                    Name.c_str(), static_cast<unsigned long long>(A.Count),
                    static_cast<double>(A.TotalNs) / 1e6);
      Out += First ? "\n    " : ",\n    ";
      Out += Buf;
      First = false;
    }
    if (!First)
      Out += "\n  ";
  }
  Out += "]\n}\n";
  return Out;
}
