//===- support/FailPoint.h - Deterministic fault injection ------*- C++ -*-===//
///
/// \file
/// A process-wide registry of named fault-injection sites ("failpoints"),
/// threaded through every pipeline stage so the fail-soft contract of
/// docs/ROBUSTNESS.md can be *exercised* on demand instead of waiting for
/// the fuzzer to stumble into a fault. A disarmed site costs one relaxed
/// atomic load (a global armed count), so the sites stay compiled into
/// release builds.
///
/// Each site is a file-local static FailPoint registered at static-init
/// time; `FailPointRegistry::names()` therefore enumerates the full
/// catalog without executing any pipeline code — the chaos harness
/// (tools/alp_chaos.cpp) sweeps it site by site.
///
/// Activation is a spec string, from `alpc --failpoints=...` or the
/// ALP_FAILPOINTS environment variable (comma-separated specs):
///
///   site:mode[:count[:delay_ms]]
///
///   mode            effect at the site
///   --------------  -----------------------------------------------------
///   throw           throw AlpException(StatusCode::FaultInjected)
///   oom             throw std::bad_alloc
///   status-error    return an error Status (sites that cannot return a
///                   Status throw AlpException instead)
///   budget-exhaust  poison the site's ResourceBudget (consumed counters
///                   jump past every finite limit) and return/throw a
///                   BudgetExceeded status
///   delay           sleep delay_ms (default 20) and continue normally
///
/// `count` caps the number of triggers (0 or absent = every hit).
///
/// Determinism: with an unbounded count every task that reaches the site
/// faults, so which task degrades cannot depend on thread scheduling and
/// `alpc --jobs N` output stays byte-identical for every N. A bounded
/// count consumes triggers in hit order, which under `--jobs > 1` races —
/// use bounded counts with `--jobs 1` (the chaos harness does).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_FAILPOINT_H
#define ALP_SUPPORT_FAILPOINT_H

#include "support/Budget.h"
#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace alp {

/// Injection behavior of an armed failpoint.
enum class FailPointMode {
  Off,
  Throw,
  Oom,
  StatusError,
  BudgetExhaust,
  Delay,
};

/// Stable identifier of a mode ("throw", "oom", ...), or nullptr for Off.
const char *failPointModeName(FailPointMode Mode);

/// All armable modes, in the order the chaos harness sweeps them.
const std::vector<FailPointMode> &allFailPointModes();

/// One named injection site. Define one per site at namespace scope in
/// the .cpp that contains the site:
///
///   static FailPoint FpSolve("core.partition.solve");
///   ...
///   if (Status S = FpSolve.evaluate(Opts.Budget); !S.isOk())
///     return degradeWith(S);           // Status-aware site
///   FpOther.evaluateOrThrow();         // site with no Status channel
///
class FailPoint {
public:
  /// Registers the site under \p Name (must be a string literal; names
  /// are taxonomy "layer.component.operation", see docs/ROBUSTNESS.md).
  explicit FailPoint(const char *Name);

  const char *name() const { return Name; }

  /// Evaluates the site. Disarmed: returns Ok at the cost of one relaxed
  /// load. Armed: throws (throw/oom modes), sleeps (delay), or returns an
  /// error Status (status-error / budget-exhaust; the latter additionally
  /// poisons \p Budget when non-null).
  Status evaluate(ResourceBudget *Budget = nullptr) {
    if (AnyArmed.load(std::memory_order_relaxed) == 0)
      return Status::ok();
    return evaluateSlow(Budget);
  }

  /// evaluate() for sites with no Status return channel: error statuses
  /// become AlpException (caught by the stage boundary like any other
  /// arithmetic failure).
  void evaluateOrThrow(ResourceBudget *Budget = nullptr) {
    if (AnyArmed.load(std::memory_order_relaxed) == 0)
      return;
    Status S = evaluateSlow(Budget);
    if (!S.isOk())
      throw AlpException(S);
  }

private:
  friend class FailPointRegistry;

  Status evaluateSlow(ResourceBudget *Budget);

  /// Arms/disarms; Remaining < 0 means unlimited triggers.
  void arm(FailPointMode M, int64_t Remaining, uint32_t DelayMs);
  void disarm();

  const char *Name;
  std::atomic<int> Mode{static_cast<int>(FailPointMode::Off)};
  /// Remaining triggers; < 0 = unlimited.
  std::atomic<int64_t> Remaining{-1};
  std::atomic<uint32_t> DelayMs{20};

  /// Process-wide count of armed sites: the disarmed fast path is a
  /// single relaxed load of this.
  static std::atomic<uint64_t> AnyArmed;
};

/// The process-wide site catalog and activation front end.
class FailPointRegistry {
public:
  static FailPointRegistry &instance();

  /// Sorted names of every registered site.
  std::vector<std::string> names() const;

  /// The site named \p Name, or nullptr.
  FailPoint *find(const std::string &Name) const;

  /// Parses and arms one "site:mode[:count[:delay_ms]]" spec. Unknown
  /// site, unknown mode, or a malformed count is an InvalidInput error
  /// (listing the valid choices) and arms nothing.
  Status configure(const std::string &Spec);

  /// Comma-separated list of specs; stops at the first error.
  Status configureList(const std::string &Specs);

  /// Arms from the ALP_FAILPOINTS environment variable; Ok when unset.
  Status configureFromEnv();

  /// Disarms every site (trigger totals are kept).
  void reset();

  /// Process-lifetime count of fired injections (all sites, all modes).
  uint64_t triggeredCount() const;

private:
  friend class FailPoint;
  FailPointRegistry() = default;
  void registerPoint(FailPoint *FP);
  static void noteTriggered();
};

} // namespace alp

#endif // ALP_SUPPORT_FAILPOINT_H
