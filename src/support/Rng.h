//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
///
/// \file
/// A small splitmix64-based pseudo-random generator. Tests and benchmark
/// workload generators use this instead of std::mt19937 so results are
/// identical across standard-library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_RNG_H
#define ALP_SUPPORT_RNG_H

#include <cstdint>

namespace alp {

/// Deterministic splitmix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace alp

#endif // ALP_SUPPORT_RNG_H
