//===- support/Metrics.cpp - Unified metrics registry ------------------------===//

#include "support/Metrics.h"

#include <cstdio>

using namespace alp;

void MetricsRegistry::add(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters[Name] += Delta;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Gauges[Name] = Value;
}

uint64_t MetricsRegistry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double MetricsRegistry::gauge(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second;
}

std::map<std::string, uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Gauges;
}

std::string MetricsRegistry::renderCountersJson() const {
  std::map<std::string, uint64_t> Snap = counters();
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, Value] : Snap) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(Value));
    Out += First ? "\n" : ",\n";
    Out += "    \"" + Name + "\": " + Buf;
    First = false;
  }
  Out += Snap.empty() ? "}" : "\n  }";
  return Out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.clear();
  Gauges.clear();
}
