//===- support/Arena.h - Monotonic per-task bump allocator ------*- C++ -*-===//
///
/// \file
/// A monotonic block arena for short-lived exact-arithmetic scratch space.
/// The analysis driver's hot loops (Fourier-Motzkin elimination, rref,
/// feasibility probes) build and discard many small containers per task;
/// routing that churn through a per-thread arena makes the steady state
/// allocation-free and keeps `--jobs N` workers off the global allocator.
///
/// The discipline follows the "founding scope" model: the scope that founds
/// a computation (an ArenaScope on the stack) owns every allocation made
/// while it is active, and rewinds them all in O(1) on exit. Blocks are
/// kept warm across scopes, so after the first task on a thread the arena
/// never calls malloc again unless a task needs more memory than any
/// before it.
///
/// Containers backed by the arena (see support/SmallVec.h) must not outlive
/// the innermost ArenaScope that was active when they last grew.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_ARENA_H
#define ALP_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>

namespace alp {

/// A monotonic bump allocator over a chain of malloc'd blocks. Not
/// thread-safe; each thread uses its own instance (see ArenaScope).
class Arena {
  struct Block;

public:
  Arena() = default;
  ~Arena();
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Size bytes aligned to \p Align. Never returns null; grows
  /// the block chain on demand. \p Align must be a power of two.
  void *allocate(size_t Size, size_t Align);

  /// A rewind point: everything allocated after mark() is reclaimed by
  /// rewind(). Blocks are retained for reuse, not freed.
  struct Mark {
    Block *B;
    size_t Used;
  };
  Mark mark() const { return {Cur, CurUsed}; }
  void rewind(Mark M) {
    Cur = M.B;
    CurUsed = M.Used;
  }

  /// The arena the calling thread is currently allocating from, or null
  /// when no ArenaScope is active (containers then fall back to the heap).
  static Arena *current();

  /// Installs \p A as the calling thread's current arena and returns the
  /// previous one. Pass null to disable arena allocation.
  static Arena *setCurrent(Arena *A);

  /// The calling thread's lazily-created scratch arena. Blocks stay warm
  /// for the lifetime of the thread.
  static Arena &threadLocal();

private:
  struct Block {
    Block *Next;
    size_t Size; // Usable payload bytes following this header.
  };

  Block *newBlock(size_t MinPayload);

  Block *Head = nullptr; // Chain of all blocks, in creation order.
  Block *Cur = nullptr;  // Block currently being bumped (null when empty).
  size_t CurUsed = 0;    // Bytes used in Cur.

  static constexpr size_t DefaultBlockBytes = 64 * 1024;
};

/// RAII scope that makes the calling thread's arena current and rewinds it
/// on destruction. Nests: an inner scope rewinds only its own allocations.
/// Everything allocated by SmallVec-backed containers inside the scope is
/// reclaimed wholesale when it ends, so only use a scope around code whose
/// results are scalars or plain structs (no linalg containers escaping).
class ArenaScope {
public:
  ArenaScope()
      : A(&Arena::threadLocal()), Prev(Arena::setCurrent(A)), M(A->mark()) {}
  ~ArenaScope() {
    A->rewind(M);
    Arena::setCurrent(Prev);
  }
  ArenaScope(const ArenaScope &) = delete;
  ArenaScope &operator=(const ArenaScope &) = delete;

private:
  Arena *A;
  Arena *Prev;
  Arena::Mark M;
};

/// Cumulative bytes handed out by all arenas in this process (monotonic;
/// rewinding does not subtract). Feeds the `linalg.arena_bytes` gauge.
uint64_t arenaBytesAllocated();

/// Cumulative number of times a SmallVec-backed container spilled to the
/// global heap because no arena was active. Feeds the `linalg.allocs`
/// gauge; zero deltas prove an allocation-free steady state.
uint64_t containerHeapSpills();

/// Accounting hooks used by SmallVec; not for general use.
namespace detail {
void noteArenaBytes(size_t N);
void noteContainerHeapSpill();
} // namespace detail

} // namespace alp

#endif // ALP_SUPPORT_ARENA_H
