//===- support/ThreadPool.cpp - Work-queue thread pool ---------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace alp;

/// One parallelFor invocation: a shared index counter the participants
/// drain, per-index failure slots, and a completion latch. Failures are
/// captured twice over: as the original exception_ptr (so parallelFor can
/// rethrow the caller's exact exception type) and as a structured Status
/// (so parallelForStatus and the supervised driver surface every failure
/// in the merged result — nothing is swallowed).
struct ThreadPool::Section {
  const std::function<void(size_t)> *Fn = nullptr;
  size_t N = 0;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
  std::vector<std::exception_ptr> Errors;
  std::vector<Status> Statuses;
  std::mutex DoneMutex;
  std::condition_variable DoneCV;
};

unsigned ThreadPool::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  Concurrency = Threads ? Threads : hardwareConcurrency();
  Workers.reserve(Concurrency - 1);
  for (unsigned I = 1; I < Concurrency; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

namespace {

/// Runs Fn(I), capturing any escaping exception as (exception_ptr,
/// structured Status) at index I. Every failure is recorded — the old
/// bare `catch (...)` that kept only an opaque pointer is gone; unknown
/// exception types still get an explicit "unknown exception" Status.
void runIndex(const std::function<void(size_t)> &Fn, size_t I,
              std::vector<std::exception_ptr> &Errors,
              std::vector<Status> &Statuses) {
  try {
    Fn(I);
  } catch (...) {
    Errors[I] = std::current_exception();
    Statuses[I] = statusFromCurrentException();
  }
}

} // namespace

void ThreadPool::runSection(const std::shared_ptr<Section> &Sec) {
  while (true) {
    size_t I = Sec->Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= Sec->N)
      break;
    runIndex(*Sec->Fn, I, Sec->Errors, Sec->Statuses);
    if (Sec->Done.fetch_add(1, std::memory_order_acq_rel) + 1 == Sec->N) {
      std::lock_guard<std::mutex> Lock(Sec->DoneMutex);
      Sec->DoneCV.notify_all();
    }
  }
}

std::vector<Status>
ThreadPool::parallelForStatus(size_t N,
                              const std::function<void(size_t)> &Fn) {
  std::vector<Status> Statuses(N);
  if (N == 0)
    return Statuses;
  // Nested sections (a task that itself calls parallelFor) run serially:
  // the queue is already saturated with the outer section's work and a
  // blocking inner wait from a worker could deadlock the pool.
  unsigned Expected = ActiveSections.fetch_add(1, std::memory_order_acq_rel);
  bool Parallel = Expected == 0 && !Workers.empty() && N > 1;
  if (!Parallel) {
    ActiveSections.fetch_sub(1, std::memory_order_acq_rel);
    // Same per-index semantics as the parallel path: run every index,
    // capture every failure.
    std::vector<std::exception_ptr> Errors(N);
    for (size_t I = 0; I != N; ++I)
      runIndex(Fn, I, Errors, Statuses);
    return Statuses;
  }

  auto Sec = std::make_shared<Section>();
  Sec->Fn = &Fn;
  Sec->N = N;
  Sec->Errors.resize(N);
  Sec->Statuses.resize(N);
  size_t Runners = std::min<size_t>(Workers.size(), N - 1);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t I = 0; I != Runners; ++I)
      Queue.push_back([this, Sec] { runSection(Sec); });
  }
  QueueCV.notify_all();
  runSection(Sec); // The caller participates.
  {
    std::unique_lock<std::mutex> Lock(Sec->DoneMutex);
    Sec->DoneCV.wait(Lock, [&] {
      return Sec->Done.load(std::memory_order_acquire) == Sec->N;
    });
  }
  ActiveSections.fetch_sub(1, std::memory_order_acq_rel);
  return std::move(Sec->Statuses);
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  // Nested sections run serially (see parallelForStatus).
  unsigned Expected = ActiveSections.fetch_add(1, std::memory_order_acq_rel);
  bool Parallel = Expected == 0 && !Workers.empty() && N > 1;
  if (!Parallel) {
    ActiveSections.fetch_sub(1, std::memory_order_acq_rel);
    // Same per-index semantics as the parallel path: run every index,
    // capture exceptions, rethrow the lowest-index one.
    std::vector<std::exception_ptr> Errors(N);
    std::vector<Status> Statuses(N);
    for (size_t I = 0; I != N; ++I)
      runIndex(Fn, I, Errors, Statuses);
    for (std::exception_ptr &E : Errors)
      if (E)
        std::rethrow_exception(E);
    return;
  }

  auto Sec = std::make_shared<Section>();
  Sec->Fn = &Fn;
  Sec->N = N;
  Sec->Errors.resize(N);
  Sec->Statuses.resize(N);
  size_t Runners = std::min<size_t>(Workers.size(), N - 1);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t I = 0; I != Runners; ++I)
      Queue.push_back([this, Sec] { runSection(Sec); });
  }
  QueueCV.notify_all();
  runSection(Sec); // The caller participates.
  {
    std::unique_lock<std::mutex> Lock(Sec->DoneMutex);
    Sec->DoneCV.wait(Lock, [&] {
      return Sec->Done.load(std::memory_order_acquire) == Sec->N;
    });
  }
  ActiveSections.fetch_sub(1, std::memory_order_acq_rel);
  for (std::exception_ptr &E : Sec->Errors)
    if (E)
      std::rethrow_exception(E);
}

void alp::parallelForN(ThreadPool *Pool, size_t N,
                       const std::function<void(size_t)> &Fn) {
  if (Pool) {
    Pool->parallelFor(N, Fn);
    return;
  }
  for (size_t I = 0; I != N; ++I)
    Fn(I);
}
