//===- support/Status.h - Recoverable error propagation ---------*- C++ -*-===//
//
// Part of the alp project: a reproduction of Anderson & Lam, "Global
// Optimizations for Parallelism and Locality on Scalable Parallel Machines"
// (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fail-soft error propagation for everything user-reachable. The library's
/// policy (docs/ROBUSTNESS.md):
///
///  * reportFatalError / assert — violated internal invariants only, i.e.
///    bugs in the library itself. These abort.
///  * Status / Expected<T> — every outcome a well-formed but adversarial
///    input can provoke: 64-bit rational overflow, solver budget
///    exhaustion, unsolvable systems. These are ordinary return values.
///
/// Deep arithmetic kernels (Rational, IntMatrix) cannot practically thread
/// Expected through every operator, so they throw AlpException carrying a
/// Status; stage boundaries (decomposeOrError, the dependence analyzer)
/// catch it and degrade gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_SUPPORT_STATUS_H
#define ALP_SUPPORT_STATUS_H

#include <cassert>
#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace alp {

/// Recoverable failure categories.
enum class StatusCode {
  Ok,
  /// A reduced numerator/denominator or integer product left 64 bits.
  RationalOverflow,
  /// A ResourceBudget limit (constraints, steps, iterations, deadline) hit.
  BudgetExceeded,
  /// A system has no solution the solver can represent (e.g. an
  /// orientation or tiling request that cannot be satisfied).
  Unsolvable,
  /// Malformed input reached an API that validates it.
  InvalidInput,
  /// A support/FailPoint.h injection site fired (chaos testing only;
  /// never produced by real inputs).
  FaultInjected,
};

/// Renders the code as a stable identifier ("rational-overflow", ...).
const char *statusCodeName(StatusCode Code);

/// An error code plus a human-readable context string. Default-constructed
/// Status is Ok.
class Status {
public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(StatusCode Code, std::string Context) {
    assert(Code != StatusCode::Ok && "error status requires a failure code");
    Status S;
    S.Code = Code;
    S.Context = std::move(Context);
    return S;
  }

  bool isOk() const { return Code == StatusCode::Ok; }
  explicit operator bool() const { return isOk(); }

  StatusCode code() const { return Code; }
  const std::string &context() const { return Context; }

  /// "rational-overflow: multiplying 2^40 by 2^40" (or "ok").
  std::string str() const;

private:
  StatusCode Code = StatusCode::Ok;
  std::string Context;
};

/// A value of type T or the Status explaining why there is none.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {} // NOLINT: implicit.
  Expected(Status S) : Err(std::move(S)) {       // NOLINT: implicit.
    assert(!Err.isOk() && "Expected error must carry a failure status");
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() {
    assert(hasValue() && "dereferencing errored Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing errored Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// The failure; Ok when a value is present.
  const Status &status() const { return Err; }

  /// Moves the value out.
  T takeValue() {
    assert(hasValue() && "taking value of errored Expected");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Status Err;
};

/// Exception carrying a Status, thrown by deep arithmetic where returning
/// Expected through every operator is impractical. Caught at the pipeline
/// stage boundaries; it must never escape a public entry point that
/// promises fail-soft behavior.
class AlpException : public std::exception {
public:
  explicit AlpException(Status S) : S(std::move(S)), Message(this->S.str()) {}
  AlpException(StatusCode Code, std::string Context)
      : AlpException(Status::error(Code, std::move(Context))) {}

  const Status &status() const { return S; }
  const char *what() const noexcept override { return Message.c_str(); }

private:
  Status S;
  std::string Message;
};

/// Converts an in-flight exception (from a catch block) into a structured
/// Status: AlpException keeps its carried Status, std::bad_alloc maps to
/// BudgetExceeded ("out of memory"), any other std::exception to
/// Unsolvable with its what(), and a non-standard exception to Unsolvable
/// with an explicit "unknown exception" context — never silent.
Status statusFromCurrentException();

} // namespace alp

#endif // ALP_SUPPORT_STATUS_H
