//===- alp.h - Umbrella header for the alp compiler -------------*- C++ -*-===//
///
/// \file
/// The one header an embedding application needs: the frontend, the
/// decomposition driver, the unified codegen API (CodegenOptions feeding
/// the communication analysis, the message planner, and the SPMD
/// emitter), and the machine layer (simulator + schedule derivation).
///
///   Program P = *compileDsl(Source, Diags);           // frontend
///   ProgramDecomposition PD =
///       decomposeOrError(P, M).takeValue();           // driver
///   CodegenOptions CG = CodegenOptions::forMachine(M);
///   std::string Spmd = emitSpmd(P, PD, CG);           // codegen
///   CommPlan Plan = planCommunication(P, PD, CG);     // planner
///   NumaSimulator Sim(P, M);                          // machine
///   Sim.setCommSchedule(Plan.schedule());
///   applyDecomposition(Sim, P, PD);
///
/// Finer-grained headers remain available for targeted includes.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_ALP_H
#define ALP_ALP_H

#include "codegen/CodegenOptions.h"
#include "codegen/CommAnalysis.h"
#include "codegen/CommPlan.h"
#include "codegen/SpmdEmitter.h"
#include "core/Driver.h"
#include "frontend/Lowering.h"
#include "machine/CommSchedule.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"

#endif // ALP_ALP_H
