//===- analysis/LintRace.cpp - Forall race detector -----------------------===//
//
// Re-runs dependence analysis against each nest's loop classification: a
// dependence carried by a loop marked forall means two iterations that
// run concurrently touch the same array element with at least one write —
// a race. Conservative (budget-degraded) dependences are reported as
// "not checked" instead, never as races.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "analysis/Lint.h"

#include <sstream>

using namespace alp;

namespace {

const char *depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  return "?";
}

std::string vectorStr(const std::vector<DepComponent> &Components) {
  std::ostringstream OS;
  OS << '(';
  for (unsigned I = 0; I < Components.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Components[I].str();
  }
  OS << ')';
  return OS.str();
}

class RaceLintPass : public LintPass {
public:
  const char *id() const override { return "race"; }
  const char *description() const override {
    return "dependences carried by forall loops (races under the nest's "
           "current parallelization)";
  }

  void run(LintContext &Ctx) override {
    const Program &P = Ctx.program();
    DependenceAnalysis DA(P, Ctx.budget());
    for (unsigned NestId : P.nestsInOrder()) {
      const LoopNest &Nest = P.nest(NestId);
      if (Nest.firstParallelLoop() == Nest.depth())
        continue; // Fully sequential: nothing to race.

      bool Degraded = false;
      for (const Dependence &D : DA.analyze(Nest)) {
        if (D.Level >= Nest.depth())
          continue; // Loop-independent: ordered within one iteration.
        const Loop &Carrier = Nest.Loops[D.Level];
        if (!Carrier.isParallel())
          continue; // Serialized by a sequential loop.
        if (D.Conservative) {
          // Assumed, not proven: fail-soft means this becomes "not
          // checked", not a reported race.
          Degraded = true;
          continue;
        }
        reportRace(Ctx, P, Nest, NestId, D, Carrier);
      }
      if (Degraded) {
        std::ostringstream OS;
        OS << "nest " << NestId
           << ": dependence analysis exhausted its budget; race freedom "
              "of the forall loops was not verified";
        Ctx.notChecked("race.forall-carried", OS.str());
      }
    }
  }

private:
  void reportRace(LintContext &Ctx, const Program &P, const LoopNest &Nest,
                  unsigned NestId, const Dependence &D, const Loop &Carrier) {
    const ArrayAccess &Src = Nest.Body[D.SrcStmt].Accesses[D.SrcAccess];
    const ArrayAccess &Dst = Nest.Body[D.DstStmt].Accesses[D.DstAccess];
    std::vector<std::string> Names = Nest.indexNames();

    std::ostringstream OS;
    OS << "forall loop '" << Carrier.IndexName << "' of nest " << NestId
       << " carries a " << depKindName(D.Kind) << " dependence on array '"
       << P.array(D.ArrayId).Name << "': iterations that run in parallel "
       << "conflict with "
       << (D.isDistanceVector() ? "distance" : "direction") << " vector "
       << vectorStr(D.Components);
    Diagnostic &Diag = Ctx.report(Diagnostic::Kind::Error,
                                  "race.forall-carried",
                                  Carrier.Loc.isValid() ? Carrier.Loc
                                                        : Src.Loc,
                                  OS.str());

    std::ostringstream SrcNote;
    SrcNote << (Src.IsWrite ? "write" : "read") << " of '"
            << P.array(D.ArrayId).Name << A(Src, Names)
            << "' is the dependence source";
    Diag.Notes.push_back({Src.Loc, SrcNote.str()});

    std::ostringstream DstNote;
    DstNote << "conflicting " << (Dst.IsWrite ? "write" : "read") << " of '"
            << P.array(D.ArrayId).Name << A(Dst, Names) << "' is here";
    Diag.Notes.push_back({Dst.Loc, DstNote.str()});

    Diag.FixIt = "change 'forall " + Carrier.IndexName +
                 "' to a sequential 'for " + Carrier.IndexName + "'";
  }

  static std::string A(const ArrayAccess &Acc,
                       const std::vector<std::string> &Names) {
    return Acc.Map.str(Names);
  }
};

} // namespace

namespace alp {
std::unique_ptr<LintPass> createRaceLintPass() {
  return std::make_unique<RaceLintPass>();
}
} // namespace alp
