//===- analysis/DependenceCache.h - Memoized bounds projections -*- C++ -*-===//
///
/// \file
/// An LRU-bounded memoization table for the expensive core of the exact
/// dependence test: Fourier-Motzkin bounds projections of a dependence
/// polyhedron onto one variable. Keys are canonical system keys
/// (linalg/SystemKey.h) plus the projected variable index, so structurally
/// identical systems — ubiquitous in stencil codes where many access pairs
/// share one shape — are solved once and replayed from the cache.
///
/// Budget contract: only *successfully computed* projections are stored.
/// A cache hit replays a result whose elimination steps were already
/// charged when it was first computed, so the hit itself charges nothing —
/// a cached answer never double-charges the ResourceBudget (results that
/// degraded on budget exhaustion or overflow are never cached, because a
/// larger budget could do better on the next attempt).
///
/// Thread-safety: all operations take an internal mutex; one cache may be
/// shared by every worker of the parallel analysis driver. Hit/miss
/// counters are kept under the same lock.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_ANALYSIS_DEPENDENCECACHE_H
#define ALP_ANALYSIS_DEPENDENCECACHE_H

#include "linalg/SystemKey.h"
#include "support/Metrics.h"

#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace alp {

/// Hit/miss counters of one cache (monotone; snapshot under the lock).
struct DependenceCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / Total : 0.0;
  }

  /// Publishes this snapshot into \p MR as "dep.cache.raw_*" gauges.
  /// Gauges, not counters: raw traffic varies with thread scheduling
  /// (concurrent workers can both miss one key), unlike the logical
  /// ledger DependenceTierStats publishes (docs/OBSERVABILITY.md).
  void publishTo(MetricsRegistry &MR) const;
};

/// LRU map from (canonical system, variable) to the variable's projected
/// bounds (nullopt bounds = the system is infeasible).
class DependenceCache {
public:
  /// \p Capacity bounds the number of live entries; 0 means unbounded.
  explicit DependenceCache(size_t Capacity = 1 << 12)
      : Capacity(Capacity) {}

  DependenceCache(const DependenceCache &) = delete;
  DependenceCache &operator=(const DependenceCache &) = delete;

  /// Returns the cached projection of \p Var under \p Key, or nullopt on a
  /// miss. The outer optional distinguishes hit/miss; the inner one is the
  /// cached value itself (nullopt = infeasible system).
  std::optional<std::optional<VariableBounds>>
  lookupBounds(const CanonicalSystemKey &Key, unsigned Var);

  /// Stores a successfully computed projection (evicting the least
  /// recently used entry when full).
  void storeBounds(const CanonicalSystemKey &Key, unsigned Var,
                   const std::optional<VariableBounds> &Bounds);

  DependenceCacheStats stats() const;

  /// Drops every entry (counters are kept).
  void clear();

private:
  struct EntryKey {
    CanonicalSystemKey System;
    unsigned Var = 0;

    bool operator==(const EntryKey &RHS) const {
      return Var == RHS.Var && System == RHS.System;
    }
  };
  struct EntryKeyHash {
    size_t operator()(const EntryKey &K) const {
      return static_cast<size_t>(K.System.Hash * 1099511628211ull + K.Var);
    }
  };
  struct Entry {
    EntryKey Key;
    std::optional<VariableBounds> Bounds;
  };

  size_t Capacity;
  mutable std::mutex Mutex;
  /// Most recently used at the front.
  std::list<Entry> Lru;
  std::unordered_map<EntryKey, std::list<Entry>::iterator, EntryKeyHash>
      Index;
  DependenceCacheStats Stats;
};

} // namespace alp

#endif // ALP_ANALYSIS_DEPENDENCECACHE_H
