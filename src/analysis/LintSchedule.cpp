//===- analysis/LintSchedule.cpp - SPMD schedule verifier -----------------===//
//
// Static verification of the planned communication schedule, before
// anything is emitted or simulated:
//
//   * happens-before graph over the expanded per-processor schedule with
//     cycle detection                      -> schedule.deadlock
//   * collective-sequence agreement        -> schedule.barrier-divergence
//   * FIFO send/recv matching per stream   -> schedule.unmatched
//   * double-buffer lifetime under overlap -> schedule.buffer-overlap
//   * remote-access coverage translation validation: every nonlocal
//     access CommAnalysis classifies must be delivered by a planned
//     message issued before its first use, with enough volume, so
//     aggregation / hoisting / elision can never silently drop data
//                                          -> schedule.coverage-gap
//
// Delivery-before-first-use is structural in the emitter's message mode:
// planned shifts / broadcasts / redistributions are issued ahead of the
// nest body, prologue broadcasts ahead of everything, and a block
// boundary's recv precedes its block's compute — so coverage reduces to
// existence (the right message in the right nest) plus volume.
//
// Counters publish as schedule.* through LintOptions::Observe; they are
// pure functions of (Program, ProgramDecomposition) and therefore
// byte-identical across --jobs.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/ScheduleModel.h"
#include "codegen/CommAnalysis.h"
#include "codegen/CommPlan.h"

#include <cmath>
#include <map>
#include <sstream>

using namespace alp;

namespace {

/// Relative slack on volume comparisons: planner volumes round-trip
/// through a divide/multiply per block, so exact equality is too strict.
constexpr double RelTol = 1e-6;

/// Mirror of the planner's layout signature (CommPlan.cpp layoutKey):
/// the key the redundant-transfer elision compares. Re-deriving it here
/// is the point — the verifier re-proves the elision instead of trusting
/// the planner's own bookkeeping.
std::string layoutKey(const Program &P, const ProgramDecomposition &PD,
                      unsigned ArrayId, unsigned NestId) {
  if (PD.ReplicatedDims.count(ArrayId) && PD.ReplicatedDims.at(ArrayId) > 0)
    return "replicated";
  auto It = PD.Data.find({ArrayId, NestId});
  if (It == PD.Data.end())
    return "unplaced";
  return It->second.D.str() + " / " + It->second.Delta.str();
}

SourceLoc nestLoc(const Program &P, unsigned NestId) {
  if (NestId == ~0u)
    return SourceLoc();
  const LoopNest &Nest = P.nest(NestId);
  return Nest.Loops.empty() ? SourceLoc() : Nest.Loops.front().Loc;
}

SourceLoc accessLoc(const Program &P, const CommOp &Op) {
  const LoopNest &Nest = P.nest(Op.NestId);
  if (Op.StmtIdx < Nest.Body.size() &&
      Op.AccessIdx < Nest.Body[Op.StmtIdx].Accesses.size())
    return Nest.Body[Op.StmtIdx].Accesses[Op.AccessIdx].Loc;
  return nestLoc(P, Op.NestId);
}

double delivered(const PlannedMessage &M) {
  return M.MessagesPerExecution * M.ElementsPerMessage;
}

bool covers(double Delivered, double Needed) {
  return Delivered + RelTol >= Needed * (1.0 - RelTol);
}

class ScheduleLintPass : public LintPass {
public:
  const char *id() const override { return "schedule"; }
  const char *description() const override {
    return "schedule verification: deadlock, barrier agreement, send/recv "
           "matching, buffer lifetime, and remote-access coverage over the "
           "planned communication schedule";
  }

  void run(LintContext &Ctx) override {
    const ProgramDecomposition *PD = Ctx.decomposition();
    if (!PD) {
      Ctx.notChecked("schedule",
                     "no decomposition available; the communication "
                     "schedule was not verified");
      return;
    }
    const Program &P = Ctx.program();
    for (unsigned NestId : P.nestsInOrder())
      if (!PD->Comp.count(NestId)) {
        Ctx.notChecked("schedule",
                       "decomposition does not cover every nest; the "
                       "communication schedule was not verified");
        return;
      }

    const LintOptions &LO = Ctx.options();
    CodegenOptions CG;
    CG.BlockSize = LO.BlockSize;
    CG.Miscompile = LO.Miscompile;
    // No Observe: the planner's comm.* counters publish once, from the
    // pipeline's own planning call, never from re-analysis inside lint.

    CommPlan Plan;
    CommSummary Comm;
    try {
      Plan = planCommunication(P, *PD, CG);
      Comm = analyzeCommunication(P, *PD, CG);
    } catch (const AlpException &E) {
      Ctx.notChecked("schedule", E.status().str());
      return;
    }

    ScheduleModel M = buildScheduleModel(P, *PD, Plan, CG);

    // Budget discipline: one solver iteration per modeled event plus one
    // per classified op. Exhaustion degrades the whole pass to "not
    // checked" *before* any finding is reported — budget pressure can
    // suppress diagnostics but never truncate a finding list into a
    // misleading partial verdict.
    if (ResourceBudget *B = Ctx.budget()) {
      for (unsigned I = 0, E = M.events() +
                               static_cast<unsigned>(Comm.Ops.size());
           I != E; ++I) {
        Status S = B->chargeSolverIteration();
        if (!S.isOk()) {
          Ctx.notChecked("schedule", S.str());
          publishCounters(LO, M, /*Findings=*/{});
          return;
        }
      }
    }

    std::map<std::string, unsigned> FindingCounts;
    auto Report = [&](const ScheduleFinding &F, const std::string &FixIt) {
      ++FindingCounts[F.Check];
      Diagnostic &D =
          Ctx.report(Diagnostic::Kind::Error, "schedule." + F.Check,
                     nestLoc(P, F.NestId), F.Message);
      for (const std::string &Note : F.Notes)
        D.Notes.push_back({SourceLoc(), Note});
      D.FixIt = FixIt;
    };

    // Collective agreement first: the happens-before graph's joint nodes
    // are only well defined when every processor runs the same collective
    // sequence, so divergence gates cycle detection.
    std::vector<ScheduleFinding> Divergence = checkBarrierAgreement(M, P);
    for (const ScheduleFinding &F : Divergence)
      Report(F, "every processor must execute the same barrier/collective "
                "sequence; emit collectives unconditionally, outside "
                "processor-id guards");
    if (Divergence.empty())
      for (const ScheduleFinding &F : checkDeadlock(M, P))
        Report(F, "");
    for (const ScheduleFinding &F : checkMatching(M, P))
      Report(F, "");
    for (const ScheduleFinding &F : checkBufferLifetime(M, P))
      Report(F, "issue at most two overlapped isends per stream between "
                "blocking receives, or fall back to blocking sends "
                "(disable overlap)");

    checkCoverage(Ctx, P, *PD, Plan, Comm, FindingCounts);
    publishCounters(LO, M, FindingCounts);
  }

private:
  /// Remote-access coverage translation validation: re-derive, from the
  /// classifier, what every nest needs, and prove the plan delivers it.
  void checkCoverage(LintContext &Ctx, const Program &P,
                     const ProgramDecomposition &PD, const CommPlan &Plan,
                     const CommSummary &Comm,
                     std::map<std::string, unsigned> &FindingCounts) {
    auto Gap = [&](SourceLoc Loc, const std::string &Message,
                   const std::string &FixIt) {
      ++FindingCounts["coverage-gap"];
      Diagnostic &D = Ctx.report(Diagnostic::Kind::Error,
                                 "schedule.coverage-gap", Loc, Message);
      D.FixIt = FixIt;
    };

    for (const CommOp &Op : Comm.Ops) {
      if (Op.Kind == CommKind::Local)
        continue;
      // Cross-nest reorganizations are validated against the elision
      // walk below — absence of a message can be legitimate there.
      if (Op.Kind == CommKind::Reorganization && Op.CrossNest)
        continue;
      const std::string &Name = P.array(Op.ArrayId).Name;
      const std::vector<PlannedMessage> &Ops = Plan.opsFor(Op.NestId);

      switch (Op.Kind) {
      case CommKind::NearestNeighbor:
      case CommKind::Pipelined: {
        PlannedMsgKind Want = Op.Kind == CommKind::Pipelined
                                  ? PlannedMsgKind::BlockBoundary
                                  : PlannedMsgKind::Shift;
        const PlannedMessage *Best = nullptr;
        for (const PlannedMessage &M : Ops) {
          if (M.Kind != Want || M.ArrayId != Op.ArrayId)
            continue;
          if (Want == PlannedMsgKind::Shift &&
              M.Offset.str() != Op.Offset.str())
            continue;
          if (!Best || delivered(M) > delivered(*Best))
            Best = &M;
        }
        const char *What = Want == PlannedMsgKind::Shift
                               ? "boundary shift"
                               : "block-boundary transfer";
        if (!Best) {
          std::ostringstream OS;
          OS << "nonlocal access to '" << Name << "' in nest " << Op.NestId
             << " (" << (Op.IsWrite ? "write" : "read") << ", ~"
             << Op.ElementsPerExecution
             << " elements/execution) has no planned " << What
             << " delivering it";
          Gap(accessLoc(P, Op), OS.str(),
              "shift aggregation folded this access into a bulk message "
              "that is missing from the plan; aggregation may merge "
              "same-offset messages but must keep one per boundary");
        } else if (!covers(delivered(*Best), Op.ElementsPerExecution)) {
          std::ostringstream OS;
          OS << "planned " << What << " for '" << Name << "' in nest "
             << Op.NestId << " delivers ~" << delivered(*Best)
             << " elements/execution but the access needs ~"
             << Op.ElementsPerExecution;
          Gap(accessLoc(P, Op), OS.str(),
              "aggregation must size the merged message at the largest "
              "folded access volume (the union of the boundary layers), "
              "not a fraction of it");
        }
        break;
      }
      case CommKind::Broadcast: {
        const PlannedMessage *Found = nullptr;
        for (const PlannedMessage &M : Plan.Prologue)
          if (M.Kind == PlannedMsgKind::Broadcast && M.ArrayId == Op.ArrayId)
            Found = &M;
        for (const PlannedMessage &M : Ops)
          if (M.Kind == PlannedMsgKind::Broadcast && M.ArrayId == Op.ArrayId)
            Found = &M;
        if (!Found) {
          std::ostringstream OS;
          OS << "replicated array '" << Name << "' is read in nest "
             << Op.NestId
             << " but neither a prologue nor a per-nest broadcast is "
                "planned: non-owning processors read stale copies";
          Gap(accessLoc(P, Op), OS.str(),
              "broadcast hoisting removed the per-nest broadcast; a "
              "hoisted broadcast must appear in the program prologue");
        }
        break;
      }
      case CommKind::Reorganization: {
        bool Found = false;
        for (const PlannedMessage &M : Ops)
          if (M.Kind == PlannedMsgKind::Redistribute &&
              M.ArrayId == Op.ArrayId && !M.CrossNest)
            Found = true;
        if (!Found) {
          std::ostringstream OS;
          OS << "access to '" << Name << "' in nest " << Op.NestId
             << " needs a layout reorganization (~"
             << Op.ElementsPerExecution
             << " elements/execution) but no redistribution is planned";
          Gap(accessLoc(P, Op), OS.str(), "");
        }
        break;
      }
      case CommKind::Local:
        break;
      }
    }

    // Cross-nest reorganizations: re-prove every elision. Mirror the
    // planner's walk — track each array's layout signature through the
    // nests in program order; a recorded reorganization is elidable only
    // when the target layout equals the current one.
    std::map<unsigned, std::string> CurrentKey;
    for (unsigned NestId : P.nestsInOrder())
      for (unsigned A : P.nest(NestId).referencedArrays())
        CurrentKey.try_emplace(A, layoutKey(P, PD, A, NestId));
    for (const ReorganizationPoint &RP : PD.Reorganizations) {
      std::string Key = layoutKey(P, PD, RP.ArrayId, RP.ToNest);
      auto It = CurrentKey.find(RP.ArrayId);
      bool Elidable = It != CurrentKey.end() && It->second == Key;
      CurrentKey[RP.ArrayId] = Key;
      bool Planned = false;
      for (const PlannedMessage &M : Plan.opsFor(RP.ToNest))
        if (M.Kind == PlannedMsgKind::Redistribute &&
            M.ArrayId == RP.ArrayId && M.CrossNest)
          Planned = true;
      if (Planned || Elidable)
        continue;
      const std::string &Name = P.array(RP.ArrayId).Name;
      std::ostringstream OS;
      OS << "recorded cross-nest reorganization of '" << Name
         << "' into nest " << RP.ToNest
         << " was dropped from the plan, but the source layout differs "
            "from the target: reads in nest "
         << RP.ToNest << " would be non-local with no covering transfer";
      Gap(nestLoc(P, RP.ToNest), OS.str(),
          "redundant-transfer elision may only drop a reorganization "
          "whose source and target layout signatures coincide");
    }
  }

  /// Publishes schedule.* counters. Every name is always touched (at
  /// zero if need be) so the counters section is structurally stable —
  /// the --jobs determinism tests compare it byte for byte.
  void publishCounters(const LintOptions &LO, const ScheduleModel &M,
                       const std::map<std::string, unsigned> &Findings) {
    auto Count = [&](const char *Name, uint64_t V) {
      LO.Observe.count(Name, V);
    };
    Count("schedule.checked", 1);
    Count("schedule.events", M.events());
    Count("schedule.truncated_blocks", M.TruncatedBlocks ? 1 : 0);
    auto Of = [&](const char *Check) -> uint64_t {
      auto It = Findings.find(Check);
      return It == Findings.end() ? 0 : It->second;
    };
    Count("schedule.deadlock", Of("deadlock"));
    Count("schedule.barrier_divergence", Of("barrier-divergence"));
    Count("schedule.unmatched", Of("unmatched"));
    Count("schedule.buffer_overlap", Of("buffer-overlap"));
    Count("schedule.coverage_gap", Of("coverage-gap"));
  }
};

} // namespace

namespace alp {
std::unique_ptr<LintPass> createScheduleLintPass() {
  return std::make_unique<ScheduleLintPass>();
}
} // namespace alp
