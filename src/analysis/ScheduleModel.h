//===- analysis/ScheduleModel.h - Static model of an SPMD schedule -*- C++ -*-===//
///
/// \file
/// A small, exact model of the message-passing schedule the SPMD emitter
/// renders from a CommPlan: per-processor event traces on a model
/// processor line, a happens-before graph over them, and the four checker
/// families the schedule verifier (analysis/LintSchedule.cpp) turns into
/// diagnostics.
///
/// The model mirrors codegen/SpmdEmitter.cpp's message mode exactly:
///
///   * prologue: one collective bcast per hoisted broadcast;
///   * per nest, the planned operations in plan order — a Shift renders
///     as send(me + mu) then recv(me - mu), an unhoisted Broadcast or a
///     Redistribute as a collective;
///   * a Sequential or Forall nest ends in barrier();
///   * a Pipelined/Wavefront nest runs a block loop — recv(me - 1, b),
///     compute, isend(me + 1, b) — then barrier().
///
/// Happens-before semantics are eager-send / blocking-recv (buffered
/// sends complete immediately; a recv waits for its matching send), the
/// weakest sound model of the emitter's protocol: anything that
/// deadlocks under it deadlocks under any stronger (rendezvous) runtime
/// too, and the emitter's natural send-then-recv shift pattern and the
/// pipelined wavefront are both cycle-free, so the checker cannot cry
/// wolf on correct schedules. Collectives (barriers, bcasts,
/// redistributes) are joint nodes aligned by per-processor collective
/// index; when processors disagree on the collective sequence the model
/// reports divergence instead of aligning (and skips cycle detection,
/// which would be meaningless).
///
/// Everything here is pure data in / findings out — no diagnostics, no
/// budget; LintSchedule.cpp owns both.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_ANALYSIS_SCHEDULEMODEL_H
#define ALP_ANALYSIS_SCHEDULEMODEL_H

#include "codegen/CommPlan.h"

#include <string>
#include <vector>

namespace alp {

/// One event of one model processor's trace.
struct SchedEvent {
  enum class Kind {
    Send,       ///< Point-to-point send (eager; never blocks).
    Recv,       ///< Blocking receive: waits for the matching send.
    Collective, ///< Barrier / bcast / redistribute: all processors join.
  };
  Kind EvKind = Kind::Collective;
  /// Issuing processor, 0-based on the model line.
  int Proc = 0;
  /// Send: destination; Recv: source. Unused for collectives.
  int Peer = 0;
  /// Owning nest, ~0u for prologue operations.
  unsigned NestId = ~0u;
  /// Message-matching stream: array plus offset key for shifts,
  /// "pipe:<nest>" for block-boundary traffic, collective name for
  /// collectives. Matching is FIFO per (src, dst, Tag).
  std::string Tag;
  /// Pipelined block ordinal, -1 outside a block loop.
  long Block = -1;
  /// True for overlapped (isend) block-boundary sends.
  bool Overlapped = false;

  std::string str(const Program &P) const;
};

/// The expanded model: per-processor traces plus expansion metadata.
struct ScheduleModel {
  /// Model line size. Three processors suffice to exercise every
  /// protocol role (pipeline head, interior, tail; both shift
  /// directions), and keep the graph tiny.
  int Procs = 3;
  /// Trace[p] is processor p's events in program order.
  std::vector<std::vector<SchedEvent>> Trace;
  /// True when a block loop was cut at the modeling cap; the checks are
  /// still sound on the modeled prefix.
  bool TruncatedBlocks = false;
  /// Total events across all traces.
  unsigned events() const;
};

/// One finding of a model check. LintSchedule turns these into
/// diagnostics; Notes become the note chain (cycle path, peer events).
struct ScheduleFinding {
  /// Diagnostic suffix: "deadlock", "unmatched", "buffer-overlap",
  /// "barrier-divergence".
  std::string Check;
  /// Nest the finding anchors to, ~0u when program-wide.
  unsigned NestId = ~0u;
  std::string Message;
  std::vector<std::string> Notes;
};

/// Expands \p Plan into per-processor traces, mirroring the emitter's
/// message mode. \p Opts supplies the block size and the model-level
/// Miscompile modes (ReorderRecv, ReorderBarrier, DropRecv, AliasBuffer);
/// \p MaxBlocksPerNest caps block-loop expansion.
ScheduleModel buildScheduleModel(const Program &P,
                                 const ProgramDecomposition &PD,
                                 const CommPlan &Plan,
                                 const CodegenOptions &Opts,
                                 int Procs = 3,
                                 long MaxBlocksPerNest = 48);

/// Collective-sequence agreement: every processor must execute the same
/// sequence of collectives (same nest, same tag). Reports the first
/// divergence ("barrier-divergence"). When this returns a nonempty list
/// the happens-before graph cannot be built; checkDeadlock must be
/// skipped.
std::vector<ScheduleFinding> checkBarrierAgreement(const ScheduleModel &M,
                                                   const Program &P);

/// Builds the happens-before graph (program order + send-to-recv match
/// edges + collective joint nodes) and reports the first cycle found
/// ("deadlock"), deterministically, with the cycle as a note chain.
/// Requires checkBarrierAgreement to have passed.
std::vector<ScheduleFinding> checkDeadlock(const ScheduleModel &M,
                                           const Program &P);

/// FIFO send/recv matching per (src, dst, tag) stream: reports sends
/// with no receive and receives with no send ("unmatched"), including
/// count mismatches (double delivery).
std::vector<ScheduleFinding> checkMatching(const ScheduleModel &M,
                                           const Program &P);

/// Double-buffer lifetime under overlap: on any one stream a processor
/// may have at most two overlapped isends in flight between blocking
/// receives (the next block's recv is the completion fence). Processors
/// with no incoming stream in the nest (the pipeline head) are exempt —
/// their issue rate is bounded by the pipeline itself.
/// Reports "buffer-overlap".
std::vector<ScheduleFinding> checkBufferLifetime(const ScheduleModel &M,
                                                 const Program &P);

} // namespace alp

#endif // ALP_ANALYSIS_SCHEDULEMODEL_H
