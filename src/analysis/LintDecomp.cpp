//===- analysis/LintDecomp.cpp - Decomposition translation validator ------===//
//
// Validates a ProgramDecomposition against the program it decomposes:
//
//   * the matrix invariants of core/Verify.h (Theorem 4.1, kernel /
//     localized-space consistency, dynamic-decomposition component
//     discipline, coverage of every nest) — reused directly, and
//   * an SPMD coverage check: every access must be classified by
//     CommAnalysis (an unclassified access would compile to a non-local
//     read with no covering message), every recorded reorganization point
//     must surface as a reorganize() call in the emitted SPMD code, and
//     every emitted reorganize() must be backed by a recorded point.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "codegen/CommAnalysis.h"
#include "codegen/SpmdEmitter.h"
#include "core/Verify.h"

#include <set>
#include <sstream>
#include <tuple>

using namespace alp;

namespace {

class DecompLintPass : public LintPass {
public:
  const char *id() const override { return "decomp"; }
  const char *description() const override {
    return "decomposition translation validation: Theorem 4.1 invariants "
           "and SPMD communication coverage";
  }

  void run(LintContext &Ctx) override {
    const ProgramDecomposition *PD = Ctx.decomposition();
    if (!PD) {
      Ctx.notChecked("decomp", "no decomposition available to validate");
      return;
    }
    const Program &P = Ctx.program();

    // Matrix-level invariants (core/Verify.h) pass through verbatim.
    for (Diagnostic &D : verifyDecompositionDiagnostics(P, *PD)) {
      Diagnostic &Out = Ctx.report(D.DiagKind, D.PassId, D.Loc, D.Message);
      Out.Notes = std::move(D.Notes);
      Out.FixIt = std::move(D.FixIt);
    }

    // Single-source-of-truth check: the block size the schedules were
    // derived with must match the one codegen will emit with
    // (MachineParams.BlockSize threads through both; a divergence means
    // someone bypassed it).
    const LintOptions &LO = Ctx.options();
    if (LO.ScheduleBlockSize != 0 &&
        LO.ScheduleBlockSize != LO.BlockSize) {
      std::ostringstream OS;
      OS << "schedule was derived with block size " << LO.ScheduleBlockSize
         << " but code generation uses block size " << LO.BlockSize
         << "; pipelined block boundaries will disagree with the machine "
            "schedule";
      Ctx.report(Diagnostic::Kind::Warning, "decomp.block-size-divergence",
                 SourceLoc(), OS.str());
    }

    // SPMD coverage only makes sense over a structurally valid result:
    // the emitter fatals outright on a nest with no computation
    // decomposition, and the coverage diagnostics above already flag it.
    for (unsigned NestId : P.nestsInOrder())
      if (!PD->Comp.count(NestId)) {
        Ctx.notChecked("decomp.spmd-coverage",
                       "decomposition does not cover every nest; SPMD "
                       "communication coverage was not checked");
        return;
      }
    try {
      checkSpmdCoverage(Ctx, P, *PD);
    } catch (const AlpException &E) {
      Ctx.notChecked("decomp.spmd-coverage", E.status().str());
    }
  }

private:
  void checkSpmdCoverage(LintContext &Ctx, const Program &P,
                         const ProgramDecomposition &PD) {
    CodegenOptions CG;
    CG.BlockSize = Ctx.options().BlockSize;
    CommSummary Comm = analyzeCommunication(P, PD, CG);

    // (a) Every access of every nest must have a classification.
    std::set<std::tuple<unsigned, unsigned, unsigned, unsigned>> Classified;
    for (const CommOp &Op : Comm.Ops)
      Classified.insert({Op.NestId, Op.StmtIdx, Op.AccessIdx, Op.ArrayId});
    for (unsigned NestId : P.nestsInOrder()) {
      const LoopNest &Nest = P.nest(NestId);
      for (unsigned SI = 0; SI < Nest.Body.size(); ++SI)
        for (unsigned AI = 0; AI < Nest.Body[SI].Accesses.size(); ++AI) {
          unsigned ArrayId = Nest.Body[SI].Accesses[AI].ArrayId;
          if (Classified.count({NestId, SI, AI, ArrayId}))
            continue;
          const ArrayAccess &A = Nest.Body[SI].Accesses[AI];
          std::ostringstream OS;
          OS << "access '" << P.array(A.ArrayId).Name
             << A.Map.str(Nest.indexNames()) << "' in nest " << NestId
             << " has no communication classification; the SPMD code "
                "would touch it with no covering message";
          Ctx.report(Diagnostic::Kind::Error, "decomp.spmd-coverage",
                     A.Loc, OS.str());
        }
    }

    // (b)/(c) Reorganization points vs emitted reorganize() calls.
    std::set<std::string> Emitted =
        emittedReorganizations(emitSpmd(P, PD, CG));
    std::set<std::string> Recorded;
    for (const ReorganizationPoint &RP : PD.Reorganizations)
      Recorded.insert(P.array(RP.ArrayId).Name);

    for (const std::string &Name : Recorded)
      if (!Emitted.count(Name)) {
        std::ostringstream OS;
        OS << "recorded reorganization of array '" << Name
           << "' never appears in the emitted SPMD code: reads after the "
              "layout change would be non-local with no covering message";
        Ctx.report(Diagnostic::Kind::Error, "decomp.spmd-coverage",
                   arrayLoc(P, Name), OS.str());
      }
    for (const std::string &Name : Emitted)
      if (!Recorded.count(Name)) {
        std::ostringstream OS;
        OS << "emitted SPMD code reorganizes array '" << Name
           << "' at a point the decomposition never recorded";
        Ctx.report(Diagnostic::Kind::Error, "decomp.spmd-coverage",
                   arrayLoc(P, Name), OS.str());
      }
  }

  static SourceLoc arrayLoc(const Program &P, const std::string &Name) {
    for (const ArraySymbol &A : P.Arrays)
      if (A.Name == Name)
        return A.Loc;
    return SourceLoc();
  }

  /// Array names of every "reorganize(NAME: ..." line of \p Spmd.
  static std::set<std::string> emittedReorganizations(const std::string &Spmd) {
    std::set<std::string> Names;
    const std::string Marker = "reorganize(";
    for (size_t Pos = Spmd.find(Marker); Pos != std::string::npos;
         Pos = Spmd.find(Marker, Pos + Marker.size())) {
      size_t Start = Pos + Marker.size();
      size_t Colon = Spmd.find(':', Start);
      if (Colon == std::string::npos)
        continue;
      Names.insert(Spmd.substr(Start, Colon - Start));
    }
    return Names;
  }
};

} // namespace

namespace alp {
std::unique_ptr<LintPass> createDecompLintPass() {
  return std::make_unique<DecompLintPass>();
}
} // namespace alp
