//===- analysis/ScheduleModel.cpp - Static model of an SPMD schedule ------===//

#include "analysis/ScheduleModel.h"

#include "machine/ScheduleDerivation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

using namespace alp;

std::string SchedEvent::str(const Program &P) const {
  std::ostringstream OS;
  OS << "proc " << Proc << ": ";
  switch (EvKind) {
  case Kind::Send:
    OS << (Overlapped ? "isend" : "send") << " to proc " << Peer;
    break;
  case Kind::Recv:
    OS << "recv from proc " << Peer;
    break;
  case Kind::Collective:
    OS << "collective";
    break;
  }
  OS << " [" << Tag;
  if (Block >= 0)
    OS << ", block " << Block;
  if (NestId != ~0u)
    OS << ", nest " << NestId;
  OS << "]";
  (void)P;
  return OS.str();
}

unsigned ScheduleModel::events() const {
  unsigned N = 0;
  for (const std::vector<SchedEvent> &T : Trace)
    N += static_cast<unsigned>(T.size());
  return N;
}

namespace {

/// Reduces a virtual-processor-space shift offset to a signed step on the
/// model line: the leading nonzero constant entry (the emitter renders
/// "send(... to me + mu ...)"; the leading entry carries the exchange's
/// direction, which is what the wait-cycle and matching checks need —
/// summing entries would cancel diagonal offsets like (1, -1)).
long offsetStep(const SymVector &Off) {
  for (unsigned I = 0; I != Off.size(); ++I) {
    if (!Off[I].isConstant())
      continue;
    Rational C = Off[I].constant();
    if (C.num() == 0)
      continue;
    return std::lround(static_cast<double>(C.num()) /
                       static_cast<double>(C.den()));
  }
  return 0;
}

bool onLine(int Proc, int Procs) { return Proc >= 0 && Proc < Procs; }

} // namespace

ScheduleModel alp::buildScheduleModel(const Program &P,
                                      const ProgramDecomposition &PD,
                                      const CommPlan &Plan,
                                      const CodegenOptions &Opts, int Procs,
                                      long MaxBlocksPerNest) {
  ScheduleModel M;
  M.Procs = Procs;
  M.Trace.assign(Procs, {});
  const MiscompileMode Bug = Opts.Miscompile;

  auto Collective = [&](unsigned NestId, const std::string &Tag,
                        bool OnAllProcs) {
    for (int Pr = 0; Pr != Procs; ++Pr) {
      if (!OnAllProcs && Pr != 0)
        continue;
      SchedEvent E;
      E.EvKind = SchedEvent::Kind::Collective;
      E.Proc = Pr;
      E.NestId = NestId;
      E.Tag = Tag;
      M.Trace[Pr].push_back(std::move(E));
    }
  };

  // Prologue: hoisted broadcasts, one collective each, before the body.
  for (const PlannedMessage &Msg : Plan.Prologue)
    Collective(~0u, "bcast:" + P.array(Msg.ArrayId).Name, true);

  for (unsigned NestId : P.nestsInOrder()) {
    if (!PD.Comp.count(NestId))
      continue; // Caller guarantees coverage; stay robust regardless.

    // Pre-nest planned operations, in plan order. Shifts expand to the
    // emitter's send-then-recv pair per processor; under ReorderRecv the
    // nest's recvs are hoisted before its sends (a seeded emitter bug).
    std::vector<SchedEvent> Sends, Recvs;
    for (const PlannedMessage &Msg : Plan.opsFor(NestId)) {
      const std::string &Name = P.array(Msg.ArrayId).Name;
      switch (Msg.Kind) {
      case PlannedMsgKind::Shift: {
        long Step = offsetStep(Msg.Offset);
        if (Step == 0)
          break;
        std::string Tag = "shift:" + Name + ":" + Msg.Offset.str();
        for (int Pr = 0; Pr != Procs; ++Pr) {
          if (onLine(Pr + Step, Procs)) {
            SchedEvent E;
            E.EvKind = SchedEvent::Kind::Send;
            E.Proc = Pr;
            E.Peer = Pr + static_cast<int>(Step);
            E.NestId = NestId;
            E.Tag = Tag;
            Sends.push_back(std::move(E));
          }
          if (onLine(Pr - Step, Procs) && Bug != MiscompileMode::DropRecv) {
            SchedEvent E;
            E.EvKind = SchedEvent::Kind::Recv;
            E.Proc = Pr;
            E.Peer = Pr - static_cast<int>(Step);
            E.NestId = NestId;
            E.Tag = Tag;
            Recvs.push_back(std::move(E));
          }
        }
        break;
      }
      case PlannedMsgKind::Broadcast:
        Collective(NestId, "bcast:" + Name, true);
        break;
      case PlannedMsgKind::Redistribute:
        Collective(NestId, "redistribute:" + Name, true);
        break;
      case PlannedMsgKind::BlockBoundary:
        break; // Expanded inside the block loop below.
      }
    }
    auto Flush = [&](const std::vector<SchedEvent> &Events) {
      for (const SchedEvent &E : Events)
        M.Trace[E.Proc].push_back(E);
    };
    if (Bug == MiscompileMode::ReorderRecv) {
      // The send/recv interleaving per shift op is load-bearing: hoisting
      // the recvs turns opposite-direction shifts into a wait cycle.
      Flush(Recvs);
      Flush(Sends);
    } else {
      // Plan order: each shift op's send precedes its recv, ops in order.
      // Re-interleave from the flat vectors (they were appended op by op,
      // proc-major per op, so a stable walk restores the emitter order).
      std::vector<SchedEvent> Ordered;
      Ordered.reserve(Sends.size() + Recvs.size());
      size_t SI = 0, RI = 0;
      while (SI < Sends.size() || RI < Recvs.size()) {
        // Emit the sends of one op, then its recvs: ops are contiguous
        // runs sharing a Tag.
        if (SI < Sends.size()) {
          const std::string &Tag = Sends[SI].Tag;
          for (; SI < Sends.size() && Sends[SI].Tag == Tag; ++SI)
            Ordered.push_back(Sends[SI]);
          for (; RI < Recvs.size() && Recvs[RI].Tag == Tag; ++RI)
            Ordered.push_back(Recvs[RI]);
        } else {
          Ordered.push_back(Recvs[RI++]);
        }
      }
      Flush(Ordered);
    }

    // The nest body: a barrier for sequential/forall nests; a block loop
    // of recv / compute / isend plus a trailing barrier when pipelined.
    const LoopNest &Nest = P.nest(NestId);
    NestSchedule S = deriveSchedule(Nest, PD.compOf(NestId), Opts.BlockSize);
    bool Pipelined = S.ExecMode == NestSchedule::Mode::Pipelined ||
                     S.ExecMode == NestSchedule::Mode::Wavefront2D;
    if (Pipelined) {
      long Blocks = 0;
      bool Overlapped = Opts.OverlapPipelined;
      for (const PlannedMessage &Msg : Plan.opsFor(NestId))
        if (Msg.Kind == PlannedMsgKind::BlockBoundary) {
          Blocks = std::max(Blocks,
                            std::lround(Msg.MessagesPerExecution));
          Overlapped = Msg.Overlapped;
        }
      if (Blocks == 0) {
        // No planned boundary traffic, but the emitter still renders the
        // block-loop synchronization skeleton.
        double Trip =
            std::max(Nest.estimatedTrip(S.PipeLoop, P.SymbolBindings), 1.0);
        Blocks = std::lround(
            std::max(std::ceil(Trip / std::max<double>(Opts.BlockSize, 1)),
                     1.0));
      }
      if (Blocks > MaxBlocksPerNest) {
        Blocks = MaxBlocksPerNest;
        M.TruncatedBlocks = true;
      }
      std::string Tag = "pipe:" + std::to_string(NestId);
      for (int Pr = 0; Pr != Procs; ++Pr) {
        auto PushRecv = [&](long B) {
          SchedEvent E;
          E.EvKind = SchedEvent::Kind::Recv;
          E.Proc = Pr;
          E.Peer = Pr - 1;
          E.NestId = NestId;
          E.Tag = Tag;
          E.Block = B;
          M.Trace[Pr].push_back(std::move(E));
        };
        auto PushSend = [&](long B) {
          SchedEvent E;
          E.EvKind = SchedEvent::Kind::Send;
          E.Proc = Pr;
          E.Peer = Pr + 1;
          E.NestId = NestId;
          E.Tag = Tag;
          E.Block = B;
          E.Overlapped = Overlapped;
          M.Trace[Pr].push_back(std::move(E));
        };
        if (Bug == MiscompileMode::AliasBuffer) {
          // Seeded emitter bug: all the block recvs hoisted out of the
          // loop, removing the per-block completion fences.
          if (Pr > 0)
            for (long B = 0; B != Blocks; ++B)
              PushRecv(B);
          if (Pr + 1 < Procs)
            for (long B = 0; B != Blocks; ++B)
              PushSend(B);
        } else {
          for (long B = 0; B != Blocks; ++B) {
            if (Pr > 0)
              PushRecv(B);
            if (Pr + 1 < Procs)
              PushSend(B);
          }
        }
      }
    }
    Collective(NestId, "barrier", Bug != MiscompileMode::ReorderBarrier);
  }
  return M;
}

//===----------------------------------------------------------------------===//
// Checks
//===----------------------------------------------------------------------===//

namespace {

/// Per-processor sequence of collective signatures, for agreement.
std::vector<std::vector<std::string>>
collectiveSequences(const ScheduleModel &M) {
  std::vector<std::vector<std::string>> Seq(M.Procs);
  for (int Pr = 0; Pr != M.Procs; ++Pr)
    for (const SchedEvent &E : M.Trace[Pr])
      if (E.EvKind == SchedEvent::Kind::Collective) {
        std::ostringstream OS;
        OS << E.Tag << '@';
        if (E.NestId == ~0u)
          OS << "prologue";
        else
          OS << "nest " << E.NestId;
        Seq[Pr].push_back(OS.str());
      }
  return Seq;
}

} // namespace

std::vector<ScheduleFinding>
alp::checkBarrierAgreement(const ScheduleModel &M, const Program &P) {
  (void)P;
  std::vector<ScheduleFinding> Out;
  std::vector<std::vector<std::string>> Seq = collectiveSequences(M);
  for (int Pr = 1; Pr < M.Procs; ++Pr) {
    if (Seq[Pr] == Seq[0])
      continue;
    ScheduleFinding F;
    F.Check = "barrier-divergence";
    // First disagreeing position pins the nest.
    size_t Pos = 0;
    while (Pos < Seq[0].size() && Pos < Seq[Pr].size() &&
           Seq[0][Pos] == Seq[Pr][Pos])
      ++Pos;
    std::ostringstream OS;
    OS << "processors disagree on the barrier/collective sequence: "
       << "processor 0 executes " << Seq[0].size()
       << " collective(s) but processor " << Pr << " executes "
       << Seq[Pr].size();
    if (Pos < Seq[0].size() || Pos < Seq[Pr].size()) {
      OS << "; first divergence at collective " << Pos << " (";
      OS << (Pos < Seq[0].size() ? Seq[0][Pos] : std::string("<none>"));
      OS << " vs "
         << (Pos < Seq[Pr].size() ? Seq[Pr][Pos] : std::string("<none>"))
         << ")";
    }
    F.Message = OS.str();
    if (Pos < Seq[0].size()) {
      // "barrier@nest 2" -> nest id for the diagnostic anchor.
      const std::string &Sig = Seq[0][Pos];
      size_t At = Sig.rfind("nest ");
      if (At != std::string::npos)
        F.NestId = static_cast<unsigned>(std::stoul(Sig.substr(At + 5)));
    }
    for (int Q = 0; Q != M.Procs; ++Q)
      F.Notes.push_back("processor " + std::to_string(Q) + " executes " +
                        std::to_string(Seq[Q].size()) + " collective(s)");
    Out.push_back(std::move(F));
    break; // One finding describes the divergence; more would repeat it.
  }
  return Out;
}

std::vector<ScheduleFinding> alp::checkDeadlock(const ScheduleModel &M,
                                                const Program &P) {
  std::vector<ScheduleFinding> Out;

  // Node numbering: per-processor events first, then one joint node per
  // collective round (collective sequences agree — precondition).
  std::vector<unsigned> Base(M.Procs + 1, 0);
  for (int Pr = 0; Pr != M.Procs; ++Pr)
    Base[Pr + 1] = Base[Pr] + static_cast<unsigned>(M.Trace[Pr].size());
  unsigned EventNodes = Base[M.Procs];
  unsigned Rounds = 0;
  for (const SchedEvent &E : M.Trace.empty() ? std::vector<SchedEvent>{}
                                             : M.Trace[0])
    Rounds += E.EvKind == SchedEvent::Kind::Collective;
  unsigned NumNodes = EventNodes + Rounds;

  std::vector<std::vector<unsigned>> Succ(NumNodes);
  auto NodeOf = [&](int Pr, size_t Idx) {
    return Base[Pr] + static_cast<unsigned>(Idx);
  };

  // Program order, and collective arrive -> joint -> depart edges.
  for (int Pr = 0; Pr != M.Procs; ++Pr) {
    unsigned Round = 0;
    for (size_t I = 0; I != M.Trace[Pr].size(); ++I) {
      if (I + 1 != M.Trace[Pr].size())
        Succ[NodeOf(Pr, I)].push_back(NodeOf(Pr, I + 1));
      if (M.Trace[Pr][I].EvKind == SchedEvent::Kind::Collective) {
        unsigned Joint = EventNodes + Round;
        Succ[NodeOf(Pr, I)].push_back(Joint);
        if (I + 1 != M.Trace[Pr].size())
          Succ[Joint].push_back(NodeOf(Pr, I + 1));
        ++Round;
      }
    }
  }

  // FIFO match edges: k-th send on a (src, dst, tag) stream happens
  // before the k-th recv on it (eager send, blocking recv).
  std::map<std::tuple<int, int, std::string>, std::vector<unsigned>>
      SendQ, RecvQ;
  for (int Pr = 0; Pr != M.Procs; ++Pr)
    for (size_t I = 0; I != M.Trace[Pr].size(); ++I) {
      const SchedEvent &E = M.Trace[Pr][I];
      if (E.EvKind == SchedEvent::Kind::Send)
        SendQ[{E.Proc, E.Peer, E.Tag}].push_back(NodeOf(Pr, I));
      else if (E.EvKind == SchedEvent::Kind::Recv)
        RecvQ[{E.Peer, E.Proc, E.Tag}].push_back(NodeOf(Pr, I));
    }
  for (const auto &[Key, Sends] : SendQ) {
    auto It = RecvQ.find(Key);
    if (It == RecvQ.end())
      continue;
    const std::vector<unsigned> &Recvs = It->second;
    for (size_t K = 0; K != Sends.size() && K != Recvs.size(); ++K)
      Succ[Sends[K]].push_back(Recvs[K]);
  }

  // Iterative DFS with a gray set; the first back edge yields the cycle.
  enum : unsigned char { White, Gray, Black };
  std::vector<unsigned char> Color(NumNodes, White);
  std::vector<unsigned> Parent(NumNodes, ~0u);
  std::vector<unsigned> Cycle;
  for (unsigned Start = 0; Start != NumNodes && Cycle.empty(); ++Start) {
    if (Color[Start] != White)
      continue;
    std::vector<std::pair<unsigned, size_t>> Stack{{Start, 0}};
    Color[Start] = Gray;
    while (!Stack.empty() && Cycle.empty()) {
      auto &[Node, Edge] = Stack.back();
      if (Edge == Succ[Node].size()) {
        Color[Node] = Black;
        Stack.pop_back();
        continue;
      }
      unsigned Next = Succ[Node][Edge++];
      if (Color[Next] == Gray) {
        // Recover the cycle Next -> ... -> Node -> Next.
        for (unsigned N = Node;; N = Parent[N]) {
          Cycle.push_back(N);
          if (N == Next)
            break;
        }
        std::reverse(Cycle.begin(), Cycle.end());
      } else if (Color[Next] == White) {
        Color[Next] = Gray;
        Parent[Next] = Node;
        Stack.push_back({Next, 0});
      }
    }
  }
  if (Cycle.empty())
    return Out;

  auto Describe = [&](unsigned Node) -> std::string {
    if (Node >= EventNodes)
      return "collective round " + std::to_string(Node - EventNodes);
    int Pr = 0;
    while (Node >= Base[Pr + 1])
      ++Pr;
    return M.Trace[Pr][Node - Base[Pr]].str(P);
  };
  ScheduleFinding F;
  F.Check = "deadlock";
  for (unsigned Node : Cycle)
    if (Node < EventNodes) {
      int Pr = 0;
      while (Node >= Base[Pr + 1])
        ++Pr;
      F.NestId = M.Trace[Pr][Node - Base[Pr]].NestId;
      break;
    }
  std::ostringstream OS;
  OS << "the schedule's happens-before graph has a wait cycle of "
     << Cycle.size()
     << " event(s): every processor in it waits on another and none can "
        "make progress";
  F.Message = OS.str();
  for (size_t I = 0; I != Cycle.size(); ++I)
    F.Notes.push_back("cycle step " + std::to_string(I) + ": " +
                      Describe(Cycle[I]) + " waits for " +
                      Describe(Cycle[(I + 1) % Cycle.size()]));
  Out.push_back(std::move(F));
  return Out;
}

std::vector<ScheduleFinding> alp::checkMatching(const ScheduleModel &M,
                                                const Program &P) {
  (void)P;
  std::vector<ScheduleFinding> Out;
  // Counts per (src, dst, tag) stream; std::map keeps findings ordered.
  std::map<std::tuple<int, int, std::string>, std::pair<unsigned, unsigned>>
      Streams;
  std::map<std::tuple<int, int, std::string>, unsigned> StreamNest;
  for (int Pr = 0; Pr != M.Procs; ++Pr)
    for (const SchedEvent &E : M.Trace[Pr]) {
      if (E.EvKind == SchedEvent::Kind::Send) {
        std::tuple<int, int, std::string> Key{E.Proc, E.Peer, E.Tag};
        ++Streams[Key].first;
        StreamNest.try_emplace(Key, E.NestId);
      } else if (E.EvKind == SchedEvent::Kind::Recv) {
        std::tuple<int, int, std::string> Key{E.Peer, E.Proc, E.Tag};
        ++Streams[Key].second;
        StreamNest.try_emplace(Key, E.NestId);
      }
    }
  for (const auto &[Key, Counts] : Streams) {
    auto [Sends, Recvs] = Counts;
    if (Sends == Recvs)
      continue;
    const auto &[Src, Dst, Tag] = Key;
    ScheduleFinding F;
    F.Check = "unmatched";
    F.NestId = StreamNest.at(Key);
    std::ostringstream OS;
    if (Sends > Recvs)
      OS << Sends - Recvs << " message(s) from proc " << Src << " to proc "
         << Dst << " on stream '" << Tag
         << "' are sent but never received: the data is lost and the "
            "send buffer never drains";
    else
      OS << Recvs - Sends << " receive(s) on proc " << Dst
         << " from proc " << Src << " on stream '" << Tag
         << "' have no matching send and would block forever";
    F.Message = OS.str();
    F.Notes.push_back("stream '" + Tag + "': " + std::to_string(Sends) +
                      " send(s), " + std::to_string(Recvs) + " recv(s)");
    Out.push_back(std::move(F));
  }
  return Out;
}

std::vector<ScheduleFinding>
alp::checkBufferLifetime(const ScheduleModel &M, const Program &P) {
  (void)P;
  std::vector<ScheduleFinding> Out;
  // Per processor, per nest: longest run of overlapped isends on one
  // stream with no intervening blocking receive (the completion fence).
  for (int Pr = 0; Pr != M.Procs; ++Pr) {
    // Nests in which this processor receives anything: a processor with
    // no incoming stream (the pipeline head) has its issue rate bounded
    // by the pipeline and is exempt.
    std::map<unsigned, bool> ReceivesIn;
    for (const SchedEvent &E : M.Trace[Pr])
      if (E.EvKind == SchedEvent::Kind::Recv)
        ReceivesIn[E.NestId] = true;

    std::map<std::pair<unsigned, std::string>, unsigned> Run;
    std::map<std::pair<unsigned, std::string>, bool> Reported;
    for (const SchedEvent &E : M.Trace[Pr]) {
      if (E.EvKind == SchedEvent::Kind::Recv) {
        // Any blocking receive in the nest fences the double buffers.
        for (auto &[Key, Count] : Run)
          if (Key.first == E.NestId)
            Count = 0;
        continue;
      }
      if (E.EvKind != SchedEvent::Kind::Send || !E.Overlapped)
        continue;
      if (!ReceivesIn.count(E.NestId))
        continue;
      std::pair<unsigned, std::string> Key{E.NestId, E.Tag};
      unsigned InFlight = ++Run[Key];
      if (InFlight > 2 && !Reported[Key]) {
        Reported[Key] = true;
        ScheduleFinding F;
        F.Check = "buffer-overlap";
        F.NestId = E.NestId;
        std::ostringstream OS;
        OS << "proc " << Pr << " issues " << InFlight
           << " overlapped isends in flight on stream '" << E.Tag
           << "' with no completion fence: the double-buffered protocol "
              "has only 2 buffers, so the third isend reuses a buffer "
              "whose previous message may still be in transit";
        F.Message = OS.str();
        F.Notes.push_back(
            "the next block's blocking recv is the completion fence; "
            "none appears between these isends");
        Out.push_back(std::move(F));
      }
    }
  }
  return Out;
}
