//===- analysis/Reaching.cpp - Reaching decompositions ----------------------===//

#include "analysis/Reaching.h"

#include <map>

using namespace alp;

namespace {

/// Per-array set of "last touching" nests with relative probabilities.
using LastTouch = std::map<unsigned, std::vector<std::pair<unsigned, double>>>;

class FlowWalker {
public:
  explicit FlowWalker(const Program &P) : P(P) {}

  std::vector<ArrayFlowEdge> run() {
    LastTouch State;
    walk(P.TopLevel, State, 1.0);
    std::vector<ArrayFlowEdge> Out;
    for (const auto &[Key, Freq] : Edges) {
      auto [ArrayId, From, To] = Key;
      Out.push_back({ArrayId, From, To, Freq});
    }
    return Out;
  }

private:
  const Program &P;
  std::map<std::tuple<unsigned, unsigned, unsigned>, double> Edges;

  void addEntries(LastTouch &State, unsigned ArrayId,
                  const std::vector<std::pair<unsigned, double>> &Entries,
                  double Scale) {
    auto &Slot = State[ArrayId];
    for (const auto &[Nest, Prob] : Entries) {
      bool Found = false;
      for (auto &[ExistingNest, ExistingProb] : Slot)
        if (ExistingNest == Nest) {
          ExistingProb += Prob * Scale;
          Found = true;
          break;
        }
      if (!Found)
        Slot.push_back({Nest, Prob * Scale});
    }
  }

  void visitNest(unsigned NestId, LastTouch &State, double Freq) {
    const LoopNest &Nest = P.nest(NestId);
    for (unsigned ArrayId : Nest.referencedArrays()) {
      auto It = State.find(ArrayId);
      if (It != State.end())
        for (const auto &[From, Prob] : It->second)
          Edges[{ArrayId, From, NestId}] += Prob * Freq;
      State[ArrayId] = {{NestId, 1.0}};
    }
  }

  void walk(const std::vector<ProgramNode> &Nodes, LastTouch &State,
            double Freq) {
    for (const ProgramNode &N : Nodes) {
      switch (N.NodeKind) {
      case ProgramNode::Kind::Nest:
        visitNest(N.NestId, State, Freq);
        break;
      case ProgramNode::Kind::SequentialLoop: {
        double Trip = 1.0;
        // Evaluate the trip count with whatever bindings exist; unbound
        // structure symbols default to their recorded lower bound.
        Rational T = N.TripCount.evaluate(P.SymbolBindings);
        Trip = static_cast<double>(T.num()) / static_cast<double>(T.den());
        if (Trip < 1.0)
          Trip = 1.0;
        // First iteration: entry edges happen once.
        walk(N.Children, State, Freq);
        // Remaining iterations: steady-state edges (including the loop's
        // back edges) happen Trip - 1 more times.
        if (Trip > 1.0)
          walk(N.Children, State, Freq * (Trip - 1.0));
        break;
      }
      case ProgramNode::Kind::Branch: {
        LastTouch ThenState = State;
        LastTouch ElseState = State;
        walk(N.Children, ThenState, Freq * N.TakenProbability);
        walk(N.ElseChildren, ElseState, Freq * (1.0 - N.TakenProbability));
        // Merge: weight each arm's conclusions by the arm probability.
        LastTouch Merged;
        for (const auto &[ArrayId, Entries] : ThenState)
          addEntries(Merged, ArrayId, Entries, N.TakenProbability);
        for (const auto &[ArrayId, Entries] : ElseState)
          addEntries(Merged, ArrayId, Entries, 1.0 - N.TakenProbability);
        State = std::move(Merged);
        break;
      }
      }
    }
  }
};

} // namespace

std::vector<ArrayFlowEdge> alp::computeArrayFlowEdges(const Program &P) {
  return FlowWalker(P).run();
}
