//===- analysis/Reaching.h - Reaching decompositions ------------*- C++ -*-===//
///
/// \file
/// Computes, per array, which loop nest's decomposition can reach which
/// other loop nest (Sec. 6.1): "the decomposition for an array in one loop
/// nest reaches another loop nest if it is possible for the values of the
/// array in the two loop nests to be the same". The result is the edge set
/// of the communication graph, weighted by the expected number of times
/// the transition executes (profile: structure-loop trip counts and branch
/// probabilities), exactly the 25%/75% style weights of Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_ANALYSIS_REACHING_H
#define ALP_ANALYSIS_REACHING_H

#include "ir/Program.h"

#include <vector>

namespace alp {

/// A potential data-reorganization point: array \p ArrayId last touched by
/// nest \p FromNest is next touched by nest \p ToNest, expected
/// \p Frequency times per program run.
struct ArrayFlowEdge {
  unsigned ArrayId = 0;
  unsigned FromNest = 0;
  unsigned ToNest = 0;
  double Frequency = 0.0;
};

/// Runs the reaching-decompositions dataflow over the structure tree.
/// Edges are aggregated by (array, from, to); self-edges (from == to, e.g.
/// a nest in a loop feeding itself next iteration) are included since a
/// nest always agrees with its own decomposition they carry no
/// reorganization and are filtered by the caller if desired.
std::vector<ArrayFlowEdge> computeArrayFlowEdges(const Program &P);

} // namespace alp

#endif // ALP_ANALYSIS_REACHING_H
