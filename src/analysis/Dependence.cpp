//===- analysis/Dependence.cpp - Affine dependence analysis -----------------===//

#include "analysis/Dependence.h"

#include "linalg/FourierMotzkin.h"
#include "linalg/IntegerOps.h"
#include "linalg/SystemKey.h"
#include "support/Arena.h"
#include "support/FailPoint.h"
#include "support/Supervisor.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace alp;

namespace {

/// Injection site at the head of every access-pair dependence test; an
/// injected Status degrades the pair to assumed dependence exactly like a
/// blown budget, an injected exception exercises the supervisor's retry
/// path on the parallel driver.
FailPoint FpDepPair("analysis.dependence.pair");

} // namespace

//===----------------------------------------------------------------------===//
// DepComponent / Dependence
//===----------------------------------------------------------------------===//

DepComponent DepComponent::exact(int64_t D) {
  DepComponent C;
  C.Distance = D;
  C.Direction = D > 0 ? Dir::Lt : (D < 0 ? Dir::Gt : Dir::Eq);
  return C;
}

bool DepComponent::mayBeNegative() const {
  if (Distance)
    return *Distance < 0;
  return Direction == Dir::Gt || Direction == Dir::Ge ||
         Direction == Dir::Star;
}

bool DepComponent::mayBePositive() const {
  if (Distance)
    return *Distance > 0;
  return Direction == Dir::Lt || Direction == Dir::Le ||
         Direction == Dir::Star;
}

bool DepComponent::mayBeZero() const {
  if (Distance)
    return *Distance == 0;
  return Direction != Dir::Lt && Direction != Dir::Gt;
}

std::string DepComponent::str() const {
  if (Distance)
    return std::to_string(*Distance);
  switch (Direction) {
  case Dir::Lt:
    return "+";
  case Dir::Eq:
    return "0";
  case Dir::Gt:
    return "-";
  case Dir::Le:
    return "0+";
  case Dir::Ge:
    return "0-";
  case Dir::Star:
    return "*";
  }
  return "?";
}

bool Dependence::isDistanceVector() const {
  for (const DepComponent &C : Components)
    if (!C.isExact())
      return false;
  return true;
}

std::string Dependence::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case DepKind::Flow:
    OS << "flow";
    break;
  case DepKind::Anti:
    OS << "anti";
    break;
  case DepKind::Output:
    OS << "output";
    break;
  }
  OS << " S" << SrcStmt << "->S" << DstStmt << " (";
  for (unsigned I = 0; I != Components.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Components[I].str();
  }
  OS << ") @level " << Level;
  if (Conservative)
    OS << " [assumed]";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Polyhedron construction
//===----------------------------------------------------------------------===//

namespace {

/// Variable layout for a dependence system over a nest of depth L with NS
/// symbols: [ i_src(0..L-1) | i_dst(L..2L-1) | syms(2L..2L+NS-1) |
/// d(2L+NS..2L+NS+L-1) ] where d_k = i_dst[k] - i_src[k].
struct DepSystem {
  unsigned Depth;
  std::vector<std::string> Symbols;
  ConstraintSystem CS;
  /// The pure equality rows (subscript equations and distance
  /// definitions) as an integer system, for the exact lattice test:
  /// rational feasibility alone admits parity-style phantoms that the
  /// per-row GCD test cannot see.
  std::vector<std::vector<int64_t>> EqRows;
  std::vector<int64_t> EqRhs;

  DepSystem(unsigned Depth, std::vector<std::string> Symbols)
      : Depth(Depth), Symbols(std::move(Symbols)),
        CS(2 * Depth + this->Symbols.size() + Depth) {}

  /// Records an equality row Coeffs . x + Const == 0 into the integer
  /// system as well (scaled to integers).
  void addIntegerEquality(const Vector &Coeffs, const Rational &Const) {
    int64_t Lcm = Const.den();
    for (const Rational &C : Coeffs)
      Lcm = lcm64(Lcm, C.den());
    std::vector<int64_t> Row(Coeffs.size());
    for (unsigned I = 0; I != Coeffs.size(); ++I)
      Row[I] = (Coeffs[I] * Rational(Lcm)).asInteger();
    EqRows.push_back(std::move(Row));
    EqRhs.push_back((-Const * Rational(Lcm)).asInteger());
  }

  /// True if the equalities plus "d_j == 0 for j < Level" admit an
  /// integer solution (pass Level == Depth to pin every distance, the
  /// loop-independent case). Bounds and the d_Level >= 1 inequality are
  /// ignored: a pure lattice test, so "true" can still be refuted by
  /// Fourier-Motzkin, but "false" is definitive.
  bool integerFeasible(unsigned Level) const {
    unsigned NVars = CS.numVars();
    std::vector<std::vector<int64_t>> Rows = EqRows;
    std::vector<int64_t> Rhs = EqRhs;
    for (unsigned J = 0; J != Level && J != Depth; ++J) {
      std::vector<int64_t> Row(NVars, 0);
      Row[distVar(J)] = 1;
      Rows.push_back(std::move(Row));
      Rhs.push_back(0);
    }
    IntMatrix A(Rows.size(), NVars);
    for (unsigned R = 0; R != Rows.size(); ++R)
      for (unsigned C = 0; C != NVars; ++C)
        A.at(R, C) = Rows[R][C];
    return solveIntegerSystem(A, Rhs).has_value();
  }

  unsigned numVars() const { return CS.numVars(); }
  unsigned srcVar(unsigned K) const { return K; }
  unsigned dstVar(unsigned K) const { return Depth + K; }
  unsigned symVar(unsigned S) const { return 2 * Depth + S; }
  unsigned distVar(unsigned K) const {
    return 2 * Depth + Symbols.size() + K;
  }

  unsigned symIndex(const std::string &Name) const {
    for (unsigned I = 0; I != Symbols.size(); ++I)
      if (Symbols[I] == Name)
        return I;
    assert(false && "symbol not collected");
    return 0;
  }

  /// Adds coefficients of a SymAffine into a coefficient row / constant.
  void addSym(const SymAffine &A, Vector &Coeffs, Rational &Const,
              Rational Scale) const {
    Const += A.constant() * Scale;
    for (const auto &[Name, C] : A.symbolCoeffs())
      Coeffs[symVar(symIndex(Name))] += C * Scale;
  }
};

int64_t floorRat(const Rational &R) {
  int64_t Q = R.num() / R.den();
  if (R.num() % R.den() != 0 && R.num() < 0)
    --Q;
  return Q;
}

int64_t ceilRat(const Rational &R) {
  int64_t Q = R.num() / R.den();
  if (R.num() % R.den() != 0 && R.num() > 0)
    ++Q;
  return Q;
}

/// Bounds projection that unwinds on failure: a budget trip or overflow
/// Status is re-raised as AlpException so the per-pair conservative
/// fallback in analyzePair takes over in one place.
std::optional<VariableBounds> boundsOrUnwind(const ConstraintSystem &CS,
                                             unsigned Var,
                                             ResourceBudget *Budget) {
  if (!Budget)
    return CS.boundsOf(Var);
  Expected<std::optional<VariableBounds>> E = CS.boundsOf(Var, Budget);
  if (!E.hasValue())
    throw AlpException(E.status());
  return E.takeValue();
}

/// Memoizing wrapper around boundsOrUnwind. A hit replays a projection
/// whose elimination steps were charged when it was first computed, so the
/// hit charges the budget nothing; failed projections (budget trip /
/// overflow) unwind before the store and are never cached. Every
/// memoizable request's identity is appended to \p Refs (when given) so
/// the merge-order cache ledger can be derived deterministically.
std::optional<VariableBounds>
cachedBounds(const ConstraintSystem &CS, unsigned Var,
             const CanonicalSystemKey *Key, DependenceCache *Cache,
             ResourceBudget *Budget, std::vector<uint64_t> *Refs) {
  if (Key && Cache) {
    if (Refs)
      // Same combination the cache's own EntryKeyHash uses.
      Refs->push_back(Key->Hash * 1099511628211ull + Var);
    if (auto Hit = Cache->lookupBounds(*Key, Var))
      return *Hit;
  }
  std::optional<VariableBounds> B = boundsOrUnwind(CS, Var, Budget);
  if (Key && Cache)
    Cache->storeBounds(*Key, Var, B);
  return B;
}

/// Refinement of rational feasibility: projects the system onto every
/// single variable and rejects when some projection interval contains no
/// integer (e.g. j in [3/5, 2/3]). Catches the axis-thin phantoms that
/// survive both the GCD and the lattice tests; returns false also when
/// the system is rationally infeasible outright.
bool hasIntegerPointPerAxis(const ConstraintSystem &CS,
                            const CanonicalSystemKey *Key,
                            DependenceCache *Cache, ResourceBudget *Budget,
                            std::vector<uint64_t> *Refs) {
  for (unsigned V = 0; V != CS.numVars(); ++V) {
    auto B = cachedBounds(CS, V, Key, Cache, Budget, Refs);
    if (!B)
      return false;
    if (B->Lower && B->Upper &&
        ceilRat(*B->Lower) > floorRat(*B->Upper))
      return false;
  }
  return true;
}

/// Collects every symbol mentioned by the nest bounds or the two accesses.
std::vector<std::string> collectSymbols(const LoopNest &Nest,
                                        const AffineAccessMap &A,
                                        const AffineAccessMap &B) {
  std::set<std::string> Names;
  auto FromSym = [&](const SymAffine &S) {
    for (const auto &[Name, C] : S.symbolCoeffs()) {
      (void)C;
      Names.insert(Name);
    }
  };
  for (const Loop &L : Nest.Loops) {
    for (const BoundTerm &T : L.Lower)
      FromSym(T.Const);
    for (const BoundTerm &T : L.Upper)
      FromSym(T.Const);
  }
  for (unsigned I = 0; I != A.arrayDim(); ++I)
    FromSym(A.constant()[I]);
  for (unsigned I = 0; I != B.arrayDim(); ++I)
    FromSym(B.constant()[I]);
  return std::vector<std::string>(Names.begin(), Names.end());
}

/// Adds loop bound constraints for the iteration-variable block starting at
/// \p Base (either src or dst block).
void addBoundConstraints(DepSystem &DS, const LoopNest &Nest, bool IsDst) {
  unsigned L = Nest.depth();
  for (unsigned K = 0; K != L; ++K) {
    const Loop &Loop = Nest.Loops[K];
    for (const BoundTerm &T : Loop.Lower) {
      // i_k - (coeffs . i_outer + const) >= 0.
      Vector C(DS.numVars());
      Rational Const(0);
      C[IsDst ? DS.dstVar(K) : DS.srcVar(K)] = 1;
      for (unsigned J = 0; J != L; ++J)
        C[IsDst ? DS.dstVar(J) : DS.srcVar(J)] -= T.OuterCoeffs[J];
      DS.addSym(T.Const, C, Const, Rational(-1));
      DS.CS.addInequality(C, Const);
    }
    for (const BoundTerm &T : Loop.Upper) {
      // (coeffs . i_outer + const) - i_k >= 0.
      Vector C(DS.numVars());
      Rational Const(0);
      C[IsDst ? DS.dstVar(K) : DS.srcVar(K)] = -1;
      for (unsigned J = 0; J != L; ++J)
        C[IsDst ? DS.dstVar(J) : DS.srcVar(J)] += T.OuterCoeffs[J];
      DS.addSym(T.Const, C, Const, Rational(1));
      DS.CS.addInequality(C, Const);
    }
  }
}

//===----------------------------------------------------------------------===//
// Independence tiers (cheap, conservative filters before the exact test)
//===----------------------------------------------------------------------===//

/// Tier 0 — per-equation GCD feasibility: an all-integer equality
/// sum(c_i x_i) = c0 with no symbolic terms has integer solutions only if
/// gcd(c_i) | c0.
bool gcdTestPasses(const AffineAccessMap &A, const AffineAccessMap &B) {
  for (unsigned R = 0; R != A.arrayDim(); ++R) {
    SymAffine Diff = B.constant()[R] - A.constant()[R];
    if (!Diff.isConstant())
      continue; // Symbols present: no conclusion.
    if (!Diff.constant().isInteger())
      return false;
    int64_t G = 0;
    bool AllInt = true;
    for (unsigned J = 0; J != A.nestDepth(); ++J) {
      const Rational &Ca = A.linear().at(R, J);
      const Rational &Cb = B.linear().at(R, J);
      if (!Ca.isInteger() || !Cb.isInteger()) {
        AllInt = false;
        break;
      }
      G = gcd64(G, Ca.asInteger());
      G = gcd64(G, Cb.asInteger());
    }
    if (!AllInt)
      continue;
    int64_t C0 = Diff.constant().asInteger();
    if (G == 0) {
      if (C0 != 0)
        return false;
      continue;
    }
    if (C0 % G != 0)
      return false;
  }
  return true;
}

/// Constant rectangular range [Lo, Hi] of \p L, derivable only when every
/// bound term is outer-loop-independent and symbol-free. Any triangular or
/// symbolic term makes the range nullopt and tier 1 skips the pair — a
/// conservative skip, never a wrong answer.
std::optional<std::pair<Rational, Rational>> constantLoopRange(const Loop &L) {
  std::optional<Rational> Lo, Hi;
  for (const BoundTerm &T : L.Lower) {
    if (!T.OuterCoeffs.isZero() || !T.Const.isConstant())
      return std::nullopt;
    Rational V = T.Const.constant();
    if (!Lo || *Lo < V) // Effective lower bound = max of lower terms.
      Lo = V;
  }
  for (const BoundTerm &T : L.Upper) {
    if (!T.OuterCoeffs.isZero() || !T.Const.isConstant())
      return std::nullopt;
    Rational V = T.Const.constant();
    if (!Hi || V < *Hi) // Effective upper bound = min of upper terms.
      Hi = V;
  }
  if (!Lo || !Hi)
    return std::nullopt;
  return std::make_pair(*Lo, *Hi);
}

/// Tier 1 — Banerjee bounds test over rectangular nests: a subscript pair
/// can only be dependent if the linear form sum_j (a_j i_j - b_j i'_j)
/// attains the constant difference of the subscripts somewhere on the
/// bounding box of the iteration space. True = proven independent at every
/// level; false = no conclusion. Strictly weaker than the exact tier-2
/// test (the polyhedron contains the same bound constraints), so skipping
/// or disabling this tier never changes the analysis result.
bool banerjeeIndependent(const LoopNest &Nest, const AffineAccessMap &A,
                         const AffineAccessMap &B) {
  unsigned L = Nest.depth();
  std::vector<std::pair<Rational, Rational>> Range;
  Range.reserve(L);
  for (const Loop &Lp : Nest.Loops) {
    auto R = constantLoopRange(Lp);
    if (!R)
      return false; // Non-rectangular bounds: no conclusion.
    if (R->second < R->first)
      return true; // Empty iteration space executes nothing.
    Range.push_back(*R);
  }
  for (unsigned R = 0; R != A.arrayDim(); ++R) {
    SymAffine Diff = B.constant()[R] - A.constant()[R];
    if (!Diff.isConstant())
      continue; // Symbols present: no conclusion for this subscript.
    const Rational C0 = Diff.constant();
    // Extremes of sum_j (a_j i_j - b_j i'_j) over the box.
    Rational Min(0), Max(0);
    auto Accumulate = [&](const Rational &C, unsigned J) {
      if (C.isZero())
        return;
      const Rational &Lo = Range[J].first;
      const Rational &Hi = Range[J].second;
      if (C.isNegative()) {
        Min += C * Hi;
        Max += C * Lo;
      } else {
        Min += C * Lo;
        Max += C * Hi;
      }
    };
    for (unsigned J = 0; J != L; ++J) {
      Accumulate(A.linear().at(R, J), J);
      Accumulate(-B.linear().at(R, J), J);
    }
    if (C0 < Min || Max < C0)
      return true; // Subscripts can never meet: independent.
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// DependenceAnalysis
//===----------------------------------------------------------------------===//

DependenceAnalysis::DependenceAnalysis(const Program &P,
                                       ResourceBudget *Budget,
                                       DependenceOptions Opts)
    : P(P), Budget(Budget), Options(Opts) {
  if (Options.Memoize) {
    if (Options.SharedCache) {
      Cache = Options.SharedCache;
    } else {
      OwnCache = std::make_unique<DependenceCache>();
      Cache = OwnCache.get();
    }
  }
}

DependenceTierStats DependenceAnalysis::tierStats() const {
  DependenceTierStats S;
  S.Pairs = NumPairs.load(std::memory_order_relaxed);
  S.GcdIndependent = NumGcdIndependent.load(std::memory_order_relaxed);
  S.BanerjeeIndependent =
      NumBanerjeeIndependent.load(std::memory_order_relaxed);
  S.ExactTested = NumExactTested.load(std::memory_order_relaxed);
  if (Cache) {
    DependenceCacheStats CS = Cache->stats();
    S.CacheHits = CS.Hits;
    S.CacheMisses = CS.Misses;
  }
  S.LogicalCacheHits = NumLogicalCacheHits;
  S.LogicalCacheMisses = NumLogicalCacheMisses;
  S.EliminationSteps = NumEliminationSteps.load(std::memory_order_relaxed);
  return S;
}

void DependenceTierStats::publishTo(MetricsRegistry &MR) const {
  // Deterministic section: identical for every --jobs value.
  MR.add("dep.pairs", Pairs);
  MR.add("dep.tier0_gcd_independent", GcdIndependent);
  MR.add("dep.tier1_banerjee_independent", BanerjeeIndependent);
  MR.add("dep.tier2_exact_tested", ExactTested);
  MR.add("dep.cache.hits", LogicalCacheHits);
  MR.add("dep.cache.misses", LogicalCacheMisses);
  // Scheduling-dependent section (budget consumption varies with raw
  // cache hits; the raw cache traffic itself publishes via
  // DependenceCacheStats::publishTo).
  MR.setGauge("dep.fm_elimination_steps",
              static_cast<double>(EliminationSteps));
}

void DependenceAnalysis::analyzePair(const LoopNest &Nest,
                                     const PairTask &Task,
                                     ResourceBudget *PairBudget,
                                     PairResult &Res) const {
  const unsigned SStmt = Task.SStmt, SAcc = Task.SAcc;
  const unsigned TStmt = Task.TStmt, TAcc = Task.TAcc;
  NumPairs.fetch_add(1, std::memory_order_relaxed);
  // The pair's dependence polyhedra and all FM scratch live on the worker's
  // arena and are rewound wholesale on return; only plain results (Deps,
  // warnings, cache refs) escape into Res. Blocks stay warm across pairs,
  // so the steady state never touches malloc.
  ArenaScope Scope;
  const uint64_t StepsBefore =
      PairBudget
          ? PairBudget->UsedEliminationSteps.load(std::memory_order_relaxed)
          : 0;
  // Per-pair consumption is the counter delta on the pair's own budget
  // (or the shared one on the serial path — still single-threaded there).
  auto RecordSteps = [&] {
    if (PairBudget)
      Res.EliminationSteps =
          PairBudget->UsedEliminationSteps.load(std::memory_order_relaxed) -
          StepsBefore;
  };
  try {

  const ArrayAccess &A = Nest.Body[SStmt].Accesses[SAcc];
  const ArrayAccess &B = Nest.Body[TStmt].Accesses[TAcc];
  unsigned L = Nest.depth();

  if (Status S = FpDepPair.evaluate(PairBudget); !S)
    throw AlpException(S);
  if (PairBudget)
    if (Status S = PairBudget->checkDeadline(); !S)
      throw AlpException(S);

  if (Options.TieredTests) {
    // Tier 0: GCD divisibility on the subscript equations.
    if (!gcdTestPasses(A.Map, B.Map)) {
      NumGcdIndependent.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Tier 1: Banerjee bounds. Overflow while forming the extremes means
    // "no conclusion", not degradation — fall through to the exact tier.
    bool Independent = false;
    try {
      Independent = banerjeeIndependent(Nest, A.Map, B.Map);
    } catch (const AlpException &) {
    }
    if (Independent) {
      NumBanerjeeIndependent.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  NumExactTested.fetch_add(1, std::memory_order_relaxed);
  TraceSpan ExactSpan(Options.Trace, "dep.exact");

  // Tier 2: the exact Fourier-Motzkin test on the dependence polyhedron.
  DepSystem DS(L, collectSymbols(Nest, A.Map, B.Map));

  // Subscript equalities: F_a i_src + k_a == F_b i_dst + k_b.
  for (unsigned R = 0; R != A.Map.arrayDim(); ++R) {
    Vector C(DS.numVars());
    Rational Const(0);
    for (unsigned J = 0; J != L; ++J) {
      C[DS.srcVar(J)] += A.Map.linear().at(R, J);
      C[DS.dstVar(J)] -= B.Map.linear().at(R, J);
    }
    DS.addSym(A.Map.constant()[R], C, Const, Rational(1));
    DS.addSym(B.Map.constant()[R], C, Const, Rational(-1));
    DS.CS.addEquality(C, Const);
    DS.addIntegerEquality(C, Const);
  }
  addBoundConstraints(DS, Nest, /*IsDst=*/false);
  addBoundConstraints(DS, Nest, /*IsDst=*/true);
  // Distance definitions d_k = i_dst[k] - i_src[k].
  for (unsigned K = 0; K != L; ++K) {
    Vector C(DS.numVars());
    C[DS.distVar(K)] = 1;
    C[DS.dstVar(K)] = -1;
    C[DS.srcVar(K)] = 1;
    DS.CS.addEquality(C, Rational(0));
    DS.addIntegerEquality(C, Rational(0));
  }

  DepKind Kind = A.IsWrite ? (B.IsWrite ? DepKind::Output : DepKind::Flow)
                           : DepKind::Anti;

  auto MakeDependence = [&](unsigned Level, const ConstraintSystem &CS,
                            const CanonicalSystemKey *Key) -> Dependence {
    Dependence D;
    D.SrcStmt = SStmt;
    D.DstStmt = TStmt;
    D.SrcAccess = SAcc;
    D.DstAccess = TAcc;
    D.ArrayId = A.ArrayId;
    D.Kind = Kind;
    D.Level = Level;
    for (unsigned J = 0; J != L; ++J) {
      auto Bounds =
          cachedBounds(CS, DS.distVar(J), Key, Cache, PairBudget,
                       &Res.CacheRefs);
      DepComponent Comp = DepComponent::dir(DepComponent::Dir::Star);
      if (Bounds) {
        // Distances are integers: tighten the rational projection.
        std::optional<int64_t> Lo, Hi;
        if (Bounds->Lower)
          Lo = ceilRat(*Bounds->Lower);
        if (Bounds->Upper)
          Hi = floorRat(*Bounds->Upper);
        if (Lo && Hi && *Lo == *Hi) {
          Comp = DepComponent::exact(*Lo);
        } else if (Lo && *Lo >= 1) {
          Comp = DepComponent::dir(DepComponent::Dir::Lt);
        } else if (Hi && *Hi <= -1) {
          Comp = DepComponent::dir(DepComponent::Dir::Gt);
        } else if (Lo && *Lo >= 0) {
          Comp = DepComponent::dir(DepComponent::Dir::Le);
        } else if (Hi && *Hi <= 0) {
          Comp = DepComponent::dir(DepComponent::Dir::Ge);
        }
      }
      D.Components.push_back(Comp);
    }
    return D;
  };

  // The canonical key of one per-level system, or null when memoization is
  // off or canonicalization overflowed (then that system is just not
  // memoized; the test itself proceeds identically).
  CanonicalSystemKey KeyStorage;
  auto KeyOf = [&](const ConstraintSystem &CS) -> const CanonicalSystemKey * {
    if (!Cache)
      return nullptr;
    try {
      KeyStorage = canonicalSystemKey(CS);
      return &KeyStorage;
    } catch (const AlpException &) {
      return nullptr;
    }
  };

  // Carried dependences: for each level K require d_0..d_{K-1} == 0 and
  // d_K >= 1.
  for (unsigned K = 0; K != L; ++K) {
    if (!DS.integerFeasible(K))
      continue; // No integer point on the equality lattice.
    ConstraintSystem CS = DS.CS;
    for (unsigned J = 0; J != K; ++J) {
      Vector C(DS.numVars());
      C[DS.distVar(J)] = 1;
      CS.addEquality(C, Rational(0));
    }
    Vector C(DS.numVars());
    C[DS.distVar(K)] = 1;
    CS.addInequality(C, Rational(-1)); // d_K - 1 >= 0.
    const CanonicalSystemKey *Key = KeyOf(CS);
    if (!hasIntegerPointPerAxis(CS, Key, Cache, PairBudget, &Res.CacheRefs))
      continue;
    Res.Deps.push_back(MakeDependence(K, CS, Key));
  }

  // Loop-independent dependence: all distances zero, source statement
  // strictly before the destination statement in the body.
  if (SStmt < TStmt && DS.integerFeasible(L)) {
    ConstraintSystem CS = DS.CS;
    for (unsigned J = 0; J != L; ++J) {
      Vector C(DS.numVars());
      C[DS.distVar(J)] = 1;
      CS.addEquality(C, Rational(0));
    }
    const CanonicalSystemKey *Key = KeyOf(CS);
    if (hasIntegerPointPerAxis(CS, Key, Cache, PairBudget, &Res.CacheRefs))
      Res.Deps.push_back(MakeDependence(L, CS, Key));
  }

  } catch (const AlpException &E) {
    // Exact test blew the budget or 64-bit arithmetic: discard whatever
    // partial answer was produced for this pair and assume dependence.
    Res.Deps.clear();
    appendConservativePair(Nest, Task, E.status(), Res);
  }
  RecordSteps();
}

void DependenceAnalysis::appendConservativePair(const LoopNest &Nest,
                                                const PairTask &Task,
                                                const Status &Why,
                                                PairResult &Res) const {
  const ArrayAccess &A = Nest.Body[Task.SStmt].Accesses[Task.SAcc];
  const ArrayAccess &B = Nest.Body[Task.TStmt].Accesses[Task.TAcc];
  unsigned L = Nest.depth();
  DepKind Kind = A.IsWrite ? (B.IsWrite ? DepKind::Output : DepKind::Flow)
                           : DepKind::Anti;
  auto MakeStar = [&](unsigned Level) {
    Dependence D;
    D.SrcStmt = Task.SStmt;
    D.DstStmt = Task.TStmt;
    D.SrcAccess = Task.SAcc;
    D.DstAccess = Task.TAcc;
    D.ArrayId = A.ArrayId;
    D.Kind = Kind;
    D.Level = Level;
    D.Components.assign(L, DepComponent::dir(DepComponent::Dir::Star));
    D.Conservative = true;
    return D;
  };
  // A dependence carried at every level, plus the loop-independent slot
  // when statement order admits one — the maximally pessimistic answer.
  for (unsigned K = 0; K != L; ++K)
    Res.Deps.push_back(MakeStar(K));
  if (Task.SStmt < Task.TStmt)
    Res.Deps.push_back(MakeStar(L));
  Res.Degraded = true;
  std::ostringstream OS;
  OS << "dependence test S" << Task.SStmt << "/a" << Task.SAcc << " -> S"
     << Task.TStmt << "/a" << Task.TAcc << " assumed dependent ("
     << Why.str() << ")";
  Res.Warnings.push_back(OS.str());
}

std::vector<Dependence>
DependenceAnalysis::analyze(const LoopNest &Nest) const {
  // Gather the pairs up front so serial and parallel runs share one
  // deterministic order.
  std::vector<PairTask> Pairs;
  for (unsigned S = 0; S != Nest.Body.size(); ++S)
    for (unsigned T = 0; T != Nest.Body.size(); ++T)
      for (unsigned SA = 0; SA != Nest.Body[S].Accesses.size(); ++SA)
        for (unsigned TA = 0; TA != Nest.Body[T].Accesses.size(); ++TA) {
          const ArrayAccess &A = Nest.Body[S].Accesses[SA];
          const ArrayAccess &B = Nest.Body[T].Accesses[TA];
          if (A.ArrayId != B.ArrayId || (!A.IsWrite && !B.IsWrite))
            continue;
          if (S == T && SA == TA && !A.IsWrite)
            continue;
          Pairs.push_back(PairTask{S, SA, T, TA});
        }

  std::vector<Dependence> Out;
  auto Merge = [&](PairResult &R) {
    for (Dependence &D : R.Deps)
      Out.push_back(std::move(D));
    for (std::string &W : R.Warnings)
      Warnings.push_back(std::move(W));
    Degraded |= R.Degraded;
    // Replay the pair's projection requests in merge order (always pair
    // order, always one thread): first sighting of a key is a logical
    // miss, every later one a logical hit — the job-count-independent
    // ledger the raw cache counters cannot provide.
    for (uint64_t Ref : R.CacheRefs) {
      if (SeenCacheRefs.insert(Ref).second)
        ++NumLogicalCacheMisses;
      else
        ++NumLogicalCacheHits;
    }
    NumEliminationSteps.fetch_add(R.EliminationSteps,
                                  std::memory_order_relaxed);
  };

  if (!Options.Pool) {
    // Serial path: pairs share the cumulative budget, preserving the
    // historical "one budget caps the whole analysis" semantics.
    for (const PairTask &T : Pairs) {
      PairResult R;
      analyzePair(Nest, T, Budget, R);
      Merge(R);
    }
    return Out;
  }

  // Parallel path, supervised: each pair attempt gets its own copy of the
  // budget (shared absolute deadline, private step counters) so which
  // pair degrades cannot depend on scheduling, then results merge in pair
  // order — byte-identical output for every job count. analyzePair
  // answers budget exhaustion and AlpException conservatively itself; the
  // supervisor catches what escapes it (injected OOM, task deadline),
  // retries on a shrunken budget, and degrades the pair to the same
  // assumed-dependence answer when every attempt fails.
  // Pairs are batched into coarser supervised tasks: one fine-grained task
  // per pair made scheduling overhead (queueing, budget copies, outcome
  // bookkeeping) rival the ~100us of real work per pair. The batch size is
  // a fixed constant — never derived from the job count — so the partition,
  // and with it every counter and retry decision, is identical for every
  // --jobs value, and results still merge in pair order.
  constexpr size_t BatchSize = 8;
  const size_t NumBatches = (Pairs.size() + BatchSize - 1) / BatchSize;
  std::vector<PairResult> Results(Pairs.size());
  SupervisorOptions SOpts;
  SOpts.MaxAttempts = Options.TaskAttempts;
  SOpts.TaskDeadlineMs = Options.TaskDeadlineMs;
  SOpts.Observe = Options.Observe;
  Supervisor Sup(Options.Pool, Budget, SOpts);
  std::vector<SupervisedOutcome> Outcomes =
      Sup.run(NumBatches, [&](size_t BI, ResourceBudget *B) {
        const size_t Begin = BI * BatchSize;
        const size_t End = std::min(Begin + BatchSize, Pairs.size());
        for (size_t I = Begin; I != End; ++I) {
          Results[I] = PairResult(); // Fresh slate on retry.
          // Keep the historical "null budget = unlimited" fast path unless
          // a per-task deadline needs the supervisor's budget to carry it.
          if (!Budget && !Options.TaskDeadlineMs) {
            analyzePair(Nest, Pairs[I], nullptr, Results[I]);
            continue;
          }
          // Each pair still gets a private copy of this attempt's budget
          // (fresh counters, same limits, shared deadline/cancel) — exactly
          // what it had as its own supervised task — so which pair degrades
          // stays independent of both scheduling and batching.
          ResourceBudget PairBudget = B->degradedCopy(1.0);
          analyzePair(Nest, Pairs[I], &PairBudget, Results[I]);
        }
        return Status::ok();
      });
  for (size_t BI = 0; BI != NumBatches; ++BI) {
    SupervisedOutcome &O = Outcomes[BI];
    const size_t Begin = BI * BatchSize;
    const size_t End = std::min(Begin + BatchSize, Pairs.size());
    if (O.degraded()) {
      // The whole batch degrades to the assumed-dependence answer: sound,
      // and deterministic because batch membership is fixed.
      for (size_t I = Begin; I != End; ++I) {
        Results[I] = PairResult();
        appendConservativePair(Nest, Pairs[I], O.Result, Results[I]);
      }
    } else if (O.retried()) {
      Results[Begin].Warnings.push_back("dependence " +
                                        Supervisor::describe(O, BI));
    }
  }
  for (PairResult &R : Results)
    Merge(R);
  return Out;
}

std::vector<bool>
DependenceAnalysis::parallelizableLevels(const LoopNest &Nest) const {
  std::vector<bool> Parallel(Nest.depth(), true);
  for (const Dependence &D : analyze(Nest))
    if (D.Level < Nest.depth())
      Parallel[D.Level] = false;
  return Parallel;
}

std::vector<std::vector<int64_t>> DependenceAnalysis::exactDistanceVectors(
    const std::vector<Dependence> &Deps) {
  std::vector<std::vector<int64_t>> Out;
  for (const Dependence &D : Deps) {
    if (!D.isDistanceVector())
      continue;
    std::vector<int64_t> V;
    for (const DepComponent &C : D.Components)
      V.push_back(*C.Distance);
    Out.push_back(std::move(V));
  }
  return Out;
}
