//===- analysis/Lint.cpp - Lint framework and pass registry ---------------===//

#include "analysis/Lint.h"

#include <algorithm>
#include <tuple>

using namespace alp;

unsigned LintResult::count(Diagnostic::Kind K) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.DiagKind == K)
      ++N;
  return N;
}

Diagnostic &LintContext::report(Diagnostic::Kind K, const std::string &PassId,
                                SourceLoc Loc, const std::string &Message) {
  Diagnostic D;
  D.DiagKind = K;
  D.PassId = PassId;
  D.Loc = Loc;
  D.Message = Message;
  Result.Diags.push_back(std::move(D));
  return Result.Diags.back();
}

void LintContext::notChecked(const std::string &PassId,
                             const std::string &Reason) {
  Result.Unchecked.push_back({PassId, Reason});
}

namespace alp {
// Pass factories (one per family, defined in their own files).
std::unique_ptr<LintPass> createRaceLintPass();
std::unique_ptr<LintPass> createModelLintPass();
std::unique_ptr<LintPass> createDecompLintPass();
std::unique_ptr<LintPass> createScheduleLintPass();
} // namespace alp

std::vector<std::unique_ptr<LintPass>>
alp::createLintPasses(const LintOptions &Opts) {
  std::vector<std::unique_ptr<LintPass>> Passes;
  if (Opts.CheckRaces)
    Passes.push_back(createRaceLintPass());
  if (Opts.CheckModel)
    Passes.push_back(createModelLintPass());
  if (Opts.CheckDecomposition)
    Passes.push_back(createDecompLintPass());
  if (Opts.CheckSchedule)
    Passes.push_back(createScheduleLintPass());
  return Passes;
}

void alp::normalizeLintDiagnostics(std::vector<Diagnostic> &Diags) {
  auto NoteKey = [](const Diagnostic &D) {
    std::string S;
    for (const DiagNote &N : D.Notes) {
      S += std::to_string(N.Loc.Line) + ':' + std::to_string(N.Loc.Column);
      S += ':' + N.Message + '\n';
    }
    return S;
  };
  auto Key = [&](const Diagnostic &D) {
    return std::make_tuple(D.Loc.Line, D.Loc.Column, D.PassId, D.Message,
                           static_cast<int>(D.DiagKind), NoteKey(D),
                           D.FixIt);
  };
  // Stable: diagnostics at one (location, pass, message) keep the order
  // their pass emitted them in.
  std::stable_sort(Diags.begin(), Diags.end(),
                   [&](const Diagnostic &A, const Diagnostic &B) {
                     return std::make_tuple(A.Loc.Line, A.Loc.Column,
                                            A.PassId, A.Message) <
                            std::make_tuple(B.Loc.Line, B.Loc.Column,
                                            B.PassId, B.Message);
                   });
  Diags.erase(std::unique(Diags.begin(), Diags.end(),
                          [&](const Diagnostic &A, const Diagnostic &B) {
                            return Key(A) == Key(B);
                          }),
              Diags.end());
}

LintResult alp::runLintPasses(const Program &P, const ProgramDecomposition *PD,
                              const LintOptions &Opts) {
  LintResult Result;
  LintContext Ctx(P, PD, Opts, Result);
  for (const std::unique_ptr<LintPass> &Pass : createLintPasses(Opts)) {
    // Decomposition and schedule checks need a decomposition to check.
    std::string Id = Pass->id();
    if ((Id == "decomp" || Id == "schedule") && !PD)
      continue;
    // Framework-level fail-soft backstop: a pass that trips checked
    // arithmetic degrades to "not checked"; it never takes the run down.
    try {
      Pass->run(Ctx);
    } catch (const AlpException &E) {
      Ctx.notChecked(Pass->id(), E.status().str());
    }
  }
  normalizeLintDiagnostics(Result.Diags);
  return Result;
}
