//===- analysis/Lint.cpp - Lint framework and pass registry ---------------===//

#include "analysis/Lint.h"

using namespace alp;

unsigned LintResult::count(Diagnostic::Kind K) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.DiagKind == K)
      ++N;
  return N;
}

Diagnostic &LintContext::report(Diagnostic::Kind K, const std::string &PassId,
                                SourceLoc Loc, const std::string &Message) {
  Diagnostic D;
  D.DiagKind = K;
  D.PassId = PassId;
  D.Loc = Loc;
  D.Message = Message;
  Result.Diags.push_back(std::move(D));
  return Result.Diags.back();
}

void LintContext::notChecked(const std::string &PassId,
                             const std::string &Reason) {
  Result.Unchecked.push_back({PassId, Reason});
}

namespace alp {
// Pass factories (one per family, defined in their own files).
std::unique_ptr<LintPass> createRaceLintPass();
std::unique_ptr<LintPass> createModelLintPass();
std::unique_ptr<LintPass> createDecompLintPass();
} // namespace alp

std::vector<std::unique_ptr<LintPass>>
alp::createLintPasses(const LintOptions &Opts) {
  std::vector<std::unique_ptr<LintPass>> Passes;
  if (Opts.CheckRaces)
    Passes.push_back(createRaceLintPass());
  if (Opts.CheckModel)
    Passes.push_back(createModelLintPass());
  if (Opts.CheckDecomposition)
    Passes.push_back(createDecompLintPass());
  return Passes;
}

LintResult alp::runLintPasses(const Program &P, const ProgramDecomposition *PD,
                              const LintOptions &Opts) {
  LintResult Result;
  LintContext Ctx(P, PD, Opts, Result);
  for (const std::unique_ptr<LintPass> &Pass : createLintPasses(Opts)) {
    // Decomposition checks need a decomposition to check.
    if (std::string(Pass->id()) == "decomp" && !PD)
      continue;
    // Framework-level fail-soft backstop: a pass that trips checked
    // arithmetic degrades to "not checked"; it never takes the run down.
    try {
      Pass->run(Ctx);
    } catch (const AlpException &E) {
      Ctx.notChecked(Pass->id(), E.status().str());
    }
  }
  return Result;
}
