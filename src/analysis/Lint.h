//===- analysis/Lint.h - Pass-based static analysis (alp-lint) --*- C++ -*-===//
///
/// \file
/// alp-lint: a diagnostics-producing static-analysis layer over the alp
/// IR. Three pass families run over a Program (and, when available, its
/// ProgramDecomposition):
///
///   race    Forall race detector. Re-runs DependenceAnalysis against the
///           nest's loop classification and reports every dependence
///           carried by a loop marked forall, with the conflicting access
///           pair, the distance/direction vector, and both source
///           locations.
///
///   model   Affine-model lints: loops that provably never execute
///           (zero-trip / rationally infeasible bounds, via
///           Fourier-Motzkin), subscripts provably outside the declared
///           array bounds, arrays that are declared but never referenced,
///           and loop indices that shadow an enclosing index or a program
///           parameter.
///
///   decomp  Decomposition translation validator: the Theorem 4.1 matrix
///           invariants of core/Verify.h plus an SPMD coverage check that
///           every access classified by CommAnalysis is accounted for and
///           every reorganization the emitter prints is backed by a
///           recorded reorganization point (and vice versa) — i.e. no
///           non-local read is left without a covering message.
///
///   schedule  SPMD schedule verifier (docs/ANALYSIS.md "Schedule
///           verification"): expands the planned CommPlan into
///           per-processor event traces (analysis/ScheduleModel.h) and
///           checks the happens-before graph for deadlock, collective
///           agreement, FIFO send/recv matching, double-buffer lifetime
///           under overlap, and remote-access coverage translation
///           validation against CommAnalysis.
///
/// Diagnostics are normalized before they are returned: stable-sorted by
/// (location, pass id, message) and deduplicated, so output is
/// byte-identical across --jobs orderings and repeated notes from retried
/// supervised tasks collapse.
/// Fail-soft contract: every pass takes the shared ResourceBudget. A pass
/// whose underlying solver runs out of budget records an UncheckedPass
/// entry ("this property was not checked, and why") and emits nothing —
/// budget exhaustion can suppress diagnostics but never fabricate one.
///
/// Results render as plain text, as a compact JSON object, or as a SARIF
/// 2.1.0 log (the interchange format CI code-scanning UIs ingest).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_ANALYSIS_LINT_H
#define ALP_ANALYSIS_LINT_H

#include "codegen/CodegenOptions.h"
#include "core/Decomposition.h"
#include "ir/Program.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace alp {

/// Which pass families run, and the shared solver budget.
struct LintOptions {
  bool CheckRaces = true;
  bool CheckModel = true;
  /// Only effective when a decomposition is supplied to runLintPasses.
  bool CheckDecomposition = true;
  /// Schedule verification over the planned communication (also needs a
  /// decomposition).
  bool CheckSchedule = true;
  /// Block size forwarded to CommAnalysis / the SPMD emitter.
  int64_t BlockSize = 4;
  /// Block size the derived execution schedules were built with, when the
  /// caller derived them separately (0 = same as BlockSize). The decomp
  /// pass warns when the two diverge: emitted pipelined code and the
  /// machine schedule would disagree about block boundaries.
  int64_t ScheduleBlockSize = 0;
  /// Shared solver budget; nullptr = unlimited.
  ResourceBudget *Budget = nullptr;
  /// Test-only seeded miscompilation forwarded to the schedule verifier's
  /// planner/model (alpc --miscompile=<mode>); None in production.
  MiscompileMode Miscompile = MiscompileMode::None;
  /// Observability sink for the schedule.* counters.
  TraceContext Observe;
};

/// A property some pass could not establish within budget: degraded to
/// "not checked" rather than guessed (docs/ROBUSTNESS.md fail-soft rule).
struct UncheckedPass {
  std::string PassId;
  std::string Reason;
};

/// Everything a lint run produced.
struct LintResult {
  std::vector<Diagnostic> Diags;
  std::vector<UncheckedPass> Unchecked;

  unsigned count(Diagnostic::Kind K) const;
  bool hasErrors() const { return count(Diagnostic::Kind::Error) != 0; }
  bool hasWarnings() const { return count(Diagnostic::Kind::Warning) != 0; }
};

/// Shared state handed to each pass: the program under analysis, the
/// optional decomposition, and the sinks for diagnostics / unchecked
/// records.
class LintContext {
public:
  LintContext(const Program &P, const ProgramDecomposition *PD,
              const LintOptions &Opts, LintResult &Result)
      : P(P), PD(PD), Opts(Opts), Result(Result) {}

  const Program &program() const { return P; }
  /// Null when linting without a decomposition (alpc --lint mode).
  const ProgramDecomposition *decomposition() const { return PD; }
  const LintOptions &options() const { return Opts; }
  ResourceBudget *budget() const { return Opts.Budget; }

  /// Emits a diagnostic; the returned reference is valid until the next
  /// report() call, for attaching Notes / a FixIt.
  Diagnostic &report(Diagnostic::Kind K, const std::string &PassId,
                     SourceLoc Loc, const std::string &Message);

  /// Records that \p PassId could not check its property (budget
  /// exhaustion, unbound symbol, ...). Never a diagnostic.
  void notChecked(const std::string &PassId, const std::string &Reason);

private:
  const Program &P;
  const ProgramDecomposition *PD;
  const LintOptions &Opts;
  LintResult &Result;
};

/// One analysis family. Passes are stateless between runs; all output
/// goes through the context.
class LintPass {
public:
  virtual ~LintPass() = default;

  /// Stable family prefix ("race", "model", "decomp"); individual
  /// diagnostics refine it ("race.forall-carried").
  virtual const char *id() const = 0;
  virtual const char *description() const = 0;
  virtual void run(LintContext &Ctx) = 0;
};

/// The pass registry: every pass family enabled by \p Opts, in fixed
/// execution order (race, model, decomp, schedule).
std::vector<std::unique_ptr<LintPass>> createLintPasses(const LintOptions &Opts);

/// Runs every enabled pass over \p P. \p PD may be null (decomposition
/// and schedule checks are skipped); never throws — solver exhaustion
/// lands in LintResult::Unchecked. Diagnostics come back normalized
/// (see normalizeLintDiagnostics).
LintResult runLintPasses(const Program &P, const ProgramDecomposition *PD,
                         const LintOptions &Opts = LintOptions());

/// Deterministic output discipline: stable-sorts \p Diags by (location,
/// pass id, message) and removes exact duplicates (same kind, location,
/// pass, message, notes, fix-it). runLintPasses applies this to every
/// result; exposed for callers that merge results from parallel workers.
void normalizeLintDiagnostics(std::vector<Diagnostic> &Diags);

/// Human-readable rendering: one block per diagnostic (notes and fix-its
/// indented), unchecked records, and a trailing summary count line.
std::string renderLintText(const LintResult &R);

/// Compact JSON: {"file", "diagnostics": [...], "unchecked": [...],
/// "errors": N, "warnings": M}.
std::string renderLintJson(const LintResult &R, const std::string &FileName);

/// SARIF 2.1.0 log with one run, one rule per distinct pass id, and one
/// result per diagnostic. \p FileName becomes the artifact URI.
std::string renderLintSarif(const LintResult &R, const std::string &FileName);

} // namespace alp

#endif // ALP_ANALYSIS_LINT_H
