//===- analysis/Dependence.h - Affine dependence analysis -------*- C++ -*-===//
///
/// \file
/// Data dependence analysis for affine loop nests. For every pair of
/// accesses to the same array (with at least one write) the analyzer builds
/// the dependence polyhedron over (source iteration, destination iteration,
/// symbolic constants), tests it hierarchically per carrying level with
/// Fourier-Motzkin elimination plus a per-equation GCD (integer) test, and
/// extracts a dependence vector whose components are exact distances where
/// the polyhedron pins them and directions otherwise.
///
/// These vectors drive the Wolf-Lam local phase (fully permutable bands,
/// forall classification) and the tiling legality checks of Sec. 5.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_ANALYSIS_DEPENDENCE_H
#define ALP_ANALYSIS_DEPENDENCE_H

#include "ir/Program.h"
#include "support/Budget.h"

#include <optional>
#include <string>
#include <vector>

namespace alp {

/// One component of a dependence vector.
struct DepComponent {
  enum class Dir { Lt, Eq, Gt, Le, Ge, Star };

  Dir Direction = Dir::Star;
  /// Set when the polyhedron pins the component to a single integer.
  std::optional<int64_t> Distance;

  static DepComponent exact(int64_t D);
  static DepComponent dir(Dir D) { return {D, std::nullopt}; }

  bool isExact() const { return Distance.has_value(); }
  /// Can this component be negative / positive / zero?
  bool mayBeNegative() const;
  bool mayBePositive() const;
  bool mayBeZero() const;

  std::string str() const;
};

/// Dependence classification by access kinds.
enum class DepKind { Flow, Anti, Output };

/// A dependence between two accesses of one loop nest.
struct Dependence {
  unsigned SrcStmt = 0, DstStmt = 0;
  unsigned SrcAccess = 0, DstAccess = 0; // Indexes into Statement::Accesses.
  unsigned ArrayId = 0;
  DepKind Kind = DepKind::Flow;
  /// Loop level carrying the dependence (0-based), or depth() for a
  /// loop-independent dependence.
  unsigned Level = 0;
  /// Per-level components, outermost first; Components[Level] is positive
  /// for a carried dependence.
  std::vector<DepComponent> Components;
  /// True when this dependence was assumed rather than proven: the exact
  /// test ran out of budget or overflowed 64-bit arithmetic, so the
  /// analyzer answered conservatively. Sound (never misses a real
  /// dependence) but maximally imprecise.
  bool Conservative = false;

  bool isLoopIndependent(unsigned Depth) const { return Level == Depth; }
  /// True if every component is an exact distance.
  bool isDistanceVector() const;
  std::string str() const;
};

/// Dependence analysis over one loop nest. With a ResourceBudget attached,
/// an access pair whose exact test exhausts the budget (or overflows) is
/// assumed dependent at every level — the analyzer never aborts and never
/// hangs, it only loses precision.
class DependenceAnalysis {
public:
  explicit DependenceAnalysis(const Program &P,
                              ResourceBudget *Budget = nullptr)
      : P(P), Budget(Budget) {}

  /// True once some pair was answered conservatively.
  bool degraded() const { return Degraded; }
  /// One human-readable note per conservatively answered pair.
  const std::vector<std::string> &warnings() const { return Warnings; }

  /// All dependences of \p Nest (flow, anti, and output), per carrying
  /// level.
  std::vector<Dependence> analyze(const LoopNest &Nest) const;

  /// Loop levels of \p Nest that carry no dependence when all enclosing
  /// levels are executed sequentially — i.e. levels that are forall-
  /// parallelizable in the nest's current loop order. Bit k set means loop
  /// k is parallel.
  std::vector<bool> parallelizableLevels(const LoopNest &Nest) const;

  /// The distance vectors of \p Deps restricted to exact ones; directions
  /// are widened to nullopt entries.
  static std::vector<std::vector<int64_t>>
  exactDistanceVectors(const std::vector<Dependence> &Deps);

private:
  const Program &P;
  ResourceBudget *Budget = nullptr;
  mutable bool Degraded = false;
  mutable std::vector<std::string> Warnings;

  /// Tests one access pair; appends any dependences found.
  void analyzePair(const LoopNest &Nest, unsigned SStmt, unsigned SAcc,
                   unsigned TStmt, unsigned TAcc,
                   std::vector<Dependence> &Out) const;

  /// Appends the "dependence assumed" answer for one pair: a conservative
  /// all-star dependence at every level plus the loop-independent slot.
  void appendConservativePair(const LoopNest &Nest, unsigned SStmt,
                              unsigned SAcc, unsigned TStmt, unsigned TAcc,
                              const Status &Why,
                              std::vector<Dependence> &Out) const;
};

} // namespace alp

#endif // ALP_ANALYSIS_DEPENDENCE_H
