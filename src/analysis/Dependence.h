//===- analysis/Dependence.h - Affine dependence analysis -------*- C++ -*-===//
///
/// \file
/// Data dependence analysis for affine loop nests. For every pair of
/// accesses to the same array (with at least one write) the analyzer runs a
/// tiered test ladder in escalating cost order, exiting as soon as a tier
/// proves independence:
///
///   tier 0  per-equation GCD divisibility          (integer arithmetic)
///   tier 1  Banerjee bounds over rectangular nests (rational range test)
///   tier 2  exact Fourier-Motzkin on the dependence polyhedron, with an
///           integer lattice test and per-axis integer refinement
///
/// The cheap tiers are strictly conservative filters: anything they prove
/// independent, the exact tier would also prove independent, so disabling
/// them (DependenceOptions::TieredTests = false) changes compile time but
/// never the result. The exact tier builds the polyhedron over (source
/// iteration, destination iteration, symbolic constants), tests it per
/// carrying level, and extracts a dependence vector whose components are
/// exact distances where the polyhedron pins them and directions otherwise.
///
/// Tier-2 bounds projections are memoized through a DependenceCache keyed
/// by canonical constraint-system keys (linalg/SystemKey.h): same-shape
/// access pairs — the common case in stencil codes — share one projection.
/// With a ThreadPool attached, access pairs are analyzed concurrently;
/// results are merged in pair order, so the output is byte-identical to a
/// serial run (each pair gets its own copy of the resource budget so the
/// degradation point cannot depend on thread scheduling).
///
/// These vectors drive the Wolf-Lam local phase (fully permutable bands,
/// forall classification) and the tiling legality checks of Sec. 5.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_ANALYSIS_DEPENDENCE_H
#define ALP_ANALYSIS_DEPENDENCE_H

#include "analysis/DependenceCache.h"
#include "ir/Program.h"
#include "support/Budget.h"
#include "support/Trace.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace alp {

class ThreadPool;

/// One component of a dependence vector.
struct DepComponent {
  enum class Dir { Lt, Eq, Gt, Le, Ge, Star };

  Dir Direction = Dir::Star;
  /// Set when the polyhedron pins the component to a single integer.
  std::optional<int64_t> Distance;

  static DepComponent exact(int64_t D);
  static DepComponent dir(Dir D) { return {D, std::nullopt}; }

  bool isExact() const { return Distance.has_value(); }
  /// Can this component be negative / positive / zero?
  bool mayBeNegative() const;
  bool mayBePositive() const;
  bool mayBeZero() const;

  std::string str() const;
};

/// Dependence classification by access kinds.
enum class DepKind { Flow, Anti, Output };

/// A dependence between two accesses of one loop nest.
struct Dependence {
  unsigned SrcStmt = 0, DstStmt = 0;
  unsigned SrcAccess = 0, DstAccess = 0; // Indexes into Statement::Accesses.
  unsigned ArrayId = 0;
  DepKind Kind = DepKind::Flow;
  /// Loop level carrying the dependence (0-based), or depth() for a
  /// loop-independent dependence.
  unsigned Level = 0;
  /// Per-level components, outermost first; Components[Level] is positive
  /// for a carried dependence.
  std::vector<DepComponent> Components;
  /// True when this dependence was assumed rather than proven: the exact
  /// test ran out of budget or overflowed 64-bit arithmetic, so the
  /// analyzer answered conservatively. Sound (never misses a real
  /// dependence) but maximally imprecise.
  bool Conservative = false;

  bool isLoopIndependent(unsigned Depth) const { return Level == Depth; }
  /// True if every component is an exact distance.
  bool isDistanceVector() const;
  std::string str() const;
};

/// Knobs of one DependenceAnalysis instance. The defaults give the fast
/// configuration; every combination produces identical dependences.
struct DependenceOptions {
  /// Run the cheap independence tiers (GCD, Banerjee) before the exact
  /// test. Off = every pair goes straight to Fourier-Motzkin — only useful
  /// for benchmarking and for the tier-equivalence tests.
  bool TieredTests = true;
  /// Memoize tier-2 bounds projections under canonical system keys.
  bool Memoize = true;
  /// Cache to memoize into; nullptr = the analysis owns a private one.
  /// Share one cache across analyses to reuse projections across nests.
  DependenceCache *SharedCache = nullptr;
  /// Fan access pairs out over this pool; nullptr = serial. Any non-null
  /// pool (even one thread) switches the budget to per-pair copies so the
  /// answer is independent of the job count.
  ThreadPool *Pool = nullptr;
  /// Span tracer for the exact tier (one "dep.exact" span per pair that
  /// reaches tier 2); nullptr = no tracing. Counters are not collected
  /// here — snapshot tierStats() and publish it into a MetricsRegistry.
  Tracer *Trace = nullptr;
  /// Supervision of the parallel path (ignored without a Pool): total
  /// attempts per pair task and an optional per-attempt wall-clock
  /// deadline (0 = none). A pair whose every attempt fails with an
  /// escaped exception — injected OOM, deadline — degrades to the same
  /// conservative assumed-dependence answer as a blown budget.
  unsigned TaskAttempts = 2;
  uint64_t TaskDeadlineMs = 0;
  /// Metrics sink for the supervisor's driver.* counters; may be empty.
  TraceContext Observe;
};

/// Counters of one analysis run: how far pairs got down the tier ladder,
/// and how the memoization layer performed. Monotone across analyze()
/// calls on one instance. The tier counters are per instance; the cache
/// counters come from the cache itself, so with a SharedCache they are
/// that cache's lifetime totals across every analysis using it.
struct DependenceTierStats {
  uint64_t Pairs = 0;             ///< Access pairs tested.
  uint64_t GcdIndependent = 0;    ///< Proven independent by tier 0.
  uint64_t BanerjeeIndependent = 0; ///< Proven independent by tier 1.
  uint64_t ExactTested = 0;       ///< Pairs that reached tier 2.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// The deterministic cache ledger: projections replayed in pair-merge
  /// order, a lookup counting as a hit iff an earlier pair (in merge
  /// order) of this instance already produced its key. Unlike the raw
  /// CacheHits/CacheMisses above — which come from the cache itself and
  /// can vary with thread scheduling when workers race on one key — these
  /// are byte-identical for every job count, so they are what publishTo
  /// reports as counters (the raw values publish as gauges).
  uint64_t LogicalCacheHits = 0;
  uint64_t LogicalCacheMisses = 0;
  /// Fourier-Motzkin elimination steps consumed by the exact tier, summed
  /// per pair. A cache hit charges nothing, so with a SharedCache this
  /// total depends on which worker populated the cache first — it
  /// publishes as a gauge, not a counter.
  uint64_t EliminationSteps = 0;

  /// Adds this snapshot into \p MR under the "dep.*" names
  /// (docs/OBSERVABILITY.md): tier and logical-cache totals as counters,
  /// EliminationSteps as a gauge. Publish each analysis at most once —
  /// counter adds accumulate.
  void publishTo(MetricsRegistry &MR) const;
};

/// Dependence analysis over one loop nest. With a ResourceBudget attached,
/// an access pair whose exact test exhausts the budget (or overflows) is
/// assumed dependent at every level — the analyzer never aborts and never
/// hangs, it only loses precision.
class DependenceAnalysis {
public:
  explicit DependenceAnalysis(const Program &P,
                              ResourceBudget *Budget = nullptr,
                              DependenceOptions Opts = DependenceOptions());

  /// True once some pair was answered conservatively.
  bool degraded() const { return Degraded; }
  /// One human-readable note per conservatively answered pair.
  const std::vector<std::string> &warnings() const { return Warnings; }

  /// Tier / cache counters accumulated so far.
  DependenceTierStats tierStats() const;

  /// All dependences of \p Nest (flow, anti, and output), per carrying
  /// level, in deterministic pair order regardless of Options.Pool.
  std::vector<Dependence> analyze(const LoopNest &Nest) const;

  /// Loop levels of \p Nest that carry no dependence when all enclosing
  /// levels are executed sequentially — i.e. levels that are forall-
  /// parallelizable in the nest's current loop order. Bit k set means loop
  /// k is parallel.
  std::vector<bool> parallelizableLevels(const LoopNest &Nest) const;

  /// The distance vectors of \p Deps restricted to exact ones; directions
  /// are widened to nullopt entries.
  static std::vector<std::vector<int64_t>>
  exactDistanceVectors(const std::vector<Dependence> &Deps);

private:
  /// One access pair to test, and everything its test produced. Results
  /// are kept per pair so a parallel run can merge them in pair order.
  struct PairTask {
    unsigned SStmt = 0, SAcc = 0, TStmt = 0, TAcc = 0;
  };
  struct PairResult {
    std::vector<Dependence> Deps;
    std::vector<std::string> Warnings;
    bool Degraded = false;
    /// Identity (system hash, projected var) of every memoizable bounds
    /// projection this pair requested, in request order — replayed at
    /// merge time against a seen-set to derive the deterministic cache
    /// ledger regardless of which worker actually hit the shared cache.
    std::vector<uint64_t> CacheRefs;
    /// Elimination steps this pair's exact test consumed.
    uint64_t EliminationSteps = 0;
  };

  const Program &P;
  ResourceBudget *Budget = nullptr;
  DependenceOptions Options;
  /// Backing storage when no SharedCache was supplied.
  mutable std::unique_ptr<DependenceCache> OwnCache;
  DependenceCache *Cache = nullptr; // Null when memoization is off.
  mutable bool Degraded = false;
  mutable std::vector<std::string> Warnings;
  /// Tier counters (atomic: pairs are tested concurrently under a pool).
  mutable std::atomic<uint64_t> NumPairs{0};
  mutable std::atomic<uint64_t> NumGcdIndependent{0};
  mutable std::atomic<uint64_t> NumBanerjeeIndependent{0};
  mutable std::atomic<uint64_t> NumExactTested{0};
  /// Merge-order cache ledger (written only on the merging thread) and
  /// the per-pair elimination-step total.
  mutable std::unordered_set<uint64_t> SeenCacheRefs;
  mutable uint64_t NumLogicalCacheHits = 0;
  mutable uint64_t NumLogicalCacheMisses = 0;
  mutable std::atomic<uint64_t> NumEliminationSteps{0};

  /// Tests one access pair under \p PairBudget (nullable); fills \p Res.
  void analyzePair(const LoopNest &Nest, const PairTask &Task,
                   ResourceBudget *PairBudget, PairResult &Res) const;

  /// Appends the "dependence assumed" answer for one pair: a conservative
  /// all-star dependence at every level plus the loop-independent slot.
  void appendConservativePair(const LoopNest &Nest, const PairTask &Task,
                              const Status &Why, PairResult &Res) const;
};

} // namespace alp

#endif // ALP_ANALYSIS_DEPENDENCE_H
