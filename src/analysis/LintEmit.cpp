//===- analysis/LintEmit.cpp - Diagnostic renderers -----------------------===//
//
// Renders a LintResult as plain text, as a compact JSON object, or as a
// SARIF 2.1.0 log (one run, one reportingDescriptor per distinct pass id,
// one result per diagnostic; notes become relatedLocations). JSON is
// assembled by hand — the format is small and the project carries no
// external dependencies.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include <cstdio>
#include <set>
#include <sstream>

using namespace alp;

namespace {

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S) {
  std::ostringstream OS;
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  return OS.str();
}

std::string quoted(const std::string &S) {
  return '"' + jsonEscape(S) + '"';
}

/// SARIF "level" property for a diagnostic kind.
const char *sarifLevel(Diagnostic::Kind K) {
  switch (K) {
  case Diagnostic::Kind::Error:
    return "error";
  case Diagnostic::Kind::Warning:
    return "warning";
  case Diagnostic::Kind::Note:
  case Diagnostic::Kind::Remark:
    return "note";
  }
  return "none";
}

/// Short, human-readable description for a rule (pass) id. SARIF viewers
/// surface this next to the rule id, so every id a pass can emit has an
/// entry here; unknown ids fall back to a generic line so the log stays
/// schema-valid even if a pass grows a new sub-id.
const char *ruleShortDescription(const std::string &Rule) {
  if (Rule == "race.forall-carried")
    return "A forall loop carries a cross-iteration dependence";
  if (Rule == "model.zero-trip")
    return "Loop bounds admit no iterations";
  if (Rule == "model.infeasible-bounds")
    return "Loop bounds are contradictory";
  if (Rule == "model.oob-subscript")
    return "Array subscript can exceed the declared extent";
  if (Rule == "model.unused-array")
    return "Array is declared but never accessed";
  if (Rule == "model.shadowed-index")
    return "Inner loop index shadows an enclosing one";
  if (Rule == "decomp.block-size-divergence")
    return "Pipelined nests disagree on the block size";
  if (Rule == "decomp.spmd-coverage")
    return "SPMD emission diverges from the decomposition";
  if (Rule == "schedule.deadlock")
    return "Communication schedule contains a wait cycle";
  if (Rule == "schedule.coverage-gap")
    return "A remote read is not covered by any planned transfer";
  if (Rule == "schedule.unmatched")
    return "Send/receive counts disagree on a message stream";
  if (Rule == "schedule.buffer-overlap")
    return "Overlapped sends outrun the communication buffer";
  if (Rule == "schedule.barrier-divergence")
    return "Processors disagree on the collective sequence";
  return "alp-lint diagnostic";
}

/// A SARIF physicalLocation for \p Loc in \p Uri; omits the region when
/// the location is unknown (SARIF requires startLine >= 1).
std::string sarifLocation(const std::string &Uri, SourceLoc Loc) {
  std::ostringstream OS;
  OS << "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
     << quoted(Uri) << '}';
  if (Loc.isValid()) {
    OS << ", \"region\": {\"startLine\": " << Loc.Line
       << ", \"startColumn\": " << (Loc.Column ? Loc.Column : 1) << '}';
  }
  OS << "}}";
  return OS.str();
}

} // namespace

std::string alp::renderLintText(const LintResult &R) {
  std::ostringstream OS;
  for (const Diagnostic &D : R.Diags)
    OS << D.strWithNotes() << '\n';
  for (const UncheckedPass &U : R.Unchecked)
    OS << "not checked [" << U.PassId << "]: " << U.Reason << '\n';
  OS << R.count(Diagnostic::Kind::Error) << " error(s), "
     << R.count(Diagnostic::Kind::Warning) << " warning(s)";
  if (!R.Unchecked.empty())
    OS << ", " << R.Unchecked.size() << " check(s) skipped";
  OS << '\n';
  return OS.str();
}

std::string alp::renderLintJson(const LintResult &R,
                                const std::string &FileName) {
  std::ostringstream OS;
  OS << "{\n  \"file\": " << quoted(FileName) << ",\n  \"diagnostics\": [";
  for (unsigned I = 0; I < R.Diags.size(); ++I) {
    const Diagnostic &D = R.Diags[I];
    OS << (I ? "," : "") << "\n    {\"kind\": "
       << quoted(diagnosticKindName(D.DiagKind))
       << ", \"pass\": " << quoted(D.PassId) << ", \"line\": " << D.Loc.Line
       << ", \"column\": " << D.Loc.Column
       << ", \"message\": " << quoted(D.Message);
    if (!D.Notes.empty()) {
      OS << ", \"notes\": [";
      for (unsigned J = 0; J < D.Notes.size(); ++J)
        OS << (J ? ", " : "") << "{\"line\": " << D.Notes[J].Loc.Line
           << ", \"column\": " << D.Notes[J].Loc.Column
           << ", \"message\": " << quoted(D.Notes[J].Message) << '}';
      OS << ']';
    }
    if (!D.FixIt.empty())
      OS << ", \"fixit\": " << quoted(D.FixIt);
    OS << '}';
  }
  OS << "\n  ],\n  \"unchecked\": [";
  for (unsigned I = 0; I < R.Unchecked.size(); ++I)
    OS << (I ? "," : "") << "\n    {\"pass\": "
       << quoted(R.Unchecked[I].PassId)
       << ", \"reason\": " << quoted(R.Unchecked[I].Reason) << '}';
  OS << "\n  ],\n  \"errors\": " << R.count(Diagnostic::Kind::Error)
     << ",\n  \"warnings\": " << R.count(Diagnostic::Kind::Warning)
     << "\n}\n";
  return OS.str();
}

std::string alp::renderLintSarif(const LintResult &R,
                                 const std::string &FileName) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"alp-lint\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/alp\",\n"
     << "          \"rules\": [";

  std::set<std::string> Rules;
  for (const Diagnostic &D : R.Diags)
    if (!D.PassId.empty())
      Rules.insert(D.PassId);
  unsigned I = 0;
  for (const std::string &Rule : Rules)
    OS << (I++ ? "," : "") << "\n            {\"id\": " << quoted(Rule)
       << ", \"shortDescription\": {\"text\": "
       << quoted(ruleShortDescription(Rule)) << "}}";
  OS << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";

  for (unsigned J = 0; J < R.Diags.size(); ++J) {
    const Diagnostic &D = R.Diags[J];
    OS << (J ? "," : "") << "\n        {\"ruleId\": " << quoted(D.PassId)
       << ", \"level\": " << quoted(sarifLevel(D.DiagKind))
       << ", \"message\": {\"text\": " << quoted(D.Message)
       << "}, \"locations\": [" << sarifLocation(FileName, D.Loc) << ']';
    if (!D.Notes.empty()) {
      OS << ", \"relatedLocations\": [";
      for (unsigned K = 0; K < D.Notes.size(); ++K) {
        if (K)
          OS << ", ";
        // relatedLocations carry their message inline.
        std::ostringstream Rel;
        Rel << "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
            << quoted(FileName) << '}';
        if (D.Notes[K].Loc.isValid())
          Rel << ", \"region\": {\"startLine\": " << D.Notes[K].Loc.Line
              << ", \"startColumn\": "
              << (D.Notes[K].Loc.Column ? D.Notes[K].Loc.Column : 1)
              << '}';
        Rel << "}, \"message\": {\"text\": " << quoted(D.Notes[K].Message)
            << "}}";
        OS << Rel.str();
      }
      OS << ']';
    }
    OS << '}';
  }
  OS << "\n      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return OS.str();
}
