//===- analysis/LintModel.cpp - Affine-model lints ------------------------===//
//
// Lints on the affine program model itself, independent of any
// decomposition:
//
//   model.zero-trip          a loop whose constant bounds are contradictory
//                            (lower > upper): the loop never executes.
//   model.infeasible-bounds  the nest's full bound system is rationally
//                            infeasible (Fourier-Motzkin): dead nest.
//   model.oob-subscript      a subscript provably outside the declared
//                            array extent for every iteration (error), or
//                            outside it for some iteration (warning).
//   model.unused-array       an array declared but never referenced.
//   model.shadowed-index     a loop index that shadows an enclosing
//                            sequential loop index, a program parameter,
//                            or an outer index of the same nest.
//
// All bound reasoning happens under the shared ResourceBudget; exhaustion
// records "not checked" rather than a diagnostic.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "linalg/FourierMotzkin.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace alp;

namespace {

/// True when every symbol of \p E has a numeric binding.
bool isBound(const SymAffine &E, const std::map<std::string, Rational> &B) {
  for (const auto &[Sym, Coeff] : E.symbolCoeffs())
    if (!B.count(Sym))
      return false;
  return true;
}

class ModelLintPass : public LintPass {
public:
  const char *id() const override { return "model"; }
  const char *description() const override {
    return "affine-model sanity: dead loops, out-of-bounds subscripts, "
           "unused arrays, shadowed indices";
  }

  void run(LintContext &Ctx) override {
    const Program &P = Ctx.program();
    for (unsigned NestId : P.nestsInOrder()) {
      // Rational overflow inside bound reasoning degrades to "not
      // checked" like any other exhausted resource.
      try {
        checkNest(Ctx, P, NestId);
      } catch (const AlpException &E) {
        Ctx.notChecked("model", "nest " + std::to_string(NestId) + ": " +
                                    E.status().str());
      }
    }
    checkUnusedArrays(Ctx, P);
    checkShadowedIndices(Ctx, P);
  }

private:
  //===--------------------------------------------------------------------===
  // Dead loops and subscript bounds
  //===--------------------------------------------------------------------===

  /// Builds the nest's bound polyhedron over \p NumVars >= depth()
  /// variables (variables beyond the depth are left unconstrained).
  /// Returns false when some bound mentions an unbound symbol.
  bool buildBoundSystem(const Program &P, const LoopNest &Nest,
                        unsigned NumVars, ConstraintSystem &CS) const {
    const auto &B = P.SymbolBindings;
    for (unsigned K = 0; K < Nest.depth(); ++K) {
      const Loop &L = Nest.Loops[K];
      for (const BoundTerm &T : L.Lower) {
        if (!isBound(T.Const, B))
          return false;
        // i_k >= coeffs . i + c  <=>  i_k - coeffs . i - c >= 0.
        Vector Coeffs = Vector::zero(NumVars);
        Coeffs[K] = Rational(1);
        for (unsigned J = 0; J < T.OuterCoeffs.size(); ++J)
          Coeffs[J] = Coeffs[J] - T.OuterCoeffs[J];
        CS.addInequality(Coeffs, -T.Const.evaluate(B));
      }
      for (const BoundTerm &T : L.Upper) {
        if (!isBound(T.Const, B))
          return false;
        Vector Coeffs = Vector::zero(NumVars);
        Coeffs[K] = Rational(-1);
        for (unsigned J = 0; J < T.OuterCoeffs.size(); ++J)
          Coeffs[J] = Coeffs[J] + T.OuterCoeffs[J];
        CS.addInequality(Coeffs, T.Const.evaluate(B));
      }
    }
    return true;
  }

  void checkNest(LintContext &Ctx, const Program &P, unsigned NestId) {
    const LoopNest &Nest = P.nest(NestId);
    const auto &B = P.SymbolBindings;

    // Per-loop zero-trip: both effective bounds constant and lower > upper.
    bool DeadLoop = false;
    for (const Loop &L : Nest.Loops) {
      std::optional<Rational> Lo, Hi;
      bool Constant = !L.Lower.empty() && !L.Upper.empty();
      for (const BoundTerm &T : L.Lower) {
        if (!T.OuterCoeffs.isZero() || !isBound(T.Const, B)) {
          Constant = false;
          break;
        }
        Rational V = T.Const.evaluate(B);
        if (!Lo || V > *Lo)
          Lo = V; // Effective lower bound is the max.
      }
      if (Constant)
        for (const BoundTerm &T : L.Upper) {
          if (!T.OuterCoeffs.isZero() || !isBound(T.Const, B)) {
            Constant = false;
            break;
          }
          Rational V = T.Const.evaluate(B);
          if (!Hi || V < *Hi)
            Hi = V; // Effective upper bound is the min.
        }
      if (Constant && Lo && Hi && *Lo > *Hi) {
        std::ostringstream OS;
        OS << "loop '" << L.IndexName << "' never executes: lower bound "
           << Lo->str() << " exceeds upper bound " << Hi->str();
        Ctx.report(Diagnostic::Kind::Warning, "model.zero-trip", L.Loc,
                   OS.str());
        DeadLoop = true;
      }
    }

    // Whole-nest feasibility (catches contradictions across loops that the
    // constant per-loop check cannot see).
    bool NestFeasible = true;
    if (Nest.depth() > 0) {
      ConstraintSystem CS(Nest.depth());
      if (!buildBoundSystem(P, Nest, Nest.depth(), CS)) {
        Ctx.notChecked("model.infeasible-bounds",
                       "nest " + std::to_string(NestId) +
                           ": a loop bound mentions a symbol with no "
                           "binding; feasibility not checked");
        return;
      }
      Expected<bool> Feasible = CS.isRationallyFeasible(Ctx.budget());
      if (!Feasible) {
        Ctx.notChecked("model.infeasible-bounds",
                       "nest " + std::to_string(NestId) + ": " +
                           Feasible.status().str());
        return;
      }
      NestFeasible = *Feasible;
      if (!NestFeasible && !DeadLoop) {
        SourceLoc Loc =
            Nest.Loops.empty() ? SourceLoc() : Nest.Loops.front().Loc;
        std::ostringstream OS;
        OS << "nest " << NestId
           << " never executes: its loop bounds are infeasible";
        Ctx.report(Diagnostic::Kind::Warning, "model.infeasible-bounds",
                   Loc, OS.str());
      }
    }

    // Subscript ranges only make sense over iterations that happen.
    if (NestFeasible)
      checkSubscripts(Ctx, P, Nest);
  }

  void checkSubscripts(LintContext &Ctx, const Program &P,
                       const LoopNest &Nest) {
    const auto &B = P.SymbolBindings;
    std::vector<std::string> Names = Nest.indexNames();
    // One extra variable s holds the subscript value under test.
    const unsigned SVar = Nest.depth();

    for (const Statement &S : Nest.Body)
      for (const ArrayAccess &A : S.Accesses) {
        const ArraySymbol &Arr = P.array(A.ArrayId);
        for (unsigned R = 0; R < A.Map.arrayDim(); ++R) {
          const SymAffine &KR = A.Map.constant()[R];
          if (R >= Arr.DimSizes.size())
            break; // Shape mismatch is Program::verify's province.
          const SymAffine &Size = Arr.DimSizes[R];
          if (!isBound(KR, B) || !isBound(Size, B)) {
            Ctx.notChecked("model.oob-subscript",
                           "access '" + Arr.Name + A.Map.str(Names) +
                               "': subscript or extent mentions a symbol "
                               "with no binding");
            continue;
          }

          ConstraintSystem CS(Nest.depth() + 1);
          if (!buildBoundSystem(P, Nest, Nest.depth() + 1, CS))
            continue; // Already recorded by checkNest.
          // s == F_r . i + k_r.
          Vector Eq = Vector::zero(Nest.depth() + 1);
          Eq[SVar] = Rational(1);
          for (unsigned J = 0; J < Nest.depth(); ++J)
            Eq[J] = -A.Map.linear().at(R, J);
          CS.addEquality(Eq, -KR.evaluate(B));

          Expected<std::optional<VariableBounds>> Bounds =
              CS.boundsOf(SVar, Ctx.budget());
          if (!Bounds) {
            Ctx.notChecked("model.oob-subscript",
                           "access '" + Arr.Name + A.Map.str(Names) +
                               "' dim " + std::to_string(R) + ": " +
                               Bounds.status().str());
            continue;
          }
          if (!Bounds->has_value())
            continue; // Infeasible: the access never happens.

          Rational Max = Size.evaluate(B) - Rational(1);
          const std::optional<Rational> &Lo = (**Bounds).Lower;
          const std::optional<Rational> &Hi = (**Bounds).Upper;
          bool AlwaysOut = (Hi && *Hi < Rational(0)) || (Lo && *Lo > Max);
          bool MayBeOut = (!Lo || *Lo < Rational(0)) || (!Hi || *Hi > Max);
          if (!AlwaysOut && !MayBeOut)
            continue;

          std::ostringstream OS;
          OS << "subscript " << R << " of access '" << Arr.Name
             << A.Map.str(Names) << "' ranges over ["
             << (Lo ? Lo->str() : "-inf") << ", "
             << (Hi ? Hi->str() : "+inf") << "], "
             << (AlwaysOut ? "entirely outside" : "which can leave")
             << " the declared extent [0, " << Max.str() << "] of array '"
             << Arr.Name << "'";
          Diagnostic &D = Ctx.report(AlwaysOut ? Diagnostic::Kind::Error
                                               : Diagnostic::Kind::Warning,
                                     "model.oob-subscript", A.Loc, OS.str());
          D.Notes.push_back(
              {Arr.Loc, "array '" + Arr.Name + "' declared here"});
        }
      }
  }

  //===--------------------------------------------------------------------===
  // Unused arrays
  //===--------------------------------------------------------------------===

  void checkUnusedArrays(LintContext &Ctx, const Program &P) {
    std::set<unsigned> Referenced;
    for (const LoopNest &Nest : P.Nests)
      for (unsigned A : Nest.referencedArrays())
        Referenced.insert(A);
    for (unsigned A = 0; A < P.Arrays.size(); ++A) {
      if (Referenced.count(A))
        continue;
      const ArraySymbol &Arr = P.array(A);
      Diagnostic &D = Ctx.report(
          Diagnostic::Kind::Warning, "model.unused-array", Arr.Loc,
          "array '" + Arr.Name + "' is declared but never referenced");
      D.FixIt = "remove the declaration of '" + Arr.Name + "'";
    }
  }

  //===--------------------------------------------------------------------===
  // Shadowed loop indices
  //===--------------------------------------------------------------------===

  void checkShadowedIndices(LintContext &Ctx, const Program &P) {
    std::vector<std::string> Enclosing;
    walk(Ctx, P, P.TopLevel, Enclosing);
  }

  void walk(LintContext &Ctx, const Program &P,
            const std::vector<ProgramNode> &Nodes,
            std::vector<std::string> &Enclosing) {
    for (const ProgramNode &Node : Nodes) {
      switch (Node.NodeKind) {
      case ProgramNode::Kind::Nest:
        checkNestIndices(Ctx, P, Node.NestId, Enclosing);
        break;
      case ProgramNode::Kind::SequentialLoop:
        Enclosing.push_back(Node.IndexName);
        walk(Ctx, P, Node.Children, Enclosing);
        Enclosing.pop_back();
        break;
      case ProgramNode::Kind::Branch:
        walk(Ctx, P, Node.Children, Enclosing);
        walk(Ctx, P, Node.ElseChildren, Enclosing);
        break;
      }
    }
  }

  void checkNestIndices(LintContext &Ctx, const Program &P, unsigned NestId,
                        const std::vector<std::string> &Enclosing) {
    const LoopNest &Nest = P.nest(NestId);
    for (unsigned K = 0; K < Nest.depth(); ++K) {
      const std::string &Name = Nest.Loops[K].IndexName;
      std::string What;
      if (std::find(Enclosing.begin(), Enclosing.end(), Name) !=
          Enclosing.end())
        What = "an enclosing sequential loop index";
      else if (P.SymbolBindings.count(Name))
        What = "the program parameter '" + Name + "'";
      else
        for (unsigned J = 0; J < K; ++J)
          if (Nest.Loops[J].IndexName == Name) {
            What = "the outer loop index at level " + std::to_string(J) +
                   " of the same nest";
            break;
          }
      if (What.empty())
        continue;
      Diagnostic &D = Ctx.report(
          Diagnostic::Kind::Warning, "model.shadowed-index",
          Nest.Loops[K].Loc,
          "loop index '" + Name + "' of nest " + std::to_string(NestId) +
              " shadows " + What);
      D.FixIt = "rename the loop index '" + Name + "'";
    }
  }
};

} // namespace

namespace alp {
std::unique_ptr<LintPass> createModelLintPass() {
  return std::make_unique<ModelLintPass>();
}
} // namespace alp
