//===- analysis/DependenceCache.cpp - Memoized bounds projections ----------===//

#include "analysis/DependenceCache.h"

using namespace alp;

void DependenceCacheStats::publishTo(MetricsRegistry &MR) const {
  MR.setGauge("dep.cache.raw_hits", static_cast<double>(Hits));
  MR.setGauge("dep.cache.raw_misses", static_cast<double>(Misses));
  MR.setGauge("dep.cache.raw_evictions", static_cast<double>(Evictions));
  MR.setGauge("dep.cache.raw_entries", static_cast<double>(Entries));
  MR.setGauge("dep.cache.raw_hit_rate", hitRate());
}

std::optional<std::optional<VariableBounds>>
DependenceCache::lookupBounds(const CanonicalSystemKey &Key, unsigned Var) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(EntryKey{Key, Var});
  if (It == Index.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // Mark most recently used.
  return It->second->Bounds;
}

void DependenceCache::storeBounds(const CanonicalSystemKey &Key, unsigned Var,
                                  const std::optional<VariableBounds> &Bounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  EntryKey EK{Key, Var};
  auto It = Index.find(EK);
  if (It != Index.end()) {
    // Another worker raced the same computation in; results are
    // deterministic functions of the key, so keep the existing entry.
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(Entry{EK, Bounds});
  Index.emplace(std::move(EK), Lru.begin());
  if (Capacity && Lru.size() > Capacity) {
    Index.erase(Lru.back().Key);
    Lru.pop_back();
    ++Stats.Evictions;
  }
  Stats.Entries = Lru.size();
}

DependenceCacheStats DependenceCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  DependenceCacheStats S = Stats;
  S.Entries = Lru.size();
  return S;
}

void DependenceCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Lru.clear();
  Index.clear();
  Stats.Entries = 0;
}
