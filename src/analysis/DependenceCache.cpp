//===- analysis/DependenceCache.cpp - Memoized bounds projections ----------===//

#include "analysis/DependenceCache.h"

#include "support/FailPoint.h"

using namespace alp;

namespace {

/// Forces cache misses: the pair recomputes its projection, which must
/// yield byte-identical output (results are pure functions of the key).
FailPoint FpCacheLookup("analysis.cache.lookup");
/// Drops cache stores: later lookups recompute, output again identical.
FailPoint FpCacheInsert("analysis.cache.insert");

} // namespace

void DependenceCacheStats::publishTo(MetricsRegistry &MR) const {
  MR.setGauge("dep.cache.raw_hits", static_cast<double>(Hits));
  MR.setGauge("dep.cache.raw_misses", static_cast<double>(Misses));
  MR.setGauge("dep.cache.raw_evictions", static_cast<double>(Evictions));
  MR.setGauge("dep.cache.raw_entries", static_cast<double>(Entries));
  MR.setGauge("dep.cache.raw_hit_rate", hitRate());
}

std::optional<std::optional<VariableBounds>>
DependenceCache::lookupBounds(const CanonicalSystemKey &Key, unsigned Var) {
  // An injected fault (status-error and friends) reads as a miss — the
  // caller recomputes, degrading throughput but never the answer.
  if (Status S = FpCacheLookup.evaluate(); !S)
    return std::nullopt;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(EntryKey{Key, Var});
  if (It == Index.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // Mark most recently used.
  return It->second->Bounds;
}

void DependenceCache::storeBounds(const CanonicalSystemKey &Key, unsigned Var,
                                  const std::optional<VariableBounds> &Bounds) {
  // An injected fault drops the store; the entry is simply recomputed by
  // whoever needs it next.
  if (Status S = FpCacheInsert.evaluate(); !S)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  EntryKey EK{Key, Var};
  auto It = Index.find(EK);
  if (It != Index.end()) {
    // Another worker raced the same computation in; results are
    // deterministic functions of the key, so keep the existing entry.
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(Entry{EK, Bounds});
  Index.emplace(std::move(EK), Lru.begin());
  if (Capacity && Lru.size() > Capacity) {
    Index.erase(Lru.back().Key);
    Lru.pop_back();
    ++Stats.Evictions;
  }
  Stats.Entries = Lru.size();
}

DependenceCacheStats DependenceCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  DependenceCacheStats S = Stats;
  S.Entries = Lru.size();
  return S;
}

void DependenceCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Lru.clear();
  Index.clear();
  Stats.Entries = 0;
}
