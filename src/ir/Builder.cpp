//===- ir/Builder.cpp - Programmatic IR construction -----------------------===//

#include "ir/Builder.h"

#include "support/Diagnostics.h"

using namespace alp;

NestBuilder &NestBuilder::loop(const std::string &Index, SymAffine Lo,
                               SymAffine Hi, LoopKind Kind) {
  if (!nest().Body.empty())
    reportFatalError("cannot add loops after statements in a nest");
  Loop L;
  L.IndexName = Index;
  L.Kind = Kind;
  nest().Loops.push_back(L);
  // Now that the depth grew, (re)size every bound's coefficient vector.
  unsigned Depth = nest().depth();
  for (Loop &Each : nest().Loops) {
    for (BoundTerm &T : Each.Lower)
      if (T.OuterCoeffs.size() != Depth) {
        Vector NewC(Depth);
        for (unsigned I = 0; I != T.OuterCoeffs.size(); ++I)
          NewC[I] = T.OuterCoeffs[I];
        T.OuterCoeffs = NewC;
      }
    for (BoundTerm &T : Each.Upper)
      if (T.OuterCoeffs.size() != Depth) {
        Vector NewC(Depth);
        for (unsigned I = 0; I != T.OuterCoeffs.size(); ++I)
          NewC[I] = T.OuterCoeffs[I];
        T.OuterCoeffs = NewC;
      }
  }
  Loop &Mine = nest().Loops.back();
  Mine.Lower.push_back(BoundTerm::constant(Depth, std::move(Lo)));
  Mine.Upper.push_back(BoundTerm::constant(Depth, std::move(Hi)));
  return *this;
}

NestBuilder &NestBuilder::stmt(unsigned WorkCycles, const std::string &Text) {
  Statement S;
  S.WorkCycles = WorkCycles;
  S.Text = Text;
  nest().Body.push_back(std::move(S));
  return *this;
}

NestBuilder &NestBuilder::access(const std::string &ArrayName, Matrix F,
                                 SymVector K, bool IsWrite) {
  if (nest().Body.empty())
    reportFatalError("access added before any statement");
  ArrayAccess A;
  A.ArrayId = P.arrayId(ArrayName);
  A.Map = AffineAccessMap(std::move(F), std::move(K));
  A.IsWrite = IsWrite;
  nest().Body.back().Accesses.push_back(std::move(A));
  return *this;
}

NestBuilder &NestBuilder::write(const std::string &ArrayName, Matrix F,
                                SymVector K) {
  return access(ArrayName, std::move(F), std::move(K), /*IsWrite=*/true);
}

NestBuilder &NestBuilder::read(const std::string &ArrayName, Matrix F,
                               SymVector K) {
  return access(ArrayName, std::move(F), std::move(K), /*IsWrite=*/false);
}

NestBuilder &NestBuilder::writeIdentity(const std::string &ArrayName) {
  unsigned D = nest().depth();
  return write(ArrayName, Matrix::identity(D), SymVector(D));
}

NestBuilder &NestBuilder::readIdentity(const std::string &ArrayName) {
  unsigned D = nest().depth();
  return read(ArrayName, Matrix::identity(D), SymVector(D));
}

ProgramBuilder::ProgramBuilder(std::string Name) {
  P.Name = std::move(Name);
}

SymAffine ProgramBuilder::param(const std::string &Name,
                                int64_t DefaultValue) {
  P.SymbolBindings[Name] = Rational(DefaultValue);
  return SymAffine::symbol(Name);
}

ProgramBuilder &ProgramBuilder::array(const std::string &Name,
                                      std::vector<SymAffine> DimSizes,
                                      unsigned ElemBytes) {
  ArraySymbol A;
  A.Name = Name;
  A.DimSizes = std::move(DimSizes);
  A.ElemBytes = ElemBytes;
  P.Arrays.push_back(std::move(A));
  return *this;
}

NestBuilder ProgramBuilder::nest() {
  unsigned Id = P.Nests.size();
  P.Nests.emplace_back();
  P.Nests.back().Id = Id;
  P.TopLevel.push_back(ProgramNode::nest(Id));
  return NestBuilder(P, Id);
}

NestBuilder ProgramBuilder::detachedNest() {
  unsigned Id = P.Nests.size();
  P.Nests.emplace_back();
  P.Nests.back().Id = Id;
  return NestBuilder(P, Id);
}

ProgramBuilder &ProgramBuilder::topLevel(std::vector<ProgramNode> Nodes) {
  P.TopLevel = std::move(Nodes);
  return *this;
}

Program ProgramBuilder::build() {
  P.verify();
  P.recomputeProfiles();
  return std::move(P);
}
