//===- ir/Program.cpp - Whole-program representation -----------------------===//

#include "ir/Program.h"

#include "support/Diagnostics.h"

using namespace alp;

ProgramNode ProgramNode::nest(unsigned NestId) {
  ProgramNode N;
  N.NodeKind = Kind::Nest;
  N.NestId = NestId;
  return N;
}

ProgramNode ProgramNode::sequentialLoop(std::string IndexName, SymAffine Trip,
                                        std::vector<ProgramNode> Body) {
  ProgramNode N;
  N.NodeKind = Kind::SequentialLoop;
  N.IndexName = std::move(IndexName);
  N.TripCount = std::move(Trip);
  N.Children = std::move(Body);
  return N;
}

ProgramNode ProgramNode::branch(double TakenProbability,
                                std::vector<ProgramNode> Then,
                                std::vector<ProgramNode> Else) {
  ProgramNode N;
  N.NodeKind = Kind::Branch;
  N.TakenProbability = TakenProbability;
  N.Children = std::move(Then);
  N.ElseChildren = std::move(Else);
  return N;
}

unsigned Program::arrayId(const std::string &Name) const {
  for (unsigned I = 0; I != Arrays.size(); ++I)
    if (Arrays[I].Name == Name)
      return I;
  reportFatalError("unknown array '" + Name + "'");
}

void Program::collectNests(const std::vector<ProgramNode> &Nodes,
                           std::vector<unsigned> &Out) const {
  for (const ProgramNode &N : Nodes) {
    switch (N.NodeKind) {
    case ProgramNode::Kind::Nest:
      Out.push_back(N.NestId);
      break;
    case ProgramNode::Kind::SequentialLoop:
      collectNests(N.Children, Out);
      break;
    case ProgramNode::Kind::Branch:
      collectNests(N.Children, Out);
      collectNests(N.ElseChildren, Out);
      break;
    }
  }
}

std::vector<unsigned> Program::nestsInOrder() const {
  std::vector<unsigned> Out;
  collectNests(TopLevel, Out);
  return Out;
}

void Program::propagateProfiles(const std::vector<ProgramNode> &Nodes,
                                double Count, double Probability) {
  for (const ProgramNode &N : Nodes) {
    switch (N.NodeKind) {
    case ProgramNode::Kind::Nest:
      Nests[N.NestId].ExecCount = Count;
      Nests[N.NestId].Probability = Probability;
      break;
    case ProgramNode::Kind::SequentialLoop: {
      Rational Trip = N.TripCount.evaluate(SymbolBindings);
      double T = static_cast<double>(Trip.num()) /
                 static_cast<double>(Trip.den());
      if (T < 0)
        T = 0;
      propagateProfiles(N.Children, Count * T, Probability);
      break;
    }
    case ProgramNode::Kind::Branch:
      propagateProfiles(N.Children, Count * N.TakenProbability,
                        Probability * N.TakenProbability);
      propagateProfiles(N.ElseChildren, Count * (1.0 - N.TakenProbability),
                        Probability * (1.0 - N.TakenProbability));
      break;
    }
  }
}

void Program::recomputeProfiles() {
  propagateProfiles(TopLevel, 1.0, 1.0);
}

void Program::verify() const {
  std::vector<unsigned> Order = nestsInOrder();
  std::vector<bool> Seen(Nests.size(), false);
  for (unsigned Id : Order) {
    if (Id >= Nests.size())
      reportFatalError("structure tree references nonexistent nest");
    if (Seen[Id])
      reportFatalError("nest appears twice in the structure tree");
    Seen[Id] = true;
  }
  for (const LoopNest &Nest : Nests) {
    unsigned Depth = Nest.depth();
    if (Depth == 0)
      reportFatalError("loop nest of depth zero");
    for (const Loop &L : Nest.Loops) {
      if (L.Lower.empty() || L.Upper.empty())
        reportFatalError("loop '" + L.IndexName + "' is missing bounds");
      for (const BoundTerm &T : L.Lower)
        if (T.OuterCoeffs.size() != Depth)
          reportFatalError("bound arity mismatch in loop '" + L.IndexName +
                           "'");
      for (const BoundTerm &T : L.Upper)
        if (T.OuterCoeffs.size() != Depth)
          reportFatalError("bound arity mismatch in loop '" + L.IndexName +
                           "'");
    }
    for (const Statement &S : Nest.Body)
      for (const ArrayAccess &A : S.Accesses) {
        if (A.ArrayId >= Arrays.size())
          reportFatalError("access to nonexistent array");
        if (A.Map.nestDepth() != Depth)
          reportFatalError("access depth mismatch in array '" +
                           Arrays[A.ArrayId].Name + "'");
        if (A.Map.arrayDim() != Arrays[A.ArrayId].rank())
          reportFatalError("access rank mismatch in array '" +
                           Arrays[A.ArrayId].Name + "'");
        if (!A.Map.linear().isIntegral())
          reportFatalError("non-integral access matrix for array '" +
                           Arrays[A.ArrayId].Name + "'");
      }
  }
}
