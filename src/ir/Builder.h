//===- ir/Builder.h - Programmatic IR construction --------------*- C++ -*-===//
///
/// \file
/// A small fluent API for building Programs directly from C++ (tests and
/// benchmarks that do not want to go through the DSL front end). The
/// builder performs the same shape checks as the front end via
/// Program::verify().
///
//===----------------------------------------------------------------------===//

#ifndef ALP_IR_BUILDER_H
#define ALP_IR_BUILDER_H

#include "ir/Program.h"

namespace alp {

/// Builds one perfectly nested loop nest.
class NestBuilder {
public:
  NestBuilder(Program &P, unsigned NestId) : P(P), NestId(NestId) {}

  /// Appends a loop with constant (possibly symbolic) bounds.
  NestBuilder &loop(const std::string &Index, SymAffine Lo, SymAffine Hi,
                    LoopKind Kind = LoopKind::Sequential);
  NestBuilder &forall(const std::string &Index, SymAffine Lo, SymAffine Hi) {
    return loop(Index, std::move(Lo), std::move(Hi), LoopKind::Parallel);
  }

  /// Starts a new statement; subsequent read()/write() calls attach to it.
  NestBuilder &stmt(unsigned WorkCycles = 1, const std::string &Text = "");

  /// Adds a write access ArrayName[F i + k] to the current statement.
  NestBuilder &write(const std::string &ArrayName, Matrix F, SymVector K);
  /// Adds a read access to the current statement.
  NestBuilder &read(const std::string &ArrayName, Matrix F, SymVector K);

  /// Shorthand for the identity access at the nest's final depth. Only
  /// valid once all loops have been added.
  NestBuilder &writeIdentity(const std::string &ArrayName);
  NestBuilder &readIdentity(const std::string &ArrayName);

  unsigned id() const { return NestId; }

private:
  Program &P;
  unsigned NestId;

  LoopNest &nest() { return P.nest(NestId); }
  NestBuilder &access(const std::string &ArrayName, Matrix F, SymVector K,
                      bool IsWrite);
};

/// Builds a whole Program.
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::string Name);

  /// Declares a symbolic constant with its default numeric value and
  /// returns it as an expression.
  SymAffine param(const std::string &Name, int64_t DefaultValue);

  /// Declares an array; extents are per-dimension sizes (index range is
  /// [0, size-1] after normalization).
  ProgramBuilder &array(const std::string &Name,
                        std::vector<SymAffine> DimSizes,
                        unsigned ElemBytes = 8);

  /// Creates a new leaf nest appended at top level.
  NestBuilder nest();

  /// Creates a new leaf nest without attaching it to the structure tree
  /// (for explicit tree construction via topLevel()).
  NestBuilder detachedNest();

  /// Replaces the structure tree (detached nests are attached this way).
  ProgramBuilder &topLevel(std::vector<ProgramNode> Nodes);

  /// Finishes: verifies, recomputes profiles, and returns the program.
  Program build();

private:
  Program P;
};

} // namespace alp

#endif // ALP_IR_BUILDER_H
