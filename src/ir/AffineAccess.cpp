//===- ir/AffineAccess.cpp - Affine array index functions ------------------===//

#include "ir/AffineAccess.h"

#include "support/Arena.h"

#include <sstream>

using namespace alp;

AffineAccessMap AffineAccessMap::identity(unsigned Depth) {
  return AffineAccessMap(Matrix::identity(Depth), SymVector(Depth));
}

const Matrix &AffineAccessMap::linearPseudoInverse() const {
  if (const Matrix *M = Pseudo->V.load(std::memory_order_acquire))
    return *M;
  // Compute with the thread-local arena disabled: the result is shared
  // across copies (and threads) and must own plain heap storage, not a
  // caller's scratch arena block.
  Arena *Prev = Arena::setCurrent(nullptr);
  const Matrix *Fresh;
  try {
    Fresh = new Matrix(F.rightPseudoInverse());
  } catch (...) {
    Arena::setCurrent(Prev);
    throw;
  }
  Arena::setCurrent(Prev);
  const Matrix *Expected = nullptr;
  if (!Pseudo->V.compare_exchange_strong(Expected, Fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    delete Fresh;
    return *Expected;
  }
  return *Fresh;
}

Vector AffineAccessMap::evaluate(
    const Vector &Iter,
    const std::map<std::string, Rational> &Bindings) const {
  Vector Lin = F * Iter;
  Vector R(arrayDim());
  for (unsigned I = 0; I != arrayDim(); ++I)
    R[I] = Lin[I] + K[I].evaluate(Bindings);
  return R;
}

SymVector AffineAccessMap::apply(const Vector &Iter) const {
  SymVector R = K;
  Vector Lin = F * Iter;
  for (unsigned I = 0; I != arrayDim(); ++I)
    R[I] += SymAffine(Lin[I]);
  return R;
}

AffineAccessMap AffineAccessMap::composeWith(const Matrix &M) const {
  return AffineAccessMap(F * M, K);
}

std::string
AffineAccessMap::str(const std::vector<std::string> &IndexNames) const {
  assert(IndexNames.size() == nestDepth() && "index name count mismatch");
  std::ostringstream OS;
  OS << '[';
  for (unsigned D = 0; D != arrayDim(); ++D) {
    if (D)
      OS << ", ";
    // Render K[D] + sum_j F[D][j] * index_j, symbols first if the constant
    // is pure, otherwise constant last for readability.
    std::ostringstream Term;
    bool First = true;
    for (unsigned J = 0; J != nestDepth(); ++J) {
      const Rational &C = F.at(D, J);
      if (C.isZero())
        continue;
      if (First) {
        if (C == Rational(1))
          Term << IndexNames[J];
        else if (C == Rational(-1))
          Term << '-' << IndexNames[J];
        else
          Term << C << '*' << IndexNames[J];
        First = false;
        continue;
      }
      if (C.isNegative())
        Term << " - "
             << (C == Rational(-1) ? std::string() : (-C).str() + "*")
             << IndexNames[J];
      else
        Term << " + " << (C == Rational(1) ? std::string() : C.str() + "*")
             << IndexNames[J];
    }
    std::string KS = K[D].str();
    if (First) {
      OS << KS;
    } else if (K[D].isZero()) {
      OS << Term.str();
    } else if (KS.find(' ') == std::string::npos) {
      // Single-term constant: fold the sign into the operator.
      if (KS[0] == '-')
        OS << Term.str() << " - " << KS.substr(1);
      else
        OS << Term.str() << " + " << KS;
    } else {
      OS << Term.str() << " + (" << KS << ")";
    }
  }
  OS << ']';
  return OS.str();
}
