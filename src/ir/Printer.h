//===- ir/Printer.h - Human-readable program dumps --------------*- C++ -*-===//
///
/// \file
/// Renders a Program back into DSL-like text: loop headers with
/// forall/for keywords, bound expressions, and the array accesses of every
/// statement. Used for golden tests and for tools that show the effect of
/// transformations.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_IR_PRINTER_H
#define ALP_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace alp {

/// Renders the whole program.
std::string printProgram(const Program &P);

/// Renders a single loop nest of \p P.
std::string printNest(const Program &P, const LoopNest &Nest,
                      unsigned Indent = 0);

/// Renders a bound (max/min of affine terms) with the nest's index names.
std::string printBound(const std::vector<BoundTerm> &Terms, bool IsLower,
                       const std::vector<std::string> &IndexNames);

} // namespace alp

#endif // ALP_IR_PRINTER_H
