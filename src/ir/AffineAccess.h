//===- ir/AffineAccess.h - Affine array index functions ---------*- C++ -*-===//
///
/// \file
/// The affine array index function f(i) = F i + k of the paper (Sec. 2.3):
/// F is an m x l integer matrix mapping an l-deep iteration vector into an
/// m-dimensional array space, and k is a constant vector that may involve
/// symbolic constants (e.g. Y[i1, N - i2] has k = (0, N)).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_IR_AFFINEACCESS_H
#define ALP_IR_AFFINEACCESS_H

#include "linalg/Matrix.h"
#include "linalg/SymAffine.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <memory>
#include <string>

namespace alp {

/// An affine map f(i) = F i + k from iteration space to array space.
class AffineAccessMap {
public:
  AffineAccessMap() : Pseudo(std::make_shared<PseudoCache>()) {}
  AffineAccessMap(Matrix F, SymVector K)
      : F(std::move(F)), K(std::move(K)),
        Pseudo(std::make_shared<PseudoCache>()) {
    assert(this->F.rows() == this->K.size() && "F/k shape mismatch");
  }

  /// The identity access A[i1, ..., il].
  static AffineAccessMap identity(unsigned Depth);

  const Matrix &linear() const { return F; }
  const SymVector &constant() const { return K; }

  /// F.rightPseudoInverse(), computed lazily once and shared by every
  /// copy of this map. F is immutable after construction, so the cache
  /// can never go stale; the dynamic decomposer re-solves partitions over
  /// copies of the same few access maps many times per run, and this
  /// keeps the exact elimination behind the pseudo-inverse from being
  /// redone on each of them. Value-transparent (a pure function of F).
  const Matrix &linearPseudoInverse() const;

  /// Array dimensionality m.
  unsigned arrayDim() const { return F.rows(); }
  /// Loop nest depth l.
  unsigned nestDepth() const { return F.cols(); }

  /// Applies the map to a concrete iteration point with all symbols bound.
  Vector evaluate(const Vector &Iter,
                  const std::map<std::string, Rational> &Bindings) const;

  /// The symbolic image F * Iter + k.
  SymVector apply(const Vector &Iter) const;

  /// Composes with a change of iteration variables i = M i' (for a
  /// unimodular loop transform T, pass M = T^{-1}): the access in the new
  /// variables is (F M) i' + k.
  AffineAccessMap composeWith(const Matrix &M) const;

  bool operator==(const AffineAccessMap &RHS) const {
    return F == RHS.F && K == RHS.K;
  }
  bool operator!=(const AffineAccessMap &RHS) const {
    return !(*this == RHS);
  }

  /// Renders with the given loop index names, e.g. "[i1, N - i2]".
  std::string str(const std::vector<std::string> &IndexNames) const;

private:
  /// Copy-shared lazy cache for linearPseudoInverse(). Lock-free: the
  /// first thread to finish publishes with compare-exchange, losers of
  /// the (benign) race delete their duplicate.
  struct PseudoCache {
    std::atomic<const Matrix *> V{nullptr};
    ~PseudoCache() { delete V.load(std::memory_order_acquire); }
  };

  Matrix F;    // m x l, integral entries.
  SymVector K; // m entries, affine in symbolic constants.
  std::shared_ptr<PseudoCache> Pseudo;
};

/// One reference to an array inside a statement.
struct ArrayAccess {
  unsigned ArrayId = 0;
  AffineAccessMap Map;
  bool IsWrite = false;
  /// Position of the reference in the DSL source; invalid (0:0) for IR
  /// built programmatically. Analysis diagnostics anchor here.
  SourceLoc Loc;
};

} // namespace alp

#endif // ALP_IR_AFFINEACCESS_H
