//===- ir/Program.h - Whole-program representation --------------*- C++ -*-===//
///
/// \file
/// A Program is the global-analysis unit: the array declarations, the leaf
/// loop nests, and a structure tree that records how the nests sit inside
/// outer sequential loops and branches. The structure tree is what the
/// dynamic decomposition algorithm (Sec. 6.4) walks bottom-up, and what the
/// reaching-decompositions dataflow uses to weight communication edges.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_IR_PROGRAM_H
#define ALP_IR_PROGRAM_H

#include "ir/LoopNest.h"

#include <map>
#include <string>
#include <vector>

namespace alp {

/// A node of the program structure tree.
struct ProgramNode {
  enum class Kind {
    Nest,           ///< Leaf: a perfectly nested loop nest (by id).
    SequentialLoop, ///< An outer sequential loop around children.
    Branch          ///< if (expr) Children else ElseChildren.
  };

  Kind NodeKind = Kind::Nest;

  /// Kind::Nest: index into Program::Nests.
  unsigned NestId = 0;

  /// Kind::SequentialLoop: loop variable name and symbolic trip count.
  std::string IndexName;
  SymAffine TripCount;

  /// Kind::Branch: probability the then-arm executes.
  double TakenProbability = 0.5;

  std::vector<ProgramNode> Children;     // Loop body or then-arm.
  std::vector<ProgramNode> ElseChildren; // Branch only.

  static ProgramNode nest(unsigned NestId);
  static ProgramNode sequentialLoop(std::string IndexName, SymAffine Trip,
                                    std::vector<ProgramNode> Body);
  static ProgramNode branch(double TakenProbability,
                            std::vector<ProgramNode> Then,
                            std::vector<ProgramNode> Else);
};

/// A whole program in decomposition-ready form.
class Program {
public:
  std::string Name = "program";
  std::vector<ArraySymbol> Arrays;
  std::vector<LoopNest> Nests;
  std::vector<ProgramNode> TopLevel;

  /// Default numeric bindings for the symbolic constants (problem sizes),
  /// used for cost estimation and simulation.
  std::map<std::string, Rational> SymbolBindings;

  /// Index of the named array; fatal if absent.
  unsigned arrayId(const std::string &Name) const;
  const ArraySymbol &array(unsigned Id) const {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }

  const LoopNest &nest(unsigned Id) const {
    assert(Id < Nests.size() && "nest id out of range");
    return Nests[Id];
  }
  LoopNest &nest(unsigned Id) {
    assert(Id < Nests.size() && "nest id out of range");
    return Nests[Id];
  }

  /// Nest ids of every leaf, in program (execution) order.
  std::vector<unsigned> nestsInOrder() const;

  /// Propagates structure-tree profile data (enclosing loop trip counts
  /// and branch probabilities) into each nest's ExecCount / Probability.
  /// Call after building the tree or changing SymbolBindings.
  void recomputeProfiles();

  /// Sanity-checks shapes: access dimensions match array ranks and nest
  /// depths, bounds have the right arity, nest ids are consistent. Fatal
  /// on violation; cheap, called by the builder and the front end.
  void verify() const;

private:
  void collectNests(const std::vector<ProgramNode> &Nodes,
                    std::vector<unsigned> &Out) const;
  void propagateProfiles(const std::vector<ProgramNode> &Nodes, double Count,
                         double Probability);
};

} // namespace alp

#endif // ALP_IR_PROGRAM_H
