//===- ir/Printer.cpp - Human-readable program dumps ------------------------===//

#include "ir/Printer.h"

#include <sstream>

using namespace alp;

namespace {

std::string termStr(const BoundTerm &T,
                    const std::vector<std::string> &IndexNames) {
  std::ostringstream OS;
  bool First = true;
  for (unsigned I = 0; I != T.OuterCoeffs.size(); ++I) {
    const Rational &C = T.OuterCoeffs[I];
    if (C.isZero())
      continue;
    if (!First)
      OS << (C.isNegative() ? " - " : " + ");
    else if (C.isNegative())
      OS << '-';
    Rational A = C.abs();
    if (!A.isOne())
      OS << A << '*';
    OS << IndexNames[I];
    First = false;
  }
  std::string K = T.Const.str();
  if (First)
    return K;
  if (K == "0")
    return OS.str();
  if (K[0] == '-' && K.find(' ') == std::string::npos)
    OS << " - " << K.substr(1);
  else if (K.find(' ') == std::string::npos)
    OS << " + " << K;
  else
    OS << " + (" << K << ")";
  return OS.str();
}

void printNodes(const Program &P, const std::vector<ProgramNode> &Nodes,
                unsigned Indent, std::ostringstream &OS);

void indentBy(std::ostringstream &OS, unsigned Indent) {
  for (unsigned I = 0; I != Indent; ++I)
    OS << "  ";
}

} // namespace

std::string alp::printBound(const std::vector<BoundTerm> &Terms,
                            bool IsLower,
                            const std::vector<std::string> &IndexNames) {
  if (Terms.size() == 1)
    return termStr(Terms.front(), IndexNames);
  std::ostringstream OS;
  OS << (IsLower ? "max(" : "min(");
  for (unsigned I = 0; I != Terms.size(); ++I) {
    if (I)
      OS << ", ";
    OS << termStr(Terms[I], IndexNames);
  }
  OS << ')';
  return OS.str();
}

std::string alp::printNest(const Program &P, const LoopNest &Nest,
                           unsigned Indent) {
  std::ostringstream OS;
  std::vector<std::string> Names = Nest.indexNames();
  for (unsigned L = 0; L != Nest.depth(); ++L) {
    const Loop &Loop = Nest.Loops[L];
    indentBy(OS, Indent + L);
    OS << (Loop.isParallel() ? "forall " : "for ") << Loop.IndexName << " = "
       << printBound(Loop.Lower, /*IsLower=*/true, Names) << " to "
       << printBound(Loop.Upper, /*IsLower=*/false, Names) << " {\n";
  }
  for (const Statement &S : Nest.Body) {
    indentBy(OS, Indent + Nest.depth());
    if (!S.Text.empty()) {
      OS << S.Text << ";\n";
      continue;
    }
    // Reconstruct "W[..] = f(R1[..], R2[..], ...)".
    const ArrayAccess *W = S.firstWrite();
    bool FirstRead = true;
    if (W)
      OS << P.array(W->ArrayId).Name << W->Map.str(Names) << " = f(";
    for (const ArrayAccess &A : S.Accesses) {
      if (&A == W)
        continue;
      if (!FirstRead)
        OS << ", ";
      OS << P.array(A.ArrayId).Name << A.Map.str(Names);
      FirstRead = false;
    }
    if (W)
      OS << ")";
    OS << ";\n";
  }
  for (unsigned L = Nest.depth(); L != 0; --L) {
    indentBy(OS, Indent + L - 1);
    OS << "}\n";
  }
  return OS.str();
}

namespace {

void printNodes(const Program &P, const std::vector<ProgramNode> &Nodes,
                unsigned Indent, std::ostringstream &OS) {
  for (const ProgramNode &N : Nodes) {
    switch (N.NodeKind) {
    case ProgramNode::Kind::Nest:
      OS << printNest(P, P.nest(N.NestId), Indent);
      break;
    case ProgramNode::Kind::SequentialLoop:
      indentBy(OS, Indent);
      OS << "for " << N.IndexName << " = 1 to " << N.TripCount.str()
         << " {\n";
      printNodes(P, N.Children, Indent + 1, OS);
      indentBy(OS, Indent);
      OS << "}\n";
      break;
    case ProgramNode::Kind::Branch:
      indentBy(OS, Indent);
      OS << "if prob(" << N.TakenProbability << ") {\n";
      printNodes(P, N.Children, Indent + 1, OS);
      if (!N.ElseChildren.empty()) {
        indentBy(OS, Indent);
        OS << "} else {\n";
        printNodes(P, N.ElseChildren, Indent + 1, OS);
      }
      indentBy(OS, Indent);
      OS << "}\n";
      break;
    }
  }
}

} // namespace

std::string alp::printProgram(const Program &P) {
  std::ostringstream OS;
  OS << "program " << P.Name << ";\n";
  for (const auto &[Sym, Val] : P.SymbolBindings)
    OS << "param " << Sym << " = " << Val << ";\n";
  for (const ArraySymbol &A : P.Arrays) {
    OS << "array " << A.Name << '[';
    for (unsigned D = 0; D != A.rank(); ++D) {
      if (D)
        OS << ", ";
      OS << A.DimSizes[D].str();
    }
    OS << "];\n";
  }
  OS << '\n';
  printNodes(P, P.TopLevel, 0, OS);
  return OS.str();
}
