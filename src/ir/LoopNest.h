//===- ir/LoopNest.h - Perfectly nested affine loops ------------*- C++ -*-===//
///
/// \file
/// The unit the decomposition algorithms operate on: a perfectly nested
/// affine loop nest of depth l with a straight-line body of statements over
/// affine array accesses. Loop kinds (sequential vs forall) are attributes
/// set by the local phase (Wolf-Lam canonicalization), which also records
/// the sizes of the outermost fully permutable loop bands.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_IR_LOOPNEST_H
#define ALP_IR_LOOPNEST_H

#include "ir/AffineAccess.h"

#include <string>
#include <vector>

namespace alp {

/// A declared array: name, per-dimension symbolic extents, element size.
struct ArraySymbol {
  std::string Name;
  std::vector<SymAffine> DimSizes;
  unsigned ElemBytes = 8;
  /// Declaration site in the DSL source; invalid for built IR.
  SourceLoc Loc;

  unsigned rank() const { return DimSizes.size(); }
};

/// One affine bound term c . i_outer + s, where i_outer may mention any
/// strictly-enclosing loop index of the same nest (coefficients for the
/// loop's own position and deeper ones must be zero).
struct BoundTerm {
  Vector OuterCoeffs; // Size == nest depth.
  SymAffine Const;

  BoundTerm() = default;
  BoundTerm(Vector OuterCoeffs, SymAffine Const)
      : OuterCoeffs(std::move(OuterCoeffs)), Const(std::move(Const)) {}

  /// A bound that is a pure symbolic constant in a nest of depth \p Depth.
  static BoundTerm constant(unsigned Depth, SymAffine Value) {
    return BoundTerm(Vector::zero(Depth), std::move(Value));
  }

  Rational evaluate(const Vector &Iter,
                    const std::map<std::string, Rational> &Bindings) const {
    return OuterCoeffs.dot(Iter) + Const.evaluate(Bindings);
  }
};

/// Parallel (forall) or sequential, as classified by the local phase.
enum class LoopKind { Sequential, Parallel };

/// One loop of a nest. The trip range is [max(Lower), min(Upper)]
/// inclusive with unit stride (loops are normalized before decomposition).
struct Loop {
  std::string IndexName;
  std::vector<BoundTerm> Lower; // Effective bound: max of the terms.
  std::vector<BoundTerm> Upper; // Effective bound: min of the terms.
  LoopKind Kind = LoopKind::Sequential;
  /// Loop header position in the DSL source; invalid for built IR.
  SourceLoc Loc;

  bool isParallel() const { return Kind == LoopKind::Parallel; }
};

/// One assignment statement: exactly the array accesses it performs plus an
/// estimated compute cost. (Scalar expression structure is irrelevant to
/// decomposition, so it is kept only as display text.)
struct Statement {
  std::vector<ArrayAccess> Accesses;
  unsigned WorkCycles = 1;
  std::string Text;
  /// Statement position in the DSL source; invalid for built IR.
  SourceLoc Loc;

  const ArrayAccess *firstWrite() const {
    for (const ArrayAccess &A : Accesses)
      if (A.IsWrite)
        return &A;
    return nullptr;
  }
};

/// Records that loop BlockLoop iterates over blocks of loop ElementLoop
/// (produced by tiling, Sec. 5).
struct TilePair {
  unsigned BlockLoop = 0;
  unsigned ElementLoop = 0;
  int64_t TileSize = 1;
};

/// A perfectly nested affine loop nest.
class LoopNest {
public:
  unsigned Id = 0;

  std::vector<Loop> Loops; // Outermost first.
  std::vector<Statement> Body;

  /// Block/element loop pairs if this nest has been tiled.
  std::vector<TilePair> Tiles;

  /// Expected number of times the whole nest runs (profile; >= 0).
  double ExecCount = 1.0;
  /// Probability that control reaches the nest at all (branch profile).
  double Probability = 1.0;

  /// Sizes of the outermost fully permutable loop bands, outermost first,
  /// covering all loops; filled in by the local phase. A band of size > 1,
  /// or a band of size 1 whose loop is parallel, carries exploitable
  /// parallelism. Empty means the local phase has not run.
  std::vector<unsigned> PermutableBands;

  unsigned depth() const { return Loops.size(); }

  std::vector<std::string> indexNames() const;

  /// All accesses in the body, flattened.
  std::vector<const ArrayAccess *> accesses() const;

  /// All accesses to \p ArrayId in the body.
  std::vector<const ArrayAccess *> accessesTo(unsigned ArrayId) const;

  /// Distinct ids of arrays referenced in the body, ascending.
  std::vector<unsigned> referencedArrays() const;

  /// True if any access to \p ArrayId writes.
  bool writesArray(unsigned ArrayId) const;

  /// Position of the outermost parallel loop, or depth() if none.
  unsigned firstParallelLoop() const;

  /// Numeric trip count of loop \p Level with symbols bound and outer
  /// indices at their lower bounds (rectangular estimate).
  double estimatedTrip(unsigned Level,
                       const std::map<std::string, Rational> &Bindings) const;

  /// Product of all estimatedTrip values: iterations per execution.
  double
  estimatedIterations(const std::map<std::string, Rational> &Bindings) const;
};

} // namespace alp

#endif // ALP_IR_LOOPNEST_H
