//===- ir/LoopNest.cpp - Perfectly nested affine loops ---------------------===//

#include "ir/LoopNest.h"

#include <algorithm>
#include <set>

using namespace alp;

std::vector<std::string> LoopNest::indexNames() const {
  std::vector<std::string> Names;
  Names.reserve(Loops.size());
  for (const Loop &L : Loops)
    Names.push_back(L.IndexName);
  return Names;
}

std::vector<const ArrayAccess *> LoopNest::accesses() const {
  std::vector<const ArrayAccess *> Out;
  for (const Statement &S : Body)
    for (const ArrayAccess &A : S.Accesses)
      Out.push_back(&A);
  return Out;
}

std::vector<const ArrayAccess *>
LoopNest::accessesTo(unsigned ArrayId) const {
  std::vector<const ArrayAccess *> Out;
  for (const Statement &S : Body)
    for (const ArrayAccess &A : S.Accesses)
      if (A.ArrayId == ArrayId)
        Out.push_back(&A);
  return Out;
}

std::vector<unsigned> LoopNest::referencedArrays() const {
  std::set<unsigned> Ids;
  for (const Statement &S : Body)
    for (const ArrayAccess &A : S.Accesses)
      Ids.insert(A.ArrayId);
  return std::vector<unsigned>(Ids.begin(), Ids.end());
}

bool LoopNest::writesArray(unsigned ArrayId) const {
  for (const Statement &S : Body)
    for (const ArrayAccess &A : S.Accesses)
      if (A.ArrayId == ArrayId && A.IsWrite)
        return true;
  return false;
}

unsigned LoopNest::firstParallelLoop() const {
  for (unsigned L = 0; L != Loops.size(); ++L)
    if (Loops[L].isParallel())
      return L;
  return depth();
}

double LoopNest::estimatedTrip(
    unsigned Level, const std::map<std::string, Rational> &Bindings) const {
  assert(Level < Loops.size() && "loop level out of range");
  const Loop &L = Loops[Level];
  // Evaluate bounds with outer indices pinned to zero; for the rectangular
  // nests in the benchmark suite this is exact, for triangular nests it is
  // the usual rectangular over-estimate.
  Vector Zero = Vector::zero(depth());
  auto EvalMax = [&](const std::vector<BoundTerm> &Terms, bool WantMax) {
    assert(!Terms.empty() && "loop without bounds");
    Rational Best = Terms.front().evaluate(Zero, Bindings);
    for (const BoundTerm &T : Terms) {
      Rational V = T.evaluate(Zero, Bindings);
      if (WantMax ? V > Best : V < Best)
        Best = V;
    }
    return Best;
  };
  Rational Lo = EvalMax(L.Lower, /*WantMax=*/true);
  Rational Hi = EvalMax(L.Upper, /*WantMax=*/false);
  Rational Trip = Hi - Lo + Rational(1);
  if (Trip.isNegative())
    return 0.0;
  return static_cast<double>(Trip.num()) / static_cast<double>(Trip.den());
}

double LoopNest::estimatedIterations(
    const std::map<std::string, Rational> &Bindings) const {
  double Product = 1.0;
  for (unsigned L = 0; L != depth(); ++L)
    Product *= estimatedTrip(L, Bindings);
  return Product;
}
