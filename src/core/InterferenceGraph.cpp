//===- core/InterferenceGraph.cpp - Bipartite nest/array graph ---------------===//

#include "core/InterferenceGraph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace alp;

InterferenceGraph::InterferenceGraph(const Program &P,
                                     const std::vector<unsigned> &NestIds,
                                     bool IncludeReadOnly,
                                     const std::set<unsigned> *ForceInclude)
    : Prog(&P), NestIds(NestIds) {
  // Which arrays are written anywhere in the selected nests?
  std::set<unsigned> Written;
  for (unsigned N : NestIds)
    for (unsigned A : P.nest(N).referencedArrays())
      if (P.nest(N).writesArray(A))
        Written.insert(A);

  std::set<unsigned> Arrays;
  for (unsigned N : NestIds) {
    const LoopNest &Nest = P.nest(N);
    for (unsigned A : Nest.referencedArrays()) {
      if (!IncludeReadOnly && !Written.count(A) &&
          !(ForceInclude && ForceInclude->count(A)))
        continue;
      Arrays.insert(A);
      InterferenceEdge E;
      E.ArrayId = A;
      E.NestId = N;
      for (const ArrayAccess *Acc : Nest.accessesTo(A)) {
        // Deduplicate identical access maps on the edge.
        bool Seen = false;
        for (const AffineAccessMap &M : E.Accesses)
          if (M == Acc->Map) {
            Seen = true;
            break;
          }
        if (!Seen)
          E.Accesses.push_back(Acc->Map);
        E.HasWrite |= Acc->IsWrite;
      }
      Edges.push_back(std::move(E));
    }
  }
  ArrayIds.assign(Arrays.begin(), Arrays.end());
}

std::vector<const InterferenceEdge *>
InterferenceGraph::edgesOfNest(unsigned NestId) const {
  std::vector<const InterferenceEdge *> Out;
  for (const InterferenceEdge &E : Edges)
    if (E.NestId == NestId)
      Out.push_back(&E);
  return Out;
}

std::vector<const InterferenceEdge *>
InterferenceGraph::edgesOfArray(unsigned ArrayId) const {
  std::vector<const InterferenceEdge *> Out;
  for (const InterferenceEdge &E : Edges)
    if (E.ArrayId == ArrayId)
      Out.push_back(&E);
  return Out;
}

std::vector<InterferenceGraph::Component>
InterferenceGraph::connectedComponents() const {
  // Union-find over a combined id space: nests then arrays.
  std::map<unsigned, unsigned> NestSlot, ArraySlot;
  unsigned Count = 0;
  for (unsigned N : NestIds)
    NestSlot[N] = Count++;
  for (unsigned A : ArrayIds)
    ArraySlot[A] = Count++;
  std::vector<unsigned> Parent(Count);
  for (unsigned I = 0; I != Count; ++I)
    Parent[I] = I;
  std::function<unsigned(unsigned)> Find = [&](unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  for (const InterferenceEdge &E : Edges)
    Parent[Find(NestSlot[E.NestId])] = Find(ArraySlot[E.ArrayId]);

  std::map<unsigned, Component> ByRoot;
  for (unsigned N : NestIds)
    ByRoot[Find(NestSlot[N])].Nests.push_back(N);
  for (unsigned A : ArrayIds)
    ByRoot[Find(ArraySlot[A])].Arrays.push_back(A);
  std::vector<Component> Out;
  for (auto &[Root, C] : ByRoot)
    Out.push_back(std::move(C));
  return Out;
}

VectorSpace InterferenceGraph::accessedSpace(unsigned ArrayId) const {
  VectorSpace S(Prog->array(ArrayId).rank());
  for (const InterferenceEdge &E : Edges) {
    if (E.ArrayId != ArrayId)
      continue;
    for (const AffineAccessMap &M : E.Accesses)
      S.unionWith(VectorSpace::rangeOf(M.linear()));
  }
  return S;
}
