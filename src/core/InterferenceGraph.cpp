//===- core/InterferenceGraph.cpp - Bipartite nest/array graph ---------------===//

#include "core/InterferenceGraph.h"

#include "support/Arena.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace alp;

InterferenceGraph::InterferenceGraph(const Program &P,
                                     const std::vector<unsigned> &NestIds,
                                     bool IncludeReadOnly,
                                     const std::set<unsigned> *ForceInclude)
    : Prog(&P), NestIds(NestIds) {
  // One body scan per nest: group accesses by array (ascending id, the
  // edge order the rest of the pipeline sees) and note which arrays the
  // selected nests write.
  struct PerArray {
    std::vector<const ArrayAccess *> Accs;
    bool Write = false;
  };
  std::vector<std::map<unsigned, PerArray>> NestAcc(NestIds.size());
  std::set<unsigned> Written;
  for (unsigned I = 0; I != NestIds.size(); ++I) {
    for (const Statement &S : P.nest(NestIds[I]).Body)
      for (const ArrayAccess &A : S.Accesses) {
        PerArray &PA = NestAcc[I][A.ArrayId];
        PA.Accs.push_back(&A);
        PA.Write |= A.IsWrite;
      }
    for (const auto &[A, PA] : NestAcc[I])
      if (PA.Write)
        Written.insert(A);
  }

  std::set<unsigned> Arrays;
  for (unsigned I = 0; I != NestIds.size(); ++I) {
    for (const auto &[A, PA] : NestAcc[I]) {
      if (!IncludeReadOnly && !Written.count(A) &&
          !(ForceInclude && ForceInclude->count(A)))
        continue;
      Arrays.insert(A);
      InterferenceEdge E;
      E.ArrayId = A;
      E.NestId = NestIds[I];
      for (const ArrayAccess *Acc : PA.Accs) {
        // Deduplicate identical access maps on the edge.
        bool Seen = false;
        for (const AffineAccessMap &M : E.Accesses)
          if (M == Acc->Map) {
            Seen = true;
            break;
          }
        if (!Seen)
          E.Accesses.push_back(Acc->Map);
        E.HasWrite |= Acc->IsWrite;
      }
      Edges.push_back(std::move(E));
    }
  }
  ArrayIds.assign(Arrays.begin(), Arrays.end());
}

InterferenceGraph::~InterferenceGraph() {
  delete Idx.load(std::memory_order_acquire);
}

InterferenceGraph::InterferenceGraph(const InterferenceGraph &RHS)
    : Prog(RHS.Prog), NestIds(RHS.NestIds), ArrayIds(RHS.ArrayIds),
      Edges(RHS.Edges) {}

InterferenceGraph &InterferenceGraph::operator=(const InterferenceGraph &RHS) {
  if (this == &RHS)
    return *this;
  Prog = RHS.Prog;
  NestIds = RHS.NestIds;
  ArrayIds = RHS.ArrayIds;
  Edges = RHS.Edges;
  delete Idx.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

const InterferenceGraph::Index &InterferenceGraph::index() const {
  if (const Index *I = Idx.load(std::memory_order_acquire))
    return *I;

  // Build with the thread-local arena disabled: the index outlives any
  // caller's ArenaScope and is shared across threads, so the accessed
  // spaces must own plain heap storage.
  Arena *Prev = Arena::setCurrent(nullptr);
  Index *Fresh = nullptr;
  try {
    Fresh = new Index;

    unsigned MaxNest = 0, MaxArray = 0;
    for (unsigned N : NestIds)
      MaxNest = std::max(MaxNest, N);
    for (unsigned A : ArrayIds)
      MaxArray = std::max(MaxArray, A);

    // Adjacency: one pass over the edge list, preserving edge order.
    Fresh->ByNest.resize(NestIds.empty() ? 0 : MaxNest + 1);
    Fresh->ByArray.resize(ArrayIds.empty() ? 0 : MaxArray + 1);
    for (const InterferenceEdge &E : Edges) {
      Fresh->ByNest[E.NestId].push_back(&E);
      Fresh->ByArray[E.ArrayId].push_back(&E);
    }

    // Connected components: union-find over a combined id space, nests
    // then arrays.
    std::map<unsigned, unsigned> NestSlot, ArraySlot;
    unsigned Count = 0;
    for (unsigned N : NestIds)
      NestSlot[N] = Count++;
    for (unsigned A : ArrayIds)
      ArraySlot[A] = Count++;
    std::vector<unsigned> Parent(Count);
    for (unsigned I = 0; I != Count; ++I)
      Parent[I] = I;
    auto Find = [&Parent](unsigned X) {
      while (Parent[X] != X) {
        Parent[X] = Parent[Parent[X]];
        X = Parent[X];
      }
      return X;
    };
    for (const InterferenceEdge &E : Edges)
      Parent[Find(NestSlot[E.NestId])] = Find(ArraySlot[E.ArrayId]);

    std::map<unsigned, Component> ByRoot;
    for (unsigned N : NestIds)
      ByRoot[Find(NestSlot[N])].Nests.push_back(N);
    for (unsigned A : ArrayIds)
      ByRoot[Find(ArraySlot[A])].Arrays.push_back(A);
    for (auto &[Root, C] : ByRoot)
      Fresh->Components.push_back(std::move(C));

    // Accessed data spaces S_x = sum_j range(F_xj).
    Fresh->Accessed.resize(ArrayIds.empty() ? 0 : MaxArray + 1);
    for (unsigned A : ArrayIds) {
      VectorSpace S(Prog->array(A).rank());
      for (const InterferenceEdge *E : Fresh->ByArray[A])
        for (const AffineAccessMap &M : E->Accesses)
          S.unionWith(VectorSpace::rangeOf(M.linear()));
      Fresh->Accessed[A] = std::move(S);
    }
  } catch (...) {
    Arena::setCurrent(Prev);
    delete Fresh;
    throw;
  }
  Arena::setCurrent(Prev);

  const Index *Expected = nullptr;
  if (!Idx.compare_exchange_strong(Expected, Fresh,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    delete Fresh;
    return *Expected;
  }
  return *Fresh;
}

const std::vector<const InterferenceEdge *> &
InterferenceGraph::edgesOfNest(unsigned NestId) const {
  const Index &I = index();
  if (NestId < I.ByNest.size())
    return I.ByNest[NestId];
  static const std::vector<const InterferenceEdge *> Empty;
  return Empty;
}

const std::vector<const InterferenceEdge *> &
InterferenceGraph::edgesOfArray(unsigned ArrayId) const {
  const Index &I = index();
  if (ArrayId < I.ByArray.size())
    return I.ByArray[ArrayId];
  static const std::vector<const InterferenceEdge *> Empty;
  return Empty;
}

const std::vector<InterferenceGraph::Component> &
InterferenceGraph::connectedComponents() const {
  return index().Components;
}

const VectorSpace &InterferenceGraph::accessedSpace(unsigned ArrayId) const {
  const Index &I = index();
  assert(ArrayId < I.Accessed.size() && "array not in interference graph");
  return I.Accessed[ArrayId];
}
