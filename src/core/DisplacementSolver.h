//===- core/DisplacementSolver.h - Displacement calculation -----*- C++ -*-===//
///
/// \file
/// Sec. 4.5: with partitions and orientations fixed, the displacements
/// delta / gamma follow from Eqn. 2: gamma_j = D_x k_xj + delta_x and
/// delta_y = gamma_j - D_y k_yj. Conflicting requirements cannot always be
/// met; the solver is greedy, assigning along interference edges in
/// decreasing execution-frequency order so that any residual
/// (cheap, nearest-neighbor) displacement communication lands on the least
/// frequently executed accesses.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_DISPLACEMENTSOLVER_H
#define ALP_CORE_DISPLACEMENTSOLVER_H

#include "core/OrientationSolver.h"
#include "linalg/SymAffine.h"

namespace alp {

/// A residual displacement mismatch (nearest-neighbor communication).
struct DisplacementConflict {
  unsigned ArrayId = 0;
  unsigned NestId = 0;
  /// The offset by which the access misses the local data.
  SymVector Offset;
};

struct DisplacementResult {
  std::map<unsigned, SymVector> Delta; // Array -> displacement.
  std::map<unsigned, SymVector> Gamma; // Nest  -> displacement.
  std::vector<DisplacementConflict> Conflicts;
};

/// Solves displacements over \p IG given orientations \p Orient. Edges are
/// processed in decreasing order of the owning nest's execution count.
DisplacementResult solveDisplacements(const InterferenceGraph &IG,
                                      const OrientationResult &Orient);

} // namespace alp

#endif // ALP_CORE_DISPLACEMENTSOLVER_H
