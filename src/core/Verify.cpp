//===- core/Verify.cpp - Decomposition invariant checking --------------------===//

#include "core/Verify.h"

#include <sstream>

using namespace alp;

std::vector<std::string>
alp::verifyDecomposition(const Program &P, const ProgramDecomposition &PD) {
  std::vector<std::string> Issues;
  auto Report = [&](const std::string &S) { Issues.push_back(S); };

  for (const auto &[NestId, CD] : PD.Comp) {
    const LoopNest &Nest = P.nest(NestId);
    // ker(C) must be exactly the recorded computation partition.
    if (VectorSpace::kernelOf(CD.C) != CD.Kernel) {
      std::ostringstream OS;
      OS << "nest " << NestId << ": ker(C) = "
         << VectorSpace::kernelOf(CD.C).str() << " != recorded partition "
         << CD.Kernel.str();
      Report(OS.str());
    }
    if (!CD.Localized.containsSpace(CD.Kernel)) {
      std::ostringstream OS;
      OS << "nest " << NestId << ": Lc does not contain ker C";
      Report(OS.str());
    }

    for (const Statement &S : Nest.Body)
      for (const ArrayAccess &A : S.Accesses) {
        auto DIt = PD.Data.find({A.ArrayId, NestId});
        if (DIt == PD.Data.end()) {
          std::ostringstream OS;
          OS << "nest " << NestId << ": no data decomposition for array "
             << P.array(A.ArrayId).Name;
          Report(OS.str());
          continue;
        }
        const DataDecomposition &DD = DIt->second;
        if (!VectorSpace::kernelOf(DD.D).containsSpace(DD.Kernel)) {
          std::ostringstream OS;
          OS << "array " << P.array(A.ArrayId).Name << " @nest " << NestId
             << ": ker(D) misses the recorded partition";
          Report(OS.str());
        }
        if (!DD.Localized.containsSpace(DD.Kernel)) {
          std::ostringstream OS;
          OS << "array " << P.array(A.ArrayId).Name << " @nest " << NestId
             << ": Ld does not contain ker D";
          Report(OS.str());
        }
        // Replicated arrays satisfy Eqn. 7 instead of Eqn. 3.
        if (PD.ReplicatedDims.count(A.ArrayId) &&
            PD.ReplicatedDims.at(A.ArrayId) > 0)
          continue;
        if (DD.D.rows() != CD.C.rows())
          continue; // Different-era matrices (defensive; not expected).
        if (DD.D * A.Map.linear() != CD.C) {
          std::ostringstream OS;
          OS << "array " << P.array(A.ArrayId).Name << " @nest " << NestId
             << ": D*F = " << (DD.D * A.Map.linear()).str()
             << " != C = " << CD.C.str() << " (Theorem 4.1 violated)";
          Report(OS.str());
        }
      }
  }

  // Within one component, an array has a single decomposition.
  std::map<std::pair<unsigned, unsigned>, const DataDecomposition *> Seen;
  for (const auto &[Key, DD] : PD.Data) {
    auto [ArrayId, NestId] = Key;
    auto CIt = PD.ComponentOf.find(NestId);
    if (CIt == PD.ComponentOf.end())
      continue;
    auto [It, Inserted] = Seen.insert({{ArrayId, CIt->second}, &DD});
    if (Inserted)
      continue;
    if (It->second->D != DD.D || It->second->Delta != DD.Delta) {
      std::ostringstream OS;
      OS << "array " << P.array(ArrayId).Name
         << " has two decompositions inside component " << CIt->second;
      Report(OS.str());
    }
  }
  return Issues;
}
