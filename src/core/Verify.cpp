//===- core/Verify.cpp - Decomposition invariant checking -----------------===//

#include "core/Verify.h"

#include <set>
#include <sstream>

using namespace alp;

namespace {

/// Accumulates decomposition diagnostics with a fixed pass-id prefix.
class Reporter {
public:
  explicit Reporter(std::vector<Diagnostic> &Out) : Out(Out) {}

  Diagnostic &error(const std::string &PassId, SourceLoc Loc,
                    const std::string &Message) {
    Diagnostic D;
    D.DiagKind = Diagnostic::Kind::Error;
    D.PassId = PassId;
    D.Loc = Loc;
    D.Message = Message;
    Out.push_back(std::move(D));
    return Out.back();
  }

private:
  std::vector<Diagnostic> &Out;
};

SourceLoc nestLoc(const LoopNest &Nest) {
  return Nest.Loops.empty() ? SourceLoc() : Nest.Loops.front().Loc;
}

} // namespace

std::vector<Diagnostic>
alp::verifyDecompositionDiagnostics(const Program &P,
                                    const ProgramDecomposition &PD) {
  std::vector<Diagnostic> Diags;
  Reporter R(Diags);

  // Coverage: every nest of the program needs a computation decomposition.
  // Without this an empty decomposition would verify vacuously.
  for (unsigned NestId : P.nestsInOrder()) {
    if (PD.Comp.count(NestId))
      continue;
    std::ostringstream OS;
    OS << "nest " << NestId << " has no computation decomposition";
    R.error("decomp.coverage", nestLoc(P.nest(NestId)), OS.str());
  }

  for (const auto &[NestId, CD] : PD.Comp) {
    if (NestId >= P.Nests.size()) {
      std::ostringstream OS;
      OS << "decomposition names nonexistent nest " << NestId;
      R.error("decomp.coverage", SourceLoc(), OS.str());
      continue;
    }
    const LoopNest &Nest = P.nest(NestId);
    // ker(C) must be exactly the recorded computation partition.
    if (VectorSpace::kernelOf(CD.C) != CD.Kernel) {
      std::ostringstream OS;
      OS << "nest " << NestId << ": ker(C) = "
         << VectorSpace::kernelOf(CD.C).str() << " != recorded partition "
         << CD.Kernel.str();
      R.error("decomp.kernel", nestLoc(Nest), OS.str());
    }
    if (!CD.Localized.containsSpace(CD.Kernel)) {
      std::ostringstream OS;
      OS << "nest " << NestId << ": Lc does not contain ker C";
      R.error("decomp.localized", nestLoc(Nest), OS.str());
    }

    for (const Statement &S : Nest.Body)
      for (const ArrayAccess &A : S.Accesses) {
        auto DIt = PD.Data.find({A.ArrayId, NestId});
        if (DIt == PD.Data.end()) {
          std::ostringstream OS;
          OS << "nest " << NestId << ": no data decomposition for array "
             << P.array(A.ArrayId).Name;
          R.error("decomp.data-missing", A.Loc, OS.str());
          continue;
        }
        const DataDecomposition &DD = DIt->second;
        if (!VectorSpace::kernelOf(DD.D).containsSpace(DD.Kernel)) {
          std::ostringstream OS;
          OS << "array " << P.array(A.ArrayId).Name << " @nest " << NestId
             << ": ker(D) misses the recorded partition";
          R.error("decomp.kernel", A.Loc, OS.str());
        }
        if (!DD.Localized.containsSpace(DD.Kernel)) {
          std::ostringstream OS;
          OS << "array " << P.array(A.ArrayId).Name << " @nest " << NestId
             << ": Ld does not contain ker D";
          R.error("decomp.localized", A.Loc, OS.str());
        }
        // Replicated arrays satisfy Eqn. 7 instead of Eqn. 3.
        if (PD.ReplicatedDims.count(A.ArrayId) &&
            PD.ReplicatedDims.at(A.ArrayId) > 0)
          continue;
        if (DD.D.rows() != CD.C.rows())
          continue; // Different-era matrices (defensive; not expected).
        if (DD.D * A.Map.linear() != CD.C) {
          std::ostringstream OS;
          OS << "array " << P.array(A.ArrayId).Name << " @nest " << NestId
             << ": D*F = " << (DD.D * A.Map.linear()).str()
             << " != C = " << CD.C.str() << " (Theorem 4.1 violated)";
          Diagnostic &D =
              R.error("decomp.theorem-4.1", A.Loc, OS.str());
          DiagNote N;
          N.Loc = nestLoc(Nest);
          N.Message = "computation decomposition of the enclosing nest "
                      "fixed here";
          D.Notes.push_back(std::move(N));
        }
      }
  }

  // Within one component, an array has a single decomposition.
  std::map<std::pair<unsigned, unsigned>, const DataDecomposition *> Seen;
  for (const auto &[Key, DD] : PD.Data) {
    auto [ArrayId, NestId] = Key;
    auto CIt = PD.ComponentOf.find(NestId);
    if (CIt == PD.ComponentOf.end())
      continue;
    auto [It, Inserted] = Seen.insert({{ArrayId, CIt->second}, &DD});
    if (Inserted)
      continue;
    if (It->second->D != DD.D || It->second->Delta != DD.Delta) {
      std::ostringstream OS;
      OS << "array " << P.array(ArrayId).Name
         << " has two decompositions inside component " << CIt->second;
      SourceLoc Loc =
          ArrayId < P.Arrays.size() ? P.array(ArrayId).Loc : SourceLoc();
      R.error("decomp.component", Loc, OS.str());
    }
  }
  return Diags;
}
