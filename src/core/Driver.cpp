//===- core/Driver.cpp - End-to-end decomposition pipeline -------------------===//

#include "core/Driver.h"

#include "core/DisplacementSolver.h"
#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/FailPoint.h"
#include "support/ThreadPool.h"
#include "transform/Unimodular.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <sstream>

using namespace alp;

namespace {

/// Injection site at the head of the whole pipeline: a fault here has no
/// stage fallback, so it must surface as a clean error Status from
/// decomposeOrError (never a crash).
FailPoint FpDriverPipeline("driver.pipeline");

} // namespace

Expected<ProgramDecomposition>
alp::decomposeOrError(Program &P, const MachineParams &Machine,
                      const DriverOptions &Opts) {
  ProgramDecomposition PD;
  // Snapshot the process-wide allocation accounting so the run can publish
  // its own deltas: linalg.allocs counts heap spills of linalg containers
  // (zero in steady state once arena blocks are warm), linalg.arena_bytes
  // the scratch traffic the arenas absorbed instead.
  const uint64_t HeapSpillsBefore = containerHeapSpills();
  const uint64_t ArenaBytesBefore = arenaBytesAllocated();
  // Per-run budget copy: fresh counters, caller's limits. Arm the
  // deadline before the pool fans budget copies out (Budget.h contract).
  ResourceBudget Budget = Opts.Budget;
  if (Opts.DeadlineMs)
    Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
  // One pool and one projection cache for the whole run. Jobs == 1 still
  // goes through the pool's task decomposition (serially), keeping the
  // budget semantics — and therefore the output — independent of the job
  // count. A caller-injected pool (Opts.Pool — the batch session's warm
  // workers) is used as-is: its threads keep their thread-local arena
  // blocks across runs, which is what makes a warm batch allocation-free.
  std::optional<ThreadPool> OwnedPool;
  if (!Opts.Pool)
    OwnedPool.emplace(Opts.Jobs ? Opts.Jobs
                                : ThreadPool::hardwareConcurrency());
  ThreadPool &Pool = Opts.Pool ? *Opts.Pool : *OwnedPool;
  DependenceCache SharedCache;
  const TraceContext &Observe = Opts.Observe;
  TraceSpan PipelineSpan(Observe.Trace, "driver.decompose");

  try {

  FpDriverPipeline.evaluateOrThrow(&Budget);

  if (Opts.RunLocalPhase) {
    TraceSpan Span(Observe.Trace, "driver.local_phase");
    std::vector<std::string> LPWarnings;
    LocalPhaseOptions LPOpts;
    LPOpts.Pool = &Pool;
    LPOpts.SharedCache = &SharedCache;
    LPOpts.Observe = Observe;
    LPOpts.TaskAttempts = Opts.TaskAttempts;
    LPOpts.TaskDeadlineMs = Opts.TaskDeadlineMs;
    runLocalPhase(P, &Budget, &LPWarnings, LPOpts);
    for (const std::string &W : LPWarnings)
      PD.Degradations.push_back({W.rfind("local phase", 0) == 0
                                     ? Degradation::Stage::LocalPhase
                                     : Degradation::Stage::Dependence,
                                 W});
  }

  CostModel CM(P, Machine);
  DynamicDecomposerOptions DynOpts;
  DynOpts.UseBlocking = Opts.EnableBlocking;
  DynOpts.Policy = Opts.Policy;
  DynOpts.ExcludeReadOnly = Opts.EnableReplication;
  DynOpts.Budget = &Budget;
  DynOpts.Pool = &Pool;
  DynOpts.Observe = Observe;
  DynOpts.TaskAttempts = Opts.TaskAttempts;
  DynOpts.TaskDeadlineMs = Opts.TaskDeadlineMs;
  DynamicResult DR = [&] {
    TraceSpan Span(Observe.Trace, "driver.dynamic_decomposition");
    return Opts.MultiLevel
               ? runMultiLevelDynamicDecomposition(P, CM, DynOpts)
               : runDynamicDecomposition(P, CM, DynOpts);
  }();

  PD.ComponentOf = DR.ComponentOf;
  // Supervision events from the dynamic phase (abandoned joins, retried
  // initial solves) are degradations of the Partition stage: the answer
  // is valid but not provably the fault-free one.
  for (const std::string &W : DR.Warnings)
    PD.Degradations.push_back({Degradation::Stage::Partition, W});

  // Cross-component orientation matching: components processed in
  // decreasing total-work order seed preferences for later ones.
  std::set<unsigned> Roots;
  for (const auto &[Nest, Root] : DR.ComponentOf)
    Roots.insert(Root);
  std::vector<unsigned> RootOrder(Roots.begin(), Roots.end());
  std::stable_sort(RootOrder.begin(), RootOrder.end(),
                   [&](unsigned A, unsigned B) {
                     auto Work = [&](unsigned Root) {
                       double W = 0;
                       for (unsigned N : DR.nestsOfComponent(Root))
                         W += CM.nestWork(N);
                       return W;
                     };
                     return Work(A) > Work(B);
                   });

  // Arrays written anywhere: never replicable, and never excluded from a
  // component's partition solve (a locally-read-only array written in
  // another component still constrains the layout).
  std::set<unsigned> GlobalWritten;
  for (const LoopNest &Nest : P.Nests)
    for (unsigned A : Nest.referencedArrays())
      if (Nest.writesArray(A))
        GlobalWritten.insert(A);

  OrientationOptions OOpts = Opts.Orientation;
  OOpts.Budget = &Budget;
  OOpts.Observe = Observe;
  for (unsigned Root : RootOrder) {
    TraceSpan ComponentSpan(Observe.Trace, "driver.component",
                            static_cast<int64_t>(Root));
    std::vector<unsigned> Nests = DR.nestsOfComponent(Root);
    PartitionResult Parts = DR.Partitions[Root];
    if (Parts.Degraded)
      PD.Degradations.push_back({Degradation::Stage::Partition,
                                 "component " + std::to_string(Root) + ": " +
                                     Parts.DegradeReason});

    // Replication: re-solve the partitions without read-only arrays so
    // they cannot constrain parallelism, then derive their kernels from
    // the computation partitions (Sec. 7.2).
    InterferenceGraph FullIG(P, Nests, /*IncludeReadOnly=*/true);
    if (Opts.EnableReplication) {
      TraceSpan Span(Observe.Trace, "driver.replication_resolve",
                     static_cast<int64_t>(Root));
      InterferenceGraph WriteIG(P, Nests, /*IncludeReadOnly=*/false,
                                &GlobalWritten);
      PartitionOptions POpts = Opts.Partition;
      POpts.Budget = &Budget;
      POpts.Observe = Observe;
      PartitionResult WriteParts =
          Opts.EnableBlocking ? solvePartitionsWithBlocks(WriteIG, POpts)
                              : solvePartitions(WriteIG, POpts);
      if (WriteParts.Degraded)
        PD.Degradations.push_back(
            {Degradation::Stage::Replication,
             "component " + std::to_string(Root) +
                 ": write-only re-solve degraded, replication skipped (" +
                 WriteParts.DegradeReason + ")"});
      // Keep the write-only solve only if it exposes at least as much
      // parallelism (it should; the constraints are a subset).
      if (!WriteParts.Degraded &&
          WriteParts.totalParallelism() >= Parts.totalParallelism())
        Parts = WriteParts;
    }
    // Fill in arrays the kept partition never saw via Eqn. 5 (and Lc for
    // blocked dims). With replication enabled both candidate solves ran on
    // a write-only graph, so read-only arrays are absent even when the
    // re-solve degraded and was discarded; orientation needs every array
    // of the full graph to have a kernel.
    for (unsigned A : FullIG.arrays()) {
      if (Parts.DataKernel.count(A))
        continue;
      VectorSpace Kernel(P.array(A).rank());
      VectorSpace Localized(P.array(A).rank());
      for (const InterferenceEdge *E : FullIG.edgesOfArray(A))
        for (const AffineAccessMap &M : E->Accesses) {
          Kernel.unionWith(
              Parts.CompKernel[E->NestId].imageUnder(M.linear()));
          Localized.unionWith(
              Parts.CompLocalized[E->NestId].imageUnder(M.linear()));
        }
      Parts.DataKernel[A] = Kernel;
      Parts.DataLocalized[A] = Localized;
    }

    OrientationResult Orient = solveOrientations(FullIG, Parts, OOpts);
    if (Orient.Degraded) {
      // Degraded components carry zero matrices; widen the matching
      // kernels to the full space so ker C / ker D stay consistent.
      for (auto &[N, C] : Orient.C)
        if (C.isZero() && Parts.CompKernel.count(N)) {
          Parts.CompKernel[N] = VectorSpace::full(C.cols());
          Parts.CompLocalized[N] = Parts.CompKernel[N];
        }
      for (auto &[A, D] : Orient.D)
        if (D.isZero() && Parts.DataKernel.count(A)) {
          Parts.DataKernel[A] = VectorSpace::full(D.cols());
          Parts.DataLocalized[A] = Parts.DataKernel[A];
        }
      for (const std::string &W : Orient.Warnings)
        PD.Degradations.push_back({Degradation::Stage::Orientation,
                                   "component " + std::to_string(Root) +
                                       ": " + W});
    }
    if (Opts.EnableIdleProjection) {
      TraceSpan Span(Observe.Trace, "driver.projection",
                     static_cast<int64_t>(Root));
      try {
        unsigned NPrime = reducedVirtualDims(FullIG, Parts);
        if (NPrime < Orient.VirtualDims && NPrime > 0) {
          projectProcessorSpace(Orient, NPrime);
          Observe.count("driver.projections_applied");
        }
      } catch (const AlpException &E) {
        PD.Degradations.push_back({Degradation::Stage::Projection,
                                   "component " + std::to_string(Root) +
                                       ": projection skipped (" +
                                       E.status().str() + ")"});
      }
    }
    DisplacementResult Disp;
    TraceSpan DispSpan(Observe.Trace, "driver.displacement",
                       static_cast<int64_t>(Root));
    try {
      Disp = solveDisplacements(FullIG, Orient);
    } catch (const AlpException &E) {
      Disp = DisplacementResult(); // Zero displacements: legal, just more
                                   // nearest-neighbor communication.
      PD.Degradations.push_back({Degradation::Stage::Displacement,
                                 "component " + std::to_string(Root) +
                                     ": zero displacements (" +
                                     E.status().str() + ")"});
    }
    DispSpan.finish();

    // Replication degrees (after projection so n is final).
    if (Opts.EnableReplication) {
      TraceSpan Span(Observe.Trace, "driver.replication_analysis",
                     static_cast<int64_t>(Root));
      try {
        for (const ReplicationInfo &RI :
             analyzeReplication(FullIG, Parts, Orient)) {
          if (RI.Degree > 0 && !GlobalWritten.count(RI.ArrayId))
            PD.ReplicatedDims[RI.ArrayId] =
                std::max(PD.ReplicatedDims[RI.ArrayId], RI.Degree);
        }
      } catch (const AlpException &E) {
        PD.Degradations.push_back({Degradation::Stage::Replication,
                                   "component " + std::to_string(Root) +
                                       ": replication analysis skipped (" +
                                       E.status().str() + ")"});
      }
    }

    PD.VirtualDims = std::max(PD.VirtualDims, Orient.VirtualDims);

    // Record per-nest computation decompositions.
    for (unsigned N : Nests) {
      CompDecomposition CD;
      CD.C = Orient.C.count(N) ? Orient.C[N]
                               : Matrix::zero(Orient.VirtualDims,
                                              P.nest(N).depth());
      CD.Gamma = Disp.Gamma.count(N) ? Disp.Gamma[N]
                                     : SymVector(CD.C.rows());
      CD.Kernel = Parts.CompKernel.count(N)
                      ? Parts.CompKernel[N]
                      : VectorSpace::full(P.nest(N).depth());
      CD.Localized =
          Parts.CompLocalized.count(N) ? Parts.CompLocalized[N] : CD.Kernel;
      PD.Comp[N] = std::move(CD);
    }
    // Record per-(array, nest) data decompositions.
    for (unsigned N : Nests)
      for (unsigned A : P.nest(N).referencedArrays()) {
        DataDecomposition DD;
        DD.D = Orient.D.count(A)
                   ? Orient.D[A]
                   : Matrix::zero(Orient.VirtualDims, P.array(A).rank());
        DD.Delta =
            Disp.Delta.count(A) ? Disp.Delta[A] : SymVector(DD.D.rows());
        DD.Kernel = Parts.DataKernel.count(A)
                        ? Parts.DataKernel[A]
                        : VectorSpace::full(P.array(A).rank());
        DD.Localized =
            Parts.DataLocalized.count(A) ? Parts.DataLocalized[A] : DD.Kernel;
        PD.Data[{A, N}] = std::move(DD);
      }

    // Seed orientation preferences for later components.
    for (const auto &[A, D] : Orient.D)
      OOpts.PreferredD.emplace(A, D);
  }

  // Remaining reorganization communication: the cut edges, per array.
  for (const CommEdge &E : DR.CutEdges)
    for (const auto &[ArrayId, Cost] : E.PerArray) {
      ReorganizationPoint RP;
      RP.ArrayId = ArrayId;
      RP.FromNest = E.U;
      RP.ToNest = E.V;
      RP.CostCycles = Cost;
      RP.Frequency = 1.0; // Cost already includes the frequency weight.
      PD.Reorganizations.push_back(RP);
    }

  } catch (const AlpException &E) {
    // A failure outside any stage's fallback (e.g. overflow in the cost
    // model or the communication graph): no sound partial answer exists.
    return E.status();
  } catch (const std::exception &E) {
    // Anything else escaping the pipeline is a library defect, but the
    // fail-soft contract still holds at this boundary: report an error
    // instead of crashing the host.
    return Status::error(StatusCode::Unsolvable,
                         std::string("internal error: ") + E.what());
  }

  Observe.count("driver.components",
                [&] {
                  std::set<unsigned> Roots;
                  for (const auto &[Nest, Root] : PD.ComponentOf)
                    Roots.insert(Root);
                  return Roots.size();
                }());
  Observe.count("driver.degradations", PD.Degradations.size());
  Observe.count("driver.reorganizations", PD.Reorganizations.size());
  if (Observe.Metrics) {
    SharedCache.stats().publishTo(*Observe.Metrics);
    // The run budget's consumed counters only see serially charged work
    // (parallel tasks run on private copies), but even so they are wall
    // and scheduling facts of this run — gauges, not counters.
    Observe.gauge("budget.used_elimination_steps",
                  static_cast<double>(Budget.UsedEliminationSteps.load(
                      std::memory_order_relaxed)));
    Observe.gauge("budget.used_solver_iterations",
                  static_cast<double>(Budget.UsedSolverIterations.load(
                      std::memory_order_relaxed)));
    // Gauges, not counters: cache-hit timing across workers can shift how
    // much scratch each run allocates, so the values are wall facts of
    // this run rather than jobs-deterministic payload.
    Observe.gauge("linalg.allocs", static_cast<double>(containerHeapSpills() -
                                                       HeapSpillsBefore));
    Observe.gauge("linalg.arena_bytes",
                  static_cast<double>(arenaBytesAllocated() -
                                      ArenaBytesBefore));
  }
  return PD;
}

std::string alp::printDecomposition(const Program &P,
                                    const ProgramDecomposition &PD) {
  std::ostringstream OS;
  OS << "decomposition of '" << P.Name << "' onto a " << PD.VirtualDims
     << "-d virtual processor space\n";
  for (const auto &[NestId, CD] : PD.Comp) {
    OS << "  nest " << NestId << " (component "
       << (PD.ComponentOf.count(NestId) ? PD.ComponentOf.at(NestId) : NestId)
       << "): C = " << CD.C.str() << ", gamma = " << CD.Gamma.str()
       << ", ker C = " << CD.Kernel.str();
    if (CD.isBlocked())
      OS << ", Lc = " << CD.Localized.str() << " [blocked]";
    OS << '\n';
  }
  std::set<std::pair<unsigned, std::string>> Printed;
  for (const auto &[Key, DD] : PD.Data) {
    auto [ArrayId, NestId] = Key;
    std::string Desc = DD.str();
    if (!Printed.insert({ArrayId, Desc}).second)
      continue;
    OS << "  array " << P.array(ArrayId).Name << " @nest " << NestId
       << ": D = " << DD.D.str() << ", delta = " << DD.Delta.str()
       << ", ker D = " << DD.Kernel.str();
    if (DD.isBlocked())
      OS << ", Ld = " << DD.Localized.str() << " [blocked]";
    if (PD.ReplicatedDims.count(ArrayId))
      OS << ", replicated along " << PD.ReplicatedDims.at(ArrayId)
         << " dim(s)";
    OS << '\n';
  }
  if (PD.Reorganizations.empty()) {
    OS << "  static: no reorganization communication\n";
  } else {
    for (const ReorganizationPoint &RP : PD.Reorganizations)
      OS << "  reorganize " << P.array(RP.ArrayId).Name << " between nest "
         << RP.FromNest << " and nest " << RP.ToNest << " (cost "
         << RP.CostCycles << " cycles)\n";
  }
  return OS.str();
}
