//===- core/CostModel.cpp - Parallelism benefit & communication cost ---------===//

#include "core/CostModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alp;

CostModel::CostModel(const Program &P, const MachineParams &M) : P(P), M(M) {
  Costs.resize(P.Nests.size());
  for (unsigned Id = 0; Id != P.Nests.size(); ++Id) {
    const LoopNest &Nest = P.Nests[Id];
    NestCost &C = Costs[Id];
    C.Trips.resize(Nest.depth());
    for (unsigned K = 0; K != Nest.depth(); ++K) {
      C.Trips[K] = Nest.estimatedTrip(K, P.SymbolBindings);
      C.Iters *= C.Trips[K];
    }
    double PerIter = 0.0;
    for (const Statement &S : Nest.Body)
      PerIter += S.WorkCycles;
    C.Work = Nest.ExecCount * C.Iters * std::max(PerIter, 1.0);
  }
}

const CostModel::NestCost *CostModel::costs(const LoopNest &Nest) const {
  if (Nest.Id < Costs.size() && &P.Nests[Nest.Id] == &Nest)
    return &Costs[Nest.Id];
  return nullptr;
}

double CostModel::nestWork(unsigned NestId) const {
  assert(NestId < Costs.size() && "nest id out of range");
  return Costs[NestId].Work;
}

double
CostModel::distributedIterations(const LoopNest &Nest,
                                 const VectorSpace &CompKernel) const {
  const NestCost *C = costs(Nest);
  double Dist = 1.0;
  unsigned ElementaryLocal = 0;
  for (unsigned K = 0; K != Nest.depth(); ++K) {
    if (CompKernel.contains(Vector::unit(Nest.depth(), K)))
      ++ElementaryLocal;
    else
      Dist *= std::max(C ? C->Trips[K]
                         : Nest.estimatedTrip(K, P.SymbolBindings),
                       1.0);
  }
  // Kernels are usually spanned by elementary vectors; if not (skewed
  // partitions), fall back to a uniform split of the volume.
  if (ElementaryLocal < CompKernel.dim()) {
    double Total = std::max(
        C ? C->Iters : Nest.estimatedIterations(P.SymbolBindings), 1.0);
    double Frac = static_cast<double>(Nest.depth() - CompKernel.dim()) /
                  static_cast<double>(Nest.depth());
    return std::pow(Total, Frac);
  }
  return Dist;
}

double CostModel::parallelismBenefit(unsigned NestId,
                                     const PartitionResult &R) const {
  auto KIt = R.CompKernel.find(NestId);
  if (KIt == R.CompKernel.end())
    return 0.0;
  const VectorSpace &Kernel = KIt->second;
  const LoopNest &Nest = P.nest(NestId);
  unsigned Degree = Nest.depth() - Kernel.dim();
  if (Degree == 0)
    return 0.0;

  double Work = nestWork(NestId);
  double ItersPerExec = std::max(Costs[NestId].Iters, 1.0);
  double ExecCount = std::max(Nest.ExecCount, 1e-9);
  double PerIterCycles = Work / (ExecCount * ItersPerExec);
  double DistIters = distributedIterations(Nest, Kernel);
  double Procs = std::min<double>(M.NumProcs, DistIters);
  if (Procs <= 1.0)
    return 0.0;
  double ParTime = Work / Procs;

  // Blocked dimensions pay pipelining costs: the pipeline fills over
  // (Procs - 1) block-steps and every block boundary synchronizes.
  unsigned BlockedDims = 0;
  auto LIt = R.CompLocalized.find(NestId);
  if (LIt != R.CompLocalized.end() && LIt->second.dim() > Kernel.dim())
    BlockedDims = LIt->second.dim() - Kernel.dim();
  if (BlockedDims) {
    double ElemsPerBlock =
        std::pow(static_cast<double>(M.BlockSize), BlockedDims);
    double BlockWork = PerIterCycles * ElemsPerBlock;
    double TotalBlocks = std::max(ItersPerExec / ElemsPerBlock, 1.0);
    ParTime += ExecCount * (Procs - 1.0) * BlockWork; // Pipeline fill.
    ParTime += ExecCount * (TotalBlocks / Procs) * M.SyncCycles;
  }
  ParTime += ExecCount * M.BarrierCycles; // Nest entry/exit barrier.
  return std::max(Work - ParTime, 0.0);
}

double CostModel::totalBenefit(const PartitionResult &R) const {
  double Total = 0.0;
  for (const auto &[Nest, Kernel] : R.CompKernel)
    Total += parallelismBenefit(Nest, R);
  return Total;
}

double CostModel::arrayElements(unsigned ArrayId) const {
  const ArraySymbol &A = P.array(ArrayId);
  double Elems = 1.0;
  for (const SymAffine &Dim : A.DimSizes) {
    Rational V = Dim.evaluate(P.SymbolBindings);
    double D = static_cast<double>(V.num()) / static_cast<double>(V.den());
    Elems *= std::max(D, 1.0);
  }
  return Elems;
}

double CostModel::reorganizationCost(unsigned ArrayId) const {
  // Every element is read remotely and written remotely once; data moves
  // in cache lines.
  double Elems = arrayElements(ArrayId);
  double BytesPerElem = P.array(ArrayId).ElemBytes;
  double Lines = Elems * BytesPerElem / M.CacheLineBytes;
  // One remote line transfer each way; the reorganization itself is spread
  // across the processors (bulk messages on a multicomputer).
  return Lines * 2.0 * M.bulkRemoteLineCost() /
         std::max<double>(M.NumProcs, 1.0);
}
