//===- core/CompileSession.h - Reusable compile pipeline --------*- C++ -*-===//
///
/// \file
/// The library entry point for the whole alpc pipeline: parse -> lint ->
/// decompose -> plan -> emit -> simulate, as one reusable call. Before
/// this header existed the orchestration lived only in tools/alpc.cpp's
/// main(), so a server, a batch driver, or a test had no way to run "what
/// alpc does" in process. Now alpc is flag parsing plus one
/// CompileSession::run plus artifact writes, and the alpd compilation
/// service (src/service/) runs the identical pipeline per request.
///
/// Contract: CompileSession::run(Req, Out, Err) writes to the two stdio
/// streams exactly the bytes the alpc CLI historically wrote to stdout and
/// stderr for the same selections, and returns the CLI exit code (0
/// success; 1 parse / verify / lint-gate failure; 3 a stage failed
/// outright; 4 success but degraded). Callers that want the output as
/// strings hand it open_memstream(3) streams; alpc hands it stdout/stderr
/// directly. Structured results (the decomposition, lint diagnostics,
/// emitted SPMD text, comm-plan report, stats snapshot, degradation
/// ledger) ride alongside in the CompileResult.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_COMPILESESSION_H
#define ALP_CORE_COMPILESESSION_H

#include "analysis/Lint.h"
#include "codegen/CodegenOptions.h"
#include "core/Driver.h"
#include "support/Diagnostics.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace alp {

/// How --lint / --verify diagnostics are rendered.
enum class DiagFormat { Text, Json, Sarif };

/// Rendered observability artifacts (the --trace / --stats payloads),
/// handed to CompileRequest::WriteArtifacts and kept in the result.
struct CompileArtifacts {
  bool HasTrace = false;
  std::string TraceJson; ///< Chrome trace-event JSON.
  bool HasStats = false;
  std::string StatsJson; ///< Versioned stats JSON (schema v1).
};

/// Everything one compile needs: the source text, the driver and machine
/// configuration, and the lint / emit selections the alpc flags map onto.
struct CompileRequest {
  /// Diagnostics label ("<stdin>", a path, a request id); never opened.
  std::string FileName = "<memory>";
  /// The DSL source text (already read; I/O stays with the caller).
  std::string Source;

  /// Front-end fast path: a program already parsed from Source plus that
  /// parse's frontend diagnostics. When set, the session skips its own
  /// compileDsl call, replays these diagnostics, and pipelines a copy of
  /// the program — byte-identical to re-parsing. Set by callers that
  /// parsed for canonical keying anyway (BatchSession's pre-key pass, the
  /// alpd cache-miss path); derived from Source, so neither field is part
  /// of the canonical request fingerprint.
  std::shared_ptr<const Program> PreParsed;
  std::shared_ptr<const DiagnosticEngine> PreParsedDiags;

  /// Decomposition pipeline knobs (budget, jobs, policy, observability is
  /// overwritten by the session when WantTrace/WantStats is set).
  DriverOptions Driver;

  /// Machine selection: preset name plus the two per-run parameters.
  std::string MachineName = "dash"; ///< "dash" or "touchstone".
  unsigned Procs = 32;
  int64_t Block = 4;

  /// Output/stage selections (each mirrors one alpc flag).
  bool DoSpmd = false;   ///< --spmd
  bool DoIr = false;     ///< --print-ir
  bool DoDeps = false;   ///< --deps
  bool DoSim = false;    ///< --simulate
  bool DoComm = false;   ///< --comm
  bool DoFuse = false;   ///< --fuse
  bool DoVerify = false; ///< --verify
  bool DoLint = false;   ///< --lint
  bool WError = false;   ///< --Werror
  std::string EmitMode;  ///< --emit: "", "spmd", or "comm-plan".
  MiscompileMode Miscompile = MiscompileMode::None;
  DiagFormat Format = DiagFormat::Text;

  /// Lint pass-family selection (--lint-passes). LintPassesExplicit marks
  /// that the user restricted the families, which also opts the
  /// decomposition validator into --lint.
  bool LintPassesExplicit = false;
  bool SelRace = true, SelModel = true, SelDecomp = true, SelSchedule = true;

  /// Observability: when either is set the session owns a Tracer and a
  /// MetricsRegistry for the run and renders the artifacts.
  bool WantTrace = false;
  bool WantStats = false;
  /// Called at the pipeline's historical --trace/--stats write point (once
  /// per run, on every exit path past the front end). Returns false on I/O
  /// failure, which maps to exit code 1 on otherwise-successful runs. May
  /// be null: artifacts are then only kept in the result.
  std::function<bool(const CompileArtifacts &)> WriteArtifacts;
};

/// What one compile produced, beyond the stream bytes.
struct CompileResult {
  /// The alpc exit code: 0 ok, 1 parse/lint/verify/artifact-write failure,
  /// 3 stage failure, 4 sound but degraded.
  int ExitCode = 0;
  /// The decomposition, when one was computed (also set in lint mode when
  /// the schedule passes decomposed a private copy). Its Degradations
  /// member is the degradation ledger.
  std::optional<ProgramDecomposition> Decomposition;
  /// The printDecomposition report (non-lint runs).
  std::string DecompositionReport;
  /// Lint / verify diagnostics, when those passes ran.
  LintResult Lints;
  /// Emitted SPMD text (--spmd, or --emit=spmd's message-passing form —
  /// when both ran, the message-passing form).
  std::string SpmdText;
  /// --emit=comm-plan schedule report.
  std::string CommPlanReport;
  /// --comm communication-analysis report.
  std::string CommReport;
  /// Rendered --trace/--stats payloads (when requested).
  CompileArtifacts Artifacts;

  bool degraded() const {
    return Decomposition && Decomposition->degraded();
  }
};

/// The reusable pipeline. Stateless: every run owns its tracer, metrics
/// registry, thread pool, and caches, so concurrent runs (the alpd
/// service) do not share mutable state beyond the process-wide failpoint
/// registry.
class CompileSession {
public:
  /// Runs the full pipeline for \p Req, writing the CLI byte stream to
  /// \p Out / \p Err (never null; alpc passes stdout/stderr, the service
  /// passes open_memstream streams).
  static CompileResult run(const CompileRequest &Req, std::FILE *Out,
                           std::FILE *Err);
};

} // namespace alp

#endif // ALP_CORE_COMPILESESSION_H
