//===- core/InterferenceGraph.h - Bipartite nest/array graph ----*- C++ -*-===//
///
/// \file
/// The bipartite interference graph G = (Vc, Vd, E) of Sec. 4.2: loop
/// nests form one vertex set, arrays the other, with an edge whenever a
/// nest references an array. Each edge carries every access function of
/// that array in that nest. The partition and orientation algorithms
/// operate on one connected component at a time.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_INTERFERENCEGRAPH_H
#define ALP_CORE_INTERFERENCEGRAPH_H

#include "ir/Program.h"
#include "linalg/VectorSpace.h"

#include <map>
#include <set>
#include <vector>

namespace alp {

/// One (array, nest) edge with all of the access maps.
struct InterferenceEdge {
  unsigned ArrayId = 0;
  unsigned NestId = 0;
  std::vector<AffineAccessMap> Accesses;
  /// True if any of the accesses writes (read-only edges can be excluded
  /// when computing replication, Sec. 7.2).
  bool HasWrite = false;
};

/// The interference graph over a chosen subset of a program's nests.
class InterferenceGraph {
public:
  /// Builds the graph over \p NestIds of \p P. When \p IncludeReadOnly is
  /// false, arrays that are never written in those nests are left out
  /// (used by the replication pre-pass); arrays in \p ForceInclude are
  /// kept regardless (e.g. arrays written elsewhere in the program, which
  /// must not be treated as replicable read-only data).
  InterferenceGraph(const Program &P, const std::vector<unsigned> &NestIds,
                    bool IncludeReadOnly = true,
                    const std::set<unsigned> *ForceInclude = nullptr);

  const Program &program() const { return *Prog; }
  const std::vector<unsigned> &nests() const { return NestIds; }
  const std::vector<unsigned> &arrays() const { return ArrayIds; }
  const std::vector<InterferenceEdge> &edges() const { return Edges; }

  /// Edges incident to a nest / an array.
  std::vector<const InterferenceEdge *> edgesOfNest(unsigned NestId) const;
  std::vector<const InterferenceEdge *> edgesOfArray(unsigned ArrayId) const;

  /// Groups the nests and arrays into connected components; returns one
  /// (nests, arrays) pair per component.
  struct Component {
    std::vector<unsigned> Nests;
    std::vector<unsigned> Arrays;
  };
  std::vector<Component> connectedComponents() const;

  /// The accessed data space S_x = sum_j range(F_xj) of Sec. 4.3.
  VectorSpace accessedSpace(unsigned ArrayId) const;

private:
  const Program *Prog;
  std::vector<unsigned> NestIds;
  std::vector<unsigned> ArrayIds;
  std::vector<InterferenceEdge> Edges;
};

} // namespace alp

#endif // ALP_CORE_INTERFERENCEGRAPH_H
