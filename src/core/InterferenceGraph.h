//===- core/InterferenceGraph.h - Bipartite nest/array graph ----*- C++ -*-===//
///
/// \file
/// The bipartite interference graph G = (Vc, Vd, E) of Sec. 4.2: loop
/// nests form one vertex set, arrays the other, with an edge whenever a
/// nest references an array. Each edge carries every access function of
/// that array in that nest. The partition and orientation algorithms
/// operate on one connected component at a time.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_INTERFERENCEGRAPH_H
#define ALP_CORE_INTERFERENCEGRAPH_H

#include "ir/Program.h"
#include "linalg/VectorSpace.h"

#include <atomic>
#include <map>
#include <set>
#include <vector>

namespace alp {

/// One (array, nest) edge with all of the access maps.
struct InterferenceEdge {
  unsigned ArrayId = 0;
  unsigned NestId = 0;
  std::vector<AffineAccessMap> Accesses;
  /// True if any of the accesses writes (read-only edges can be excluded
  /// when computing replication, Sec. 7.2).
  bool HasWrite = false;
};

/// The interference graph over a chosen subset of a program's nests.
class InterferenceGraph {
public:
  /// Builds the graph over \p NestIds of \p P. When \p IncludeReadOnly is
  /// false, arrays that are never written in those nests are left out
  /// (used by the replication pre-pass); arrays in \p ForceInclude are
  /// kept regardless (e.g. arrays written elsewhere in the program, which
  /// must not be treated as replicable read-only data).
  InterferenceGraph(const Program &P, const std::vector<unsigned> &NestIds,
                    bool IncludeReadOnly = true,
                    const std::set<unsigned> *ForceInclude = nullptr);

  ~InterferenceGraph();
  /// Copies and moves carry the graph but not the derived index (the
  /// cached adjacency/component/space data points into this object's
  /// edge storage); the copy rebuilds its own on first use.
  InterferenceGraph(const InterferenceGraph &RHS);
  InterferenceGraph &operator=(const InterferenceGraph &RHS);

  const Program &program() const { return *Prog; }
  const std::vector<unsigned> &nests() const { return NestIds; }
  const std::vector<unsigned> &arrays() const { return ArrayIds; }
  const std::vector<InterferenceEdge> &edges() const { return Edges; }

  /// Edges incident to a nest / an array. The graph is immutable after
  /// construction, so the adjacency lists are computed once and cached;
  /// the solvers walk them on every worklist step.
  const std::vector<const InterferenceEdge *> &edgesOfNest(unsigned NestId) const;
  const std::vector<const InterferenceEdge *> &edgesOfArray(unsigned ArrayId) const;

  /// Groups the nests and arrays into connected components; returns one
  /// (nests, arrays) pair per component. Cached after the first call.
  struct Component {
    std::vector<unsigned> Nests;
    std::vector<unsigned> Arrays;
  };
  const std::vector<Component> &connectedComponents() const;

  /// The accessed data space S_x = sum_j range(F_xj) of Sec. 4.3.
  /// Cached after the first call per array.
  const VectorSpace &accessedSpace(unsigned ArrayId) const;

private:
  /// Everything derivable from the (immutable) edge list, built lazily on
  /// first use and published with a compare-exchange so concurrent
  /// readers of one graph stay race-free. Nest and array ids are small
  /// and dense, so the lookups are flat vectors indexed by id (slots for
  /// ids outside the graph stay empty).
  struct Index {
    std::vector<std::vector<const InterferenceEdge *>> ByNest, ByArray;
    std::vector<Component> Components;
    std::vector<VectorSpace> Accessed; ///< Indexed by array id.
  };
  const Index &index() const;

  const Program *Prog;
  std::vector<unsigned> NestIds;
  std::vector<unsigned> ArrayIds;
  std::vector<InterferenceEdge> Edges;
  mutable std::atomic<const Index *> Idx{nullptr};
};

} // namespace alp

#endif // ALP_CORE_INTERFERENCEGRAPH_H
