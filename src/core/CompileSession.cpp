//===- core/CompileSession.cpp - Reusable compile pipeline -------------------===//
//
// The pipeline body moved verbatim out of tools/alpc.cpp's main(); the
// byte-for-byte output contract in CompileSession.h is load-bearing (the
// golden and CompareJobs ctests pin it), so edits here must preserve every
// format string and the exact order of prints, stage checks, and early
// returns.
//
//===----------------------------------------------------------------------===//

#include "core/CompileSession.h"

#include "alp.h"

#include "analysis/Dependence.h"
#include "core/Fusion.h"
#include "core/Verify.h"
#include "ir/Printer.h"
#include "support/FailPoint.h"
#include "support/Trace.h"

#include <sstream>

using namespace alp;

namespace {

std::string renderLint(const LintResult &R, DiagFormat Format,
                       const std::string &FileName) {
  switch (Format) {
  case DiagFormat::Text:
    return renderLintText(R);
  case DiagFormat::Json:
    return renderLintJson(R, FileName);
  case DiagFormat::Sarif:
    return renderLintSarif(R, FileName);
  }
  return "";
}

} // namespace

CompileResult CompileSession::run(const CompileRequest &Req, std::FILE *Out,
                                  std::FILE *Err) {
  CompileResult Res;
  const char *FileName = Req.FileName.c_str();
  DriverOptions Opts = Req.Driver;

  // Observability sinks. Both stay empty-cost when the flags are absent:
  // Opts.Observe carries null pointers, so every span and counter in the
  // pipeline reduces to a pointer test. When --trace/--stats are off, a
  // caller-provided Req.Driver.Observe is left in place — the batch
  // session aggregates every request's counters into one shared registry
  // that way.
  Tracer Trace;
  MetricsRegistry Metrics;
  const bool Observing = Req.WantTrace || Req.WantStats;
  TraceContext Observe = Req.Driver.Observe;
  if (Observing) {
    Observe.Trace = &Trace;
    Observe.Metrics = &Metrics;
  }
  Opts.Observe = Observe;

  // Renders --trace / --stats output and hands it to the caller's artifact
  // writer; called on every exit path that runs after the front end.
  // Returns false when the writer reports an I/O failure.
  auto WriteObservability = [&]() -> bool {
    if (!Observing)
      return true;
    // With an unbounded trigger count every task faults, so this total is
    // jobs-deterministic like the other counters (docs/ROBUSTNESS.md).
    Metrics.add("failpoint.triggered",
                FailPointRegistry::instance().triggeredCount());
    if (Req.WantTrace) {
      std::ostringstream TraceOut;
      Trace.writeChromeTrace(TraceOut);
      Res.Artifacts.TraceJson = TraceOut.str();
      Res.Artifacts.HasTrace = true;
    }
    if (Req.WantStats) {
      Res.Artifacts.StatsJson = renderStatsJson(&Metrics, &Trace);
      Res.Artifacts.HasStats = true;
    }
    if (Req.WriteArtifacts)
      return Req.WriteArtifacts(Res.Artifacts);
    return true;
  };

  // Stages past the decomposition driver have no degraded form: an
  // injected fault or internal error in one of them ends the run with a
  // clean error line and exit 3, never an uncaught exception.
  auto RunStage = [&](const char *StageName,
                      const std::function<void()> &Fn) -> bool {
    try {
      Fn();
      return true;
    } catch (...) {
      Status S = statusFromCurrentException();
      std::fprintf(Err, "error: %s failed: %s\n", StageName,
                   S.str().c_str());
      return false;
    }
  };

  auto Done = [&](int Code) -> CompileResult & {
    Res.ExitCode = Code;
    return Res;
  };

  DiagnosticEngine OwnDiags;
  const DiagnosticEngine *Diags =
      Req.PreParsedDiags ? Req.PreParsedDiags.get() : &OwnDiags;
  std::optional<Program> Prog;
  if (Req.PreParsed) {
    // The caller parsed this source already (canonical keying); replay
    // its diagnostics and pipeline a copy — the driver canonicalizes the
    // program in place, so the caller's copy must stay pristine.
    Prog = *Req.PreParsed;
  } else {
    TraceSpan FrontendSpan(Observe.Trace, "frontend.compile");
    Prog = compileDsl(Req.Source, OwnDiags);
  }
  for (const Diagnostic &D : Diags->diagnostics())
    std::fprintf(Err, "%s:%s\n", FileName, D.str().c_str());
  if (!Prog)
    return Done(1);
  Program P = std::move(*Prog);

  // Lint-only mode: run the race + model passes over the compiled
  // program, then — when the program decomposes — the schedule verifier
  // over its planned communication. A program that does not decompose
  // still lints (the decomposition-dependent passes are skipped).
  if (Req.DoLint) {
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckRaces = Req.SelRace;
    LO.CheckModel = Req.SelModel;
    // The decomposition validator stays opt-in under --lint (--verify is
    // its home); an explicit --lint-passes=decomp enables it here.
    LO.CheckDecomposition = Req.LintPassesExplicit && Req.SelDecomp;
    LO.CheckSchedule = Req.SelSchedule;
    LO.BlockSize = Req.Block;
    LO.Budget = &Budget;
    LO.Miscompile = Req.Miscompile;
    LO.Observe = Observe;
    // The decomposition driver canonicalizes the program in place
    // (Wolf-Lam local phase), which can legalize exactly the defects the
    // race/model passes exist to report — so those passes lint the
    // pristine program, and the decomposition-dependent passes run on a
    // private copy.
    MachineParams LintM;
    LintM.NumProcs = Req.Procs;
    LintM.BlockSize = Req.Block;
    Program DecompP = P;
    ProgramDecomposition LintPD;
    bool HavePD = false;
    if (LO.CheckSchedule || LO.CheckDecomposition)
      if (Expected<ProgramDecomposition> R =
              decomposeOrError(DecompP, LintM, Opts);
          R.hasValue()) {
        LintPD = R.takeValue();
        HavePD = true;
      }
    LintResult R;
    if (!RunStage("lint", [&] {
          TraceSpan LintSpan(Observe.Trace, "lint.run");
          LintOptions FrontLO = LO;
          FrontLO.CheckDecomposition = false;
          FrontLO.CheckSchedule = false;
          R = runLintPasses(P, nullptr, FrontLO);
          if (HavePD) {
            LintOptions PdLO = LO;
            PdLO.CheckRaces = false;
            PdLO.CheckModel = false;
            LintResult R2 = runLintPasses(DecompP, &LintPD, PdLO);
            R.Diags.insert(R.Diags.end(), R2.Diags.begin(), R2.Diags.end());
            R.Unchecked.insert(R.Unchecked.end(), R2.Unchecked.begin(),
                               R2.Unchecked.end());
            normalizeLintDiagnostics(R.Diags);
          }
        })) {
      WriteObservability();
      return Done(3);
    }
    if (HavePD)
      Res.Decomposition = LintPD;
    Res.Lints = R;
    std::fprintf(Out, "%s", renderLint(R, Req.Format, Req.FileName).c_str());
    if (!WriteObservability())
      return Done(1);
    return Done(R.hasErrors() || (Req.WError && R.hasWarnings()) ? 1 : 0);
  }

  MachineParams M;
  M.NumProcs = Req.Procs;
  M.BlockSize = Req.Block;
  if (Req.MachineName == "touchstone") {
    // Touchstone-like multicomputer: one processor per node, remote data
    // moves in messages with a software overhead per message.
    M.ProcsPerCluster = 1;
    M.MessagePassing = true;
  }

  // The shared codegen configuration: every consumer (emitter, comm
  // analysis, planner, simulator schedules) takes its block size from the
  // machine description, so schedule and emission cannot diverge.
  CodegenOptions CG = CodegenOptions::forMachine(M);
  CG.Observe = Observe;
  CG.Miscompile = Req.Miscompile;

  auto RunDecompose = [&](ProgramDecomposition &DOut) -> bool {
    Expected<ProgramDecomposition> R = decomposeOrError(P, M, Opts);
    if (!R.hasValue()) {
      std::fprintf(Err, "error: decomposition failed: %s\n",
                   R.status().str().c_str());
      return false;
    }
    DOut = R.takeValue();
    return true;
  };

  ProgramDecomposition PD;
  if (!RunDecompose(PD)) {
    WriteObservability();
    return Done(3);
  }
  if (Req.DoFuse) {
    unsigned N = 0;
    if (!RunStage("fusion", [&] { N = fuseCompatibleNests(P, &PD); })) {
      WriteObservability();
      return Done(3);
    }
    std::fprintf(Out, "fused %u nest pair(s)\n", N);
    // Decompose again on the fused program (decompositions per nest id
    // may have been merged).
    if (!RunDecompose(PD)) {
      WriteObservability();
      return Done(3);
    }
  }
  Res.Decomposition = PD;

  if (Req.DoIr)
    std::fprintf(Out, "=== IR ===\n%s\n", printProgram(P).c_str());
  if (Req.DoDeps && !RunStage("dependence printing", [&] {
        DependenceAnalysis DA(P);
        std::fprintf(Out, "=== dependences ===\n");
        for (unsigned Id : P.nestsInOrder()) {
          std::fprintf(Out, "nest %u:\n", Id);
          for (const Dependence &D : DA.analyze(P.nest(Id)))
            std::fprintf(Out, "  %s\n", D.str().c_str());
        }
        std::fprintf(Out, "\n");
      })) {
    WriteObservability();
    return Done(3);
  }

  Res.DecompositionReport = printDecomposition(P, PD);
  std::fprintf(Out, "%s", Res.DecompositionReport.c_str());

  if (Req.DoSpmd && !RunStage("SPMD emission", [&] {
        Res.SpmdText = emitSpmd(P, PD, CG);
        std::fprintf(Out, "\n=== SPMD ===\n%s", Res.SpmdText.c_str());
      })) {
    WriteObservability();
    return Done(3);
  }

  // Schedule verification gates emission: --emit renders nothing when the
  // planned schedule fails the static verifier (deadlock, coverage gap,
  // unmatched messages, buffer overlap, barrier divergence).
  if (!Req.EmitMode.empty() && Req.SelSchedule) {
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckRaces = false;
    LO.CheckModel = false;
    LO.CheckDecomposition = false;
    LO.CheckSchedule = true;
    LO.BlockSize = CG.BlockSize;
    LO.Budget = &Budget;
    LO.Miscompile = Req.Miscompile;
    LO.Observe = Observe;
    LintResult R;
    if (!RunStage("schedule verification", [&] {
          TraceSpan VerifySpan(Observe.Trace, "lint.schedule");
          R = runLintPasses(P, &PD, LO);
        })) {
      WriteObservability();
      return Done(3);
    }
    Res.Lints = R;
    if (R.hasErrors() || (Req.WError && R.hasWarnings())) {
      for (const Diagnostic &D : R.Diags)
        std::fprintf(Err, "schedule: %s\n", D.strWithNotes().c_str());
      WriteObservability();
      return Done(1);
    }
  }

  if (!Req.EmitMode.empty() && !RunStage("codegen", [&] {
        if (Req.EmitMode == "spmd") {
          CodegenOptions MsgCG = CG;
          MsgCG.EmitMessages = true;
          Res.SpmdText = emitSpmd(P, PD, MsgCG);
          std::fprintf(Out, "\n=== SPMD (message passing) ===\n%s",
                       Res.SpmdText.c_str());
        } else if (Req.EmitMode == "comm-plan") {
          Res.CommPlanReport = planCommunication(P, PD, CG).report(P);
          std::fprintf(Out, "\n%s", Res.CommPlanReport.c_str());
        }
      })) {
    WriteObservability();
    return Done(3);
  }

  if (Req.DoComm && !RunStage("communication analysis", [&] {
        CommSummary CS = analyzeCommunication(P, PD, CG);
        Res.CommReport = CS.report(P);
        std::fprintf(Out, "\n%s", Res.CommReport.c_str());
      })) {
    WriteObservability();
    return Done(3);
  }

  if (Req.DoVerify) {
    // The decomposition validator: Theorem 4.1 matrix invariants
    // (core/Verify.h) plus the SPMD communication-coverage check.
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckRaces = false;
    LO.CheckModel = false;
    LO.CheckDecomposition = Req.SelDecomp;
    LO.CheckSchedule = Req.SelSchedule;
    LO.BlockSize = CG.BlockSize;
    // Both sides read MachineParams.BlockSize, so the block-size
    // divergence lint stays silent here by construction.
    LO.ScheduleBlockSize = M.BlockSize;
    LO.Budget = &Budget;
    LO.Miscompile = Req.Miscompile;
    LO.Observe = Observe;
    LintResult R;
    if (!RunStage("verification", [&] {
          TraceSpan VerifySpan(Observe.Trace, "lint.verify");
          R = runLintPasses(P, &PD, LO);
        })) {
      WriteObservability();
      return Done(3);
    }
    Res.Lints = R;
    bool Bad = R.hasErrors() || (Req.WError && R.hasWarnings());
    if (Req.Format != DiagFormat::Text) {
      std::fprintf(Out, "%s",
                   renderLint(R, Req.Format, Req.FileName).c_str());
      if (Bad) {
        WriteObservability();
        return Done(1);
      }
    } else if (!Bad) {
      std::fprintf(Out, "\nverify: all decomposition invariants hold\n");
    } else {
      for (const Diagnostic &D : R.Diags)
        std::fprintf(Err, "verify: %s\n", D.strWithNotes().c_str());
      WriteObservability();
      return Done(1);
    }
  }

  if (Req.DoSim && !RunStage("simulation", [&] {
        NumaSimulator Sim(P, M);
        Sim.setObserve(Observe);
        if (M.MessagePassing) {
          // Message-passing machine: cost the planned bulk schedule, the
          // same one --emit=spmd renders, instead of fine-grained
          // per-line messages.
          CodegenOptions PlanCG = CG;
          if (!Req.EmitMode.empty())
            PlanCG.Observe = {}; // comm.* counters already published once.
          Sim.setCommSchedule(planCommunication(P, PD, PlanCG).schedule());
        }
        applyDecomposition(Sim, P, PD);
        double Seq = Sim.sequentialCycles();
        std::fprintf(Out, "\n=== simulation (machine: %s, %u procs) ===\n",
                     Req.MachineName.c_str(), Req.Procs);
        std::fprintf(Out, "sequential: %.3g cycles\n", Seq);
        for (unsigned Pr = 1; Pr <= Req.Procs; Pr *= 2) {
          SimResult R = Sim.run(Pr);
          std::fprintf(Out,
                       "%3u procs: %12.3g cycles  speedup %6.2f  "
                       "(reorg %.2g, sync %.2g, remote lines %.3g",
                       Pr, R.Cycles, Seq / R.Cycles, R.ReorgCycles,
                       R.SyncCycles, R.RemoteLineFetches);
          if (M.MessagePassing)
            std::fprintf(Out, ", msgs %.3g", R.MessagesSent);
          std::fprintf(Out, ")\n");
        }
      })) {
    WriteObservability();
    return Done(3);
  }
  if (!WriteObservability())
    return Done(1);
  if (PD.degraded()) {
    Res.Decomposition = PD;
    std::fprintf(Err, "%s", PD.degradationReport().c_str());
    std::fprintf(Err,
                 "note: decomposition is sound but degraded (%zu stage "
                 "fallback(s))\n",
                 PD.Degradations.size());
    return Done(4);
  }
  return Done(0);
}
