//===- core/Fusion.cpp - Loop fusion post-pass --------------------------===//

#include "core/Fusion.h"

#include "analysis/Dependence.h"

#include <functional>

using namespace alp;

namespace {

bool boundsEqual(const std::vector<BoundTerm> &A,
                 const std::vector<BoundTerm> &B) {
  if (A.size() != B.size())
    return false;
  for (unsigned I = 0; I != A.size(); ++I)
    if (A[I].OuterCoeffs != B[I].OuterCoeffs || A[I].Const != B[I].Const)
      return false;
  return true;
}

bool headersMatch(const LoopNest &N1, const LoopNest &N2) {
  if (N1.depth() != N2.depth())
    return false;
  for (unsigned L = 0; L != N1.depth(); ++L) {
    if (N1.Loops[L].Kind != N2.Loops[L].Kind)
      return false;
    if (!boundsEqual(N1.Loops[L].Lower, N2.Loops[L].Lower) ||
        !boundsEqual(N1.Loops[L].Upper, N2.Loops[L].Upper))
      return false;
  }
  return true;
}

/// Builds the fused candidate (bodies concatenated under N1's loops).
LoopNest fusedCandidate(const LoopNest &N1, const LoopNest &N2) {
  LoopNest F = N1;
  F.Body.insert(F.Body.end(), N2.Body.begin(), N2.Body.end());
  return F;
}

} // namespace

bool alp::canFuseNests(const Program &P, unsigned First, unsigned Second) {
  const LoopNest &N1 = P.nest(First);
  const LoopNest &N2 = P.nest(Second);
  if (N1.Body.empty() || N2.Body.empty())
    return false;
  if (!headersMatch(N1, N2))
    return false;
  // Legality: in the fused nest, a carried dependence whose source
  // statement came from N2 and whose destination came from N1 means an
  // access pair whose execution order fusion would reverse.
  LoopNest F = fusedCandidate(N1, N2);
  unsigned Split = N1.Body.size();
  DependenceAnalysis DA(P);
  for (const Dependence &D : DA.analyze(F)) {
    if (D.isLoopIndependent(F.depth()))
      continue;
    if (D.SrcStmt >= Split && D.DstStmt < Split)
      return false;
  }
  return true;
}

unsigned alp::fuseCompatibleNests(Program &P,
                                  const ProgramDecomposition *PD) {
  unsigned Fused = 0;

  auto DecompsMatch = [&](unsigned A, unsigned B) {
    if (!PD)
      return true;
    auto IA = PD->Comp.find(A), IB = PD->Comp.find(B);
    if (IA == PD->Comp.end() || IB == PD->Comp.end())
      return false;
    return IA->second.Kernel == IB->second.Kernel &&
           IA->second.C == IB->second.C &&
           IA->second.Gamma == IB->second.Gamma;
  };

  std::function<void(std::vector<ProgramNode> &)> Walk =
      [&](std::vector<ProgramNode> &Nodes) {
        for (ProgramNode &N : Nodes) {
          Walk(N.Children);
          Walk(N.ElseChildren);
        }
        // Repeatedly fuse adjacent nest pairs in this sequence.
        bool Changed = true;
        while (Changed) {
          Changed = false;
          for (unsigned I = 0; I + 1 < Nodes.size(); ++I) {
            ProgramNode &A = Nodes[I];
            ProgramNode &B = Nodes[I + 1];
            if (A.NodeKind != ProgramNode::Kind::Nest ||
                B.NodeKind != ProgramNode::Kind::Nest)
              continue;
            if (!DecompsMatch(A.NestId, B.NestId) ||
                !canFuseNests(P, A.NestId, B.NestId))
              continue;
            LoopNest &N1 = P.nest(A.NestId);
            LoopNest &N2 = P.nest(B.NestId);
            N1.Body.insert(N1.Body.end(), N2.Body.begin(), N2.Body.end());
            N2.Body.clear();
            Nodes.erase(Nodes.begin() + I + 1);
            ++Fused;
            Changed = true;
            break;
          }
        }
      };
  Walk(P.TopLevel);
  if (Fused)
    P.recomputeProfiles();
  return Fused;
}
