//===- core/CostModel.h - Parallelism benefit & communication cost -*- C++ -*-===//
///
/// \file
/// The estimates behind the dynamic decomposition's graph value function
/// (Sec. 6.2): each loop node contributes a parallelism benefit (sequential
/// time minus parallel time, with a pipelining penalty for blocked
/// decompositions), and each communication edge costs the data it must
/// reorganize, scaled by the profile frequency. Machine constants default
/// to the Stanford DASH numbers the paper reports (1-cycle cache, 29-cycle
/// local, 100-130-cycle remote).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_COSTMODEL_H
#define ALP_CORE_COSTMODEL_H

#include "core/PartitionSolver.h"
#include "ir/Program.h"

#include <vector>

namespace alp {

/// Machine description used by both the cost model and the simulator.
struct MachineParams {
  unsigned NumProcs = 32;       ///< Processors (DASH: 8 clusters x 4).
  unsigned ProcsPerCluster = 4; ///< Processors sharing one local memory.
  double CacheCycles = 1.0;     ///< Hit in the processor cache.
  double LocalCycles = 29.0;    ///< Local cluster memory.
  double RemoteCycles = 120.0;  ///< Remote cluster memory (100-130).
  double SyncCycles = 400.0;    ///< One point-to-point pipeline sync.
  double BarrierCycles = 2000.0; ///< Global barrier between nests.
  int64_t BlockSize = 4;        ///< Pipeline block size (paper uses 4).
  unsigned CacheLineBytes = 16; ///< DASH line size.
  /// Aggregate interconnect throughput for remote line transfers. Remote-
  /// heavy phases bottleneck here, which is what makes misaligned
  /// decompositions saturate on the real machine.
  double RemoteLinesPerCycle = 0.08;

  /// Multicomputer (message-passing) mode, as on the Intel Touchstone the
  /// paper's introduction contrasts with DASH: a remote access is a
  /// message. Fine-grained remote reads pay the full per-message software
  /// overhead; bulk transfers (reorganizations, pipelined block
  /// boundaries) amortize it over BulkLinesPerMessage lines.
  bool MessagePassing = false;
  double MessageOverheadCycles = 3000.0;
  double BulkLinesPerMessage = 64.0;

  /// The effective cost of fetching one remote line with fine-grained
  /// (demand) access.
  double remoteLineCost() const {
    return MessagePassing ? RemoteCycles + MessageOverheadCycles
                          : RemoteCycles;
  }
  /// The effective per-line cost within a bulk transfer.
  double bulkRemoteLineCost() const {
    return MessagePassing
               ? RemoteCycles + MessageOverheadCycles / BulkLinesPerMessage
               : RemoteCycles;
  }
};

/// Cost/benefit estimator for one program under one machine.
class CostModel {
public:
  CostModel(const Program &P, const MachineParams &M);

  const MachineParams &machine() const { return M; }

  /// Total compute cycles of one full execution of nest \p NestId
  /// (profile-weighted: includes ExecCount).
  double nestWork(unsigned NestId) const;

  /// Number of iterations distributed across processors under the given
  /// computation kernel (product of trip counts of distributed loops).
  double distributedIterations(const LoopNest &Nest,
                               const VectorSpace &CompKernel) const;

  /// Parallelism benefit of a nest under a partition: sequential time
  /// minus estimated parallel time. Blocked (doacross) parallelism pays a
  /// pipeline-fill and per-block synchronization penalty.
  double parallelismBenefit(unsigned NestId, const PartitionResult &R) const;

  /// Sum of parallelismBenefit over the nests of \p R.
  double totalBenefit(const PartitionResult &R) const;

  /// Worst-case reorganization cost of array \p ArrayId moving once: every
  /// element crosses the machine.
  double reorganizationCost(unsigned ArrayId) const;

  /// Elements of \p ArrayId (with symbol bindings applied).
  double arrayElements(unsigned ArrayId) const;

private:
  /// Trip/iteration/work estimates are pure functions of the (immutable)
  /// program and its symbol bindings, and the decomposer's greedy join
  /// queries them tens of thousands of times per run; precompute them per
  /// nest at construction (eager, so the model stays thread-safe to
  /// share by const reference).
  struct NestCost {
    std::vector<double> Trips; ///< estimatedTrip per loop level.
    double Iters = 1.0;        ///< estimatedIterations.
    double Work = 0.0;         ///< nestWork.
  };
  /// The cached costs of \p Nest, or nullptr when the nest is not the
  /// program's (tests evaluate standalone nests).
  const NestCost *costs(const LoopNest &Nest) const;

  const Program &P;
  MachineParams M;
  std::vector<NestCost> Costs; ///< Indexed by nest id.
};

} // namespace alp

#endif // ALP_CORE_COSTMODEL_H
