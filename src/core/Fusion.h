//===- core/Fusion.h - Loop fusion post-pass ---------------*- C++ -*-===//
///
/// \file
/// The fusion pass the paper runs after decomposition (Sec. 2.1: "Our
/// compiler runs a loop fusion pass after decomposition to regroup
/// compatible loop nests"). Two adjacent leaf nests fuse when
///
///   * they sit next to each other in the same structure context,
///   * their loop headers match (same depth, same bounds, same kinds),
///   * their computation decompositions agree (same C kernel), when a
///     decomposition is provided, and
///   * fusion is legal: no dependence of the fused body flows from a
///     statement of the second nest to a statement of the first with a
///     positive carried distance (that would reverse the original
///     inter-nest execution order).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_FUSION_H
#define ALP_CORE_FUSION_H

#include "core/Decomposition.h"
#include "ir/Program.h"

namespace alp {

/// Fuses compatible adjacent nests of \p P in place. When \p PD is given,
/// only nests with matching computation partitions fuse. Returns the
/// number of fusions performed. Fused-away nests stay in Program::Nests
/// (with empty bodies) but disappear from the structure tree.
unsigned fuseCompatibleNests(Program &P,
                             const ProgramDecomposition *PD = nullptr);

/// Whether two specific nests may fuse (header match + legality).
bool canFuseNests(const Program &P, unsigned First, unsigned Second);

} // namespace alp

#endif // ALP_CORE_FUSION_H
