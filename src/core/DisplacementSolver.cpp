//===- core/DisplacementSolver.cpp - Displacement calculation ----------------===//

#include "core/DisplacementSolver.h"

#include <algorithm>

using namespace alp;

DisplacementResult
alp::solveDisplacements(const InterferenceGraph &IG,
                        const OrientationResult &Orient) {
  const Program &P = IG.program();
  DisplacementResult R;
  unsigned N = Orient.VirtualDims;

  // Process edges in decreasing execution count so the most frequent
  // accesses get exact (zero-offset) placement.
  std::vector<const InterferenceEdge *> Order;
  for (const InterferenceEdge &E : IG.edges())
    Order.push_back(&E);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](const InterferenceEdge *A, const InterferenceEdge *B) {
                     return P.nest(A->NestId).ExecCount >
                            P.nest(B->NestId).ExecCount;
                   });

  // Greedy propagation to a fixpoint: an edge can fire once one endpoint
  // is assigned. Seed each component's most frequent edge by zeroing the
  // displacement of its array.
  bool Progress = true;
  auto CheckOrAssign = [&](const InterferenceEdge *E) {
    bool HasDelta = R.Delta.count(E->ArrayId);
    bool HasGamma = R.Gamma.count(E->NestId);
    if (!HasDelta && !HasGamma)
      return false;
    const Matrix &D = Orient.D.at(E->ArrayId);
    if (!HasGamma) {
      // gamma_j = D_x k_xj + delta_x using the first access.
      R.Gamma[E->NestId] =
          D * E->Accesses.front().constant() + R.Delta[E->ArrayId];
      HasGamma = true;
    } else if (!HasDelta) {
      // delta_x = gamma_j - D_x k_xj.
      R.Delta[E->ArrayId] =
          R.Gamma[E->NestId] - D * E->Accesses.front().constant();
      HasDelta = true;
    }
    // Verify every access; mismatches are displacement-level
    // (nearest-neighbor) communication.
    for (const AffineAccessMap &M : E->Accesses) {
      SymVector Offset =
          (D * M.constant() + R.Delta[E->ArrayId]) - R.Gamma[E->NestId];
      if (!Offset.isZero())
        R.Conflicts.push_back({E->ArrayId, E->NestId, Offset});
    }
    return true;
  };

  std::vector<bool> Done(Order.size(), false);
  while (Progress) {
    Progress = false;
    for (unsigned I = 0; I != Order.size(); ++I) {
      if (Done[I])
        continue;
      const InterferenceEdge *E = Order[I];
      if (!R.Delta.count(E->ArrayId) && !R.Gamma.count(E->NestId)) {
        // Seed: zero displacement for this edge's array (it is the most
        // frequent unassigned edge of a fresh component).
        R.Delta[E->ArrayId] = SymVector(N);
      }
      if (CheckOrAssign(E)) {
        Done[I] = true;
        Progress = true;
      }
    }
  }
  return R;
}
