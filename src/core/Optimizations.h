//===- core/Optimizations.h - Sec. 7 optimizations --------------*- C++ -*-===//
///
/// \file
/// The two post-passes of Sec. 7:
///
///  * Idle-processor reduction (7.1): when some nest uses fewer processor
///    dimensions than the virtual space has, project the n-dimensional
///    virtual processor space onto n' = min(max_x(dim S_x - dim ker D_x),
///    min_j(l_j - dim ker C_j)) dimensions, choosing directions that are
///    busy in every loop nest.
///
///  * Read-only replication (7.2): arrays never written in a component do
///    not constrain the partition; their data partitions follow from
///    Eqn. 5 afterwards, they receive a reduced-space decomposition
///    matrix, and the replication matrices R_xj of Eqn. 7 relate it to
///    each nest's computation decomposition. The replication degree is
///    n - n_r.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_OPTIMIZATIONS_H
#define ALP_CORE_OPTIMIZATIONS_H

#include "core/Decomposition.h"
#include "core/InterferenceGraph.h"
#include "core/OrientationSolver.h"

namespace alp {

/// Computes n' of Sec. 7.1 for the nests/arrays of \p IG under \p Parts.
unsigned reducedVirtualDims(const InterferenceGraph &IG,
                            const PartitionResult &Parts);

/// Projects \p Orient (in place) onto \p NewDims processor dimensions,
/// preferring rows that are nonzero in every nest's C. Returns the list of
/// kept row indices (size NewDims).
std::vector<unsigned> projectProcessorSpace(OrientationResult &Orient,
                                            unsigned NewDims);

/// Replication info for one read-only array in one component.
struct ReplicationInfo {
  unsigned ArrayId = 0;
  /// Reduced-space decomposition matrix (n_r x m).
  Matrix ReducedD;
  /// Replication degree n - n_r: processor dimensions carrying copies.
  unsigned Degree = 0;
  /// Replication matrices R_xj per nest (Eqn. 7): D_x F_xj = R_xj C_j.
  std::map<unsigned, Matrix> R;
};

/// Analyzes replication for every read-only array of \p IG: data kernels
/// are derived from the computation partitions via Eqn. 5 (so the
/// read-only data never constrains parallelism), and the reduced
/// decomposition plus R matrices are built per Eqn. 7.
std::vector<ReplicationInfo>
analyzeReplication(const InterferenceGraph &IG, const PartitionResult &Parts,
                   const OrientationResult &Orient);

} // namespace alp

#endif // ALP_CORE_OPTIMIZATIONS_H
