//===- core/Driver.h - End-to-end decomposition pipeline --------*- C++ -*-===//
///
/// \file
/// The top-level entry point a user of the library calls: given an affine
/// Program (from the DSL front end or the builder), run the full pipeline
/// of the paper —
///
///   local phase (Wolf-Lam canonicalization)
///     -> dynamic decomposition (greedy component joining, Sec. 6)
///        with blocked partitions (Sec. 5) as the per-component solver
///     -> per-component orientations (Sec. 4.4, with cross-component
///        orientation matching) and displacements (Sec. 4.5)
///     -> idle-processor projection and read-only replication (Sec. 7)
///
/// — and return the complete ProgramDecomposition. Option knobs disable
/// individual stages; the Figure 7 benchmark uses them to reproduce the
/// paper's four strategies.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_DRIVER_H
#define ALP_CORE_DRIVER_H

#include "core/CostModel.h"
#include "core/Decomposition.h"
#include "core/DynamicDecomposer.h"
#include "core/Optimizations.h"
#include "core/OrientationSolver.h"

namespace alp {

/// Pipeline configuration. Sub-stage option structs are embedded members:
/// the driver copies each template per stage invocation and fills the
/// run-managed slots (Budget, Pool/SharedCache, seeds, preferences,
/// Observe) itself, so callers configure exactly one struct.
struct DriverOptions {
  /// Run the Wolf-Lam local phase first (canonicalize loop order/kinds).
  bool RunLocalPhase = true;
  /// Allow blocked (tiled / doacross) partitions (Sec. 5).
  bool EnableBlocking = true;
  /// Component joining policy (Sec. 6.3).
  JoinPolicy Policy = JoinPolicy::Greedy;
  /// Use the Sec. 6.4 bottom-up multi-level driver instead of the single
  /// flattened pass (they coincide on flat structure trees).
  bool MultiLevel = false;
  /// Read-only replication (Sec. 7.2).
  bool EnableReplication = true;
  /// Idle-processor projection (Sec. 7.1).
  bool EnableIdleProjection = true;
  /// Resource limits for the exact algorithms. Copied per run (counters
  /// start fresh); stages that exhaust it fall back to conservative
  /// answers recorded in ProgramDecomposition::Degradations.
  ResourceBudget Budget = ResourceBudget::defaults();
  /// Wall-clock deadline for the whole pipeline in milliseconds; 0 means
  /// none. Armed on the run's budget copy at entry.
  uint64_t DeadlineMs = 0;
  /// Worker threads for the analysis phases (dependence pairs, per-nest
  /// canonicalization, initial partition solves); 0 means one per
  /// hardware thread. The pipeline always runs the same task
  /// decomposition — each task on its own budget copy — so the output is
  /// byte-identical for every value of Jobs.
  unsigned Jobs = 1;
  /// Supervised-driver policy (support/Supervisor.h), threaded into every
  /// parallel fan-out: total attempts per task (first run + retries on a
  /// shrunken budget) and a per-attempt wall-clock deadline in
  /// milliseconds (0 = none; like DeadlineMs, an armed task deadline
  /// trades jobs-determinism for boundedness). A task whose every attempt
  /// fails degrades to its stage's conservative fallback, recorded in
  /// ProgramDecomposition::Degradations.
  unsigned TaskAttempts = 2;
  uint64_t TaskDeadlineMs = 0;
  /// Template for every partition solve of the run (pre-seeded kernels;
  /// Budget and Observe are overwritten by the driver).
  PartitionOptions Partition;
  /// Template for orientation solving (initial PreferredD; the driver
  /// accumulates cross-component preferences on top, and overwrites
  /// Budget and Observe).
  OrientationOptions Orientation;
  /// Observability sinks (span tracer + metrics registry, either or both
  /// null) threaded into every stage. Counters published here are
  /// byte-identical for every value of Jobs; gauges and span timings are
  /// not (docs/OBSERVABILITY.md).
  TraceContext Observe;
  /// Caller-provided worker pool. Null (the default) makes the driver own
  /// a fresh pool of `Jobs` workers per run; non-null reuses the given
  /// pool — Jobs is then ignored and the batch session's persistent
  /// workers keep their warm thread-local arena blocks across requests.
  /// Nested sections on a busy pool degrade to serial in the caller
  /// (ThreadPool.h), so a batch fanning requests over the same pool runs
  /// each request's analysis serially on one warm worker. The output is
  /// byte-identical either way (the Jobs determinism contract).
  ThreadPool *Pool = nullptr;
};

/// Runs the whole pipeline fail-soft: never aborts on user-reachable
/// input. Arithmetic overflow or budget exhaustion inside a stage degrades
/// that stage to a conservative sound answer (recorded in the result's
/// Degradations); only a failure no stage can absorb returns an error
/// Status. \p P may be rewritten by the local phase.
Expected<ProgramDecomposition>
decomposeOrError(Program &P, const MachineParams &Machine,
                 const DriverOptions &Opts = {});

/// Renders a human-readable report of \p PD for \p P.
std::string printDecomposition(const Program &P,
                               const ProgramDecomposition &PD);

} // namespace alp

#endif // ALP_CORE_DRIVER_H
