//===- core/Decomposition.h - Decomposition value types ---------*- C++ -*-===//
///
/// \file
/// The affine decomposition model of Sec. 2.3 / Sec. 3:
///
///   data decomposition         d(a) = D a + delta   (Def. 2.1)
///   computation decomposition  c(i) = C i + gamma   (Def. 2.2)
///
/// split into the paper's three components: the *partition* (the nullspace
/// of D / C: what shares a processor), the *orientation* (the matrix
/// itself: which processor axis each distributed dimension maps to), and
/// the *displacement* (the constant offset, affine in symbolic constants).
/// Blocked (tiled) decompositions additionally carry the localized spaces
/// Lc / Ld of Sec. 5.1: dimensions that live on one processor *per block*,
/// with the blocks distributed.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_DECOMPOSITION_H
#define ALP_CORE_DECOMPOSITION_H

#include "linalg/SymAffine.h"
#include "linalg/VectorSpace.h"
#include "support/Status.h"

#include <map>
#include <string>
#include <vector>

namespace alp {

/// A data decomposition d(a) = D a + delta for one array (at one nest, in
/// the dynamic setting).
struct DataDecomposition {
  Matrix D;        ///< n x m onto the virtual processor space.
  SymVector Delta; ///< n displacement entries, affine in symbols.
  VectorSpace Kernel;    ///< ker D: the data partition.
  VectorSpace Localized; ///< Ld >= ker D: per-processor-per-block dims.

  /// Dimensions that are blocked rather than fully local: Ld - ker D.
  bool isBlocked() const { return Localized.dim() > Kernel.dim(); }
  std::string str() const;
};

/// A computation decomposition c(i) = C i + gamma for one loop nest.
struct CompDecomposition {
  Matrix C;        ///< n x l onto the virtual processor space.
  SymVector Gamma; ///< n displacement entries.
  VectorSpace Kernel;    ///< ker C: the computation partition.
  VectorSpace Localized; ///< Lc >= ker C.

  /// Degrees of exploited parallelism: distributed iteration dimensions.
  unsigned parallelismDegree() const {
    return Localized.ambientDim() - Kernel.dim();
  }
  bool isBlocked() const { return Localized.dim() > Kernel.dim(); }
  std::string str() const;
};

/// One recorded pipeline fallback: a stage that ran out of budget or
/// overflowed and substituted a conservative answer instead of failing
/// (docs/ROBUSTNESS.md). The decomposition is still sound, just less
/// parallel / less precise than the exact algorithm would produce.
struct Degradation {
  enum class Stage {
    LocalPhase,   ///< Nest left in source order, all loops sequential.
    Dependence,   ///< Access pair assumed dependent at every level.
    Partition,    ///< Trivial partition: everything on one processor.
    Orientation,  ///< Zero matrices: component mapped to processor 0.
    Displacement, ///< Zero displacements (extra nearest-neighbor comm).
    Replication,  ///< Read-only replication skipped.
    Projection,   ///< Idle-processor projection skipped.
  };

  Stage At = Stage::Partition;
  std::string Detail;

  static const char *stageName(Stage S);
};

/// A point of unavoidable data reorganization between two nests.
struct ReorganizationPoint {
  unsigned ArrayId = 0;
  unsigned FromNest = 0;
  unsigned ToNest = 0;
  double Frequency = 0.0;
  double CostCycles = 0.0; ///< Estimated cost per occurrence.
};

/// The complete result of the decomposition algorithm for a program.
struct ProgramDecomposition {
  /// Virtual processor space dimensionality n (after idle-processor
  /// projection if it ran).
  unsigned VirtualDims = 0;

  /// Computation decomposition per nest id.
  std::map<unsigned, CompDecomposition> Comp;

  /// Data decomposition per (array id, nest id): in the dynamic setting an
  /// array may be laid out differently in different nests.
  std::map<std::pair<unsigned, unsigned>, DataDecomposition> Data;

  /// Component id per nest (nests in one component share static
  /// decompositions).
  std::map<unsigned, unsigned> ComponentOf;

  /// Where reorganization communication remains.
  std::vector<ReorganizationPoint> Reorganizations;

  /// Arrays replicated along processor dimensions (Sec. 7.2): array id ->
  /// number of replicated processor dimensions.
  std::map<unsigned, unsigned> ReplicatedDims;

  /// Every fallback the pipeline took while producing this result, in
  /// stage order. Empty for an exact run.
  std::vector<Degradation> Degradations;

  /// True if the whole program got a single static decomposition.
  bool isStatic() const { return Reorganizations.empty(); }

  /// True if any stage fell back to a conservative answer.
  bool degraded() const { return !Degradations.empty(); }

  /// One "warning: [stage] detail" line per degradation.
  std::string degradationReport() const;

  /// The data decomposition of \p ArrayId at \p NestId; fatal if absent.
  const DataDecomposition &dataAt(unsigned ArrayId, unsigned NestId) const;
  const CompDecomposition &compOf(unsigned NestId) const;
};

} // namespace alp

#endif // ALP_CORE_DECOMPOSITION_H
