//===- core/OrientationSolver.cpp - Orientation propagation ------------------===//

#include "core/OrientationSolver.h"

#include "support/Diagnostics.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <deque>

using namespace alp;

namespace {

/// Injection site at the head of every per-component orientation solve;
/// a fault degrades the component to zero matrices, like any overflow.
FailPoint FpOrientSolve("core.orientation.solve");

/// Pads (or trims) \p M to exactly \p Rows rows, appending zero rows.
Matrix padRows(const Matrix &M, unsigned Rows) {
  if (M.rows() == Rows)
    return M;
  assert(M.rows() < Rows && "cannot trim orientation rows");
  return M.vstack(Matrix::zero(Rows - M.rows(), M.cols()));
}

/// Scales all matrices of one component by a common factor so that every
/// entry is an integer; relative orientation is preserved.
void integerScaleComponent(OrientationResult &R,
                           const std::vector<unsigned> &Nests,
                           const std::vector<unsigned> &Arrays) {
  int64_t Lcm = 1;
  auto Visit = [&](const Matrix &M) {
    for (unsigned I = 0; I != M.rows(); ++I)
      for (unsigned J = 0; J != M.cols(); ++J)
        Lcm = lcm64(Lcm, M.at(I, J).den());
  };
  for (unsigned A : Arrays)
    Visit(R.D[A]);
  for (unsigned N : Nests)
    Visit(R.C[N]);
  if (Lcm == 1)
    return;
  Rational S(Lcm);
  for (unsigned A : Arrays)
    R.D[A] = R.D[A].scaled(S);
  for (unsigned N : Nests)
    R.C[N] = R.C[N].scaled(S);
}

} // namespace

OrientationResult alp::solveOrientations(const InterferenceGraph &IG,
                                         const PartitionResult &Parts,
                                         const OrientationOptions &Opts,
                                         std::optional<unsigned> ForceDims) {
  TraceSpan Span(Opts.Observe.Trace, "orient.solve");
  OrientationResult R;
  R.VirtualDims = ForceDims ? *ForceDims : Parts.virtualDims(IG);
  unsigned N = R.VirtualDims;

  for (const InterferenceGraph::Component &Comp : IG.connectedComponents()) {
    Opts.Observe.count("orient.components");
    try {
    FpOrientSolve.evaluateOrThrow(Opts.Budget);
    if (Comp.Arrays.empty()) {
      // Nests touching no arrays: give them a kernel-respecting C anyway.
      for (unsigned J : Comp.Nests) {
        Matrix C = Parts.CompKernel.at(J).matrixWithThisKernel();
        R.C[J] = padRows(C, std::max<unsigned>(N, C.rows()));
      }
      continue;
    }
    // Root: prefer an array with an honored preference, else the array
    // exposing the most distributed dimensions (so D_root has full rank).
    unsigned Root = Comp.Arrays.front();
    int BestScore = -1;
    for (unsigned A : Comp.Arrays) {
      const VectorSpace &S = IG.accessedSpace(A);
      int Score = static_cast<int>(
          S.dim() - Parts.DataKernel.at(A).intersect(S).dim());
      auto Pref = Opts.PreferredD.find(A);
      if (Pref != Opts.PreferredD.end() &&
          VectorSpace::kernelOf(Pref->second) == Parts.DataKernel.at(A))
        Score += 1000; // Preferences dominate when legal.
      if (Score > BestScore) {
        BestScore = Score;
        Root = A;
      }
    }

    // Root matrix: any D with the prescribed nullspace. Dimensions the
    // component never accesses get auxiliary (zero) treatment by folding
    // the complement of the accessed space into the construction kernel
    // (Sec. 4.4's auxiliary variables); this also keeps the row count at
    // dim(S) - dim(ker within S) <= n.
    Matrix DRoot;
    auto Pref = Opts.PreferredD.find(Root);
    if (Pref != Opts.PreferredD.end() &&
        VectorSpace::kernelOf(Pref->second) == Parts.DataKernel.at(Root) &&
        Pref->second.rows() <= N) {
      DRoot = Pref->second;
    } else {
      VectorSpace ConstructionKernel =
          Parts.DataKernel.at(Root) +
          IG.accessedSpace(Root).orthogonalComplement();
      DRoot = ConstructionKernel.matrixWithThisKernel();
    }
    R.D[Root] = padRows(DRoot, N);

    // Propagate: C_j = D_x F_xj; D_y = C_j F_yj^+.
    std::deque<std::pair<bool, unsigned>> Work; // (isArray, id).
    Work.push_back({true, Root});
    while (!Work.empty()) {
      if (ResourceBudget *B = Opts.Budget) {
        if (Status S = B->chargeSolverIteration(); !S)
          throw AlpException(S);
        if (Status S = B->checkDeadline(); !S)
          throw AlpException(S);
      }
      auto [IsArray, Id] = Work.front();
      Work.pop_front();
      if (IsArray) {
        const Matrix &DX = R.D[Id];
        for (const InterferenceEdge *E : IG.edgesOfArray(Id)) {
          if (R.C.count(E->NestId))
            continue;
          R.C[E->NestId] = DX * E->Accesses.front().linear();
          Work.push_back({false, E->NestId});
        }
        continue;
      }
      const Matrix &CJ = R.C[Id];
      for (const InterferenceEdge *E : IG.edgesOfNest(Id)) {
        if (R.D.count(E->ArrayId))
          continue;
        R.D[E->ArrayId] = CJ * E->Accesses.front().linearPseudoInverse();
        Work.push_back({true, E->ArrayId});
      }
    }
    integerScaleComponent(R, Comp.Nests, Comp.Arrays);
    } catch (...) {
      // Propagation overflowed, ran out of budget, or failed to allocate
      // (statusFromCurrentException structures whichever it was): map the
      // whole component to virtual processor 0 with zero matrices. Legal
      // (zero matrices have full kernels) but sequential; the caller
      // widens the partition kernels to match.
      Status Why = statusFromCurrentException();
      const Program &P = IG.program();
      for (unsigned J : Comp.Nests)
        R.C[J] = Matrix::zero(N, P.nest(J).depth());
      for (unsigned A : Comp.Arrays)
        R.D[A] = Matrix::zero(N, P.array(A).rank());
      R.Degraded = true;
      R.Warnings.push_back("orientation of component rooted at array " +
                           std::to_string(Comp.Arrays.empty()
                                              ? 0u
                                              : Comp.Arrays.front()) +
                           " degraded to zero matrices (" + Why.str() +
                           ")");
    }
  }
  Opts.Observe.count("orient.degraded_components", R.Warnings.size());
  R.VirtualDims = N;
  return R;
}
