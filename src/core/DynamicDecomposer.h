//===- core/DynamicDecomposer.h - Dynamic decompositions (Sec. 6) -*- C++ -*-===//
///
/// \file
/// The greedy heuristic of Sec. 6.3 for the (NP-hard, Theorem 6.1) dynamic
/// decomposition problem. Loop nests start in singleton components; the
/// communication-graph edges (reaching decompositions weighted by profile
/// frequency and worst-case reorganization cost) are examined in decreasing
/// weight order, tentatively joining the two endpoint components and
/// re-running the blocked partition algorithm on the union. The join is
/// kept iff the graph's value — total parallelism benefit minus remaining
/// reorganization cost — improves. Purely sequential nests stay in
/// components of their own.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_DYNAMICDECOMPOSER_H
#define ALP_CORE_DYNAMICDECOMPOSER_H

#include "analysis/Reaching.h"
#include "core/CostModel.h"
#include "core/PartitionSolver.h"

#include <map>
#include <vector>

namespace alp {

class ThreadPool;

/// One edge of the communication graph (aggregated over arrays).
struct CommEdge {
  unsigned U = 0, V = 0; ///< Nest ids, U < V.
  double Weight = 0.0;   ///< Worst-case reorganization cost x frequency.
  /// Per-array contributions (array id -> cost), for reporting.
  std::map<unsigned, double> PerArray;
};

/// The components and partitions chosen by the dynamic algorithm.
struct DynamicResult {
  /// Component id per nest.
  std::map<unsigned, unsigned> ComponentOf;
  /// Partition result per component id.
  std::map<unsigned, PartitionResult> Partitions;
  /// Edges that still carry reorganization communication (cut edges).
  std::vector<CommEdge> CutEdges;
  /// Final value of the communication graph.
  double Value = 0.0;
  /// Supervised-driver ledger, in deterministic (nest / edge) order: join
  /// attempts abandoned by a fault and initial solves that needed a
  /// retry. A non-empty ledger means the result is valid but possibly
  /// less joined than the fault-free answer.
  std::vector<std::string> Warnings;

  std::vector<unsigned> nestsOfComponent(unsigned Comp) const;
};

/// Join policy knob used by the Figure 7 strategy comparison.
enum class JoinPolicy {
  Greedy,      ///< The paper's algorithm.
  ForceSingle, ///< Join everything (best static decomposition).
  NeverJoin    ///< Leave every nest alone (per-nest local optimum).
};

/// Builds the communication graph over the leaf nests of \p P.
std::vector<CommEdge> buildCommGraph(const Program &P, const CostModel &CM);

/// Knobs of the dynamic decomposition drivers. Replaces the former
/// positional-parameter tail; embedded in DriverOptions so alpc and
/// library users configure one nested struct.
struct DynamicDecomposerOptions {
  /// solvePartitionsWithBlocks vs solvePartitions per component.
  bool UseBlocking = true;
  /// Component joining policy (Sec. 6.3 / the Figure 7 strategies).
  JoinPolicy Policy = JoinPolicy::Greedy;
  /// Leave arrays never written anywhere out of every partition solve
  /// (they will be replicated by the Sec. 7.2 pass instead of
  /// constraining parallelism or joins).
  bool ExcludeReadOnly = false;
  /// Optional budget for every partition solve of the run.
  ResourceBudget *Budget = nullptr;
  /// With a pool, the initial per-nest partition solves run concurrently
  /// (each on its own budget copy); the greedy join loop itself is
  /// inherently sequential. The result is identical for every job count.
  ThreadPool *Pool = nullptr;
  /// Observability sink: "dynamic.*" spans/counters here, "partition.*"
  /// from the solves underneath.
  TraceContext Observe;
  /// Supervision of the pooled initial solves (support/Supervisor.h):
  /// total attempts per solve task and an optional per-attempt wall-clock
  /// deadline (0 = none). A solve whose every attempt fails with an
  /// escaped exception degrades to the trivial partition of its nest.
  unsigned TaskAttempts = 2;
  uint64_t TaskDeadlineMs = 0;
};

/// Runs the dynamic decomposition over all leaf nests of \p P.
DynamicResult
runDynamicDecomposition(const Program &P, const CostModel &CM,
                        const DynamicDecomposerOptions &Opts = {});

/// The faithful Sec. 6.4 multi-level variant: every structure context
/// (sequential-loop body, branch arm) runs the Single_Level greedy
/// bottom-up; the partitions found at each level seed the next, and an
/// array whose decomposition differs across a level's components is
/// split (stops seeding). The outermost level over all nests produces the
/// result. For programs whose structure tree is flat the two variants
/// coincide.
DynamicResult
runMultiLevelDynamicDecomposition(const Program &P, const CostModel &CM,
                                  const DynamicDecomposerOptions &Opts = {});

} // namespace alp

#endif // ALP_CORE_DYNAMICDECOMPOSER_H
