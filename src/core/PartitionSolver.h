//===- core/PartitionSolver.h - Partition algorithms (Sec. 4/5) -*- C++ -*-===//
///
/// \file
/// The heart of the paper: the iterative partition algorithm of Sec. 4.3
/// (Figure 2) and its blocked extension of Sec. 5.2 (Figure 4).
///
/// Partitions are subspaces: ker C per nest (iterations on one processor)
/// and ker D per array (elements on one processor). The solver
///
///  1. initializes computation partitions from the single-loop constraint
///     (sequential loops contribute their elementary basis vector; in the
///     blocked variant, tileable sequential loops are exempt),
///  2. initializes data partitions from the multiple-array constraint
///     (Eqn. 4): around every cycle of the interference graph the
///     composition of access functions must agree, which forces directions
///     into ker D,
///  3. runs the Update_Loops / Update_Arrays fixpoint (Eqns. 5 and 6)
///     until stable. Partitions only ever grow, so termination follows
///     from dimension monotonicity (Lemma 4.2).
///
/// Partition_with_Blocks first looks for a communication-free solution
/// with parallelism; failing that it records the found kernels as the
/// localized spaces Lc / Ld and re-solves with tileable loops released,
/// yielding doacross (pipelined) parallelism (Sec. 5).
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_PARTITIONSOLVER_H
#define ALP_CORE_PARTITIONSOLVER_H

#include "core/InterferenceGraph.h"
#include "linalg/VectorSpace.h"
#include "support/Budget.h"
#include "support/Trace.h"

#include <map>
#include <string>

namespace alp {

/// Partitions (and localized spaces) for one interference graph.
struct PartitionResult {
  std::map<unsigned, VectorSpace> CompKernel; // Nest -> ker C.
  std::map<unsigned, VectorSpace> DataKernel; // Array -> ker D.
  std::map<unsigned, VectorSpace> CompLocalized; // Nest -> Lc.
  std::map<unsigned, VectorSpace> DataLocalized; // Array -> Ld.
  /// True when the blocked pass ran and kernels differ from localized
  /// spaces (doacross parallelism via tiling).
  bool Blocked = false;
  /// True when the solve ran out of budget (or overflowed) and fell back
  /// to the trivial partition: every kernel is the full space, i.e. all
  /// iterations and data on one processor. Communication-free and always
  /// legal, just with zero parallelism.
  bool Degraded = false;
  /// Human-readable reason when Degraded.
  std::string DegradeReason;

  /// Degrees of parallelism of nest \p NestId under this partition.
  unsigned parallelism(unsigned NestId) const;
  /// Sum of parallelism over all nests (the "has any parallelism" test).
  unsigned totalParallelism() const;

  /// Number of virtual processor dimensions n (Sec. 4.3):
  /// max_x (dim S_x - dim ker D_x).
  unsigned virtualDims(const InterferenceGraph &IG) const;
};

/// Options controlling the solve.
struct PartitionOptions {
  /// Pre-seeded partitions (from an enclosing level or a previous join);
  /// unioned into the initial constraint sets.
  std::map<unsigned, VectorSpace> SeedComp;
  std::map<unsigned, VectorSpace> SeedData;
  /// Optional resource budget; the solve charges one solver iteration per
  /// worklist step. On exhaustion the result degrades to the trivial
  /// partition (PartitionResult::Degraded) instead of aborting.
  ResourceBudget *Budget = nullptr;
  /// Observability sink: one "partition.solve" span per solve and the
  /// "partition.*" counters (solves, fixpoint iterations, degradations,
  /// blocked retries).
  TraceContext Observe;
};

/// The always-legal zero-parallelism answer: full kernels place every
/// iteration and every array element on one processor, so no communication
/// constraint can be violated. The solvers fall back to it when a solve
/// blows its budget; the supervised driver substitutes it for a solve task
/// whose every attempt failed. Degraded is set, with \p Why as the reason.
PartitionResult trivialPartition(const InterferenceGraph &IG,
                                 const Status &Why);

/// Runs the Sec. 4 algorithm: static partitions, forall parallelism only.
PartitionResult solvePartitions(const InterferenceGraph &IG,
                                const PartitionOptions &Opts = {});

/// Runs the Sec. 5 algorithm: like solvePartitions, but if the result has
/// no parallelism at all, retries with tileable loops released and records
/// localized spaces. Nests must carry PermutableBands annotations (local
/// phase).
PartitionResult solvePartitionsWithBlocks(const InterferenceGraph &IG,
                                          const PartitionOptions &Opts = {});

} // namespace alp

#endif // ALP_CORE_PARTITIONSOLVER_H
