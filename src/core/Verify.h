//===- core/Verify.h - Decomposition invariant checking ---------*- C++ -*-===//
///
/// \file
/// Machine-checkable invariants of a ProgramDecomposition:
///
///  * Theorem 4.1 at the matrix level: within a component, for every
///    access F of array x in nest j, D_x F == C_j (replicated arrays are
///    exempt; their relation is Eqn. 7).
///  * Kernel consistency: ker(D) contains the recorded data partition and
///    ker(C) equals the recorded computation partition.
///  * Localized spaces contain their kernels (Lc >= ker C, Ld >= ker D).
///  * Dynamic data decompositions only differ across components, never
///    within one.
///  * Coverage: every nest of the program has a computation decomposition
///    and every referenced array has a data decomposition (an empty
///    result no longer verifies vacuously).
///
/// Violations are reported as structured Diagnostics (pass ids under
/// "decomp.*", source locations where the front end recorded them). The
/// alp-lint decomposition validator (analysis/Lint.h) builds on this and
/// adds the SPMD communication-coverage check.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_VERIFY_H
#define ALP_CORE_VERIFY_H

#include "core/Decomposition.h"
#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace alp {

/// Returns one Diagnostic per violated invariant (empty when the
/// decomposition is consistent). Every diagnostic carries a "decomp.*"
/// pass id; locations point at the offending access / loop header when
/// the program came from the DSL front end.
std::vector<Diagnostic>
verifyDecompositionDiagnostics(const Program &P,
                               const ProgramDecomposition &PD);

} // namespace alp

#endif // ALP_CORE_VERIFY_H
