//===- core/Verify.h - Decomposition invariant checking ---------*- C++ -*-===//
///
/// \file
/// Machine-checkable invariants of a ProgramDecomposition:
///
///  * Theorem 4.1 at the matrix level: within a component, for every
///    access F of array x in nest j, D_x F == C_j (replicated arrays are
///    exempt; their relation is Eqn. 7).
///  * Kernel consistency: ker(D) contains the recorded data partition and
///    ker(C) equals the recorded computation partition.
///  * Localized spaces contain their kernels (Lc >= ker C, Ld >= ker D).
///  * Dynamic data decompositions only differ across components, never
///    within one.
///
/// Used by tests and available to library users as a sanity check on any
/// hand-constructed decomposition.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_VERIFY_H
#define ALP_CORE_VERIFY_H

#include "core/Decomposition.h"
#include "ir/Program.h"

#include <string>
#include <vector>

namespace alp {

/// Returns a list of violated invariants (empty when the decomposition is
/// consistent).
std::vector<std::string>
verifyDecomposition(const Program &P, const ProgramDecomposition &PD);

} // namespace alp

#endif // ALP_CORE_VERIFY_H
