//===- core/Optimizations.cpp - Sec. 7 optimizations -------------------------===//

#include "core/Optimizations.h"

#include <algorithm>

using namespace alp;

unsigned alp::reducedVirtualDims(const InterferenceGraph &IG,
                                 const PartitionResult &Parts) {
  unsigned MaxData = 0;
  for (unsigned A : IG.arrays()) {
    auto It = Parts.DataKernel.find(A);
    if (It == Parts.DataKernel.end())
      continue;
    const VectorSpace &S = IG.accessedSpace(A);
    MaxData = std::max(MaxData, S.dim() - It->second.intersect(S).dim());
  }
  unsigned MinComp = MaxData;
  for (unsigned J : IG.nests()) {
    auto It = Parts.CompKernel.find(J);
    if (It == Parts.CompKernel.end())
      continue;
    MinComp =
        std::min(MinComp, It->second.ambientDim() - It->second.dim());
  }
  return std::min(MaxData, MinComp);
}

std::vector<unsigned> alp::projectProcessorSpace(OrientationResult &Orient,
                                                 unsigned NewDims) {
  unsigned N = Orient.VirtualDims;
  if (NewDims >= N) {
    std::vector<unsigned> All(N);
    for (unsigned I = 0; I != N; ++I)
      All[I] = I;
    return All;
  }
  // Score each processor dimension by the number of nests whose C has a
  // nonzero row there: "no projections onto a processor dimension that is
  // idle during the execution of any loop nest" (Sec. 7.1).
  std::vector<std::pair<unsigned, unsigned>> Score(N); // (count, dim).
  for (unsigned R = 0; R != N; ++R)
    Score[R] = {0, R};
  for (const auto &[Nest, C] : Orient.C) {
    (void)Nest;
    for (unsigned R = 0; R != std::min(N, C.rows()); ++R)
      if (!C.row(R).isZero())
        ++Score[R].first;
  }
  std::stable_sort(Score.begin(), Score.end(),
                   [](const auto &A, const auto &B) {
                     return A.first > B.first;
                   });
  std::vector<unsigned> Keep;
  for (unsigned I = 0; I != NewDims; ++I)
    Keep.push_back(Score[I].second);
  std::sort(Keep.begin(), Keep.end());

  auto Project = [&](const Matrix &M) {
    Matrix Out(NewDims, M.cols());
    for (unsigned I = 0; I != NewDims; ++I)
      if (Keep[I] < M.rows())
        Out.setRow(I, M.row(Keep[I]));
    return Out;
  };
  for (auto &[Id, D] : Orient.D)
    D = Project(D);
  for (auto &[Id, C] : Orient.C)
    C = Project(C);
  Orient.VirtualDims = NewDims;
  return Keep;
}

std::vector<ReplicationInfo>
alp::analyzeReplication(const InterferenceGraph &IG,
                        const PartitionResult &Parts,
                        const OrientationResult &Orient) {
  const Program &P = IG.program();
  std::vector<ReplicationInfo> Out;
  for (unsigned A : IG.arrays()) {
    // Read-only within this graph?
    bool Written = false;
    for (const InterferenceEdge *E : IG.edgesOfArray(A))
      Written |= E->HasWrite;
    if (Written)
      continue;

    ReplicationInfo Info;
    Info.ArrayId = A;
    // Data partition from Eqn. 5, driven purely by the computation
    // partitions (read-only data must not constrain them).
    VectorSpace Kernel(P.array(A).rank());
    for (const InterferenceEdge *E : IG.edgesOfArray(A)) {
      auto It = Parts.CompKernel.find(E->NestId);
      if (It == Parts.CompKernel.end())
        continue;
      for (const AffineAccessMap &M : E->Accesses)
        Kernel.unionWith(It->second.imageUnder(M.linear()));
    }
    const VectorSpace &S = IG.accessedSpace(A);
    unsigned NR = S.dim() - Kernel.intersect(S).dim();
    Info.ReducedD = Kernel.matrixWithThisKernel();
    // Trim to n_r rows (matrixWithThisKernel may give more when the
    // kernel misses unaccessed dimensions).
    if (Info.ReducedD.rows() > NR) {
      Matrix Trim(NR, Info.ReducedD.cols());
      for (unsigned R = 0; R != NR; ++R)
        Trim.setRow(R, Info.ReducedD.row(R));
      Info.ReducedD = Trim;
    }
    Info.Degree =
        Orient.VirtualDims > NR ? Orient.VirtualDims - NR : 0;
    // Replication matrices: R_xj = D_x F_xj C_j^+ (Eqn. 7).
    for (const InterferenceEdge *E : IG.edgesOfArray(A)) {
      auto CIt = Orient.C.find(E->NestId);
      if (CIt == Orient.C.end())
        continue;
      Info.R[E->NestId] = Info.ReducedD *
                          E->Accesses.front().linear() *
                          CIt->second.rightPseudoInverse();
    }
    Out.push_back(std::move(Info));
  }
  return Out;
}
