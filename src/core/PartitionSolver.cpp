//===- core/PartitionSolver.cpp - Partition algorithms (Sec. 4/5) ------------===//

#include "core/PartitionSolver.h"

#include "support/Diagnostics.h"
#include "support/FailPoint.h"

#include <deque>

using namespace alp;

//===----------------------------------------------------------------------===//
// PartitionResult
//===----------------------------------------------------------------------===//

unsigned PartitionResult::parallelism(unsigned NestId) const {
  auto It = CompKernel.find(NestId);
  assert(It != CompKernel.end() && "nest not in partition result");
  return It->second.ambientDim() - It->second.dim();
}

unsigned PartitionResult::totalParallelism() const {
  unsigned Total = 0;
  for (const auto &[Nest, Kernel] : CompKernel)
    Total += Kernel.ambientDim() - Kernel.dim();
  return Total;
}

unsigned PartitionResult::virtualDims(const InterferenceGraph &IG) const {
  unsigned N = 0;
  for (unsigned A : IG.arrays()) {
    auto It = DataKernel.find(A);
    if (It == DataKernel.end())
      continue;
    const VectorSpace &S = IG.accessedSpace(A);
    unsigned Dims = S.dim() - It->second.intersect(S).dim();
    N = std::max(N, Dims);
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Initial constraints
//===----------------------------------------------------------------------===//

namespace {

/// True if loop \p Level of \p Nest sits in a fully permutable band of
/// size >= 2 and can therefore be tiled for doacross parallelism (Sec. 5).
bool isTileable(const LoopNest &Nest, unsigned Level) {
  unsigned Start = 0;
  for (unsigned Size : Nest.PermutableBands) {
    if (Level < Start + Size)
      return Size >= 2;
    Start += Size;
  }
  return false;
}

/// Single-loop constraint (constraint 1): sequential loops pin their
/// elementary basis vector into the initial computation partition. In the
/// blocked variant, tileable sequential loops are released.
VectorSpace singleLoopConstraint(const LoopNest &Nest, bool Blocked) {
  VectorSpace VS(Nest.depth());
  for (unsigned K = 0; K != Nest.depth(); ++K) {
    if (Nest.Loops[K].isParallel())
      continue;
    if (Blocked && isTileable(Nest, K))
      continue;
    VS.insert(Vector::unit(Nest.depth(), K));
  }
  return VS;
}

/// Multiple-array constraint (constraint 2 / Eqn. 4): walks a spanning
/// tree of the interference multigraph maintaining transfer matrices that
/// express every node's decomposition in terms of the component root's;
/// every additional path between two nodes forces the difference of the
/// transfers into ker D_root.
void multipleArrayConstraint(const InterferenceGraph &IG,
                             std::map<unsigned, VectorSpace> &DataKernel) {
  const Program &P = IG.program();
  for (const InterferenceGraph::Component &C : IG.connectedComponents()) {
    if (C.Arrays.empty())
      continue;
    unsigned Root = C.Arrays.front();
    unsigned RootRank = P.array(Root).rank();

    // Transfer matrices to the root's array space.
    std::map<unsigned, Matrix> ArrayT; // ArrayId -> m_root x m_a.
    std::map<unsigned, Matrix> NestT;  // NestId -> m_root x l_j.
    ArrayT[Root] = Matrix::identity(RootRank);

    VectorSpace Constraint(RootRank);
    std::deque<std::pair<bool, unsigned>> Work; // (isArray, id).
    Work.push_back({true, Root});
    while (!Work.empty()) {
      auto [IsArray, Id] = Work.front();
      Work.pop_front();
      if (IsArray) {
        const Matrix &TX = ArrayT[Id];
        for (const InterferenceEdge *E : IG.edgesOfArray(Id)) {
          for (const AffineAccessMap &M : E->Accesses) {
            Matrix TJ = TX * M.linear(); // C_j = D_root * TJ.
            auto It = NestT.find(E->NestId);
            if (It == NestT.end()) {
              NestT[E->NestId] = TJ;
              Work.push_back({false, E->NestId});
              continue;
            }
            // Accesses sharing a linear part (e.g. A[i] and A[i-1])
            // produce identical transfers; skip the elimination entirely.
            if (It->second == TJ)
              continue;
            Matrix Diff = It->second - TJ;
            for (const Vector &Col : Diff.columnSpaceBasis())
              Constraint.insert(Col);
          }
        }
        continue;
      }
      const Matrix &TJ = NestT[Id];
      for (const InterferenceEdge *E : IG.edgesOfNest(Id)) {
        for (const AffineAccessMap &M : E->Accesses) {
          Matrix TY = TJ * M.linearPseudoInverse();
          auto It = ArrayT.find(E->ArrayId);
          if (It == ArrayT.end()) {
            ArrayT[E->ArrayId] = TY;
            Work.push_back({true, E->ArrayId});
            continue;
          }
          if (It->second == TY)
            continue;
          Matrix Diff = It->second - TY;
          for (const Vector &Col : Diff.columnSpaceBasis())
            Constraint.insert(Col);
        }
      }
    }
    // Restrict to the section of the root that is actually accessed
    // (Sec. 4.2's subsection rule) and record the constraint.
    Constraint = Constraint.intersect(IG.accessedSpace(Root));
    DataKernel[Root].unionWith(Constraint);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// The fixpoint (Figure 2)
//===----------------------------------------------------------------------===//

/// The always-legal zero-parallelism answer: full kernels place every
/// iteration and every array element on one processor, so no communication
/// constraint can be violated. Used when the exact solve blows its budget
/// and by the supervised driver for solve tasks whose every attempt failed.
PartitionResult alp::trivialPartition(const InterferenceGraph &IG,
                                      const Status &Why) {
  const Program &P = IG.program();
  PartitionResult R;
  for (unsigned N : IG.nests())
    R.CompKernel[N] = VectorSpace::full(P.nest(N).depth());
  for (unsigned A : IG.arrays())
    R.DataKernel[A] = VectorSpace::full(P.array(A).rank());
  R.CompLocalized = R.CompKernel;
  R.DataLocalized = R.DataKernel;
  R.Degraded = true;
  R.DegradeReason = Why.str();
  return R;
}

namespace {

PartitionResult solveImplUnchecked(const InterferenceGraph &IG,
                                   const PartitionOptions &Opts,
                                   bool BlockedInit, uint64_t &Iterations) {
  const Program &P = IG.program();
  PartitionResult R;

  // Initialize computation partitions (constraint 1).
  for (unsigned N : IG.nests()) {
    R.CompKernel[N] = singleLoopConstraint(P.nest(N), BlockedInit);
    auto Seed = Opts.SeedComp.find(N);
    if (Seed != Opts.SeedComp.end())
      R.CompKernel[N].unionWith(Seed->second);
  }
  // Initialize data partitions (constraint 2).
  for (unsigned A : IG.arrays()) {
    R.DataKernel[A] = VectorSpace(P.array(A).rank());
    auto Seed = Opts.SeedData.find(A);
    if (Seed != Opts.SeedData.end())
      R.DataKernel[A].unionWith(Seed->second);
  }
  multipleArrayConstraint(IG, R.DataKernel);

  // Worklist fixpoint on constraint 3 (Eqns. 5 and 6). Partitions only
  // grow, so this terminates (Lemma 4.2). The worklists pop the smallest
  // dirty id first (the iteration order the observability goldens pin);
  // ids are small and dense, so a flag vector with a rising scan cursor
  // beats a std::set.
  unsigned MaxNest = 0, MaxArray = 0;
  for (unsigned N : IG.nests())
    MaxNest = std::max(MaxNest, N);
  for (unsigned A : IG.arrays())
    MaxArray = std::max(MaxArray, A);
  // Map nodes are stable, so flat id-indexed pointer tables replace the
  // per-access map lookups inside the loop.
  std::vector<VectorSpace *> CompK(MaxNest + 1, nullptr),
      DataK(MaxArray + 1, nullptr);
  for (unsigned N : IG.nests())
    CompK[N] = &R.CompKernel[N];
  for (unsigned A : IG.arrays())
    DataK[A] = &R.DataKernel[A];
  std::vector<unsigned char> DirtyNests(MaxNest + 1, 0),
      DirtyArrays(MaxArray + 1, 0);
  size_t NumDirtyNests = IG.nests().size(),
         NumDirtyArrays = IG.arrays().size();
  for (unsigned N : IG.nests())
    DirtyNests[N] = 1;
  for (unsigned A : IG.arrays())
    DirtyArrays[A] = 1;
  unsigned NestCursor = 0, ArrayCursor = 0;
  auto MarkNest = [&](unsigned N) {
    if (!DirtyNests[N]) {
      DirtyNests[N] = 1;
      ++NumDirtyNests;
      NestCursor = std::min(NestCursor, N);
    }
  };
  auto MarkArray = [&](unsigned A) {
    if (!DirtyArrays[A]) {
      DirtyArrays[A] = 1;
      ++NumDirtyArrays;
      ArrayCursor = std::min(ArrayCursor, A);
    }
  };
  while (NumDirtyNests || NumDirtyArrays) {
    ++Iterations;
    if (ResourceBudget *B = Opts.Budget) {
      if (Status S = B->chargeSolverIteration(); !S)
        throw AlpException(S);
      if (Status S = B->checkDeadline(); !S)
        throw AlpException(S);
    }
    if (NumDirtyNests) {
      while (!DirtyNests[NestCursor])
        ++NestCursor;
      unsigned J = NestCursor;
      DirtyNests[J] = 0;
      --NumDirtyNests;
      // Update_Arrays: ker D_x += span{ F t : t in ker C_j }  (Eqn. 5).
      for (const InterferenceEdge *E : IG.edgesOfNest(J))
        for (const AffineAccessMap &M : E->Accesses)
          if (DataK[E->ArrayId]->unionWith(
                  CompK[J]->imageUnder(M.linear())))
            MarkArray(E->ArrayId);
      continue;
    }
    while (!DirtyArrays[ArrayCursor])
      ++ArrayCursor;
    unsigned X = ArrayCursor;
    DirtyArrays[X] = 0;
    --NumDirtyArrays;
    // Update_Loops: ker C_j += { t : F t in ker D_x }  (Eqn. 6; this
    // automatically includes ker F). The complement of ker D_x is the
    // same for every access of X, so compute it once: t is in the
    // preimage iff P (F t) = 0 where the rows of P span the complement.
    Matrix PM = DataK[X]->matrixWithThisKernel();
    for (const InterferenceEdge *E : IG.edgesOfArray(X))
      for (const AffineAccessMap &M : E->Accesses) {
        const Matrix &F = M.linear();
        VectorSpace Pre = PM.rows() == 0 ? VectorSpace::full(F.cols())
                                         : VectorSpace::kernelOf(PM * F);
        if (CompK[E->NestId]->unionWith(Pre))
          MarkNest(E->NestId);
      }
  }

  // Unblocked solve: localized spaces coincide with the kernels.
  for (const auto &[N, K] : R.CompKernel)
    R.CompLocalized[N] = K;
  for (const auto &[A, K] : R.DataKernel)
    R.DataLocalized[A] = K;
  return R;
}

/// Fail-soft wrapper: a budget trip or arithmetic overflow anywhere in the
/// solve (including the multiple-array constraint's pseudo-inverses)
/// degrades to the trivial partition instead of propagating.
/// Injection site at the head of every partition solve.
FailPoint FpPartitionSolve("core.partition.solve");

PartitionResult solveImpl(const InterferenceGraph &IG,
                          const PartitionOptions &Opts, bool BlockedInit) {
  TraceSpan Span(Opts.Observe.Trace, "partition.solve");
  Opts.Observe.count("partition.solves");
  // Iteration counts survive a mid-solve budget trip: work done before
  // degradation is still work done (and still deterministic, since every
  // solve runs on either a serial budget or its own copy).
  uint64_t Iterations = 0;
  PartitionResult R;
  try {
    FpPartitionSolve.evaluateOrThrow(Opts.Budget);
    R = solveImplUnchecked(IG, Opts, BlockedInit, Iterations);
  } catch (const AlpException &E) {
    R = trivialPartition(IG, E.status());
    Opts.Observe.count("partition.degraded");
  } catch (const std::bad_alloc &) {
    // Allocation failure mid-solve (real or injected) loses the solve,
    // not the pipeline: the trivial partition is always representable.
    R = trivialPartition(IG, Status::error(StatusCode::BudgetExceeded,
                                           "out of memory"));
    Opts.Observe.count("partition.degraded");
  }
  Opts.Observe.count("partition.fixpoint_iterations", Iterations);
  return R;
}

} // namespace

PartitionResult alp::solvePartitions(const InterferenceGraph &IG,
                                     const PartitionOptions &Opts) {
  return solveImpl(IG, Opts, /*BlockedInit=*/false);
}

PartitionResult
alp::solvePartitionsWithBlocks(const InterferenceGraph &IG,
                               const PartitionOptions &Opts) {
  // First try for a communication-free solution with forall parallelism.
  PartitionResult R = solveImpl(IG, Opts, /*BlockedInit=*/false);
  if (R.totalParallelism() > 0 || R.Degraded)
    return R;

  // No parallelism: the kernels just found are exactly the localized
  // spaces (Figure 4); re-solve with tileable loops released.
  Opts.Observe.count("partition.blocked_retries");
  PartitionResult Localized = R;
  PartitionResult B = solveImpl(IG, Opts, /*BlockedInit=*/true);
  if (B.Degraded)
    return B; // Trivial fallback already carries its own localized spaces.
  B.CompLocalized = Localized.CompKernel;
  B.DataLocalized = Localized.DataKernel;
  for (const auto &[N, K] : B.CompKernel) {
    assert(B.CompLocalized[N].containsSpace(K) &&
           "blocked kernel escaped the localized space");
    if (B.CompLocalized[N] != K)
      B.Blocked = true;
  }
  return B;
}
