//===- core/DynamicDecomposer.cpp - Dynamic decompositions (Sec. 6) ----------===//

#include "core/DynamicDecomposer.h"

#include "support/FailPoint.h"
#include "support/Supervisor.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>

using namespace alp;

namespace {

/// Injection site at the head of every greedy join attempt; a fault
/// abandons the join (conservative: the components stay apart, the edge
/// stays cut) and is recorded in the result's warning ledger.
FailPoint FpDynamicJoin("core.dynamic.join");

} // namespace

std::vector<unsigned> DynamicResult::nestsOfComponent(unsigned Comp) const {
  std::vector<unsigned> Out;
  for (const auto &[Nest, C] : ComponentOf)
    if (C == Comp)
      Out.push_back(Nest);
  return Out;
}

std::vector<CommEdge> alp::buildCommGraph(const Program &P,
                                          const CostModel &CM) {
  std::map<std::pair<unsigned, unsigned>, CommEdge> Edges;
  for (const ArrayFlowEdge &E : computeArrayFlowEdges(P)) {
    if (E.FromNest == E.ToNest)
      continue; // A nest always matches its own decomposition.
    unsigned U = std::min(E.FromNest, E.ToNest);
    unsigned V = std::max(E.FromNest, E.ToNest);
    CommEdge &CE = Edges[{U, V}];
    CE.U = U;
    CE.V = V;
    double Cost = CM.reorganizationCost(E.ArrayId) * E.Frequency;
    CE.Weight += Cost;
    CE.PerArray[E.ArrayId] += Cost;
  }
  std::vector<CommEdge> Out;
  for (auto &[Key, CE] : Edges)
    Out.push_back(std::move(CE));
  return Out;
}

namespace {

/// Arrays written anywhere in the program (kept in every solve even when
/// read-only data is excluded for replication).
std::set<unsigned> globallyWritten(const Program &P) {
  std::set<unsigned> Written;
  for (const LoopNest &Nest : P.Nests)
    for (unsigned A : Nest.referencedArrays())
      if (Nest.writesArray(A))
        Written.insert(A);
  return Written;
}

/// The Single_Level greedy of Figure 6: joins components of \p Nests along
/// \p Edges (already restricted to the level) in decreasing weight order
/// whenever the re-solved partition of the union improves the graph value.
DynamicResult greedyJoin(const Program &P, const CostModel &CM,
                         const std::vector<unsigned> &Nests,
                         std::vector<CommEdge> Edges,
                         const DynamicDecomposerOptions &DOpts,
                         const std::set<unsigned> &GlobalWritten,
                         const PartitionOptions &Seeds) {
  ResourceBudget *Budget = DOpts.Budget;
  ThreadPool *Pool = DOpts.Pool;
  DynamicResult R;

  auto SolveWith = [&](const std::vector<unsigned> &Ids,
                       ResourceBudget *B) {
    InterferenceGraph IG(P, Ids,
                         /*IncludeReadOnly=*/!DOpts.ExcludeReadOnly,
                         &GlobalWritten);
    PartitionOptions Opts = Seeds;
    Opts.Budget = B;
    Opts.Observe = DOpts.Observe;
    return DOpts.UseBlocking ? solvePartitionsWithBlocks(IG, Opts)
                             : solvePartitions(IG, Opts);
  };
  auto Solve = [&](const std::vector<unsigned> &Ids) {
    return SolveWith(Ids, Budget);
  };

  // Union-find over nests, on a flat array indexed by nest id (ids are
  // bounded by the program's nest count). Find is on the inner loop of
  // every join evaluation, so it stays free of map lookups and type-erased
  // calls.
  unsigned MaxNest = 0;
  for (unsigned N : Nests)
    MaxNest = std::max(MaxNest, N);
  std::vector<unsigned> Parent(MaxNest + 1);
  for (unsigned N : Nests)
    Parent[N] = N;
  auto Find = [&Parent](unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto Members = [&](unsigned Root) {
    std::vector<unsigned> Out;
    for (unsigned N : Nests)
      if (Find(N) == Root)
        Out.push_back(N);
    return Out;
  };

  // Initial per-nest partitions and benefits. With a pool the solves fan
  // out supervised, each attempt on a private budget copy; results land
  // in nest order either way, so the join loop below sees identical
  // inputs for any job count.
  std::vector<PartitionResult> Initial(Nests.size());
  {
    TraceSpan InitSpan(DOpts.Observe.Trace, "dynamic.initial_solves");
    if (!Pool) {
      // Serial path: solves share the cumulative budget (historical
      // semantics; the solver degrades itself on exhaustion).
      for (size_t I = 0; I != Nests.size(); ++I)
        Initial[I] = SolveWith({Nests[I]}, Budget);
    } else {
      SupervisorOptions SOpts;
      SOpts.MaxAttempts = DOpts.TaskAttempts;
      SOpts.TaskDeadlineMs = DOpts.TaskDeadlineMs;
      SOpts.Observe = DOpts.Observe;
      Supervisor Sup(Pool, Budget, SOpts);
      std::vector<SupervisedOutcome> Outcomes =
          Sup.run(Nests.size(), [&](size_t I, ResourceBudget *B) {
            Initial[I] = PartitionResult(); // Fresh slate on retry.
            ResourceBudget *TaskBudget =
                Budget || DOpts.TaskDeadlineMs ? B : nullptr;
            Initial[I] = SolveWith({Nests[I]}, TaskBudget);
            return Status::ok();
          });
      for (size_t I = 0; I != Nests.size(); ++I) {
        const SupervisedOutcome &O = Outcomes[I];
        if (O.degraded()) {
          // Every attempt threw past the solver's own fallbacks (e.g. an
          // injected OOM building the interference graph): substitute
          // the trivial partition, which the per-component degradation
          // reporting downstream surfaces like any blown solve.
          InterferenceGraph IG(P, {Nests[I]},
                               /*IncludeReadOnly=*/!DOpts.ExcludeReadOnly,
                               &GlobalWritten);
          Initial[I] = trivialPartition(IG, O.Result);
        } else if (O.retried()) {
          R.Warnings.push_back("initial partition solve of nest " +
                               std::to_string(Nests[I]) + " " +
                               Supervisor::describe(O, I));
        }
      }
    }
  }
  std::map<unsigned, PartitionResult> Parts;
  std::map<unsigned, double> Benefit;
  std::set<unsigned> Sequential; // Nests with zero parallelism even alone.
  for (unsigned I = 0; I != Nests.size(); ++I) {
    unsigned N = Nests[I];
    Parts[N] = std::move(Initial[I]);
    Benefit[N] = CM.totalBenefit(Parts[N]);
    if (Parts[N].totalParallelism() == 0)
      Sequential.insert(N);
  }

  std::stable_sort(Edges.begin(), Edges.end(),
                   [](const CommEdge &A, const CommEdge &B) {
                     return A.Weight > B.Weight;
                   });

  if (DOpts.Policy != JoinPolicy::NeverJoin) {
    TraceSpan JoinSpan(DOpts.Observe.Trace, "dynamic.join_loop");

    // Per-root mutation stamps. A root can absorb a component and keep
    // its id (Parent[RU] = RV leaves RV a root with more members), so
    // "same root ids" is not enough to prove a speculative trial solve
    // still describes the current components — the stamp is bumped on
    // every accept and compared too.
    std::vector<uint64_t> Stamp(MaxNest + 1, 0);

    // One speculative join evaluation, solved against a snapshot of the
    // components taken at chunk-build time.
    struct JoinTrial {
      bool Solved = false;          ///< A trial solve ran for this edge.
      unsigned RU = 0, RV = 0;      ///< Snapshot roots.
      uint64_t StampU = 0, StampV = 0;
      std::vector<unsigned> Joined; ///< Snapshot member union.
      std::optional<ResourceBudget> B; ///< Private budget copy.
      uint64_t Steps0 = 0, Iters0 = 0; ///< Copy's counters at build time.
      PartitionResult JP;
      Status Outcome = Status::ok();
    };

    // The join loop is the driver's scaling bottleneck: each iteration
    // re-solves a joined partition, serially. Chunked speculation
    // trial-solves the next JoinChunk edges in parallel against the
    // current component snapshot, then replays the chunk serially with
    // the exact historical accept logic. A trial invalidated by an
    // earlier accept in its own chunk is discarded and re-solved inline,
    // so the decomposition, warnings, failpoint schedule, and counter
    // totals stay byte-identical to the serial loop — and identical for
    // every job count, which is the determinism contract the driver
    // tests pin. The chunk size is a constant, never derived from the
    // job count, for the same reason. ForceSingle accepts every edge, so
    // every speculative trial after the first would be stale; it keeps
    // the serial path.
    constexpr size_t JoinChunk = 8;
    const bool Speculate =
        Pool != nullptr && DOpts.Policy != JoinPolicy::ForceSingle;

    size_t Begin = 0;
    while (Begin != Edges.size()) {
      const size_t End =
          Speculate ? std::min(Edges.size(), Begin + JoinChunk) : Begin + 1;
      std::vector<JoinTrial> Trials(End - Begin);
      if (Speculate) {
        // Build the trial set serially: Find path-halves Parent and the
        // member scan reads it, so snapshots cannot be taken from worker
        // threads. Edges already joined or touching sequential nests are
        // skipped exactly as the serial loop would skip them.
        std::vector<size_t> Work;
        for (size_t I = Begin; I != End; ++I) {
          const CommEdge &E = Edges[I];
          unsigned RU = Find(E.U), RV = Find(E.V);
          if (RU == RV || Sequential.count(E.U) || Sequential.count(E.V))
            continue;
          JoinTrial &T = Trials[I - Begin];
          T.RU = RU;
          T.RV = RV;
          T.StampU = Stamp[RU];
          T.StampV = Stamp[RV];
          T.Joined = Members(RU);
          std::vector<unsigned> MV = Members(RV);
          T.Joined.insert(T.Joined.end(), MV.begin(), MV.end());
          if (Budget) {
            // Plain copy: consumed counters carry over (the same
            // semantics the supervised initial solves give attempt 0),
            // and the deltas are applied back when the trial is used.
            T.B.emplace(*Budget);
            T.Steps0 =
                T.B->UsedEliminationSteps.load(std::memory_order_relaxed);
            T.Iters0 =
                T.B->UsedSolverIterations.load(std::memory_order_relaxed);
          }
          Work.push_back(I);
        }
        if (!Work.empty()) {
          std::vector<Status> Statuses =
              Pool->parallelForStatus(Work.size(), [&](size_t W) {
                JoinTrial &T = Trials[Work[W] - Begin];
                T.JP = SolveWith(T.Joined, T.B ? &*T.B : nullptr);
              });
          for (size_t W = 0; W != Work.size(); ++W) {
            JoinTrial &T = Trials[Work[W] - Begin];
            T.Solved = true;
            T.Outcome = Statuses[W];
          }
        }
      }

      // Serial replay: the historical join loop, verbatim, consuming a
      // trial's answer whenever its snapshot is still current.
      for (size_t I = Begin; I != End; ++I) {
        const CommEdge &E = Edges[I];
        unsigned RU = Find(E.U), RV = Find(E.V);
        if (RU == RV)
          continue;
        // Purely sequential loops are components by themselves.
        if (Sequential.count(E.U) || Sequential.count(E.V))
          continue;
        // A fault here abandons the join: components stay apart, the edge
        // stays cut — a valid (merely less joined) decomposition, recorded
        // in the ledger so it can never pass as the fault-free answer.
        Status JoinFault = Status::ok();
        try {
          JoinFault = FpDynamicJoin.evaluate(Budget);
        } catch (...) {
          JoinFault = statusFromCurrentException();
        }
        if (!JoinFault) {
          DOpts.Observe.count("dynamic.joins_abandoned");
          R.Warnings.push_back("join of nests " + std::to_string(E.U) +
                               " and " + std::to_string(E.V) +
                               " abandoned (" + JoinFault.str() + ")");
          continue;
        }
        DOpts.Observe.count("dynamic.joins_attempted");
        JoinTrial &T = Trials[I - Begin];
        const bool TrialValid = T.Solved && T.RU == RU && T.RV == RV &&
                                T.StampU == Stamp[RU] &&
                                T.StampV == Stamp[RV];
        PartitionResult JP;
        if (TrialValid) {
          if (Budget && T.B) {
            // Re-apply the trial's consumption to the shared budget,
            // exactly what an inline solve would have charged.
            Budget->UsedEliminationSteps.fetch_add(
                T.B->UsedEliminationSteps.load(std::memory_order_relaxed) -
                    T.Steps0,
                std::memory_order_relaxed);
            Budget->UsedSolverIterations.fetch_add(
                T.B->UsedSolverIterations.load(std::memory_order_relaxed) -
                    T.Iters0,
                std::memory_order_relaxed);
          }
          if (!T.Outcome) {
            // The solver degrades itself on budget/overflow; what escapes
            // is allocation failure building the joined graph. Same
            // answer as a fault: abandon the join, keep both components.
            DOpts.Observe.count("dynamic.joins_abandoned");
            R.Warnings.push_back("join of nests " + std::to_string(E.U) +
                                 " and " + std::to_string(E.V) +
                                 " abandoned (" + T.Outcome.str() + ")");
            continue;
          }
          JP = std::move(T.JP);
        } else {
          // No trial (serial path) or a stale one (an earlier accept in
          // this chunk changed an endpoint's component): solve inline on
          // the shared budget — the historical semantics.
          std::vector<unsigned> Joined = Members(RU);
          std::vector<unsigned> MV = Members(RV);
          Joined.insert(Joined.end(), MV.begin(), MV.end());
          try {
            JP = Solve(Joined);
          } catch (...) {
            Status Why = statusFromCurrentException();
            DOpts.Observe.count("dynamic.joins_abandoned");
            R.Warnings.push_back("join of nests " + std::to_string(E.U) +
                                 " and " + std::to_string(E.V) +
                                 " abandoned (" + Why.str() + ")");
            continue;
          }
        }
        double JoinedBenefit = CM.totalBenefit(JP);
        // Cross-component reorganization cost eliminated by the join.
        double Saved = 0.0;
        for (const CommEdge &Other : Edges)
          if ((Find(Other.U) == RU && Find(Other.V) == RV) ||
              (Find(Other.U) == RV && Find(Other.V) == RU))
            Saved += Other.Weight;
        double Delta = JoinedBenefit - Benefit[RU] - Benefit[RV] + Saved;
        bool Accept = DOpts.Policy == JoinPolicy::ForceSingle || Delta > 0.0;
        if (!Accept)
          continue;
        DOpts.Observe.count("dynamic.joins_kept");
        Parent[RU] = RV;
        ++Stamp[RV];
        Parts[RV] = std::move(JP);
        Benefit[RV] = JoinedBenefit;
      }
      Begin = End;
    }
  }

  // Gather components.
  for (unsigned N : Nests)
    R.ComponentOf[N] = Find(N);
  std::set<unsigned> Roots;
  for (unsigned N : Nests)
    Roots.insert(Find(N));
  double Value = 0.0;
  for (unsigned Root : Roots) {
    R.Partitions[Root] = Parts[Root];
    Value += Benefit[Root];
  }
  for (const CommEdge &E : Edges)
    if (Find(E.U) != Find(E.V)) {
      R.CutEdges.push_back(E);
      Value -= E.Weight;
    }
  R.Value = Value;
  return R;
}

} // namespace

namespace {

/// Final-result counters shared by both public drivers.
DynamicResult published(DynamicResult R, const TraceContext &Observe) {
  std::set<unsigned> Roots;
  for (const auto &[Nest, Root] : R.ComponentOf)
    Roots.insert(Root);
  Observe.count("dynamic.components", Roots.size());
  Observe.count("dynamic.cut_edges", R.CutEdges.size());
  return R;
}

} // namespace

DynamicResult
alp::runDynamicDecomposition(const Program &P, const CostModel &CM,
                             const DynamicDecomposerOptions &Opts) {
  return published(greedyJoin(P, CM, P.nestsInOrder(),
                              buildCommGraph(P, CM), Opts,
                              globallyWritten(P), PartitionOptions()),
                   Opts.Observe);
}

DynamicResult alp::runMultiLevelDynamicDecomposition(
    const Program &P, const CostModel &CM,
    const DynamicDecomposerOptions &Opts) {
  std::set<unsigned> GlobalWritten = globallyWritten(P);
  std::vector<CommEdge> AllEdges = buildCommGraph(P, CM);

  // Collect structure contexts (node lists) with their nesting depth:
  // each sequential-loop body and branch arm is one context; the top
  // level is the depth-0 context processed last (Sec. 6.4: "each nesting
  // level is examined in a bottom-up order").
  struct Context {
    const std::vector<ProgramNode> *Nodes;
    unsigned Depth;
  };
  std::vector<Context> Contexts;
  std::function<void(const std::vector<ProgramNode> &, unsigned)> Collect =
      [&](const std::vector<ProgramNode> &Nodes, unsigned Depth) {
        for (const ProgramNode &N : Nodes) {
          switch (N.NodeKind) {
          case ProgramNode::Kind::Nest:
            break;
          case ProgramNode::Kind::SequentialLoop:
            Contexts.push_back({&N.Children, Depth + 1});
            Collect(N.Children, Depth + 1);
            break;
          case ProgramNode::Kind::Branch:
            Contexts.push_back({&N.Children, Depth + 1});
            Contexts.push_back({&N.ElseChildren, Depth + 1});
            Collect(N.Children, Depth + 1);
            Collect(N.ElseChildren, Depth + 1);
            break;
          }
        }
      };
  Collect(P.TopLevel, 0);
  std::stable_sort(Contexts.begin(), Contexts.end(),
                   [](const Context &A, const Context &B) {
                     return A.Depth > B.Depth;
                   });

  // Leaves of a subtree.
  std::function<void(const std::vector<ProgramNode> &,
                     std::vector<unsigned> &)>
      Leaves = [&](const std::vector<ProgramNode> &Nodes,
                   std::vector<unsigned> &Out) {
        for (const ProgramNode &N : Nodes) {
          switch (N.NodeKind) {
          case ProgramNode::Kind::Nest:
            Out.push_back(N.NestId);
            break;
          case ProgramNode::Kind::SequentialLoop:
            Leaves(N.Children, Out);
            break;
          case ProgramNode::Kind::Branch:
            Leaves(N.Children, Out);
            Leaves(N.ElseChildren, Out);
            break;
          }
        }
      };

  // Bottom-up: partitions found at each level seed the next; an array
  // whose decomposition differs across a level's components is "split"
  // and stops seeding (the paper's array-node splitting).
  PartitionOptions Seeds;
  std::set<unsigned> SplitArrays;
  std::vector<std::string> InnerWarnings;
  for (const Context &Ctx : Contexts) {
    std::vector<unsigned> Nests;
    Leaves(*Ctx.Nodes, Nests);
    if (Nests.size() < 2)
      continue;
    std::set<unsigned> InCtx(Nests.begin(), Nests.end());
    std::vector<CommEdge> Local;
    for (const CommEdge &E : AllEdges)
      if (InCtx.count(E.U) && InCtx.count(E.V))
        Local.push_back(E);
    DynamicResult LR = greedyJoin(P, CM, Nests, std::move(Local), Opts,
                                  GlobalWritten, Seeds);
    // Inner-level supervision events must survive into the final ledger.
    for (std::string &W : LR.Warnings)
      InnerWarnings.push_back(std::move(W));
    // Seed computation partitions.
    for (const auto &[Root, Parts] : LR.Partitions)
      for (const auto &[NestId, Kernel] : Parts.CompKernel) {
        (void)Root;
        auto [It, New] = Seeds.SeedComp.emplace(NestId, Kernel);
        if (!New)
          It->second.unionWith(Kernel);
      }
    // Seed data partitions for unsplit arrays only.
    std::map<unsigned, std::vector<VectorSpace>> PerArray;
    for (const auto &[Root, Parts] : LR.Partitions) {
      (void)Root;
      for (const auto &[ArrayId, Kernel] : Parts.DataKernel)
        PerArray[ArrayId].push_back(Kernel);
    }
    for (const auto &[ArrayId, Kernels] : PerArray) {
      bool AllEqual = true;
      for (const VectorSpace &K : Kernels)
        AllEqual &= K == Kernels.front();
      if (!AllEqual || SplitArrays.count(ArrayId)) {
        SplitArrays.insert(ArrayId);
        Seeds.SeedData.erase(ArrayId);
        continue;
      }
      auto [It, New] = Seeds.SeedData.emplace(ArrayId, Kernels.front());
      if (!New)
        It->second.unionWith(Kernels.front());
    }
  }

  // Final level: the whole program, seeded from below.
  DynamicResult R = greedyJoin(P, CM, P.nestsInOrder(), std::move(AllEdges),
                               Opts, GlobalWritten, Seeds);
  R.Warnings.insert(R.Warnings.begin(),
                    std::make_move_iterator(InnerWarnings.begin()),
                    std::make_move_iterator(InnerWarnings.end()));
  return published(std::move(R), Opts.Observe);
}
