//===- core/OrientationSolver.h - Orientation propagation -------*- C++ -*-===//
///
/// \file
/// Sec. 4.4: once partitions fix every nullspace, the orientations (the
/// decomposition matrices themselves) are relative within a connected
/// component. The solver picks a root array, realizes any matrix with the
/// prescribed kernel, and propagates along interference edges with
/// C_j = D_x F_xj and D_y = C_j F_yj^+ (pseudo-inverse for array
/// sections). Fractions are cleared by a component-wide integer scaling,
/// which is legal exactly because orientations are relative.
///
//===----------------------------------------------------------------------===//

#ifndef ALP_CORE_ORIENTATIONSOLVER_H
#define ALP_CORE_ORIENTATIONSOLVER_H

#include "core/InterferenceGraph.h"
#include "core/PartitionSolver.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace alp {

/// Orientation matrices for one interference graph.
struct OrientationResult {
  /// Virtual processor dimensionality n used for every matrix.
  unsigned VirtualDims = 0;
  std::map<unsigned, Matrix> D; // Array -> n x m.
  std::map<unsigned, Matrix> C; // Nest  -> n x l.
  /// True when some component's propagation overflowed or ran out of
  /// budget and fell back to all-zero matrices (everything maps to virtual
  /// processor 0 — legal, fully sequential/replicated). Callers must widen
  /// the corresponding partition kernels to the full space to stay
  /// consistent with the zero matrices.
  bool Degraded = false;
  /// One note per degraded component.
  std::vector<std::string> Warnings;
};

/// Options for orientation solving.
struct OrientationOptions {
  /// Preferred root matrices (array id -> D), used to align a component's
  /// orientation with decompositions chosen earlier for other components
  /// (Sec. 6.4's cross-component orientation matching). A preference is
  /// honored only if its kernel matches the partition.
  std::map<unsigned, Matrix> PreferredD;
  /// Optional resource budget; propagation charges one solver iteration
  /// per worklist step and degrades per component on exhaustion.
  ResourceBudget *Budget = nullptr;
  /// Observability sink: one "orient.solve" span per call and the
  /// "orient.*" counters (components, degradations).
  TraceContext Observe;
};

/// Computes orientations for every array and nest of \p IG under the
/// partitions in \p Parts. The number of virtual processor dimensions is
/// Parts.virtualDims(IG) unless \p ForceDims is given.
OrientationResult solveOrientations(const InterferenceGraph &IG,
                                    const PartitionResult &Parts,
                                    const OrientationOptions &Opts = {},
                                    std::optional<unsigned> ForceDims = {});

} // namespace alp

#endif // ALP_CORE_ORIENTATIONSOLVER_H
