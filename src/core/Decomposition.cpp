//===- core/Decomposition.cpp - Decomposition value types --------------------===//

#include "core/Decomposition.h"

#include "support/Diagnostics.h"

#include <sstream>

using namespace alp;

const char *Degradation::stageName(Stage S) {
  switch (S) {
  case Stage::LocalPhase:
    return "local-phase";
  case Stage::Dependence:
    return "dependence";
  case Stage::Partition:
    return "partition";
  case Stage::Orientation:
    return "orientation";
  case Stage::Displacement:
    return "displacement";
  case Stage::Replication:
    return "replication";
  case Stage::Projection:
    return "projection";
  }
  return "unknown";
}

std::string ProgramDecomposition::degradationReport() const {
  std::ostringstream OS;
  for (const Degradation &D : Degradations)
    OS << "warning: [" << Degradation::stageName(D.At) << "] " << D.Detail
       << '\n';
  return OS.str();
}

std::string DataDecomposition::str() const {
  std::ostringstream OS;
  OS << "d(a) = " << D.str() << " a + " << Delta.str();
  if (isBlocked())
    OS << " [blocked]";
  return OS.str();
}

std::string CompDecomposition::str() const {
  std::ostringstream OS;
  OS << "c(i) = " << C.str() << " i + " << Gamma.str();
  if (isBlocked())
    OS << " [blocked]";
  return OS.str();
}

const DataDecomposition &
ProgramDecomposition::dataAt(unsigned ArrayId, unsigned NestId) const {
  auto It = Data.find({ArrayId, NestId});
  if (It == Data.end())
    reportFatalError("no data decomposition for array " +
                     std::to_string(ArrayId) + " at nest " +
                     std::to_string(NestId));
  return It->second;
}

const CompDecomposition &
ProgramDecomposition::compOf(unsigned NestId) const {
  auto It = Comp.find(NestId);
  if (It == Comp.end())
    reportFatalError("no computation decomposition for nest " +
                     std::to_string(NestId));
  return It->second;
}
