//===- tools/alpc.cpp - The alp compiler driver -----------------*- C++ -*-===//
//
// alpc: compile an affine DSL program and report the decomposition.
//
//   alpc <file.alp> [options]
//
//   --no-local-phase     skip Wolf-Lam canonicalization
//   --no-blocking        disable blocked (pipelined) decompositions
//   --no-replication     disable read-only replication
//   --no-projection      disable idle-processor projection
//   --force-single       join every nest into one component
//   --never-join         keep every nest in its own component
//   --fuse               run the loop-fusion post-pass
//   --spmd               print the generated SPMD pseudo-code
//   --print-ir           print the canonicalized IR
//   --deps               print the dependences of every nest
//   --lint               run the alp-lint passes (forall race detector and
//                        affine-model lints) instead of decomposing
//   --verify             validate the decomposition (Theorem 4.1 matrix
//                        invariants + SPMD communication coverage)
//   --Werror             treat lint/verify warnings as errors
//   --diagnostics-format=<text|json|sarif>
//                        how --lint / --verify diagnostics are rendered
//   --simulate           simulate on the NUMA machine (1..32 procs)
//   --procs <n>          machine size for --simulate (default 32)
//   --block <n>          pipeline block size (default 4)
//   --max-fm <n>         cap live Fourier-Motzkin constraints (0 = off)
//   --max-steps <n>      cap FM elimination steps (0 = off)
//   --max-iters <n>      cap solver fixpoint iterations (0 = off)
//   --deadline-ms <n>    wall-clock budget for the pipeline (0 = off)
//   --jobs <n>           analysis worker threads (0 = all hardware
//                        threads); output is identical for every value
//
// Exit codes: 0 success; 1 cannot open / parse / verify failure; 2 usage;
// 3 decomposition failed outright; 4 success but degraded (some stage fell
// back to a conservative answer — report on stderr).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "analysis/Lint.h"
#include "codegen/CommAnalysis.h"
#include "codegen/SpmdEmitter.h"
#include "core/Driver.h"
#include "core/Fusion.h"
#include "core/Verify.h"
#include "frontend/Lowering.h"
#include "ir/Printer.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace alp;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <file.alp> [--no-local-phase] [--no-blocking] "
               "[--no-replication]\n"
               "            [--no-projection] [--force-single] "
               "[--never-join] [--multi-level] [--fuse]\n"
               "            [--spmd] [--comm] [--verify] [--print-ir] [--deps] [--simulate] "
               "[--procs N] [--block B]\n"
               "            [--lint] [--Werror] "
               "[--diagnostics-format=<text|json|sarif>]\n"
               "            [--max-fm N] [--max-steps N] [--max-iters N] "
               "[--deadline-ms N] [--jobs N]\n",
               Prog);
}

enum class DiagFormat { Text, Json, Sarif };

std::string renderLint(const LintResult &R, DiagFormat Format,
                       const std::string &FileName) {
  switch (Format) {
  case DiagFormat::Text:
    return renderLintText(R);
  case DiagFormat::Json:
    return renderLintJson(R, FileName);
  case DiagFormat::Sarif:
    return renderLintSarif(R, FileName);
  }
  return "";
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const char *FileName = nullptr;
  DriverOptions Opts;
  bool DoSpmd = false, DoIr = false, DoDeps = false, DoSim = false;
  bool DoComm = false;
  bool DoFuse = false;
  bool DoVerify = false;
  bool DoLint = false;
  bool WError = false;
  DiagFormat Format = DiagFormat::Text;
  unsigned Procs = 32;
  int64_t Block = 4;
  for (int I = 1; I != argc; ++I) {
    const char *A = argv[I];
    if (!std::strcmp(A, "--no-local-phase"))
      Opts.RunLocalPhase = false;
    else if (!std::strcmp(A, "--no-blocking"))
      Opts.EnableBlocking = false;
    else if (!std::strcmp(A, "--no-replication"))
      Opts.EnableReplication = false;
    else if (!std::strcmp(A, "--no-projection"))
      Opts.EnableIdleProjection = false;
    else if (!std::strcmp(A, "--force-single"))
      Opts.Policy = JoinPolicy::ForceSingle;
    else if (!std::strcmp(A, "--never-join"))
      Opts.Policy = JoinPolicy::NeverJoin;
    else if (!std::strcmp(A, "--multi-level"))
      Opts.MultiLevel = true;
    else if (!std::strcmp(A, "--fuse"))
      DoFuse = true;
    else if (!std::strcmp(A, "--spmd"))
      DoSpmd = true;
    else if (!std::strcmp(A, "--comm"))
      DoComm = true;
    else if (!std::strcmp(A, "--verify"))
      DoVerify = true;
    else if (!std::strcmp(A, "--lint"))
      DoLint = true;
    else if (!std::strcmp(A, "--Werror"))
      WError = true;
    else if (!std::strncmp(A, "--diagnostics-format=", 21)) {
      const char *F = A + 21;
      if (!std::strcmp(F, "text"))
        Format = DiagFormat::Text;
      else if (!std::strcmp(F, "json"))
        Format = DiagFormat::Json;
      else if (!std::strcmp(F, "sarif"))
        Format = DiagFormat::Sarif;
      else {
        std::fprintf(stderr, "unknown diagnostics format '%s'\n", F);
        usage(argv[0]);
        return 2;
      }
    }
    else if (!std::strcmp(A, "--print-ir"))
      DoIr = true;
    else if (!std::strcmp(A, "--deps"))
      DoDeps = true;
    else if (!std::strcmp(A, "--simulate"))
      DoSim = true;
    else if (!std::strcmp(A, "--procs") && I + 1 < argc)
      Procs = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(A, "--block") && I + 1 < argc)
      Block = std::atoll(argv[++I]);
    else if (!std::strcmp(A, "--max-fm") && I + 1 < argc)
      Opts.Budget.MaxFMConstraints =
          static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(A, "--max-steps") && I + 1 < argc)
      Opts.Budget.MaxEliminationSteps =
          static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(A, "--max-iters") && I + 1 < argc)
      Opts.Budget.MaxSolverIterations =
          static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(A, "--deadline-ms") && I + 1 < argc)
      Opts.DeadlineMs = static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(A, "--jobs") && I + 1 < argc)
      Opts.Jobs = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", A);
      usage(argv[0]);
      return 2;
    } else {
      FileName = A;
    }
  }
  if (!FileName) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream In(FileName);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", FileName);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileDsl(Buf.str(), Diags);
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s:%s\n", FileName, D.str().c_str());
  if (!Prog)
    return 1;
  Program P = std::move(*Prog);

  // Lint-only mode: run the race + model passes over the compiled program
  // (no decomposition) and render the diagnostics.
  if (DoLint) {
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckDecomposition = false;
    LO.BlockSize = Block;
    LO.Budget = &Budget;
    LintResult R = runLintPasses(P, nullptr, LO);
    std::printf("%s", renderLint(R, Format, FileName).c_str());
    return R.hasErrors() || (WError && R.hasWarnings()) ? 1 : 0;
  }

  MachineParams M;
  M.NumProcs = Procs;
  M.BlockSize = Block;

  auto RunDecompose = [&](ProgramDecomposition &Out) -> bool {
    Expected<ProgramDecomposition> R = decomposeOrError(P, M, Opts);
    if (!R.hasValue()) {
      std::fprintf(stderr, "error: decomposition failed: %s\n",
                   R.status().str().c_str());
      return false;
    }
    Out = R.takeValue();
    return true;
  };

  ProgramDecomposition PD;
  if (!RunDecompose(PD))
    return 3;
  if (DoFuse) {
    unsigned N = fuseCompatibleNests(P, &PD);
    std::printf("fused %u nest pair(s)\n", N);
    // Decompose again on the fused program (decompositions per nest id
    // may have been merged).
    if (!RunDecompose(PD))
      return 3;
  }

  if (DoIr)
    std::printf("=== IR ===\n%s\n", printProgram(P).c_str());
  if (DoDeps) {
    DependenceAnalysis DA(P);
    std::printf("=== dependences ===\n");
    for (unsigned Id : P.nestsInOrder()) {
      std::printf("nest %u:\n", Id);
      for (const Dependence &D : DA.analyze(P.nest(Id)))
        std::printf("  %s\n", D.str().c_str());
    }
    std::printf("\n");
  }

  std::printf("%s", printDecomposition(P, PD).c_str());

  if (DoSpmd)
    std::printf("\n=== SPMD ===\n%s", emitSpmd(P, PD, Block).c_str());

  if (DoComm) {
    CommSummary CS = analyzeCommunication(P, PD, Block);
    std::printf("\n%s", CS.report(P).c_str());
  }

  if (DoVerify) {
    // The decomposition validator: Theorem 4.1 matrix invariants
    // (core/Verify.h) plus the SPMD communication-coverage check.
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckRaces = false;
    LO.CheckModel = false;
    LO.BlockSize = Block;
    LO.Budget = &Budget;
    LintResult R = runLintPasses(P, &PD, LO);
    bool Bad = R.hasErrors() || (WError && R.hasWarnings());
    if (Format != DiagFormat::Text) {
      std::printf("%s", renderLint(R, Format, FileName).c_str());
      if (Bad)
        return 1;
    } else if (!Bad) {
      std::printf("\nverify: all decomposition invariants hold\n");
    } else {
      for (const Diagnostic &D : R.Diags)
        std::fprintf(stderr, "verify: %s\n", D.strWithNotes().c_str());
      return 1;
    }
  }

  if (DoSim) {
    NumaSimulator Sim(P, M);
    applyDecomposition(Sim, P, PD, Block);
    double Seq = Sim.sequentialCycles();
    std::printf("\n=== simulation (machine: %u procs) ===\n", Procs);
    std::printf("sequential: %.3g cycles\n", Seq);
    for (unsigned Pr = 1; Pr <= Procs; Pr *= 2) {
      SimResult R = Sim.run(Pr);
      std::printf("%3u procs: %12.3g cycles  speedup %6.2f  "
                  "(reorg %.2g, sync %.2g, remote lines %.3g)\n",
                  Pr, R.Cycles, Seq / R.Cycles, R.ReorgCycles,
                  R.SyncCycles, R.RemoteLineFetches);
    }
  }
  if (PD.degraded()) {
    std::fprintf(stderr, "%s", PD.degradationReport().c_str());
    std::fprintf(stderr,
                 "note: decomposition is sound but degraded (%zu stage "
                 "fallback(s))\n",
                 PD.Degradations.size());
    return 4;
  }
  return 0;
}
