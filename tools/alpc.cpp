//===- tools/alpc.cpp - The alp compiler driver -----------------*- C++ -*-===//
//
// alpc: compile an affine DSL program and report the decomposition.
//
//   alpc <file.alp> [options]
//
// Options are declared in a single table (support/CliFlags.h) that drives
// parsing, --help generation, and unknown-flag errors. Every value-taking
// flag accepts both "--flag=value" and "--flag value".
//
// The pipeline itself lives in core/CompileSession.h; this file is flag
// parsing, source ingestion, one CompileSession::run call, and the
// --trace/--stats artifact writes.
//
// Batch mode: --batch=<dir> compiles every *.alp file under <dir>
// (sorted, non-recursive) through the service-layer BatchSession
// (service/Batch.h) — shared-cache dedup, one persistent worker pool
// with warm per-worker arena reuse, and a jobs-deterministic aggregate
// report (--batch-report=<file>, '-' for stdout). The semantic flags
// above apply to every item. Batch exit code: 1 if any item failed
// (exit 1/2/3), else 4 if any degraded, else 0.
//
// Observability: --trace=<file> writes a Chrome trace-event JSON of the
// pipeline's spans (load in chrome://tracing or Perfetto); --stats=<file>
// writes the versioned stats JSON (counters, gauges, span aggregates);
// "--stats=-" writes it to stdout.
//
// Fault injection: --failpoints=site:mode[:count[:delay_ms]],... (or the
// ALP_FAILPOINTS environment variable) arms deterministic injection sites
// throughout the pipeline; see docs/ROBUSTNESS.md for the catalog.
//
// Exit codes: 0 success; 1 cannot open / parse / verify failure; 2 usage;
// 3 a pipeline stage failed outright (decomposition, codegen, simulation,
// or an injected fault with no degraded form); 4 success but degraded
// (some stage fell back to a conservative answer — report on stderr).
//
//===----------------------------------------------------------------------===//

#include "alp.h"

#include "analysis/Lint.h"
#include "core/CompileSession.h"
#include "service/Batch.h"
#include "service/DecompositionCache.h"
#include "support/AtomicFile.h"
#include "support/CliFlags.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace alp;

namespace {

/// Source ingestion: fired after the input file is opened but before its
/// contents are consumed.
FailPoint FpIoRead("io.read");

/// --batch driver: reads every *.alp file directly under \p Dir (sorted
/// by path, so the batch is independent of directory enumeration order),
/// runs them through one BatchSession with the parsed flags as the
/// per-item template, prints a one-line verdict per item, and writes the
/// aggregate report.
int runBatch(const CompileRequest &Template, const std::string &Dir,
             const std::string &ReportPath) {
  namespace fs = std::filesystem;
  std::error_code EC;
  std::vector<std::string> Files;
  fs::directory_iterator It(Dir, EC);
  if (EC) {
    std::fprintf(stderr, "error: cannot read batch directory '%s': %s\n",
                 Dir.c_str(), EC.message().c_str());
    return 1;
  }
  for (const fs::directory_entry &E : It)
    if (E.is_regular_file() && E.path().extension() == ".alp")
      Files.push_back(E.path().string());
  std::sort(Files.begin(), Files.end());
  if (Files.empty()) {
    std::fprintf(stderr, "error: no .alp files under '%s'\n", Dir.c_str());
    return 1;
  }

  std::vector<CompileRequest> Items;
  Items.reserve(Files.size());
  for (const std::string &F : Files) {
    std::ifstream In(F);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", F.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    CompileRequest Req = Template;
    Req.FileName = F;
    Req.Source = Buf.str();
    Items.push_back(std::move(Req));
  }

  DecompositionCache Cache;
  BatchOptions BOpts;
  BOpts.Jobs = Template.Driver.Jobs;
  BOpts.Cache = &Cache;
  BatchSession Session(BOpts);
  std::vector<BatchItemResult> Results = Session.run(Items);

  bool AnyFail = false, AnyDegraded = false;
  for (size_t I = 0; I != Results.size(); ++I) {
    const BatchItemResult &R = Results[I];
    const char *Served =
        R.CacheHit ? "cache" : R.DedupHit ? "dedup" : "compile";
    const char *Verdict = R.ExitCode == 0   ? "ok"
                          : R.ExitCode == 4 ? "degraded"
                                            : "failed";
    std::printf("%s: %s (exit %d, %s)\n", Files[I].c_str(), Verdict,
                R.ExitCode, Served);
    if (R.ExitCode == 4)
      AnyDegraded = true;
    else if (R.ExitCode != 0) {
      AnyFail = true;
      std::fprintf(stderr, "%s", R.Error.c_str());
    }
  }

  if (!ReportPath.empty()) {
    std::string Report = Session.reportJson();
    if (ReportPath == "-") {
      std::printf("%s", Report.c_str());
    } else if (Status S = writeFileAtomic(ReportPath, Report); !S.isOk()) {
      std::fprintf(stderr, "error: cannot write batch report: %s\n",
                   S.str().c_str());
      return 1;
    }
  }
  return AnyFail ? 1 : AnyDegraded ? 4 : 0;
}

} // namespace

int main(int argc, char **argv) {
  // Arm failpoints from the environment first; --failpoints specs layer
  // on top (both go through the same registry).
  if (Status S = FailPointRegistry::instance().configureFromEnv();
      !S.isOk()) {
    std::fprintf(stderr, "error: ALP_FAILPOINTS: %s\n", S.str().c_str());
    return 2;
  }
  CompileRequest Req;
  DriverOptions &Opts = Req.Driver;
  std::string LintPassesSpec;
  std::string TracePath, StatsPath;
  std::string BatchDir, BatchReportPath;

  auto BoolFlag = [](bool &Target, bool Value) {
    return [&Target, Value](const std::string &) {
      Target = Value;
      return true;
    };
  };
  auto U64Flag = [](uint64_t &Target) {
    return [&Target](const std::string &V) { return parseU64(V, Target); };
  };

  const std::vector<FlagSpec> Table = {
      {"--no-local-phase", nullptr, "skip Wolf-Lam canonicalization",
       BoolFlag(Opts.RunLocalPhase, false)},
      {"--no-blocking", nullptr,
       "disable blocked (pipelined) decompositions",
       BoolFlag(Opts.EnableBlocking, false)},
      {"--no-replication", nullptr, "disable read-only replication",
       BoolFlag(Opts.EnableReplication, false)},
      {"--no-projection", nullptr, "disable idle-processor projection",
       BoolFlag(Opts.EnableIdleProjection, false)},
      {"--force-single", nullptr, "join every nest into one component",
       [&](const std::string &) {
         Opts.Policy = JoinPolicy::ForceSingle;
         return true;
       }},
      {"--never-join", nullptr, "keep every nest in its own component",
       [&](const std::string &) {
         Opts.Policy = JoinPolicy::NeverJoin;
         return true;
       }},
      {"--multi-level", nullptr,
       "decompose the loop-nest hierarchy level by level",
       BoolFlag(Opts.MultiLevel, true)},
      {"--fuse", nullptr, "run the loop-fusion post-pass",
       BoolFlag(Req.DoFuse, true)},
      {"--spmd", nullptr, "print the generated SPMD pseudo-code",
       BoolFlag(Req.DoSpmd, true)},
      {"--emit", "spmd|comm-plan",
       "codegen backend: 'spmd' prints message-passing SPMD code driven "
       "by the planned communication schedule; 'comm-plan' prints the "
       "schedule itself",
       [&](const std::string &V) {
         if (V != "spmd" && V != "comm-plan") {
           std::fprintf(stderr, "unknown emit mode '%s'\n", V.c_str());
           return false;
         }
         Req.EmitMode = V;
         return true;
       }},
      {"--machine", "dash|touchstone",
       "machine preset: 'dash' (cache-coherent NUMA, default) or "
       "'touchstone' (message-passing multicomputer)",
       [&](const std::string &V) {
         if (V != "dash" && V != "touchstone") {
           std::fprintf(stderr, "unknown machine '%s'\n", V.c_str());
           return false;
         }
         Req.MachineName = V;
         return true;
       }},
      {"--comm", nullptr, "print the communication analysis",
       BoolFlag(Req.DoComm, true)},
      {"--print-ir", nullptr, "print the canonicalized IR",
       BoolFlag(Req.DoIr, true)},
      {"--deps", nullptr, "print the dependences of every nest",
       BoolFlag(Req.DoDeps, true)},
      {"--lint", nullptr,
       "run the alp-lint passes (race detector, affine-model lints, and "
       "the SPMD schedule verifier when the program decomposes) and "
       "render the diagnostics instead of reporting a decomposition",
       BoolFlag(Req.DoLint, true)},
      {"--lint-passes", "list|help",
       "restrict --lint / --verify to a comma-separated list of pass "
       "families; 'help' lists the registered pass ids",
       [&](const std::string &V) {
         LintPassesSpec = V;
         return true;
       }},
      {"--miscompile", "mode",
       "test-only: seed one schedule miscompilation so the schedule "
       "verifier can prove its checkers fire (drop-transfer, "
       "shrink-aggregation, reorder-recv, reorder-barrier, drop-recv, "
       "alias-buffer)",
       [&](const std::string &V) {
         if (!parseMiscompileMode(V, Req.Miscompile)) {
           std::fprintf(stderr, "unknown miscompile mode '%s'\n", V.c_str());
           return false;
         }
         return true;
       }},
      {"--verify", nullptr,
       "validate the decomposition (Theorem 4.1 invariants + SPMD "
       "communication coverage)",
       BoolFlag(Req.DoVerify, true)},
      {"--Werror", nullptr, "treat lint/verify warnings as errors",
       BoolFlag(Req.WError, true)},
      {"--diagnostics-format", "text|json|sarif",
       "how --lint / --verify diagnostics are rendered",
       [&](const std::string &V) {
         if (V == "text")
           Req.Format = DiagFormat::Text;
         else if (V == "json")
           Req.Format = DiagFormat::Json;
         else if (V == "sarif")
           Req.Format = DiagFormat::Sarif;
         else {
           std::fprintf(stderr, "unknown diagnostics format '%s'\n",
                        V.c_str());
           return false;
         }
         return true;
       }},
      {"--simulate", nullptr, "simulate on the NUMA machine (1..procs)",
       BoolFlag(Req.DoSim, true)},
      {"--procs", "N", "machine size for --simulate (default 32)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Req.Procs = static_cast<unsigned>(U);
         return true;
       }},
      {"--block", "N", "pipeline block size (default 4)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Req.Block = static_cast<int64_t>(U);
         return true;
       }},
      {"--max-fm", "N",
       "cap live Fourier-Motzkin constraints (0 = off)",
       U64Flag(Opts.Budget.MaxFMConstraints)},
      {"--max-steps", "N", "cap FM elimination steps (0 = off)",
       U64Flag(Opts.Budget.MaxEliminationSteps)},
      {"--max-iters", "N", "cap solver fixpoint iterations (0 = off)",
       U64Flag(Opts.Budget.MaxSolverIterations)},
      {"--deadline-ms", "N",
       "wall-clock budget for the pipeline (0 = off)",
       U64Flag(Opts.DeadlineMs)},
      {"--jobs", "N",
       "analysis worker threads (0 = all hardware threads); output is "
       "identical for every value",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.Jobs = static_cast<unsigned>(U);
         return true;
       }},
      {"--failpoints", "site:mode[:count[:delay_ms]],...",
       "arm deterministic fault-injection sites (modes: throw, oom, "
       "status-error, budget-exhaust, delay; see docs/ROBUSTNESS.md)",
       [&](const std::string &V) {
         Status S = FailPointRegistry::instance().configureList(V);
         if (!S.isOk()) {
           std::fprintf(stderr, "error: --failpoints: %s\n",
                        S.str().c_str());
           return false;
         }
         return true;
       }},
      {"--task-retries", "N",
       "extra attempts per parallel task on a shrunken budget before it "
       "degrades to its stage's conservative fallback (default 1)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.TaskAttempts = static_cast<unsigned>(U) + 1;
         return true;
       }},
      {"--task-deadline-ms", "N",
       "per-attempt wall-clock deadline for each parallel task (0 = off; "
       "an armed task deadline trades --jobs determinism for boundedness)",
       U64Flag(Opts.TaskDeadlineMs)},
      {"--trace", "file",
       "write a Chrome trace-event JSON of the pipeline's spans",
       [&](const std::string &V) {
         TracePath = V;
         return true;
       }},
      {"--stats", "file",
       "write the versioned stats JSON (counters / gauges / span "
       "aggregates); '-' writes to stdout",
       [&](const std::string &V) {
         StatsPath = V;
         return true;
       }},
      {"--batch", "dir",
       "compile every *.alp file under <dir> (sorted) as one batch: "
       "shared-cache dedup, warm per-worker arena reuse, and a "
       "jobs-deterministic aggregate report",
       [&](const std::string &V) {
         BatchDir = V;
         return true;
       }},
      {"--batch-report", "file",
       "write the batch aggregate stats JSON (schema v2, kind 'batch'); "
       "'-' writes to stdout",
       [&](const std::string &V) {
         BatchReportPath = V;
         return true;
       }},
  };

  const CliParser Cli{argv[0],
                      "<file.alp> [options]",
                      "Compiles an affine DSL program, decomposes it for a "
                      "scalable\nparallel machine, and reports the result.",
                      Table};
  if (argc < 2) {
    printUsage(Cli);
    return 2;
  }
  std::vector<std::string> Positionals;
  switch (parseCommandLine(Cli, argc, argv, Positionals)) {
  case CliAction::Proceed:
    break;
  case CliAction::ExitSuccess:
    return 0;
  case CliAction::ExitUsage:
    return 2;
  }
  // Pass-family selection (--lint-passes). "help" lists the registry and
  // exits; otherwise the comma-separated ids gate the Check* options so
  // the fuzzer / chaos tool can isolate a single checker.
  if (!LintPassesSpec.empty()) {
    if (LintPassesSpec == "help") {
      std::printf("registered lint pass families:\n");
      for (const std::unique_ptr<LintPass> &Pass :
           createLintPasses(LintOptions()))
        std::printf("  %-10s %s\n", Pass->id(), Pass->description());
      return 0;
    }
    Req.LintPassesExplicit = true;
    Req.SelRace = Req.SelModel = Req.SelDecomp = Req.SelSchedule = false;
    std::string Spec = LintPassesSpec;
    while (!Spec.empty()) {
      size_t Comma = Spec.find(',');
      std::string Id = Spec.substr(0, Comma);
      Spec = Comma == std::string::npos ? "" : Spec.substr(Comma + 1);
      if (Id == "race")
        Req.SelRace = true;
      else if (Id == "model")
        Req.SelModel = true;
      else if (Id == "decomp")
        Req.SelDecomp = true;
      else if (Id == "schedule")
        Req.SelSchedule = true;
      else {
        std::fprintf(stderr,
                     "unknown lint pass '%s' (see --lint-passes=help)\n",
                     Id.c_str());
        printUsage(Cli);
        return 2;
      }
    }
  }

  if (!BatchDir.empty()) {
    if (!Positionals.empty()) {
      std::fprintf(stderr, "error: --batch takes no input file operand\n");
      return 2;
    }
    if (!TracePath.empty() || !StatsPath.empty()) {
      std::fprintf(stderr,
                   "error: --trace/--stats do not apply in batch mode; "
                   "use --batch-report\n");
      return 2;
    }
    return runBatch(Req, BatchDir, BatchReportPath);
  }

  if (Positionals.empty()) {
    printUsage(Cli);
    return 2;
  }
  Req.FileName = Positionals.back();
  const char *FileName = Req.FileName.c_str();

  std::ifstream In(FileName);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", FileName);
    return 1;
  }
  try {
    FpIoRead.evaluateOrThrow();
  } catch (...) {
    Status S = statusFromCurrentException();
    std::fprintf(stderr, "error: cannot read '%s': %s\n", FileName,
                 S.str().c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Req.Source = Buf.str();

  Req.WantTrace = !TracePath.empty();
  Req.WantStats = !StatsPath.empty();
  // Artifacts land via temp-file + atomic rename (support/AtomicFile.h),
  // so a reader never observes a truncated file. Returning false maps to
  // exit 1 on otherwise-successful runs.
  Req.WriteArtifacts = [&](const CompileArtifacts &A) -> bool {
    if (A.HasTrace) {
      if (Status S = writeFileAtomic(TracePath, A.TraceJson); !S.isOk()) {
        std::fprintf(stderr, "error: cannot write trace file: %s\n",
                     S.str().c_str());
        return false;
      }
    }
    if (A.HasStats) {
      if (StatsPath == "-") {
        std::printf("%s", A.StatsJson.c_str());
      } else if (Status S = writeFileAtomic(StatsPath, A.StatsJson);
                 !S.isOk()) {
        std::fprintf(stderr, "error: cannot write stats file: %s\n",
                     S.str().c_str());
        return false;
      }
    }
    return true;
  };

  return CompileSession::run(Req, stdout, stderr).ExitCode;
}
