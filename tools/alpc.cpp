//===- tools/alpc.cpp - The alp compiler driver -----------------*- C++ -*-===//
//
// alpc: compile an affine DSL program and report the decomposition.
//
//   alpc <file.alp> [options]
//
// Options are declared in a single table (see makeFlagTable below) that
// drives parsing, --help generation, and unknown-flag errors. Every
// value-taking flag accepts both "--flag=value" and "--flag value".
//
// Observability: --trace=<file> writes a Chrome trace-event JSON of the
// pipeline's spans (load in chrome://tracing or Perfetto); --stats=<file>
// writes the versioned stats JSON (counters, gauges, span aggregates);
// "--stats=-" writes it to stdout.
//
// Fault injection: --failpoints=site:mode[:count[:delay_ms]],... (or the
// ALP_FAILPOINTS environment variable) arms deterministic injection sites
// throughout the pipeline; see docs/ROBUSTNESS.md for the catalog.
//
// Exit codes: 0 success; 1 cannot open / parse / verify failure; 2 usage;
// 3 a pipeline stage failed outright (decomposition, codegen, simulation,
// or an injected fault with no degraded form); 4 success but degraded
// (some stage fell back to a conservative answer — report on stderr).
//
//===----------------------------------------------------------------------===//

#include "alp.h"

#include "analysis/Dependence.h"
#include "analysis/Lint.h"
#include "core/Fusion.h"
#include "core/Verify.h"
#include "ir/Printer.h"
#include "support/AtomicFile.h"
#include "support/FailPoint.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

using namespace alp;

namespace {

/// Source ingestion: fired after the input file is opened but before its
/// contents are consumed.
FailPoint FpIoRead("io.read");

enum class DiagFormat { Text, Json, Sarif };

std::string renderLint(const LintResult &R, DiagFormat Format,
                       const std::string &FileName) {
  switch (Format) {
  case DiagFormat::Text:
    return renderLintText(R);
  case DiagFormat::Json:
    return renderLintJson(R, FileName);
  case DiagFormat::Sarif:
    return renderLintSarif(R, FileName);
  }
  return "";
}

/// One command-line flag: parsing, help text, and the action it performs.
/// Arg == nullptr marks a boolean flag ("--flag"); otherwise the flag
/// takes a value ("--flag=<Arg>" or "--flag <Arg>"). Apply returns false
/// when the value is malformed (usage error, exit 2).
struct FlagSpec {
  const char *Name; ///< Including the leading "--".
  const char *Arg;  ///< Placeholder for help ("N", "file"), or nullptr.
  const char *Help;
  std::function<bool(const std::string &)> Apply;
};

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End == S.c_str() || *End != '\0')
    return false;
  Out = V;
  return true;
}

void printHelp(const char *Prog, const std::vector<FlagSpec> &Table) {
  std::printf("usage: %s <file.alp> [options]\n\n"
              "Compiles an affine DSL program, decomposes it for a scalable\n"
              "parallel machine, and reports the result.\n\n"
              "Value flags accept both --flag=value and --flag value.\n\n"
              "options:\n",
              Prog);
  size_t Width = 0;
  auto Rendered = [](const FlagSpec &F) {
    std::string S = F.Name;
    if (F.Arg)
      S += std::string("=<") + F.Arg + ">";
    return S;
  };
  for (const FlagSpec &F : Table)
    Width = std::max(Width, Rendered(F).size());
  for (const FlagSpec &F : Table)
    std::printf("  %-*s  %s\n", static_cast<int>(Width),
                Rendered(F).c_str(), F.Help);
}

void usage(const char *Prog) {
  std::fprintf(stderr, "usage: %s <file.alp> [options]  (see %s --help)\n",
               Prog, Prog);
}

} // namespace

int main(int argc, char **argv) {
  // Arm failpoints from the environment first; --failpoints specs layer
  // on top (both go through the same registry).
  if (Status S = FailPointRegistry::instance().configureFromEnv();
      !S.isOk()) {
    std::fprintf(stderr, "error: ALP_FAILPOINTS: %s\n", S.str().c_str());
    return 2;
  }
  const char *FileName = nullptr;
  DriverOptions Opts;
  bool DoSpmd = false, DoIr = false, DoDeps = false, DoSim = false;
  bool DoComm = false;
  bool DoFuse = false;
  bool DoVerify = false;
  bool DoLint = false;
  bool WError = false;
  MiscompileMode Miscompile = MiscompileMode::None;
  std::string LintPassesSpec;
  DiagFormat Format = DiagFormat::Text;
  unsigned Procs = 32;
  int64_t Block = 4;
  std::string MachineName = "dash";
  std::string EmitMode;
  std::string TracePath, StatsPath;

  auto BoolFlag = [](bool &Target, bool Value) {
    return [&Target, Value](const std::string &) {
      Target = Value;
      return true;
    };
  };
  auto U64Flag = [](uint64_t &Target) {
    return [&Target](const std::string &V) { return parseU64(V, Target); };
  };

  const std::vector<FlagSpec> Table = {
      {"--no-local-phase", nullptr, "skip Wolf-Lam canonicalization",
       BoolFlag(Opts.RunLocalPhase, false)},
      {"--no-blocking", nullptr,
       "disable blocked (pipelined) decompositions",
       BoolFlag(Opts.EnableBlocking, false)},
      {"--no-replication", nullptr, "disable read-only replication",
       BoolFlag(Opts.EnableReplication, false)},
      {"--no-projection", nullptr, "disable idle-processor projection",
       BoolFlag(Opts.EnableIdleProjection, false)},
      {"--force-single", nullptr, "join every nest into one component",
       [&](const std::string &) {
         Opts.Policy = JoinPolicy::ForceSingle;
         return true;
       }},
      {"--never-join", nullptr, "keep every nest in its own component",
       [&](const std::string &) {
         Opts.Policy = JoinPolicy::NeverJoin;
         return true;
       }},
      {"--multi-level", nullptr,
       "decompose the loop-nest hierarchy level by level",
       BoolFlag(Opts.MultiLevel, true)},
      {"--fuse", nullptr, "run the loop-fusion post-pass",
       BoolFlag(DoFuse, true)},
      {"--spmd", nullptr, "print the generated SPMD pseudo-code",
       BoolFlag(DoSpmd, true)},
      {"--emit", "spmd|comm-plan",
       "codegen backend: 'spmd' prints message-passing SPMD code driven "
       "by the planned communication schedule; 'comm-plan' prints the "
       "schedule itself",
       [&](const std::string &V) {
         if (V != "spmd" && V != "comm-plan") {
           std::fprintf(stderr, "unknown emit mode '%s'\n", V.c_str());
           return false;
         }
         EmitMode = V;
         return true;
       }},
      {"--machine", "dash|touchstone",
       "machine preset: 'dash' (cache-coherent NUMA, default) or "
       "'touchstone' (message-passing multicomputer)",
       [&](const std::string &V) {
         if (V != "dash" && V != "touchstone") {
           std::fprintf(stderr, "unknown machine '%s'\n", V.c_str());
           return false;
         }
         MachineName = V;
         return true;
       }},
      {"--comm", nullptr, "print the communication analysis",
       BoolFlag(DoComm, true)},
      {"--print-ir", nullptr, "print the canonicalized IR",
       BoolFlag(DoIr, true)},
      {"--deps", nullptr, "print the dependences of every nest",
       BoolFlag(DoDeps, true)},
      {"--lint", nullptr,
       "run the alp-lint passes (race detector, affine-model lints, and "
       "the SPMD schedule verifier when the program decomposes) and "
       "render the diagnostics instead of reporting a decomposition",
       BoolFlag(DoLint, true)},
      {"--lint-passes", "list|help",
       "restrict --lint / --verify to a comma-separated list of pass "
       "families; 'help' lists the registered pass ids",
       [&](const std::string &V) {
         LintPassesSpec = V;
         return true;
       }},
      {"--miscompile", "mode",
       "test-only: seed one schedule miscompilation so the schedule "
       "verifier can prove its checkers fire (drop-transfer, "
       "shrink-aggregation, reorder-recv, reorder-barrier, drop-recv, "
       "alias-buffer)",
       [&](const std::string &V) {
         if (!parseMiscompileMode(V, Miscompile)) {
           std::fprintf(stderr, "unknown miscompile mode '%s'\n", V.c_str());
           return false;
         }
         return true;
       }},
      {"--verify", nullptr,
       "validate the decomposition (Theorem 4.1 invariants + SPMD "
       "communication coverage)",
       BoolFlag(DoVerify, true)},
      {"--Werror", nullptr, "treat lint/verify warnings as errors",
       BoolFlag(WError, true)},
      {"--diagnostics-format", "text|json|sarif",
       "how --lint / --verify diagnostics are rendered",
       [&](const std::string &V) {
         if (V == "text")
           Format = DiagFormat::Text;
         else if (V == "json")
           Format = DiagFormat::Json;
         else if (V == "sarif")
           Format = DiagFormat::Sarif;
         else {
           std::fprintf(stderr, "unknown diagnostics format '%s'\n",
                        V.c_str());
           return false;
         }
         return true;
       }},
      {"--simulate", nullptr, "simulate on the NUMA machine (1..procs)",
       BoolFlag(DoSim, true)},
      {"--procs", "N", "machine size for --simulate (default 32)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Procs = static_cast<unsigned>(U);
         return true;
       }},
      {"--block", "N", "pipeline block size (default 4)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Block = static_cast<int64_t>(U);
         return true;
       }},
      {"--max-fm", "N",
       "cap live Fourier-Motzkin constraints (0 = off)",
       U64Flag(Opts.Budget.MaxFMConstraints)},
      {"--max-steps", "N", "cap FM elimination steps (0 = off)",
       U64Flag(Opts.Budget.MaxEliminationSteps)},
      {"--max-iters", "N", "cap solver fixpoint iterations (0 = off)",
       U64Flag(Opts.Budget.MaxSolverIterations)},
      {"--deadline-ms", "N",
       "wall-clock budget for the pipeline (0 = off)",
       U64Flag(Opts.DeadlineMs)},
      {"--jobs", "N",
       "analysis worker threads (0 = all hardware threads); output is "
       "identical for every value",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.Jobs = static_cast<unsigned>(U);
         return true;
       }},
      {"--failpoints", "site:mode[:count[:delay_ms]],...",
       "arm deterministic fault-injection sites (modes: throw, oom, "
       "status-error, budget-exhaust, delay; see docs/ROBUSTNESS.md)",
       [&](const std::string &V) {
         Status S = FailPointRegistry::instance().configureList(V);
         if (!S.isOk()) {
           std::fprintf(stderr, "error: --failpoints: %s\n",
                        S.str().c_str());
           return false;
         }
         return true;
       }},
      {"--task-retries", "N",
       "extra attempts per parallel task on a shrunken budget before it "
       "degrades to its stage's conservative fallback (default 1)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.TaskAttempts = static_cast<unsigned>(U) + 1;
         return true;
       }},
      {"--task-deadline-ms", "N",
       "per-attempt wall-clock deadline for each parallel task (0 = off; "
       "an armed task deadline trades --jobs determinism for boundedness)",
       U64Flag(Opts.TaskDeadlineMs)},
      {"--trace", "file",
       "write a Chrome trace-event JSON of the pipeline's spans",
       [&](const std::string &V) {
         TracePath = V;
         return true;
       }},
      {"--stats", "file",
       "write the versioned stats JSON (counters / gauges / span "
       "aggregates); '-' writes to stdout",
       [&](const std::string &V) {
         StatsPath = V;
         return true;
       }},
  };

  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  for (int I = 1; I != argc; ++I) {
    std::string A = argv[I];
    if (A == "--help" || A == "-h") {
      printHelp(argv[0], Table);
      return 0;
    }
    if (A.rfind("--", 0) != 0) {
      if (!A.empty() && A[0] == '-') {
        std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
        usage(argv[0]);
        return 2;
      }
      FileName = argv[I];
      continue;
    }
    std::string Name = A, Value;
    bool HasValue = false;
    if (size_t Eq = A.find('='); Eq != std::string::npos) {
      Name = A.substr(0, Eq);
      Value = A.substr(Eq + 1);
      HasValue = true;
    }
    const FlagSpec *Spec = nullptr;
    for (const FlagSpec &F : Table)
      if (Name == F.Name) {
        Spec = &F;
        break;
      }
    if (!Spec) {
      std::fprintf(stderr, "unknown option '%s'\n", Name.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!Spec->Arg) {
      if (HasValue) {
        std::fprintf(stderr, "option '%s' takes no value\n", Name.c_str());
        usage(argv[0]);
        return 2;
      }
    } else if (!HasValue) {
      if (I + 1 == argc) {
        std::fprintf(stderr, "option '%s' requires a value\n", Name.c_str());
        usage(argv[0]);
        return 2;
      }
      Value = argv[++I];
    }
    if (!Spec->Apply(Value)) {
      std::fprintf(stderr, "invalid value '%s' for option '%s'\n",
                   Value.c_str(), Name.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  // Pass-family selection (--lint-passes). "help" lists the registry and
  // exits; otherwise the comma-separated ids gate the Check* options so
  // the fuzzer / chaos tool can isolate a single checker.
  bool SelRace = true, SelModel = true, SelDecomp = true, SelSchedule = true;
  if (!LintPassesSpec.empty()) {
    if (LintPassesSpec == "help") {
      std::printf("registered lint pass families:\n");
      for (const std::unique_ptr<LintPass> &Pass :
           createLintPasses(LintOptions()))
        std::printf("  %-10s %s\n", Pass->id(), Pass->description());
      return 0;
    }
    SelRace = SelModel = SelDecomp = SelSchedule = false;
    std::string Spec = LintPassesSpec;
    while (!Spec.empty()) {
      size_t Comma = Spec.find(',');
      std::string Id = Spec.substr(0, Comma);
      Spec = Comma == std::string::npos ? "" : Spec.substr(Comma + 1);
      if (Id == "race")
        SelRace = true;
      else if (Id == "model")
        SelModel = true;
      else if (Id == "decomp")
        SelDecomp = true;
      else if (Id == "schedule")
        SelSchedule = true;
      else {
        std::fprintf(stderr,
                     "unknown lint pass '%s' (see --lint-passes=help)\n",
                     Id.c_str());
        usage(argv[0]);
        return 2;
      }
    }
  }

  if (!FileName) {
    usage(argv[0]);
    return 2;
  }

  // Observability sinks. Both stay empty-cost when the flags are absent:
  // Opts.Observe carries null pointers, so every span and counter in the
  // pipeline reduces to a pointer test.
  Tracer Trace;
  MetricsRegistry Metrics;
  const bool Observing = !TracePath.empty() || !StatsPath.empty();
  TraceContext Observe;
  if (Observing) {
    Observe.Trace = &Trace;
    Observe.Metrics = &Metrics;
  }
  Opts.Observe = Observe;

  // Writes --trace / --stats output; called on every exit path that runs
  // after the front end. Artifacts land via temp-file + atomic rename
  // (support/AtomicFile.h), so a reader never observes a truncated file.
  // Returns false on I/O failure.
  auto WriteObservability = [&]() -> bool {
    if (!Observing)
      return true;
    // With an unbounded trigger count every task faults, so this total is
    // jobs-deterministic like the other counters (docs/ROBUSTNESS.md).
    Metrics.add("failpoint.triggered",
                FailPointRegistry::instance().triggeredCount());
    if (!TracePath.empty()) {
      std::ostringstream Out;
      Trace.writeChromeTrace(Out);
      if (Status S = writeFileAtomic(TracePath, Out.str()); !S.isOk()) {
        std::fprintf(stderr, "error: cannot write trace file: %s\n",
                     S.str().c_str());
        return false;
      }
    }
    if (!StatsPath.empty()) {
      std::string Json = renderStatsJson(&Metrics, &Trace);
      if (StatsPath == "-") {
        std::printf("%s", Json.c_str());
      } else if (Status S = writeFileAtomic(StatsPath, Json); !S.isOk()) {
        std::fprintf(stderr, "error: cannot write stats file: %s\n",
                     S.str().c_str());
        return false;
      }
    }
    return true;
  };

  // Stages past the decomposition driver have no degraded form: an
  // injected fault or internal error in one of them ends the run with a
  // clean error line and exit 3, never an uncaught exception.
  auto RunStage = [&](const char *StageName,
                      const std::function<void()> &Fn) -> bool {
    try {
      Fn();
      return true;
    } catch (...) {
      Status S = statusFromCurrentException();
      std::fprintf(stderr, "error: %s failed: %s\n", StageName,
                   S.str().c_str());
      return false;
    }
  };

  std::ifstream In(FileName);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", FileName);
    return 1;
  }
  try {
    FpIoRead.evaluateOrThrow();
  } catch (...) {
    Status S = statusFromCurrentException();
    std::fprintf(stderr, "error: cannot read '%s': %s\n", FileName,
                 S.str().c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  {
    TraceSpan FrontendSpan(Observe.Trace, "frontend.compile");
    Prog = compileDsl(Buf.str(), Diags);
  }
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s:%s\n", FileName, D.str().c_str());
  if (!Prog)
    return 1;
  Program P = std::move(*Prog);

  // Lint-only mode: run the race + model passes over the compiled
  // program, then — when the program decomposes — the schedule verifier
  // over its planned communication. A program that does not decompose
  // still lints (the decomposition-dependent passes are skipped).
  if (DoLint) {
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckRaces = SelRace;
    LO.CheckModel = SelModel;
    // The decomposition validator stays opt-in under --lint (--verify is
    // its home); an explicit --lint-passes=decomp enables it here.
    LO.CheckDecomposition = !LintPassesSpec.empty() && SelDecomp;
    LO.CheckSchedule = SelSchedule;
    LO.BlockSize = Block;
    LO.Budget = &Budget;
    LO.Miscompile = Miscompile;
    LO.Observe = Observe;
    // The decomposition driver canonicalizes the program in place
    // (Wolf-Lam local phase), which can legalize exactly the defects the
    // race/model passes exist to report — so those passes lint the
    // pristine program, and the decomposition-dependent passes run on a
    // private copy.
    MachineParams LintM;
    LintM.NumProcs = Procs;
    LintM.BlockSize = Block;
    Program DecompP = P;
    ProgramDecomposition LintPD;
    bool HavePD = false;
    if (LO.CheckSchedule || LO.CheckDecomposition)
      if (Expected<ProgramDecomposition> R =
              decomposeOrError(DecompP, LintM, Opts);
          R.hasValue()) {
        LintPD = R.takeValue();
        HavePD = true;
      }
    LintResult R;
    if (!RunStage("lint", [&] {
          TraceSpan LintSpan(Observe.Trace, "lint.run");
          LintOptions FrontLO = LO;
          FrontLO.CheckDecomposition = false;
          FrontLO.CheckSchedule = false;
          R = runLintPasses(P, nullptr, FrontLO);
          if (HavePD) {
            LintOptions PdLO = LO;
            PdLO.CheckRaces = false;
            PdLO.CheckModel = false;
            LintResult R2 = runLintPasses(DecompP, &LintPD, PdLO);
            R.Diags.insert(R.Diags.end(), R2.Diags.begin(), R2.Diags.end());
            R.Unchecked.insert(R.Unchecked.end(), R2.Unchecked.begin(),
                               R2.Unchecked.end());
            normalizeLintDiagnostics(R.Diags);
          }
        })) {
      WriteObservability();
      return 3;
    }
    std::printf("%s", renderLint(R, Format, FileName).c_str());
    if (!WriteObservability())
      return 1;
    return R.hasErrors() || (WError && R.hasWarnings()) ? 1 : 0;
  }

  MachineParams M;
  M.NumProcs = Procs;
  M.BlockSize = Block;
  if (MachineName == "touchstone") {
    // Touchstone-like multicomputer: one processor per node, remote data
    // moves in messages with a software overhead per message.
    M.ProcsPerCluster = 1;
    M.MessagePassing = true;
  }

  // The shared codegen configuration: every consumer (emitter, comm
  // analysis, planner, simulator schedules) takes its block size from the
  // machine description, so schedule and emission cannot diverge.
  CodegenOptions CG = CodegenOptions::forMachine(M);
  CG.Observe = Observe;
  CG.Miscompile = Miscompile;

  auto RunDecompose = [&](ProgramDecomposition &Out) -> bool {
    Expected<ProgramDecomposition> R = decomposeOrError(P, M, Opts);
    if (!R.hasValue()) {
      std::fprintf(stderr, "error: decomposition failed: %s\n",
                   R.status().str().c_str());
      return false;
    }
    Out = R.takeValue();
    return true;
  };

  ProgramDecomposition PD;
  if (!RunDecompose(PD)) {
    WriteObservability();
    return 3;
  }
  if (DoFuse) {
    unsigned N = 0;
    if (!RunStage("fusion", [&] { N = fuseCompatibleNests(P, &PD); })) {
      WriteObservability();
      return 3;
    }
    std::printf("fused %u nest pair(s)\n", N);
    // Decompose again on the fused program (decompositions per nest id
    // may have been merged).
    if (!RunDecompose(PD)) {
      WriteObservability();
      return 3;
    }
  }

  if (DoIr)
    std::printf("=== IR ===\n%s\n", printProgram(P).c_str());
  if (DoDeps && !RunStage("dependence printing", [&] {
        DependenceAnalysis DA(P);
        std::printf("=== dependences ===\n");
        for (unsigned Id : P.nestsInOrder()) {
          std::printf("nest %u:\n", Id);
          for (const Dependence &D : DA.analyze(P.nest(Id)))
            std::printf("  %s\n", D.str().c_str());
        }
        std::printf("\n");
      })) {
    WriteObservability();
    return 3;
  }

  std::printf("%s", printDecomposition(P, PD).c_str());

  if (DoSpmd && !RunStage("SPMD emission", [&] {
        std::printf("\n=== SPMD ===\n%s", emitSpmd(P, PD, CG).c_str());
      })) {
    WriteObservability();
    return 3;
  }

  // Schedule verification gates emission: --emit renders nothing when the
  // planned schedule fails the static verifier (deadlock, coverage gap,
  // unmatched messages, buffer overlap, barrier divergence).
  if (!EmitMode.empty() && SelSchedule) {
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckRaces = false;
    LO.CheckModel = false;
    LO.CheckDecomposition = false;
    LO.CheckSchedule = true;
    LO.BlockSize = CG.BlockSize;
    LO.Budget = &Budget;
    LO.Miscompile = Miscompile;
    LO.Observe = Observe;
    LintResult R;
    if (!RunStage("schedule verification", [&] {
          TraceSpan VerifySpan(Observe.Trace, "lint.schedule");
          R = runLintPasses(P, &PD, LO);
        })) {
      WriteObservability();
      return 3;
    }
    if (R.hasErrors() || (WError && R.hasWarnings())) {
      for (const Diagnostic &D : R.Diags)
        std::fprintf(stderr, "schedule: %s\n", D.strWithNotes().c_str());
      WriteObservability();
      return 1;
    }
  }

  if (!EmitMode.empty() && !RunStage("codegen", [&] {
        if (EmitMode == "spmd") {
          CodegenOptions MsgCG = CG;
          MsgCG.EmitMessages = true;
          std::printf("\n=== SPMD (message passing) ===\n%s",
                      emitSpmd(P, PD, MsgCG).c_str());
        } else if (EmitMode == "comm-plan") {
          std::printf("\n%s",
                      planCommunication(P, PD, CG).report(P).c_str());
        }
      })) {
    WriteObservability();
    return 3;
  }

  if (DoComm && !RunStage("communication analysis", [&] {
        CommSummary CS = analyzeCommunication(P, PD, CG);
        std::printf("\n%s", CS.report(P).c_str());
      })) {
    WriteObservability();
    return 3;
  }

  if (DoVerify) {
    // The decomposition validator: Theorem 4.1 matrix invariants
    // (core/Verify.h) plus the SPMD communication-coverage check.
    ResourceBudget Budget = Opts.Budget;
    if (Opts.DeadlineMs)
      Budget.setDeadlineIn(std::chrono::milliseconds(Opts.DeadlineMs));
    LintOptions LO;
    LO.CheckRaces = false;
    LO.CheckModel = false;
    LO.CheckDecomposition = SelDecomp;
    LO.CheckSchedule = SelSchedule;
    LO.BlockSize = CG.BlockSize;
    // Both sides read MachineParams.BlockSize, so the block-size
    // divergence lint stays silent here by construction.
    LO.ScheduleBlockSize = M.BlockSize;
    LO.Budget = &Budget;
    LO.Miscompile = Miscompile;
    LO.Observe = Observe;
    LintResult R;
    if (!RunStage("verification", [&] {
          TraceSpan VerifySpan(Observe.Trace, "lint.verify");
          R = runLintPasses(P, &PD, LO);
        })) {
      WriteObservability();
      return 3;
    }
    bool Bad = R.hasErrors() || (WError && R.hasWarnings());
    if (Format != DiagFormat::Text) {
      std::printf("%s", renderLint(R, Format, FileName).c_str());
      if (Bad) {
        WriteObservability();
        return 1;
      }
    } else if (!Bad) {
      std::printf("\nverify: all decomposition invariants hold\n");
    } else {
      for (const Diagnostic &D : R.Diags)
        std::fprintf(stderr, "verify: %s\n", D.strWithNotes().c_str());
      WriteObservability();
      return 1;
    }
  }

  if (DoSim && !RunStage("simulation", [&] {
        NumaSimulator Sim(P, M);
        Sim.setObserve(Observe);
        if (M.MessagePassing) {
          // Message-passing machine: cost the planned bulk schedule, the
          // same one --emit=spmd renders, instead of fine-grained
          // per-line messages.
          CodegenOptions PlanCG = CG;
          if (!EmitMode.empty())
            PlanCG.Observe = {}; // comm.* counters already published once.
          Sim.setCommSchedule(planCommunication(P, PD, PlanCG).schedule());
        }
        applyDecomposition(Sim, P, PD);
        double Seq = Sim.sequentialCycles();
        std::printf("\n=== simulation (machine: %s, %u procs) ===\n",
                    MachineName.c_str(), Procs);
        std::printf("sequential: %.3g cycles\n", Seq);
        for (unsigned Pr = 1; Pr <= Procs; Pr *= 2) {
          SimResult R = Sim.run(Pr);
          std::printf("%3u procs: %12.3g cycles  speedup %6.2f  "
                      "(reorg %.2g, sync %.2g, remote lines %.3g",
                      Pr, R.Cycles, Seq / R.Cycles, R.ReorgCycles,
                      R.SyncCycles, R.RemoteLineFetches);
          if (M.MessagePassing)
            std::printf(", msgs %.3g", R.MessagesSent);
          std::printf(")\n");
        }
      })) {
    WriteObservability();
    return 3;
  }
  if (!WriteObservability())
    return 1;
  if (PD.degraded()) {
    std::fprintf(stderr, "%s", PD.degradationReport().c_str());
    std::fprintf(stderr,
                 "note: decomposition is sound but degraded (%zu stage "
                 "fallback(s))\n",
                 PD.Degradations.size());
    return 4;
  }
  return 0;
}
