//===- tools/alp_gen.cpp - Seeded corpus generator CLI --------------------===//
//
// Emits a deterministic corpus of affine-DSL programs (gen/Generator.h)
// for alpc --batch, the alpd service storm, and the perf harnesses:
//
//   alp_gen --out corpus --seed 7 --count 200 [--jobs 4] [--family cycle]
//
// Same --seed and --count => byte-identical corpus, whatever --jobs is:
// program #i is a pure function of (seed, i). A manifest.json in the
// output directory records the seed and the file list in index order.
//
//   alp_gen --template fm-blowup     # canonical adversarial instantiation
//   alp_gen --list-families          # family / template inventory
//
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"
#include "support/AtomicFile.h"
#include "support/CliFlags.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace alp;

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  uint64_t Count = 100;
  unsigned Jobs = 1;
  std::string OutDir = "corpus";
  std::string Family;
  std::string Template;
  bool ListFamilies = false;
  std::string FlagErr;

  const std::vector<FlagSpec> Table = {
      {"--seed", "N", "Corpus seed (default 1).",
       [&](const std::string &V) { return parseU64(V, Seed); }},
      {"--count", "N", "Number of programs to generate (default 100).",
       [&](const std::string &V) { return parseU64(V, Count); }},
      {"--out", "dir", "Output directory (default \"corpus\").",
       [&](const std::string &V) {
         OutDir = V;
         return !V.empty();
       }},
      {"--jobs", "N",
       "Worker threads for file writes; the bytes are identical for every "
       "value (default 1).",
       [&](const std::string &V) {
         uint64_t J = 0;
         if (!parseU64(V, J) || J == 0)
           return false;
         Jobs = static_cast<unsigned>(J);
         return true;
       }},
      {"--family", "name",
       "Restrict the corpus to one shape family (default: round-robin "
       "over all; see --list-families).",
       [&](const std::string &V) {
         for (const std::string &F : gen::familyNames())
           if (F == V) {
             Family = V;
             return true;
           }
         FlagErr = "unknown family '" + V + "'";
         return false;
       }},
      {"--template", "name",
       "Print the canonical instantiation of one adversarial template to "
       "stdout and exit (see --list-families).",
       [&](const std::string &V) {
         Template = V;
         return !V.empty();
       }},
      {"--list-families", nullptr,
       "List shape families and adversarial template names, then exit.",
       [&](const std::string &) {
         ListFamilies = true;
         return true;
       }},
  };

  CliParser P{argv[0], "--out <dir> [options]",
              "Generates a seeded, deterministic corpus of affine-DSL "
              "programs across the paper's shape space (docs/CORPUS.md).",
              Table};
  std::vector<std::string> Positionals;
  switch (parseCommandLine(P, argc, argv, Positionals)) {
  case CliAction::Proceed:
    break;
  case CliAction::ExitSuccess:
    return 0;
  case CliAction::ExitUsage:
    if (!FlagErr.empty())
      std::fprintf(stderr, "alp_gen: %s\n", FlagErr.c_str());
    return 2;
  }
  if (!Positionals.empty()) {
    std::fprintf(stderr, "alp_gen: unexpected operand '%s'\n",
                 Positionals.front().c_str());
    printUsage(P);
    return 2;
  }

  if (ListFamilies) {
    std::printf("families:\n");
    for (const std::string &F : gen::familyNames())
      std::printf("  %s\n", F.c_str());
    std::printf("adversarial templates:\n");
    for (const std::string &T : gen::adversarialTemplateNames())
      std::printf("  %s\n", T.c_str());
    return 0;
  }

  if (!Template.empty()) {
    std::string Src = gen::renderAdversarialTemplate(Template);
    if (Src.empty()) {
      std::fprintf(stderr, "alp_gen: unknown template '%s'\n",
                   Template.c_str());
      return 2;
    }
    std::fputs(Src.c_str(), stdout);
    return 0;
  }

  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  if (EC) {
    std::fprintf(stderr, "alp_gen: cannot create '%s': %s\n", OutDir.c_str(),
                 EC.message().c_str());
    return 1;
  }

  // Program #i is a pure function of (seed, i), so the pool only races
  // file writes, never bytes. Failures are sticky and reported once.
  std::vector<gen::GeneratedProgram> Programs(Count);
  std::atomic<bool> WriteFailed{false};
  ThreadPool Pool(Jobs);
  Pool.parallelFor(static_cast<size_t>(Count), [&](size_t I) {
    gen::GeneratedProgram G = gen::generateProgram(Seed, I, Family);
    Status S = writeFileAtomic(OutDir + "/" + G.FileName, G.Source);
    if (!S.ok()) {
      if (!WriteFailed.exchange(true))
        std::fprintf(stderr, "alp_gen: write failed: %s\n", S.str().c_str());
    }
    G.Source.clear(); // The manifest needs names only.
    Programs[I] = std::move(G);
  });
  if (WriteFailed.load())
    return 1;

  std::string Manifest = gen::corpusManifestJson(Seed, Count, Family, Programs);
  Status S = writeFileAtomic(OutDir + "/manifest.json", Manifest);
  if (!S.ok()) {
    std::fprintf(stderr, "alp_gen: manifest write failed: %s\n",
                 S.str().c_str());
    return 1;
  }
  std::string FamilyNote = Family.empty() ? "" : ", family " + Family;
  std::printf("alp_gen: wrote %llu programs to %s (seed %llu%s)\n",
              static_cast<unsigned long long>(Count), OutDir.c_str(),
              static_cast<unsigned long long>(Seed), FamilyNote.c_str());
  return 0;
}
