//===- tools/alpd.cpp - The alp compilation daemon --------------*- C++ -*-===//
//
// alpd: a long-lived compilation service answering concurrent compile
// requests over a Unix-domain socket, from a process-wide generation-aged
// decomposition cache (see docs/SERVICE.md for the protocol).
//
//   alpd --socket=/tmp/alpd.sock [options]
//
// Runs until a client sends SHUTDOWN or the process receives SIGINT /
// SIGTERM; both drain in-flight requests before exiting. --cache-file
// persists the answer cache across restarts (fail-soft: a corrupt image
// is discarded, never fatal). --stats writes the service counters JSON
// at shutdown.
//
// Exit codes: 0 clean shutdown; 1 stats-write failure; 2 usage / socket
// setup failure.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/AtomicFile.h"
#include "support/CliFlags.h"
#include "support/FailPoint.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

using namespace alp;

namespace {

/// The signal handler's shutdown hook: requestShutdown is async-signal-
/// safe (atomic flag + close of the listen fd).
std::atomic<Server *> GServer{nullptr};

void handleSignal(int) {
  if (Server *S = GServer.load(std::memory_order_acquire))
    S->requestShutdown();
}

} // namespace

int main(int argc, char **argv) {
  if (Status S = FailPointRegistry::instance().configureFromEnv();
      !S.isOk()) {
    std::fprintf(stderr, "error: ALP_FAILPOINTS: %s\n", S.str().c_str());
    return 2;
  }
  ServerOptions Opts;
  Opts.SocketPath = "alpd.sock";
  std::string StatsPath;

  auto U64Flag = [](uint64_t &Target) {
    return [&Target](const std::string &V) { return parseU64(V, Target); };
  };

  const std::vector<FlagSpec> Table = {
      {"--socket", "path",
       "Unix-domain socket path to listen on (default alpd.sock)",
       [&](const std::string &V) {
         Opts.SocketPath = V;
         return true;
       }},
      {"--threads", "N",
       "worker threads draining connections (0 = all hardware threads)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.Threads = static_cast<unsigned>(U);
         return true;
       }},
      {"--cache-entries", "N",
       "decomposition cache capacity in entries (default 4096)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U))
           return false;
         Opts.MaxCacheEntries = static_cast<size_t>(U);
         return true;
       }},
      {"--cache-file", "path",
       "load the cache image at start and save it at shutdown "
       "(fail-soft: a missing or corrupt image recomputes)",
       [&](const std::string &V) {
         Opts.CachePersistPath = V;
         return true;
       }},
      {"--request-deadline-ms", "N",
       "wall-clock deadline imposed on every compile request (0 = off)",
       U64Flag(Opts.RequestDeadlineMs)},
      {"--compile-attempts", "N",
       "supervisor attempts per compile request (default 1)",
       [&](const std::string &V) {
         uint64_t U;
         if (!parseU64(V, U) || U == 0)
           return false;
         Opts.CompileAttempts = static_cast<unsigned>(U);
         return true;
       }},
      {"--generation-every", "N",
       "age the cache one generation every N requests (default 64)",
       U64Flag(Opts.GenerationEvery)},
      {"--failpoints", "site:mode[:count[:delay_ms]],...",
       "arm deterministic fault-injection sites (docs/ROBUSTNESS.md)",
       [&](const std::string &V) {
         Status S = FailPointRegistry::instance().configureList(V);
         if (!S.isOk()) {
           std::fprintf(stderr, "error: --failpoints: %s\n",
                        S.str().c_str());
           return false;
         }
         return true;
       }},
      {"--stats", "file",
       "write the service counters JSON at shutdown; '-' writes to stdout",
       [&](const std::string &V) {
         StatsPath = V;
         return true;
       }},
  };

  const CliParser Cli{argv[0], "[options]",
                      "Serves compile requests over a Unix-domain socket "
                      "from a\nprocess-wide decomposition cache.",
                      Table};
  std::vector<std::string> Positionals;
  switch (parseCommandLine(Cli, argc, argv, Positionals)) {
  case CliAction::Proceed:
    break;
  case CliAction::ExitSuccess:
    return 0;
  case CliAction::ExitUsage:
    return 2;
  }
  if (!Positionals.empty()) {
    std::fprintf(stderr, "unexpected operand '%s'\n",
                 Positionals.front().c_str());
    printUsage(Cli);
    return 2;
  }

  Server Srv(Opts);
  if (Status S = Srv.start(); !S.isOk()) {
    std::fprintf(stderr, "error: cannot start server: %s\n",
                 S.str().c_str());
    return 2;
  }
  GServer.store(&Srv, std::memory_order_release);
  std::signal(SIGINT, handleSignal);
  std::signal(SIGTERM, handleSignal);

  std::printf("alpd: listening on %s (%u worker thread(s), cache %zu "
              "entries)\n",
              Opts.SocketPath.c_str(),
              Opts.Threads ? Opts.Threads
                           : ThreadPool::hardwareConcurrency(),
              Opts.MaxCacheEntries);
  std::fflush(stdout);

  Srv.wait();
  GServer.store(nullptr, std::memory_order_release);

  if (!StatsPath.empty()) {
    std::string Json = Srv.metrics().renderCountersJson();
    if (StatsPath == "-") {
      std::printf("%s\n", Json.c_str());
    } else if (Status S = writeFileAtomic(StatsPath, Json); !S.isOk()) {
      std::fprintf(stderr, "error: cannot write stats file: %s\n",
                   S.str().c_str());
      return 1;
    }
  }
  return 0;
}
