//===- tools/alp_fuzz.cpp - Fail-soft fuzz / stress harness -----*- C++ -*-===//
//
// alp_fuzz: throw randomized programs at the fail-soft pipeline and check
// the contract of docs/ROBUSTNESS.md — decomposeOrError never aborts on
// user-reachable input, no matter how adversarial.
//
//   alp_fuzz [--seed S] [--iters N] [--corpus DIR] [--verbose]
//
// Two generators alternate, both deterministic in the seed:
//
//   * random DSL text (valid-shaped programs, sometimes byte-mutated into
//     garbage) through the front end: the parser must diagnose, never
//     crash; whatever parses goes through decomposeOrError;
//   * random affine IR via ProgramBuilder with adversarial coefficients
//     (up to ~2^40, so products overflow 64 bits) straight into
//     decomposeOrError.
//
// With --corpus, every *.alp file in DIR is replayed first (the checked-in
// crash-regression corpus lives in testdata/fuzz/). Exit 0 iff every case
// completed without a crash; on abort the terminate handler prints the
// case seed for `alp_fuzz --seed S --iters 1`.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "core/Driver.h"
#include "frontend/Lowering.h"
#include "ir/Builder.h"
#include "support/CliFlags.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace alp;

namespace {

uint64_t CurrentSeed = 0;
const char *CurrentPhase = "startup";

/// Budget used for every decomposition: tight enough that adversarial
/// systems degrade quickly instead of grinding, loose enough that normal
/// programs solve exactly.
DriverOptions fuzzOptions() {
  DriverOptions Opts;
  Opts.Budget.MaxFMConstraints = 2048;
  Opts.Budget.MaxEliminationSteps = 1 << 18;
  Opts.Budget.MaxSolverIterations = 1 << 14;
  return Opts;
}

/// Starvation budget: every exact algorithm exhausts almost immediately,
/// forcing each stage's conservative fallback. Programs that survive this
/// prove the degradation paths themselves are crash-free.
DriverOptions starvedOptions() {
  DriverOptions Opts;
  Opts.Budget.MaxFMConstraints = 16;
  Opts.Budget.MaxEliminationSteps = 4;
  Opts.Budget.MaxSolverIterations = 4;
  return Opts;
}

/// Runs the alp-lint passes over \p P and checks their output contract:
/// no crash, every diagnostic location inside the input (\p Text nullable
/// for built IR), and all three emitters render. Lint is analysis only —
/// any race/model/decomp diagnostics are fine, invalid ones are not. The
/// schedule verifier is held to a stronger bar: it translation-validates
/// the compiler's own communication plan, so on an unmiscompiled pipeline
/// any schedule.* error is a real planner/emitter bug (or a verifier
/// false positive) — either way an abort worth a corpus entry.
void runLintCase(const Program &P, const ProgramDecomposition *PD,
                 const std::string *Text) {
  CurrentPhase = "lint";
  ResourceBudget Budget;
  Budget.MaxFMConstraints = 2048;
  Budget.MaxEliminationSteps = 1 << 18;
  Budget.MaxSolverIterations = 1 << 14;
  LintOptions LO;
  LO.Budget = &Budget;
  LO.CheckDecomposition = PD != nullptr;
  LintResult R = runLintPasses(P, PD, LO);
  for (const Diagnostic &D : R.Diags) {
    if (D.DiagKind == Diagnostic::Kind::Error &&
        D.PassId.rfind("schedule.", 0) == 0) {
      std::fprintf(stderr,
                   "alp_fuzz: schedule verifier flagged the compiler's "
                   "own plan:\n%s\n",
                   renderLintText(R).c_str());
      if (Text)
        std::fprintf(stderr, "--- input ---\n%s\n", Text->c_str());
      std::abort();
    }
  }

  unsigned Lines =
      Text ? 1 + std::count(Text->begin(), Text->end(), '\n') : 0;
  auto CheckLoc = [&](SourceLoc Loc) {
    if (!Text || !Loc.isValid())
      return;
    if (Loc.Line > Lines) {
      std::fprintf(stderr,
                   "alp_fuzz: lint diagnostic at %s is outside the "
                   "%u-line input\n",
                   Loc.str().c_str(), Lines);
      std::abort();
    }
  };
  for (const Diagnostic &D : R.Diags) {
    CheckLoc(D.Loc);
    for (const DiagNote &N : D.Notes)
      CheckLoc(N.Loc);
  }
  CurrentPhase = "lint-render";
  (void)renderLintText(R);
  (void)renderLintJson(R, "fuzz.alp");
  (void)renderLintSarif(R, "fuzz.alp");
}

/// Runs one parsed program through the pipeline. Any result (value, error
/// status, degraded value) is a pass; only a crash/abort is a failure.
/// A successful decomposition additionally goes through the lint
/// decomposition validator.
void runPipeline(Program &P, const DriverOptions &Opts,
                 const std::string *Text = nullptr) {
  CurrentPhase = "decompose";
  MachineParams M;
  Expected<ProgramDecomposition> R = decomposeOrError(P, M, Opts);
  if (R.hasValue()) {
    (void)printDecomposition(P, *R); // Exercise the printers too.
    runLintCase(P, &*R, Text);
  }
}

/// Compiles DSL text and, if it parses, lints and decomposes it — once
/// with the regular fuzz budget and once starved (the local phase rewrites
/// the program, so each run gets a fresh parse).
void runDslCase(const std::string &Text) {
  CurrentPhase = "parse";
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileDsl(Text, Diags);
  if (!Prog)
    return; // Diagnosed, not crashed: the contract held.
  runLintCase(*Prog, nullptr, &Text);
  runPipeline(*Prog, fuzzOptions(), &Text);
  CurrentPhase = "parse";
  DiagnosticEngine Diags2;
  std::optional<Program> Prog2 = compileDsl(Text, Diags2);
  if (Prog2)
    runPipeline(*Prog2, starvedOptions(), &Text);
}

//===----------------------------------------------------------------------===//
// Generator 1: random DSL text
//===----------------------------------------------------------------------===//

std::string genSubscript(Rng &R, unsigned Depth) {
  // An affine combination of up to two enclosing indices and a constant.
  std::ostringstream OS;
  unsigned Terms = 1 + R.nextBelow(2);
  for (unsigned T = 0; T != Terms; ++T) {
    if (T)
      OS << (R.nextBelow(2) ? " + " : " - ");
    int64_t C = R.nextInRange(1, 3);
    if (C != 1)
      OS << C << " * ";
    OS << "i" << R.nextBelow(Depth);
  }
  if (R.nextBelow(2))
    OS << (R.nextBelow(2) ? " + " : " - ") << R.nextInRange(0, 4);
  return OS.str();
}

std::string genDslProgram(Rng &R) {
  std::ostringstream OS;
  OS << "program fuzz;\n";
  OS << "param N = " << R.nextInRange(3, 64) << ";\n";
  unsigned NumArrays = 1 + R.nextBelow(3);
  std::vector<unsigned> Ranks;
  OS << "array ";
  for (unsigned A = 0; A != NumArrays; ++A) {
    unsigned Rank = 1 + R.nextBelow(3);
    Ranks.push_back(Rank);
    if (A)
      OS << ", ";
    OS << char('A' + A) << '[';
    for (unsigned D = 0; D != Rank; ++D)
      OS << (D ? ", " : "") << "N + 1";
    OS << ']';
  }
  OS << ";\n";

  unsigned NumNests = 1 + R.nextBelow(3);
  for (unsigned N = 0; N != NumNests; ++N) {
    unsigned Depth = 1 + R.nextBelow(3);
    for (unsigned L = 0; L != Depth; ++L) {
      for (unsigned Ind = 0; Ind != L; ++Ind)
        OS << "  ";
      OS << (R.nextBelow(2) ? "forall" : "for") << " i" << L << " = "
         << R.nextInRange(0, 2) << " to N" << " {\n";
    }
    auto Ref = [&](unsigned A) {
      std::ostringstream RS;
      RS << char('A' + A) << '[';
      for (unsigned D = 0; D != Ranks[A]; ++D)
        RS << (D ? ", " : "") << genSubscript(R, Depth);
      RS << ']';
      return RS.str();
    };
    unsigned Stmts = 1 + R.nextBelow(2);
    for (unsigned S = 0; S != Stmts; ++S) {
      for (unsigned Ind = 0; Ind != Depth; ++Ind)
        OS << "  ";
      unsigned W = R.nextBelow(NumArrays);
      OS << Ref(W) << (R.nextBelow(4) == 0 ? " += " : " = ") << "f("
         << Ref(R.nextBelow(NumArrays)) << ", " << Ref(R.nextBelow(NumArrays))
         << ") @cost(" << R.nextInRange(1, 40) << ");\n";
    }
    for (unsigned L = Depth; L != 0; --L) {
      for (unsigned Ind = 0; Ind != L - 1; ++Ind)
        OS << "  ";
      OS << "}\n";
    }
  }
  return OS.str();
}

/// Byte-mutates \p Text in place: the parser must survive garbage.
void mutate(Rng &R, std::string &Text) {
  unsigned Edits = 1 + R.nextBelow(8);
  for (unsigned E = 0; E != Edits && !Text.empty(); ++E) {
    size_t Pos = R.nextBelow(Text.size());
    switch (R.nextBelow(3)) {
    case 0:
      Text[Pos] = static_cast<char>(R.nextInRange(32, 126));
      break;
    case 1:
      Text.erase(Pos, 1);
      break;
    default:
      Text.insert(Pos, 1, static_cast<char>(R.nextInRange(32, 126)));
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Generator 2: random affine IR with adversarial coefficients
//===----------------------------------------------------------------------===//

int64_t genCoeff(Rng &R) {
  switch (R.nextBelow(8)) {
  case 0:
    return R.nextInRange(-3, 3) * (int64_t(1) << 40); // Overflow bait.
  case 1:
    return R.nextInRange(-1000000, 1000000);
  default:
    return R.nextInRange(-3, 3);
  }
}

void runIrCase(Rng &R) {
  CurrentPhase = "build-ir";
  ProgramBuilder PB("fuzz_ir");
  SymAffine N = PB.param("N", R.nextInRange(4, 512));

  unsigned NumArrays = 1 + R.nextBelow(3);
  std::vector<unsigned> Ranks;
  for (unsigned A = 0; A != NumArrays; ++A) {
    unsigned Rank = 1 + R.nextBelow(3);
    Ranks.push_back(Rank);
    std::vector<SymAffine> Dims;
    for (unsigned D = 0; D != Rank; ++D)
      Dims.push_back(N + SymAffine(1));
    PB.array(std::string(1, char('A' + A)), Dims);
  }

  unsigned NumNests = 1 + R.nextBelow(3);
  for (unsigned NI = 0; NI != NumNests; ++NI) {
    NestBuilder NB = PB.nest();
    unsigned Depth = 1 + R.nextBelow(3);
    for (unsigned L = 0; L != Depth; ++L)
      NB.loop("i" + std::to_string(L), SymAffine(R.nextInRange(0, 2)), N,
              R.nextBelow(2) ? LoopKind::Parallel : LoopKind::Sequential);
    unsigned Stmts = 1 + R.nextBelow(2);
    for (unsigned S = 0; S != Stmts; ++S) {
      NB.stmt(R.nextInRange(1, 40));
      auto Access = [&](bool IsWrite) {
        unsigned A = R.nextBelow(NumArrays);
        Matrix F(Ranks[A], Depth);
        SymVector K(Ranks[A]);
        for (unsigned RowI = 0; RowI != Ranks[A]; ++RowI) {
          for (unsigned Col = 0; Col != Depth; ++Col)
            F.at(RowI, Col) = Rational(genCoeff(R));
          K[RowI] = SymAffine(genCoeff(R));
        }
        std::string Name(1, char('A' + A));
        if (IsWrite)
          NB.write(Name, F, K);
        else
          NB.read(Name, F, K);
      };
      Access(/*IsWrite=*/true);
      unsigned Reads = R.nextBelow(3);
      for (unsigned Rd = 0; Rd != Reads; ++Rd)
        Access(/*IsWrite=*/false);
    }
  }
  Program P = PB.build();
  runLintCase(P, nullptr, nullptr);
  runPipeline(P, fuzzOptions());
}

//===----------------------------------------------------------------------===//
// Corpus replay
//===----------------------------------------------------------------------===//

int replayCorpus(const std::string &Dir, bool Verbose) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(Dir)) {
    std::fprintf(stderr, "error: corpus dir '%s' not found\n", Dir.c_str());
    return 2;
  }
  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".alp")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  for (const fs::path &F : Files) {
    if (Verbose)
      std::fprintf(stderr, "corpus: %s\n", F.c_str());
    CurrentPhase = F.c_str();
    std::ifstream In(F);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    runDslCase(Buf.str());
  }
  std::printf("corpus: %zu file(s) replayed, no crashes\n", Files.size());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 12345;
  uint64_t Iters = 1000;
  std::string Corpus;
  bool Verbose = false;
  const std::vector<FlagSpec> Table = {
      {"--seed", "S",
       "base RNG seed; case I uses seed S+I (default 12345)",
       [&](const std::string &V) { return parseU64(V, Seed); }},
      {"--iters", "N", "number of generated cases (default 1000)",
       [&](const std::string &V) { return parseU64(V, Iters); }},
      {"--corpus", "DIR",
       "replay every *.alp in DIR before the generated cases",
       [&](const std::string &V) {
         Corpus = V;
         return true;
       }},
      {"--verbose", nullptr, "print each case's seed as it runs",
       [&](const std::string &) {
         Verbose = true;
         return true;
       }},
  };
  const CliParser Cli{argv[0], "[options]",
                      "Throws randomized programs at the fail-soft pipeline "
                      "and fails on any\ncrash or hang (docs/ROBUSTNESS.md).",
                      Table};
  std::vector<std::string> Positionals;
  switch (parseCommandLine(Cli, argc, argv, Positionals)) {
  case CliAction::Proceed:
    break;
  case CliAction::ExitSuccess:
    return 0;
  case CliAction::ExitUsage:
    return 2;
  }
  if (!Positionals.empty()) {
    std::fprintf(stderr, "error: unexpected operand '%s'\n",
                 Positionals.front().c_str());
    printUsage(Cli);
    return 2;
  }

  std::set_terminate([] {
    std::fprintf(stderr, "alp_fuzz: CRASH at seed %llu (phase: %s)\n",
                 static_cast<unsigned long long>(CurrentSeed), CurrentPhase);
    std::abort();
  });

  if (!Corpus.empty()) {
    int RC = replayCorpus(Corpus, Verbose);
    if (RC != 0)
      return RC;
  }

  for (uint64_t I = 0; I != Iters; ++I) {
    CurrentSeed = Seed + I;
    Rng R(CurrentSeed);
    if (Verbose)
      std::fprintf(stderr, "case seed=%llu\n",
                   static_cast<unsigned long long>(CurrentSeed));
    switch (CurrentSeed % 3) {
    case 0: {
      std::string Text = genDslProgram(R);
      runDslCase(Text);
      break;
    }
    case 1: {
      // Same generator, then corrupted: parser robustness.
      std::string Text = genDslProgram(R);
      mutate(R, Text);
      runDslCase(Text);
      break;
    }
    default:
      runIrCase(R);
      break;
    }
    if ((I + 1) % 500 == 0)
      std::printf("fuzz: %llu/%llu cases, no crashes\n",
                  static_cast<unsigned long long>(I + 1),
                  static_cast<unsigned long long>(Iters));
  }
  std::printf("fuzz: completed %llu cases (base seed %llu), no crashes\n",
              static_cast<unsigned long long>(Iters),
              static_cast<unsigned long long>(Seed));
  return 0;
}
