//===- tools/alp_chaos.cpp - Fault-injection chaos harness ------*- C++ -*-===//
//
// alp_chaos: sweep every registered failpoint site crossed with every
// injection mode over a corpus of programs, and assert the three clauses
// of the robustness contract (docs/ROBUSTNESS.md):
//
//   never crashes — every case ends in a value or an error Status; an
//       abort / uncaught exception fails the sweep (terminate handler
//       prints the offending case x site x mode);
//   never hangs  — a watchdog thread aborts the process when a single
//       case exceeds --timeout-ms (default 30s), printing "HANG at ...";
//   never lies   — a faulted run that still succeeds must either produce
//       byte-identical output to the un-faulted baseline, or carry MORE
//       degradation-ledger entries than the baseline. Output that
//       silently diverges with no ledger entry is a failure.
//
//   alp_chaos [--corpus DIR]... [file.alp]... [--site NAME] [--mode M]
//             [--timeout-ms N] [--report FILE] [--verbose]
//
// Each case runs the full in-process pipeline: compile -> decomposeOrError
// -> print -> SPMD emission (shared + message-passing) -> communication
// plan + analysis -> a short simulation. Bounded trigger counts are only
// jobs-deterministic under --jobs 1, so the harness runs single-threaded
// task decomposition; the ctest determinism checks cover --jobs N.
//
// Exit 0 iff every (case, site, mode) combination upheld the contract.
//
//===----------------------------------------------------------------------===//

#include "alp.h"

#include "support/AtomicFile.h"
#include "support/CliFlags.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace alp;

namespace {

//===----------------------------------------------------------------------===//
// Watchdog: "never hangs"
//===----------------------------------------------------------------------===//

/// Bumped at the start of every pipeline run; the watchdog aborts when a
/// run stays on the same generation past the deadline.
std::atomic<uint64_t> CaseGen{0};
std::atomic<bool> InCase{false};
std::mutex LabelMutex;
std::string CurrentLabel; // Guarded by LabelMutex.

void setLabel(const std::string &L) {
  std::lock_guard<std::mutex> Lock(LabelMutex);
  CurrentLabel = L;
}

void startWatchdog(uint64_t TimeoutMs) {
  std::thread([TimeoutMs] {
    uint64_t LastGen = CaseGen.load();
    auto LastChange = std::chrono::steady_clock::now();
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      uint64_t Gen = CaseGen.load();
      if (Gen != LastGen || !InCase.load()) {
        LastGen = Gen;
        LastChange = std::chrono::steady_clock::now();
        continue;
      }
      auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - LastChange)
                         .count();
      if (static_cast<uint64_t>(Elapsed) > TimeoutMs) {
        std::string Label;
        {
          std::lock_guard<std::mutex> Lock(LabelMutex);
          Label = CurrentLabel;
        }
        std::fprintf(stderr, "alp_chaos: HANG at %s (> %llu ms)\n",
                     Label.c_str(),
                     static_cast<unsigned long long>(TimeoutMs));
        std::abort();
      }
    }
  }).detach();
}

//===----------------------------------------------------------------------===//
// One pipeline run
//===----------------------------------------------------------------------===//

/// Everything observable about one pipeline run. `Ok` distinguishes a
/// clean failure (parse error, error Status, or an exception absorbed at
/// the tool boundary — all allowed) from a success whose Output and
/// ledger feed the never-lies comparison.
struct RunResult {
  bool Ok = false;
  std::string Error;
  std::string Output;
  size_t Degradations = 0;
};

DriverOptions chaosOptions() {
  DriverOptions Opts;
  // Modest budget: adversarial corpus entries degrade instead of
  // grinding, and budget-exhaust injection has finite limits to poison.
  Opts.Budget.MaxFMConstraints = 2048;
  Opts.Budget.MaxEliminationSteps = 1 << 18;
  Opts.Budget.MaxSolverIterations = 1 << 14;
  Opts.Jobs = 1;
  return Opts;
}

/// Runs the whole pipeline on \p Text. Never throws: any exception that
/// reaches the harness boundary is the clean-failure path (alpc's stage
/// guards do the same and exit 3).
RunResult runPipeline(const std::string &Text) {
  RunResult RR;
  try {
    DiagnosticEngine Diags;
    std::optional<Program> Prog = compileDsl(Text, Diags);
    if (!Prog) {
      RR.Error = "parse error";
      return RR;
    }
    Program P = std::move(*Prog);

    MachineParams M;
    M.NumProcs = 4;
    Expected<ProgramDecomposition> R =
        decomposeOrError(P, M, chaosOptions());
    if (!R.hasValue()) {
      RR.Error = R.status().str();
      return RR;
    }
    ProgramDecomposition PD = R.takeValue();

    std::ostringstream Out;
    Out << printDecomposition(P, PD);
    CodegenOptions CG = CodegenOptions::forMachine(M);
    Out << emitSpmd(P, PD, CG);
    CodegenOptions MsgCG = CG;
    MsgCG.EmitMessages = true;
    Out << emitSpmd(P, PD, MsgCG);
    Out << planCommunication(P, PD, CG).report(P);
    Out << analyzeCommunication(P, PD, CG).report(P);

    NumaSimulator Sim(P, M);
    applyDecomposition(Sim, P, PD);
    SimResult SR = Sim.run(2);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "cycles=%.6g\n", SR.Cycles);
    Out << Buf;

    RR.Ok = true;
    RR.Output = Out.str();
    RR.Degradations = PD.Degradations.size();
    return RR;
  } catch (...) {
    RR.Error = statusFromCurrentException().str();
    return RR;
  }
}

//===----------------------------------------------------------------------===//
// The sweep
//===----------------------------------------------------------------------===//

struct Case {
  std::string Name;
  std::string Text;
};

/// Tiny built-in programs so the sweep is meaningful with no corpus on
/// the command line: a parallel stencil-ish nest and a two-nest program
/// that exercises joining.
const char *BuiltinCases[][2] = {
    {"builtin:stencil",
     "program chaos1;\n"
     "param N = 32;\n"
     "array A[N + 1, N + 1], B[N + 1, N + 1];\n"
     "forall i0 = 1 to N {\n"
     "  forall i1 = 1 to N {\n"
     "    A[i0, i1] = f(B[i0 - 1, i1], B[i0, i1 - 1]) @cost(8);\n"
     "  }\n"
     "}\n"},
    {"builtin:two-nest",
     "program chaos2;\n"
     "param N = 16;\n"
     "array A[N + 1], B[N + 1];\n"
     "forall i0 = 0 to N {\n"
     "  A[i0] = f(A[i0], A[i0]) @cost(4);\n"
     "}\n"
     "for i0 = 1 to N {\n"
     "  B[i0] = f(A[i0], B[i0 - 1]) @cost(4);\n"
     "}\n"},
};

/// One spec string for (site, mode): unbounded triggers for the faulting
/// modes (every hit fires — deterministic), a short bounded delay for
/// delay mode so sweeps stay fast.
std::string specFor(const std::string &Site, FailPointMode Mode) {
  std::string Spec = Site + ":" + failPointModeName(Mode);
  if (Mode == FailPointMode::Delay)
    Spec += ":2:1";
  return Spec;
}

struct Failure {
  std::string Case, Site, Mode, Why;
};

void jsonEscape(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (C == '\n')
      OS << "\\n";
    else
      OS << C;
  }
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> CorpusDirs;
  std::vector<std::string> Files;
  std::string SiteFilter, ModeFilter, ReportPath;
  uint64_t TimeoutMs = 30000;
  bool Verbose = false;

  const std::vector<FlagSpec> Table = {
      {"--corpus", "DIR",
       "also sweep every *.alp in DIR (repeatable; sorted order)",
       [&](const std::string &V) {
         CorpusDirs.push_back(V);
         return true;
       }},
      {"--site", "NAME", "restrict the sweep to one failpoint site",
       [&](const std::string &V) {
         SiteFilter = V;
         return true;
       }},
      {"--mode", "M", "restrict the sweep to one injection mode",
       [&](const std::string &V) {
         ModeFilter = V;
         return true;
       }},
      {"--timeout-ms", "N",
       "per-case watchdog deadline in milliseconds (default 30000)",
       [&](const std::string &V) { return parseU64(V, TimeoutMs); }},
      {"--report", "FILE", "write the JSON sweep report to FILE",
       [&](const std::string &V) {
         ReportPath = V;
         return true;
       }},
      {"--verbose", nullptr, "print each case x site x mode as it runs",
       [&](const std::string &) {
         Verbose = true;
         return true;
       }},
  };
  const CliParser Cli{argv[0], "[options] [file.alp]...",
                      "Sweeps every failpoint site x injection mode over a "
                      "program corpus and\nasserts the robustness contract: "
                      "never crashes, never hangs, never lies\n"
                      "(docs/ROBUSTNESS.md).",
                      Table};
  switch (parseCommandLine(Cli, argc, argv, Files)) {
  case CliAction::Proceed:
    break;
  case CliAction::ExitSuccess:
    return 0;
  case CliAction::ExitUsage:
    return 2;
  }

  // The sweep owns the registry: whatever ALP_FAILPOINTS armed does not
  // belong in the baseline.
  FailPointRegistry &Registry = FailPointRegistry::instance();
  Registry.reset();

  std::set_terminate([] {
    std::string Label;
    {
      std::lock_guard<std::mutex> Lock(LabelMutex);
      Label = CurrentLabel;
    }
    std::fprintf(stderr, "alp_chaos: CRASH at %s\n", Label.c_str());
    std::abort();
  });
  startWatchdog(TimeoutMs);

  // Assemble the corpus: built-ins, explicit files, then every *.alp in
  // each corpus dir (sorted — the sweep order is deterministic).
  std::vector<Case> Cases;
  for (const auto &B : BuiltinCases)
    Cases.push_back({B[0], B[1]});
  namespace fs = std::filesystem;
  for (const std::string &Dir : CorpusDirs) {
    if (!fs::is_directory(Dir)) {
      std::fprintf(stderr, "error: corpus dir '%s' not found\n",
                   Dir.c_str());
      return 2;
    }
    std::vector<fs::path> Found;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".alp")
        Found.push_back(E.path());
    std::sort(Found.begin(), Found.end());
    for (const fs::path &F : Found)
      Files.push_back(F.string());
  }
  for (const std::string &F : Files) {
    std::ifstream In(F);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", F.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Cases.push_back({F, Buf.str()});
  }

  const std::vector<std::string> Sites = Registry.names();
  std::vector<FailPointMode> Modes;
  for (FailPointMode M : allFailPointModes()) {
    if (!ModeFilter.empty() && ModeFilter != failPointModeName(M))
      continue;
    Modes.push_back(M);
  }
  if (!ModeFilter.empty() && Modes.empty()) {
    std::fprintf(stderr, "error: unknown mode '%s'\n", ModeFilter.c_str());
    return 2;
  }
  if (!SiteFilter.empty() && !Registry.find(SiteFilter)) {
    std::fprintf(stderr, "error: unknown site '%s'\n", SiteFilter.c_str());
    return 2;
  }

  std::vector<Failure> Failures;
  uint64_t Runs = 0;

  auto TimedRun = [&](const std::string &Label,
                      const std::string &Text) -> RunResult {
    setLabel(Label);
    CaseGen.fetch_add(1);
    InCase.store(true);
    RunResult RR = runPipeline(Text);
    InCase.store(false);
    ++Runs;
    return RR;
  };

  for (const Case &C : Cases) {
    RunResult Baseline = TimedRun(C.Name + " [baseline]", C.Text);
    if (Verbose)
      std::fprintf(stderr, "case %s: baseline %s\n", C.Name.c_str(),
                   Baseline.Ok ? "ok" : Baseline.Error.c_str());

    for (const std::string &Site : Sites) {
      if (!SiteFilter.empty() && Site != SiteFilter)
        continue;
      for (FailPointMode Mode : Modes) {
        const std::string Spec = specFor(Site, Mode);
        const std::string Label = C.Name + " [" + Spec + "]";
        Registry.reset();
        if (Status S = Registry.configure(Spec); !S.isOk()) {
          Failures.push_back({C.Name, Site, failPointModeName(Mode),
                              "configure failed: " + S.str()});
          continue;
        }
        RunResult Faulted = TimedRun(Label, C.Text);
        Registry.reset();

        // Never lies: a faulted success must match the baseline byte for
        // byte or admit the divergence in the degradation ledger.
        if (Faulted.Ok && Baseline.Ok &&
            Faulted.Output != Baseline.Output &&
            Faulted.Degradations <= Baseline.Degradations)
          Failures.push_back({C.Name, Site, failPointModeName(Mode),
                              "silent divergence: output changed with no "
                              "new degradation-ledger entry"});
        // Delay injections do not fault: the result must be identical.
        else if (Mode == FailPointMode::Delay && Baseline.Ok &&
                 (!Faulted.Ok || Faulted.Output != Baseline.Output))
          Failures.push_back({C.Name, Site, failPointModeName(Mode),
                              "delay injection changed the result: " +
                                  (Faulted.Ok ? "output differs"
                                              : Faulted.Error)});
        else if (Verbose)
          std::fprintf(stderr, "  %-44s %s\n", Spec.c_str(),
                       !Faulted.Ok ? "clean error"
                       : Faulted.Output == Baseline.Output
                           ? "identical"
                           : "degraded");
      }
    }
  }
  setLabel("report");

  if (!ReportPath.empty()) {
    std::ostringstream OS;
    OS << "{\n  \"runs\": " << Runs
       << ",\n  \"cases\": " << Cases.size()
       << ",\n  \"sites\": " << Sites.size()
       << ",\n  \"failures\": [";
    for (size_t I = 0; I != Failures.size(); ++I) {
      OS << (I ? ",\n    " : "\n    ") << "{\"case\": \"";
      jsonEscape(OS, Failures[I].Case);
      OS << "\", \"site\": \"" << Failures[I].Site << "\", \"mode\": \""
         << Failures[I].Mode << "\", \"why\": \"";
      jsonEscape(OS, Failures[I].Why);
      OS << "\"}";
    }
    OS << (Failures.empty() ? "]" : "\n  ]") << "\n}\n";
    if (Status S = writeFileAtomic(ReportPath, OS.str()); !S.isOk())
      std::fprintf(stderr, "error: cannot write report: %s\n",
                   S.str().c_str());
  }

  for (const Failure &F : Failures)
    std::fprintf(stderr, "alp_chaos: FAIL %s [%s:%s]: %s\n",
                 F.Case.c_str(), F.Site.c_str(), F.Mode.c_str(),
                 F.Why.c_str());
  std::printf("chaos: %llu run(s) over %zu case(s) x %zu site(s) x %zu "
              "mode(s): %zu failure(s)\n",
              static_cast<unsigned long long>(Runs), Cases.size(),
              Sites.size(), Modes.size(), Failures.size());
  return Failures.empty() ? 0 : 1;
}
