//===- bench/fig7_conduct_speedup.cpp - Figure 7 reproduction --------------===//
//
// Reproduces Figure 7 of the paper: speedup over the best sequential
// version of the SIMPLE heat-conduction routine `conduct` on a DASH-like
// NUMA machine (8 clusters x 4 processors), for the four decomposition
// strategies the paper compares:
//
//   no optimization     SGI Power Fortran style: each nest parallelized
//                       over its own outermost parallel loop, OS page
//                       placement misaligned (blocks of columns).
//   static              Best single data decomposition with only forall
//                       parallelism: blocks of rows; the column sweep runs
//                       parallel with remote accesses.
//   dynamic, no pipe    The compiler with blocking disabled: the layout is
//                       reorganized (transposed) around the column sweep.
//   dynamic + pipe      The compiler's full output: rows stay put, the
//                       column sweep runs software-pipelined over column
//                       blocks (block size 4).
//
// The absolute cycle counts come from a simulator, not the authors' DASH
// hardware, so the numbers differ from the paper; the *shape* (ordering
// and rough ratios of the four curves) is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Driver.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"

#include <cstdlib>
#include <vector>

using namespace alp;
using namespace alp::bench;

namespace {

MachineParams dashMachine() {
  MachineParams M;
  M.NumProcs = 32;
  M.ProcsPerCluster = 4;
  M.CacheCycles = 1.0;
  M.LocalCycles = 29.0;
  M.RemoteCycles = 120.0;
  return M;
}

/// Finds the loop positions used by the hand-written strategies.
struct ConductNests {
  // Nest ids in program order: prep1, prep2, row sweep, column sweep,
  // update.
  unsigned RowSweep = 2;
  unsigned ColSweep = 3;
};

/// Strategy 1: "no optimization". Placement lands in blocks of columns
/// (the paper's Fortran column-major first-touch behaviour); every nest is
/// parallelized over its outermost parallel loop.
double runNoOpt(const Program &P, const MachineParams &M, unsigned Procs) {
  NumaSimulator Sim(P, M);
  for (unsigned A = 0; A != P.Arrays.size(); ++A)
    Sim.setStaticPlacement(A, ArrayPlacement::blockedDim(1));
  ConductNests CN;
  for (const LoopNest &Nest : P.Nests) {
    NestSchedule S;
    S.ExecMode = NestSchedule::Mode::Forall;
    S.DistLoop = Nest.firstParallelLoop();
    Sim.setSchedule(Nest.Id, S);
  }
  (void)CN;
  return Sim.run(Procs).Cycles;
}

/// Strategy 2: best static decomposition with forall parallelism only:
/// rows everywhere; the column sweep stays parallel (over columns) but its
/// accesses are remote.
double runStatic(const Program &P, const MachineParams &M, unsigned Procs) {
  NumaSimulator Sim(P, M);
  for (unsigned A = 0; A != P.Arrays.size(); ++A)
    Sim.setStaticPlacement(A, ArrayPlacement::blockedDim(0));
  for (const LoopNest &Nest : P.Nests) {
    NestSchedule S;
    S.ExecMode = NestSchedule::Mode::Forall;
    S.DistLoop = Nest.firstParallelLoop();
    Sim.setSchedule(Nest.Id, S);
  }
  return Sim.run(Procs).Cycles;
}

/// Strategies 3 and 4 come from the compiler itself.
double runCompiler(Program P, const MachineParams &M, unsigned Procs,
                   bool EnableBlocking) {
  DriverOptions Opts;
  Opts.EnableBlocking = EnableBlocking;
  ProgramDecomposition PD = decomposeOrDie(P, M, Opts);
  NumaSimulator Sim(P, M);
  applyDecomposition(Sim, P, PD);
  return Sim.run(Procs).Cycles;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = 511, T = 5;
  if (argc > 1)
    N = std::atoll(argv[1]);
  if (argc > 2)
    T = std::atoll(argv[2]);

  Program P = compileOrDie(conductSource(N, T));
  MachineParams M = dashMachine();

  printHeader("Figure 7: speedup over sequential for conduct "
              "(heat conduction, ADI)");
  std::printf("problem %lldx%lld double, %lld time steps, block size %lld, "
              "8 clusters x 4 procs\n",
              (long long)(N + 1), (long long)(N + 1), (long long)T,
              (long long)M.BlockSize);
  std::printf("(simulated DASH: cache 1cy, local 29cy, remote 120cy)\n\n");

  // Sequential baseline (same for all strategies).
  NumaSimulator SeqSim(P, M);
  for (unsigned A = 0; A != P.Arrays.size(); ++A)
    SeqSim.setStaticPlacement(A, ArrayPlacement::blockedDim(0));
  double Seq = SeqSim.sequentialCycles();

  std::vector<unsigned> ProcCounts = {1, 2, 4, 8, 16, 32};
  std::printf("%6s %12s %12s %16s %16s\n", "procs", "no-opt", "static",
              "dynamic no-pipe", "dynamic + pipe");
  double Last[4] = {0, 0, 0, 0};
  for (unsigned Procs : ProcCounts) {
    double S1 = Seq / runNoOpt(P, M, Procs);
    double S2 = Seq / runStatic(P, M, Procs);
    double S3 = Seq / runCompiler(P, M, Procs, /*EnableBlocking=*/false);
    double S4 = Seq / runCompiler(P, M, Procs, /*EnableBlocking=*/true);
    std::printf("%6u %12.2f %12.2f %16.2f %16.2f\n", Procs, S1, S2, S3, S4);
    Last[0] = S1;
    Last[1] = S2;
    Last[2] = S3;
    Last[3] = S4;
  }

  std::printf("\nshape checks (paper: no-opt < static < dynamic < "
              "dynamic+pipe at 32 procs):\n");
  auto Check = [](bool Ok, const char *What) {
    std::printf("  [%s] %s\n", Ok ? "ok" : "MISMATCH", What);
    return Ok;
  };
  bool AllOk = true;
  AllOk &= Check(Last[0] < Last[1], "static beats no optimization");
  AllOk &= Check(Last[1] < Last[2], "dynamic beats static");
  AllOk &= Check(Last[2] < Last[3], "pipelining beats reorganization");
  AllOk &= Check(Last[3] / Last[1] > 1.5,
                 "dynamic+pipe at least 1.5x the static speedup");
  AllOk &= Check(Last[0] < 8.0, "no-opt saturates well below linear");
  return AllOk ? 0 : 1;
}
