# Benchmark binaries land in ${CMAKE_BINARY_DIR}/bench so that
# `for b in build/bench/*; do $b; done` runs exactly the benchmarks.
function(alp_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE ${ARGN})
endfunction()

alp_add_bench(fig7_conduct_speedup alp_machine alp_frontend)
alp_add_bench(fig1_static_example alp_codegen alp_frontend)
alp_add_bench(fig3_wavefront alp_codegen alp_frontend)
alp_add_bench(fig5_dynamic_example alp_machine alp_frontend)
alp_add_bench(ablation_constraints alp_core alp_frontend)
alp_add_bench(ablation_join_order alp_machine alp_frontend)
alp_add_bench(ablation_optimizations alp_machine alp_frontend)
alp_add_bench(perf_partition alp_machine alp_frontend)
alp_add_bench(perf_dependence alp_transform alp_frontend)
alp_add_bench(ablation_blocksize alp_machine alp_frontend)
alp_add_bench(perf_simulator alp_machine alp_frontend benchmark::benchmark)
alp_add_bench(ablation_fusion alp_machine alp_frontend)
alp_add_bench(ext_multicomputer alp_codegen alp_frontend)
alp_add_bench(perf_comm alp_codegen alp_frontend)
alp_add_bench(perf_service alp_service)
