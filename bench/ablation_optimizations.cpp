//===- bench/ablation_optimizations.cpp - Sec. 7 optimization ablation -----===//
//
// Ablation C: the two Sec. 7 optimizations on and off.
//
//  * Replication (7.2): a stencil-like kernel reading a shared coefficient
//    vector. Without replication the read-only vector serializes one loop
//    dimension; with it both dimensions stay parallel and the simulator
//    sees only local traffic.
//
//  * Idle-processor projection (7.1): a program whose reduction nest uses
//    fewer processor dimensions than the elementwise nest; projection
//    shrinks the virtual grid so no processor is idle in any nest.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Driver.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"

#include <cstdio>

using namespace alp;
using namespace alp::bench;

int main() {
  MachineParams M;

  printHeader("Ablation C1: read-only replication (Sec. 7.2)");
  const char *ReplSrc = R"(
program repl;
param N = 511;
array Coef[N + 1], U[N + 1, N + 1];
forall i = 0 to N {
  forall j = 0 to N {
    U[i, j] = f(U[i, j], Coef[j]) @cost(10);
  }
}
)";
  unsigned ParWith = 0, ParWithout = 0;
  {
    Program P = compileOrDie(ReplSrc);
    DriverOptions Opts;
    ProgramDecomposition PD = decomposeOrDie(P, M, Opts);
    ParWith = PD.compOf(0).parallelismDegree();
    std::printf("replication ON : parallelism %u, Coef replicated along "
                "%u dim(s)\n",
                ParWith,
                PD.ReplicatedDims.count(P.arrayId("Coef"))
                    ? PD.ReplicatedDims.at(P.arrayId("Coef"))
                    : 0);
  }
  {
    Program P = compileOrDie(ReplSrc);
    DriverOptions Opts;
    Opts.EnableReplication = false;
    ProgramDecomposition PD = decomposeOrDie(P, M, Opts);
    ParWithout = PD.compOf(0).parallelismDegree();
    std::printf("replication OFF: parallelism %u (the shared read of "
                "Coef[j] serializes a dimension)\n",
                ParWithout);
  }

  printHeader("Ablation C2: idle-processor projection (Sec. 7.1)");
  const char *IdleSrc = R"(
program idle;
param N = 255;
array A[N + 1, N + 1], S[N + 1];
forall i = 0 to N {
  forall j = 0 to N {
    A[i, j] = f(A[i, j]) @cost(10);
  }
}
forall i = 0 to N {
  for j = 0 to N {
    S[i] = g(S[i], A[i, j]) @cost(10);
  }
}
)";
  unsigned DimsWith = 0, DimsWithout = 0;
  {
    Program P = compileOrDie(IdleSrc);
    DriverOptions Opts;
    ProgramDecomposition PD = decomposeOrDie(P, M, Opts);
    DimsWith = PD.VirtualDims;
    unsigned IdleRows = 0;
    for (const auto &[NestId, CD] : PD.Comp) {
      (void)NestId;
      for (unsigned R = 0; R != CD.C.rows(); ++R)
        if (CD.C.row(R).isZero())
          ++IdleRows;
    }
    std::printf("projection ON : virtual dims %u, idle C rows across "
                "nests: %u\n",
                DimsWith, IdleRows);
  }
  {
    Program P = compileOrDie(IdleSrc);
    DriverOptions Opts;
    Opts.EnableIdleProjection = false;
    ProgramDecomposition PD = decomposeOrDie(P, M, Opts);
    DimsWithout = PD.VirtualDims;
    unsigned IdleRows = 0;
    for (const auto &[NestId, CD] : PD.Comp) {
      (void)NestId;
      for (unsigned R = 0; R != CD.C.rows(); ++R)
        if (CD.C.row(R).isZero())
          ++IdleRows;
    }
    std::printf("projection OFF: virtual dims %u, idle C rows across "
                "nests: %u\n",
                DimsWithout, IdleRows);
  }

  bool Joined = DimsWith < DimsWithout || DimsWithout == DimsWith;
  bool Ok = ParWith == 2 && ParWithout == 1 && Joined;
  std::printf("\n[%s] Sec. 7 optimizations behave as described\n",
              Ok ? "ok" : "MISMATCH");
  return Ok ? 0 : 1;
}
