//===- bench/ext_multicomputer.cpp - Touchstone-style extension ------------===//
//
// Extension experiment (not a paper figure): the paper's introduction
// argues that on message-passing multicomputers (Intel Touchstone) the
// "long message-passing overhead ... makes minimizing communication
// essential". We re-run the Figure 7 strategy comparison on a simulated
// multicomputer where every fine-grained remote access is a message
// (software overhead ~3000 cycles) while bulk transfers (reorganizations,
// pipelined block boundaries) amortize the overhead.
//
// Expected shape: the same ordering as Figure 7, but with the gap between
// communication-oblivious and communication-minimizing strategies far
// wider than on the shared-address-space DASH — precisely the paper's
// motivation for one algorithm serving both machine classes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/CommPlan.h"
#include "core/Driver.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"

#include <cstdio>
#include <vector>

using namespace alp;
using namespace alp::bench;

namespace {

MachineParams touchstoneMachine() {
  MachineParams M;
  M.NumProcs = 32;
  M.ProcsPerCluster = 1; // Every node has private memory.
  M.MessagePassing = true;
  M.MessageOverheadCycles = 3000.0;
  M.BulkLinesPerMessage = 64.0;
  return M;
}

double runNaive(const Program &P, const MachineParams &M, unsigned Procs) {
  NumaSimulator Sim(P, M);
  for (unsigned A = 0; A != P.Arrays.size(); ++A)
    Sim.setStaticPlacement(A, ArrayPlacement::blockedDim(1));
  for (const LoopNest &Nest : P.Nests) {
    NestSchedule S;
    S.ExecMode = NestSchedule::Mode::Forall;
    S.DistLoop = Nest.firstParallelLoop();
    Sim.setSchedule(Nest.Id, S);
  }
  return Sim.run(Procs).Cycles;
}

double runCompiler(Program P, const MachineParams &M, unsigned Procs,
                   bool EnableBlocking) {
  DriverOptions Opts;
  Opts.EnableBlocking = EnableBlocking;
  ProgramDecomposition PD = decomposeOrDie(P, M, Opts);
  NumaSimulator Sim(P, M);
  if (M.MessagePassing)
    // The multicomputer backend would execute the planned bulk schedule,
    // so that is what the measurement costs.
    Sim.setCommSchedule(
        planCommunication(P, PD, CodegenOptions::forMachine(M)).schedule());
  applyDecomposition(Sim, P, PD);
  return Sim.run(Procs).Cycles;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = 255, T = 3;
  if (argc > 1)
    N = std::atoll(argv[1]);
  Program P = compileOrDie(conductSource(N, T));
  MachineParams M = touchstoneMachine();

  printHeader("Extension: conduct on a message-passing multicomputer");
  std::printf("32 nodes, per-message software overhead %.0f cycles, bulk "
              "messages of %.0f lines\n\n",
              M.MessageOverheadCycles, M.BulkLinesPerMessage);

  NumaSimulator SeqSim(P, M);
  for (unsigned A = 0; A != P.Arrays.size(); ++A)
    SeqSim.setStaticPlacement(A, ArrayPlacement::blockedDim(0));
  double Seq = SeqSim.sequentialCycles();

  std::printf("%6s %16s %16s %16s\n", "procs", "naive (misaligned)",
              "dynamic no-pipe", "dynamic + pipe");
  double LastNaive = 0, LastNoPipe = 0, LastPipe = 0;
  for (unsigned Procs : {4u, 8u, 16u, 32u}) {
    LastNaive = Seq / runNaive(P, M, Procs);
    LastNoPipe = Seq / runCompiler(P, M, Procs, false);
    LastPipe = Seq / runCompiler(P, M, Procs, true);
    std::printf("%6u %16.2f %16.2f %16.2f\n", Procs, LastNaive, LastNoPipe,
                LastPipe);
  }

  // Compare the gap against the DASH-like machine.
  MachineParams Dash;
  Dash.NumProcs = 32;
  NumaSimulator DashSeq(P, Dash);
  for (unsigned A = 0; A != P.Arrays.size(); ++A)
    DashSeq.setStaticPlacement(A, ArrayPlacement::blockedDim(0));
  double DashSeqCy = DashSeq.sequentialCycles();
  double DashNaive = DashSeqCy / runNaive(P, Dash, 32);
  double DashPipe = DashSeqCy / runCompiler(P, Dash, 32, true);

  double MsgGap = LastPipe / LastNaive;
  double DashGap = DashPipe / DashNaive;
  std::printf("\ncompiler-vs-naive gap at 32 procs: multicomputer %.1fx, "
              "DASH-like %.1fx\n",
              MsgGap, DashGap);
  bool Ok = LastPipe > LastNoPipe && LastNoPipe > LastNaive &&
            MsgGap > DashGap && LastNaive < 2.0;
  std::printf("[%s] message passing widens the gap (paper Sec. 1: "
              "minimizing communication is essential there)\n",
              Ok ? "ok" : "MISMATCH");
  return Ok ? 0 : 1;
}
