//===- bench/perf_comm.cpp - Planned vs fine-grained messaging -------------===//
//
// Performance benchmark P3: what the communication planner buys on a
// message-passing multicomputer. For each kernel the same decomposition
// runs twice on the simulated Touchstone-like machine:
//
//   unplanned   every remote cache line is a fine-grained message paying
//               the full per-message software overhead, and
//   planned     the CommPlan schedule is installed (the schedule
//               --emit=spmd renders): boundary layers move as aggregated
//               bulk messages, broadcasts are hoisted, block-boundary
//               sends overlap the next block's compute.
//
// Invariants (exit nonzero on violation): the planned schedule sends at
// least 5x fewer messages AND strictly fewer total cycles on every
// kernel. Results go to BENCH_comm.json (stats schema v1, same shape as
// the other perf harnesses).
//
//   perf_comm [--smoke] [--out <file>]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/CommPlan.h"
#include "core/Driver.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"
#include "support/StatsReport.h"
#include "support/Trace.h"

#include <cstring>
#include <string>
#include <vector>

using namespace alp;
using namespace alp::bench;

namespace {

MachineParams touchstoneMachine() {
  MachineParams M;
  M.NumProcs = 32;
  M.ProcsPerCluster = 1; // Every node has private memory.
  M.MessagePassing = true;
  M.MessageOverheadCycles = 3000.0;
  M.BulkLinesPerMessage = 64.0;
  return M;
}

struct KernelResult {
  std::string Name;
  SimResult Unplanned;
  SimResult Planned;
  CommPlanStats Plan;
  double MessageRatio = 0.0;
  bool Ok = false;
};

KernelResult runKernel(const std::string &Name, const std::string &Src,
                       unsigned Procs, TraceContext Observe) {
  Program P = compileOrDie(Src);
  MachineParams M = touchstoneMachine();
  ProgramDecomposition PD = decomposeOrDie(P, M);

  KernelResult R;
  R.Name = Name;

  // Fine-grained baseline: same decomposition, no schedule installed.
  {
    NumaSimulator Sim(P, M);
    applyDecomposition(Sim, P, PD);
    R.Unplanned = Sim.run(Procs);
  }
  // Planned: install the CommPlan schedule the backend would execute.
  {
    CodegenOptions CG = CodegenOptions::forMachine(M);
    CG.Observe = Observe;
    CommPlan Plan = planCommunication(P, PD, CG);
    R.Plan = Plan.Stats;
    NumaSimulator Sim(P, M);
    Sim.setCommSchedule(Plan.schedule());
    applyDecomposition(Sim, P, PD);
    R.Planned = Sim.run(Procs);
  }
  R.MessageRatio = R.Planned.MessagesSent > 0
                       ? R.Unplanned.MessagesSent / R.Planned.MessagesSent
                       : 0.0;
  R.Ok = R.MessageRatio >= 5.0 && R.Planned.Cycles < R.Unplanned.Cycles;
  return R;
}

std::string simJson(const SimResult &R) {
  char Buf[200];
  std::snprintf(Buf, sizeof(Buf),
                "\"cycles\": %.6g, \"messages\": %.6g, \"reorg_cycles\": "
                "%.6g, \"remote_lines\": %.6g",
                R.Cycles, R.MessagesSent, R.ReorgCycles, R.RemoteLineFetches);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  const char *OutPath = "BENCH_comm.json";
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>]\n", argv[0]);
      return 2;
    }
  }
  int64_t N = Smoke ? 127 : 255;
  unsigned Procs = 32;

  printHeader("P3: planned message schedule vs fine-grained messages");
  std::printf("Touchstone-like machine: %u nodes, %.0f-cycle message "
              "overhead, bulk messages of %.0f lines\n\n",
              Procs, touchstoneMachine().MessageOverheadCycles,
              touchstoneMachine().BulkLinesPerMessage);

  Tracer Trace;
  MetricsRegistry Metrics;
  TraceContext Observe{&Trace, &Metrics};

  std::vector<KernelResult> Results;
  Results.push_back(
      runKernel("jacobi", jacobiSource(N, 3), Procs, Observe));
  Results.push_back(runKernel("stencil", stencilSource(N), Procs, Observe));

  bool AllOk = true;
  std::printf("%-8s %14s %14s %8s %14s %14s  %s\n", "kernel", "msgs(fine)",
              "msgs(plan)", "ratio", "cycles(fine)", "cycles(plan)", "ok");
  for (const KernelResult &R : Results) {
    std::printf("%-8s %14.3g %14.3g %7.1fx %14.3g %14.3g  [%s]\n",
                R.Name.c_str(), R.Unplanned.MessagesSent,
                R.Planned.MessagesSent, R.MessageRatio, R.Unplanned.Cycles,
                R.Planned.Cycles, R.Ok ? "ok" : "MISMATCH");
    AllOk = AllOk && R.Ok;
  }
  std::printf("\n[%s] planned schedule sends >= 5x fewer messages and "
              "strictly fewer cycles on every kernel\n",
              AllOk ? "ok" : "MISMATCH");

  ArtifactWriter Out;
  Out.printf("%s", StatsReport::headerOpen("bench_comm").c_str());
  Out.printf("  \"benchmark\": \"comm\",\n");
  Out.printf("  \"smoke\": %s,\n", Smoke ? "true" : "false");
  Out.printf("  \"procs\": %u,\n", Procs);
  Out.printf("  \"kernels\": [\n");
  for (size_t I = 0; I != Results.size(); ++I) {
    const KernelResult &R = Results[I];
    Out.printf(
        "    {\"kernel\": \"%s\", \"unplanned\": {%s}, \"planned\": {%s},\n"
        "     \"message_ratio\": %.3f, \"cycles_lower\": %s,\n"
        "     \"plan\": {\"messages\": %llu, \"elements\": %llu, "
        "\"aggregated\": %llu, \"hoisted\": %llu, \"eliminated\": %llu, "
        "\"fine_grained_ops\": %llu}}%s\n",
        R.Name.c_str(), simJson(R.Unplanned).c_str(),
        simJson(R.Planned).c_str(), R.MessageRatio,
        R.Planned.Cycles < R.Unplanned.Cycles ? "true" : "false",
        static_cast<unsigned long long>(R.Plan.Messages),
        static_cast<unsigned long long>(R.Plan.Elements),
        static_cast<unsigned long long>(R.Plan.Aggregated),
        static_cast<unsigned long long>(R.Plan.Hoisted),
        static_cast<unsigned long long>(R.Plan.Eliminated),
        static_cast<unsigned long long>(R.Plan.FineGrainedOps),
        I + 1 == Results.size() ? "" : ",");
  }
  Out.printf("  ],\n");
  Out.printf("  \"invariants_hold\": %s,\n", AllOk ? "true" : "false");
  // The comm.* counters and planner spans in the versioned stats schema.
  {
    std::string Stats = renderStatsJson(&Metrics, &Trace);
    while (!Stats.empty() && Stats.back() == '\n')
      Stats.pop_back();
    Out.printf("  \"stats\": %s\n", Stats.c_str());
  }
  Out.printf("}\n");
  if (!Out.publish(OutPath))
    return 1;
  std::printf("wrote %s\n", OutPath);

  return AllOk ? 0 : 1;
}
