//===- bench/fig5_dynamic_example.cpp - Figure 5 reproduction --------------===//
//
// Regenerates Figure 5: the communication graph of the branchy four-nest
// program (edge weights proportional to 100/75/25), the components the
// greedy dynamic algorithm forms ({1, 2, 4} and {3} in the paper's
// 1-based numbering), and the final decompositions per component.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Driver.h"

#include <cstdio>

using namespace alp;
using namespace alp::bench;

int main() {
  Program P = compileOrDie(fig5Source());
  MachineParams M;
  CostModel CM(P, M);

  printHeader("Figure 5(a): the communication graph");
  std::vector<CommEdge> Edges = buildCommGraph(P, CM);
  double Unit = 0.0;
  for (const CommEdge &E : Edges)
    Unit = std::max(Unit, E.Weight);
  std::printf("%-10s %-14s %-22s\n", "edge", "weight", "(paper units, "
                                                       "max=100)");
  for (const CommEdge &E : Edges)
    std::printf("(%u, %u)     %12.0f   %6.1f\n", E.U + 1, E.V + 1, E.Weight,
                100.0 * E.Weight / Unit);
  std::printf("(paper: (1,4)=100, (1,2)=75, (2,4)=75, (1,3)=25, "
              "(3,4)=25)\n\n");

  printHeader("Figure 5(b): components from the greedy join");
  // The paper's example assumes tiling is impractical for these loops.
  DriverOptions Opts;
  Opts.EnableBlocking = false;
  Program Q = P;
  ProgramDecomposition PD = decomposeOrDie(Q, M, Opts);
  for (unsigned NestId : Q.nestsInOrder())
    std::printf("  nest %u -> component %u\n", NestId + 1,
                PD.ComponentOf.at(NestId));
  std::printf("(paper: {1, 2, 4} and {3})\n\n");

  printHeader("Figure 5(c): final decompositions");
  std::printf("%s\n", printDecomposition(Q, PD).c_str());

  unsigned X = Q.arrayId("X"), Y = Q.arrayId("Y");
  auto Canon = [](Matrix M) {
    for (unsigned C = 0; C != M.cols(); ++C) {
      if (M.at(0, C).isZero())
        continue;
      return M.at(0, C).isNegative() ? M.scaled(Rational(-1)) : M;
    }
    return M;
  };
  bool Ok = PD.ComponentOf.at(0) == PD.ComponentOf.at(1) &&
            PD.ComponentOf.at(0) == PD.ComponentOf.at(3) &&
            PD.ComponentOf.at(0) != PD.ComponentOf.at(2) &&
            Canon(PD.dataAt(X, 0).D) == Matrix({{1, 0}}) &&
            Canon(PD.dataAt(Y, 0).D) == Matrix({{1, 0}}) &&
            Canon(PD.dataAt(Y, 2).D) == Matrix({{0, 1}}) &&
            Canon(PD.compOf(2).C) == Matrix({{1, 0}}) &&
            !PD.isStatic();
  std::printf("[%s] Figure 5 reproduction (d_X,Y = [1 0] in the big "
              "component, d_Y = [0 1] / c_3 = [1 0] in the small one)\n",
              Ok ? "ok" : "MISMATCH");
  return Ok ? 0 : 1;
}
