//===- bench/perf_batch.cpp - Warm-arena batch vs single-shot --------------===//
//
// Performance benchmark P5: throughput of the BatchSession API
// (service/Batch.h) over a generated corpus versus the same programs
// compiled as N independent single-shot sessions — the workload `alpc
// --batch <dir>` replaces N alpc invocations with.
//
//   perf_batch [--smoke] [--out <file>] [--programs N] [--seed S]
//              [--alpc <path>]
//
// The corpus comes from the alp_gen generator (gen/Generator.h), so the
// program mix spans the paper's shape space deterministically.
//
// The headline (gated) comparison is at the tool level, because that is
// what `alpc --batch` replaces: N separate alpc invocations — process
// spawn, cold caches, cold arenas per program — versus one `alpc
// --batch` run over the same files. The gate requires the batch run to
// clear the N-invocations throughput.
//
// Three in-process passes ride along for the library-level detail
// (reported, not gated — on a single-core box they bound each other):
//
//   single-shot: the alpd single-COMPILE path per program, minus the
//     socket — parse for the canonical key, then a supervised captured
//     session on a fresh per-request worker pool;
//   batch(1):    BatchSession with Jobs=1 — the same serial compile
//     order on one persistent warm worker;
//   batch(hw):   BatchSession at hardware width — request-level
//     parallelism on warm workers, the deployment configuration.
//
// Every batch item's bytes are cross-checked identical to its
// single-shot run ("identical"); the harness gates on that too. Results
// land in BENCH_batch.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Generator.h"
#include "service/Batch.h"
#include "service/DecompositionCache.h"
#include "support/StatsReport.h"
#include "support/Supervisor.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>

#include <unistd.h>

using namespace alp;
using namespace alp::bench;

namespace {

CompileRequest requestFor(const gen::GeneratedProgram &G) {
  CompileRequest Req;
  Req.FileName = G.FileName;
  Req.Source = G.Source;
  Req.DoSpmd = true;
  return Req;
}

/// Shell-quotes \p S for std::system.
std::string shellQuote(const std::string &S) {
  std::string Q = "'";
  for (char C : S)
    Q += C == '\'' ? std::string("'\\''") : std::string(1, C);
  Q += "'";
  return Q;
}

/// Runs \p Cmd with both streams discarded; returns the exit status or
/// -1 on spawn failure.
int runQuiet(const std::string &Cmd) {
  int Rc = std::system((Cmd + " >/dev/null 2>&1").c_str());
  if (Rc < 0)
    return -1;
  return WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  const char *OutPath = "BENCH_batch.json";
  size_t Programs = 0;
  uint64_t Seed = 42;
  std::string AlpcPath;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else if (!std::strcmp(argv[I], "--programs") && I + 1 < argc)
      Programs = static_cast<size_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--alpc") && I + 1 < argc)
      AlpcPath = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out <file>] [--programs N] "
                   "[--seed S] [--alpc <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  namespace fs = std::filesystem;
  if (AlpcPath.empty()) {
    // perf_batch lands in <build>/bench; alpc is its tools/ sibling.
    std::error_code EC;
    fs::path Self = fs::canonical(argv[0], EC);
    if (!EC)
      AlpcPath = (Self.parent_path().parent_path() / "tools" / "alpc")
                     .string();
  }
  if (AlpcPath.empty() || !fs::exists(AlpcPath)) {
    std::fprintf(stderr,
                 "error: cannot find the alpc binary (tried '%s'); pass "
                 "--alpc <path>\n",
                 AlpcPath.c_str());
    return 2;
  }
  if (!Programs)
    Programs = Smoke ? 12 : 48;
  const unsigned Reps = Smoke ? 3 : 7; // odd, for a true median rep

  std::vector<CompileRequest> Items;
  Items.reserve(Programs);
  for (size_t I = 0; I != Programs; ++I)
    Items.push_back(requestFor(gen::generateProgram(Seed, I)));

  printHeader("P5: warm-arena batch vs N single-shot compiles");

  // Single-shot baseline: the alpd COMPILE path per program — canonical
  // keying (with the parse handed on via CompileRequest::PreParsed, as
  // the server does), a supervised captured session, and a fresh
  // per-request worker pool with cold arenas. Also the reference copy of
  // every program's bytes. The batch sessions persist across reps, so
  // their pools (and worker arenas) stay warm; one untimed warm-up rep
  // fills them.
  std::vector<CaptureResult> Reference(Programs);
  auto SingleRep = [&] {
    for (size_t I = 0; I != Programs; ++I) {
      CompileRequest Req = Items[I];
      auto Diags = std::make_shared<DiagnosticEngine>();
      std::optional<Program> P = compileDsl(Req.Source, *Diags);
      if (P) {
        RequestKey K = canonicalRequestKey(Req, *P);
        (void)K; // the un-batched service would look this up
        Req.PreParsed = std::make_shared<const Program>(std::move(*P));
        Req.PreParsedDiags = std::move(Diags);
      }
      SupervisorOptions SOpts;
      SOpts.MaxAttempts = 1;
      Supervisor Sup(nullptr, nullptr, SOpts);
      Sup.run(1, [&](size_t, ResourceBudget *) -> Status {
        Reference[I] = runSessionCaptured(Req);
        return Status::ok();
      });
    }
  };
  BatchOptions SerialOpts;
  SerialOpts.Jobs = 1;
  BatchSession SerialSession(SerialOpts);
  std::vector<BatchItemResult> SerialRes;
  auto SerialRep = [&] { SerialRes = SerialSession.run(Items); };
  BatchOptions WideOpts;
  WideOpts.Jobs = 0; // hardware width
  BatchSession WideSession(WideOpts);
  std::vector<BatchItemResult> WideRes;
  auto WideRep = [&] { WideRes = WideSession.run(Items); };

  // Paired measurement: each rep times all three configurations back to
  // back, so machine-wide noise (a shared or single-core box) hits every
  // configuration of a rep alike; the gate reads the median of the
  // per-rep speedup ratios rather than comparing two independently noisy
  // means.
  auto TimeOne = [](const std::function<void()> &F) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(T1 - T0).count();
  };
  SingleRep();
  SerialRep();
  WideRep();
  std::vector<double> SingleMs, SerialMs, WideMs, SerialRatio, WideRatio;
  for (unsigned R = 0; R != Reps; ++R) {
    double S = TimeOne(SingleRep);
    double B1 = TimeOne(SerialRep);
    double BW = TimeOne(WideRep);
    SingleMs.push_back(S);
    SerialMs.push_back(B1);
    WideMs.push_back(BW);
    SerialRatio.push_back(B1 > 0 ? S / B1 : 0);
    WideRatio.push_back(BW > 0 ? S / BW : 0);
  }
  // Best-of-reps for the gate: scheduler noise only ever adds time, so
  // the minimum is the least-contaminated estimate of each
  // configuration's true cost.
  auto Best = [](const std::vector<double> &V) {
    return *std::min_element(V.begin(), V.end());
  };
  double BestSingle = Best(SingleMs);
  double BestSerial = Best(SerialMs);
  double BestWide = Best(WideMs);
  auto Stats = [](std::vector<double> Ms) {
    std::sort(Ms.begin(), Ms.end());
    RepStats S;
    S.Reps = static_cast<unsigned>(Ms.size());
    for (double M : Ms)
      S.MeanMs += M;
    S.MeanMs /= Ms.size();
    auto Quantile = [&](double Q) {
      size_t I = static_cast<size_t>(Q * (Ms.size() - 1) + 0.5);
      return Ms[std::min(I, Ms.size() - 1)];
    };
    S.P50Ms = Quantile(0.5);
    S.P99Ms = Quantile(0.99);
    return S;
  };
  auto Median = [](std::vector<double> V) {
    std::sort(V.begin(), V.end());
    return V[V.size() / 2];
  };
  RepStats Single = Stats(SingleMs);
  RepStats BatchSerial = Stats(SerialMs);
  RepStats BatchWide = Stats(WideMs);

  // Tool-level pass: the corpus on disk, compiled once as N alpc
  // invocations and once as a single `alpc --batch` run — the actual
  // before/after of the batch API. One timed round each; the process
  // spawns dominate the single side, which is exactly the point.
  fs::path CorpusDir =
      fs::temp_directory_path() /
      ("perf_batch_corpus_" + std::to_string(::getpid()));
  std::error_code EC;
  fs::create_directories(CorpusDir, EC);
  if (EC)
    reportFatalError("cannot create corpus dir: " + EC.message());
  for (size_t I = 0; I != Programs; ++I)
    if (Status S = writeFileAtomic((CorpusDir / Items[I].FileName).string(),
                                   Items[I].Source);
        !S.isOk())
      reportFatalError("cannot write corpus file: " + S.str());

  bool ToolOk = true;
  double ToolSingleMs = TimeOne([&] {
    for (size_t I = 0; I != Programs; ++I) {
      int Rc = runQuiet(shellQuote(AlpcPath) + " " +
                        shellQuote((CorpusDir / Items[I].FileName).string()) +
                        " --spmd");
      if (Rc != 0 && Rc != 4)
        ToolOk = false;
    }
  });
  double ToolBatchMs = TimeOne([&] {
    int Rc = runQuiet(shellQuote(AlpcPath) + " --batch " +
                      shellQuote(CorpusDir.string()) + " --spmd");
    if (Rc != 0 && Rc != 4)
      ToolOk = false;
  });
  fs::remove_all(CorpusDir, EC);
  double ToolSpeedup = ToolBatchMs > 0 ? ToolSingleMs / ToolBatchMs : 0;

  bool Identical = SerialRes.size() == Programs && WideRes.size() == Programs;
  for (size_t I = 0; Identical && I != Programs; ++I)
    Identical = SerialRes[I].ExitCode == Reference[I].ExitCode &&
                SerialRes[I].Output == Reference[I].Out &&
                SerialRes[I].Error == Reference[I].Err &&
                WideRes[I].ExitCode == Reference[I].ExitCode &&
                WideRes[I].Output == Reference[I].Out &&
                WideRes[I].Error == Reference[I].Err;

  auto Throughput = [&](const RepStats &S) {
    return S.MeanMs > 0 ? 1000.0 * Programs / S.MeanMs : 0.0;
  };
  double SingleRate = Throughput(Single);
  double SerialRate = Throughput(BatchSerial);
  double WideRate = Throughput(BatchWide);
  double SerialSpeedup = BestSerial > 0 ? BestSingle / BestSerial : 0;
  double WideSpeedup = BestWide > 0 ? BestSingle / BestWide : 0;
  double MedianSerialSpeedup = Median(SerialRatio);
  double MedianWideSpeedup = Median(WideRatio);

  struct RowT {
    const char *Name;
    const RepStats *S;
    double Rate;
  } RowsT[] = {{"single-shot", &Single, SingleRate},
               {"batch jobs=1", &BatchSerial, SerialRate},
               {"batch jobs=hw", &BatchWide, WideRate}};
  for (const RowT &R : RowsT)
    std::printf("%-14s %4zu programs  mean %9.3f ms  p99 %9.3f ms  "
                "%8.1f prog/s\n",
                R.Name, Programs, R.S->MeanMs, R.S->P99Ms, R.Rate);
  std::printf("in-process speedup (best-of-reps): batch(1) %.2fx  "
              "batch(hw) %.2fx  (median per-rep %.2fx / %.2fx)\n",
              SerialSpeedup, WideSpeedup, MedianSerialSpeedup,
              MedianWideSpeedup);
  std::printf("tool-level: %zu alpc runs %9.1f ms  one --batch %9.1f ms  "
              "speedup %.2fx\n",
              Programs, ToolSingleMs, ToolBatchMs, ToolSpeedup);
  std::printf("identical: %s\n", Identical ? "yes" : "NO");

  // The gate: one warm-arena batch run must clear N single-shot alpc
  // compiles; the byte cross-check keeps the comparison honest.
  bool SpeedupOk = ToolSpeedup >= 1.0;
  if (!SpeedupOk)
    std::fprintf(stderr,
                 "error: tool-level batch speedup %.2fx below the 1.0x "
                 "gate\n",
                 ToolSpeedup);
  if (!ToolOk)
    std::fprintf(stderr, "error: an alpc invocation failed\n");
  if (!Identical)
    std::fprintf(stderr,
                 "error: batch results differ from single-shot runs\n");

  ArtifactWriter Out;
  Out.printf("%s", StatsReport::headerOpen("bench_batch").c_str());
  Out.printf("  \"benchmark\": \"batch\",\n");
  Out.printf("  \"smoke\": %s,\n", Smoke ? "true" : "false");
  Out.printf("  \"programs\": %zu,\n", Programs);
  Out.printf("  \"seed\": %llu,\n", static_cast<unsigned long long>(Seed));
  Out.printf("  \"single_shot\": {%s, \"programs_per_sec\": %.6g},\n",
             repStatsJson(Single).c_str(), SingleRate);
  Out.printf("  \"batch_jobs1\": {%s, \"programs_per_sec\": %.6g},\n",
             repStatsJson(BatchSerial).c_str(), SerialRate);
  Out.printf("  \"batch_jobs_hw\": {%s, \"programs_per_sec\": %.6g},\n",
             repStatsJson(BatchWide).c_str(), WideRate);
  Out.printf("  \"speedup_jobs1\": %.4f,\n", SerialSpeedup);
  Out.printf("  \"speedup_jobs_hw\": %.4f,\n", WideSpeedup);
  Out.printf("  \"speedup_jobs1_median\": %.4f,\n", MedianSerialSpeedup);
  Out.printf("  \"speedup_jobs_hw_median\": %.4f,\n", MedianWideSpeedup);
  Out.printf("  \"tool_single\": {\"wall_ms\": %.6g, "
             "\"programs_per_sec\": %.6g},\n",
             ToolSingleMs,
             ToolSingleMs > 0 ? 1000.0 * Programs / ToolSingleMs : 0.0);
  Out.printf("  \"tool_batch\": {\"wall_ms\": %.6g, "
             "\"programs_per_sec\": %.6g},\n",
             ToolBatchMs,
             ToolBatchMs > 0 ? 1000.0 * Programs / ToolBatchMs : 0.0);
  Out.printf("  \"speedup_tool\": %.4f,\n", ToolSpeedup);
  Out.printf("  \"tool_runs_ok\": %s,\n", ToolOk ? "true" : "false");
  Out.printf("  \"identical\": %s,\n", Identical ? "true" : "false");
  Out.printf("  \"speedup_ok\": %s\n", SpeedupOk ? "true" : "false");
  Out.printf("}\n");
  if (!Out.publish(OutPath))
    return 1;
  std::printf("wrote %s\n", OutPath);

  return Identical && ToolOk && SpeedupOk ? 0 : 1;
}
