//===- bench/ablation_constraints.cpp - Constraint ablation ----------------===//
//
// Ablation A: what each partition constraint of Sec. 4.2 buys.
//
//  * The multiple-array (cycle) constraint (Eqn. 4): on the transpose-
//    coupled program of Sec. 4.2, dropping it would leave the partition
//    fixpoint claiming two communication-free degrees of parallelism that
//    do not exist; with it, the solver correctly finds the single diagonal
//    degree. We demonstrate by comparing against a cycle-free variant.
//
//  * The data-computation relation (Eqns. 5/6): the Figure 1 program shows
//    the serialization cascade from one sequential loop to a neighboring
//    nest with no dependences at all.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/PartitionSolver.h"
#include "transform/Unimodular.h"

#include <cstdio>

using namespace alp;
using namespace alp::bench;

int main() {
  printHeader("Ablation A: partition constraints (Sec. 4.2)");

  // Cycle constraint demonstration.
  Program Cycle = compileOrDie(R"(
program cycle;
param N = 64;
array X[N + 1, N + 1], Y[N + 1, N + 1];
forall i1 = 0 to N {
  forall i2 = 0 to N {
    X[i1, i2] += Y[i1, i2];
  }
}
forall i1 = 0 to N {
  forall i2 = 0 to N {
    Y[i2, i1] = X[i1, i2];
  }
}
)");
  Program NoCycle = compileOrDie(R"(
program nocycle;
param N = 64;
array X[N + 1, N + 1], Y[N + 1, N + 1];
forall i1 = 0 to N {
  forall i2 = 0 to N {
    X[i1, i2] += Y[i1, i2];
  }
}
forall i1 = 0 to N {
  forall i2 = 0 to N {
    Y[i1, i2] = X[i1, i2];
  }
}
)");

  InterferenceGraph IGc(Cycle, {0, 1});
  PartitionResult Rc = solvePartitions(IGc);
  InterferenceGraph IGn(NoCycle, {0, 1});
  PartitionResult Rn = solvePartitions(IGn);

  unsigned Xc = Cycle.arrayId("X");
  std::printf("transpose cycle:    ker D_X = %-18s parallelism/nest = %u\n",
              Rc.DataKernel[Xc].str().c_str(), Rc.parallelism(0));
  std::printf("no cycle (aligned): ker D_X = %-18s parallelism/nest = %u\n",
              Rn.DataKernel[NoCycle.arrayId("X")].str().c_str(),
              Rn.parallelism(0));
  std::printf("(the cycle costs exactly one degree of parallelism: the\n"
              " diagonal direction (1,-1) must stay on one processor)\n\n");

  // Serialization cascade demonstration.
  Program Fig1 = compileOrDie(fig1Source());
  runLocalPhase(Fig1);
  InterferenceGraph IG1(Fig1, {0, 1});
  // Full fixpoint.
  PartitionResult Full = solvePartitions(IG1);
  // Nest 0 alone (no relation constraint from nest 1's data).
  InterferenceGraph IGAlone(Fig1, {0});
  PartitionResult Alone = solvePartitions(IGAlone);
  std::printf("Eqns. 5/6 cascade on Figure 1:\n");
  std::printf("  nest 1 alone:        ker C_1 = %-16s (%u degrees)\n",
              Alone.CompKernel[0].str().c_str(), Alone.parallelism(0));
  std::printf("  nest 1 with nest 2:  ker C_1 = %-16s (%u degrees)\n",
              Full.CompKernel[0].str().c_str(), Full.parallelism(0));
  std::printf("(nest 2's sequential i2 loop reaches across the shared "
              "array Y\n and serializes nest 1's i1 loop, which has no "
              "dependences of its own)\n\n");

  bool Ok = Rc.parallelism(0) == 1 && Rn.parallelism(0) == 2 &&
            Rc.DataKernel[Xc].contains(Vector({1, -1})) &&
            Alone.parallelism(0) == 2 && Full.parallelism(0) == 1;
  std::printf("[%s] constraint ablation\n", Ok ? "ok" : "MISMATCH");
  return Ok ? 0 : 1;
}
