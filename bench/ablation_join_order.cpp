//===- bench/ablation_join_order.cpp - Greedy join-order ablation ----------===//
//
// Ablation B: the dynamic decomposition problem is NP-hard (Theorem 6.1);
// the paper's heuristic examines communication-graph edges in decreasing
// weight order. This ablation compares the greedy policy against the two
// extremes (join everything / join nothing) over a family of randomized
// branchy programs, reporting how often greedy matches or beats both.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Driver.h"
#include "support/Rng.h"

#include <cstdio>

using namespace alp;
using namespace alp::bench;

namespace {

/// Builds a random program: K nests over a pool of 2-d arrays; each nest
/// picks an orientation (row- or column-serialized) and two arrays; a
/// random branch probability gates some nests.
std::string randomProgram(Rng &R, unsigned K) {
  std::string Src = "program rand;\nparam N = 255;\n"
                    "array A[N + 1, N + 1], B[N + 1, N + 1], "
                    "C[N + 1, N + 1];\n";
  const char *Arrays[3] = {"A", "B", "C"};
  for (unsigned I = 0; I != K; ++I) {
    const char *W = Arrays[R.nextBelow(3)];
    const char *Rd = Arrays[R.nextBelow(3)];
    bool ColumnOrder = R.nextBelow(2) != 0;
    bool Gated = R.nextBelow(3) == 0;
    double Prob = 0.25 + 0.5 * R.nextDouble();
    std::string Nest;
    if (ColumnOrder)
      Nest = std::string("forall i = 0 to N {\n  for j = 1 to N {\n    ") +
             W + "[j, i] = f(" + W + "[j - 1, i], " + Rd +
             "[j, i]) @cost(20);\n  }\n}\n";
    else
      Nest = std::string("forall i = 0 to N {\n  for j = 1 to N {\n    ") +
             W + "[i, j] = f(" + W + "[i, j - 1], " + Rd +
             "[i, j]) @cost(20);\n  }\n}\n";
    if (Gated) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2f", Prob);
      Src += std::string("if prob(") + Buf + ") {\n" + Nest + "}\n";
    } else {
      Src += Nest;
    }
  }
  return Src;
}

/// Blocking off to stress the reorganize-vs-serialize trade-off.
DynamicDecomposerOptions greedyOpts(JoinPolicy Policy) {
  DynamicDecomposerOptions Opts;
  Opts.UseBlocking = false;
  Opts.Policy = Policy;
  return Opts;
}

} // namespace

int main() {
  printHeader("Ablation B: greedy join order vs extreme policies (Sec. 6.3)");
  MachineParams M;
  Rng R(2026);
  unsigned Trials = 24;
  unsigned GreedyBest = 0, TiedBest = 0;
  double SumGreedy = 0, SumSingle = 0, SumNever = 0;
  for (unsigned T = 0; T != Trials; ++T) {
    Program P = compileOrDie(randomProgram(R, 4 + R.nextBelow(4)));
    CostModel CM(P, M);
    // Blocking off to stress the reorganize-vs-serialize trade-off.
    double G =
        runDynamicDecomposition(P, CM, greedyOpts(JoinPolicy::Greedy)).Value;
    double S =
        runDynamicDecomposition(P, CM, greedyOpts(JoinPolicy::ForceSingle))
            .Value;
    double N =
        runDynamicDecomposition(P, CM, greedyOpts(JoinPolicy::NeverJoin))
            .Value;
    SumGreedy += G;
    SumSingle += S;
    SumNever += N;
    double Best = std::max(S, N);
    if (G > Best + 1e-6)
      ++GreedyBest;
    else if (G >= Best - 1e-6)
      ++TiedBest;
  }
  std::printf("%u randomized programs (4-7 nests each):\n", Trials);
  std::printf("  greedy strictly best: %u\n", GreedyBest);
  std::printf("  greedy tied with the better extreme: %u\n", TiedBest);
  std::printf("  greedy worse than an extreme: %u\n",
              Trials - GreedyBest - TiedBest);
  std::printf("  mean graph value: greedy %.3g, force-single %.3g, "
              "never-join %.3g\n",
              SumGreedy / Trials, SumSingle / Trials, SumNever / Trials);

  bool Ok = GreedyBest + TiedBest == Trials &&
            SumGreedy >= SumSingle && SumGreedy >= SumNever;
  std::printf("\n[%s] greedy never loses to either extreme on this family\n",
              Ok ? "ok" : "MISMATCH");
  return Ok ? 0 : 1;
}
