//===- bench/fig3_wavefront.cpp - Figure 3 / Sec. 5 reproduction -----------===//
//
// Regenerates the content of Figure 3 and the Sec. 5 ADI example:
//
//  (a/b) the four-point difference operator has doacross (wavefront)
//        parallelism only: a 2-d block tiling leaves processors idle
//        during pipeline fill;
//  (c/d) assigning row or column strips removes the idle processors;
//        we simulate both and report utilization;
//  (ADI) with forall parallelism only, the two sweeps force either
//        sequential execution or reorganization; tiling turns the
//        communication into cheap pipelining.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Driver.h"
#include "ir/Printer.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"
#include "transform/Tiling.h"
#include "transform/Unimodular.h"

#include <cstdio>

using namespace alp;
using namespace alp::bench;

int main() {
  int64_t N = 255;
  Program P = compileOrDie(stencilSource(N));
  runLocalPhase(P);

  printHeader("Figure 3: tiled wavefront execution of the 4-point stencil");
  std::printf("band structure: %zu fully permutable band(s), outermost of "
              "size %u (paper: one band of size 2)\n",
              P.nest(0).PermutableBands.size(),
              P.nest(0).PermutableBands.empty()
                  ? 0
                  : P.nest(0).PermutableBands[0]);

  // Blocked partition: ker C empty, Lc full (everything tiled).
  InterferenceGraph IG(P, {0});
  PartitionResult R = solvePartitionsWithBlocks(IG);
  std::printf("blocked partition: ker C = %s, Lc = %s (paper: ker C = {0}, "
              "Lc = full plane)\n\n",
              R.CompKernel[0].str().c_str(),
              R.CompLocalized[0].str().c_str());

  // Materialized tiling (Figure 3d): strip-mine i2 with B = 4.
  LoopNest Tiled = tileLoops(P.nest(0), 0, {0, 4});
  std::printf("strip-mined nest (Figure 3d):\n%s\n",
              printNest(P, Tiled).c_str());

  // Simulate the three execution shapes at 16 procs.
  MachineParams M;
  M.NumProcs = 16;
  double Seq;
  {
    NumaSimulator Sim(P, M);
    Sim.setStaticPlacement(0, ArrayPlacement::blockedDim(0));
    Seq = Sim.sequentialCycles();
  }
  auto Run = [&](NestSchedule S, ArrayPlacement Pl) {
    NumaSimulator Sim(P, M);
    Sim.setStaticPlacement(0, Pl);
    Sim.setSchedule(0, S);
    return Sim.run(16).Cycles;
  };
  NestSchedule Blocks2D;
  Blocks2D.ExecMode = NestSchedule::Mode::Wavefront2D;
  Blocks2D.DistLoop = 0;
  Blocks2D.PipeLoop = 1;
  NestSchedule RowStrips;
  RowStrips.ExecMode = NestSchedule::Mode::Pipelined;
  RowStrips.DistLoop = 0;
  RowStrips.PipeLoop = 1;
  RowStrips.BlockSize = 4;
  NestSchedule ColStrips;
  ColStrips.ExecMode = NestSchedule::Mode::Pipelined;
  ColStrips.DistLoop = 1;
  ColStrips.PipeLoop = 0;
  ColStrips.BlockSize = 4;
  NestSchedule SeqSched; // Mode defaults to Sequential.

  double TSeq = Run(SeqSched, ArrayPlacement::blockedDim(0));
  double TBlk = Run(Blocks2D, ArrayPlacement::blockedDim(0));
  double TRow = Run(RowStrips, ArrayPlacement::blockedDim(0));
  double TCol = Run(ColStrips, ArrayPlacement::blockedDim(1));

  std::printf("execution at 16 processors (N = %lld):\n", (long long)N);
  std::printf("  %-34s %14.0f cycles  speedup %5.2f\n", "sequential", TSeq,
              Seq / TSeq);
  std::printf("  %-34s %14.0f cycles  speedup %5.2f\n",
              "2-d blocks, wavefront (Fig 3b)", TBlk, Seq / TBlk);
  std::printf("  %-34s %14.0f cycles  speedup %5.2f\n",
              "row strips, pipelined (Fig 3c)", TRow, Seq / TRow);
  std::printf("  %-34s %14.0f cycles  speedup %5.2f\n",
              "column strips, pipelined (Fig 3d)", TCol, Seq / TCol);
  std::printf("  (paper: the 2-d block layout idles processors during the "
              "fill;\n   strips keep every processor busy)\n");

  //===--------------------------------------------------------------------===
  // The Sec. 5 ADI example.
  //===--------------------------------------------------------------------===
  std::printf("\n");
  printHeader("Sec. 5 ADI example: forall-only vs blocked partitions");
  Program Adi = compileOrDie(R"(
program adi;
param N = 255;
array X[N + 1, N + 1];
forall i1 = 0 to N {
  for i2 = 1 to N {
    X[i1, i2] = f1(X[i1, i2], X[i1, i2 - 1]) @cost(16);
  }
}
forall i2 = 0 to N {
  for i1 = 1 to N {
    X[i1, i2] = f2(X[i1, i2], X[i1 - 1, i2]) @cost(16);
  }
}
)");
  runLocalPhase(Adi);
  InterferenceGraph AdiIG(Adi, {0, 1});
  PartitionResult Plain = solvePartitions(AdiIG);
  PartitionResult Blocked = solvePartitionsWithBlocks(AdiIG);
  std::printf("forall-only total parallelism: %u degrees (paper: 0 -- "
              "sequential or reorganize)\n",
              Plain.totalParallelism());
  std::printf("blocked: ker C_1 = %s, Lc_1 = %s, blocked = %s (paper: "
              "fully tiled)\n",
              Blocked.CompKernel[0].str().c_str(),
              Blocked.CompLocalized[0].str().c_str(),
              Blocked.Blocked ? "yes" : "no");

  bool Ok = P.nest(0).PermutableBands == std::vector<unsigned>{2} &&
            R.CompKernel[0].isTrivial() && R.CompLocalized[0].isFull() &&
            Plain.totalParallelism() == 0 && Blocked.Blocked &&
            Seq / TRow > 4.0 && Seq / TCol > 4.0 &&
            TBlk > TRow && TBlk > TCol; // Idle processors cost (Fig 3b).
  std::printf("\n[%s] Figure 3 / Sec. 5 reproduction\n",
              Ok ? "ok" : "MISMATCH");
  return Ok ? 0 : 1;
}
