//===- bench/ablation_fusion.cpp - Loop fusion post-pass ablation ----------===//
//
// Ablation E: the fusion post-pass of Sec. 2.1 ("a loop fusion pass after
// decomposition to regroup compatible loop nests"). A chain of compatible
// elementwise nests pays one barrier per nest without fusion; with it the
// chain collapses to a single nest. The simulator quantifies the saving.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Driver.h"
#include "core/Fusion.h"
#include "machine/NumaSimulator.h"
#include "machine/ScheduleDerivation.h"

#include <cstdio>

using namespace alp;
using namespace alp::bench;

namespace {

std::string chainProgram(unsigned K, int64_t N) {
  std::string Src = "program chain;\nparam N = " + std::to_string(N) +
                    ";\narray A[N + 1, N + 1], B[N + 1, N + 1];\n";
  for (unsigned I = 0; I != K; ++I) {
    const char *W = I % 2 ? "B" : "A";
    const char *R = I % 2 ? "A" : "B";
    Src += std::string("forall i = 0 to N {\n  forall j = 0 to N {\n    ") +
           W + "[i, j] = f(" + R + "[i, j]) @cost(6);\n  }\n}\n";
  }
  return Src;
}

double simulate(Program &P, const MachineParams &M,
                const ProgramDecomposition &PD) {
  NumaSimulator Sim(P, M);
  applyDecomposition(Sim, P, PD);
  return Sim.run(32).Cycles;
}

} // namespace

int main() {
  printHeader("Ablation E: loop fusion after decomposition (Sec. 2.1)");
  MachineParams M;
  std::printf("%8s %10s %14s %14s %10s\n", "nests", "fused to", "unfused cy",
              "fused cy", "saving");
  bool Ok = true;
  for (unsigned K : {2u, 4u, 8u, 16u}) {
    Program P1 = compileOrDie(chainProgram(K, 255));
    ProgramDecomposition PD1 = decomposeOrDie(P1, M);
    double Unfused = simulate(P1, M, PD1);

    Program P2 = compileOrDie(chainProgram(K, 255));
    ProgramDecomposition PD2 = decomposeOrDie(P2, M);
    unsigned Fused = fuseCompatibleNests(P2, &PD2);
    PD2 = decomposeOrDie(P2, M); // Re-derive for the fused shape.
    double FusedCy = simulate(P2, M, PD2);
    std::printf("%8u %10zu %14.0f %14.0f %9.1f%%\n", K,
                P2.nestsInOrder().size(), Unfused, FusedCy,
                100.0 * (Unfused - FusedCy) / Unfused);
    Ok &= Fused == K - 1 && FusedCy < Unfused;
  }
  std::printf("\n[%s] fusion removes the per-nest barriers\n",
              Ok ? "ok" : "MISMATCH");
  return Ok ? 0 : 1;
}
