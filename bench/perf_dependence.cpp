//===- bench/perf_dependence.cpp - Dependence analysis throughput ----------===//
//
// Performance benchmark P2: wall time of dependence analysis on a large
// synthetic nest under the four tier/memoization configurations, the
// parallel analysis driver, and the Rational integer fast path. Hand-rolled
// harness (steady_clock, mean/p50/p99) — no external benchmark library —
// that emits machine-readable results to BENCH_dependence.json.
//
//   perf_dependence [--smoke] [--out <file>]
//
// The headline number is speedup_tiered_memoized_vs_baseline: the full
// configuration against uncached exact Fourier-Motzkin on every pair. The
// harness also cross-checks that every configuration (and the parallel
// driver) produces byte-identical dependence sets; "results_identical" in
// the JSON is the result of that check, and a mismatch exits nonzero.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Dependence.h"
#include "linalg/Rational.h"
#include "support/ThreadPool.h"
#include "support/StatsReport.h"
#include "support/Trace.h"

#include <cstring>
#include <string>

using namespace alp;
using namespace alp::bench;

namespace {

/// The largest synthetic nest: a depth-4 loop whose body holds
///  - \p Stencils same-shape unit-distance stencil statements, each on its
///    own array (identical dependence polyhedra up to array identity: the
///    canonical-key cache collapses their tier-2 projections);
///  - \p GcdKilled stride-2 statements (G[2*i] vs G[2*i+1]: tier 0 proves
///    independence by divisibility);
///  - \p BanerjeeKilled statements whose read offset exceeds the loop
///    extent (B[i] vs B[i + 3N]: tier 1 proves independence by ranges).
std::string synthSource(unsigned Stencils, unsigned GcdKilled,
                        unsigned BanerjeeKilled) {
  // Literal loop bounds (no `param`): the Banerjee tier conservatively
  // skips symbolic bounds, so constants keep all three tiers in play.
  std::string Src = "program synth;\n";
  for (unsigned S = 0; S != Stencils; ++S)
    Src += "array A" + std::to_string(S) + "[14, 14, 14, 14];\n";
  for (unsigned G = 0; G != GcdKilled; ++G)
    Src += "array G" + std::to_string(G) + "[28];\n";
  for (unsigned B = 0; B != BanerjeeKilled; ++B)
    Src += "array B" + std::to_string(B) + "[52];\n";
  Src += "for i0 = 1 to 12 {\n for i1 = 1 to 12 {\n  for i2 = 1 to 12 {\n"
         "   for i3 = 1 to 12 {\n";
  for (unsigned S = 0; S != Stencils; ++S) {
    std::string A = "A" + std::to_string(S);
    Src += "    " + A + "[i0, i1, i2, i3] = f(" + A +
           "[i0 - 1, i1, i2, i3], " + A + "[i0, i1 - 1, i2, i3], " + A +
           "[i0, i1, i2 - 1, i3], " + A + "[i0, i1, i2, i3 - 1]) @cost(4);\n";
  }
  for (unsigned G = 0; G != GcdKilled; ++G) {
    std::string A = "G" + std::to_string(G);
    Src += "    " + A + "[2 * i0] = f(" + A + "[2 * i0 + 1]) @cost(2);\n";
  }
  for (unsigned B = 0; B != BanerjeeKilled; ++B) {
    std::string A = "B" + std::to_string(B);
    Src += "    " + A + "[i0] = f(" + A + "[i0 + 36]) @cost(2);\n";
  }
  Src += "   }\n  }\n }\n}\n";
  return Src;
}

/// Canonical dump of a dependence set for identity checks.
std::string depsFingerprint(const std::vector<Dependence> &Deps) {
  std::string S;
  for (const Dependence &D : Deps) {
    S += D.str();
    S += '\n';
  }
  return S;
}

struct ConfigResult {
  std::string Name;
  RepStats Stats;
  DependenceTierStats Tiers;
  std::string Fingerprint;
};

ConfigResult runConfig(const Program &P, const std::string &Name,
                       DependenceOptions Opts, unsigned Reps,
                       unsigned Warmup) {
  ConfigResult R;
  R.Name = Name;
  // Fresh analysis per repetition so the memoized configurations only get
  // within-run cache reuse, not reuse across repetitions.
  R.Stats = timeReps(Reps, Warmup, [&] {
    DependenceAnalysis DA(P, nullptr, Opts);
    auto Deps = DA.analyze(P.nest(0));
    if (Deps.empty())
      reportFatalError("synthetic nest unexpectedly has no dependences");
  });
  DependenceAnalysis DA(P, nullptr, Opts);
  R.Fingerprint = depsFingerprint(DA.analyze(P.nest(0)));
  R.Tiers = DA.tierStats();
  return R;
}

/// Rational fast-path microbenchmark: a multiply-accumulate sweep over
/// integer-valued rationals (Den == 1 everywhere: the fast paths fire on
/// every operation) against the same sweep over proper fractions (the
/// generic gcd-reducing paths). Reports ns per multiply-add.
struct RationalBench {
  double IntNsPerOp = 0;
  double FracNsPerOp = 0;
};

RationalBench benchRational(size_t Elems, unsigned Reps) {
  std::vector<Rational> Ints, Fracs;
  Ints.reserve(Elems);
  Fracs.reserve(Elems);
  for (size_t I = 0; I != Elems; ++I) {
    Ints.push_back(Rational(static_cast<int64_t>(I % 7) - 3));
    Fracs.push_back(Rational(static_cast<int64_t>(I % 7) - 3,
                             static_cast<int64_t>(I % 5) + 2));
  }
  // The accumulated sum is printed by the caller so the loops cannot be
  // optimized away.
  auto Sweep = [](const std::vector<Rational> &Vals) {
    Rational Acc;
    for (const Rational &V : Vals)
      Acc = Acc + V * V;
    return Acc;
  };
  Rational Sink;
  RepStats IntStats = timeReps(Reps, 1, [&] { Sink = Sink + Sweep(Ints); });
  RepStats FracStats = timeReps(Reps, 1, [&] { Sink = Sink + Sweep(Fracs); });
  std::printf("rational sweep checksum: %s\n", Sink.str().c_str());
  RationalBench R;
  R.IntNsPerOp = IntStats.MeanMs * 1e6 / static_cast<double>(Elems);
  R.FracNsPerOp = FracStats.MeanMs * 1e6 / static_cast<double>(Elems);
  return R;
}

std::string tierStatsJson(const DependenceTierStats &T) {
  char Buf[320];
  double HitRate = (T.CacheHits + T.CacheMisses)
                       ? static_cast<double>(T.CacheHits) /
                             static_cast<double>(T.CacheHits + T.CacheMisses)
                       : 0.0;
  std::snprintf(Buf, sizeof(Buf),
                "\"pairs\": %llu, \"gcd_independent\": %llu, "
                "\"banerjee_independent\": %llu, \"exact_tested\": %llu, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                "\"cache_hit_rate\": %.4f",
                static_cast<unsigned long long>(T.Pairs),
                static_cast<unsigned long long>(T.GcdIndependent),
                static_cast<unsigned long long>(T.BanerjeeIndependent),
                static_cast<unsigned long long>(T.ExactTested),
                static_cast<unsigned long long>(T.CacheHits),
                static_cast<unsigned long long>(T.CacheMisses), HitRate);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  const char *OutPath = "BENCH_dependence.json";
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <file>]\n", argv[0]);
      return 2;
    }
  }
  unsigned Reps = Smoke ? 3 : 15;
  unsigned Warmup = Smoke ? 0 : 2;

  printHeader("P2: tiered/memoized dependence analysis vs uncached exact");
  Program P = compileOrDie(synthSource(8, 3, 3));

  DependenceOptions Baseline;
  Baseline.TieredTests = false;
  Baseline.Memoize = false;
  DependenceOptions TiersOnly;
  TiersOnly.Memoize = false;
  DependenceOptions MemoOnly;
  MemoOnly.TieredTests = false;
  DependenceOptions Full; // Tiered + memoized.

  std::vector<ConfigResult> Configs;
  Configs.push_back(runConfig(P, "baseline_exact_uncached", Baseline, Reps,
                              Warmup));
  Configs.push_back(runConfig(P, "tiered_only", TiersOnly, Reps, Warmup));
  Configs.push_back(runConfig(P, "memoized_only", MemoOnly, Reps, Warmup));
  Configs.push_back(runConfig(P, "tiered_memoized", Full, Reps, Warmup));

  ThreadPool Pool(ThreadPool::hardwareConcurrency());
  DependenceOptions Parallel;
  Parallel.Pool = &Pool;
  Configs.push_back(runConfig(P, "tiered_memoized_parallel", Parallel, Reps,
                              Warmup));

  // Full config with the tracer enabled: quantifies the cost of span
  // collection against the disabled path (the "tiered_memoized" run,
  // whose spans compile in but reduce to a pointer test).
  Tracer Trace;
  MetricsRegistry Metrics;
  DependenceOptions Traced;
  Traced.Trace = &Trace;
  Configs.push_back(runConfig(P, "tiered_memoized_traced", Traced, Reps,
                              Warmup));
  Configs.back().Tiers.publishTo(Metrics);

  bool Identical = true;
  for (const ConfigResult &C : Configs)
    Identical = Identical && C.Fingerprint == Configs.front().Fingerprint;

  double BaselineMean = Configs[0].Stats.MeanMs;
  double FullMean = Configs[3].Stats.MeanMs;
  double Speedup = FullMean > 0 ? BaselineMean / FullMean : 0;
  double TracedMean = Configs[5].Stats.MeanMs;
  double TracingOverhead = FullMean > 0 ? TracedMean / FullMean : 0;

  for (const ConfigResult &C : Configs)
    std::printf("%-28s mean %8.3f ms  p50 %8.3f ms  p99 %8.3f ms\n",
                C.Name.c_str(), C.Stats.MeanMs, C.Stats.P50Ms, C.Stats.P99Ms);
  const DependenceTierStats &FT = Configs[3].Tiers;
  std::printf("tiers (full config): %llu pairs, %llu gcd-independent, "
              "%llu banerjee-independent, %llu exact\n",
              static_cast<unsigned long long>(FT.Pairs),
              static_cast<unsigned long long>(FT.GcdIndependent),
              static_cast<unsigned long long>(FT.BanerjeeIndependent),
              static_cast<unsigned long long>(FT.ExactTested));
  std::printf("cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(FT.CacheHits),
              static_cast<unsigned long long>(FT.CacheMisses));
  std::printf("speedup tiered+memoized vs baseline: %.2fx\n", Speedup);
  std::printf("tracing enabled/disabled time ratio: %.3f\n", TracingOverhead);
  std::printf("results identical across configs: %s\n",
              Identical ? "yes" : "NO");

  printHeader("Rational integer fast path (Den == 1) vs proper fractions");
  RationalBench RB = benchRational(Smoke ? 100000 : 1000000, Reps);
  std::printf("integer-valued:   %7.2f ns / multiply-add\n", RB.IntNsPerOp);
  std::printf("proper fractions: %7.2f ns / multiply-add\n", RB.FracNsPerOp);
  std::printf("fast-path advantage: %.2fx\n",
              RB.IntNsPerOp > 0 ? RB.FracNsPerOp / RB.IntNsPerOp : 0);

  ArtifactWriter Out;
  Out.printf("%s", StatsReport::headerOpen("bench_dependence").c_str());
  Out.printf("  \"benchmark\": \"dependence\",\n");
  Out.printf("  \"smoke\": %s,\n", Smoke ? "true" : "false");
  Out.printf("  \"hardware_threads\": %u,\n",
               ThreadPool::hardwareConcurrency());
  Out.printf("  \"configs\": [\n");
  for (size_t I = 0; I != Configs.size(); ++I)
    Out.printf("    {\"name\": \"%s\", %s, %s}%s\n",
                 Configs[I].Name.c_str(),
                 repStatsJson(Configs[I].Stats).c_str(),
                 tierStatsJson(Configs[I].Tiers).c_str(),
                 I + 1 == Configs.size() ? "" : ",");
  Out.printf("  ],\n");
  Out.printf("  \"baseline_mean_ms\": %.6g,\n", BaselineMean);
  Out.printf("  \"tiered_memoized_mean_ms\": %.6g,\n", FullMean);
  Out.printf("  \"speedup_tiered_memoized_vs_baseline\": %.3f,\n",
               Speedup);
  Out.printf("  \"results_identical\": %s,\n",
               Identical ? "true" : "false");
  Out.printf("  \"tracing_overhead_ratio\": %.3f,\n", TracingOverhead);
  // The traced run's counters, gauges, and span aggregates in the same
  // versioned schema alpc --stats emits.
  std::string Stats = renderStatsJson(&Metrics, &Trace);
  while (!Stats.empty() && Stats.back() == '\n')
    Stats.pop_back();
  Out.printf("  \"stats\": %s,\n", Stats.c_str());
  Out.printf(
               "  \"rational_fastpath\": {\"int_den_ns_per_op\": %.3f, "
               "\"frac_den_ns_per_op\": %.3f, \"advantage\": %.3f}\n",
               RB.IntNsPerOp, RB.FracNsPerOp,
               RB.IntNsPerOp > 0 ? RB.FracNsPerOp / RB.IntNsPerOp : 0);
  Out.printf("}\n");
  if (!Out.publish(OutPath))
    return 1;
  std::printf("wrote %s\n", OutPath);

  return Identical ? 0 : 1;
}
