//===- bench/perf_dependence.cpp - Dependence analysis throughput ----------===//
//
// Performance benchmark P2 (google-benchmark): throughput of the exact
// (Fourier-Motzkin based) dependence test, the GCD fast path, and the
// Wolf-Lam local phase, over stencils of increasing depth and randomly
// generated affine accesses.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Dependence.h"
#include "linalg/FourierMotzkin.h"
#include "linalg/VectorSpace.h"
#include "support/Rng.h"
#include "transform/Unimodular.h"

#include <benchmark/benchmark.h>

using namespace alp;
using namespace alp::bench;

namespace {

std::string stencilOfDepth(unsigned Depth) {
  // A Depth-deep nest with a unit-distance recurrence on each loop.
  std::string Src = "program deep;\nparam N = 64;\narray A[";
  for (unsigned D = 0; D != Depth; ++D)
    Src += std::string(D ? ", " : "") + "N + 2";
  Src += "];\n";
  std::string Idx, IdxM1;
  for (unsigned D = 0; D != Depth; ++D) {
    std::string I = "i" + std::to_string(D);
    Src += std::string(D, ' ') + "for " + I + " = 1 to N {\n";
    Idx += (D ? ", " : "") + I;
    IdxM1 += (D ? ", " : "") + I + " - 1";
  }
  Src += std::string(Depth, ' ') + "A[" + Idx + "] = f(A[" + IdxM1 +
         "]) @cost(4);\n";
  for (unsigned D = Depth; D != 0; --D)
    Src += std::string(D - 1, ' ') + "}\n";
  return Src;
}

void BM_DependenceAnalysis(benchmark::State &State) {
  Program P = compileOrDie(stencilOfDepth(State.range(0)));
  DependenceAnalysis DA(P);
  for (auto _ : State) {
    auto Deps = DA.analyze(P.nest(0));
    benchmark::DoNotOptimize(Deps.size());
  }
  State.SetComplexityN(State.range(0));
}

void BM_LocalPhase(benchmark::State &State) {
  std::string Src = stencilOfDepth(State.range(0));
  for (auto _ : State) {
    Program P = compileOrDie(Src);
    runLocalPhase(P);
    benchmark::DoNotOptimize(P.nest(0).PermutableBands.size());
  }
}

void BM_FourierMotzkinFeasibility(benchmark::State &State) {
  unsigned Vars = State.range(0);
  Rng R(7);
  ConstraintSystem CS(Vars);
  for (unsigned I = 0; I != 2 * Vars; ++I) {
    Vector C(Vars);
    for (unsigned J = 0; J != Vars; ++J)
      C[J] = Rational(R.nextInRange(-3, 3));
    CS.addInequality(C, Rational(R.nextInRange(0, 20)));
  }
  for (auto _ : State) {
    benchmark::DoNotOptimize(CS.isRationallyFeasible());
  }
}

void BM_VectorSpaceFixpointOps(benchmark::State &State) {
  // The inner operations of the partition fixpoint: image, preimage, sum.
  Rng R(11);
  Matrix F(3, 3);
  for (unsigned I = 0; I != 3; ++I)
    for (unsigned J = 0; J != 3; ++J)
      F.at(I, J) = Rational(R.nextInRange(-2, 2));
  VectorSpace W = VectorSpace::span(
      3, {Vector({1, 0, -1}), Vector({0, 1, 1})});
  for (auto _ : State) {
    VectorSpace A = W.imageUnder(F);
    VectorSpace B = W.preimageUnder(F);
    benchmark::DoNotOptimize((A + B).dim());
  }
}

} // namespace

BENCHMARK(BM_DependenceAnalysis)->Arg(1)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_LocalPhase)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FourierMotzkinFeasibility)->Arg(2)->Arg(4)->Arg(6);
BENCHMARK(BM_VectorSpaceFixpointOps);

BENCHMARK_MAIN();
