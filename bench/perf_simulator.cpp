//===- bench/perf_simulator.cpp - Simulator throughput ---------------------===//
//
// Performance benchmark P3 (google-benchmark): cost of one simulated
// program execution as a function of problem size and schedule kind. The
// simulator works at inner-segment granularity, so costs scale with the
// number of segments (N x nests), not iterations (N^2) — this benchmark
// pins that property down.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "machine/NumaSimulator.h"

#include <benchmark/benchmark.h>

using namespace alp;
using namespace alp::bench;

namespace {

Program rowSweep(int64_t N) {
  return compileOrDie(R"(
program rows;
param N = )" + std::to_string(N) +
                      R"(;
array X[N + 1, N + 1];
forall i = 0 to N {
  for j = 1 to N {
    X[i, j] = f(X[i, j], X[i, j - 1]) @cost(16);
  }
}
)");
}

Program colSweep(int64_t N) {
  return compileOrDie(R"(
program cols;
param N = )" + std::to_string(N) +
                      R"(;
array X[N + 1, N + 1];
forall j = 0 to N {
  for i = 1 to N {
    X[i, j] = f(X[i, j], X[i - 1, j]) @cost(16);
  }
}
)");
}

void BM_SimulateForall(benchmark::State &State) {
  int64_t N = State.range(0);
  Program P = rowSweep(N);
  MachineParams M;
  NumaSimulator Sim(P, M);
  Sim.setStaticPlacement(0, ArrayPlacement::blockedDim(0));
  NestSchedule S;
  S.ExecMode = NestSchedule::Mode::Forall;
  S.DistLoop = 0;
  Sim.setSchedule(0, S);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sim.run(32).Cycles);
  State.SetComplexityN(N);
}

void BM_SimulatePipelined(benchmark::State &State) {
  int64_t N = State.range(0);
  Program P = colSweep(N);
  MachineParams M;
  NumaSimulator Sim(P, M);
  Sim.setStaticPlacement(0, ArrayPlacement::blockedDim(0));
  NestSchedule S;
  S.ExecMode = NestSchedule::Mode::Pipelined;
  S.DistLoop = 1;
  S.PipeLoop = 0;
  Sim.setSchedule(0, S);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sim.run(32).Cycles);
  State.SetComplexityN(N);
}

void BM_SimulateMisaligned(benchmark::State &State) {
  // Heterogeneous segments force the line-by-line path: the worst case.
  int64_t N = State.range(0);
  Program P = rowSweep(N);
  MachineParams M;
  NumaSimulator Sim(P, M);
  Sim.setStaticPlacement(0, ArrayPlacement::blockedDim(1));
  NestSchedule S;
  S.ExecMode = NestSchedule::Mode::Forall;
  S.DistLoop = 0;
  Sim.setSchedule(0, S);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sim.run(32).Cycles);
  State.SetComplexityN(N);
}

} // namespace

BENCHMARK(BM_SimulateForall)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK(BM_SimulatePipelined)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMisaligned)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
